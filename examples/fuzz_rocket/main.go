// Fuzz Rocket: a coverage-guided ChatFuzz campaign on the RocketCore
// model with online PPO feedback and differential mismatch detection,
// ending with a coverage-hole report — the full Fig. 1a loop.
package main

import (
	"fmt"

	"chatfuzz"
)

func main() {
	cfg := chatfuzz.DefaultPipelineConfig()
	cfg.PretrainSteps = 150
	cfg.CleanupSteps = 20
	cfg.CoverageSteps = 5

	fmt.Println("training (scaled-down; see cmd/train-lm for full scale)...")
	p := chatfuzz.NewPipeline(cfg)
	p.Pretrain()
	p.Cleanup()
	dut := chatfuzz.NewRocket()
	p.CoverageTune(dut)

	gen := chatfuzz.NewLLMGenerator(p, dut.Space().NumBins(), true, 42)
	f := chatfuzz.NewFuzzer(gen, dut, chatfuzz.Options{BatchSize: 16, Detect: true})

	const budget = 800
	fmt.Printf("fuzzing rocket for %d tests...\n", budget)
	for f.Tests < budget {
		f.RunBatch()
		if f.Tests%160 == 0 {
			fmt.Printf("  %5d tests  %6.2f%%  (%.1f virtual min)\n",
				f.Tests, f.Coverage(), f.Clk.Hours()*60)
		}
	}

	fmt.Printf("\nfinal coverage: %.2f%%\n\n", f.Coverage())
	fmt.Print(f.Det.Report())

	holes := f.Calc.Total().UncoveredPoints()
	fmt.Printf("\ncoverage holes (%d points, first 15):\n", len(holes))
	for i, h := range holes {
		if i == 15 {
			break
		}
		fmt.Println("  " + h)
	}
}
