// Quickstart: train a small ChatFuzz pipeline, fuzz the Rocket model
// for a few hundred tests, and print coverage plus detected findings.
package main

import (
	"fmt"

	"chatfuzz"
)

func main() {
	// A deliberately tiny configuration so the example finishes in
	// about a minute; see cmd/train-lm for full-scale training.
	cfg := chatfuzz.DefaultPipelineConfig()
	cfg.PretrainSteps = 80
	cfg.CleanupSteps = 10
	cfg.CoverageSteps = 0 // skip step 3 in the quickstart

	fmt.Println("training the LLM-based input generator (steps 1-2)...")
	p := chatfuzz.NewPipeline(cfg)
	p.Pretrain()
	p.Cleanup()
	fmt.Printf("invalid-instruction rate: %.1f%%\n", 100*p.InvalidRate(20))

	dut := chatfuzz.NewRocket()
	gen := chatfuzz.NewLLMGenerator(p, dut.Space().NumBins(), true, 1)
	f := chatfuzz.NewFuzzer(gen, dut, chatfuzz.Options{BatchSize: 16, Detect: true})

	fmt.Println("fuzzing RocketCore for 320 tests...")
	f.RunTests(320)

	fmt.Printf("\ncondition coverage: %.2f%% after %d tests (%.1f virtual minutes)\n",
		f.Coverage(), f.Tests, f.Clk.Hours()*60)
	fmt.Println()
	fmt.Print(f.Det.Report())
}
