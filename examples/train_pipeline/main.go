// Train pipeline: runs the three training steps of ChatFuzz's
// LLM-based input generator and prints the monitored metrics the paper
// tracks — pre-training loss, Eq.1 reward, KL divergence, and the
// coverage reward — as textual curves.
package main

import (
	"fmt"
	"strings"

	"chatfuzz"
	"chatfuzz/internal/core"
)

func spark(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	step := len(vals) / width
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(vals); i += step {
		idx := int((vals[i] - lo) / (hi - lo) * float64(len(blocks)-1))
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

func main() {
	cfg := chatfuzz.DefaultPipelineConfig()
	cfg.PretrainSteps = 150
	cfg.CleanupSteps = 20
	cfg.CoverageSteps = 8

	p := chatfuzz.NewPipeline(cfg)
	fmt.Printf("corpus: %d functions (%d instructions), vocab %d, model %d params\n\n",
		len(p.Corpus.Functions), p.Corpus.Instructions(), p.Tok.Vocab(), p.Model.NumParams())

	fmt.Println("step 1: unsupervised next-token training on machine code")
	losses := p.Pretrain()
	fmt.Printf("  loss %.3f -> %.3f   %s\n", losses[0], losses[len(losses)-1], spark(losses, 40))
	fmt.Printf("  invalid-instruction rate: %.1f%%\n\n", 100*p.InvalidRate(20))

	fmt.Println("step 2: PPO language cleanup (reward Eq.1 = N - 5*Invalid)")
	cl := p.Cleanup()
	fmt.Printf("  mean reward %.2f -> %.2f   %s\n",
		cl[0].MeanReward, cl[len(cl)-1].MeanReward, spark(rewards(cl), 40))
	fmt.Printf("  final KL to reference: %.4f\n", cl[len(cl)-1].MeanKL)
	fmt.Printf("  invalid-instruction rate: %.1f%%\n\n", 100*p.InvalidRate(20))

	fmt.Println("step 3: PPO coverage optimisation against the Rocket model")
	cv := p.CoverageTune(chatfuzz.NewRocket())
	fmt.Printf("  mean reward %.2f -> %.2f   %s\n",
		cv[0].MeanReward, cv[len(cv)-1].MeanReward, spark(rewards(cv), 40))
}

func rewards(st []core.PPOStats) []float64 {
	out := make([]float64, len(st))
	for i, s := range st {
		out[i] = s.MeanReward
	}
	return out
}
