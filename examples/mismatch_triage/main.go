// Mismatch triage: runs hand-written trigger programs for each of the
// paper's findings through the Rocket model and the golden-model ISS,
// then shows the Mismatch Detector's clustering and classification —
// the paper's §V-B workflow in miniature (no ML involved).
package main

import (
	"fmt"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl/rocket"
)

func main() {
	det := mismatch.NewDetector()
	dut := rocket.New()

	triggers := []struct {
		name string
		body []uint32
		data []uint32 // optional preload at DataBase+0x2000 (s0)
	}{
		{
			name: "Bug2: mul/div writeback missing from trace",
			body: []uint32{
				isa.Enc(isa.OpMUL, isa.A2, isa.A5, isa.A5, 0),
				isa.Enc(isa.OpDIV, isa.A3, isa.A4, isa.A3, 0),
			},
		},
		{
			name: "Finding1: exception priority (unmapped+misaligned)",
			body: []uint32{
				isa.Enc(isa.OpADDI, isa.TP, isa.TP, 0, 1),
				isa.Enc(isa.OpLW, isa.A0, isa.TP, 0, 0),
			},
		},
		{
			name: "Finding2: AMO with rd=x0 in trace",
			body: []uint32{
				isa.Enc(isa.OpADDI, isa.T1, 0, 0, 7),
				isa.Enc(isa.OpSD, 0, isa.A0, isa.T1, 0),
				isa.EncAMO(isa.OpAMOORD, 0, isa.A0, isa.A5, false, false),
			},
		},
		{
			name: "Finding3: load to x0 in trace",
			body: []uint32{
				isa.Enc(isa.OpLD, 0, isa.A0, 0, 0),
			},
		},
		{
			name: "Bug1: self-modifying code without FENCE.I",
			body: []uint32{
				isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),
				isa.Enc(isa.OpADDI, isa.A2, 0, 0, 0),
				isa.Enc(isa.OpADDI, isa.A1, 0, 0, 1), // victim
				isa.Enc(isa.OpLW, isa.T1, isa.S0, 0, 0),
				isa.Enc(isa.OpSW, 0, isa.A0, isa.T1, 8),
				isa.Enc(isa.OpADDI, isa.A2, isa.A2, 0, 1),
				isa.Enc(isa.OpADDI, isa.T2, 0, 0, 2),
				isa.Enc(isa.OpBLT, 0, isa.A2, isa.T2, -20),
			},
			data: []uint32{isa.Enc(isa.OpADDI, isa.A1, 0, 0, 2)}, // the patch word
		},
	}

	for i, tr := range triggers {
		fmt.Printf("=== %s ===\n", tr.name)
		img, _ := prog.MustBuild(prog.Program{Body: tr.body})
		if tr.data != nil {
			var seg mem.Image
			seg.AddWords(mem.DataBase+0x2000, tr.data)
			img.Segments = append(img.Segments, seg.Segments...)
		}
		budget := prog.InstructionBudget(len(tr.body))

		res := dut.Run(img, budget)
		m := mem.Platform()
		m.Load(img)
		g := iss.New(m, img.Entry)
		golden := g.Run(budget)

		for _, mm := range det.Analyze(i, res.Trace, golden) {
			fmt.Printf("  mismatch [%s] -> %s\n", mm.Kind, mm.Finding)
			fmt.Printf("    DUT:    %s\n", mm.DUT)
			fmt.Printf("    golden: %s\n", mm.Golden)
		}
		fmt.Println()
	}

	fmt.Print(det.Report())
}
