// Online fleet learning walkthrough: train a small pipeline, run a
// sharded fleet whose LLM arm keeps learning from hardware feedback
// (per-shard PPO replicas, deterministic weight averaging at every
// round barrier), compare it against an identical fleet with the LLM
// arm frozen, and demonstrate that a checkpointed learning campaign
// resumes bit-identically — merged weights included.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"chatfuzz"
)

func main() {
	// A deliberately small configuration so the example finishes in a
	// couple of minutes; drop the overrides for a realistic run.
	cfg := chatfuzz.DefaultPipelineConfig()
	cfg.PretrainSteps = 80
	cfg.CleanupSteps = 10
	cfg.CoverageSteps = 0

	fmt.Println("training the LLM-based input generator (steps 1-2)...")
	p := chatfuzz.NewPipeline(cfg)
	p.Pretrain()
	p.Cleanup()

	ccfg := chatfuzz.CampaignConfig{Shards: 2, BatchSize: 8, Seed: 1, Detect: true}
	const budget = 192

	// Fleet A: the LLM arm learns online. Each shard owns a model
	// replica; scored rollouts step it during the round and the round
	// barrier averages the replicas and redistributes the merge.
	fmt.Printf("fuzzing %d tests with the learning LLM arm...\n", budget)
	learning, err := chatfuzz.NewOrchestrator(ccfg, chatfuzz.NewRocket,
		chatfuzz.LearningLLMArm(p), chatfuzz.TheHuzzArm(cfg.BodyInstrs))
	if err != nil {
		log.Fatal(err)
	}
	if err := learning.RunTests(budget); err != nil {
		log.Fatal(err)
	}

	// Fleet B: the same fleet with the LLM arm frozen (the pre-PR
	// behaviour), as the comparison baseline.
	fmt.Printf("fuzzing %d tests with the frozen LLM arm...\n", budget)
	frozen, err := chatfuzz.NewOrchestrator(ccfg, chatfuzz.NewRocket,
		chatfuzz.LLMArm(p), chatfuzz.TheHuzzArm(cfg.BodyInstrs))
	if err != nil {
		log.Fatal(err)
	}
	if err := frozen.RunTests(budget); err != nil {
		log.Fatal(err)
	}
	defer frozen.Close()

	h := learning.Hours()
	if fh := frozen.Hours(); fh < h {
		h = fh
	}
	fmt.Printf("\nmerged coverage at %.2f virtual h: learning %.2f%% vs frozen %.2f%% (delta %+.2f)\n",
		h, learning.CoverageAt(h), frozen.CoverageAt(h), learning.CoverageAt(h)-frozen.CoverageAt(h))

	// Checkpoint the learning fleet and resume it: trajectory, detector
	// reports and merged model weights continue bit-identically (the
	// resume needs the same trained pipeline — weights are checkpointed,
	// the KL reference model is reproduced by the pipeline itself).
	path := filepath.Join(os.TempDir(), "online_learning_fleet.json")
	if err := learning.CheckpointFile(path); err != nil {
		log.Fatal(err)
	}
	w1 := learning.LearnedWeights("chatfuzz-learn")
	learning.Close()

	resumed, err := chatfuzz.ResumeCampaignFile(path, chatfuzz.NewRocket,
		chatfuzz.LearningLLMArm(p), chatfuzz.TheHuzzArm(cfg.BodyInstrs))
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	w2 := resumed.LearnedWeights("chatfuzz-learn")
	same := len(w1) == len(w2)
	for i := 0; same && i < len(w1); i++ {
		same = w1[i] == w2[i]
	}
	fmt.Printf("resumed learning fleet at round %d with bit-identical weights: %v\n",
		resumed.Rounds(), same)

	if err := resumed.RunTests(budget + 96); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter resume: %.2f%% merged coverage, %d tests\n", resumed.Coverage(), resumed.Tests())
	fmt.Println()
	fmt.Print(resumed.Shard(0).Det.Report())
}
