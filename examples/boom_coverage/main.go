// BOOM coverage: reproduces the shape of experiment E5 — ChatFuzz
// reaches high condition coverage on the out-of-order BOOM model
// within a short virtual time (paper: 97.02% in 49 minutes).
package main

import (
	"fmt"

	"chatfuzz"
)

func main() {
	cfg := chatfuzz.DefaultPipelineConfig()
	cfg.PretrainSteps = 150
	cfg.CleanupSteps = 20
	cfg.CoverageSteps = 0

	fmt.Println("training (scaled-down)...")
	p := chatfuzz.NewPipeline(cfg)
	p.Pretrain()
	p.Cleanup()

	dut := chatfuzz.NewBoom()
	gen := chatfuzz.NewLLMGenerator(p, dut.Space().NumBins(), true, 7)
	f := chatfuzz.NewFuzzer(gen, dut, chatfuzz.Options{BatchSize: 16})

	const budget = 800
	fmt.Printf("fuzzing BOOM for %d tests...\n", budget)
	for f.Tests < budget {
		f.RunBatch()
		if f.Tests%160 == 0 {
			fmt.Printf("  %5d tests  %6.2f%%  (%.1f virtual min)\n",
				f.Tests, f.Coverage(), f.Clk.Hours()*60)
		}
	}
	fmt.Printf("\nBOOM condition coverage: %.2f%% after %.0f virtual minutes\n",
		f.Coverage(), f.Clk.Hours()*60)
	fmt.Println("(paper: 97.02% in 49 minutes — shape target: high coverage, fast)")
}
