// Benchmarks regenerating every table and figure of the paper's
// evaluation at bench scale (DESIGN.md §5 maps each benchmark to its
// experiment id). Coverage percentages, speedups and mismatch counts
// are attached to the benchmark output via ReportMetric, so
// `go test -bench=. -benchmem` prints the reproduced rows; the
// full-scale campaign lives in cmd/fuzz-bench.
package chatfuzz

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/campaign"
	"chatfuzz/internal/core"
	"chatfuzz/internal/corpus"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
	"chatfuzz/internal/telemetry"
)

// emitBench mirrors a benchmark's ReportMetric values into the bench
// trajectory file BENCH_pr<pr>.json when BENCH_JSON_DIR is set (CI
// points it at the workspace; locally it is usually unset and this is
// a no-op). telemetry.WriteBenchFile merges into an existing file, so
// several benchmarks contributing to the same PR's row accumulate one
// object instead of clobbering each other — this replaces the awk
// scrape of the benchmark stdout that CI used to assemble these files.
func emitBench(b *testing.B, pr int, vals map[string]float64) {
	b.Helper()
	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_pr%d.json", pr))
	if err := telemetry.WriteBenchFile(path, pr, vals); err != nil {
		b.Fatalf("writing %s: %v", path, err)
	}
}

// benchPipe is a once-trained small pipeline shared by the experiment
// benchmarks (training cost is excluded from their timings via
// ResetTimer).
var (
	benchOnce sync.Once
	benchPipe *core.Pipeline
)

func benchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultPipelineConfig()
		cfg.Corpus.Functions = 600
		cfg.Model = nn.Config{Ctx: 64, Dim: 48, Heads: 4, Layers: 2}
		cfg.MaxVocab = 1024
		cfg.PretrainSteps = 150
		cfg.CleanupSteps = 15
		cfg.CoverageSteps = 0
		benchPipe = core.NewPipeline(cfg)
		benchPipe.Pretrain()
		benchPipe.Cleanup()
	})
	return benchPipe
}

const benchBody = 24

// runBenchCampaign runs one scaled campaign and returns the (closed)
// fuzzer: its engine workers are released, its results stay readable.
func runBenchCampaign(gen core.Generator, dutName string, tests int, detect bool) *core.Fuzzer {
	var f *core.Fuzzer
	if dutName == "boom" {
		f = core.NewFuzzer(gen, boom.New(), core.Options{BatchSize: 16, Detect: detect})
	} else {
		f = core.NewFuzzer(gen, rocket.New(), core.Options{BatchSize: 16, Detect: detect})
	}
	defer f.Close()
	f.RunTests(tests)
	return f
}

// BenchmarkFig2CoverageOverTime is experiment E1: the ChatFuzz and
// TheHuzz coverage trajectories on Rocket (Fig. 2's two series).
func BenchmarkFig2CoverageOverTime(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := rocket.New()
		chat := runBenchCampaign(core.NewLLMGenerator(p, dut.Space().NumBins(), false, 1), "rocket", 320, false)
		huzz := runBenchCampaign(thehuzz.New(2, benchBody), "rocket", 320, false)
		b.ReportMetric(chat.Coverage(), "chatfuzz_%")
		b.ReportMetric(huzz.Coverage(), "thehuzz_%")
		b.ReportMetric(chat.Clk.Hours(), "virt_hours")
	}
}

// BenchmarkTableCoverage1800 is experiment E2: coverage at an equal
// (scaled) test budget — paper row: ChatFuzz 74.96% vs TheHuzz 67.4%.
func BenchmarkTableCoverage1800(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := rocket.New()
		chat := runBenchCampaign(core.NewLLMGenerator(p, dut.Space().NumBins(), false, 3), "rocket", 400, false)
		huzz := runBenchCampaign(thehuzz.New(4, benchBody), "rocket", 400, false)
		b.ReportMetric(chat.Coverage(), "chatfuzz_%")
		b.ReportMetric(huzz.Coverage(), "thehuzz_%")
	}
}

// BenchmarkTableCoverage199k is experiment E3 (scaled): coverage at a
// large budget — paper row: 79.14% vs 76.7% at 199 K tests.
func BenchmarkTableCoverage199k(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := rocket.New()
		chat := runBenchCampaign(core.NewLLMGenerator(p, dut.Space().NumBins(), false, 5), "rocket", 960, false)
		huzz := runBenchCampaign(thehuzz.New(6, benchBody), "rocket", 960, false)
		b.ReportMetric(chat.Coverage(), "chatfuzz_%")
		b.ReportMetric(huzz.Coverage(), "thehuzz_%")
	}
}

// BenchmarkTableTimeTo75 is experiment E4: virtual time for TheHuzz to
// reach ChatFuzz's small-budget coverage (paper: 34.6× slower).
func BenchmarkTableTimeTo75(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := rocket.New()
		chat := runBenchCampaign(core.NewLLMGenerator(p, dut.Space().NumBins(), false, 7), "rocket", 320, false)
		target := chat.Coverage()
		tChat := chat.TimeToCoverage(target)

		huzz := runBenchCampaign(thehuzz.New(8, benchBody), "rocket", 960, false)
		tHuzz := huzz.TimeToCoverage(target)
		if tHuzz < 0 {
			tHuzz = huzz.Clk.Hours() // lower bound: never reached
		}
		if tChat > 0 {
			b.ReportMetric(tHuzz/tChat, "speedup_x")
		}
		b.ReportMetric(target, "target_%")
	}
}

// BenchmarkBoomCoverage is experiment E5: ChatFuzz on the BOOM model
// (paper: 97.02% in 49 minutes).
func BenchmarkBoomCoverage(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := boom.New()
		chat := runBenchCampaign(core.NewLLMGenerator(p, dut.Space().NumBins(), false, 9), "boom", 320, false)
		b.ReportMetric(chat.Coverage(), "boom_%")
		b.ReportMetric(chat.Clk.Hours()*60, "virt_min")
	}
}

// BenchmarkFindingsMismatches is experiment E6: differential testing
// finds and classifies the injected findings (paper: 5 866 raw
// mismatches, >100 unique, Bug1/Bug2 + Findings 1-3).
func BenchmarkFindingsMismatches(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := rocket.New()
		f := runBenchCampaign(core.NewLLMGenerator(p, dut.Space().NumBins(), false, 11), "rocket", 320, true)
		b.ReportMetric(float64(f.Det.RawCount), "raw_mismatches")
		b.ReportMetric(float64(len(f.Det.Unique())), "unique")
		b.ReportMetric(float64(len(f.Det.Findings())), "findings")
	}
}

// BenchmarkTrainingStep2Reward is experiment E7: the Eq. 1 reward
// trend during PPO language cleanup.
func BenchmarkTrainingStep2Reward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultPipelineConfig()
		cfg.Corpus.Functions = 300
		cfg.Model = nn.Config{Ctx: 64, Dim: 32, Heads: 2, Layers: 1}
		cfg.MaxVocab = 512
		cfg.PretrainSteps = 60
		cfg.CleanupSteps = 10
		p := core.NewPipeline(cfg)
		p.Pretrain()
		st := p.Cleanup()
		b.ReportMetric(st[0].MeanReward, "reward_first")
		b.ReportMetric(st[len(st)-1].MeanReward, "reward_last")
		b.ReportMetric(st[len(st)-1].MeanKL, "kl_last")
	}
}

// BenchmarkTrainingStep3Reward is experiment E8: the coverage-reward
// trend during PPO coverage optimisation.
func BenchmarkTrainingStep3Reward(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := p.Cfg
		cfg.CoverageSteps = 6
		cfg.CoverageBatch = 8
		// CoverageTune mutates the model; run on a clone to keep the
		// shared bench pipeline stable.
		clone := *p
		clone.Cfg = cfg
		clone.Model = p.Model.Clone()
		st := clone.CoverageTune(rocket.New())
		b.ReportMetric(st[0].MeanReward, "reward_first")
		b.ReportMetric(st[len(st)-1].MeanReward, "reward_last")
	}
}

// BenchmarkAblationNoCleanup is ablation A1: invalid-instruction rate
// with and without training step 2.
func BenchmarkAblationNoCleanup(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := p.Cfg
		cfg.PretrainSteps = 80
		cfg.CleanupSteps = 0
		noClean := core.NewPipeline(cfg)
		noClean.Pretrain()
		b.ReportMetric(100*p.InvalidRate(15), "invalid_full_%")
		b.ReportMetric(100*noClean.InvalidRate(15), "invalid_noclean_%")
	}
}

// BenchmarkAblationReward is ablation A2: the paper's three-term
// coverage reward vs an incremental-only variant.
func BenchmarkAblationReward(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dut := rocket.New()
		gDef := core.NewLLMGenerator(p, dut.Space().NumBins(), true, 13)
		def := runBenchCampaign(gDef, "rocket", 240, false)

		gInc := core.NewLLMGenerator(p, dut.Space().NumBins(), true, 13)
		gInc.Weights = core.IncrementalOnlyWeights()
		inc := runBenchCampaign(gInc, "rocket", 240, false)

		b.ReportMetric(def.Coverage(), "default_%")
		b.ReportMetric(inc.Coverage(), "inconly_%")
	}
}

// BenchmarkAblationBaselines is ablation A3: baseline ordering.
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		huzz := runBenchCampaign(thehuzz.New(15, benchBody), "rocket", 480, false)
		valid := runBenchCampaign(randfuzz.New(16, benchBody), "rocket", 480, false)
		raw := randfuzz.New(17, benchBody)
		raw.Raw = true
		rawF := runBenchCampaign(raw, "rocket", 480, false)
		b.ReportMetric(huzz.Coverage(), "thehuzz_%")
		b.ReportMetric(valid.Coverage(), "random_%")
		b.ReportMetric(rawF.Coverage(), "raw_%")
	}
}

// BenchmarkCampaignOrchestrator runs the sharded multi-campaign
// orchestrator (4 shards, bandit over LLM/TheHuzz/random arms) against
// a single TheHuzz campaign at the same total test budget, reporting
// the merged fleet coverage, the fleet's virtual wall-clock speedup
// from sharding, and the real wall-clock speedup of running the fleet
// on per-shard execution engines versus the seed fork-join loop.
func BenchmarkCampaignOrchestrator(b *testing.B) {
	p := benchPipeline(b)
	newFleet := func(serial bool) *campaign.Orchestrator {
		o, err := campaign.New(campaign.Config{Shards: 4, BatchSize: 16, Seed: 1, Serial: serial},
			func() rtl.DUT { return rocket.New() },
			campaign.LLMArm(p),
			campaign.TheHuzzArm(benchBody),
			campaign.RandInstArm(benchBody),
			campaign.RandFuzzArm(benchBody))
		if err != nil {
			b.Fatal(err)
		}
		return o
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serialFleet := newFleet(true)
		serialFleet.RunTests(320)
		serialFleet.Close()
		tSerial := time.Since(t0)

		t1 := time.Now()
		o := newFleet(false)
		o.RunTests(320)
		tEngine := time.Since(t1)

		single := runBenchCampaign(thehuzz.New(1, benchBody), "rocket", 320, false)

		b.ReportMetric(o.Coverage(), "fleet_%")
		b.ReportMetric(single.Coverage(), "single_%")
		if h := o.Hours(); h > 0 {
			b.ReportMetric(single.Clk.Hours()/h, "speedup_x")
		}
		b.ReportMetric(tSerial.Seconds()/tEngine.Seconds(), "engine_speedup_x")
		var pulls float64
		for _, a := range o.Report().Arms {
			pulls += float64(a.Pulls)
		}
		o.Close()
		b.ReportMetric(pulls, "arm_pulls")
	}
}

// BenchmarkOnlineLearning is the fleet-learning acceptance benchmark.
// It runs the same 2-shard detecting fleet twice at an equal test
// budget — once with the online-learning LLM arm (per-shard PPO
// replicas, deterministic barrier weight averaging) and once with the
// frozen LLM arm — and reports both merged coverages at equal virtual
// time plus the learning delta. It also checkpoints a learning fleet
// mid-campaign and asserts (not merely reports) that the resumed run
// reproduces the uninterrupted trajectory, detector report and merged
// model weights bit-for-bit.
func BenchmarkOnlineLearning(b *testing.B) {
	p := benchPipeline(b)
	const tests = 384
	cfg := campaign.Config{Shards: 2, BatchSize: 16, Seed: 1, Detect: true}
	arms := func(learn bool) []campaign.ArmSpec {
		llm := campaign.LLMArm(p)
		if learn {
			llm = campaign.LearningLLMArm(p)
		}
		return []campaign.ArmSpec{llm, campaign.TheHuzzArm(benchBody)}
	}
	newFleet := func(learn bool) *campaign.Orchestrator {
		o, err := campaign.New(cfg, func() rtl.DUT { return rocket.New() }, arms(learn)...)
		if err != nil {
			b.Fatal(err)
		}
		return o
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		learning := newFleet(true)
		learning.RunTests(tests)
		frozen := newFleet(false)
		frozen.RunTests(tests)
		h := learning.Hours()
		if fh := frozen.Hours(); fh < h {
			h = fh
		}
		lc, fc := learning.CoverageAt(h), frozen.CoverageAt(h)
		b.ReportMetric(lc, "learn_%")
		b.ReportMetric(fc, "frozen_%")
		b.ReportMetric(lc-fc, "learn_delta_%")
		emitBench(b, 3, map[string]float64{
			"learn_pct": lc, "frozen_pct": fc, "learn_delta_pct": lc - fc,
		})
		frozen.Close()

		// Checkpoint/resume bit-identity at the half-way barrier.
		half := newFleet(true)
		half.RunTests(tests / 2)
		path := b.TempDir() + "/learn.json"
		if err := half.CheckpointFile(path); err != nil {
			b.Fatal(err)
		}
		half.Close()
		resumed, err := campaign.ResumeFile(path, func() rtl.DUT { return rocket.New() }, arms(true)...)
		if err != nil {
			b.Fatal(err)
		}
		resumed.RunTests(tests)
		want, got := learning.Trajectory(), resumed.Trajectory()
		if len(want) != len(got) {
			b.Fatalf("resumed trajectory has %d points, want %d", len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				b.Fatalf("resumed trajectory diverges at round %d: %+v vs %+v", j, got[j], want[j])
			}
		}
		for s := 0; s < cfg.Shards; s++ {
			if learning.Shard(s).Det.Report() != resumed.Shard(s).Det.Report() {
				b.Fatalf("shard %d detector report differs after resume", s)
			}
		}
		ww, gw := learning.LearnedWeights("chatfuzz-learn"), resumed.LearnedWeights("chatfuzz-learn")
		for j := range ww {
			if ww[j] != gw[j] {
				b.Fatalf("merged weights differ after resume at scalar %d", j)
			}
		}
		learning.Close()
		resumed.Close()
	}
}

// rigDUT models a simulator rig in the paper's cost regime: RTL
// simulation is the binding cost (VCS spends seconds per test, and
// BOOM's out-of-order core simulates several times slower than
// Rocket), while the toy core models here run in tens of
// microseconds. Each run therefore carries a per-test rig latency —
// still ~100x faster than the modelled VCS rigs, so the scheduling
// benchmark stays conservative — which makes the fleet heterogeneous
// the same way a real Rocket+BOOM farm is. rigDUT deliberately does
// not implement rtl.ReusableDUT: the latency is part of Run.
type rigDUT struct {
	rtl.DUT
	latency time.Duration
}

func (r *rigDUT) Name() string { return r.DUT.Name() + "-rig" }

func (r *rigDUT) Run(img mem.Image, maxInsts int) rtl.Result {
	time.Sleep(r.latency)
	return r.DUT.Run(img, maxInsts)
}

// BenchmarkFleetPool is the work-stealing acceptance benchmark: the
// same skewed mixed fleet — Rocket and (slower) BOOM rigs, with the
// online-learning LLM arm paying its generation and PPO updates on
// its shard's critical path — timed on per-shard execution pools
// (PR 2's layout: every shard owns its workers, so a shard's batch
// simulates serially on its own rig) and on the fleet-level
// work-stealing pool (one shared scheduler, design-affine workers,
// helping committers, so idle shards' capacity drains the slow
// design's queue). Reported metrics: the wall-clock speedup of the
// fleet pool, its worker utilization (busy time over workers ×
// elapsed, committer help separately), the shrink in summed barrier
// wait, and the steal/migration counts. The two runs' trajectories
// are asserted (not just reported) to be bit-identical, so the ratio
// measures pure scheduling efficiency.
//
// Since PR 9 both timed runs also carry the sub-round pipeline
// (RoundBatches 2, Inflight 4): feedback-free rounds submit their
// second batch while the first still simulates and drains through the
// in-order committer, which keeps the pool's stealable queue full
// between barriers. A third, untimed run on the seed fork-join loop
// (Config.Serial — no engines, no pipeline) is the determinism
// reference: the pipelined fleet pool must reproduce its trajectory
// and checkpoint bytes bit for bit.
func BenchmarkFleetPool(b *testing.B) {
	// Test-scale pipeline: generation stays cheap next to the rig
	// latency, as in the paper's regime, leaving the PPO update as
	// the learning shard's unstealable critical-path skew.
	p := core.NewPipeline(core.TestPipelineConfig())
	const tests = 512
	newDUTs := []func() rtl.DUT{
		func() rtl.DUT { return &rigDUT{DUT: rocket.New(), latency: 8 * time.Millisecond} },
		func() rtl.DUT { return &rigDUT{DUT: boom.New(), latency: 24 * time.Millisecond} },
	}
	arms := []campaign.ArmSpec{
		campaign.LearningLLMArm(p),
		campaign.TheHuzzArm(benchBody),
		campaign.RandInstArm(benchBody),
		campaign.RandFuzzArm(benchBody),
	}
	newFleet := func(fleet, serial bool) *campaign.Orchestrator {
		// RoundBatches and Inflight are identical across all three runs
		// (Inflight is execution-only and the serial path ignores it),
		// so the trajectories stay comparable bit for bit.
		cfg := campaign.Config{Shards: 8, BatchSize: 16, RoundBatches: 2, Seed: 1, Detect: true,
			Probe: true, Serial: serial, FleetPool: fleet, Inflight: 4}
		if fleet {
			// Rig work is latency-bound, not core-bound: workers beyond
			// GOMAXPROCS still buy overlap, exactly as they would
			// against external simulator processes.
			cfg.PoolWorkers = 12
		}
		o, err := campaign.NewMixed(cfg, newDUTs, arms...)
		if err != nil {
			b.Fatal(err)
		}
		return o
	}
	ckpt := func(o *campaign.Orchestrator) []byte {
		var buf bytes.Buffer
		if err := o.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}
	// Warm the harness caches and code paths outside the timings.
	w := newFleet(true, false)
	w.RunTests(128)
	w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		perShard := newFleet(false, false)
		perShard.RunTests(tests)
		tShard := time.Since(t0)

		t1 := time.Now()
		fleet := newFleet(true, false)
		fleet.RunTests(tests)
		tFleet := time.Since(t1)

		wantTraj, gotTraj := perShard.Trajectory(), fleet.Trajectory()
		if len(wantTraj) != len(gotTraj) {
			b.Fatalf("fleet-pool trajectory has %d points, per-shard has %d", len(gotTraj), len(wantTraj))
		}
		for j := range wantTraj {
			if wantTraj[j] != gotTraj[j] {
				b.Fatalf("fleet-pool trajectory diverges at round %d: %+v vs %+v", j, gotTraj[j], wantTraj[j])
			}
		}

		// The pipelined pool against the seed fork-join loop: the
		// strongest form of the determinism invariant — no engines, no
		// window, no pool on the reference side — asserted on both the
		// trajectory and the checkpoint bytes.
		serialRef := newFleet(false, true)
		serialRef.RunTests(tests)
		refTraj := serialRef.Trajectory()
		if len(refTraj) != len(gotTraj) {
			b.Fatalf("serial reference trajectory has %d points, pipelined fleet has %d", len(refTraj), len(gotTraj))
		}
		for j := range refTraj {
			if refTraj[j] != gotTraj[j] {
				b.Fatalf("pipelined fleet diverges from the serial reference at round %d: %+v vs %+v",
					j, gotTraj[j], refTraj[j])
			}
		}
		if !bytes.Equal(ckpt(serialRef), ckpt(fleet)) {
			b.Fatal("pipelined fleet checkpoint differs from the serial reference checkpoint")
		}
		serialRef.Close()

		st, ok := fleet.PoolStats()
		if !ok {
			b.Fatal("fleet run reported no pool stats")
		}
		b.ReportMetric(tShard.Seconds()/tFleet.Seconds(), "fleet_speedup_x")
		b.ReportMetric(100*st.WorkerBusy.Seconds()/(float64(st.Workers)*tFleet.Seconds()), "pool_util_%")
		b.ReportMetric(100*st.HelperBusy.Seconds()/tFleet.Seconds(), "helper_busy_%")
		b.ReportMetric(float64(st.Stolen), "steals")
		b.ReportMetric(float64(st.Migrations), "migrations")
		vals := map[string]float64{
			"fleet_speedup_x": tShard.Seconds() / tFleet.Seconds(),
			"pool_util_pct":   100 * st.WorkerBusy.Seconds() / (float64(st.Workers) * tFleet.Seconds()),
			"helper_busy_pct": 100 * st.HelperBusy.Seconds() / tFleet.Seconds(),
			"steals":          float64(st.Stolen),
			"migrations":      float64(st.Migrations),
		}
		ps, fs := perShard.ProbeSummary(), fleet.ProbeSummary()
		if fs.BarrierWait > 0 {
			b.ReportMetric(ps.BarrierWait.Seconds()/fs.BarrierWait.Seconds(), "barrier_shrink_x")
			vals["barrier_shrink_x"] = ps.BarrierWait.Seconds() / fs.BarrierWait.Seconds()
		}
		// The stealable half alone: sim-finish skew, with the learning
		// step's single-threaded barrier time (identical in both runs)
		// excluded. This is the ratio the pool is actually responsible
		// for; BenchmarkOffBarrier gates on it with learning moved off
		// the barrier entirely.
		if fs.SimWait > 0 {
			b.ReportMetric(ps.SimWait.Seconds()/fs.SimWait.Seconds(), "sim_shrink_x")
			vals["sim_shrink_x"] = ps.SimWait.Seconds() / fs.SimWait.Seconds()
		}
		b.ReportMetric(fleet.Coverage(), "fleet_%")
		vals["fleet_coverage_pct"] = fleet.Coverage()
		emitBench(b, 5, vals)
		b.ReportMetric(float64(fs.PipelinedBatches), "pipelined_batches")
		b.ReportMetric(float64(fs.InflightDepth), "inflight_depth")
		emitBench(b, 9, map[string]float64{
			"fleet_speedup_x":   tShard.Seconds() / tFleet.Seconds(),
			"pipelined_batches": float64(fs.PipelinedBatches),
			"inflight_depth":    float64(fs.InflightDepth),
			"snap_hits":         float64(fs.SnapHits),
			"snap_misses":       float64(fs.SnapMisses),
		})
		perShard.Close()
		fleet.Close()
	}
}

// BenchmarkOffBarrier is the off-barrier learning acceptance
// benchmark, in two parts.
//
// Part 1 reruns the skewed mixed rig fleet of BenchmarkFleetPool with
// the learning arm's PPO training moved off the barrier
// (Config.OffBarrier): buffered rollouts train on a background
// goroutine while the next round simulates, so a shard-round costs
// generation + simulation only and the probe's barrier wait is
// sim-dominated again. barrier_shrink_x is the summed per-shard
// barrier wait over the fleet pool's — the PR 5 metric that read 0.91
// while PPO sat on the critical path — and must clear 1.0 now that
// the pool's stolen skew is the whole story. The off-barrier fleet's
// trajectory and checkpoint bytes are asserted bit-identical to a
// synchronous-barrier fleet on the same pool (weight publication is
// staged one round late on both paths), and offbarrier_speedup_x
// reports the wall-clock ratio between the two.
//
// Part 2 is the learning-value guard at equal virtual time: the same
// 2-shard detecting fleet with the trained pipeline, learning
// (off-barrier) vs frozen LLM arm, reporting merged coverage of both
// and the delta — virtual-time metrics, so the gate is deterministic.
func BenchmarkOffBarrier(b *testing.B) {
	// Part 1 uses the test-scale pipeline: generation stays cheap next
	// to the rig latency, as in the paper's sim-bound regime.
	tp := core.NewPipeline(core.TestPipelineConfig())
	const rigTests = 512
	newDUTs := []func() rtl.DUT{
		func() rtl.DUT { return &rigDUT{DUT: rocket.New(), latency: 8 * time.Millisecond} },
		func() rtl.DUT { return &rigDUT{DUT: boom.New(), latency: 24 * time.Millisecond} },
	}
	rigArms := []campaign.ArmSpec{
		campaign.LearningLLMArm(tp),
		campaign.TheHuzzArm(benchBody),
		campaign.RandInstArm(benchBody),
		campaign.RandFuzzArm(benchBody),
	}
	newRig := func(pool, off bool) *campaign.Orchestrator {
		cfg := campaign.Config{Shards: 8, BatchSize: 16, Seed: 1, Detect: true, Probe: true,
			FleetPool: pool, OffBarrier: off}
		if pool {
			cfg.PoolWorkers = 12
		}
		o, err := campaign.NewMixed(cfg, newDUTs, rigArms...)
		if err != nil {
			b.Fatal(err)
		}
		return o
	}
	ckpt := func(o *campaign.Orchestrator) []byte {
		var buf bytes.Buffer
		if err := o.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}

	p := benchPipeline(b)
	const deltaTests = 384
	deltaArms := func(learn bool) []campaign.ArmSpec {
		llm := campaign.LLMArm(p)
		if learn {
			llm = campaign.LearningLLMArm(p)
		}
		return []campaign.ArmSpec{llm, campaign.TheHuzzArm(benchBody)}
	}
	newDelta := func(learn bool) *campaign.Orchestrator {
		// Seed 2: with publication staged one round late the learning
		// payoff shifts to later rounds, and seed 1's trajectory ends
		// before it overtakes the frozen arm at this budget.
		cfg := campaign.Config{Shards: 2, BatchSize: 16, Seed: 2, Detect: true, OffBarrier: learn}
		o, err := campaign.New(cfg, func() rtl.DUT { return rocket.New() }, deltaArms(learn)...)
		if err != nil {
			b.Fatal(err)
		}
		return o
	}

	// Warm the harness caches and code paths outside the timings.
	w := newRig(true, true)
	w.RunTests(128)
	w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Part 1: skewed rig fleet.
		perShard := newRig(false, true)
		perShard.RunTests(rigTests)

		t0 := time.Now()
		fleet := newRig(true, true)
		fleet.RunTests(rigTests)
		tOff := time.Since(t0)

		t1 := time.Now()
		syncRef := newRig(true, false)
		syncRef.RunTests(rigTests)
		tSync := time.Since(t1)

		wantTraj, gotTraj := syncRef.Trajectory(), fleet.Trajectory()
		if len(wantTraj) != len(gotTraj) {
			b.Fatalf("off-barrier trajectory has %d points, synchronous has %d", len(gotTraj), len(wantTraj))
		}
		for j := range wantTraj {
			if wantTraj[j] != gotTraj[j] {
				b.Fatalf("off-barrier trajectory diverges from synchronous at round %d: %+v vs %+v",
					j, gotTraj[j], wantTraj[j])
			}
		}
		if !bytes.Equal(ckpt(fleet), ckpt(syncRef)) {
			b.Fatal("off-barrier checkpoint differs from the synchronous checkpoint")
		}

		vals := map[string]float64{"offbarrier_speedup_x": tSync.Seconds() / tOff.Seconds()}
		ps, fs := perShard.ProbeSummary(), fleet.ProbeSummary()
		if fs.BarrierWait > 0 {
			b.ReportMetric(ps.BarrierWait.Seconds()/fs.BarrierWait.Seconds(), "barrier_shrink_x")
			vals["barrier_shrink_x"] = ps.BarrierWait.Seconds() / fs.BarrierWait.Seconds()
		}
		if fs.SimWait > 0 {
			b.ReportMetric(ps.SimWait.Seconds()/fs.SimWait.Seconds(), "sim_shrink_x")
			vals["sim_shrink_x"] = ps.SimWait.Seconds() / fs.SimWait.Seconds()
		}
		if fs.BarrierWait > 0 {
			b.ReportMetric(100*fs.LearnWait.Seconds()/fs.BarrierWait.Seconds(), "learn_wait_%")
			vals["learn_wait_pct"] = 100 * fs.LearnWait.Seconds() / fs.BarrierWait.Seconds()
		}
		b.ReportMetric(tSync.Seconds()/tOff.Seconds(), "offbarrier_speedup_x")
		perShard.Close()
		fleet.Close()
		syncRef.Close()

		// Part 2: learning value at equal virtual time.
		learning := newDelta(true)
		learning.RunTests(deltaTests)
		frozen := newDelta(false)
		frozen.RunTests(deltaTests)
		h := learning.Hours()
		if fh := frozen.Hours(); fh < h {
			h = fh
		}
		lc, fc := learning.CoverageAt(h), frozen.CoverageAt(h)
		b.ReportMetric(lc, "learn_%")
		b.ReportMetric(fc, "frozen_%")
		b.ReportMetric(lc-fc, "learn_delta_%")
		vals["learn_pct"], vals["frozen_pct"], vals["learn_delta_pct"] = lc, fc, lc-fc
		emitBench(b, 6, vals)
		learning.Close()
		frozen.Close()
	}
}

// BenchmarkTelemetryOverhead is the observability acceptance
// benchmark: the skewed mixed rig fleet of BenchmarkFleetPool run on
// the shared pool with off-barrier learning, timed with telemetry
// fully disabled and fully armed (flight recorder, metrics registry
// and probes all on). The two trajectories are asserted bit-identical
// — telemetry is execution-only — and telemetry_overhead_% reports
// the wall-clock cost of recording, which CI gates below 3%. The rig
// latencies dominate the timing the way VCS does in the paper's
// regime, so the ratio is stable on a noisy shared runner.
func BenchmarkTelemetryOverhead(b *testing.B) {
	p := core.NewPipeline(core.TestPipelineConfig())
	const tests = 384
	newDUTs := []func() rtl.DUT{
		func() rtl.DUT { return &rigDUT{DUT: rocket.New(), latency: 8 * time.Millisecond} },
		func() rtl.DUT { return &rigDUT{DUT: boom.New(), latency: 24 * time.Millisecond} },
	}
	arms := []campaign.ArmSpec{
		campaign.LearningLLMArm(p),
		campaign.TheHuzzArm(benchBody),
		campaign.RandInstArm(benchBody),
		campaign.RandFuzzArm(benchBody),
	}
	run := func(armed bool) (time.Duration, []core.ProgressPoint) {
		cfg := campaign.Config{Shards: 8, BatchSize: 16, Seed: 1, Detect: true,
			FleetPool: true, PoolWorkers: 12, OffBarrier: true}
		var rec *telemetry.Recorder
		if armed {
			cfg.Probe = true
			rec = telemetry.NewRecorder(io.Discard)
			cfg.Telemetry = rec
			cfg.Metrics = telemetry.NewRegistry()
		}
		o, err := campaign.NewMixed(cfg, newDUTs, arms...)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		o.RunTests(tests)
		dt := time.Since(t0)
		traj := o.Trajectory()
		o.Close()
		if rec != nil {
			if err := rec.Close(); err != nil {
				b.Fatal(err)
			}
		}
		return dt, traj
	}
	// Warm the harness caches and code paths outside the timings.
	if _, traj := run(true); len(traj) == 0 {
		b.Fatal("warmup run produced no trajectory")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tOff, wantTraj := run(false)
		tOn, gotTraj := run(true)
		if len(wantTraj) != len(gotTraj) {
			b.Fatalf("armed trajectory has %d points, disabled has %d", len(gotTraj), len(wantTraj))
		}
		for j := range wantTraj {
			if wantTraj[j] != gotTraj[j] {
				b.Fatalf("trajectory diverges at round %d with telemetry armed: %+v vs %+v",
					j, gotTraj[j], wantTraj[j])
			}
		}
		overhead := 100 * (tOn.Seconds()/tOff.Seconds() - 1)
		b.ReportMetric(overhead, "telemetry_overhead_%")
		emitBench(b, 8, map[string]float64{"telemetry_overhead_pct": overhead})
	}
}

// ---- Component throughput benchmarks ----

// BenchmarkRocketSimulation measures DUT simulation throughput.
func BenchmarkRocketSimulation(b *testing.B) {
	r := rocket.New()
	c := corpus.Generate(corpus.Config{Seed: 1, Functions: 32, MinLen: 20, MaxLen: 40})
	imgs := make([]mem.Image, len(c.Functions))
	for i, fn := range c.Functions {
		imgs[i], _ = prog.MustBuild(prog.Program{Body: fn})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(imgs[i%len(imgs)], 2000)
	}
}

// BenchmarkBoomSimulation measures OoO model throughput.
func BenchmarkBoomSimulation(b *testing.B) {
	bm := boom.New()
	c := corpus.Generate(corpus.Config{Seed: 2, Functions: 32, MinLen: 20, MaxLen: 40})
	imgs := make([]mem.Image, len(c.Functions))
	for i, fn := range c.Functions {
		imgs[i], _ = prog.MustBuild(prog.Program{Body: fn})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Run(imgs[i%len(imgs)], 2000)
	}
}

// BenchmarkGoldenISS measures golden-model throughput.
func BenchmarkGoldenISS(b *testing.B) {
	c := corpus.Generate(corpus.Config{Seed: 3, Functions: 32, MinLen: 20, MaxLen: 40})
	imgs := make([]mem.Image, len(c.Functions))
	for i, fn := range c.Functions {
		imgs[i], _ = prog.MustBuild(prog.Program{Body: fn})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mem.Platform()
		m.Load(imgs[i%len(imgs)])
		s := iss.New(m, imgs[i%len(imgs)].Entry)
		s.Run(2000)
	}
}

// BenchmarkLMGeneration measures sampler throughput (tokens/op in the
// fuzzing loop's generation path).
func BenchmarkLMGeneration(b *testing.B) {
	p := benchPipeline(b)
	rng := rand.New(rand.NewSource(1))
	prompt := []int{0, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Model.Generate(rng, prompt, 48, 1.0, 16, 1)
	}
}

// BenchmarkPPOStep measures one PPO optimisation step.
func BenchmarkPPOStep(b *testing.B) {
	p := benchPipeline(b)
	model := p.Model.Clone()
	rng := rand.New(rand.NewSource(2))
	cfg := ppo.DefaultConfig(1, 2)
	cfg.MaxNewTokens = 24
	tr := ppo.NewTrainer(model, cfg, rng)
	prompts := [][]int{{0, 4, 5}, {0, 6, 7}, {0, 8, 9}, {0, 10, 11}}
	reward := func(tokens []int, promptN int) float64 { return float64(len(tokens) - promptN) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(prompts, reward)
	}
}

// BenchmarkEngine is the execution-engine acceptance benchmark: the
// same fixed-seed campaign (Rocket, differential detection on,
// GOMAXPROCS simulation workers) timed on the seed fork-join loop and
// on the persistent pipelined engine. The speedup_x metric is
// serial-time over engine-time; the two runs produce bit-identical
// trajectories (asserted by TestEngineMatchesSerialPath), so the ratio
// measures pure execution efficiency: persistent workers, reusable
// per-worker scratch, pooled coverage sets and trace buffers, the
// per-worker decode cache and golden snapshot tree, and — with the
// Inflight window — whole batches pipelined through the engine while
// earlier batches drain through the in-order committer.
func BenchmarkEngine(b *testing.B) {
	const tests = 640
	campaign := func(serial bool) time.Duration {
		g := randfuzz.New(21, benchBody)
		f := core.NewFuzzer(g, rocket.New(), core.Options{BatchSize: 16, Detect: true, Serial: serial, Inflight: 4})
		defer f.Close()
		t0 := time.Now()
		f.RunTests(tests)
		return time.Since(t0)
	}
	campaign(false) // warm the harness caches outside the timings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tSerial := campaign(true)
		tEngine := campaign(false)
		b.ReportMetric(tSerial.Seconds()/tEngine.Seconds(), "speedup_x")
		b.ReportMetric(float64(tests)/tEngine.Seconds(), "engine_tests/s")
		b.ReportMetric(float64(tests)/tSerial.Seconds(), "serial_tests/s")
		emitBench(b, 3, map[string]float64{
			"engine_speedup_x":   tSerial.Seconds() / tEngine.Seconds(),
			"engine_tests_per_s": float64(tests) / tEngine.Seconds(),
			"serial_tests_per_s": float64(tests) / tSerial.Seconds(),
		})
		emitBench(b, 9, map[string]float64{
			"engine_speedup_x":   tSerial.Seconds() / tEngine.Seconds(),
			"engine_tests_per_s": float64(tests) / tEngine.Seconds(),
		})
	}
}
