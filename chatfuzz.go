// Package chatfuzz is the public API of the ChatFuzz reproduction: an
// ML-based hardware fuzzer (DATE 2024, arXiv:2404.06856) implemented
// end-to-end in pure Go — a GPT-2-style language model trained on
// machine code, refined with PPO against a disassembler and against
// RTL condition coverage, fuzzing simulated RocketCore/BOOM designs
// with differential mismatch detection against a golden-model ISS.
//
// Quickstart (single campaign):
//
//	cfg := chatfuzz.DefaultPipelineConfig()
//	p := chatfuzz.NewPipeline(cfg)
//	p.Run(chatfuzz.NewRocket())                      // 3-step training
//	dut := chatfuzz.NewRocket()
//	gen := chatfuzz.NewLLMGenerator(p, dut.Space().NumBins(), true, 1)
//	f := chatfuzz.NewFuzzer(gen, dut, chatfuzz.Options{BatchSize: 16, Detect: true})
//	f.RunTests(500)
//	fmt.Println(f.Coverage(), f.Det.Report())
//
// Campaign orchestrator quickstart (sharded fleet): instead of one
// fuzzer, run N concurrent campaigns — each with its own DUT instance
// and virtual clock — and let a discounted UCB1 bandit allocate each
// round's batches among generator arms, rewarded by incremental merged
// coverage per virtual hour. Shard coverage bitmaps are aggregated into
// a fleet-global snapshot every round, and TheHuzz mutation pools are
// synced across shards and seeded with every arm's coverage-advancing
// programs:
//
//	o, err := chatfuzz.NewOrchestrator(
//	    chatfuzz.CampaignConfig{Shards: 4, BatchSize: 16, Seed: 1},
//	    chatfuzz.NewRocket,
//	    chatfuzz.LLMArm(p), chatfuzz.TheHuzzArm(24),
//	    chatfuzz.RandInstArm(24), chatfuzz.RandFuzzArm(24))
//	o.RunTests(2000)
//	fmt.Println(o.Report())          // merged coverage + per-arm pulls
//	for _, pt := range o.Trajectory() { ... }  // fleet-level Fig. 2 curve
//
// Fleets checkpoint and resume deterministically: a resumed run's
// merged trajectory is bit-identical to an uninterrupted one, because
// generator seeds are a pure function of (campaign seed, shard, round)
// and all scheduling state is serialized:
//
//	o.CheckpointFile("fleet.json")
//	o2, err := chatfuzz.ResumeCampaignFile("fleet.json", chatfuzz.NewRocket,
//	    chatfuzz.LLMArm(p), chatfuzz.TheHuzzArm(24),
//	    chatfuzz.RandInstArm(24), chatfuzz.RandFuzzArm(24))
//	o2.RunTests(4000)
//
// Execution engine: batches run on a persistent, pipelined execution
// engine by default — a worker pool that lives across rounds with
// reusable per-worker scratch (platform memory, golden-model ISS,
// caches, coverage sets, trace buffers), committing results in
// deterministic input order and double-buffering generation against
// simulation. Options.Serial (and CampaignConfig.Serial) fall back to
// the original fork-join loop, and CampaignConfig.FleetPool goes the
// other way: one fleet-level work-stealing pool shared by every
// shard, with design-affine workers that steal across shards and
// designs when their own queue runs dry — the high-utilization layout
// for skewed fleets (CampaignConfig.Probe records per-round barrier
// wait — split into the sim-skew wait a pool can steal and the
// single-threaded learning wait it cannot — plus steal/migration
// counts, via Orchestrator.Probes and
// ProbeSummary). All three paths are bit-identical, so the switch
// only trades throughput. Call Fuzzer.Close (or Orchestrator.Close)
// when a campaign is finished to release the engine's workers
// deterministically.
//
// Mixed fleets: NewMixedOrchestrator runs heterogeneous designs in
// one fleet — shard s simulates newDUTs[s%len(newDUTs)], each design
// keeps its own merged coverage bitmap, and the bandit schedules arms
// across the whole fleet:
//
//	o, err := chatfuzz.NewMixedOrchestrator(
//	    chatfuzz.CampaignConfig{Shards: 4, Seed: 1},
//	    []func() chatfuzz.DUT{chatfuzz.NewRocket, chatfuzz.NewBoom},
//	    chatfuzz.TheHuzzArm(24), chatfuzz.RandInstArm(24))
//
// Online fleet learning: LLMArm samples the trained model read-only,
// but LearningLLMArm keeps the model improving *during* the campaign —
// the paper's feedback arrow, under sharding. Each shard owns a deep
// copy of the model; rollouts sampled from it are buffered per round,
// PPO trains on them off the round's critical path, and the trained
// replicas are averaged deterministically (a fixed-order pairwise
// tournament, exact mean in real arithmetic) and published one round
// late — the internal/fleetlearn invariant, making the trajectory a
// pure function of seeds and shard order. CampaignConfig.OffBarrier
// overlaps that training with the next round's simulation on a
// background goroutine, bit-identical to the synchronous path, and
// CampaignConfig.UpdateBudget skips updates while merged coverage is
// plateaued to buy virtual time for detection fleets. Checkpoints
// (v4) carry the published and staged weight vectors and each shard's
// clustered mismatch-detector state, so a learning campaign resumed
// even mid-lag replays bit-identically and reports cumulative
// findings:
//
//	o, err := chatfuzz.NewOrchestrator(
//	    chatfuzz.CampaignConfig{Shards: 4, Seed: 1, Detect: true},
//	    chatfuzz.NewRocket,
//	    chatfuzz.LearningLLMArm(p), chatfuzz.TheHuzzArm(24))
//	o.RunTests(2000)
//	w := o.LearnedWeights("chatfuzz-learn") // merged policy weights
//
// Detection-oriented scheduling: CampaignConfig.MismatchWeight blends
// a mismatch-novelty term into the bandit reward — growth of the
// detector's non-filtered signature clusters per virtual hour, so a
// noisy divergence repeating one signature pays once — steering
// rounds toward generators that surface new kinds of DUT-vs-golden
// divergences rather than raw coverage alone.
package chatfuzz

import (
	"io"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/campaign"
	"chatfuzz/internal/core"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/exp"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

// Core fuzzing types.
type (
	// Pipeline is ChatFuzz's three-step training pipeline.
	Pipeline = core.Pipeline
	// PipelineConfig parameterises training.
	PipelineConfig = core.PipelineConfig
	// Fuzzer drives the coverage-guided fuzzing loop.
	Fuzzer = core.Fuzzer
	// Options configures a fuzzing campaign.
	Options = core.Options
	// Generator produces batches of test programs.
	Generator = core.Generator
	// LLMGenerator is the model-backed generator.
	LLMGenerator = core.LLMGenerator
	// ProgressPoint samples the coverage trajectory.
	ProgressPoint = core.ProgressPoint
	// RewardWeights shapes the coverage reward.
	RewardWeights = core.RewardWeights

	// DUT is a simulated design under test.
	DUT = rtl.DUT
	// Result is one simulation's outcome.
	Result = rtl.Result
	// Program is one fuzz input.
	Program = prog.Program

	// Detector is the differential Mismatch Detector.
	Detector = mismatch.Detector
	// Finding classifies a mismatch root cause.
	Finding = mismatch.Finding

	// CoverageScores are the Coverage Calculator's per-input values.
	CoverageScores = cov.Scores

	// Suite runs the paper's full experiment set.
	Suite = exp.Suite
	// Scale sizes an experiment run.
	Scale = exp.Scale

	// Orchestrator runs sharded multi-campaign fleets under bandit
	// generator scheduling.
	Orchestrator = campaign.Orchestrator
	// CampaignConfig parameterises an orchestrated fleet.
	CampaignConfig = campaign.Config
	// ArmSpec names a schedulable generator arm.
	ArmSpec = campaign.ArmSpec
	// CampaignReport summarises a fleet run, including per-arm pulls.
	CampaignReport = campaign.Report
	// ArmReport is one arm's scheduling statistics.
	ArmReport = campaign.ArmReport
	// DesignReport is one design's merged coverage in a mixed fleet.
	DesignReport = campaign.DesignReport
)

// Finding identifiers (paper §V-B).
const (
	FindingBug1 = mismatch.FindingBug1
	FindingBug2 = mismatch.FindingBug2
	Finding1    = mismatch.Finding1
	Finding2    = mismatch.Finding2
	Finding3    = mismatch.Finding3
)

// DefaultPipelineConfig returns the default training configuration.
func DefaultPipelineConfig() PipelineConfig { return core.DefaultPipelineConfig() }

// NewPipeline builds corpus, tokenizer and model.
func NewPipeline(cfg PipelineConfig) *Pipeline { return core.NewPipeline(cfg) }

// NewFuzzer assembles a fuzzing campaign.
func NewFuzzer(gen Generator, dut DUT, opts Options) *Fuzzer {
	return core.NewFuzzer(gen, dut, opts)
}

// NewLLMGenerator wires a trained pipeline into the fuzzing loop.
func NewLLMGenerator(p *Pipeline, binsTotal int, online bool, seed int64) *LLMGenerator {
	return core.NewLLMGenerator(p, binsTotal, online, seed)
}

// NewRocket returns the RocketCore DUT model (with the paper's five
// injected findings).
func NewRocket() DUT { return rocket.New() }

// NewBoom returns the BOOM DUT model.
func NewBoom() DUT { return boom.New() }

// NewTheHuzz returns the TheHuzz-style mutation baseline.
func NewTheHuzz(seed int64, bodyInstrs int) Generator { return thehuzz.New(seed, bodyInstrs) }

// NewRandomRegression returns the random-regression baseline.
func NewRandomRegression(seed int64, bodyInstrs int) Generator {
	return randfuzz.New(seed, bodyInstrs)
}

// NewOrchestrator builds a sharded fleet: one DUT per shard via
// newDUT, one instance of every arm per shard, and a shared discounted
// UCB1 bandit allocating rounds among the arms.
func NewOrchestrator(cfg CampaignConfig, newDUT func() DUT, arms ...ArmSpec) (*Orchestrator, error) {
	return campaign.New(cfg, newDUT, arms...)
}

// NewMixedOrchestrator builds a heterogeneous fleet: shard s simulates
// the design built by newDUTs[s % len(newDUTs)] (e.g. an alternating
// Rocket+BOOM fleet), with per-design merged coverage bitmaps and a
// fleet-wide bandit.
func NewMixedOrchestrator(cfg CampaignConfig, newDUTs []func() DUT, arms ...ArmSpec) (*Orchestrator, error) {
	return campaign.NewMixed(cfg, newDUTs, arms...)
}

// ResumeCampaign rebuilds a fleet from a checkpoint written by
// Orchestrator.Checkpoint; the continued merged trajectory is
// bit-identical to an uninterrupted run.
func ResumeCampaign(r io.Reader, newDUT func() DUT, arms ...ArmSpec) (*Orchestrator, error) {
	return campaign.Resume(r, newDUT, arms...)
}

// ResumeCampaignFile rebuilds a fleet from a checkpoint file.
func ResumeCampaignFile(path string, newDUT func() DUT, arms ...ArmSpec) (*Orchestrator, error) {
	return campaign.ResumeFile(path, newDUT, arms...)
}

// ResumeMixedCampaign rebuilds a heterogeneous fleet from a checkpoint;
// newDUTs must reproduce the original shard-to-design mapping.
func ResumeMixedCampaign(r io.Reader, newDUTs []func() DUT, arms ...ArmSpec) (*Orchestrator, error) {
	return campaign.ResumeMixed(r, newDUTs, arms...)
}

// LLMArm schedules a trained pipeline's model as a frozen generator
// arm (no updates during the campaign).
func LLMArm(p *Pipeline) ArmSpec { return campaign.LLMArm(p) }

// LearningLLMArm schedules the model as an online-learning arm:
// per-shard PPO replicas with deterministic weight averaging at every
// round barrier. Resuming a checkpointed learning fleet requires the
// same trained pipeline the original run used.
func LearningLLMArm(p *Pipeline) ArmSpec { return campaign.LearningLLMArm(p) }

// TheHuzzArm schedules the TheHuzz mutation baseline as an arm.
func TheHuzzArm(bodyInstrs int) ArmSpec { return campaign.TheHuzzArm(bodyInstrs) }

// RandInstArm schedules the ISA-aware random generator as an arm.
func RandInstArm(bodyInstrs int) ArmSpec { return campaign.RandInstArm(bodyInstrs) }

// RandFuzzArm schedules the raw random-word generator as an arm.
func RandFuzzArm(bodyInstrs int) ArmSpec { return campaign.RandFuzzArm(bodyInstrs) }

// QuickScale returns the laptop-sized experiment scale.
func QuickScale() Scale { return exp.Quick() }

// PaperScale returns the full-scale experiment configuration.
func PaperScale() Scale { return exp.Paper() }
