module chatfuzz

go 1.24
