package main

// The farm client subcommands: submit, status and watch talk to a
// campd daemon's HTTP API (cmd/campd). Submission is durable the
// moment the command returns — the daemon fsyncs the job into its
// queue log before acknowledging — and a watch survives daemon
// crashes: reconnect and the stream replays from the checkpoint's
// trajectory, bit-identical to the history an uninterrupted daemon
// would have served.

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"chatfuzz/internal/farm"
)

const defaultFarmAddr = "127.0.0.1:8700"

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func printJob(st farm.JobStatus) {
	line := fmt.Sprintf("%-8s %-8s round %-4d %6d tests  %6.2f%% cov",
		st.ID, st.State, st.Round, st.Tests, st.Coverage)
	if st.Resumes > 0 {
		line += fmt.Sprintf("  (%d resumes)", st.Resumes)
	}
	if st.Error != "" {
		line += "  error: " + st.Error
	}
	fmt.Println(line)
}

func watchReports(c *farm.Client, id string, from int) {
	st, err := c.Watch(id, from, func(rep farm.RoundReport) error {
		fmt.Printf("%s round %-4d %6d tests  %.2f virtual h  %6.2f%% cov\n",
			id, rep.Round, rep.Tests, rep.Hours, rep.Coverage)
		return nil
	})
	if err != nil {
		log.Fatalf("watch: %v", err)
	}
	printJob(st)
	if st.State == farm.JobFailed {
		log.Fatalf("watch: %s failed", id)
	}
}

// submitMain sends a campaign job to a campd daemon.
func submitMain(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		addr       = fs.String("addr", defaultFarmAddr, "campd daemon address")
		name       = fs.String("name", "", "optional job label")
		tests      = fs.Int("tests", 2000, "total fleet test budget")
		shards     = fs.Int("shards", 4, "concurrent campaigns")
		batch      = fs.Int("batch", 16, "tests per round per shard")
		roundBatch = fs.Int("round-batches", 1, "batches per shard between aggregation barriers")
		body       = fs.Int("body", 24, "instructions per test")
		seed       = fs.Int64("seed", 1, "campaign seed")
		dutNames   = fs.String("dut", "rocket", "designs under test: comma list of rocket/boom")
		armNames   = fs.String("arms", "thehuzz,randinst,randfuzz", "generator arms: comma list of thehuzz/randinst/randfuzz/chatfuzz/chatfuzz-learn")
		detect     = fs.Bool("detect", false, "enable differential testing in every shard")
		mweight    = fs.Float64("mismatch-weight", 0, "bandit reward weight of the mismatch-rate term")
		budget     = fs.Int("update-budget", 0, "learning-arm PPO skip budget (0 = never skip)")
		ckptEvery  = fs.Int("checkpoint-every", 1, "durable checkpoint cadence in rounds (a crash re-simulates at most this many rounds)")
		watch      = fs.Bool("watch", false, "stream round reports until the job finishes")
	)
	fs.Parse(args)

	c := farm.NewClient(*addr)
	st, err := c.Submit(farm.JobSpec{
		Name:            *name,
		DUTs:            splitList(*dutNames),
		Arms:            splitList(*armNames),
		Tests:           *tests,
		Shards:          *shards,
		BatchSize:       *batch,
		RoundBatches:    *roundBatch,
		Seed:            *seed,
		Body:            *body,
		Detect:          *detect,
		MismatchWeight:  *mweight,
		UpdateBudget:    *budget,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("queued %s on %s\n", st.ID, *addr)
	if *watch {
		watchReports(c, st.ID, 0)
	}
}

// statusMain prints one job's status, or every job's without an
// argument.
func statusMain(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", defaultFarmAddr, "campd daemon address")
	fs.Parse(args)

	c := farm.NewClient(*addr)
	if fs.NArg() > 0 {
		st, err := c.Job(fs.Arg(0))
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		printJob(st)
		return
	}
	jobs, err := c.Jobs()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return
	}
	for _, st := range jobs {
		printJob(st)
	}
}

// watchMain streams a job's round reports until it finishes.
func watchMain(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", defaultFarmAddr, "campd daemon address")
	from := fs.Int("from", 0, "first round index to replay (0 streams the full history)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("watch: usage: fuzz-bench watch [-addr host:port] <job-id>")
	}
	watchReports(farm.NewClient(*addr), fs.Arg(0), *from)
}
