// Command fuzz-bench regenerates every table and figure of the
// paper's evaluation (DESIGN.md §5: experiments E1–E8 and ablations
// A1–A3) at the chosen scale, printing paper-style rows next to the
// paper's reported values.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"chatfuzz/internal/exp"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or paper")
		which     = flag.String("exp", "all", "comma list: fig2,budget,speedup,boom,findings,training,a1,a2,a3 or all")
	)
	flag.Parse()

	var sc exp.Scale
	switch *scaleName {
	case "quick":
		sc = exp.Quick()
	case "paper":
		sc = exp.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	want := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]

	s := exp.NewSuite(sc, os.Stdout)

	needRocket := all || want["fig2"] || want["budget"] || want["speedup"] ||
		want["findings"] || want["a3"]
	if needRocket {
		s.RunRocketCampaigns()
	}
	if all || want["fig2"] {
		s.Fig2(os.Stdout)
	}
	if all || want["budget"] {
		s.EqualBudget(os.Stdout)
	}
	if all || want["speedup"] {
		s.Speedup(os.Stdout)
	}
	if all || want["boom"] {
		s.RunBoom(os.Stdout)
	}
	if all || want["findings"] {
		s.FindingsReport(os.Stdout)
	}
	if all || want["training"] {
		s.TrainingCurves(os.Stdout)
	}
	if all || want["a3"] {
		s.RunBaselines(os.Stdout)
	}
	if all || want["a2"] {
		s.AblationReward(os.Stdout, sc.TestsEqual/2)
	}
	if all || want["a1"] {
		s.AblationNoCleanup(os.Stdout, sc.TestsEqual/2)
	}
	fmt.Println("\ndone.")
}
