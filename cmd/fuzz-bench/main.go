// Command fuzz-bench regenerates every table and figure of the
// paper's evaluation (DESIGN.md §5: experiments E1–E8 and ablations
// A1–A3) at the chosen scale, printing paper-style rows next to the
// paper's reported values.
//
// The campaign subcommand instead runs the sharded multi-campaign
// orchestrator: N concurrent campaigns with a discounted UCB1 bandit
// scheduling generator arms, with optional checkpoint/resume:
//
//	fuzz-bench campaign -shards 4 -tests 2000 -checkpoint fleet.json
//	fuzz-bench campaign -resume -checkpoint fleet.json -tests 4000
//
// Campaign knobs of note: -dut takes a comma list (e.g.
// "rocket,boom") to run a mixed fleet whose shards alternate designs;
// -parallel sets simulation workers per shard; -serial disables the
// persistent batch execution engine and runs the reference fork-join
// loop; -fleetpool shares one fleet-level work-stealing execution
// pool (design-affine workers) across every shard instead of
// per-shard pools. All three execution paths are bit-identical — the
// flags exist for benchmarking and debugging. -offbarrier moves the
// learning arm's PPO training onto a background goroutine overlapped
// with the next round's simulation (also bit-identical: weight
// publication is staged one round late either way), and
// -update-budget skips PPO steps while merged coverage is plateaued.
// -probe records and prints per-round scheduler statistics (sim and
// learn barrier waits, steals, per-design migrations), the
// scale-probe mode for runs like
// `fuzz-bench campaign -shards 32 -fleetpool -probe`.
// See README.md in this directory for the full campaign flag guide.
//
// The submit, status and watch subcommands are the client side of the
// campaign farm daemon (cmd/campd): submit a job spec to a daemon,
// inspect its queue, and stream a job's round reports:
//
//	fuzz-bench submit -addr 127.0.0.1:8700 -tests 2000 -watch
//	fuzz-bench status -addr 127.0.0.1:8700
//	fuzz-bench watch -addr 127.0.0.1:8700 job-1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"chatfuzz/internal/atomicio"
	"chatfuzz/internal/campaign"
	"chatfuzz/internal/core"
	"chatfuzz/internal/exp"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
	"chatfuzz/internal/telemetry"
)

// campaignMain runs the orchestrator subcommand with its own flag set.
func campaignMain(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	var (
		shards     = fs.Int("shards", 4, "concurrent campaigns")
		tests      = fs.Int("tests", 2000, "total fleet test budget")
		batch      = fs.Int("batch", 16, "tests per round per shard")
		roundBatch = fs.Int("round-batches", 1, "batches per shard between aggregation barriers (amortises the barrier at coarser bandit feedback; >1 gives -inflight batches to overlap)")
		body       = fs.Int("body", 24, "instructions per test")
		seed       = fs.Int64("seed", 1, "campaign seed")
		dutNames   = fs.String("dut", "rocket", "designs under test: comma list of rocket/boom; shards alternate designs")
		parallel   = fs.Int("parallel", 1, "simulation workers per shard (0 = GOMAXPROCS)")
		inflight   = fs.Int("inflight", 1, "in-flight batch window per shard: >1 overlaps batch generation/simulation with earlier batches' in-order commit for feedback-free arms (bit-identical trajectories; execution-only)")
		serial     = fs.Bool("serial", false, "run the reference fork-join loop instead of the batch execution engine")
		fleetPool  = fs.Bool("fleetpool", false, "share one fleet-level work-stealing execution pool across every shard (design-affine workers; bit-identical to -serial and per-shard pools)")
		poolWork   = fs.Int("pool-workers", 0, "fleet pool workers (0 = GOMAXPROCS; requires -fleetpool)")
		probe      = fs.Bool("probe", false, "record and print per-round scheduler statistics: barrier wait, spread, steals, helps, per-design migrations")
		llm        = fs.Bool("llm", false, "train a pipeline and schedule the frozen LLM arm")
		learn      = fs.Bool("learn", false, "train a pipeline and schedule the online-learning LLM arm (per-shard replicas, staged pairwise weight averaging); reports the coverage delta over an identical frozen-LLM fleet")
		offBarrier = fs.Bool("offbarrier", false, "run learning-arm PPO updates on a background goroutine, overlapped with the next round's simulation (one-round-late publication either way, so trajectories are bit-identical; requires -learn to matter)")
		budget     = fs.Int("update-budget", 0, "skip learning-arm PPO updates after this many consecutive zero-new-coverage rounds, until coverage moves again (0 = never skip)")
		quickPipe  = fs.Bool("quickpipe", false, "train the tiny test-scale pipeline instead of the default one (smoke runs)")
		mweight    = fs.Float64("mismatch-weight", 0, "bandit reward weight of the mismatch-rate term, 0..1 (enables -detect style steering; requires detection)")
		detect     = fs.Bool("detect", false, "enable differential testing in every shard")
		checkpoint = fs.String("checkpoint", "", "checkpoint file to write after the run")
		resume     = fs.Bool("resume", false, "resume from -checkpoint instead of starting fresh")
		traceFile  = fs.String("trace", "", "write a Chrome trace-event JSON file of the run's spans (open in Perfetto or chrome://tracing); execution-only, trajectories are unaffected")
		metricsF   = fs.String("metrics", "", "write periodic JSONL metrics snapshots to this file (implies -probe); execution-only")
		metricsDt  = fs.Duration("metrics-every", 5*time.Second, "snapshot interval for -metrics")
		telemAddr  = fs.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060, :0 picks a port)")
		probeJSON  = fs.String("probe-json", "", "dump per-round scheduler probes as JSONL to this file after the run (implies -probe)")
	)
	fs.Parse(args)

	var newDUTs []func() rtl.DUT
	for _, name := range strings.Split(*dutNames, ",") {
		switch strings.TrimSpace(name) {
		case "rocket":
			newDUTs = append(newDUTs, func() rtl.DUT { return rocket.New() })
		case "boom":
			newDUTs = append(newDUTs, func() rtl.DUT { return boom.New() })
		default:
			log.Fatalf("unknown dut %q", name)
		}
	}
	newDUT := newDUTs[0]
	// Fail fast on a bad checkpoint before any expensive work: with
	// -llm the pipeline training below takes minutes, and discovering
	// a missing file or mismatched arm set afterwards wastes all of it.
	if *mweight > 0 && !*detect {
		log.Fatal("-mismatch-weight requires -detect (the term rewards new non-filtered mismatches)")
	}
	if *resume {
		if *checkpoint == "" {
			log.Fatal("-resume requires -checkpoint")
		}
		info, err := campaign.ReadCheckpointInfo(*checkpoint)
		if err != nil {
			log.Fatalf("resume: %v", err)
		}
		wantArms := 3
		if *llm {
			wantArms++
		}
		if *learn {
			wantArms++
		}
		if len(info.Arms) != wantArms {
			log.Fatalf("resume: checkpoint has %d arms but these flags build %d (add or drop -llm/-learn to match the original run: %v)",
				len(info.Arms), wantArms, info.Arms)
		}
	}

	arms := []campaign.ArmSpec{
		campaign.TheHuzzArm(*body),
		campaign.RandInstArm(*body),
		campaign.RandFuzzArm(*body),
	}
	var p *core.Pipeline
	if *llm || *learn {
		cfg := core.DefaultPipelineConfig()
		if *quickPipe {
			cfg = core.TestPipelineConfig()
		}
		fmt.Println("training pipeline for the LLM arm(s)...")
		cfg.Log = os.Stdout
		p = core.NewPipeline(cfg)
		p.Run(newDUT())
		if *llm {
			arms = append([]campaign.ArmSpec{campaign.LLMArm(p)}, arms...)
		}
		if *learn {
			arms = append([]campaign.ArmSpec{campaign.LearningLLMArm(p)}, arms...)
		}
	}

	// Observability plumbing (execution-only: none of it can move a
	// trajectory bit). Built before the fleet so the recorder and
	// registry reach every layer at construction; the deferred closers
	// run after the orchestrator's own deferred Close, so spans from
	// off-barrier training joined at Close still land in the trace.
	var rec *telemetry.Recorder
	var reg *telemetry.Registry
	if *resume {
		for _, f := range []struct {
			set  bool
			name string
		}{{*traceFile != "", "trace"}, {*metricsF != "", "metrics"}, {*telemAddr != "", "telemetry-addr"}, {*probeJSON != "", "probe-json"}} {
			if f.set {
				fmt.Printf("warning: -%s is ignored with -resume (telemetry wires at fleet construction, which resume rebuilds from the checkpoint)\n", f.name)
			}
		}
	} else {
		if *traceFile != "" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				log.Fatalf("trace: %v", err)
			}
			rec = telemetry.NewRecorder(tf)
			defer func() {
				if err := rec.Close(); err != nil {
					log.Printf("trace: %v", err)
				}
				if n := rec.Dropped(); n > 0 {
					fmt.Printf("trace: %d events dropped to ring overwrites (rings drain per round; shorten rounds or expect gaps)\n", n)
				}
				tf.Close()
				fmt.Printf("trace written to %s\n", *traceFile)
			}()
		}
		if *metricsF != "" || *telemAddr != "" {
			reg = telemetry.NewRegistry()
		}
		if *metricsF != "" {
			mf, err := os.Create(*metricsF)
			if err != nil {
				log.Fatalf("metrics: %v", err)
			}
			snap := telemetry.NewSnapshotter(mf, reg, *metricsDt)
			defer func() {
				if err := snap.Stop(); err != nil {
					log.Printf("metrics: %v", err)
				}
				mf.Close()
				fmt.Printf("metrics snapshots written to %s\n", *metricsF)
			}()
		}
		if *telemAddr != "" {
			addr, closeSrv, err := telemetry.Serve(*telemAddr, reg)
			if err != nil {
				log.Fatalf("telemetry-addr: %v", err)
			}
			fmt.Printf("telemetry endpoint on http://%s (/metrics, /debug/vars, /debug/pprof)\n", addr)
			defer closeSrv()
		}
	}
	// Probe-derived metrics and the probe dump both need the per-round
	// probes recorded.
	wantProbe := *probe || (!*resume && (*metricsF != "" || *probeJSON != ""))

	var o *campaign.Orchestrator
	var err error
	if *resume {
		// Resume rebuilds the fleet from the checkpoint's Config; the
		// scheduling flags below would otherwise be silently ignored.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "shards", "batch", "round-batches", "seed", "parallel", "detect", "mismatch-weight", "update-budget":
				fmt.Printf("warning: -%s is ignored with -resume (the checkpoint's value is used)\n", f.Name)
			case "serial":
				fmt.Println("warning: -serial is ignored with -resume (resumed fleets run on the engine path)")
			case "fleetpool", "pool-workers", "probe", "inflight":
				fmt.Printf("warning: -%s is ignored with -resume (execution details are not checkpointed; resumed fleets run per-shard engines)\n", f.Name)
			}
		})
		o, err = campaign.ResumeMixedFile(*checkpoint, newDUTs, arms...)
		if err != nil {
			log.Fatalf("resume: %v", err)
		}
		// OffBarrier is a pure execution detail (publication is staged one
		// round late either way), so unlike the pool flags it can be
		// honored on the resumed fleet without touching the trajectory.
		o.Cfg.OffBarrier = *offBarrier
		fmt.Printf("resumed at round %d, %d tests, %.2f%% coverage\n", o.Rounds(), o.Tests(), o.Coverage())
	} else {
		o, err = campaign.NewMixed(campaign.Config{
			Shards:         *shards,
			BatchSize:      *batch,
			RoundBatches:   *roundBatch,
			Seed:           *seed,
			Parallel:       *parallel,
			Inflight:       *inflight,
			Serial:         *serial,
			FleetPool:      *fleetPool,
			PoolWorkers:    *poolWork,
			Probe:          wantProbe,
			Detect:         *detect,
			MismatchWeight: *mweight,
			OffBarrier:     *offBarrier,
			UpdateBudget:   *budget,
			Telemetry:      rec,
			Metrics:        reg,
		}, newDUTs, arms...)
		if err != nil {
			log.Fatalf("campaign: %v", err)
		}
	}
	defer o.Close()

	// Run to the test budget round by round, trapping SIGINT at the
	// barrier: ^C stops after the current round completes, so the
	// epilogue below still flushes the checkpoint, metrics and trace of
	// a consistent barrier state. A second ^C kills immediately (the
	// default disposition is restored), which the atomic checkpoint
	// writer makes safe.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt)
	interrupted := false
	for !interrupted && o.Tests() < *tests {
		if err := o.RunRound(); err != nil {
			log.Fatalf("campaign: %v", err)
		}
		select {
		case <-sigC:
			signal.Stop(sigC)
			interrupted = true
			fmt.Printf("\ninterrupted at round %d (%d of %d tests); flushing...\n",
				o.Rounds(), o.Tests(), *tests)
		default:
		}
	}
	signal.Stop(sigC)
	fmt.Print(o.Report())
	if *probe && !*resume {
		fmt.Println(o.ProbeSummary())
		if st, ok := o.PoolStats(); ok {
			fmt.Printf("fleet pool: %d workers, %d jobs (%d stolen, %d helped), %d migrations\n",
				st.Workers, st.Submitted, st.Stolen, st.Helped, st.Migrations)
		}
	}
	if *probeJSON != "" && !*resume {
		if err := writeProbeJSON(*probeJSON, o.Probes()); err != nil {
			log.Fatalf("probe-json: %v", err)
		}
		fmt.Printf("per-round probes written to %s\n", *probeJSON)
	}
	// Use the orchestrator's own config here, not the flags: on -resume
	// the checkpoint's shard count and detect setting win.
	if o.Cfg.Detect {
		total := 0
		for s := 0; s < o.Cfg.Shards; s++ {
			d := o.Shard(s).Det
			if d != nil {
				total += d.RawCount - d.FilteredRaw
			}
		}
		fmt.Printf("non-filtered raw mismatches across the fleet: %d\n", total)
	}

	// The -learn headline: the same fleet with the LLM arm frozen, at
	// the same budget, compared at equal virtual time. Skipped on
	// resume (the frozen twin would not have lived the same history)
	// and on interrupt (an equal-budget comparison needs the budget).
	if *learn && !*resume && !interrupted {
		fmt.Println("running the frozen-LLM twin fleet for the learning delta...")
		frozenArms := make([]campaign.ArmSpec, 0, len(arms))
		for _, a := range arms {
			if a.Name != "chatfuzz-learn" {
				frozenArms = append(frozenArms, a)
			}
		}
		if !*llm {
			frozenArms = append([]campaign.ArmSpec{campaign.LLMArm(p)}, frozenArms...)
		}
		fo, err := campaign.NewMixed(campaign.Config{
			Shards:         *shards,
			BatchSize:      *batch,
			RoundBatches:   *roundBatch,
			Seed:           *seed,
			Parallel:       *parallel,
			Inflight:       *inflight,
			Serial:         *serial,
			FleetPool:      *fleetPool,
			PoolWorkers:    *poolWork,
			Detect:         *detect,
			MismatchWeight: *mweight,
		}, newDUTs, frozenArms...)
		if err != nil {
			log.Fatalf("frozen twin: %v", err)
		}
		if err := fo.RunTests(*tests); err != nil {
			log.Fatalf("frozen twin: %v", err)
		}
		h := o.Hours()
		if fh := fo.Hours(); fh < h {
			h = fh
		}
		lc, fc := o.CoverageAt(h), fo.CoverageAt(h)
		fmt.Printf("online learning: %.2f%% vs frozen %.2f%% at %.2f virtual h (delta %+.2f)\n",
			lc, fc, h, lc-fc)
		fo.Close()
	}

	if *checkpoint != "" {
		if err := o.CheckpointFile(*checkpoint); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
}

// writeProbeJSON dumps per-round scheduler probes as JSON Lines: one
// RoundProbe object per line (durations in nanoseconds, Go's
// time.Duration serialization), consumable by jq without loading the
// whole run. Written atomically so an interrupt mid-dump cannot leave
// a torn file where a previous run's probes used to be.
func writeProbeJSON(path string, probes []campaign.RoundProbe) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, p := range probes {
			if err := enc.Encode(p); err != nil {
				return err
			}
		}
		return nil
	})
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "campaign":
			campaignMain(os.Args[2:])
			return
		case "submit":
			submitMain(os.Args[2:])
			return
		case "status":
			statusMain(os.Args[2:])
			return
		case "watch":
			watchMain(os.Args[2:])
			return
		}
	}
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or paper")
		which     = flag.String("exp", "all", "comma list: fig2,budget,speedup,boom,findings,training,a1,a2,a3 or all")
	)
	flag.Parse()

	var sc exp.Scale
	switch *scaleName {
	case "quick":
		sc = exp.Quick()
	case "paper":
		sc = exp.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	want := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]

	s := exp.NewSuite(sc, os.Stdout)

	needRocket := all || want["fig2"] || want["budget"] || want["speedup"] ||
		want["findings"] || want["a3"]
	if needRocket {
		s.RunRocketCampaigns()
	}
	if all || want["fig2"] {
		s.Fig2(os.Stdout)
	}
	if all || want["budget"] {
		s.EqualBudget(os.Stdout)
	}
	if all || want["speedup"] {
		s.Speedup(os.Stdout)
	}
	if all || want["boom"] {
		s.RunBoom(os.Stdout)
	}
	if all || want["findings"] {
		s.FindingsReport(os.Stdout)
	}
	if all || want["training"] {
		s.TrainingCurves(os.Stdout)
	}
	if all || want["a3"] {
		s.RunBaselines(os.Stdout)
	}
	if all || want["a2"] {
		s.AblationReward(os.Stdout, sc.TestsEqual/2)
	}
	if all || want["a1"] {
		s.AblationNoCleanup(os.Stdout, sc.TestsEqual/2)
	}
	fmt.Println("\ndone.")
}
