// Command campd is the campaign farm daemon: a long-lived service
// that accepts fuzzing-campaign submissions over an HTTP/JSON API,
// queues them durably on disk, runs them on the sharded campaign
// orchestrator with crash-safe checkpoints, and streams round reports
// to watching clients.
//
//	campd -addr 127.0.0.1:8700 -data ./campd-data -workers 2
//
// Submit and follow jobs with the fuzz-bench client:
//
//	fuzz-bench submit -addr 127.0.0.1:8700 -tests 2000 -watch
//	fuzz-bench status -addr 127.0.0.1:8700
//	fuzz-bench watch  -addr 127.0.0.1:8700 job-1
//
// The daemon is crash-safe by construction: every submission is
// fsynced to the queue log before it is acknowledged, every running
// job writes an atomic checkpoint at its configured round cadence, and
// a restarted daemon re-queues unfinished jobs and resumes them from
// their checkpoints bit-identically — the completed campaign is
// indistinguishable from one whose daemon never died. SIGINT/SIGTERM
// stop gracefully: running jobs finish their current round, checkpoint
// and park. kill -9 at any instant costs at most the rounds since the
// last checkpoint, re-simulated on restart, never diverged.
//
// The bound address is written to <data>/campd.addr (useful with
// -addr :0, and how the end-to-end tests find a free port). /metrics,
// /debug/vars and /debug/pprof are served on the same listener.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"chatfuzz/internal/atomicio"
	"chatfuzz/internal/farm"
	"chatfuzz/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8700", "HTTP API listen address (:0 picks a free port, reported in <data>/campd.addr)")
		dir     = flag.String("data", "campd-data", "data directory: queue log and job checkpoints (created if absent)")
		workers = flag.Int("workers", 1, "jobs run concurrently (execution-only: affects wall-clock, never a job's bits)")
	)
	flag.Parse()

	s, err := farm.Open(farm.Config{
		Dir:     *dir,
		Addr:    *addr,
		Workers: *workers,
		Metrics: telemetry.NewRegistry(),
		Log:     os.Stderr,
	})
	if err != nil {
		log.Fatalf("campd: %v", err)
	}
	if err := atomicio.WriteFileBytes(filepath.Join(*dir, "campd.addr"), []byte(s.Addr()+"\n")); err != nil {
		log.Fatalf("campd: %v", err)
	}
	fmt.Printf("campd: serving on http://%s, data in %s\n", s.Addr(), *dir)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	// A second signal kills immediately — which is safe: that is the
	// crash path the checkpoints exist for.
	signal.Stop(ch)
	fmt.Fprintf(os.Stderr, "campd: %v: finishing current rounds, checkpointing...\n", sig)
	if err := s.Stop(); err != nil {
		log.Fatalf("campd: shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "campd: stopped; unfinished jobs resume on the next start")
}
