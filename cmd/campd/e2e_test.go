package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"chatfuzz/internal/campaign"
	"chatfuzz/internal/farm"
)

// This is the crash drill the daemon exists to survive, run against
// the real binary: submit a campaign, SIGKILL the daemon mid-run,
// restart it on the same data directory, and require the finished
// job's trajectory and final checkpoint to be bit-identical to a
// daemon that was never killed. The in-process variant lives in
// internal/farm; this one covers the actual process boundary —
// signals, fsynced files surviving process death, and the CLI surface.

const e2eTimeout = 2 * time.Minute

func buildCampd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "campd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build campd: %v\n%s", err, out)
	}
	return bin
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches campd on a free port and waits for the bound
// address to land in <data>/campd.addr.
func startDaemon(t *testing.T, bin, data string) *daemon {
	t.Helper()
	addrFile := filepath.Join(data, "campd.addr")
	// A previous incarnation's address must not be mistaken for ours.
	_ = os.Remove(addrFile)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", data)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start campd: %v", err)
	}
	deadline := time.Now().Add(e2eTimeout)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return &daemon{cmd: cmd, addr: string(bytes.TrimSpace(b))}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("campd never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM campd: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("campd exited uncleanly on SIGTERM: %v", err)
	}
}

func e2eSpec() farm.JobSpec {
	return farm.JobSpec{Tests: 240, Shards: 2, BatchSize: 8, Seed: 11, Body: 8}
}

// runToCompletion submits the spec and watches the job to done,
// returning its trajectory and checkpoint bytes.
func runToCompletion(t *testing.T, c *farm.Client, id string) ([]farm.RoundReport, []byte) {
	t.Helper()
	st, err := c.Watch(id, 0, nil)
	if err != nil {
		t.Fatalf("watch %s: %v", id, err)
	}
	if st.State != farm.JobDone {
		t.Fatalf("%s finished %s: %s", id, st.State, st.Error)
	}
	traj, err := c.Trajectory(id)
	if err != nil {
		t.Fatalf("trajectory %s: %v", id, err)
	}
	ckpt, err := c.Checkpoint(id)
	if err != nil {
		t.Fatalf("checkpoint %s: %v", id, err)
	}
	return traj, ckpt
}

func TestCampdKillRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := buildCampd(t)

	// Control: the same spec on a daemon that never dies.
	ctrl := startDaemon(t, bin, filepath.Join(t.TempDir(), "data"))
	cc := farm.NewClient(ctrl.addr)
	cst, err := cc.Submit(e2eSpec())
	if err != nil {
		t.Fatalf("submit control: %v", err)
	}
	wantTraj, wantCkpt := runToCompletion(t, cc, cst.ID)
	ctrl.stop(t)

	// Crash run: SIGKILL the daemon once the job passes round 2.
	data := filepath.Join(t.TempDir(), "data")
	d := startDaemon(t, bin, data)
	c := farm.NewClient(d.addr)
	st, err := c.Submit(e2eSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	killed := errors.New("killed")
	_, err = c.Watch(st.ID, 0, func(rep farm.RoundReport) error {
		if rep.Round >= 2 {
			if kerr := d.cmd.Process.Kill(); kerr != nil {
				return kerr
			}
			return killed
		}
		return nil
	})
	if err != nil && !errors.Is(err, killed) {
		// The stream may also die from the connection dropping under
		// the kill; both are the expected crash.
		if !strings.Contains(err.Error(), "EOF") && !strings.Contains(err.Error(), "connection") {
			t.Fatalf("watch before kill: %v", err)
		}
	}
	if err := d.cmd.Wait(); err == nil {
		t.Fatal("campd survived SIGKILL")
	}

	// Whatever instant the kill hit, the on-disk checkpoint must be a
	// complete readable generation.
	ckptPath := filepath.Join(data, "jobs", st.ID, "ckpt.json")
	info, err := campaign.ReadCheckpointInfo(ckptPath)
	if err != nil {
		t.Fatalf("checkpoint unreadable after SIGKILL: %v", err)
	}
	if info.Round < 1 {
		t.Fatalf("checkpoint after SIGKILL at round %d", info.Round)
	}

	// Restart on the same data dir: the job must be re-queued, resumed
	// from the checkpoint, and finished bit-identically.
	d2 := startDaemon(t, bin, data)
	c2 := farm.NewClient(d2.addr)
	gotTraj, gotCkpt := runToCompletion(t, c2, st.ID)
	fst, err := c2.Job(st.ID)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if fst.Resumes < 1 {
		t.Errorf("restarted job reports %d resumes, want >= 1", fst.Resumes)
	}
	d2.stop(t)

	if !reflect.DeepEqual(gotTraj, wantTraj) {
		t.Errorf("trajectory after kill+restart diverged:\n got %+v\nwant %+v", gotTraj, wantTraj)
	}
	if !bytes.Equal(gotCkpt, wantCkpt) {
		t.Errorf("checkpoint bytes after kill+restart differ from uninterrupted run (%d vs %d bytes)",
			len(gotCkpt), len(wantCkpt))
	}
}
