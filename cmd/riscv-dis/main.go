// Command riscv-dis disassembles 32-bit RISC-V instruction words given
// as hex arguments or read from stdin (whitespace-separated), using
// the same decoder that serves as ChatFuzz's step-2 reward agent.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chatfuzz/internal/isa"
)

func main() {
	words := os.Args[1:]
	if len(words) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			words = append(words, sc.Text())
		}
	}
	invalid := 0
	for _, w := range words {
		raw, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(w), "0x"), 16, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riscv-dis: %q is not a 32-bit hex word\n", w)
			os.Exit(2)
		}
		inst := isa.Decode(uint32(raw))
		if !inst.Valid() {
			invalid++
		}
		fmt.Printf("%08x  %s\n", raw, isa.DisassembleInst(inst))
	}
	if n := len(words); n > 0 {
		fmt.Printf("# %d words, %d invalid  (Eq.1 reward f = N - 5*Invalid = %d)\n",
			n, invalid, n-5*invalid)
	}
}
