// Command fuzzlint is the fleet's determinism multichecker: it runs
// the internal/lint analyzer suite — the compile-time enforcement of
// the bit-exactness invariants every layer since PR 1 stakes replay
// on — over the module's packages and fails on any finding.
//
// Usage:
//
//	fuzzlint [-analyzers mapiter,wallclock,...] [-json] [-list] [packages]
//
// Packages default to ./... and are directory patterns relative to
// the current directory ("./...", "./internal/campaign",
// "./internal/..."). Non-test files only: the runtime determinism
// invariants live in production code; the table tests assert them at
// runtime.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// See internal/lint's package documentation for the rule set and the
// //chatfuzz:deterministic / //lint:allow annotation grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chatfuzz/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list the analyzers and exit")
		asJSON   = flag.Bool("json", false, "emit findings as JSON")
		analyzes = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			scope := "all files"
			if a.Scoped {
				scope = "deterministic scope"
			}
			fmt.Printf("%-12s (%s)  %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *analyzes != "" {
		var unknown string
		var ok bool
		analyzers, unknown, ok = lint.ByName(strings.Split(*analyzes, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "fuzzlint: unknown analyzer %q (see -list)\n", unknown)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzlint: %v\n", err)
		return 2
	}
	// Patterns are relative to the invoking directory, the loader's to
	// the module root; rebase.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzlint: %v\n", err)
		return 2
	}
	for i, p := range patterns {
		patterns[i] = filepath.ToSlash(filepath.Join(rel, p))
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzlint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			line := d.String()
			// Shorten absolute paths to cwd-relative for readable,
			// clickable output.
			if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				line = fmt.Sprintf("%s:%d:%d: [%s] %s", r, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			fmt.Println(line)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fuzzlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
