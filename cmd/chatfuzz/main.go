// Command chatfuzz runs the ChatFuzz fuzzing loop against a simulated
// DUT: the LLM-based input generator produces test vectors, the DUT
// and the golden-model ISS execute them, the Coverage Calculator
// scores them (optionally feeding online PPO updates), and the
// Mismatch Detector reports findings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"chatfuzz/internal/core"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

func main() {
	var (
		ckpt    = flag.String("model", "", "model checkpoint from train-lm (empty: train now)")
		dutName = flag.String("dut", "rocket", "DUT: rocket or boom")
		tests   = flag.Int("tests", 2000, "number of test inputs to run")
		batch   = flag.Int("batch", 16, "batch size per fuzzing round")
		online  = flag.Bool("online", true, "continue PPO updates from coverage feedback")
		detect  = flag.Bool("detect", true, "differential mismatch detection")
		seed    = flag.Int64("seed", 1, "random seed")
		holes   = flag.Bool("holes", false, "print uncovered condition points at the end")
	)
	flag.Parse()

	var dut rtl.DUT
	switch *dutName {
	case "rocket":
		dut = rocket.New()
	case "boom":
		dut = boom.New()
	default:
		log.Fatalf("unknown DUT %q", *dutName)
	}

	cfg := core.DefaultPipelineConfig()
	cfg.Seed = *seed
	cfg.Log = os.Stdout
	p := core.NewPipeline(cfg)
	if *ckpt != "" {
		if err := p.Model.LoadFile(*ckpt); err != nil {
			log.Fatalf("loading checkpoint: %v", err)
		}
		fmt.Printf("loaded checkpoint %s\n", *ckpt)
	} else {
		fmt.Println("no checkpoint given: running the training pipeline first")
		p.Pretrain()
		p.Cleanup()
		p.CoverageTune(dut)
	}

	gen := core.NewLLMGenerator(p, dut.Space().NumBins(), *online, *seed+1)
	f := core.NewFuzzer(gen, dut, core.Options{BatchSize: *batch, Detect: *detect})

	fmt.Printf("fuzzing %s for %d tests (batch %d, online=%v)\n", dut.Name(), *tests, *batch, *online)
	lastReport := 0
	for f.Tests < *tests {
		f.RunBatch()
		if f.Tests-lastReport >= 500 {
			fmt.Printf("  %6d tests  %6.2f%% coverage  %6.2f virtual hours\n",
				f.Tests, f.Coverage(), f.Clk.Hours())
			lastReport = f.Tests
		}
	}

	fmt.Printf("\nfinal: %.2f%% condition coverage after %d tests (%.2f virtual hours)\n",
		f.Coverage(), f.Tests, f.Clk.Hours())
	if *detect {
		fmt.Println()
		fmt.Print(f.Det.Report())
	}
	if *holes {
		fmt.Println("\nuncovered condition points:")
		for _, h := range f.Calc.Total().UncoveredPoints() {
			fmt.Println("  " + h)
		}
	}
}
