// Command train-lm runs ChatFuzz's three-step training pipeline
// (unsupervised pre-training, PPO language cleanup, PPO coverage
// optimisation) and saves a model checkpoint for cmd/chatfuzz.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"chatfuzz/internal/core"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

func main() {
	var (
		out       = flag.String("o", "chatfuzz-model.gob", "checkpoint output path")
		dutName   = flag.String("dut", "rocket", "DUT for step 3: rocket or boom")
		seed      = flag.Int64("seed", 1, "global random seed")
		pretrain  = flag.Int("pretrain-steps", 0, "override step-1 steps")
		cleanup   = flag.Int("cleanup-steps", 0, "override step-2 steps")
		coverage  = flag.Int("coverage-steps", 0, "override step-3 steps")
		functions = flag.Int("corpus-functions", 0, "override corpus size")
	)
	flag.Parse()

	cfg := core.DefaultPipelineConfig()
	cfg.Seed = *seed
	cfg.Log = os.Stdout
	if *pretrain > 0 {
		cfg.PretrainSteps = *pretrain
	}
	if *cleanup > 0 {
		cfg.CleanupSteps = *cleanup
	}
	if *coverage > 0 {
		cfg.CoverageSteps = *coverage
	}
	if *functions > 0 {
		cfg.Corpus.Functions = *functions
	}

	var dut rtl.DUT
	switch *dutName {
	case "rocket":
		dut = rocket.New()
	case "boom":
		dut = boom.New()
	default:
		log.Fatalf("unknown DUT %q", *dutName)
	}

	p := core.NewPipeline(cfg)
	fmt.Printf("corpus: %d functions, %d instructions; vocab %d; model %d parameters\n",
		len(p.Corpus.Functions), p.Corpus.Instructions(), p.Tok.Vocab(), p.Model.NumParams())

	p.Pretrain()
	fmt.Printf("invalid-instruction rate after step 1: %.1f%%\n", 100*p.InvalidRate(30))
	p.Cleanup()
	fmt.Printf("invalid-instruction rate after step 2: %.1f%%\n", 100*p.InvalidRate(30))
	p.CoverageTune(dut)

	if err := p.Model.SaveFile(*out); err != nil {
		log.Fatalf("saving checkpoint: %v", err)
	}
	fmt.Printf("checkpoint written to %s\n", *out)
}
