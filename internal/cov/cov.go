// Package cov implements VCS-style condition coverage for the DUT core
// models, and the paper's Coverage Calculator (§IV-B): stand-alone,
// incremental, and total coverage per generated test input.
//
// A condition point corresponds to one boolean condition in the
// (modelled) RTL. Like Synopsys VCS condition coverage, each point has
// two bins — the condition observed true and observed false — and the
// coverage percentage is hit bins over total bins.
//chatfuzz:deterministic package
package cov

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// PointID identifies a registered condition point within a Space.
type PointID int

// Space is the set of condition points a DUT defines at construction.
// It is immutable once the DUT is built; runs record hits in Sets.
type Space struct {
	names []string
	index map[string]int
}

// NewSpace returns an empty condition space.
func NewSpace() *Space {
	return &Space{index: make(map[string]int)}
}

// Define registers a condition point under a stable, unique name and
// returns its id. Define panics on duplicates: point names are static
// identifiers in the core models.
func (s *Space) Define(name string) PointID {
	if _, dup := s.index[name]; dup {
		panic("cov: duplicate condition point " + name)
	}
	id := len(s.names)
	s.names = append(s.names, name)
	s.index[name] = id
	return PointID(id)
}

// NumPoints returns the number of condition points.
func (s *Space) NumPoints() int { return len(s.names) }

// NumBins returns the number of coverage bins (two per point).
func (s *Space) NumBins() int { return 2 * len(s.names) }

// Name returns the name of a point.
func (s *Space) Name(id PointID) string { return s.names[id] }

// Lookup returns the id of a named point.
func (s *Space) Lookup(name string) (PointID, bool) {
	id, ok := s.index[name]
	return PointID(id), ok
}

// NewSet returns an empty hit-set over this space.
func (s *Space) NewSet() *Set {
	return &Set{space: s, bits: make([]uint64, (s.NumBins()+63)/64)}
}

// Set records which bins were hit. Sets from single runs are merged
// into a cumulative total by the Calculator.
type Set struct {
	space *Space
	bits  []uint64
}

// Space returns the space this set belongs to.
func (c *Set) Space() *Space { return c.space }

func binIndex(id PointID, val bool) int {
	b := 2 * int(id)
	if val {
		b++
	}
	return b
}

// Cond records one observation of a condition point and returns the
// condition value, so model code reads naturally:
//
//	if c.Cond(pICacheMiss, miss) { ... }
func (c *Set) Cond(id PointID, val bool) bool {
	b := binIndex(id, val)
	c.bits[b>>6] |= 1 << (b & 63)
	return val
}

// Covered reports whether a specific bin has been hit.
func (c *Set) Covered(id PointID, val bool) bool {
	b := binIndex(id, val)
	return c.bits[b>>6]&(1<<(b&63)) != 0
}

// Count returns the number of hit bins.
func (c *Set) Count() int {
	n := 0
	for _, w := range c.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Percent returns hit bins as a percentage of all bins.
func (c *Set) Percent() float64 {
	total := c.space.NumBins()
	if total == 0 {
		return 0
	}
	return 100 * float64(c.Count()) / float64(total)
}

// Merge ORs other into c and returns the number of bins that were new
// to c.
func (c *Set) Merge(other *Set) int {
	if c.space != other.space {
		panic("cov: merging sets from different spaces")
	}
	added := 0
	for i, w := range other.bits {
		newBits := w &^ c.bits[i]
		added += bits.OnesCount64(newBits)
		c.bits[i] |= w
	}
	return added
}

// Snapshot returns a copy of the raw hit-bitmap words. Snapshots are
// the checkpoint/aggregation currency of the campaign orchestrator:
// they carry no Space pointer, so they can cross shard boundaries
// (every shard builds its own DUT and therefore its own Space) and
// serialize to JSON directly.
func (c *Set) Snapshot() []uint64 {
	out := make([]uint64, len(c.bits))
	copy(out, c.bits)
	return out
}

// LoadSnapshot replaces the set's bits with a snapshot taken from a
// structurally identical space (same DUT constructor).
func (c *Set) LoadSnapshot(words []uint64) error {
	if len(words) != len(c.bits) {
		return fmt.Errorf("cov: snapshot has %d words, space needs %d", len(words), len(c.bits))
	}
	copy(c.bits, words)
	return nil
}

// MergeWords ORs a raw snapshot into c and returns the number of bins
// that were new to c. Unlike Merge it does not require Space identity,
// only structural equality — the lock-cheap path for aggregating
// per-shard coverage into a fleet-global set.
func (c *Set) MergeWords(words []uint64) (int, error) {
	if len(words) != len(c.bits) {
		return 0, fmt.Errorf("cov: snapshot has %d words, space needs %d", len(words), len(c.bits))
	}
	added := 0
	for i, w := range words {
		newBits := w &^ c.bits[i]
		added += bits.OnesCount64(newBits)
		c.bits[i] |= w
	}
	return added, nil
}

// DiffCount returns the number of bins hit in c but not in other.
func (c *Set) DiffCount(other *Set) int {
	n := 0
	for i, w := range c.bits {
		n += bits.OnesCount64(w &^ other.bits[i])
	}
	return n
}

// Clone returns a copy of the set.
func (c *Set) Clone() *Set {
	out := c.space.NewSet()
	copy(out.bits, c.bits)
	return out
}

// CopyFrom overwrites c's bits with src's (same space required). The
// allocation-free counterpart of Clone for callers that own a
// destination set already.
func (c *Set) CopyFrom(src *Set) {
	if c.space != src.space {
		panic("cov: copying sets from different spaces")
	}
	copy(c.bits, src.bits)
}

// Reset clears all bins.
func (c *Set) Reset() {
	for i := range c.bits {
		c.bits[i] = 0
	}
}

// UncoveredPoints lists names of points with at least one unhit bin,
// for coverage-hole reports.
func (c *Set) UncoveredPoints() []string {
	var out []string
	for id := 0; id < c.space.NumPoints(); id++ {
		t := c.Covered(PointID(id), true)
		f := c.Covered(PointID(id), false)
		switch {
		case !t && !f:
			out = append(out, c.space.Name(PointID(id))+" [never evaluated]")
		case !t:
			out = append(out, c.space.Name(PointID(id))+" [never true]")
		case !f:
			out = append(out, c.space.Name(PointID(id))+" [never false]")
		}
	}
	sort.Strings(out)
	return out
}

// Scores is the Coverage Calculator's evaluation of one test input
// (paper §IV-B).
type Scores struct {
	// Standalone is the number of bins this input hit by itself.
	Standalone int
	// Incremental is the number of bins this input hit that were not
	// in the cumulative total at the start of the current batch.
	Incremental int
	// TotalBins is the cumulative number of hit bins after merging
	// this input.
	TotalBins int
	// TotalPercent is the cumulative coverage percentage.
	TotalPercent float64
}

// Calculator accumulates total coverage and scores each input against
// the previous batch's total, exactly as the paper describes.
type Calculator struct {
	space    *Space
	total    *Set
	snapshot *Set
}

// NewCalculator returns a calculator with empty cumulative coverage.
func NewCalculator(space *Space) *Calculator {
	return &Calculator{space: space, total: space.NewSet(), snapshot: space.NewSet()}
}

// Space returns the condition space.
func (c *Calculator) Space() *Space { return c.space }

// Total returns the cumulative coverage set (live view; do not mutate).
func (c *Calculator) Total() *Set { return c.total }

// BeginBatch snapshots the cumulative total; incremental coverage for
// the following Score calls is computed against this snapshot. The
// snapshot set is reused across batches, keeping the per-round commit
// path free of heap growth (asserted by the core alloc regression
// test).
func (c *Calculator) BeginBatch() {
	c.snapshot.CopyFrom(c.total)
}

// Score evaluates one input's run coverage: merges it into the total
// and returns the three values the reward function consumes.
func (c *Calculator) Score(run *Set) Scores {
	standalone := run.Count()
	incremental := run.DiffCount(c.snapshot)
	c.total.Merge(run)
	return Scores{
		Standalone:   standalone,
		Incremental:  incremental,
		TotalBins:    c.total.Count(),
		TotalPercent: c.total.Percent(),
	}
}

// ScoreInvalid scores a test that executed nothing — e.g. a program
// the harness refused to build. Nothing is merged; the cumulative
// totals are reported unchanged, so an invalid input reads as zero
// standalone and zero incremental coverage to the reward function.
func (c *Calculator) ScoreInvalid() Scores {
	return Scores{
		TotalBins:    c.total.Count(),
		TotalPercent: c.total.Percent(),
	}
}

// RestoreTotal loads a checkpointed cumulative bitmap, replacing the
// calculator's total. The batch snapshot is reset to the restored
// total, so the next Score sees no spurious incremental coverage.
func (c *Calculator) RestoreTotal(words []uint64) error {
	if err := c.total.LoadSnapshot(words); err != nil {
		return err
	}
	c.snapshot.CopyFrom(c.total)
	return nil
}

// Report renders a short human-readable coverage summary.
func (c *Calculator) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "condition coverage: %d/%d bins (%.2f%%)",
		c.total.Count(), c.space.NumBins(), c.total.Percent())
	return b.String()
}
