package cov

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newTestSpace(n int) (*Space, []PointID) {
	s := NewSpace()
	ids := make([]PointID, n)
	for i := range ids {
		ids[i] = s.Define(strings.Repeat("p", 1) + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	return s, ids
}

func TestDefineAndLookup(t *testing.T) {
	s := NewSpace()
	id := s.Define("frontend.icache.miss")
	if got, ok := s.Lookup("frontend.icache.miss"); !ok || got != id {
		t.Errorf("Lookup = (%v,%v), want (%v,true)", got, ok, id)
	}
	if s.NumPoints() != 1 || s.NumBins() != 2 {
		t.Errorf("points=%d bins=%d, want 1, 2", s.NumPoints(), s.NumBins())
	}
}

func TestDuplicateDefinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Define should panic")
		}
	}()
	s := NewSpace()
	s.Define("x")
	s.Define("x")
}

func TestCondRecordsBothBins(t *testing.T) {
	s, ids := newTestSpace(3)
	set := s.NewSet()
	if set.Cond(ids[0], true) != true || set.Cond(ids[0], false) != false {
		t.Error("Cond must return its value")
	}
	set.Cond(ids[1], true)
	if !set.Covered(ids[0], true) || !set.Covered(ids[0], false) {
		t.Error("both bins of point 0 should be covered")
	}
	if !set.Covered(ids[1], true) || set.Covered(ids[1], false) {
		t.Error("point 1 should cover only the true bin")
	}
	if set.Count() != 3 {
		t.Errorf("Count = %d, want 3", set.Count())
	}
	if got, want := set.Percent(), 100*3.0/6.0; got != want {
		t.Errorf("Percent = %v, want %v", got, want)
	}
}

func TestMergeReturnsNewBins(t *testing.T) {
	s, ids := newTestSpace(4)
	a, b := s.NewSet(), s.NewSet()
	a.Cond(ids[0], true)
	a.Cond(ids[1], false)
	b.Cond(ids[1], false) // overlap
	b.Cond(ids[2], true)  // new
	b.Cond(ids[3], false) // new
	if added := a.Merge(b); added != 2 {
		t.Errorf("Merge added = %d, want 2", added)
	}
	if a.Count() != 4 {
		t.Errorf("after merge Count = %d, want 4", a.Count())
	}
	// Merging again adds nothing.
	if added := a.Merge(b); added != 0 {
		t.Errorf("re-merge added = %d, want 0", added)
	}
}

func TestDiffCount(t *testing.T) {
	s, ids := newTestSpace(3)
	a, b := s.NewSet(), s.NewSet()
	a.Cond(ids[0], true)
	a.Cond(ids[1], true)
	b.Cond(ids[1], true)
	if got := a.DiffCount(b); got != 1 {
		t.Errorf("DiffCount = %d, want 1", got)
	}
	if got := b.DiffCount(a); got != 0 {
		t.Errorf("reverse DiffCount = %d, want 0", got)
	}
}

func TestCalculatorBatchSemantics(t *testing.T) {
	s, ids := newTestSpace(8)
	calc := NewCalculator(s)

	calc.BeginBatch()
	r1 := s.NewSet()
	r1.Cond(ids[0], true)
	r1.Cond(ids[1], true)
	sc1 := calc.Score(r1)
	if sc1.Standalone != 2 || sc1.Incremental != 2 || sc1.TotalBins != 2 {
		t.Errorf("sc1 = %+v", sc1)
	}

	// Second entry in the SAME batch: incremental is still measured
	// against the batch-start snapshot (paper: "compared to the total
	// coverage points recorded in the previous batch").
	r2 := s.NewSet()
	r2.Cond(ids[0], true) // already in total, but NOT in snapshot
	r2.Cond(ids[2], true)
	sc2 := calc.Score(r2)
	if sc2.Incremental != 2 {
		t.Errorf("sc2.Incremental = %d, want 2 (vs batch snapshot)", sc2.Incremental)
	}
	if sc2.TotalBins != 3 {
		t.Errorf("sc2.TotalBins = %d, want 3", sc2.TotalBins)
	}

	// New batch: the snapshot advances.
	calc.BeginBatch()
	r3 := s.NewSet()
	r3.Cond(ids[0], true)
	sc3 := calc.Score(r3)
	if sc3.Incremental != 0 {
		t.Errorf("sc3.Incremental = %d, want 0", sc3.Incremental)
	}
	if sc3.Standalone != 1 {
		t.Errorf("sc3.Standalone = %d, want 1", sc3.Standalone)
	}
}

func TestUncoveredPoints(t *testing.T) {
	s := NewSpace()
	a := s.Define("alpha")
	s.Define("beta")
	set := s.NewSet()
	set.Cond(a, true)
	holes := set.UncoveredPoints()
	if len(holes) != 2 {
		t.Fatalf("holes = %v, want 2 entries", holes)
	}
	joined := strings.Join(holes, ";")
	if !strings.Contains(joined, "alpha [never false]") {
		t.Errorf("missing alpha hole: %v", holes)
	}
	if !strings.Contains(joined, "beta [never evaluated]") {
		t.Errorf("missing beta hole: %v", holes)
	}
}

// Property: Merge is idempotent, commutative in coverage count, and
// Count equals the size of the bin union.
func TestMergeProperties(t *testing.T) {
	s, ids := newTestSpace(20)
	f := func(hitsA, hitsB []uint16) bool {
		a, b := s.NewSet(), s.NewSet()
		ref := map[int]bool{}
		for _, h := range hitsA {
			id := ids[int(h)%len(ids)]
			val := h%2 == 0
			a.Cond(id, val)
			ref[binIndex(id, val)] = true
		}
		for _, h := range hitsB {
			id := ids[int(h)%len(ids)]
			val := h%2 == 0
			b.Cond(id, val)
			ref[binIndex(id, val)] = true
		}
		a.Merge(b)
		return a.Count() == len(ref)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMergeAcrossSpacesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cross-space merge should panic")
		}
	}()
	s1, _ := newTestSpace(2)
	s2, _ := newTestSpace(2)
	s1.NewSet().Merge(s2.NewSet())
}

func TestCalculatorReport(t *testing.T) {
	s, ids := newTestSpace(2)
	calc := NewCalculator(s)
	calc.BeginBatch()
	r := s.NewSet()
	r.Cond(ids[0], true)
	calc.Score(r)
	rep := calc.Report()
	if !strings.Contains(rep, "1/4") {
		t.Errorf("report = %q", rep)
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	s, ids := newTestSpace(70) // 140 bins: crosses one word boundary
	a := s.NewSet()
	for i, id := range ids {
		a.Cond(id, i%3 == 0)
	}
	snap := a.Snapshot()

	// Snapshot is a copy, not an alias.
	a.Cond(ids[1], true)
	b := s.NewSet()
	if err := b.LoadSnapshot(snap); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if b.Covered(ids[1], true) {
		t.Error("snapshot aliased the live bitmap")
	}
	for i, id := range ids {
		if b.Covered(id, i%3 == 0) != true {
			t.Errorf("point %d lost in round trip", i)
		}
	}

	if err := b.LoadSnapshot([]uint64{1}); err == nil {
		t.Error("LoadSnapshot accepted wrong-length snapshot")
	}
}

func TestMergeWordsMatchesMerge(t *testing.T) {
	// Two structurally identical but distinct spaces, as two DUT
	// instances produce: Merge panics across them, MergeWords works.
	s1, ids1 := newTestSpace(40)
	s2, ids2 := newTestSpace(40)
	a := s1.NewSet()
	b := s2.NewSet()
	a.Cond(ids1[0], true)
	a.Cond(ids1[5], false)
	b.Cond(ids2[5], false)
	b.Cond(ids2[7], true)

	added, err := a.MergeWords(b.Snapshot())
	if err != nil {
		t.Fatalf("MergeWords: %v", err)
	}
	if added != 1 { // only point 7 true is new
		t.Errorf("added = %d, want 1", added)
	}
	if a.Count() != 3 {
		t.Errorf("count = %d, want 3", a.Count())
	}
	if _, err := a.MergeWords([]uint64{}); err == nil {
		t.Error("MergeWords accepted wrong-length snapshot")
	}
}

func TestCalculatorRestoreTotal(t *testing.T) {
	s, ids := newTestSpace(10)
	c := NewCalculator(s)
	run := s.NewSet()
	run.Cond(ids[0], true)
	run.Cond(ids[1], false)
	c.Score(run)
	snap := c.Total().Snapshot()

	c2 := NewCalculator(s)
	if err := c2.RestoreTotal(snap); err != nil {
		t.Fatalf("RestoreTotal: %v", err)
	}
	if c2.Total().Count() != 2 {
		t.Fatalf("restored count = %d, want 2", c2.Total().Count())
	}
	// A re-scored identical run must show zero incremental coverage:
	// the restore also reset the batch snapshot.
	sc := c2.Score(run.Clone())
	if sc.Incremental != 0 {
		t.Errorf("incremental after restore = %d, want 0", sc.Incremental)
	}
	if err := c2.RestoreTotal([]uint64{1, 2, 3}); err == nil {
		t.Error("RestoreTotal accepted wrong-length snapshot")
	}
}
