// Package boom models the BOOM DUT: a 2-wide out-of-order superscalar
// RISC-V core with register renaming, a reorder buffer, an issue
// queue, a load/store queue with store-to-load forwarding, branch
// prediction, and the same L1 caches and privilege architecture as the
// Rocket model — instrumented with its own condition-coverage space.
//
// Unlike the Rocket model, the BOOM model carries no injected findings:
// the paper's mismatch analysis targets RocketCore, and BOOM serves the
// coverage experiment (97.02 % condition coverage in 49 minutes).
//
// Implementation note: architectural execution is performed in program
// order (sharing the exact semantics of the golden model through
// internal/isa and internal/hart), while an out-of-order timing and
// occupancy model — dispatch/issue/complete/commit events over a ROB,
// issue queue and store queue — drives the condition coverage and the
// cycle count. This is the standard functional-executor + timing-model
// simulator split.
//chatfuzz:deterministic package
package boom

import (
	"chatfuzz/internal/cov"
	"chatfuzz/internal/hart"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/uarch"
	"chatfuzz/internal/trace"
)

// Microarchitectural parameters (BOOM "SmallBoom"-ish configuration).
const (
	robSize      = 32
	iqSize       = 12
	sqSize       = 8
	commitWidth  = 2
	flushPenalty = 7
)

// Operation latencies in cycles.
const (
	latALU   = 1
	latMul   = 3
	latDiv   = 20
	latLoad  = 2
	latMiss  = 20
	latAMO   = 8
	latCSR   = 4
	latFence = 6
)

var trapCauses = []uint64{
	isa.ExcInstAddrMisaligned, isa.ExcInstAccessFault, isa.ExcIllegalInstruction,
	isa.ExcBreakpoint, isa.ExcLoadAddrMisaligned, isa.ExcLoadAccessFault,
	isa.ExcStoreAddrMisaligned, isa.ExcStoreAccessFault, isa.ExcECallFromU,
	isa.ExcECallFromM,
}

type points struct {
	// Frontend.
	icacheHit, fetchFault, fenceiFlush          cov.PointID
	bundleFull, bundleHasBranch                 cov.PointID
	btbHit, bhtPredTaken, rasEmpty, rasOverflow cov.PointID
	// Decode / rename.
	illegal, compressed                      cov.PointID
	freelistEmpty, rdX0Skip, src1Busy, src2Busy cov.PointID
	opSeen                                   [isa.NumOps]cov.PointID
	// ROB / issue.
	robFull, robEmpty, commitBundleFull cov.PointID
	flushMispredict, flushException     cov.PointID
	iqFull, wakeupMatch, dualIssue      cov.PointID
	// Branch resolution.
	brTaken, brMispredict, brBackward cov.PointID
	jalrRet, jalrCall                 cov.PointID
	// LSU / D-cache.
	sqFull, loadForward, partialOverlap            cov.PointID
	dcacheHit, dcacheEvictDirty                    cov.PointID
	memMisaligned, memFault                        cov.PointID
	scSuccess, resValidAtSC, storeBreaksRes, tohostWrite cov.PointID
	// MUL/DIV.
	divByZero, divOverflow, mdWord, mdSigned cov.PointID
	// Traps, privilege, CSR.
	trapTaken, trapFromU, inUMode, mppIsM cov.PointID
	trapCause                             map[uint64]cov.PointID
	csrPrivViol, csrReadOnly              cov.PointID
	csrAddr                               map[uint16]cov.PointID
	// Tied-off conditions (no interrupt/debug stimulus).
	tieFalse []cov.PointID
}

// Boom is the DUT factory.
type Boom struct {
	space *cov.Space
	p     points
}

var _ rtl.DUT = (*Boom)(nil)

// New builds the BOOM model and its condition space.
func New() *Boom {
	s := cov.NewSpace()
	var p points

	p.icacheHit = s.Define("frontend.icache.hit")
	p.fetchFault = s.Define("frontend.fetch.access_fault")
	p.fenceiFlush = s.Define("frontend.icache.fencei_flush")
	p.bundleFull = s.Define("frontend.fetch.bundle_full")
	p.bundleHasBranch = s.Define("frontend.fetch.bundle_has_branch")
	p.btbHit = s.Define("frontend.btb.hit")
	p.bhtPredTaken = s.Define("frontend.bht.pred_taken")
	p.rasEmpty = s.Define("frontend.ras.pop_empty")
	p.rasOverflow = s.Define("frontend.ras.push_overflow")

	p.illegal = s.Define("decode.illegal")
	p.compressed = s.Define("decode.compressed_parcel")
	p.freelistEmpty = s.Define("rename.freelist_empty")
	p.rdX0Skip = s.Define("rename.rd_x0_no_alloc")
	p.src1Busy = s.Define("rename.src1_busy")
	p.src2Busy = s.Define("rename.src2_busy")
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		p.opSeen[op] = s.Define("decode.op." + op.String())
	}

	p.robFull = s.Define("rob.full_stall")
	p.robEmpty = s.Define("rob.empty_at_dispatch")
	p.commitBundleFull = s.Define("rob.commit_bundle_full")
	p.flushMispredict = s.Define("rob.flush_branch_mispredict")
	p.flushException = s.Define("rob.flush_exception")
	p.iqFull = s.Define("issue.queue_full_stall")
	p.wakeupMatch = s.Define("issue.wakeup_tag_match")
	p.dualIssue = s.Define("issue.dual_issue")

	p.brTaken = s.Define("branch.taken")
	p.brMispredict = s.Define("branch.direction_mispredict")
	p.brBackward = s.Define("branch.backward")
	p.jalrRet = s.Define("branch.jalr_is_ret")
	p.jalrCall = s.Define("branch.jalr_is_call")

	p.sqFull = s.Define("lsu.store_queue_full")
	p.loadForward = s.Define("lsu.store_to_load_forward")
	p.partialOverlap = s.Define("lsu.partial_address_overlap")
	p.dcacheHit = s.Define("dcache.hit")
	p.dcacheEvictDirty = s.Define("dcache.evict_dirty_writeback")
	p.memMisaligned = s.Define("lsu.addr_misaligned")
	p.memFault = s.Define("lsu.access_fault")
	p.scSuccess = s.Define("lsu.sc_success")
	p.resValidAtSC = s.Define("lsu.reservation_valid_at_sc")
	p.storeBreaksRes = s.Define("lsu.store_breaks_reservation")
	p.tohostWrite = s.Define("lsu.tohost_write")

	p.divByZero = s.Define("muldiv.div_by_zero")
	p.divOverflow = s.Define("muldiv.div_overflow")
	p.mdWord = s.Define("muldiv.word_op")
	p.mdSigned = s.Define("muldiv.signed_op")

	p.trapTaken = s.Define("trap.taken")
	p.trapFromU = s.Define("trap.from_umode")
	p.inUMode = s.Define("priv.in_umode")
	p.mppIsM = s.Define("priv.mret_mpp_is_m")
	p.trapCause = make(map[uint64]cov.PointID, len(trapCauses))
	for _, c := range trapCauses {
		p.trapCause[c] = s.Define("trap.cause." + isa.ExcName(c))
	}
	p.csrPrivViol = s.Define("csr.privilege_violation")
	p.csrReadOnly = s.Define("csr.write_to_readonly")
	p.csrAddr = make(map[uint16]cov.PointID, len(isa.KnownCSRs))
	for _, a := range isa.KnownCSRs {
		p.csrAddr[a] = s.Define("csr.addr." + isa.CSRName(a))
	}

	for _, name := range []string{
		"interrupt.msip_pending", "interrupt.mtip_pending", "interrupt.meip_pending",
		"interrupt.taken", "debug.halt_request", "dcache.ecc_error",
	} {
		p.tieFalse = append(p.tieFalse, s.Define("tieoff."+name))
	}
	for _, name := range []string{
		"vm.sv39_mode", "vm.page_fault", "debug.abstract_cmd", "pmp.any_match",
	} {
		s.Define("dead." + name)
	}

	return &Boom{space: s, p: p}
}

// Name implements rtl.DUT.
func (b *Boom) Name() string { return "boom" }

// Space implements rtl.DUT.
func (b *Boom) Space() *cov.Space { return b.space }

// inflight is one ROB entry in the timing model.
type inflight struct {
	done    uint64 // completion cycle
	isStore bool
}

// pendingStore models a store-queue entry for forwarding conditions.
type pendingStore struct {
	addr  uint64
	width int
}

type run struct {
	b   *Boom
	m   *mem.Memory
	pc  uint64
	x   [32]uint64
	prv isa.Priv
	csr hart.CSRFile

	resValid bool
	resAddr  uint64

	ic  *uarch.ICache
	dc  *uarch.TimingCache
	bht *uarch.BHT
	btb *uarch.BTB
	ras *uarch.RAS

	set     *cov.Set
	cycles  uint64
	opCount [isa.NumOps]uint32
	decoded uint64
	tr      []trace.Entry

	halted   bool
	exitCode uint64

	// Timing model.
	rob       []inflight
	sq        []pendingStore
	busyReg   [32]uint64 // cycle at which the architectural reg is ready
	fetchBuf  int        // instructions left in the current fetch bundle
	lastIssue uint64     // cycle of the previous issue (dual-issue cond)

	amoRdVal uint64
}

// cacheCfgI and cacheCfgD size the L1 caches (shared by Run and the
// reusable runner so both paths model the identical core).
var (
	cacheCfgI = uarch.CacheConfig{Sets: 64, Ways: 4, LineBytes: 64}
	cacheCfgD = uarch.CacheConfig{Sets: 64, Ways: 8, LineBytes: 64}
)

const (
	bhtEntries = 512
	btbEntries = 64
	rasDepth   = 8
)

// Run implements rtl.DUT.
func (b *Boom) Run(img mem.Image, maxInsts int) rtl.Result {
	m := mem.Platform()
	m.Load(img)
	st := &run{
		b:   b,
		m:   m,
		pc:  img.Entry,
		prv: isa.PrivM,
		csr: hart.CSRFile{MPP: isa.PrivU},
		ic:  uarch.NewICache(cacheCfgI),
		dc:  uarch.NewTimingCache(cacheCfgD),
		bht: uarch.NewBHT(bhtEntries),
		btb: uarch.NewBTB(btbEntries),
		ras: uarch.NewRAS(rasDepth),
		set: b.space.NewSet(),
	}
	return st.exec(maxInsts)
}

// exec drives the timing model to completion and packages the result.
func (st *run) exec(maxInsts int) rtl.Result {
	for i := 0; i < maxInsts && !st.halted; i++ {
		st.step()
	}
	st.finalize()
	return rtl.Result{
		Trace:    st.tr,
		Coverage: st.set,
		Cycles:   st.cycles,
		Halted:   st.halted,
		ExitCode: st.exitCode,
		Regs:     st.x,
	}
}

// runner is a reusable execution context: platform memory, the cache
// and predictor blocks, and the ROB/store-queue backing arrays are
// allocated once and reset per run.
type runner struct {
	b   *Boom
	m   *mem.Memory
	ic  *uarch.ICache
	dc  *uarch.TimingCache
	bht *uarch.BHT
	btb *uarch.BTB
	ras *uarch.RAS
	st  run
}

// NewRunner implements rtl.ReusableDUT.
func (b *Boom) NewRunner() rtl.Runner {
	return &runner{
		b:   b,
		m:   mem.Platform(),
		ic:  uarch.NewICache(cacheCfgI),
		dc:  uarch.NewTimingCache(cacheCfgD),
		bht: uarch.NewBHT(bhtEntries),
		btb: uarch.NewBTB(btbEntries),
		ras: uarch.NewRAS(rasDepth),
	}
}

// RunScratch implements rtl.Runner. Behaviour is bit-identical to Run:
// the reset scratch is observationally a fresh core.
func (w *runner) RunScratch(img mem.Image, maxInsts int, set *cov.Set, tr []trace.Entry) rtl.Result {
	w.m.Reset()
	w.m.Load(img)
	w.ic.Reset()
	w.dc.Reset()
	w.bht.Reset()
	w.btb.Reset()
	w.ras.Reset()
	w.st = run{
		b:   w.b,
		m:   w.m,
		pc:  img.Entry,
		prv: isa.PrivM,
		csr: hart.CSRFile{MPP: isa.PrivU},
		ic:  w.ic,
		dc:  w.dc,
		bht: w.bht,
		btb: w.btb,
		ras: w.ras,
		set: set,
		tr:  tr[:0],
		rob: w.st.rob[:0],
		sq:  w.st.sq[:0],
	}
	return w.st.exec(maxInsts)
}

func (st *run) charge(c uint64) { st.cycles += c; st.csr.Cycle += c }

// retire drains completed ROB entries up to the current cycle,
// recording commit-bundle conditions.
func (st *run) retire() {
	p := &st.b.p
	committed := 0
	for len(st.rob) > 0 && st.rob[0].done <= st.cycles && committed < commitWidth {
		st.rob = st.rob[1:]
		committed++
	}
	if committed > 0 {
		st.set.Cond(p.commitBundleFull, committed == commitWidth)
	}
}

// dispatch inserts an instruction into the timing model and returns
// its completion cycle.
func (st *run) dispatch(lat uint64, isStore bool) {
	p := &st.b.p
	st.retire()
	if st.set.Cond(p.robFull, len(st.rob) >= robSize) {
		// Stall until the oldest entry commits.
		st.charge(st.rob[0].done - st.cycles + 1)
		st.retire()
	}
	st.set.Cond(p.robEmpty, len(st.rob) == 0)
	st.set.Cond(p.iqFull, len(st.rob) >= iqSize) // issue window is a ROB prefix here
	st.rob = append(st.rob, inflight{done: st.cycles + lat, isStore: isStore})
}

// flush squashes all in-flight state (mispredict or exception).
func (st *run) flush(mispredict bool) {
	p := &st.b.p
	st.set.Cond(p.flushMispredict, mispredict)
	st.set.Cond(p.flushException, !mispredict)
	st.rob = st.rob[:0]
	st.sq = st.sq[:0]
	st.fetchBuf = 0
	st.charge(flushPenalty)
}

func (st *run) trap(e *trace.Entry, cause, tval uint64) {
	p := &st.b.p
	e.Trap, e.Cause, e.TVal = true, cause, tval
	st.set.Cond(p.trapFromU, st.prv == isa.PrivU)
	for _, c := range trapCauses {
		st.set.Cond(p.trapCause[c], c == cause)
	}
	st.pc, st.prv = st.csr.TakeTrap(st.pc, cause, tval, st.prv)
	st.resValid = false
	st.flush(false)
}

func (st *run) setReg(rd isa.Reg, v uint64) {
	if rd != 0 {
		st.x[rd] = v
	}
}

func resGranule(addr uint64) uint64 { return addr &^ 7 }

// noteStore pushes a store-queue entry and records forwarding
// conditions for subsequent loads.
func (st *run) noteStore(addr uint64, width int) {
	p := &st.b.p
	if st.set.Cond(p.sqFull, len(st.sq) >= sqSize) {
		st.sq = st.sq[1:]
	}
	st.sq = append(st.sq, pendingStore{addr: addr, width: width})
}

// observeLoad records store-to-load forwarding conditions against the
// store queue.
func (st *run) observeLoad(addr uint64, width int) {
	p := &st.b.p
	forward, partial := false, false
	for _, s := range st.sq {
		if s.addr == addr && s.width == width {
			forward = true
		} else if addr < s.addr+uint64(s.width) && s.addr < addr+uint64(width) {
			partial = true
		}
	}
	st.set.Cond(p.loadForward, forward)
	st.set.Cond(p.partialOverlap, partial)
}

func (st *run) step() {
	p := &st.b.p
	c := st.set
	st.charge(1)
	st.retire()

	e := trace.Entry{PC: st.pc, Priv: st.prv}
	defer func() { st.tr = append(st.tr, e) }()

	c.Cond(p.inUMode, st.prv == isa.PrivU)

	// --- Fetch (2-wide bundles) ---
	if st.fetchBuf == 0 {
		st.fetchBuf = 2
		c.Cond(p.bundleFull, true)
	}
	st.fetchBuf--
	if c.Cond(p.fetchFault, !st.m.Mapped(st.pc, 4)) {
		c.Cond(p.trapTaken, true)
		st.trap(&e, isa.ExcInstAccessFault, st.pc)
		return
	}
	raw, hit := st.ic.Fetch(st.pc, st.m)
	if !c.Cond(p.icacheHit, hit) {
		st.charge(latMiss)
	}
	e.Raw = raw

	// --- Decode / rename ---
	inst := isa.Decode(raw)
	e.Op = inst.Op
	st.decoded++
	st.opCount[inst.Op]++
	c.Cond(p.compressed, raw&3 != 3)
	if c.Cond(p.illegal, !inst.Valid()) {
		c.Cond(p.trapTaken, true)
		st.trap(&e, isa.ExcIllegalInstruction, uint64(raw))
		return
	}
	c.Cond(p.bundleHasBranch, inst.Op.IsAny(isa.ClassBranch|isa.ClassJump))
	c.Cond(p.rdX0Skip, inst.Rd == 0 && inst.WritesRd())
	c.Cond(p.freelistEmpty, len(st.rob) >= robSize-1)
	src1Busy := inst.Rs1 != 0 && st.busyReg[inst.Rs1] > st.cycles
	src2Busy := inst.Rs2 != 0 && st.busyReg[inst.Rs2] > st.cycles
	c.Cond(p.src1Busy, src1Busy)
	c.Cond(p.src2Busy, src2Busy)
	c.Cond(p.wakeupMatch, src1Busy || src2Busy)
	c.Cond(p.dualIssue, st.lastIssue == st.cycles)
	st.lastIssue = st.cycles

	op := inst.Op
	a, b := st.x[inst.Rs1], st.x[inst.Rs2]
	nextPC := st.pc + 4
	rdWrite := false
	var rdVal uint64
	lat := uint64(latALU)
	isStore := false

	trapped := false
	doTrap := func(cause, tval uint64) {
		trapped = true
		c.Cond(p.trapTaken, true)
		st.trap(&e, cause, tval)
	}

	switch {
	case op == isa.OpLUI:
		rdWrite, rdVal = true, uint64(inst.Imm)
	case op == isa.OpAUIPC:
		rdWrite, rdVal = true, st.pc+uint64(inst.Imm)
	case op == isa.OpJAL:
		target := st.pc + uint64(inst.Imm)
		st.btbObserve(target)
		if target%4 != 0 {
			doTrap(isa.ExcInstAddrMisaligned, target)
			return
		}
		if inst.Rd == isa.RA {
			c.Cond(p.rasOverflow, st.ras.Push(st.pc+4))
		}
		rdWrite, rdVal = true, st.pc+4
		nextPC = target
	case op == isa.OpJALR:
		target := (a + uint64(inst.Imm)) &^ 1
		isRet := inst.Rs1 == isa.RA && inst.Rd == 0
		c.Cond(p.jalrRet, isRet)
		c.Cond(p.jalrCall, inst.Rd == isa.RA)
		if isRet {
			pred, ok := st.ras.Pop()
			c.Cond(p.rasEmpty, !ok)
			if ok && pred != target {
				st.flush(true)
			}
		} else {
			st.btbObserve(target)
		}
		if inst.Rd == isa.RA {
			c.Cond(p.rasOverflow, st.ras.Push(st.pc+4))
		}
		if target%4 != 0 {
			doTrap(isa.ExcInstAddrMisaligned, target)
			return
		}
		rdWrite, rdVal = true, st.pc+4
		nextPC = target
	case op.Is(isa.ClassBranch):
		taken := isa.BranchTaken(op, a, b)
		pred := st.bht.Predict(st.pc)
		c.Cond(p.bhtPredTaken, pred)
		c.Cond(p.brTaken, taken)
		c.Cond(p.brBackward, inst.Imm < 0)
		if c.Cond(p.brMispredict, pred != taken) {
			st.flush(true)
		}
		st.bht.Update(st.pc, taken)
		if taken {
			target := st.pc + uint64(inst.Imm)
			st.btbObserve(target)
			if target%4 != 0 {
				doTrap(isa.ExcInstAddrMisaligned, target)
				return
			}
			nextPC = target
		}
	case op.Is(isa.ClassLoad) && !op.Is(isa.ClassAMO):
		addr := a + uint64(inst.Imm)
		width, signed := isa.MemWidth(op)
		// Spec-conformant priority (BOOM carries no Finding1).
		if c.Cond(p.memMisaligned, addr%uint64(width) != 0) {
			doTrap(isa.ExcLoadAddrMisaligned, addr)
			return
		}
		if c.Cond(p.memFault, !st.m.Mapped(addr, width)) {
			doTrap(isa.ExcLoadAccessFault, addr)
			return
		}
		st.observeLoad(addr, width)
		lat = latLoad
		if !c.Cond(p.dcacheHit, st.dcAccess(addr, false)) {
			lat += latMiss
		}
		v := st.m.ReadUint(addr, width)
		if signed {
			shift := uint(64 - 8*width)
			v = uint64(int64(v<<shift) >> shift)
		}
		rdWrite, rdVal = true, v
		e.MemValid, e.MemAddr = true, addr
	case op.Is(isa.ClassStore) && !op.Is(isa.ClassAMO):
		addr := a + uint64(inst.Imm)
		width, _ := isa.MemWidth(op)
		if c.Cond(p.memMisaligned, addr%uint64(width) != 0) {
			doTrap(isa.ExcStoreAddrMisaligned, addr)
			return
		}
		if c.Cond(p.memFault, !st.m.Mapped(addr, width)) {
			doTrap(isa.ExcStoreAccessFault, addr)
			return
		}
		if !c.Cond(p.dcacheHit, st.dcAccess(addr, true)) {
			lat += latMiss
		}
		st.noteStore(addr, width)
		st.m.WriteUint(addr, b, width)
		isStore = true
		if c.Cond(p.storeBreaksRes, st.resValid && resGranule(addr) == st.resAddr) {
			st.resValid = false
		}
		e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
		if c.Cond(p.tohostWrite, addr == mem.Tohost && width == 8 && b != 0) {
			st.halted, st.exitCode = true, b
		}
	case op.Is(isa.ClassAMO):
		if !st.execAMO(inst, &e, doTrap) {
			return
		}
		rdWrite, rdVal = true, st.amoRdVal
		lat = latAMO
	case op.Is(isa.ClassALU) || op.IsAny(isa.ClassMul|isa.ClassDiv):
		src := b
		switch op.Format() {
		case isa.FmtI, isa.FmtShift, isa.FmtShiftW:
			src = uint64(inst.Imm)
		}
		if op.IsAny(isa.ClassMul | isa.ClassDiv) {
			st.observeMulDiv(op, a, src)
			if op.Is(isa.ClassDiv) {
				lat = latDiv
			} else {
				lat = latMul
			}
		}
		rdWrite, rdVal = true, isa.ALU(op, a, src)
	case op.Is(isa.ClassCSR):
		st.observeCSR(inst)
		old, ok := st.csr.ExecCSR(inst, a, st.prv)
		if !ok {
			doTrap(isa.ExcIllegalInstruction, uint64(raw))
			return
		}
		lat = latCSR
		rdWrite, rdVal = true, old
	case op == isa.OpFENCE:
		lat = latFence
	case op == isa.OpFENCEI:
		c.Cond(p.fenceiFlush, true)
		st.ic.Flush()
		lat = latFence
	case op == isa.OpECALL:
		if st.prv == isa.PrivM {
			doTrap(isa.ExcECallFromM, 0)
		} else {
			doTrap(isa.ExcECallFromU, 0)
		}
		return
	case op == isa.OpEBREAK:
		doTrap(isa.ExcBreakpoint, st.pc)
		return
	case op == isa.OpMRET:
		if st.prv != isa.PrivM {
			doTrap(isa.ExcIllegalInstruction, uint64(raw))
			return
		}
		c.Cond(p.mppIsM, st.csr.MPP == isa.PrivM)
		nextPC, st.prv = st.csr.MRet()
		st.flush(false)
	case op == isa.OpWFI:
		// No interrupts: retires immediately.
	}
	if trapped {
		return
	}
	c.Cond(p.trapTaken, false)

	st.dispatch(lat, isStore)
	if rdWrite {
		st.setReg(inst.Rd, rdVal)
		if inst.Rd != 0 {
			st.busyReg[inst.Rd] = st.cycles + lat
			e.RdValid, e.Rd, e.RdVal = true, inst.Rd, rdVal
		}
	}
	st.pc = nextPC
	st.csr.Instret++
}

func (st *run) dcAccess(addr uint64, write bool) bool {
	res := st.dc.Access(addr, write)
	if st.set.Cond(st.b.p.dcacheEvictDirty, res.WritebackReq) {
		st.charge(3)
	}
	return res.Hit
}

func (st *run) btbObserve(target uint64) {
	p := &st.b.p
	predTarget, hit := st.btb.Lookup(st.pc)
	st.set.Cond(p.btbHit, hit)
	if !hit || predTarget != target {
		st.charge(2)
	}
	st.btb.Update(st.pc, target)
}

func (st *run) observeMulDiv(op isa.Op, a, b uint64) {
	p := &st.b.p
	c := st.set
	word := op.Is(isa.ClassW)
	c.Cond(p.mdWord, word)
	signed := op == isa.OpMUL || op == isa.OpMULH || op == isa.OpDIV || op == isa.OpREM ||
		op == isa.OpMULW || op == isa.OpDIVW || op == isa.OpREMW || op == isa.OpMULHSU
	c.Cond(p.mdSigned, signed)
	if op.Is(isa.ClassDiv) {
		if word {
			c.Cond(p.divByZero, uint32(b) == 0)
			c.Cond(p.divOverflow, int32(uint32(a)) == -1<<31 && int32(uint32(b)) == -1)
		} else {
			c.Cond(p.divByZero, b == 0)
			c.Cond(p.divOverflow, int64(a) == -1<<63 && int64(b) == -1)
		}
	}
}

func (st *run) observeCSR(inst isa.Inst) {
	p := &st.b.p
	c := st.set
	// Each entry sets its own distinct coverage bit from a pure
	// predicate of the instruction; iteration order cannot reach the
	// bitmap. (Bin IDs were defined in fixed slice order at build.)
	//lint:allow mapiter order-insensitive per-bin condition probes
	for addr, id := range p.csrAddr {
		c.Cond(id, addr == inst.CSR)
	}
	_, readable := st.csr.Read(inst.CSR, st.prv)
	_, readableM := st.csr.Read(inst.CSR, isa.PrivM)
	c.Cond(p.csrPrivViol, !readable && readableM)
	writes := inst.Op == isa.OpCSRRW || inst.Op == isa.OpCSRRWI ||
		(inst.Op == isa.OpCSRRS && inst.Rs1 != 0) || (inst.Op == isa.OpCSRRC && inst.Rs1 != 0) ||
		((inst.Op == isa.OpCSRRSI || inst.Op == isa.OpCSRRCI) && inst.Imm != 0)
	c.Cond(p.csrReadOnly, writes && inst.CSR>>10 == 3)
}

// execAMO handles the A extension with spec-conformant priority.
func (st *run) execAMO(inst isa.Inst, e *trace.Entry, doTrap func(cause, tval uint64)) bool {
	p := &st.b.p
	c := st.set
	op := inst.Op
	addr := st.x[inst.Rs1]
	width, signed := isa.MemWidth(op)

	misCause, accCause := isa.ExcStoreAddrMisaligned, isa.ExcStoreAccessFault
	if op == isa.OpLRW || op == isa.OpLRD {
		misCause, accCause = isa.ExcLoadAddrMisaligned, isa.ExcLoadAccessFault
	}
	if c.Cond(p.memMisaligned, addr%uint64(width) != 0) {
		doTrap(misCause, addr)
		return false
	}
	if c.Cond(p.memFault, !st.m.Mapped(addr, width)) {
		doTrap(accCause, addr)
		return false
	}

	sext := func(v uint64) uint64 {
		if signed && width == 4 {
			return uint64(int64(int32(uint32(v))))
		}
		return v
	}

	c.Cond(p.dcacheHit, st.dcAccess(addr, op != isa.OpLRW && op != isa.OpLRD))
	switch op {
	case isa.OpLRW, isa.OpLRD:
		v := st.m.ReadUint(addr, width)
		st.resValid, st.resAddr = true, resGranule(addr)
		st.amoRdVal = sext(v)
		e.MemValid, e.MemAddr = true, addr
	case isa.OpSCW, isa.OpSCD:
		match := st.resValid && resGranule(addr) == st.resAddr
		c.Cond(p.resValidAtSC, st.resValid)
		if c.Cond(p.scSuccess, match) {
			st.m.WriteUint(addr, st.x[inst.Rs2], width)
			st.amoRdVal = 0
			e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
		} else {
			st.amoRdVal = 1
		}
		st.resValid = false
	default:
		old := st.m.ReadUint(addr, width)
		st.m.WriteUint(addr, isa.AMOApply(op, old, st.x[inst.Rs2]), width)
		st.amoRdVal = sext(old)
		e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
	}
	return true
}

func (st *run) finalize() {
	p := &st.b.p
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		n := uint64(st.opCount[op])
		if n > 0 {
			st.set.Cond(p.opSeen[op], true)
		}
		if st.decoded > n {
			st.set.Cond(p.opSeen[op], false)
		}
	}
	if st.decoded > 0 {
		c := st.set
		for _, id := range p.tieFalse {
			c.Cond(id, false)
		}
		c.Cond(p.bundleFull, false) // partially-filled bundles occur at redirects
	}
}
