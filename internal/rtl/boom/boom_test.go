package boom

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/trace"
)

func runBoth(body []uint32) (rtl.Result, []trace.Entry, *iss.ISS) {
	img, _ := prog.MustBuild(prog.Program{Body: body})
	budget := prog.InstructionBudget(len(body))

	b := New()
	res := b.Run(img, budget)

	m := mem.Platform()
	m.Load(img)
	g := iss.New(m, img.Entry)
	gt := g.Run(budget)
	return res, gt, g
}

func TestBoomRunsHarness(t *testing.T) {
	res, _, _ := runBoth(nil)
	if !res.Halted || res.ExitCode != 1 {
		t.Fatalf("halted=%v exit=%d", res.Halted, res.ExitCode)
	}
	if res.Coverage.Count() == 0 {
		t.Error("no coverage recorded")
	}
}

// wildBody mixes every instruction family, including the ones that are
// findings-triggers on Rocket: BOOM has no injected bugs, so its trace
// must match the golden model on ALL of them (only cycle-CSR reads and
// self-modifying code are excluded, because mcycle legitimately
// differs and the fetch path is weakly ordered in both designs).
func wildBody(rng *rand.Rand, n int) []uint32 {
	var body []uint32
	rd := func() isa.Reg { return isa.Reg(10 + rng.Intn(8)) }
	rs := func() isa.Reg { return isa.Reg(10 + rng.Intn(12)) }
	base := []isa.Reg{isa.S0, isa.S2}
	for len(body) < n {
		switch rng.Intn(14) {
		case 0, 1, 2:
			ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpSLT, isa.OpSRA, isa.OpSLLW}
			body = append(body, isa.Enc(ops[rng.Intn(len(ops))], rd(), rs(), rs(), 0))
		case 3:
			ops := []isa.Op{isa.OpMUL, isa.OpMULH, isa.OpDIV, isa.OpREM, isa.OpDIVW, isa.OpREMUW}
			body = append(body, isa.Enc(ops[rng.Intn(len(ops))], rd(), rs(), rs(), 0))
		case 4:
			body = append(body, isa.Enc(isa.OpLD, rd(), base[rng.Intn(2)], 0, int64(rng.Intn(64))*8))
		case 5:
			body = append(body, isa.Enc(isa.OpSD, 0, base[rng.Intn(2)], rs(), int64(rng.Intn(64))*8))
		case 6:
			// Load with rd=x0 (Finding3 trigger on Rocket; clean here).
			body = append(body, isa.Enc(isa.OpLW, 0, base[rng.Intn(2)], 0, int64(rng.Intn(64))*8))
		case 7:
			amos := []isa.Op{isa.OpAMOADDD, isa.OpAMOORD, isa.OpAMOSWAPW, isa.OpAMOMAXW}
			rdv := isa.Reg(rng.Intn(2)) * isa.Reg(10+rng.Intn(8)) // sometimes x0
			body = append(body, isa.EncAMO(amos[rng.Intn(len(amos))], rdv, isa.S0, rs(), false, false))
		case 8:
			br := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLTU}[rng.Intn(3)]
			body = append(body, isa.Enc(br, 0, rs(), rs(), 8))
			body = append(body, isa.Enc(isa.OpADDI, rd(), rd(), 0, 1))
		case 9:
			body = append(body, isa.EncCSR(isa.OpCSRRS, rd(), 0, isa.CSRMScratch))
		case 10:
			// Misaligned access via s5 (traps, handler skips).
			body = append(body, isa.Enc(isa.OpLH, rd(), isa.S5, 0, 0))
		case 11:
			body = append(body, isa.Encode(isa.Inst{Op: isa.OpFENCEI}))
		case 12:
			body = append(body, isa.Enc(isa.OpADDI, rd(), rs(), 0, int64(rng.Intn(4096)-2048)))
		case 13:
			body = append(body, isa.Encode(isa.Inst{Op: isa.OpWFI}))
		}
	}
	return body
}

func TestBoomTraceMatchesGoldenOnWildPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		body := wildBody(rng, 40+rng.Intn(60))
		res, gt, g := runBoth(body)
		if len(res.Trace) != len(gt) {
			t.Fatalf("trial %d: trace length %d vs %d", trial, len(res.Trace), len(gt))
		}
		for i := range gt {
			if !trace.Equal(res.Trace[i], gt[i]) {
				t.Fatalf("trial %d entry %d:\nboom:   %s\ngolden: %s\ndiff: %s",
					trial, i, res.Trace[i], gt[i], trace.Diff(res.Trace[i], gt[i]))
			}
		}
		for r := 0; r < 32; r++ {
			if res.Regs[r] != g.X[r] {
				t.Fatalf("trial %d: x%d mismatch", trial, r)
			}
		}
	}
}

func TestBoomNoFinding1(t *testing.T) {
	// Unmapped+misaligned access: BOOM must agree with the golden
	// model (misaligned wins), unlike Rocket.
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.TP, isa.TP, 0, 1),
		isa.Enc(isa.OpLW, isa.A0, isa.TP, 0, 0),
	}
	res, gt, _ := runBoth(body)
	for i := range gt {
		if !trace.Equal(res.Trace[i], gt[i]) {
			t.Fatalf("entry %d diverges: %s", i, trace.Diff(res.Trace[i], gt[i]))
		}
	}
	var cause uint64
	for _, e := range res.Trace {
		if e.Trap && e.Op == isa.OpLW {
			cause = e.Cause
		}
	}
	if cause != isa.ExcLoadAddrMisaligned {
		t.Errorf("boom cause = %d, want 4 (spec-conformant)", cause)
	}
}

func TestBoomNoBug2(t *testing.T) {
	body := []uint32{isa.Enc(isa.OpMUL, isa.A2, isa.A5, isa.A5, 0)}
	res, gt, _ := runBoth(body)
	var bm, gm *trace.Entry
	for i := range res.Trace {
		if res.Trace[i].Op == isa.OpMUL {
			bm = &res.Trace[i]
		}
	}
	for i := range gt {
		if gt[i].Op == isa.OpMUL {
			gm = &gt[i]
		}
	}
	if bm == nil || gm == nil {
		t.Fatal("MUL not found")
	}
	if !bm.RdValid || !gm.RdValid {
		t.Error("both traces must report the MUL rd write on BOOM")
	}
}

func TestBoomOoOConditionsReachable(t *testing.T) {
	b := New()
	// A long dependent-latency chain (loads + divisions) should
	// exercise ROB pressure, wakeup and store-queue conditions.
	var body []uint32
	for i := 0; i < 40; i++ {
		body = append(body,
			isa.Enc(isa.OpDIV, isa.A0, isa.A0, isa.A5, 0),
			isa.Enc(isa.OpADD, isa.A1, isa.A0, isa.A1, 0), // depends on div
			isa.Enc(isa.OpSD, 0, isa.S0, isa.A1, 0),
			isa.Enc(isa.OpLD, isa.A2, isa.S0, 0, 0), // forwarding candidate
		)
	}
	img, _ := prog.MustBuild(prog.Program{Body: body})
	res := b.Run(img, prog.InstructionBudget(len(body)))
	for _, name := range []string{
		"rename.src1_busy", "issue.wakeup_tag_match", "lsu.store_to_load_forward",
	} {
		id, ok := b.Space().Lookup(name)
		if !ok {
			t.Fatalf("point %s missing", name)
		}
		if !res.Coverage.Covered(id, true) {
			t.Errorf("point %s true bin should be reachable by this workload", name)
		}
	}
}

func TestBoomCoverageCeilingBelow100(t *testing.T) {
	b := New()
	id, ok := b.Space().Lookup("dead.vm.sv39_mode")
	if !ok {
		t.Fatal("dead point missing")
	}
	img, _ := prog.MustBuild(prog.Program{Body: wildBody(rand.New(rand.NewSource(5)), 100)})
	res := b.Run(img, 8000)
	if res.Coverage.Covered(id, true) || res.Coverage.Covered(id, false) {
		t.Error("dead points must stay unevaluated")
	}
}

func TestBoomDeterminism(t *testing.T) {
	body := wildBody(rand.New(rand.NewSource(7)), 80)
	img, _ := prog.MustBuild(prog.Program{Body: body})
	b := New()
	r1 := b.Run(img, 6000)
	r2 := b.Run(img, 6000)
	if r1.Cycles != r2.Cycles || r1.Coverage.Count() != r2.Coverage.Count() {
		t.Error("BOOM runs are not deterministic")
	}
}

// TestRunnerMatchesRun: the reusable runner must be bit-identical to
// the allocating Run across consecutive runs, including after wild
// bodies that leave state in caches, predictors and the ROB/store
// queue that Reset must clear.
func TestRunnerMatchesRun(t *testing.T) {
	b := New()
	rd, ok := interface{}(b).(rtl.ReusableDUT)
	if !ok {
		t.Fatal("Boom does not implement rtl.ReusableDUT")
	}
	runner := rd.NewRunner()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		body := wildBody(rng, 40)
		img, _ := prog.MustBuild(prog.Program{Body: body})
		budget := prog.InstructionBudget(len(body))

		want := b.Run(img, budget)
		got := runner.RunScratch(img, budget, b.Space().NewSet(), nil)

		if got.Cycles != want.Cycles || got.Halted != want.Halted ||
			got.ExitCode != want.ExitCode || got.Regs != want.Regs {
			t.Fatalf("run %d: runner result diverged from Run", i)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("run %d: trace length %d vs %d", i, len(got.Trace), len(want.Trace))
		}
		for j := range got.Trace {
			if got.Trace[j] != want.Trace[j] {
				t.Fatalf("run %d: trace entry %d diverged", i, j)
			}
		}
		gs, ws := got.Coverage.Snapshot(), want.Coverage.Snapshot()
		for j := range gs {
			if gs[j] != ws[j] {
				t.Fatalf("run %d: coverage word %d diverged", i, j)
			}
		}
	}
}
