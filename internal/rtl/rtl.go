// Package rtl defines the interface between the fuzzers and the
// simulated designs under test (the paper's Synopsys VCS + Chipyard
// substitute). A DUT executes a test image cycle-by-cycle, emits a
// commit trace, and records condition coverage into a fresh set per
// run.
//chatfuzz:deterministic package
package rtl

import (
	"chatfuzz/internal/cov"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/trace"
)

// Result is the outcome of simulating one test input on a DUT.
type Result struct {
	// Trace is the commit trace as reported by the DUT's tracer module
	// (which, on Rocket, contains the injected tracer bugs).
	Trace []trace.Entry
	// Coverage is the set of condition bins this run hit.
	Coverage *cov.Set
	// Cycles is the number of simulated core cycles.
	Cycles uint64
	// Halted reports whether the program ended via the tohost store.
	Halted bool
	// ExitCode is the tohost value when Halted.
	ExitCode uint64
	// Regs is the final architectural register file, for differential
	// debugging and tests.
	Regs [32]uint64
}

// DUT is a simulated processor design.
type DUT interface {
	// Name identifies the design ("rocket" or "boom").
	Name() string
	// Space is the DUT's condition-coverage space, fixed at build time.
	Space() *cov.Space
	// Run simulates the image from reset until the program halts or
	// maxInsts instructions have been attempted.
	Run(img mem.Image, maxInsts int) Result
}

// Runner is a reusable execution context over one DUT, owned by a
// single simulation worker. Unlike DUT.Run — which allocates platform
// memory, microarchitectural state and a coverage set per call — a
// Runner keeps that scratch alive across calls and resets it, so the
// steady-state fuzzing loop is allocation-free. A Runner is not
// goroutine-safe; concurrent workers each hold their own.
type Runner interface {
	// RunScratch simulates exactly like DUT.Run but records coverage
	// into set (which must be empty and belong to the DUT's Space) and
	// appends the commit trace to tr[:0]. The returned Result references
	// set and the appended trace, so both stay owned by the caller and
	// can be pooled once the result has been consumed.
	RunScratch(img mem.Image, maxInsts int, set *cov.Set, tr []trace.Entry) Result
}

// ReusableDUT is implemented by designs that can vend Runners. The
// batch execution engine upgrades to RunScratch when the DUT supports
// it and falls back to plain Run otherwise, so the capability is
// strictly an optimisation: results are bit-identical either way.
type ReusableDUT interface {
	DUT
	// NewRunner returns a fresh worker-private execution context.
	NewRunner() Runner
}
