// Package rtl defines the interface between the fuzzers and the
// simulated designs under test (the paper's Synopsys VCS + Chipyard
// substitute). A DUT executes a test image cycle-by-cycle, emits a
// commit trace, and records condition coverage into a fresh set per
// run.
package rtl

import (
	"chatfuzz/internal/cov"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/trace"
)

// Result is the outcome of simulating one test input on a DUT.
type Result struct {
	// Trace is the commit trace as reported by the DUT's tracer module
	// (which, on Rocket, contains the injected tracer bugs).
	Trace []trace.Entry
	// Coverage is the set of condition bins this run hit.
	Coverage *cov.Set
	// Cycles is the number of simulated core cycles.
	Cycles uint64
	// Halted reports whether the program ended via the tohost store.
	Halted bool
	// ExitCode is the tohost value when Halted.
	ExitCode uint64
	// Regs is the final architectural register file, for differential
	// debugging and tests.
	Regs [32]uint64
}

// DUT is a simulated processor design.
type DUT interface {
	// Name identifies the design ("rocket" or "boom").
	Name() string
	// Space is the DUT's condition-coverage space, fixed at build time.
	Space() *cov.Space
	// Run simulates the image from reset until the program halts or
	// maxInsts instructions have been attempted.
	Run(img mem.Image, maxInsts int) Result
}
