// Package uarch provides the microarchitectural building blocks shared
// by the Rocket and BOOM core models: set-associative caches (a
// tag-only timing cache and a data-holding instruction cache whose
// stale lines realise Bug1), a gshare-less BHT, a BTB, and a return
// address stack.
//
// The blocks are deliberately free of coverage hooks; the core models
// observe their outcomes and record the condition points, so each core
// has its own coverage space over the same structures.
//chatfuzz:deterministic package
package uarch

// CacheConfig sizes a set-associative cache.
type CacheConfig struct {
	Sets      int // power of two
	Ways      int
	LineBytes int // power of two
}

// lineAddr returns the line-aligned address and set index.
func (c CacheConfig) lineAddr(addr uint64) (uint64, int) {
	la := addr &^ uint64(c.LineBytes-1)
	set := int(la/uint64(c.LineBytes)) & (c.Sets - 1)
	return la, set
}

// TimingCache models hit/miss/eviction behaviour only; data always
// flows to and from backing memory, so it is architecturally coherent.
// Used for the D-cache.
type TimingCache struct {
	cfg   CacheConfig
	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	lru   [][]uint64
	tick  uint64
}

// NewTimingCache returns an empty timing cache.
func NewTimingCache(cfg CacheConfig) *TimingCache {
	t := &TimingCache{cfg: cfg}
	t.tags = make([][]uint64, cfg.Sets)
	t.valid = make([][]bool, cfg.Sets)
	t.dirty = make([][]bool, cfg.Sets)
	t.lru = make([][]uint64, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		t.tags[s] = make([]uint64, cfg.Ways)
		t.valid[s] = make([]bool, cfg.Ways)
		t.dirty[s] = make([]bool, cfg.Ways)
		t.lru[s] = make([]uint64, cfg.Ways)
	}
	return t
}

// Reset invalidates every line and rewinds the LRU clock, restoring
// the freshly-constructed state without re-allocating the arrays.
func (t *TimingCache) Reset() {
	for s := range t.valid {
		for w := range t.valid[s] {
			t.valid[s][w] = false
			t.dirty[s][w] = false
			t.tags[s][w] = 0
			t.lru[s][w] = 0
		}
	}
	t.tick = 0
}

// AccessResult describes one cache access.
type AccessResult struct {
	Hit          bool
	Evicted      bool // a valid line was replaced
	WritebackReq bool // the evicted line was dirty
}

// Access looks up addr, fills on miss (LRU replacement), and marks the
// line dirty on writes.
func (t *TimingCache) Access(addr uint64, write bool) AccessResult {
	t.tick++
	la, set := t.cfg.lineAddr(addr)
	for w := 0; w < t.cfg.Ways; w++ {
		if t.valid[set][w] && t.tags[set][w] == la {
			t.lru[set][w] = t.tick
			if write {
				t.dirty[set][w] = true
			}
			return AccessResult{Hit: true}
		}
	}
	// Miss: pick invalid way, else LRU.
	victim := 0
	for w := 0; w < t.cfg.Ways; w++ {
		if !t.valid[set][w] {
			victim = w
			t.valid[set][victim] = true
			t.tags[set][victim] = la
			t.dirty[set][victim] = write
			t.lru[set][victim] = t.tick
			return AccessResult{Hit: false}
		}
	}
	for w := 1; w < t.cfg.Ways; w++ {
		if t.lru[set][w] < t.lru[set][victim] {
			victim = w
		}
	}
	res := AccessResult{Hit: false, Evicted: true, WritebackReq: t.dirty[set][victim]}
	t.tags[set][victim] = la
	t.dirty[set][victim] = write
	t.lru[set][victim] = t.tick
	return res
}

// MemReader is the backing-memory read interface the ICache fills from.
type MemReader interface {
	LoadByte(addr uint64) byte
}

// ICache holds actual copies of instruction lines. Crucially, it is
// NOT kept coherent with stores — the RISC-V spec requires software to
// execute FENCE.I after writing instruction memory, and RocketCore
// relies on that. A program that self-modifies without FENCE.I fetches
// stale bytes here while the golden model executes the new ones: Bug1
// (CWE-1202).
type ICache struct {
	cfg   CacheConfig
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	data  [][][]byte
	tick  uint64
}

// NewICache returns an empty instruction cache.
func NewICache(cfg CacheConfig) *ICache {
	c := &ICache{cfg: cfg}
	c.tags = make([][]uint64, cfg.Sets)
	c.valid = make([][]bool, cfg.Sets)
	c.lru = make([][]uint64, cfg.Sets)
	c.data = make([][][]byte, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		c.tags[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.lru[s] = make([]uint64, cfg.Ways)
		c.data[s] = make([][]byte, cfg.Ways)
		for w := 0; w < cfg.Ways; w++ {
			c.data[s][w] = make([]byte, cfg.LineBytes)
		}
	}
	return c
}

// Fetch reads a 32-bit word at addr through the cache, filling the
// line from m on a miss. The returned word comes from the cached copy,
// which may be stale after unflushed stores.
func (c *ICache) Fetch(addr uint64, m MemReader) (word uint32, hit bool) {
	c.tick++
	la, set := c.cfg.lineAddr(addr)
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == la {
			way, hit = w, true
			break
		}
	}
	if way < 0 {
		way = 0
		for w := 0; w < c.cfg.Ways; w++ {
			if !c.valid[set][w] {
				way = w
				break
			}
			if c.lru[set][w] < c.lru[set][way] {
				way = w
			}
		}
		for i := 0; i < c.cfg.LineBytes; i++ {
			c.data[set][way][i] = m.LoadByte(la + uint64(i))
		}
		c.tags[set][way] = la
		c.valid[set][way] = true
	}
	c.lru[set][way] = c.tick
	off := int(addr - la)
	d := c.data[set][way]
	word = uint32(d[off]) | uint32(d[off+1])<<8 | uint32(d[off+2])<<16 | uint32(d[off+3])<<24
	return word, hit
}

// Flush invalidates every line (FENCE.I).
func (c *ICache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

// Reset restores the freshly-constructed state without re-allocating:
// every line invalid, LRU clock rewound. Stale line data is kept — an
// invalid line is refilled before it is ever read.
func (c *ICache) Reset() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.tags[s][w] = 0
			c.lru[s][w] = 0
		}
	}
	c.tick = 0
}

// BHT is a table of 2-bit saturating counters.
type BHT struct {
	counters []uint8
}

// NewBHT returns a BHT with n entries (power of two), weakly not-taken.
func NewBHT(n int) *BHT { return &BHT{counters: make([]uint8, n)} }

// Reset returns every counter to weakly not-taken.
func (b *BHT) Reset() { clear(b.counters) }

func (b *BHT) index(pc uint64) int { return int(pc>>2) & (len(b.counters) - 1) }

// Predict returns the taken prediction for pc.
func (b *BHT) Predict(pc uint64) bool { return b.counters[b.index(pc)] >= 2 }

// Update trains the counter with the actual outcome.
func (b *BHT) Update(pc uint64, taken bool) {
	i := b.index(pc)
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
}

// NewBTB returns a BTB with n entries (power of two).
func NewBTB(n int) *BTB {
	return &BTB{tags: make([]uint64, n), targets: make([]uint64, n), valid: make([]bool, n)}
}

// Reset invalidates every entry.
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
		b.tags[i] = 0
		b.targets[i] = 0
	}
}

func (b *BTB) index(pc uint64) int { return int(pc>>2) & (len(b.tags) - 1) }

// Lookup returns the predicted target for pc, if any.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	i := b.index(pc)
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	i := b.index(pc)
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
}

// RAS is a fixed-depth return address stack.
type RAS struct {
	stack []uint64
	depth int
}

// NewRAS returns a RAS with the given depth.
func NewRAS(depth int) *RAS { return &RAS{depth: depth} }

// Reset empties the stack, keeping its backing array.
func (r *RAS) Reset() { r.stack = r.stack[:0] }

// Push records a return address; reports whether the stack overflowed
// (oldest entry dropped).
func (r *RAS) Push(addr uint64) (overflow bool) {
	if len(r.stack) == r.depth {
		copy(r.stack, r.stack[1:])
		r.stack[len(r.stack)-1] = addr
		return true
	}
	r.stack = append(r.stack, addr)
	return false
}

// Pop returns the predicted return address; ok=false when empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	addr = r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return addr, true
}

// Depth returns the current occupancy.
func (r *RAS) Depth() int { return len(r.stack) }
