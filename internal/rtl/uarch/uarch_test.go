package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeMem is a trivial MemReader for ICache tests.
type fakeMem map[uint64]byte

func (f fakeMem) LoadByte(addr uint64) byte { return f[addr] }

func TestTimingCacheHitAfterFill(t *testing.T) {
	c := NewTimingCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64})
	if c.Access(0x1000, false).Hit {
		t.Error("first access must miss")
	}
	if !c.Access(0x1000, false).Hit {
		t.Error("second access must hit")
	}
	if !c.Access(0x103F, false).Hit {
		t.Error("same-line access must hit")
	}
	if c.Access(0x1040, false).Hit {
		t.Error("next line must miss")
	}
}

func TestTimingCacheLRUEvictionAndWriteback(t *testing.T) {
	// 1 set, 2 ways: three distinct lines mapping to the same set.
	c := NewTimingCache(CacheConfig{Sets: 1, Ways: 2, LineBytes: 64})
	c.Access(0x0000, true) // dirty
	c.Access(0x0040, false)
	res := c.Access(0x0080, false) // evicts 0x0000 (LRU, dirty)
	if !res.Evicted || !res.WritebackReq {
		t.Errorf("want dirty eviction, got %+v", res)
	}
	// 0x0040 should still hit (it was MRU at eviction time).
	if !c.Access(0x0040, false).Hit {
		t.Error("MRU line was wrongly evicted")
	}
}

func TestICacheServesStaleBytes(t *testing.T) {
	m := fakeMem{}
	for i := uint64(0); i < 64; i++ {
		m[0x2000+i] = byte(i)
	}
	c := NewICache(CacheConfig{Sets: 2, Ways: 1, LineBytes: 64})
	w1, hit := c.Fetch(0x2000, m)
	if hit {
		t.Error("first fetch must miss")
	}
	m[0x2000] = 0xFF // memory changes behind the cache's back
	w2, hit := c.Fetch(0x2000, m)
	if !hit {
		t.Error("second fetch must hit")
	}
	if w1 != w2 {
		t.Error("cached fetch must return stale bytes (Bug1 substrate)")
	}
	c.Flush()
	w3, hit := c.Fetch(0x2000, m)
	if hit {
		t.Error("post-flush fetch must miss")
	}
	if w3 == w1 {
		t.Error("post-flush fetch must observe the new bytes")
	}
}

func TestICacheWordAssembly(t *testing.T) {
	m := fakeMem{0x100: 0x78, 0x101: 0x56, 0x102: 0x34, 0x103: 0x12}
	c := NewICache(CacheConfig{Sets: 2, Ways: 1, LineBytes: 64})
	w, _ := c.Fetch(0x100, m)
	if w != 0x12345678 {
		t.Errorf("fetched word = %#x, want 0x12345678 (little endian)", w)
	}
}

func TestBHTTrainsTowardsTaken(t *testing.T) {
	b := NewBHT(16)
	pc := uint64(0x8000_0000)
	if b.Predict(pc) {
		t.Error("initial prediction must be not-taken")
	}
	b.Update(pc, true)
	b.Update(pc, true)
	if !b.Predict(pc) {
		t.Error("after two taken outcomes prediction must flip")
	}
	b.Update(pc, true) // saturate to strongly-taken
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Error("one not-taken must not flip a strong counter")
	}
	b.Update(pc, false)
	if b.Predict(pc) {
		t.Error("two not-taken must flip prediction back")
	}
}

func TestBHTCounterSaturation(t *testing.T) {
	b := NewBHT(4)
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	// After saturation, exactly two not-taken updates flip the
	// prediction (3 -> 2 -> 1).
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Error("first not-taken flipped a saturated counter")
	}
	b.Update(pc, false)
	if b.Predict(pc) {
		t.Error("second not-taken should flip")
	}
}

func TestBTBLookupAndAliasing(t *testing.T) {
	b := NewBTB(4)
	if _, hit := b.Lookup(0x100); hit {
		t.Error("empty BTB must miss")
	}
	b.Update(0x100, 0x500)
	if tgt, hit := b.Lookup(0x100); !hit || tgt != 0x500 {
		t.Errorf("lookup = (%#x,%v)", tgt, hit)
	}
	// 0x100 and 0x110 alias in a 4-entry BTB (index = pc>>2 & 3).
	b.Update(0x110, 0x900)
	if _, hit := b.Lookup(0x100); hit {
		t.Error("aliased entry must evict the old tag")
	}
}

func TestRASPushPopOrder(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must fail to pop")
	}
	r.Push(1)
	r.Push(2)
	if a, ok := r.Pop(); !ok || a != 2 {
		t.Errorf("pop = (%d,%v), want (2,true)", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 1 {
		t.Errorf("pop = (%d,%v), want (1,true)", a, ok)
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	if r.Push(1) {
		t.Error("push 1 must not overflow")
	}
	if r.Push(2) {
		t.Error("push 2 must not overflow")
	}
	if !r.Push(3) {
		t.Error("push 3 must overflow")
	}
	if a, _ := r.Pop(); a != 3 {
		t.Errorf("top = %d, want 3", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Errorf("next = %d, want 2 (1 was dropped)", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS should now be empty")
	}
}

// Property: a timing cache with W ways never evicts among <=W distinct
// lines per set.
func TestTimingCacheNoEvictionWithinWays(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewTimingCache(CacheConfig{Sets: 8, Ways: 4, LineBytes: 64})
		// Four lines, all in set 0 of an 8-set cache: stride 8*64.
		lines := []uint64{0, 0x200 * 1, 0x200 * 2, 0x200 * 3}
		for i := 0; i < 200; i++ {
			a := lines[rng.Intn(len(lines))]
			if c.Access(a, rng.Intn(2) == 0).Evicted {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
