package rocket

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/trace"
)

// runBoth executes the same body on the Rocket model and the golden
// ISS, returning both traces and results.
func runBoth(body []uint32) (rtl.Result, []trace.Entry, *iss.ISS) {
	img, _ := prog.MustBuild(prog.Program{Body: body})
	budget := prog.InstructionBudget(len(body))

	r := New()
	res := r.Run(img, budget)

	m := mem.Platform()
	m.Load(img)
	g := iss.New(m, img.Entry)
	gt := g.Run(budget)
	return res, gt, g
}

func TestRocketRunsHarness(t *testing.T) {
	res, _, _ := runBoth(nil)
	if !res.Halted || res.ExitCode != 1 {
		t.Fatalf("halted=%v exit=%d, want true, 1", res.Halted, res.ExitCode)
	}
	if res.Coverage.Count() == 0 {
		t.Error("no coverage recorded")
	}
	if res.Cycles <= uint64(len(res.Trace)) {
		t.Errorf("cycles=%d must exceed instruction count %d", res.Cycles, len(res.Trace))
	}
}

// cleanBody generates a structured random program that avoids every
// injected-finding trigger: no MUL/DIV (Bug2), no rd=x0 memory ops
// (F2/F3), no stores to text (Bug1), no unmapped+misaligned accesses
// (F1), no cycle-CSR reads. On such programs Rocket's trace must be
// bit-identical to the golden model's.
func cleanBody(rng *rand.Rand, n int) []uint32 {
	aluOps := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU, isa.OpADDW, isa.OpSUBW}
	immOps := []isa.Op{isa.OpADDI, isa.OpXORI, isa.OpORI, isa.OpANDI, isa.OpSLTI, isa.OpADDIW}
	// rd pool avoids x0 and harness-critical regs (none needed mid-body).
	rd := func() isa.Reg { return isa.Reg(10 + rng.Intn(8)) }  // a0..a7
	rs := func() isa.Reg { return isa.Reg(10 + rng.Intn(12)) } // a0..s3
	base := []isa.Reg{isa.S0, isa.S2} // mapped, aligned data pointers outside the rd pool

	var body []uint32
	for len(body) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			body = append(body, isa.Enc(aluOps[rng.Intn(len(aluOps))], rd(), rs(), rs(), 0))
		case 4, 5:
			body = append(body, isa.Enc(immOps[rng.Intn(len(immOps))], rd(), rs(), 0, int64(rng.Intn(4096)-2048)))
		case 6:
			off := int64(rng.Intn(64)) * 8
			body = append(body, isa.Enc(isa.OpLD, rd(), base[rng.Intn(len(base))], 0, off))
		case 7:
			off := int64(rng.Intn(64)) * 8
			body = append(body, isa.Enc(isa.OpSD, 0, base[rng.Intn(len(base))], rs(), off))
		case 8:
			// Forward branch over one instruction (always well-formed).
			br := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGEU}[rng.Intn(4)]
			body = append(body, isa.Enc(br, 0, rs(), rs(), 8))
			body = append(body, isa.Enc(isa.OpADDI, rd(), rd(), 0, 1))
		case 9:
			body = append(body, isa.Enc(isa.OpLUI, rd(), 0, 0, int64(int32(uint32(rng.Intn(1<<20))<<12))))
		}
	}
	return body
}

func TestRocketTraceMatchesGoldenOnCleanPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		body := cleanBody(rng, 30+rng.Intn(60))
		res, gt, g := runBoth(body)
		if len(res.Trace) != len(gt) {
			t.Fatalf("trial %d: trace length %d vs %d", trial, len(res.Trace), len(gt))
		}
		for i := range gt {
			if !trace.Equal(res.Trace[i], gt[i]) {
				t.Fatalf("trial %d entry %d:\nrocket: %s\ngolden: %s\ndiff: %s",
					trial, i, res.Trace[i], gt[i], trace.Diff(res.Trace[i], gt[i]))
			}
		}
		for r := 0; r < 32; r++ {
			if res.Regs[r] != g.X[r] {
				t.Fatalf("trial %d: x%d = %#x vs golden %#x", trial, r, res.Regs[r], g.X[r])
			}
		}
	}
}

func TestBug1SelfModifyWithoutFenceIDiverges(t *testing.T) {
	// Patch the instruction 2 ahead, first executing it once so it is
	// resident in the I-cache. Without FENCE.I, Rocket executes the
	// stale version while the golden model executes the patched one.
	patchWord := isa.Enc(isa.OpADDI, isa.A1, 0, 0, 2)
	// Body:
	//   auipc a0, 0          ; a0 = pc
	//   lw    t1, 0(s0)      ; t1 = patch word (pre-seeded via data)
	//   jal   x0, +12        ; skip victim once? — no: execute victim first:
	// Simpler: victim at pc+16; loop twice over it.
	//   0: auipc a0, 0
	//   1: lw   t1, 0(s0)
	//   2: addi a1, zero, 1    <- victim (cached on first pass)
	//   3: sw   t1, 8(a0)      <- patch victim (a0+8 = victim)
	//   4: jal  x0, -8         <- re-run victim once
	// After: if patched instruction is fetched, a1 == 2 (golden);
	// Rocket's stale I-cache keeps a1 == 1. To avoid an infinite loop
	// use a guard counter in a2.
	body := []uint32{
		isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),
		isa.Enc(isa.OpLW, isa.T1, isa.S0, 0, 0),
		isa.Enc(isa.OpADDI, isa.A2, 0, 0, 0),      // guard = 0
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 1),      // victim (pc+12)
		isa.Enc(isa.OpSW, 0, isa.A0, isa.T1, 12),  // patch victim
		isa.Enc(isa.OpADDI, isa.A2, isa.A2, 0, 1), // guard++
		isa.Enc(isa.OpADDI, isa.T2, 0, 0, 2),
		isa.Enc(isa.OpBLT, 0, isa.A2, isa.T2, -16), // loop back to victim twice
	}
	patch := isa.Enc(isa.OpADDI, isa.A1, 0, 0, 2)
	if patch != patchWord {
		t.Fatal("test bug")
	}

	img, _ := prog.MustBuild(prog.Program{Body: body})
	budget := prog.InstructionBudget(len(body))

	r := New()
	mm := mem.Platform()
	mm.Load(img)
	mm.WriteUint(mem.DataBase+0x2000, uint64(patch), 4) // s0 -> patch word
	// Run rocket against a memory that already contains the patch word.
	// rocket.Run builds its own memory, so seed via an extra segment.
	img2 := img
	img2.Segments = append([]mem.Segment{}, img.Segments...)
	var seg mem.Image
	seg.AddWords(mem.DataBase+0x2000, []uint32{patch})
	img2.Segments = append(img2.Segments, seg.Segments...)

	res := r.Run(img2, budget)

	g := iss.New(mm, img.Entry)
	g.Run(budget)

	if g.X[isa.A1] != 2 {
		t.Fatalf("golden a1 = %d, want 2 (executes patched instruction)", g.X[isa.A1])
	}
	if res.Regs[isa.A1] != 1 {
		t.Fatalf("rocket a1 = %d, want 1 (stale I-cache, Bug1)", res.Regs[isa.A1])
	}
}

func TestBug1FenceIRestoresCoherence(t *testing.T) {
	// Same self-modify pattern, but with FENCE.I between the store and
	// the re-execution: Rocket must now match the golden model.
	body := []uint32{
		isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),
		isa.Enc(isa.OpLW, isa.T1, isa.S0, 0, 0),
		isa.Enc(isa.OpADDI, isa.A2, 0, 0, 0),
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 1),      // victim (pc+12)
		isa.Enc(isa.OpSW, 0, isa.A0, isa.T1, 12),  // patch victim
		isa.Encode(isa.Inst{Op: isa.OpFENCEI}),    // flush I$
		isa.Enc(isa.OpADDI, isa.A2, isa.A2, 0, 1), // guard++
		isa.Enc(isa.OpADDI, isa.T2, 0, 0, 2),
		isa.Enc(isa.OpBLT, 0, isa.A2, isa.T2, -20), // loop back to victim
	}
	patch := isa.Enc(isa.OpADDI, isa.A1, 0, 0, 2)

	img, _ := prog.MustBuild(prog.Program{Body: body})
	var seg mem.Image
	seg.AddWords(mem.DataBase+0x2000, []uint32{patch})
	img.Segments = append(img.Segments, seg.Segments...)
	budget := prog.InstructionBudget(len(body))

	r := New()
	res := r.Run(img, budget)

	mm := mem.Platform()
	mm.Load(img)
	g := iss.New(mm, img.Entry)
	g.Run(budget)

	if g.X[isa.A1] != 2 || res.Regs[isa.A1] != 2 {
		t.Fatalf("a1: golden=%d rocket=%d, want both 2 (FENCE.I flushes)",
			g.X[isa.A1], res.Regs[isa.A1])
	}
}

func TestBug2TracerOmitsMulDivWriteback(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpMUL, isa.A2, isa.A5, isa.A5, 0), // a2 = 25
		isa.Enc(isa.OpADDI, isa.A3, isa.A2, 0, 0),     // a3 = a2 (proves regfile OK)
	}
	res, gt, _ := runBoth(body)
	if res.Regs[isa.A2] != 25 || res.Regs[isa.A3] != 25 {
		t.Fatalf("architectural result wrong: a2=%d a3=%d", res.Regs[isa.A2], res.Regs[isa.A3])
	}
	// Find the MUL commit in both traces.
	var rocketMul, goldenMul *trace.Entry
	for i := range res.Trace {
		if res.Trace[i].Op == isa.OpMUL {
			rocketMul = &res.Trace[i]
		}
	}
	for i := range gt {
		if gt[i].Op == isa.OpMUL {
			goldenMul = &gt[i]
		}
	}
	if rocketMul == nil || goldenMul == nil {
		t.Fatal("MUL not found in traces")
	}
	if !goldenMul.RdValid {
		t.Error("golden trace must report the MUL rd write")
	}
	if rocketMul.RdValid {
		t.Error("Bug2: rocket trace must omit the MUL rd write")
	}
}

func TestFinding1ExceptionPriorityInversion(t *testing.T) {
	// tp+1 is unmapped AND misaligned: golden raises misaligned (4),
	// Rocket raises access fault (5).
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.TP, isa.TP, 0, 1),
		isa.Enc(isa.OpLW, isa.A0, isa.TP, 0, 0),
	}
	res, gt, _ := runBoth(body)
	var rCause, gCause uint64
	var found bool
	for _, e := range res.Trace {
		if e.Trap && e.Op == isa.OpLW {
			rCause, found = e.Cause, true
		}
	}
	if !found {
		t.Fatal("rocket: LW trap not found")
	}
	for _, e := range gt {
		if e.Trap && e.Op == isa.OpLW {
			gCause = e.Cause
		}
	}
	if gCause != isa.ExcLoadAddrMisaligned {
		t.Errorf("golden cause = %d, want 4 (misaligned)", gCause)
	}
	if rCause != isa.ExcLoadAccessFault {
		t.Errorf("rocket cause = %d, want 5 (access fault, Finding1)", rCause)
	}
}

func TestFinding2AMOWithRdX0InTrace(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.T1, 0, 0, 7),
		isa.Enc(isa.OpSD, 0, isa.A0, isa.T1, 0),
		isa.EncAMO(isa.OpAMOORD, 0, isa.A0, isa.A5, false, false), // rd = x0
	}
	res, gt, g := runBoth(body)
	if res.Regs[0] != 0 || g.X[0] != 0 {
		t.Fatal("x0 must remain zero architecturally")
	}
	var rocketAMO, goldenAMO *trace.Entry
	for i := range res.Trace {
		if res.Trace[i].Op == isa.OpAMOORD {
			rocketAMO = &res.Trace[i]
		}
	}
	for i := range gt {
		if gt[i].Op == isa.OpAMOORD {
			goldenAMO = &gt[i]
		}
	}
	if rocketAMO == nil || goldenAMO == nil {
		t.Fatal("AMO not found")
	}
	if goldenAMO.RdValid {
		t.Error("golden must not report a write to x0")
	}
	if !rocketAMO.RdValid || rocketAMO.Rd != 0 || rocketAMO.RdVal != 7 {
		t.Errorf("Finding2: rocket trace should report x0<-7, got %s", rocketAMO)
	}
}

func TestFinding3LoadToX0InTrace(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.T1, 0, 0, 9),
		isa.Enc(isa.OpSD, 0, isa.A0, isa.T1, 0),
		isa.Enc(isa.OpLD, 0, isa.A0, 0, 0), // ld x0, 0(a0)
	}
	res, gt, _ := runBoth(body)
	var rocketLD, goldenLD *trace.Entry
	for i := range res.Trace {
		if res.Trace[i].Op == isa.OpLD && res.Trace[i].PC >= mem.TextBase+0x800 {
			rocketLD = &res.Trace[i]
		}
	}
	for i := range gt {
		if gt[i].Op == isa.OpLD && gt[i].PC >= mem.TextBase+0x800 {
			goldenLD = &gt[i]
		}
	}
	if rocketLD == nil || goldenLD == nil {
		t.Fatal("LD not found")
	}
	if goldenLD.RdValid {
		t.Error("golden must not report a write to x0")
	}
	if !rocketLD.RdValid || rocketLD.Rd != 0 || rocketLD.RdVal != 9 {
		t.Errorf("Finding3: rocket trace should report x0<-9, got %s", rocketLD)
	}
}

func TestCoverageRespondsToBehaviouralDiversity(t *testing.T) {
	r := New()
	// A NOP-sled exercises almost nothing.
	nops := make([]uint32, 40)
	for i := range nops {
		nops[i] = isa.NOP
	}
	imgN, _ := prog.MustBuild(prog.Program{Body: nops})
	covN := r.Run(imgN, 4000).Coverage.Count()

	// A behaviourally rich body: mul/div, amo, branches, traps, csr.
	rich := []uint32{
		isa.Enc(isa.OpMUL, isa.A2, isa.A6, isa.S10, 0),
		isa.Enc(isa.OpDIV, isa.A2, isa.A4, isa.A3, 0), // INT64_MIN / -1
		isa.Enc(isa.OpDIVU, isa.A2, isa.A6, 0, 0),     // div by zero
		isa.EncAMO(isa.OpLRD, isa.A1, isa.A0, 0, false, false),
		isa.EncAMO(isa.OpSCD, isa.A2, isa.A0, isa.A5, false, false),
		isa.EncAMO(isa.OpAMOADDD, isa.A1, isa.A0, isa.A5, false, false),
		isa.Enc(isa.OpLW, isa.A0, isa.S5, 0, 0), // misaligned
		isa.Encode(isa.Inst{Op: isa.OpECALL}),
		isa.Encode(isa.Inst{Op: isa.OpFENCEI}),
		isa.EncCSR(isa.OpCSRRS, isa.A1, 0, isa.CSRMScratch),
		isa.Enc(isa.OpBNE, 0, isa.A1, isa.A2, -4),
	}
	imgR, _ := prog.MustBuild(prog.Program{Body: rich})
	rRich := r.Run(imgR, 4000)
	covR := rRich.Coverage.Count()

	if covR <= covN {
		t.Errorf("rich coverage %d should exceed nop coverage %d", covR, covN)
	}
}

func TestOpSeenBinsLazyEvaluation(t *testing.T) {
	r := New()
	body := []uint32{isa.Enc(isa.OpADD, isa.A0, isa.A1, isa.A2, 0)}
	img, _ := prog.MustBuild(prog.Program{Body: body})
	res := r.Run(img, 4000)

	addID, _ := r.Space().Lookup("decode.op.add")
	mulID, _ := r.Space().Lookup("decode.op.mul")
	if !res.Coverage.Covered(addID, true) {
		t.Error("op.add true bin should be covered")
	}
	if res.Coverage.Covered(mulID, true) {
		t.Error("op.mul true bin should NOT be covered")
	}
	if !res.Coverage.Covered(mulID, false) {
		t.Error("op.mul false bin should be covered (other ops decoded)")
	}
}

func TestTieoffPointsStayHalfCovered(t *testing.T) {
	r := New()
	img, _ := prog.MustBuild(prog.Program{Body: cleanBody(rand.New(rand.NewSource(1)), 50)})
	res := r.Run(img, 4000)
	id, ok := r.Space().Lookup("tieoff.interrupt.taken")
	if !ok {
		t.Fatal("tieoff point missing")
	}
	if res.Coverage.Covered(id, true) {
		t.Error("interrupt.taken true bin must be unreachable")
	}
	if !res.Coverage.Covered(id, false) {
		t.Error("interrupt.taken false bin should be hit")
	}
	dead, ok := r.Space().Lookup("dead.pmp.cfg0_match")
	if !ok {
		t.Fatal("dead point missing")
	}
	if res.Coverage.Covered(dead, true) || res.Coverage.Covered(dead, false) {
		t.Error("dead points must never be evaluated")
	}
}

func TestRocketDeterminism(t *testing.T) {
	body := cleanBody(rand.New(rand.NewSource(3)), 80)
	img, _ := prog.MustBuild(prog.Program{Body: body})
	r := New()
	res1 := r.Run(img, 4000)
	res2 := r.Run(img, 4000)
	if res1.Cycles != res2.Cycles {
		t.Errorf("cycles differ: %d vs %d", res1.Cycles, res2.Cycles)
	}
	if res1.Coverage.Count() != res2.Coverage.Count() {
		t.Error("coverage differs between identical runs")
	}
	if len(res1.Trace) != len(res2.Trace) {
		t.Error("trace length differs")
	}
}

func TestMicroarchEventsCostCycles(t *testing.T) {
	r := New()
	// Division-heavy body must cost more cycles than a NOP body of the
	// same instruction count.
	divs := make([]uint32, 20)
	nops := make([]uint32, 20)
	for i := range divs {
		divs[i] = isa.Enc(isa.OpDIV, isa.A0, isa.A6, isa.A5, 0)
		nops[i] = isa.NOP
	}
	imgD, _ := prog.MustBuild(prog.Program{Body: divs})
	imgN, _ := prog.MustBuild(prog.Program{Body: nops})
	cd := r.Run(imgD, 4000).Cycles
	cn := r.Run(imgN, 4000).Cycles
	if cd <= cn {
		t.Errorf("div cycles %d should exceed nop cycles %d", cd, cn)
	}
}

// TestRunnerMatchesRun: the reusable runner must be bit-identical to
// the allocating Run across consecutive runs (its whole contract: a
// reset scratch is observationally a fresh core). Programs include
// wild bodies so caches, predictors and the RAS all carry state that
// Reset must clear.
func TestRunnerMatchesRun(t *testing.T) {
	r := New()
	rd, ok := interface{}(r).(rtl.ReusableDUT)
	if !ok {
		t.Fatal("Rocket does not implement rtl.ReusableDUT")
	}
	runner := rd.NewRunner()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 6; i++ {
		body := cleanBody(rng, 40)
		img, _ := prog.MustBuild(prog.Program{Body: body})
		budget := prog.InstructionBudget(len(body))

		want := r.Run(img, budget)
		got := runner.RunScratch(img, budget, r.Space().NewSet(), nil)

		if got.Cycles != want.Cycles || got.Halted != want.Halted ||
			got.ExitCode != want.ExitCode || got.Regs != want.Regs {
			t.Fatalf("run %d: runner result diverged from Run", i)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("run %d: trace length %d vs %d", i, len(got.Trace), len(want.Trace))
		}
		for j := range got.Trace {
			if got.Trace[j] != want.Trace[j] {
				t.Fatalf("run %d: trace entry %d diverged", i, j)
			}
		}
		gs, ws := got.Coverage.Snapshot(), want.Coverage.Snapshot()
		for j := range gs {
			if gs[j] != ws[j] {
				t.Fatalf("run %d: coverage word %d diverged", i, j)
			}
		}
	}
}
