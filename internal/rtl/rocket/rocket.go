// Package rocket models the RocketCore DUT: an in-order, single-issue,
// 5-stage RISC-V core with an L1 I-cache, L1 D-cache, branch
// prediction (BHT + BTB + RAS), a multi-cycle MUL/DIV unit, M/U
// privilege and machine traps — instrumented with VCS-style condition
// coverage.
//
// The model deliberately contains the five RocketCore findings the
// paper reports (see DESIGN.md §4):
//
//   - Bug1 (CWE-1202): the I-cache is not coherent with stores; only
//     FENCE.I flushes it, so self-modifying code without FENCE.I
//     executes stale instructions.
//   - Bug2 (CWE-440): the tracer omits the destination-register write
//     of MUL/DIV-class instructions.
//   - Finding1: access faults are prioritised over address-misaligned
//     exceptions (the spec and the ISS do the opposite).
//   - Finding2: AMOs with rd=x0 report a write to x0 in the trace.
//   - Finding3: loads with rd=x0 report a write to x0 in the trace.
//chatfuzz:deterministic package
package rocket

import (
	"chatfuzz/internal/cov"
	"chatfuzz/internal/hart"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/uarch"
	"chatfuzz/internal/trace"
)

// Cycle costs of microarchitectural events (approximate RocketCore
// latencies; they drive the virtual wall-clock of the experiments).
const (
	cycBase        = 1
	cycICacheMiss  = 18
	cycDCacheMiss  = 24
	cycWriteback   = 6
	cycMispredict  = 3
	cycLoadUse     = 1
	cycMul         = 4
	cycDiv         = 33
	cycCSR         = 3
	cycTrap        = 5
	cycAMO         = 9
	cycFenceI      = 12
)

// trapCauses are the synchronous causes this platform can raise; each
// gets a condition point whose true bin requires triggering it.
var trapCauses = []uint64{
	isa.ExcInstAddrMisaligned, isa.ExcInstAccessFault, isa.ExcIllegalInstruction,
	isa.ExcBreakpoint, isa.ExcLoadAddrMisaligned, isa.ExcLoadAccessFault,
	isa.ExcStoreAddrMisaligned, isa.ExcStoreAccessFault, isa.ExcECallFromU,
	isa.ExcECallFromM,
}

// points holds every condition-point id of the Rocket coverage space.
type points struct {
	// Frontend.
	icacheHit, fetchFault, fenceiFlush               cov.PointID
	btbHit, bhtPredTaken, rasOverflow, rasEmpty      cov.PointID
	rasCorrect                                       cov.PointID
	// Decode.
	illegal, compressed, rdX0, rs1X0, rs2X0, immNeg cov.PointID
	opSeen                                          [isa.NumOps]cov.PointID
	// Pipeline hazards and bypasses.
	loadUse, bypExRs1, bypExRs2, bypMemRs1, bypMemRs2 cov.PointID
	muldivBusy, csrStall, wbX0                        cov.PointID
	// Branch resolution.
	brTaken, brMispredict, btbWrongTarget, brBackward cov.PointID
	jalrRet, jalrCall                                 cov.PointID
	// D-cache / LSU.
	dcacheHit, dcacheEvictDirty, memMisaligned, memFault cov.PointID
	scSuccess, resValidAtSC, storeBreaksRes, tohostWrite cov.PointID
	// MUL/DIV unit.
	divByZero, divOverflow, mdWord, mdSigned, mdSameSign cov.PointID
	// ALU corner observations.
	aluZero, shamtZero, opsEqual cov.PointID
	// Traps, privilege, CSR.
	trapTaken, trapFromU, inUMode, mppIsM cov.PointID
	trapCause                             map[uint64]cov.PointID
	csrPrivViol, csrReadOnly              cov.PointID
	csrAddr                               map[uint16]cov.PointID
	// Deep sequence-dependent families: these are the conditions that
	// separate entangled generators from random ones.
	opFwd         [isa.NumOps]cov.PointID // result of op X consumed by the next instruction
	brTakenOp     map[isa.Op]cov.PointID  // per-branch-opcode taken
	brBackTakenOp map[isa.Op]cov.PointID  // per-branch-opcode taken backward (loops)
	loadFromText  cov.PointID
	loadFromData  cov.PointID
	storeToText   cov.PointID // self-modifying store (the Bug1 path)
	storeToData   cov.PointID
	memUnmapped   cov.PointID
	trapCauseU    map[uint64]cov.PointID // cause raised while in U-mode
	csrOpAddr     map[csrOpKey]cov.PointID
	opInU         map[isa.Op]cov.PointID // op retired while in U-mode

	// Tied-off-but-evaluated conditions (false every cycle on this
	// platform: no interrupts, no debug module, no ECC errors). Their
	// true bins are unreachable, exactly like the corresponding RTL.
	tieFalse []cov.PointID
}

// csrOpKey indexes the CSR instruction × CSR address product family.
type csrOpKey struct {
	op  isa.Op
	csr uint16
}

// csrProductAddrs are the CSRs tracked in the op×address family.
var csrProductAddrs = []uint16{
	isa.CSRMStatus, isa.CSRMTVec, isa.CSRMEPC, isa.CSRMScratch, isa.CSRMCycle,
}

var csrProductOps = []isa.Op{
	isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC, isa.OpCSRRWI, isa.OpCSRRSI, isa.OpCSRRCI,
}

// uModeOps are the opcodes tracked by the "executed in U-mode" product
// family — behaviour that requires constructing a privilege drop
// (mepc/mstatus/mret) before exercising the unit in user mode.
var uModeOps = []isa.Op{
	isa.OpADD, isa.OpSUB, isa.OpSLL, isa.OpSLT, isa.OpSLTU, isa.OpXOR, isa.OpSRL,
	isa.OpSRA, isa.OpOR, isa.OpAND, isa.OpADDI, isa.OpXORI, isa.OpORI, isa.OpANDI,
	isa.OpSLTI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpADDW, isa.OpSUBW,
	isa.OpADDIW, isa.OpSLLW, isa.OpLUI, isa.OpAUIPC, isa.OpJAL, isa.OpJALR,
	isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU,
	isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpSB, isa.OpSH,
	isa.OpSW, isa.OpSD, isa.OpMUL, isa.OpMULH, isa.OpDIV, isa.OpREM, isa.OpMULW,
	isa.OpECALL, isa.OpFENCE,
}

// Rocket is the DUT factory: it owns the coverage space; Run simulates
// one test image with fresh microarchitectural state.
type Rocket struct {
	space *cov.Space
	p     points
}

var _ rtl.DUT = (*Rocket)(nil)

// New builds the Rocket model and its condition space.
func New() *Rocket {
	s := cov.NewSpace()
	var p points

	p.icacheHit = s.Define("frontend.icache.hit")
	p.fetchFault = s.Define("frontend.fetch.access_fault")
	p.fenceiFlush = s.Define("frontend.icache.fencei_flush")
	p.btbHit = s.Define("frontend.btb.hit")
	p.bhtPredTaken = s.Define("frontend.bht.pred_taken")
	p.rasOverflow = s.Define("frontend.ras.push_overflow")
	p.rasEmpty = s.Define("frontend.ras.pop_empty")
	p.rasCorrect = s.Define("frontend.ras.pred_correct")

	p.illegal = s.Define("decode.illegal")
	p.compressed = s.Define("decode.compressed_parcel")
	p.rdX0 = s.Define("decode.rd_is_x0")
	p.rs1X0 = s.Define("decode.rs1_is_x0")
	p.rs2X0 = s.Define("decode.rs2_is_x0")
	p.immNeg = s.Define("decode.imm_negative")
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		p.opSeen[op] = s.Define("decode.op." + op.String())
	}

	p.loadUse = s.Define("pipe.hazard.load_use_stall")
	p.bypExRs1 = s.Define("pipe.bypass.ex_to_rs1")
	p.bypExRs2 = s.Define("pipe.bypass.ex_to_rs2")
	p.bypMemRs1 = s.Define("pipe.bypass.mem_to_rs1")
	p.bypMemRs2 = s.Define("pipe.bypass.mem_to_rs2")
	p.muldivBusy = s.Define("pipe.hazard.muldiv_busy")
	p.csrStall = s.Define("pipe.hazard.csr_serialize")
	p.wbX0 = s.Define("pipe.wb.rd_is_x0")

	p.brTaken = s.Define("branch.taken")
	p.brMispredict = s.Define("branch.direction_mispredict")
	p.btbWrongTarget = s.Define("branch.btb_target_wrong")
	p.brBackward = s.Define("branch.backward")
	p.jalrRet = s.Define("branch.jalr_is_ret")
	p.jalrCall = s.Define("branch.jalr_is_call")

	p.dcacheHit = s.Define("dcache.hit")
	p.dcacheEvictDirty = s.Define("dcache.evict_dirty_writeback")
	p.memMisaligned = s.Define("lsu.addr_misaligned")
	p.memFault = s.Define("lsu.access_fault")
	p.scSuccess = s.Define("lsu.sc_success")
	p.resValidAtSC = s.Define("lsu.reservation_valid_at_sc")
	p.storeBreaksRes = s.Define("lsu.store_breaks_reservation")
	p.tohostWrite = s.Define("lsu.tohost_write")

	p.divByZero = s.Define("muldiv.div_by_zero")
	p.divOverflow = s.Define("muldiv.div_overflow")
	p.mdWord = s.Define("muldiv.word_op")
	p.mdSigned = s.Define("muldiv.signed_op")
	p.mdSameSign = s.Define("muldiv.same_sign_operands")

	p.aluZero = s.Define("alu.result_zero")
	p.shamtZero = s.Define("alu.shamt_zero")
	p.opsEqual = s.Define("alu.operands_equal")

	p.trapTaken = s.Define("trap.taken")
	p.trapFromU = s.Define("trap.from_umode")
	p.inUMode = s.Define("priv.in_umode")
	p.mppIsM = s.Define("priv.mret_mpp_is_m")
	p.trapCause = make(map[uint64]cov.PointID, len(trapCauses))
	for _, c := range trapCauses {
		p.trapCause[c] = s.Define("trap.cause." + isa.ExcName(c))
	}
	p.csrPrivViol = s.Define("csr.privilege_violation")
	p.csrReadOnly = s.Define("csr.write_to_readonly")
	p.csrAddr = make(map[uint16]cov.PointID, len(isa.KnownCSRs))
	for _, a := range isa.KnownCSRs {
		p.csrAddr[a] = s.Define("csr.addr." + isa.CSRName(a))
	}

	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		p.opFwd[op] = s.Define("pipe.fwd.op." + op.String())
	}
	p.brTakenOp = make(map[isa.Op]cov.PointID)
	p.brBackTakenOp = make(map[isa.Op]cov.PointID)
	for _, op := range []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU} {
		p.brTakenOp[op] = s.Define("branch.taken." + op.String())
		p.brBackTakenOp[op] = s.Define("branch.taken_backward." + op.String())
	}
	p.loadFromText = s.Define("lsu.load_from_text")
	p.loadFromData = s.Define("lsu.load_from_data")
	p.storeToText = s.Define("lsu.store_to_text")
	p.storeToData = s.Define("lsu.store_to_data")
	p.memUnmapped = s.Define("lsu.addr_unmapped_region")
	p.trapCauseU = make(map[uint64]cov.PointID, len(trapCauses))
	for _, c := range trapCauses {
		if c == isa.ExcECallFromM {
			continue // cannot be raised from U-mode
		}
		p.trapCauseU[c] = s.Define("trap.umode_cause." + isa.ExcName(c))
	}
	p.csrOpAddr = make(map[csrOpKey]cov.PointID)
	for _, op := range csrProductOps {
		for _, addr := range csrProductAddrs {
			p.csrOpAddr[csrOpKey{op, addr}] = s.Define("csr.access." + op.String() + "." + isa.CSRName(addr))
		}
	}
	p.opInU = make(map[isa.Op]cov.PointID, len(uModeOps))
	for _, op := range uModeOps {
		p.opInU[op] = s.Define("priv.umode_op." + op.String())
	}

	for _, name := range []string{
		"interrupt.msip_pending", "interrupt.mtip_pending", "interrupt.meip_pending",
		"interrupt.taken", "debug.halt_request", "debug.single_step",
		"dcache.ecc_error", "icache.parity_error", "buserr.slave_error",
		"clint.mmio_access", "plic.mmio_access", "frontend.tlb_ptw_request",
	} {
		p.tieFalse = append(p.tieFalse, s.Define("tieoff."+name))
	}
	// Never-evaluated conditions: present in the RTL (PMP, Sv39 MMU,
	// debug SBA) but without stimulus in this platform, they never
	// evaluate — both bins stay unreachable, as on the real core.
	for _, name := range []string{
		"pmp.cfg0_match", "pmp.cfg1_match", "pmp.cfg2_match", "pmp.cfg3_match",
		"pmp.cfg4_match", "pmp.cfg5_match", "pmp.cfg6_match", "pmp.cfg7_match",
		"pmp.napot_decode", "pmp.tor_decode", "pmp.lock_bit",
		"vm.sv39_mode", "vm.pte_valid", "vm.pte_leaf", "vm.page_fault_inst",
		"vm.page_fault_load", "vm.page_fault_store", "vm.superpage",
		"debug.sba_busy", "debug.abstract_cmd", "debug.progbuf_exec",
	} {
		s.Define("dead." + name)
	}

	return &Rocket{space: s, p: p}
}

// Name implements rtl.DUT.
func (r *Rocket) Name() string { return "rocket" }

// Space implements rtl.DUT.
func (r *Rocket) Space() *cov.Space { return r.space }

// run is the per-test simulation state.
type run struct {
	r   *Rocket
	m   *mem.Memory
	pc  uint64
	x   [32]uint64
	prv isa.Priv
	csr hart.CSRFile

	resValid bool
	resAddr  uint64

	ic  *uarch.ICache
	dc  *uarch.TimingCache
	bht *uarch.BHT
	btb *uarch.BTB
	ras *uarch.RAS

	set      *cov.Set
	cycles   uint64
	opCount  [isa.NumOps]uint32
	decoded  uint64
	opCountU [isa.NumOps]uint32
	decodedU uint64
	tr       []trace.Entry

	halted   bool
	exitCode uint64

	// Writeback bookkeeping of the previous two instructions for
	// bypass/hazard conditions.
	prevRd        isa.Reg
	prevOp        isa.Op
	prevWasLoad   bool
	prev2Rd       isa.Reg
	lastWasMulDiv bool

	amoRdVal uint64 // rd result of the in-flight AMO
}

// cacheCfgI and cacheCfgD size the L1 caches (shared by Run and the
// reusable runner so both paths model the identical core).
var (
	cacheCfgI = uarch.CacheConfig{Sets: 64, Ways: 2, LineBytes: 64}
	cacheCfgD = uarch.CacheConfig{Sets: 64, Ways: 4, LineBytes: 64}
)

const (
	bhtEntries = 256
	btbEntries = 32
	rasDepth   = 4
)

// Run implements rtl.DUT.
func (r *Rocket) Run(img mem.Image, maxInsts int) rtl.Result {
	m := mem.Platform()
	m.Load(img)
	st := &run{
		r:   r,
		m:   m,
		pc:  img.Entry,
		prv: isa.PrivM,
		csr: hart.CSRFile{MPP: isa.PrivU},
		ic:  uarch.NewICache(cacheCfgI),
		dc:  uarch.NewTimingCache(cacheCfgD),
		bht: uarch.NewBHT(bhtEntries),
		btb: uarch.NewBTB(btbEntries),
		ras: uarch.NewRAS(rasDepth),
		set: r.space.NewSet(),
	}
	return st.exec(maxInsts)
}

// exec drives the pipeline model to completion and packages the result.
func (st *run) exec(maxInsts int) rtl.Result {
	for i := 0; i < maxInsts && !st.halted; i++ {
		st.step()
	}
	st.finalize()
	return rtl.Result{
		Trace:    st.tr,
		Coverage: st.set,
		Cycles:   st.cycles,
		Halted:   st.halted,
		ExitCode: st.exitCode,
		Regs:     st.x,
	}
}

// runner is a reusable execution context: platform memory and the
// microarchitectural blocks are allocated once and reset per run, so a
// simulation worker's steady state allocates nothing but what escapes
// through the Result (which RunScratch takes from the caller).
type runner struct {
	r   *Rocket
	m   *mem.Memory
	ic  *uarch.ICache
	dc  *uarch.TimingCache
	bht *uarch.BHT
	btb *uarch.BTB
	ras *uarch.RAS
	st  run
}

// NewRunner implements rtl.ReusableDUT.
func (r *Rocket) NewRunner() rtl.Runner {
	return &runner{
		r:   r,
		m:   mem.Platform(),
		ic:  uarch.NewICache(cacheCfgI),
		dc:  uarch.NewTimingCache(cacheCfgD),
		bht: uarch.NewBHT(bhtEntries),
		btb: uarch.NewBTB(btbEntries),
		ras: uarch.NewRAS(rasDepth),
	}
}

// RunScratch implements rtl.Runner. Behaviour is bit-identical to Run:
// the reset scratch is observationally a fresh core.
func (w *runner) RunScratch(img mem.Image, maxInsts int, set *cov.Set, tr []trace.Entry) rtl.Result {
	w.m.Reset()
	w.m.Load(img)
	w.ic.Reset()
	w.dc.Reset()
	w.bht.Reset()
	w.btb.Reset()
	w.ras.Reset()
	w.st = run{
		r:   w.r,
		m:   w.m,
		pc:  img.Entry,
		prv: isa.PrivM,
		csr: hart.CSRFile{MPP: isa.PrivU},
		ic:  w.ic,
		dc:  w.dc,
		bht: w.bht,
		btb: w.btb,
		ras: w.ras,
		set: set,
		tr:  tr[:0],
	}
	return w.st.exec(maxInsts)
}

func (st *run) charge(c uint64) { st.cycles += c; st.csr.Cycle += c }

func (st *run) trap(e *trace.Entry, cause, tval uint64) {
	p := &st.r.p
	e.Trap, e.Cause, e.TVal = true, cause, tval
	st.set.Cond(p.trapFromU, st.prv == isa.PrivU)
	for _, c := range trapCauses {
		st.set.Cond(p.trapCause[c], c == cause)
	}
	if st.prv == isa.PrivU {
		// Each entry sets its own distinct coverage bit from a pure
		// predicate of (cause); no entry reads another's effect, so
		// iteration order cannot reach the bitmap.
		//lint:allow mapiter order-insensitive per-bin condition probes
		for c, id := range p.trapCauseU {
			st.set.Cond(id, c == cause)
		}
	}
	st.pc, st.prv = st.csr.TakeTrap(st.pc, cause, tval, st.prv)
	st.resValid = false
	st.charge(cycTrap)
	// A trap flushes the pipeline: no bypass sources survive.
	st.prevRd, st.prev2Rd, st.prevWasLoad = 0, 0, false
}

func (st *run) setReg(rd isa.Reg, v uint64) {
	if rd != 0 {
		st.x[rd] = v
	}
}

// step simulates one instruction through the modelled pipeline.
func (st *run) step() {
	p := &st.r.p
	c := st.set
	st.charge(cycBase)

	e := trace.Entry{PC: st.pc, Priv: st.prv}
	defer func() { st.tr = append(st.tr, e) }()

	c.Cond(p.inUMode, st.prv == isa.PrivU)

	// --- Fetch ---
	if c.Cond(p.fetchFault, !st.m.Mapped(st.pc, 4)) {
		st.set.Cond(p.trapTaken, true)
		st.trap(&e, isa.ExcInstAccessFault, st.pc)
		return
	}
	raw, hit := st.ic.Fetch(st.pc, st.m) // Bug1: possibly stale bytes
	if !c.Cond(p.icacheHit, hit) {
		st.charge(cycICacheMiss)
	}
	e.Raw = raw

	// --- Decode ---
	inst := isa.Decode(raw)
	e.Op = inst.Op
	st.decoded++
	st.opCount[inst.Op]++
	if st.prv == isa.PrivU {
		st.decodedU++
		st.opCountU[inst.Op]++
	}
	c.Cond(p.compressed, raw&3 != 3)
	if c.Cond(p.illegal, !inst.Valid()) {
		c.Cond(p.trapTaken, true)
		st.trap(&e, isa.ExcIllegalInstruction, uint64(raw))
		return
	}
	c.Cond(p.rdX0, inst.Rd == 0)
	c.Cond(p.rs1X0, inst.Rs1 == 0)
	c.Cond(p.rs2X0, inst.Rs2 == 0)
	if inst.Op.Format() == isa.FmtI || inst.Op.Format() == isa.FmtS {
		c.Cond(p.immNeg, inst.Imm < 0)
	}

	// --- Hazard & bypass observation (previous instructions' rd) ---
	usesRs1 := inst.Rs1 != 0
	usesRs2 := inst.Rs2 != 0 && (inst.Op.Format() == isa.FmtR || inst.Op.Format() == isa.FmtS ||
		inst.Op.Format() == isa.FmtB || inst.Op.Format() == isa.FmtAMO)
	if c.Cond(p.loadUse, st.prevWasLoad && st.prevRd != 0 &&
		((usesRs1 && inst.Rs1 == st.prevRd) || (usesRs2 && inst.Rs2 == st.prevRd))) {
		st.charge(cycLoadUse)
	}
	c.Cond(p.bypExRs1, usesRs1 && st.prevRd != 0 && inst.Rs1 == st.prevRd)
	c.Cond(p.bypExRs2, usesRs2 && st.prevRd != 0 && inst.Rs2 == st.prevRd)
	c.Cond(p.bypMemRs1, usesRs1 && st.prev2Rd != 0 && inst.Rs1 == st.prev2Rd)
	c.Cond(p.bypMemRs2, usesRs2 && st.prev2Rd != 0 && inst.Rs2 == st.prev2Rd)
	if st.prevOp != isa.OpIllegal && st.prevRd != 0 {
		dependent := (usesRs1 && inst.Rs1 == st.prevRd) || (usesRs2 && inst.Rs2 == st.prevRd)
		c.Cond(p.opFwd[st.prevOp], dependent)
	}

	op := inst.Op
	a, b := st.x[inst.Rs1], st.x[inst.Rs2]
	nextPC := st.pc + 4
	rdWrite := false
	var rdVal uint64

	// MUL/DIV structural hazard: unit busy if the previous instruction
	// was also MUL/DIV (single non-pipelined unit).
	isMulDiv := op.IsAny(isa.ClassMul | isa.ClassDiv)
	c.Cond(p.muldivBusy, isMulDiv && st.prevWasMulDiv())
	c.Cond(p.csrStall, op.Is(isa.ClassCSR))

	trapped := false
	doTrap := func(cause, tval uint64) {
		trapped = true
		c.Cond(p.trapTaken, true)
		st.trap(&e, cause, tval)
	}

	switch {
	case op == isa.OpLUI:
		rdWrite, rdVal = true, uint64(inst.Imm)
	case op == isa.OpAUIPC:
		rdWrite, rdVal = true, st.pc+uint64(inst.Imm)
	case op == isa.OpJAL:
		target := st.pc + uint64(inst.Imm)
		st.btbObserve(target)
		if target%4 != 0 {
			doTrap(isa.ExcInstAddrMisaligned, target)
			return
		}
		if inst.Rd == isa.RA {
			c.Cond(p.rasOverflow, st.ras.Push(st.pc+4))
		}
		rdWrite, rdVal = true, st.pc+4
		nextPC = target
	case op == isa.OpJALR:
		target := (a + uint64(inst.Imm)) &^ 1
		isRet := inst.Rs1 == isa.RA && inst.Rd == 0
		isCall := inst.Rd == isa.RA
		c.Cond(p.jalrRet, isRet)
		c.Cond(p.jalrCall, isCall)
		if isRet {
			pred, ok := st.ras.Pop()
			c.Cond(p.rasEmpty, !ok)
			if ok && !c.Cond(p.rasCorrect, pred == target) {
				st.charge(cycMispredict)
			}
		} else {
			st.btbObserve(target)
		}
		if isCall {
			c.Cond(p.rasOverflow, st.ras.Push(st.pc+4))
		}
		if target%4 != 0 {
			doTrap(isa.ExcInstAddrMisaligned, target)
			return
		}
		rdWrite, rdVal = true, st.pc+4
		nextPC = target
	case op.Is(isa.ClassBranch):
		taken := isa.BranchTaken(op, a, b)
		pred := st.bht.Predict(st.pc)
		c.Cond(p.bhtPredTaken, pred)
		c.Cond(p.brTaken, taken)
		c.Cond(p.brBackward, inst.Imm < 0)
		c.Cond(p.brTakenOp[op], taken)
		if taken {
			c.Cond(p.brBackTakenOp[op], inst.Imm < 0)
		}
		if c.Cond(p.brMispredict, pred != taken) {
			st.charge(cycMispredict)
		}
		st.bht.Update(st.pc, taken)
		if taken {
			target := st.pc + uint64(inst.Imm)
			st.btbObserve(target)
			if target%4 != 0 {
				doTrap(isa.ExcInstAddrMisaligned, target)
				return
			}
			nextPC = target
		}
	case op.Is(isa.ClassLoad) && !op.Is(isa.ClassAMO):
		addr := a + uint64(inst.Imm)
		width, signed := isa.MemWidth(op)
		st.observeRegion(addr, false)
		// Finding1: Rocket prioritises the access fault over the
		// misaligned exception (the spec mandates the reverse).
		if c.Cond(p.memFault, !st.m.Mapped(addr, width)) {
			doTrap(isa.ExcLoadAccessFault, addr)
			return
		}
		if c.Cond(p.memMisaligned, addr%uint64(width) != 0) {
			doTrap(isa.ExcLoadAddrMisaligned, addr)
			return
		}
		st.dcacheAccess(addr, false)
		v := st.m.ReadUint(addr, width)
		if signed {
			shift := uint(64 - 8*width)
			v = uint64(int64(v<<shift) >> shift)
		}
		rdWrite, rdVal = true, v
		e.MemValid, e.MemAddr = true, addr
	case op.Is(isa.ClassStore) && !op.Is(isa.ClassAMO):
		addr := a + uint64(inst.Imm)
		width, _ := isa.MemWidth(op)
		st.observeRegion(addr, true)
		if c.Cond(p.memFault, !st.m.Mapped(addr, width)) {
			doTrap(isa.ExcStoreAccessFault, addr)
			return
		}
		if c.Cond(p.memMisaligned, addr%uint64(width) != 0) {
			doTrap(isa.ExcStoreAddrMisaligned, addr)
			return
		}
		st.dcacheAccess(addr, true)
		st.m.WriteUint(addr, b, width)
		if c.Cond(p.storeBreaksRes, st.resValid && resGranule(addr) == st.resAddr) {
			st.resValid = false
		}
		e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
		if c.Cond(p.tohostWrite, addr == mem.Tohost && width == 8 && b != 0) {
			st.halted, st.exitCode = true, b
		}
	case op.Is(isa.ClassAMO):
		if !st.execAMO(inst, &e, doTrap) {
			return
		}
		rdWrite, rdVal = true, st.amoRdVal
		st.charge(cycAMO)
	case op.Is(isa.ClassALU) || isMulDiv:
		src := b
		switch op.Format() {
		case isa.FmtI, isa.FmtShift, isa.FmtShiftW:
			src = uint64(inst.Imm)
		}
		if isMulDiv {
			st.observeMulDiv(op, a, src)
			if op.Is(isa.ClassDiv) {
				st.charge(cycDiv)
			} else {
				st.charge(cycMul)
			}
		} else {
			c.Cond(p.opsEqual, a == src)
			if op == isa.OpSLL || op == isa.OpSRL || op == isa.OpSRA ||
				op == isa.OpSLLI || op == isa.OpSRLI || op == isa.OpSRAI {
				c.Cond(p.shamtZero, src&63 == 0)
			}
		}
		rdWrite, rdVal = true, isa.ALU(op, a, src)
		if !isMulDiv {
			c.Cond(p.aluZero, rdVal == 0)
		}
	case op.Is(isa.ClassCSR):
		st.observeCSR(inst)
		old, ok := st.csr.ExecCSR(inst, a, st.prv)
		if !ok {
			doTrap(isa.ExcIllegalInstruction, uint64(raw))
			return
		}
		st.charge(cycCSR)
		rdWrite, rdVal = true, old
	case op == isa.OpFENCE:
		// Ordering no-op on this single-hart platform.
	case op == isa.OpFENCEI:
		c.Cond(p.fenceiFlush, true)
		st.ic.Flush()
		st.charge(cycFenceI)
	case op == isa.OpECALL:
		if st.prv == isa.PrivM {
			doTrap(isa.ExcECallFromM, 0)
		} else {
			doTrap(isa.ExcECallFromU, 0)
		}
		return
	case op == isa.OpEBREAK:
		doTrap(isa.ExcBreakpoint, st.pc)
		return
	case op == isa.OpMRET:
		if st.prv != isa.PrivM {
			doTrap(isa.ExcIllegalInstruction, uint64(raw))
			return
		}
		c.Cond(p.mppIsM, st.csr.MPP == isa.PrivM)
		nextPC, st.prv = st.csr.MRet()
	case op == isa.OpWFI:
		// No interrupts on this platform: retires as a no-op.
	}
	if trapped {
		return
	}
	c.Cond(p.trapTaken, false)

	// --- Writeback & tracer ---
	if rdWrite {
		st.setReg(inst.Rd, rdVal)
		c.Cond(p.wbX0, inst.Rd == 0)
		st.emitRdWrite(&e, inst, rdVal)
	}

	st.pc = nextPC
	st.csr.Instret++
	st.prev2Rd = st.prevRd
	if rdWrite {
		st.prevRd = inst.Rd
	} else {
		st.prevRd = 0
	}
	st.prevOp = op
	st.prevWasLoad = op.Is(isa.ClassLoad) && !op.Is(isa.ClassAMO)
	st.lastWasMulDiv = isMulDiv
}

// emitRdWrite applies RocketCore's tracer behaviour, including Bug2,
// Finding2 and Finding3. The register file itself is always updated
// correctly; only the trace reporting is wrong.
func (st *run) emitRdWrite(e *trace.Entry, inst isa.Inst, rdVal uint64) {
	op := inst.Op
	switch {
	case op.IsAny(isa.ClassMul | isa.ClassDiv):
		// Bug2 (CWE-440): the tracer drops MUL/DIV writebacks.
		return
	case inst.Rd == 0 && op.Is(isa.ClassAMO) && !isSC(op):
		// Finding2: AMO with rd=x0 — the memory controller performs
		// the operation and the tracer reports the loaded value as a
		// write to x0.
		e.RdValid, e.Rd, e.RdVal = true, 0, rdVal
	case inst.Rd == 0 && op.Is(isa.ClassLoad) && !op.Is(isa.ClassAMO):
		// Finding3: loads with rd=x0 appear as x0 writes in the trace.
		e.RdValid, e.Rd, e.RdVal = true, 0, rdVal
	case inst.Rd != 0:
		e.RdValid, e.Rd, e.RdVal = true, inst.Rd, rdVal
	}
}

func isSC(op isa.Op) bool { return op == isa.OpSCW || op == isa.OpSCD }

// prevWasMulDiv reports whether the previous instruction occupied the
// MUL/DIV unit.
func (st *run) prevWasMulDiv() bool { return st.lastWasMulDiv }

// btbObserve records BTB hit/target conditions for a taken control
// transfer and trains the BTB.
func (st *run) btbObserve(target uint64) {
	p := &st.r.p
	predTarget, hit := st.btb.Lookup(st.pc)
	st.set.Cond(p.btbHit, hit)
	if hit {
		if st.set.Cond(p.btbWrongTarget, predTarget != target) {
			st.charge(cycMispredict)
		}
	} else {
		st.charge(cycMispredict)
	}
	st.btb.Update(st.pc, target)
}

// dcacheAccess runs the timing D-cache and records its conditions.
func (st *run) dcacheAccess(addr uint64, write bool) {
	p := &st.r.p
	res := st.dc.Access(addr, write)
	if !st.set.Cond(p.dcacheHit, res.Hit) {
		st.charge(cycDCacheMiss)
	}
	if st.set.Cond(p.dcacheEvictDirty, res.WritebackReq) {
		st.charge(cycWriteback)
	}
}

// observeMulDiv records the MUL/DIV unit's conditions.
func (st *run) observeMulDiv(op isa.Op, a, b uint64) {
	p := &st.r.p
	c := st.set
	isDiv := op.Is(isa.ClassDiv)
	word := op.Is(isa.ClassW)
	c.Cond(p.mdWord, word)
	signed := op == isa.OpMUL || op == isa.OpMULH || op == isa.OpDIV || op == isa.OpREM ||
		op == isa.OpMULW || op == isa.OpDIVW || op == isa.OpREMW || op == isa.OpMULHSU
	c.Cond(p.mdSigned, signed)
	c.Cond(p.mdSameSign, int64(a) < 0 == (int64(b) < 0))
	if isDiv {
		if word {
			c.Cond(p.divByZero, uint32(b) == 0)
			c.Cond(p.divOverflow, int32(uint32(a)) == -1<<31 && int32(uint32(b)) == -1)
		} else {
			c.Cond(p.divByZero, b == 0)
			c.Cond(p.divOverflow, int64(a) == -1<<63 && int64(b) == -1)
		}
	}
}

// observeRegion records which platform region a data access targets.
func (st *run) observeRegion(addr uint64, write bool) {
	p := &st.r.p
	c := st.set
	inText := addr >= mem.TextBase && addr < mem.TextBase+mem.TextSize
	inData := addr >= mem.DataBase && addr < mem.DataBase+mem.DataSize
	if write {
		c.Cond(p.storeToText, inText)
		c.Cond(p.storeToData, inData)
	} else {
		c.Cond(p.loadFromText, inText)
		c.Cond(p.loadFromData, inData)
	}
	c.Cond(p.memUnmapped, !inText && !inData && addr != mem.Tohost)
}

// observeCSR records CSR address-match and permission conditions.
func (st *run) observeCSR(inst isa.Inst) {
	p := &st.r.p
	c := st.set
	// Each entry sets its own distinct coverage bit from a pure
	// predicate of the instruction; iteration order cannot reach the
	// bitmap. (Bin IDs were defined in fixed slice order at build.)
	//lint:allow mapiter order-insensitive per-bin condition probes
	for addr, id := range p.csrAddr {
		c.Cond(id, addr == inst.CSR)
	}
	//lint:allow mapiter order-insensitive per-bin condition probes
	for k, id := range p.csrOpAddr {
		c.Cond(id, k.op == inst.Op && k.csr == inst.CSR)
	}
	_, readable := st.csr.Read(inst.CSR, st.prv)
	_, readableM := st.csr.Read(inst.CSR, isa.PrivM)
	c.Cond(p.csrPrivViol, !readable && readableM)
	// Write-to-read-only condition: a write is attempted and the CSR
	// is in the read-only address space (top two bits set).
	writes := inst.Op == isa.OpCSRRW || inst.Op == isa.OpCSRRWI ||
		(inst.Op == isa.OpCSRRS && inst.Rs1 != 0) || (inst.Op == isa.OpCSRRC && inst.Rs1 != 0) ||
		((inst.Op == isa.OpCSRRSI || inst.Op == isa.OpCSRRCI) && inst.Imm != 0)
	c.Cond(p.csrReadOnly, writes && inst.CSR>>10 == 3)
}

func resGranule(addr uint64) uint64 { return addr &^ 7 }

// execAMO handles the A extension with Rocket's Finding1 priority
// inversion; returns false if the instruction trapped.
func (st *run) execAMO(inst isa.Inst, e *trace.Entry, doTrap func(cause, tval uint64)) bool {
	p := &st.r.p
	c := st.set
	op := inst.Op
	addr := st.x[inst.Rs1]
	width, signed := isa.MemWidth(op)

	misCause, accCause := isa.ExcStoreAddrMisaligned, isa.ExcStoreAccessFault
	if op == isa.OpLRW || op == isa.OpLRD {
		misCause, accCause = isa.ExcLoadAddrMisaligned, isa.ExcLoadAccessFault
	}
	st.observeRegion(addr, op != isa.OpLRW && op != isa.OpLRD)
	// Finding1 applies to AMOs too: access fault checked first.
	if c.Cond(p.memFault, !st.m.Mapped(addr, width)) {
		doTrap(accCause, addr)
		return false
	}
	if c.Cond(p.memMisaligned, addr%uint64(width) != 0) {
		doTrap(misCause, addr)
		return false
	}

	sext := func(v uint64) uint64 {
		if signed && width == 4 {
			return uint64(int64(int32(uint32(v))))
		}
		return v
	}

	st.dcacheAccess(addr, op != isa.OpLRW && op != isa.OpLRD)
	switch op {
	case isa.OpLRW, isa.OpLRD:
		v := st.m.ReadUint(addr, width)
		st.resValid, st.resAddr = true, resGranule(addr)
		st.amoRdVal = sext(v)
		e.MemValid, e.MemAddr = true, addr
	case isa.OpSCW, isa.OpSCD:
		match := st.resValid && resGranule(addr) == st.resAddr
		c.Cond(p.resValidAtSC, st.resValid)
		if c.Cond(p.scSuccess, match) {
			st.m.WriteUint(addr, st.x[inst.Rs2], width)
			st.amoRdVal = 0
			e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
		} else {
			st.amoRdVal = 1
		}
		st.resValid = false
	default:
		old := st.m.ReadUint(addr, width)
		st.m.WriteUint(addr, isa.AMOApply(op, old, st.x[inst.Rs2]), width)
		st.amoRdVal = sext(old)
		e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
	}
	return true
}

// finalize converts the per-op decode counters into their condition
// bins (exact lazy evaluation of "opcode == X" conditions) and records
// the tied-off conditions.
func (st *run) finalize() {
	p := &st.r.p
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		n := uint64(st.opCount[op])
		if n > 0 {
			st.set.Cond(p.opSeen[op], true)
		}
		if st.decoded > n {
			st.set.Cond(p.opSeen[op], false)
		}
	}
	for _, op := range uModeOps {
		n := uint64(st.opCountU[op])
		if n > 0 {
			st.set.Cond(p.opInU[op], true)
		}
		if st.decodedU > n {
			st.set.Cond(p.opInU[op], false)
		}
	}
	if st.decoded > 0 {
		for _, id := range p.tieFalse {
			st.set.Cond(id, false)
		}
	}
}
