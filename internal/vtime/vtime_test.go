package vtime

import (
	"math"
	"testing"
	"time"
)

func TestChargeTestAccumulates(t *testing.T) {
	c := &Clock{Instances: 1, SecondsPerCycle: 0.001, OverheadPerTest: 10}
	c.ChargeTest(5000) // 10 + 5 = 15 s
	if got := c.Elapsed(); got != 15*time.Second {
		t.Errorf("Elapsed = %v, want 15s", got)
	}
}

func TestInstancesDivideThroughput(t *testing.T) {
	one := &Clock{Instances: 1, SecondsPerCycle: 0.001, OverheadPerTest: 10}
	ten := &Clock{Instances: 10, SecondsPerCycle: 0.001, OverheadPerTest: 10}
	for i := 0; i < 100; i++ {
		one.ChargeTest(2000)
		ten.ChargeTest(2000)
	}
	if math.Abs(one.Hours()-10*ten.Hours()) > 1e-9 {
		t.Errorf("ten instances must be 10x faster: %v vs %v", one.Hours(), ten.Hours())
	}
}

func TestVCSCalibration(t *testing.T) {
	// The calibrated clock must place ~1.8 K average tests in the
	// 40-70 virtual-minute range (paper: 52 minutes).
	c := NewVCS()
	for i := 0; i < 1800; i++ {
		c.ChargeTest(4000) // a typical test's cycle count
	}
	min := c.Hours() * 60
	if min < 35 || min > 80 {
		t.Errorf("1800 tests -> %.1f virtual minutes; calibration target ~52", min)
	}
}

func TestResetAndChargeSeconds(t *testing.T) {
	c := NewVCS()
	c.ChargeSeconds(36)
	if c.Hours() != 0.01 {
		t.Errorf("Hours = %v, want 0.01", c.Hours())
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestZeroInstancesDefaultsToOne(t *testing.T) {
	c := &Clock{SecondsPerCycle: 0.001, OverheadPerTest: 1}
	c.ChargeTest(1000)
	if c.Elapsed() != 2*time.Second {
		t.Errorf("Elapsed = %v, want 2s", c.Elapsed())
	}
}

func TestSecondsRoundTripExact(t *testing.T) {
	c := NewVCS()
	for i := 0; i < 1000; i++ {
		c.ChargeTest(uint64(137 * i))
	}
	s := c.Seconds()
	c2 := NewVCS()
	c2.SetSeconds(s)
	if c2.Hours() != c.Hours() {
		t.Errorf("Hours after SetSeconds = %v, want exactly %v", c2.Hours(), c.Hours())
	}
	// Elapsed() would round through nanoseconds; Seconds must not.
	if c2.Seconds() != s {
		t.Errorf("Seconds round trip changed the value")
	}
}
