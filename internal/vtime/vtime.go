// Package vtime models the wall-clock of the paper's evaluation rig:
// ten parallel Synopsys VCS instances simulating RTL at a few kHz.
// Experiments charge each test's simulated cycles plus a fixed
// per-test overhead against the clock, making every time-based result
// (Fig. 2, time-to-75 %, the 49-minute BOOM run) deterministic and
// hardware-independent while preserving the relative speed of the
// fuzzers ("ChatFuzz and TheHuzz incur similar runtime overhead").
//chatfuzz:deterministic package
package vtime

import "time"

// Clock accumulates virtual seconds across simulated tests.
type Clock struct {
	// Instances is the number of parallel simulator instances the
	// aggregate throughput is divided by (the paper uses ten VCS
	// instances).
	Instances int
	// SecondsPerCycle is the RTL simulation cost of one core cycle.
	SecondsPerCycle float64
	// OverheadPerTest is the fixed per-test cost (simulator setup,
	// image load, coverage-database write).
	OverheadPerTest float64

	elapsed float64
}

// NewVCS returns a clock calibrated to the paper's observed
// throughput: ~1.8 K tests in ~52 minutes of aggregate wall-clock on
// ten instances (≈1.73 s per test), with the RTL simulator running at
// roughly 1 kHz.
func NewVCS() *Clock {
	return &Clock{
		Instances:       10,
		SecondsPerCycle: 1.0 / 1000.0,
		OverheadPerTest: 12.0,
	}
}

// ChargeTest accounts one simulated test of the given cycle count.
func (c *Clock) ChargeTest(cycles uint64) {
	inst := c.Instances
	if inst <= 0 {
		inst = 1
	}
	c.elapsed += (c.OverheadPerTest + float64(cycles)*c.SecondsPerCycle) / float64(inst)
}

// ChargeSeconds adds raw aggregate seconds (e.g. PPO update cost).
func (c *Clock) ChargeSeconds(s float64) { c.elapsed += s }

// Elapsed returns the virtual wall-clock time so far.
func (c *Clock) Elapsed() time.Duration {
	return time.Duration(c.elapsed * float64(time.Second))
}

// Hours returns the elapsed virtual time in hours.
func (c *Clock) Hours() float64 { return c.elapsed / 3600 }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.elapsed = 0 }

// Seconds returns the exact elapsed virtual seconds, for checkpoint
// serialization (Elapsed rounds through time.Duration's nanosecond
// grid, which would perturb resumed trajectories in the last bits).
func (c *Clock) Seconds() float64 { return c.elapsed }

// SetSeconds restores the clock to an exact elapsed value.
func (c *Clock) SetSeconds(s float64) { c.elapsed = s }
