package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The HTTP endpoint for long soak runs: a JSON metrics snapshot at
// /metrics, the expvar dump at /debug/vars (including this package's
// registry, published once as "chatfuzz"), and the stock pprof
// handlers at /debug/pprof/ for profiling a live fleet. Serving is
// strictly read-only observation; nothing a client does can reach
// scheduling or checkpointed state.

// expvarOnce guards the process-global expvar publication (expvar
// panics on duplicate names, and tests serve more than one registry).
var (
	expvarOnce sync.Once
	expvarReg  *Registry
	expvarMu   sync.Mutex
)

// Handler returns the telemetry endpoint's routes for the registry.
func Handler(g *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Best-effort: the encoder's error is the client connection's.
		_ = enc.Encode(g.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve publishes the registry under the expvar name "chatfuzz" and
// serves Handler on addr (":0" picks a free port). It returns the
// bound address and a closer that shuts the listener down.
func Serve(addr string, g *Registry) (boundAddr string, closer func() error, err error) {
	if g == nil {
		return "", nil, fmt.Errorf("telemetry: Serve needs a registry")
	}
	expvarMu.Lock()
	expvarReg = g
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("chatfuzz", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarReg.Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(g)}
	go func() {
		// Serve returns ErrServerClosed on Close; other errors mean the
		// listener died, which the soak run tolerates (telemetry only).
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}
