// Package telemetry is the fleet's observability plane: a span flight
// recorder exporting Chrome trace-event JSON (viewable in Perfetto or
// chrome://tracing) and a metrics registry with a JSONL snapshot sink
// and an optional expvar/pprof HTTP endpoint.
//
// # Flight recorder
//
// Every execution context that wants spans — an engine worker, a
// shard's committer goroutine, the orchestrator barrier, the
// off-barrier trainer — owns a Track: a preallocated ring buffer it
// alone writes during the hot loop. Recording a span is a wall-clock
// read plus a ring push behind the track's (uncontended) mutex; no
// allocation, no I/O. The rings are drained off the hot path — the
// campaign orchestrator calls Flush at each round commit — and the
// drained events stream to the trace writer as one JSON array of
// trace events. When a ring fills before the next drain the oldest
// events are overwritten (it is a flight recorder, not a log); the
// drop count is reported so soak runs know what they lost.
//
// # Execution-only contract
//
// Telemetry observes; it never steers. No recorder or registry state
// is checkpointed, read back by scheduling code, or allowed to reach
// trajectory state — a fixed-seed campaign produces bit-identical
// trajectories and checkpoint bytes with telemetry on or off
// (asserted by campaign.TestFleetPoolDeterminismTable). Every handle
// is nil-safe: a nil *Recorder hands out nil *Tracks whose methods
// return immediately, so instrumented hot loops pay one branch when
// telemetry is disabled.
//
// This package is deterministic-annotated so the fuzzlint wallclock
// analyzer audits its time reads: they are the flight recorder's
// timestamps and the snapshot sink's timer, execution-only by the
// contract above, and each carries its //lint:allow escape. Callers
// in deterministic scope never touch the clock themselves — they hand
// work to this package, which keeps their own files escape-free.
//
//chatfuzz:deterministic package
package telemetry

import (
	"bufio"
	"io"
	"sync"
	"time"
)

// Span and instant-event names recorded by the instrumented layers.
// One vocabulary across engine, campaign and fleetlearn keeps traces
// and the CI validator in agreement.
const (
	// SpanGenerate covers one batch's program generation (core.Fuzzer).
	SpanGenerate = "generate"
	// SpanBuild covers one program's harness build (engine worker).
	SpanBuild = "build"
	// SpanSim covers one program's DUT simulation (engine worker).
	SpanSim = "sim"
	// SpanGolden covers one program's golden-model replay (engine
	// worker, detection only).
	SpanGolden = "golden"
	// SpanCommit covers one batch's in-order commit loop: scoring,
	// mismatch detection, clock and trajectory accounting.
	SpanCommit = "commit"
	// SpanRound covers one whole orchestrator scheduling round.
	SpanRound = "round"
	// SpanBarrier covers the orchestrator barrier: coverage merge,
	// bandit credit, pool sync and the learning step.
	SpanBarrier = "barrier"
	// SpanTrain covers one fleet PPO training pass (fleetlearn), on
	// the barrier or overlapped with the next round.
	SpanTrain = "train"
	// EventSteal marks a cross-design job claim by the pool's steal
	// policy; EventHelp a committer executing a queued job while it
	// waits; EventMigrate a scratch re-bind to a new design.
	// EventPipeline marks a round submission that overlapped an
	// undrained earlier round (the sub-round pipeline engaging).
	EventSteal    = "steal"
	EventHelp     = "help"
	EventMigrate  = "migrate"
	EventPipeline = "pipeline"
)

// trackCap is each track's preallocated ring capacity. Rings drain at
// every round commit, so this bounds one round's span volume per
// execution context, not the campaign's.
const trackCap = 4096

// event is one recorded trace event: a completed span (phase 'X') or
// an instant (phase 'i'). Timestamps are microseconds since the
// recorder's start.
type event struct {
	name string
	ph   byte
	ts   int64 // µs
	dur  int64 // µs, spans only
}

// Recorder owns the flight recorder: the track registry, the shared
// timebase and the trace writer. Build one with NewRecorder, hand it
// to the layers being instrumented, Flush at natural drain points and
// Close when the run ends. All methods are safe on a nil receiver —
// a nil recorder is the disabled telemetry plane.
type Recorder struct {
	t0 time.Time

	mu     sync.Mutex // guards tracks and the writer
	tracks []*Track
	bw     *bufio.Writer
	werr   error
	opened bool // wrote the array opener
	first  bool // next event is the array's first
	closed bool
}

// NewRecorder builds a recorder streaming trace events to w as one
// Chrome trace-event JSON array. The array is completed by Close; a
// file cut short mid-run still loads in Perfetto, which tolerates a
// truncated array.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{
		// The recorder's timebase: every span timestamp is an offset
		// from this instant. Execution-only by the package contract.
		//lint:allow wallclock flight-recorder timebase is execution-only
		t0:    time.Now(),
		bw:    bufio.NewWriter(w),
		first: true,
	}
}

// now returns the recorder clock: microseconds since t0.
func (r *Recorder) now() int64 {
	// Span timestamps; never reaches checkpointed or trajectory state.
	//lint:allow wallclock flight-recorder timestamps are execution-only
	return int64(time.Since(r.t0) / time.Microsecond)
}

// NewTrack registers a new track named name — one single-writer
// execution context in the trace (an engine worker, a committer, the
// orchestrator). The name becomes the Perfetto thread name; the
// numeric thread id is assigned sequentially. Returns nil (a valid,
// inert track) when the recorder is nil.
func (r *Recorder) NewTrack(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Track{
		rec:  r,
		name: name,
		tid:  len(r.tracks) + 1,
		buf:  make([]event, trackCap),
	}
	r.tracks = append(r.tracks, t)
	return t
}

// Flush drains every track's ring into the trace writer. Call it off
// the hot path — at a round commit, not inside one. Safe on a nil
// recorder and safe to call concurrently with span recording (each
// ring is drained under its own lock).
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	for _, t := range r.tracks {
		t.drainInto(r)
	}
	if err := r.bw.Flush(); err != nil && r.werr == nil {
		r.werr = err
	}
}

// Dropped returns the total events lost to ring overwrites so far.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.tracks {
		t.mu.Lock()
		n += t.dropped
		t.mu.Unlock()
	}
	return n
}

// Close drains the tracks, completes the JSON array and flushes the
// writer. It does not close the underlying io.Writer — the caller
// opened it, the caller closes it. Close is idempotent and returns
// the first write error the recorder hit.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.Flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.werr
	}
	r.closed = true
	if !r.opened {
		// No events at all: still emit a valid (empty) trace.
		r.write("[")
	}
	r.write("\n]\n")
	if err := r.bw.Flush(); err != nil && r.werr == nil {
		r.werr = err
	}
	return r.werr
}

// Track is one execution context's span ring. Exactly one goroutine
// records into a track at a time (its owner); the ring's mutex exists
// for the drain in Flush and for ownership handoffs like the
// off-barrier trainer, and is uncontended in the steady state. All
// methods are safe on a nil track and return immediately.
type Track struct {
	rec  *Recorder
	name string
	tid  int

	mu      sync.Mutex
	buf     []event // ring, preallocated to trackCap
	head    int     // index of the oldest event
	n       int     // live events
	dropped int
	named   bool // thread_name metadata already emitted
}

// Start samples the recorder clock for a span about to begin. On a
// nil track it returns 0 without reading the clock.
func (t *Track) Start() int64 {
	if t == nil {
		return 0
	}
	return t.rec.now()
}

// Span records a completed span from a Start sample to now.
func (t *Track) Span(name string, start int64) {
	if t == nil {
		return
	}
	t.push(event{name: name, ph: 'X', ts: start, dur: t.rec.now() - start})
}

// Instant records a point event (a steal, a help, a migration).
func (t *Track) Instant(name string) {
	if t == nil {
		return
	}
	t.push(event{name: name, ph: 'i', ts: t.rec.now()})
}

// push appends to the ring, overwriting the oldest event when full.
func (t *Track) push(e event) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.buf[t.head] = e
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.head+t.n)%len(t.buf)] = e
		t.n++
	}
	t.mu.Unlock()
}

// drainInto writes and clears the ring. Caller holds rec.mu; the
// track lock is taken only long enough to snapshot the ring indices,
// so concurrent recording keeps working during a drain.
func (t *Track) drainInto(r *Recorder) {
	t.mu.Lock()
	if !t.named {
		t.named = true
		t.mu.Unlock()
		r.writeThreadName(t.tid, t.name)
		t.mu.Lock()
	}
	for t.n > 0 {
		e := t.buf[t.head]
		t.head = (t.head + 1) % len(t.buf)
		t.n--
		t.mu.Unlock()
		r.writeEvent(t.tid, &e)
		t.mu.Lock()
	}
	t.mu.Unlock()
}
