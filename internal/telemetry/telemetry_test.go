package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses a completed trace stream as the Chrome
// trace-event JSON array it claims to be.
func decodeTrace(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, b)
	}
	return events
}

func TestRecorderEmitsValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	w := rec.NewTrack("worker")
	o := rec.NewTrack("orchestrator")

	s := w.Start()
	w.Span(SpanSim, s)
	w.Instant(EventSteal)
	s = o.Start()
	o.Span(SpanBarrier, s)

	rec.Flush()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events := decodeTrace(t, buf.Bytes())
	byName := map[string]map[string]any{}
	names := []string{}
	for _, e := range events {
		n := e["name"].(string)
		byName[n] = e
		names = append(names, n)
	}
	for _, want := range []string{SpanSim, EventSteal, SpanBarrier, "thread_name"} {
		if byName[want] == nil {
			t.Errorf("trace has no %q event (got %v)", want, names)
		}
	}
	if ph := byName[SpanSim]["ph"]; ph != "X" {
		t.Errorf("span phase = %v, want X", ph)
	}
	if _, ok := byName[SpanSim]["dur"]; !ok {
		t.Error("span event has no dur")
	}
	if ph := byName[EventSteal]["ph"]; ph != "i" {
		t.Errorf("instant phase = %v, want i", ph)
	}
	// Distinct tracks get distinct thread ids.
	if byName[SpanSim]["tid"] == byName[SpanBarrier]["tid"] {
		t.Error("worker and orchestrator spans share a tid")
	}
}

func TestRecorderEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if events := decodeTrace(t, buf.Bytes()); len(events) != 0 {
		t.Errorf("empty recorder emitted %d events", len(events))
	}
}

func TestNilRecorderAndTrackAreInert(t *testing.T) {
	var rec *Recorder
	tr := rec.NewTrack("anything")
	if tr != nil {
		t.Fatal("nil recorder handed out a non-nil track")
	}
	// All of these must be no-ops, not panics.
	s := tr.Start()
	if s != 0 {
		t.Errorf("nil track Start = %d, want 0", s)
	}
	tr.Span(SpanSim, s)
	tr.Instant(EventSteal)
	rec.Flush()
	if err := rec.Close(); err != nil {
		t.Errorf("nil recorder Close: %v", err)
	}
	if rec.Dropped() != 0 {
		t.Error("nil recorder reports drops")
	}
}

func TestRingOverwritesOldestAndCountsDrops(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	tr := rec.NewTrack("hot")
	const extra = 7
	for i := 0; i < trackCap+extra; i++ {
		tr.Instant(EventHelp)
	}
	if got := rec.Dropped(); got != extra {
		t.Fatalf("Dropped = %d, want %d", got, extra)
	}
	rec.Flush()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	n := 0
	for _, e := range events {
		if e["name"] == EventHelp {
			n++
		}
	}
	if n != trackCap {
		t.Errorf("drained %d events, want the ring's %d", n, trackCap)
	}
}

func TestFlushMidRunKeepsStreamAppendable(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	tr := rec.NewTrack("w")
	tr.Instant(EventSteal)
	rec.Flush()
	tr.Instant(EventMigrate)
	rec.Flush()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	// thread_name + two instants.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(events), events)
	}
}

func TestTrackNameReachesThreadMetadata(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	tr := rec.NewTrack("rocket/worker")
	tr.Instant(EventSteal)
	rec.Close()
	if !strings.Contains(buf.String(), `"rocket/worker"`) {
		t.Errorf("trace lacks the track's thread name: %s", buf.String())
	}
}
