package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the fleet's metrics plane: named counters, gauges and
// histograms updated by the instrumented layers and read out as
// deterministic snapshots (sorted series names, so two snapshots of
// equal state serialize to equal bytes). Like the flight recorder it
// is execution-only — never checkpointed, never read by scheduling
// code — and nil-safe: a nil *Registry hands out nil instruments
// whose methods return immediately.
//
// Series names are slash-scoped, e.g. "fleet/coverage_pct",
// "arm/chatfuzz-learn/pulls", "pool/steals"; README.md's
// Observability section tables the names the campaign layer emits.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named monotonic counter, creating it on first
// use. Nil registries return a nil (inert) counter.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.counters[name]
	if c == nil {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil
// registries return a nil (inert) gauge.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ga := g.gauges[name]
	if ga == nil {
		ga = &Gauge{}
		g.gauges[name] = ga
	}
	return ga
}

// Histogram returns the named histogram, creating it with the given
// finite upper bounds on first use (later calls reuse the existing
// bounds). Nil registries return a nil (inert) histogram.
func (g *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		g.hists[name] = h
	}
	return h
}

// Counter is a monotonic int64 counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 last-value gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (finite upper
// bounds plus an implicit overflow bucket) and tracks count and sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is one histogram's frozen state. Buckets holds
// cumulative-free per-bucket counts in bound order; the entry beyond
// the last bound is the overflow bucket.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot is a frozen, serialization-ready view of a registry. Maps
// serialize with sorted keys under encoding/json, so equal registry
// state yields byte-equal snapshots.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values. Nil registries
// return the zero snapshot.
func (g *Registry) Snapshot() Snapshot {
	if g == nil {
		return Snapshot{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Snapshot{}
	if len(g.counters) > 0 {
		s.Counters = make(map[string]int64, len(g.counters))
		// Verbatim map→map copy; iteration order cannot reach the result
		// (and the JSON encoder sorts keys when it serializes).
		//lint:allow mapiter order-insensitive map copy
		for name, c := range g.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(g.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(g.gauges))
		//lint:allow mapiter order-insensitive map copy
		for name, ga := range g.gauges {
			s.Gauges[name] = ga.Value()
		}
	}
	if len(g.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(g.hists))
		//lint:allow mapiter order-insensitive map copy
		for name, h := range g.hists {
			h.mu.Lock()
			hs := HistogramSnapshot{
				Count:   h.n,
				Sum:     h.sum,
				Bounds:  append([]float64(nil), h.bounds...),
				Buckets: append([]int64(nil), h.counts...),
			}
			h.mu.Unlock()
			s.Histograms[name] = hs
		}
	}
	return s
}

// Series returns every registered series name, sorted — the metric
// name table a consumer can discover without parsing a snapshot.
func (g *Registry) Series() []string {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.counters)+len(g.gauges)+len(g.hists))
	for n := range g.counters {
		names = append(names, n)
	}
	for n := range g.gauges {
		names = append(names, n)
	}
	for n := range g.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders a compact one-line-per-series dump, for debugging.
func (g *Registry) String() string {
	s := g.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		if c, ok := s.Counters[n]; ok {
			out += fmt.Sprintf("%s %d\n", n, c)
		} else {
			out += fmt.Sprintf("%s %g\n", n, s.Gauges[n])
		}
	}
	return out
}
