package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"chatfuzz/internal/atomicio"
)

// snapshotLine is one JSONL record of the snapshot sink: a wall-clock
// stamp (milliseconds since the sink started — execution-only, like
// every timestamp in this package) plus the frozen registry.
type snapshotLine struct {
	UptimeMS int64 `json:"uptime_ms"`
	Snapshot
}

// WriteSnapshot appends one JSONL snapshot line for the registry to
// w. uptimeMS stamps the line; the serialized form is deterministic
// for equal registry state and stamp (encoding/json sorts map keys).
// File-backed writers are fsynced after the line, so a killed soak
// run durably keeps every snapshot it reported writing — losing at
// most the interval since the last tick, never a torn file of stale
// pages (atomicio.Fsync is a no-op for non-file writers).
func WriteSnapshot(w io.Writer, g *Registry, uptimeMS int64) error {
	b, err := json.Marshal(snapshotLine{UptimeMS: uptimeMS, Snapshot: g.Snapshot()})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err = w.Write(b); err != nil {
		return err
	}
	return atomicio.Fsync(w)
}

// Snapshotter periodically appends registry snapshots to a writer as
// JSON Lines — the soak-run sink: one line per interval, each a
// complete picture, so a killed run loses at most the last interval.
type Snapshotter struct {
	w    io.Writer
	reg  *Registry
	t0   time.Time
	stop chan struct{}
	done chan error
	once sync.Once
}

// NewSnapshotter starts a background goroutine writing one snapshot
// line every interval. Stop writes a final line and joins the
// goroutine. The writer must not be shared while the snapshotter
// runs.
func NewSnapshotter(w io.Writer, g *Registry, every time.Duration) *Snapshotter {
	if every <= 0 {
		every = 5 * time.Second
	}
	s := &Snapshotter{
		w:   w,
		reg: g,
		// Sink timebase for the uptime stamps. Execution-only.
		//lint:allow wallclock snapshot-sink timebase is execution-only
		t0:   time.Now(),
		stop: make(chan struct{}),
		done: make(chan error, 1),
	}
	go s.loop(every)
	return s
}

func (s *Snapshotter) loop(every time.Duration) {
	// The periodic sink's cadence. Execution-only: snapshots observe
	// the registry; nothing reads them back.
	//lint:allow wallclock snapshot-sink ticker is execution-only
	tick := time.NewTicker(every)
	defer tick.Stop()
	var err error
	for {
		select {
		case <-tick.C:
			if werr := WriteSnapshot(s.w, s.reg, s.uptimeMS()); werr != nil && err == nil {
				err = werr
			}
		case <-s.stop:
			// Final snapshot so short runs still record their end state.
			if werr := WriteSnapshot(s.w, s.reg, s.uptimeMS()); werr != nil && err == nil {
				err = werr
			}
			s.done <- err
			return
		}
	}
}

func (s *Snapshotter) uptimeMS() int64 {
	// Uptime stamps on snapshot lines. Execution-only.
	//lint:allow wallclock snapshot-sink stamps are execution-only
	return int64(time.Since(s.t0) / time.Millisecond)
}

// Stop writes a final snapshot, stops the background goroutine and
// returns the first write error the sink hit. Idempotent.
func (s *Snapshotter) Stop() error {
	var err error
	s.once.Do(func() {
		close(s.stop)
		err = <-s.done
	})
	return err
}

// WriteBenchFile merges vals into the flat BENCH_*.json snapshot at
// path: one JSON object with a "pr" tag and sorted keys, the
// serialization path benchmarks and CI share. Existing keys written
// by an earlier benchmark of the same PR are preserved unless vals
// overwrites them, so multi-benchmark PRs accumulate one file.
func WriteBenchFile(path string, pr int, vals map[string]float64) error {
	merged := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &merged); err != nil {
			return fmt.Errorf("telemetry: existing %s is not a JSON object: %w", path, err)
		}
	}
	merged["pr"] = pr
	// Order-insensitive merge into a map; the encoder sorts keys.
	//lint:allow mapiter order-insensitive map merge
	for k, v := range vals {
		merged[k] = v
	}
	b, err := json.Marshal(merged)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	// Atomic replace: the file is read back by CI gates (and merged by
	// the next benchmark of the same PR), so a torn write would fail
	// the pipeline with a JSON parse error instead of a real signal.
	return atomicio.WriteFileBytes(path, b)
}
