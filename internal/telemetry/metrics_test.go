package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestRegistryInstruments(t *testing.T) {
	g := NewRegistry()
	g.Counter("a/count").Add(2)
	g.Counter("a/count").Add(3)
	g.Gauge("b/val").Set(1.5)
	g.Gauge("b/val").Set(2.5) // last value wins
	h := g.Histogram("c/ms", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}

	s := g.Snapshot()
	if s.Counters["a/count"] != 5 {
		t.Errorf("counter = %d, want 5", s.Counters["a/count"])
	}
	if s.Gauges["b/val"] != 2.5 {
		t.Errorf("gauge = %g, want 2.5", s.Gauges["b/val"])
	}
	hs := s.Histograms["c/ms"]
	if hs.Count != 4 || hs.Sum != 555.5 {
		t.Errorf("hist count/sum = %d/%g, want 4/555.5", hs.Count, hs.Sum)
	}
	if want := []int64{1, 1, 1, 1}; !reflect.DeepEqual(hs.Buckets, want) {
		t.Errorf("hist buckets = %v, want %v", hs.Buckets, want)
	}
	if want := []string{"a/count", "b/val", "c/ms"}; !reflect.DeepEqual(g.Series(), want) {
		t.Errorf("Series = %v, want %v", g.Series(), want)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var g *Registry
	g.Counter("x").Add(1)
	g.Gauge("y").Set(1)
	g.Histogram("z", 1).Observe(1)
	if s := g.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot is non-empty")
	}
	if g.Series() != nil {
		t.Error("nil registry has series")
	}
}

func TestSnapshotSerializationIsDeterministic(t *testing.T) {
	build := func() *Registry {
		g := NewRegistry()
		// Register in different orders; the snapshot must not care.
		names := []string{"z/last", "a/first", "m/mid"}
		for _, n := range names {
			g.Gauge(n).Set(float64(len(n)))
		}
		return g
	}
	var b1, b2 bytes.Buffer
	if err := WriteSnapshot(&b1, build(), 42); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b2, build(), 42); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshots differ:\n%s\n%s", b1.String(), b2.String())
	}
	var line map[string]any
	if err := json.Unmarshal(b1.Bytes(), &line); err != nil {
		t.Fatalf("snapshot line is not JSON: %v", err)
	}
	if _, ok := line["gauges"]; !ok {
		t.Error("snapshot line has no gauges object")
	}
}

func TestSnapshotterWritesLines(t *testing.T) {
	g := NewRegistry()
	g.Gauge("fleet/coverage_pct").Set(12.5)
	var buf bytes.Buffer
	s := NewSnapshotter(&buf, g, time.Hour) // only the final Stop line
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := s.Stop(); err != nil { // idempotent
		t.Fatalf("second Stop: %v", err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		lines++
	}
	if lines < 1 {
		t.Error("snapshotter wrote no lines")
	}
}

func TestWriteBenchFileMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pr8.json")
	if err := WriteBenchFile(path, 8, map[string]float64{"speedup_x": 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchFile(path, 8, map[string]float64{"overhead_pct": 0.3}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("bench file is not JSON: %v", err)
	}
	if got["pr"] != float64(8) || got["speedup_x"] != 1.5 || got["overhead_pct"] != 0.3 {
		t.Errorf("merged file = %v", got)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	g := NewRegistry()
	g.Gauge("fleet/tests").Set(64)
	addr, closer, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer closer()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not a snapshot: %v", err)
	}
	if snap.Gauges["fleet/tests"] != 64 {
		t.Errorf("/metrics gauge = %v", snap.Gauges)
	}
	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["chatfuzz"]; !ok {
		t.Error("/debug/vars lacks the published chatfuzz registry")
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Error("/debug/pprof/ served nothing")
	}
}
