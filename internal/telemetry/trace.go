package telemetry

import "strconv"

// Chrome trace-event serialization: the recorder streams one JSON
// array of trace events in the "JSON Array Format" both Perfetto and
// chrome://tracing load directly. Spans are complete events
// (ph "X": ts + dur), instants are thread-scoped "i" events, and each
// track contributes one "M" thread_name metadata record the first
// time it drains. All events share pid 1 — the fleet is one process;
// tracks are the threads.
//
// Events are hand-serialized: the writers run inside Flush with small
// fixed shapes, and strconv-based encoding avoids per-event
// reflection and map allocation in encoding/json.

// write appends raw bytes to the trace stream, opening the JSON array
// on first use. Caller holds r.mu.
func (r *Recorder) write(s string) {
	if !r.opened && s != "[" {
		r.opened = true
		if _, err := r.bw.WriteString("["); err != nil && r.werr == nil {
			r.werr = err
		}
	} else if s == "[" {
		r.opened = true
	}
	if _, err := r.bw.WriteString(s); err != nil && r.werr == nil {
		r.werr = err
	}
}

// sep writes the between-events separator, keeping the array valid
// JSON (comma before every event but the first).
func (r *Recorder) sep() {
	if r.first {
		r.first = false
		r.write("\n")
		return
	}
	r.write(",\n")
}

// writeEvent serializes one drained event. Caller holds r.mu.
func (r *Recorder) writeEvent(tid int, e *event) {
	r.sep()
	var b []byte
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, e.name)
	switch e.ph {
	case 'X':
		b = append(b, `,"ph":"X","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, e.ts, 10)
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, e.dur, 10)
	default: // 'i': thread-scoped instant
		b = append(b, `,"ph":"i","s":"t","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, e.ts, 10)
	}
	b = append(b, '}')
	if _, err := r.bw.Write(b); err != nil && r.werr == nil {
		r.werr = err
	}
}

// writeThreadName emits a track's thread_name metadata record, which
// is what Perfetto shows as the lane label. Caller holds r.mu.
func (r *Recorder) writeThreadName(tid int, name string) {
	r.sep()
	var b []byte
	b = append(b, `{"name":"thread_name","ph":"M","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `}}`...)
	if _, err := r.bw.Write(b); err != nil && r.werr == nil {
		r.werr = err
	}
}
