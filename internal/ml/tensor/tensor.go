// Package tensor is a small tape-based automatic-differentiation
// engine over 2-D float64 tensors — the substrate for the GPT-2-style
// language model and the PPO trainer (the paper's PyTorch substitute).
//
// Design: every operation builds a node whose backward closure
// scatters gradients into its parents; Backward topologically sorts
// the tape and runs the closures. Ops are specialised for the
// transformer workload (matmul, layer norm, GELU, fused causal
// attention, embedding gather, cross-entropy) rather than offering
// general broadcasting.
//chatfuzz:deterministic package
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Tensor is a row-major 2-D array with optional gradient storage.
type Tensor struct {
	R, C int
	Data []float64
	Grad []float64

	requires bool
	back     func()
	prev     []*Tensor
}

// New returns a zero tensor that does not require gradients.
func New(r, c int) *Tensor {
	return &Tensor{R: r, C: c, Data: make([]float64, r*c)}
}

// Param returns a zero tensor that accumulates gradients (a trainable
// parameter).
func Param(r, c int) *Tensor {
	t := New(r, c)
	t.requires = true
	t.Grad = make([]float64, r*c)
	return t
}

// FromSlice wraps data (not copied) as an [r, c] tensor.
func FromSlice(r, c int, data []float64) *Tensor {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d elements", r, c, len(data)))
	}
	return &Tensor{R: r, C: c, Data: data}
}

// Requires reports whether the tensor participates in gradients.
func (t *Tensor) Requires() bool { return t.requires }

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.C+j] = v }

// Row returns a view of row i.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.C : (i+1)*t.C] }

// ZeroGrad clears accumulated gradients.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Clone returns a detached deep copy (no tape history).
func (t *Tensor) Clone() *Tensor {
	out := New(t.R, t.C)
	copy(out.Data, t.Data)
	if t.requires {
		out.requires = true
		out.Grad = make([]float64, len(t.Data))
	}
	return out
}

// child creates the result tensor of an op over parents, inheriting
// gradient participation.
func child(r, c int, parents ...*Tensor) *Tensor {
	t := New(r, c)
	for _, p := range parents {
		if p.requires {
			t.requires = true
			break
		}
	}
	if t.requires {
		t.Grad = make([]float64, r*c)
	}
	t.prev = parents
	return t
}

// ensureGrad allocates the gradient buffer of an intermediate node.
func ensureGrad(t *Tensor) {
	if t.requires && t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// Backward runs reverse-mode differentiation from t (which must be a
// scalar [1,1] unless seed gradients were placed manually).
func Backward(t *Tensor) {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	if t.R == 1 && t.C == 1 {
		t.Grad[0] = 1
	}
	// Topological order via iterative DFS.
	var order []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		n *Tensor
		i int
	}
	stack := []frame{{t, 0}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.prev) {
			p := f.n.prev[f.i]
			f.i++
			if !visited[p] {
				visited[p] = true
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	// order is post-order: children after parents; walk in reverse.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.requires {
			n.back()
		}
	}
}

// ---------- Elementwise and reduction ops ----------

// binOp applies f elementwise; dfa/dfb give ∂out/∂a and ∂out/∂b.
func binOp(a, b *Tensor, f func(x, y float64) float64,
	dfa, dfb func(x, y float64) float64) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C))
	}
	out := child(a.R, a.C, a, b)
	for i := range out.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	out.back = func() {
		ensureGrad(a)
		ensureGrad(b)
		for i, g := range out.Grad {
			if a.requires {
				a.Grad[i] += g * dfa(a.Data[i], b.Data[i])
			}
			if b.requires {
				b.Grad[i] += g * dfb(a.Data[i], b.Data[i])
			}
		}
	}
	return out
}

// unOp applies f elementwise with derivative df.
func unOp(a *Tensor, f, df func(x float64) float64) *Tensor {
	out := child(a.R, a.C, a)
	for i := range out.Data {
		out.Data[i] = f(a.Data[i])
	}
	out.back = func() {
		ensureGrad(a)
		if !a.requires {
			return
		}
		for i, g := range out.Grad {
			a.Grad[i] += g * df(a.Data[i])
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	return binOp(a, b,
		func(x, y float64) float64 { return x + y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return 1 })
}

// Sub returns a - b.
func Sub(a, b *Tensor) *Tensor {
	return binOp(a, b,
		func(x, y float64) float64 { return x - y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return -1 })
}

// Mul returns the elementwise product.
func Mul(a, b *Tensor) *Tensor {
	return binOp(a, b,
		func(x, y float64) float64 { return x * y },
		func(x, y float64) float64 { return y },
		func(x, y float64) float64 { return x })
}

// Min returns the elementwise minimum.
func Min(a, b *Tensor) *Tensor {
	return binOp(a, b,
		math.Min,
		func(x, y float64) float64 {
			if x <= y {
				return 1
			}
			return 0
		},
		func(x, y float64) float64 {
			if y < x {
				return 1
			}
			return 0
		})
}

// Scale returns a * k.
func Scale(a *Tensor, k float64) *Tensor {
	return unOp(a,
		func(x float64) float64 { return x * k },
		func(x float64) float64 { return k })
}

// AddConst returns a + k.
func AddConst(a *Tensor, k float64) *Tensor {
	return unOp(a,
		func(x float64) float64 { return x + k },
		func(x float64) float64 { return 1 })
}

// Exp returns e^a.
func Exp(a *Tensor) *Tensor {
	return unOp(a, math.Exp, math.Exp)
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Square returns a².
func Square(a *Tensor) *Tensor {
	return unOp(a,
		func(x float64) float64 { return x * x },
		func(x float64) float64 { return 2 * x })
}

// Clamp limits values to [lo, hi]; the gradient is zero outside.
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	return unOp(a,
		func(x float64) float64 { return math.Max(lo, math.Min(hi, x)) },
		func(x float64) float64 {
			if x < lo || x > hi {
				return 0
			}
			return 1
		})
}

// geluCoef is sqrt(2/pi) of the tanh GELU approximation.
var geluCoef = math.Sqrt(2 / math.Pi)

func geluF(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluCoef*(x+0.044715*x*x*x)))
}

func geluDF(x float64) float64 {
	inner := geluCoef * (x + 0.044715*x*x*x)
	th := math.Tanh(inner)
	sech2 := 1 - th*th
	return 0.5*(1+th) + 0.5*x*sech2*geluCoef*(1+3*0.044715*x*x)
}

// GELU applies the Gaussian error linear unit (tanh approximation, as
// in GPT-2).
func GELU(a *Tensor) *Tensor { return unOp(a, geluF, geluDF) }

// Mean reduces to a scalar [1,1].
func Mean(a *Tensor) *Tensor {
	out := child(1, 1, a)
	sum := 0.0
	for _, v := range a.Data {
		sum += v
	}
	n := float64(len(a.Data))
	out.Data[0] = sum / n
	out.back = func() {
		ensureGrad(a)
		if !a.requires {
			return
		}
		g := out.Grad[0] / n
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// Sum reduces to a scalar [1,1].
func Sum(a *Tensor) *Tensor {
	out := child(1, 1, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	out.back = func() {
		ensureGrad(a)
		if !a.requires {
			return
		}
		g := out.Grad[0]
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// ---------- Linear algebra ----------

// matmulThreshold is the work size above which MatMul parallelises
// across rows.
const matmulThreshold = 1 << 16

// MatMul returns a×b for a [M,K] and b [K,N].
func MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul %dx%d × %dx%d", a.R, a.C, b.R, b.C))
	}
	m, k, n := a.R, a.C, b.C
	out := child(m, n, a, b)
	matmulInto(out.Data, a.Data, b.Data, m, k, n, false, false)
	out.back = func() {
		ensureGrad(a)
		ensureGrad(b)
		if a.requires {
			// dA = dOut × Bᵀ
			matmulInto(a.Grad, out.Grad, b.Data, m, n, k, false, true)
		}
		if b.requires {
			// dB = Aᵀ × dOut
			matmulInto(b.Grad, a.Data, out.Grad, k, m, n, true, false)
		}
	}
	return out
}

// matmulInto computes dst += A×B (with optional transposes) where the
// logical shapes after transposition are [m,k]×[k,n]. dst is
// accumulated into, allowing gradient accumulation.
func matmulInto(dst, a, b []float64, m, k, n int, transA, transB bool) {
	work := m * k * n
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			di := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				var av float64
				if transA {
					av = a[p*m+i]
				} else {
					av = a[i*k+p]
				}
				if av == 0 {
					continue
				}
				if transB {
					for j := 0; j < n; j++ {
						di[j] += av * b[j*k+p]
					}
				} else {
					bp := b[p*n : p*n+n]
					for j := 0; j < n; j++ {
						di[j] += av * bp[j]
					}
				}
			}
		}
	}
	if work < matmulThreshold {
		rows(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			rows(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AddBias adds a [1,C] bias row to every row of a [R,C] tensor.
func AddBias(a, bias *Tensor) *Tensor {
	if bias.R != 1 || bias.C != a.C {
		panic(fmt.Sprintf("tensor: bias %dx%d for %dx%d", bias.R, bias.C, a.R, a.C))
	}
	out := child(a.R, a.C, a, bias)
	for i := 0; i < a.R; i++ {
		ar, or := a.Row(i), out.Row(i)
		for j := range or {
			or[j] = ar[j] + bias.Data[j]
		}
	}
	out.back = func() {
		ensureGrad(a)
		ensureGrad(bias)
		for i := 0; i < a.R; i++ {
			gr := out.Grad[i*a.C : (i+1)*a.C]
			if a.requires {
				agr := a.Grad[i*a.C : (i+1)*a.C]
				for j := range gr {
					agr[j] += gr[j]
				}
			}
			if bias.requires {
				for j := range gr {
					bias.Grad[j] += gr[j]
				}
			}
		}
	}
	return out
}
