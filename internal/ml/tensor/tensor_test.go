package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gradCheck compares analytic gradients against central differences.
// f must rebuild the graph from the live param values on every call.
func gradCheck(t *testing.T, name string, params []*Tensor, f func() *Tensor, tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	loss := f()
	Backward(loss)

	const h = 1e-5
	for pi, p := range params {
		analytic := make([]float64, len(p.Grad))
		copy(analytic, p.Grad)
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			up := f().Data[0]
			p.Data[i] = orig - h
			down := f().Data[0]
			p.Data[i] = orig
			numeric := (up - down) / (2 * h)
			diff := math.Abs(numeric - analytic[i])
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic[i])))
			if diff/scale > tol {
				t.Fatalf("%s: param %d elem %d: analytic %g vs numeric %g", name, pi, i, analytic[i], numeric)
			}
		}
	}
}

func randParam(rng *rand.Rand, r, c int) *Tensor {
	p := Param(r, c)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64()
	}
	return p
}

func TestGradAddSubMulMin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 3, 4)
	gradCheck(t, "add", []*Tensor{a, b}, func() *Tensor { return Mean(Add(a, b)) }, 1e-6)
	gradCheck(t, "sub", []*Tensor{a, b}, func() *Tensor { return Mean(Sub(a, b)) }, 1e-6)
	gradCheck(t, "mul", []*Tensor{a, b}, func() *Tensor { return Mean(Mul(a, b)) }, 1e-6)
	gradCheck(t, "min", []*Tensor{a, b}, func() *Tensor { return Mean(Min(a, b)) }, 1e-5)
}

func TestGradUnaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 5)
	gradCheck(t, "scale", []*Tensor{a}, func() *Tensor { return Mean(Scale(a, 2.5)) }, 1e-6)
	gradCheck(t, "exp", []*Tensor{a}, func() *Tensor { return Mean(Exp(a)) }, 1e-5)
	gradCheck(t, "gelu", []*Tensor{a}, func() *Tensor { return Mean(GELU(a)) }, 1e-5)
	gradCheck(t, "square", []*Tensor{a}, func() *Tensor { return Mean(Square(a)) }, 1e-6)
	gradCheck(t, "sum", []*Tensor{a}, func() *Tensor { return Sum(a) }, 1e-6)
	gradCheck(t, "addconst", []*Tensor{a}, func() *Tensor { return Mean(AddConst(a, 3)) }, 1e-6)
	gradCheck(t, "neg", []*Tensor{a}, func() *Tensor { return Mean(Neg(a)) }, 1e-6)
}

func TestGradClamp(t *testing.T) {
	a := Param(1, 5)
	copy(a.Data, []float64{-2, -0.5, 0, 0.5, 2})
	gradCheck(t, "clamp", []*Tensor{a}, func() *Tensor { return Mean(Clamp(a, -1, 1)) }, 1e-6)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 5)
	gradCheck(t, "matmul", []*Tensor{a, b}, func() *Tensor { return Mean(MatMul(a, b)) }, 1e-5)
}

func TestGradAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 1, 4)
	gradCheck(t, "addbias", []*Tensor{a, b}, func() *Tensor { return Mean(AddBias(a, b)) }, 1e-6)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randParam(rng, 3, 6)
	g := randParam(rng, 1, 6)
	b := randParam(rng, 1, 6)
	gradCheck(t, "layernorm", []*Tensor{x, g, b},
		func() *Tensor { return Mean(LayerNorm(x, g, b)) }, 1e-4)
}

func TestGradEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	table := randParam(rng, 7, 4)
	ids := []int{0, 3, 3, 6, 1}
	gradCheck(t, "embedding", []*Tensor{table},
		func() *Tensor { return Mean(Embedding(table, ids)) }, 1e-6)
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := randParam(rng, 5, 6)
	targets := []int{2, 0, -1, 5, 3} // one ignored row
	gradCheck(t, "crossentropy", []*Tensor{logits},
		func() *Tensor { return CrossEntropy(logits, targets) }, 1e-5)
}

func TestGradGatherLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := randParam(rng, 4, 5)
	ids := []int{1, 4, 0, 2}
	gradCheck(t, "gatherlogsoftmax", []*Tensor{logits},
		func() *Tensor { return Mean(GatherLogSoftmax(logits, ids)) }, 1e-5)
}

func TestGradCausalSelfAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const T, D, H = 4, 6, 2
	qkv := randParam(rng, 2*T, 3*D) // two sequences
	gradCheck(t, "attention", []*Tensor{qkv},
		func() *Tensor { return Mean(CausalSelfAttention(qkv, H, T)) }, 1e-4)
}

func TestGradComposite(t *testing.T) {
	// A miniature transformer-block-like composite to exercise the tape.
	rng := rand.New(rand.NewSource(10))
	x := randParam(rng, 4, 6)
	w := randParam(rng, 6, 6)
	g := randParam(rng, 1, 6)
	b := randParam(rng, 1, 6)
	gradCheck(t, "composite", []*Tensor{x, w, g, b}, func() *Tensor {
		h := MatMul(x, w)
		h = GELU(h)
		h = LayerNorm(h, g, b)
		h = Add(h, x)
		return Mean(Square(h))
	}, 1e-4)
}

func TestCausalMaskNoFutureLeak(t *testing.T) {
	// Changing a future token's K/V must not change an earlier output.
	const T, D, H = 3, 4, 1
	qkv := New(T, 3*D)
	rng := rand.New(rand.NewSource(11))
	for i := range qkv.Data {
		qkv.Data[i] = rng.NormFloat64()
	}
	out1 := CausalSelfAttention(qkv, H, T)
	row0a := append([]float64(nil), out1.Row(0)...)
	// Perturb the last token's entire qkv row.
	for j := 0; j < 3*D; j++ {
		qkv.Set(T-1, j, qkv.At(T-1, j)+5)
	}
	out2 := CausalSelfAttention(qkv, H, T)
	for j, v := range out2.Row(0) {
		if math.Abs(v-row0a[j]) > 1e-12 {
			t.Fatalf("future token leaked into position 0 (col %d)", j)
		}
	}
}

func TestMatMulCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := New(m, k), New(k, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		out := MatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for p := 0; p < k; p++ {
					want += a.At(i, p) * b.At(p, j)
				}
				if math.Abs(out.At(i, j)-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Big enough to cross matmulThreshold.
	a, b := New(64, 64), New(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	out := MatMul(a, b)
	for i := 0; i < 8; i++ { // spot-check rows
		for j := 0; j < 8; j++ {
			var want float64
			for p := 0; p < 64; p++ {
				want += a.At(i, p) * b.At(p, j)
			}
			if math.Abs(out.At(i, j)-want) > 1e-9 {
				t.Fatalf("parallel matmul wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			// bound magnitudes to avoid Inf inputs from quick
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				vals[i] = 0
			}
			vals[i] = math.Mod(vals[i], 50)
		}
		sm := Softmax(vals)
		sum := 0.0
		for _, v := range sm {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Add should panic")
		}
	}()
	Add(New(2, 3), New(3, 2))
}

func TestGradientAccumulation(t *testing.T) {
	// Using a param twice must sum both gradient paths.
	a := Param(1, 1)
	a.Data[0] = 3
	loss := Mean(Mul(a, a)) // d(a²)/da = 2a = 6
	Backward(loss)
	if math.Abs(a.Grad[0]-6) > 1e-9 {
		t.Errorf("grad = %v, want 6", a.Grad[0])
	}
}

func TestCloneDetaches(t *testing.T) {
	a := Param(2, 2)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] == 99 {
		t.Error("clone shares data")
	}
	if c.prev != nil {
		t.Error("clone must be detached from the tape")
	}
}
