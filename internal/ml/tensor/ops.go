package tensor

import (
	"fmt"
	"math"
)

const lnEps = 1e-5

// LayerNorm normalises each row of x and applies the learned scale
// gamma and shift beta (both [1,C]).
func LayerNorm(x, gamma, beta *Tensor) *Tensor {
	if gamma.C != x.C || beta.C != x.C || gamma.R != 1 || beta.R != 1 {
		panic("tensor: layernorm parameter shapes")
	}
	out := child(x.R, x.C, x, gamma, beta)
	n := float64(x.C)
	// Cache normalised activations and inverse std-devs for backward.
	xhat := make([]float64, len(x.Data))
	rstd := make([]float64, x.R)
	for i := 0; i < x.R; i++ {
		xr := x.Row(i)
		mean := 0.0
		for _, v := range xr {
			mean += v
		}
		mean /= n
		variance := 0.0
		for _, v := range xr {
			d := v - mean
			variance += d * d
		}
		variance /= n
		rs := 1 / math.Sqrt(variance+lnEps)
		rstd[i] = rs
		or := out.Row(i)
		for j, v := range xr {
			h := (v - mean) * rs
			xhat[i*x.C+j] = h
			or[j] = gamma.Data[j]*h + beta.Data[j]
		}
	}
	out.back = func() {
		ensureGrad(x)
		ensureGrad(gamma)
		ensureGrad(beta)
		for i := 0; i < x.R; i++ {
			gr := out.Grad[i*x.C : (i+1)*x.C]
			xh := xhat[i*x.C : (i+1)*x.C]
			if gamma.requires {
				for j := range gr {
					gamma.Grad[j] += gr[j] * xh[j]
				}
			}
			if beta.requires {
				for j := range gr {
					beta.Grad[j] += gr[j]
				}
			}
			if x.requires {
				// dxhat = dy * gamma
				var meanDx, meanDxXh float64
				dxh := make([]float64, x.C)
				for j := range gr {
					dxh[j] = gr[j] * gamma.Data[j]
					meanDx += dxh[j]
					meanDxXh += dxh[j] * xh[j]
				}
				meanDx /= n
				meanDxXh /= n
				xg := x.Grad[i*x.C : (i+1)*x.C]
				for j := range gr {
					xg[j] += rstd[i] * (dxh[j] - meanDx - xh[j]*meanDxXh)
				}
			}
		}
	}
	return out
}

// Embedding gathers rows of table ([V,D]) by ids, producing
// [len(ids), D]. Backward scatter-adds into the table.
func Embedding(table *Tensor, ids []int) *Tensor {
	out := child(len(ids), table.C, table)
	for i, id := range ids {
		if id < 0 || id >= table.R {
			panic(fmt.Sprintf("tensor: embedding id %d out of range %d", id, table.R))
		}
		copy(out.Row(i), table.Row(id))
	}
	out.back = func() {
		if !table.requires {
			return
		}
		ensureGrad(table)
		for i, id := range ids {
			gr := out.Grad[i*out.C : (i+1)*out.C]
			tg := table.Grad[id*table.C : (id+1)*table.C]
			for j := range gr {
				tg[j] += gr[j]
			}
		}
	}
	return out
}

// CausalSelfAttention is the fused multi-head attention of a GPT
// block. qkv is [B*T, 3D] (the concatenated Q,K,V projections), heads
// divides D, and seqLen is T. Rows are grouped per sequence: rows
// [s*T, (s+1)*T) belong to sequence s. A causal mask is applied.
func CausalSelfAttention(qkv *Tensor, heads, seqLen int) *Tensor {
	if qkv.C%3 != 0 {
		panic("tensor: attention qkv width not divisible by 3")
	}
	d := qkv.C / 3
	if d%heads != 0 {
		panic("tensor: attention dim not divisible by heads")
	}
	if qkv.R%seqLen != 0 {
		panic("tensor: attention rows not divisible by seqLen")
	}
	b := qkv.R / seqLen
	dh := d / heads
	scale := 1 / math.Sqrt(float64(dh))

	out := child(qkv.R, d, qkv)
	// probs[s][h] is the [T,T] post-softmax attention matrix.
	probs := make([][][]float64, b)

	qAt := func(s, t, h, j int) float64 { return qkv.Data[(s*seqLen+t)*qkv.C+h*dh+j] }
	kAt := func(s, t, h, j int) float64 { return qkv.Data[(s*seqLen+t)*qkv.C+d+h*dh+j] }
	vAt := func(s, t, h, j int) float64 { return qkv.Data[(s*seqLen+t)*qkv.C+2*d+h*dh+j] }

	for s := 0; s < b; s++ {
		probs[s] = make([][]float64, heads)
		for h := 0; h < heads; h++ {
			p := make([]float64, seqLen*seqLen)
			for t := 0; t < seqLen; t++ {
				// Scores over keys 0..t.
				maxScore := math.Inf(-1)
				row := p[t*seqLen : (t+1)*seqLen]
				for u := 0; u <= t; u++ {
					sum := 0.0
					for j := 0; j < dh; j++ {
						sum += qAt(s, t, h, j) * kAt(s, u, h, j)
					}
					row[u] = sum * scale
					if row[u] > maxScore {
						maxScore = row[u]
					}
				}
				var z float64
				for u := 0; u <= t; u++ {
					row[u] = math.Exp(row[u] - maxScore)
					z += row[u]
				}
				for u := 0; u <= t; u++ {
					row[u] /= z
				}
				// Output = P·V.
				or := out.Row(s*seqLen + t)
				for u := 0; u <= t; u++ {
					pu := row[u]
					if pu == 0 {
						continue
					}
					for j := 0; j < dh; j++ {
						or[h*dh+j] += pu * vAt(s, u, h, j)
					}
				}
			}
			probs[s][h] = p
		}
	}

	out.back = func() {
		if !qkv.requires {
			return
		}
		ensureGrad(qkv)
		gq := func(s, t, h, j int, v float64) { qkv.Grad[(s*seqLen+t)*qkv.C+h*dh+j] += v }
		gk := func(s, t, h, j int, v float64) { qkv.Grad[(s*seqLen+t)*qkv.C+d+h*dh+j] += v }
		gv := func(s, t, h, j int, v float64) { qkv.Grad[(s*seqLen+t)*qkv.C+2*d+h*dh+j] += v }

		for s := 0; s < b; s++ {
			for h := 0; h < heads; h++ {
				p := probs[s][h]
				for t := 0; t < seqLen; t++ {
					do := out.Grad[(s*seqLen+t)*d+h*dh : (s*seqLen+t)*d+h*dh+dh]
					row := p[t*seqLen : (t+1)*seqLen]
					// dV and dP.
					dp := make([]float64, t+1)
					for u := 0; u <= t; u++ {
						var sum float64
						for j := 0; j < dh; j++ {
							gv(s, u, h, j, row[u]*do[j])
							sum += do[j] * vAt(s, u, h, j)
						}
						dp[u] = sum
					}
					// Softmax backward: ds = p ⊙ (dp - Σ dp⊙p).
					var dot float64
					for u := 0; u <= t; u++ {
						dot += dp[u] * row[u]
					}
					for u := 0; u <= t; u++ {
						ds := row[u] * (dp[u] - dot) * scale
						if ds == 0 {
							continue
						}
						for j := 0; j < dh; j++ {
							gq(s, t, h, j, ds*kAt(s, u, h, j))
							gk(s, u, h, j, ds*qAt(s, t, h, j))
						}
					}
				}
			}
		}
	}
	return out
}

// CrossEntropy computes the mean negative log-likelihood of targets
// under row-wise softmax of logits [N,V]. Rows with target < 0 are
// ignored (padding). Returns a scalar tensor.
func CrossEntropy(logits *Tensor, targets []int) *Tensor {
	if len(targets) != logits.R {
		panic("tensor: cross-entropy target length")
	}
	out := child(1, 1, logits)
	count := 0
	loss := 0.0
	soft := make([]float64, len(logits.Data))
	for i := 0; i < logits.R; i++ {
		if targets[i] < 0 {
			continue
		}
		row := logits.Row(i)
		sm := soft[i*logits.C : (i+1)*logits.C]
		softmaxInto(sm, row)
		loss += -math.Log(math.Max(sm[targets[i]], 1e-300))
		count++
	}
	if count > 0 {
		out.Data[0] = loss / float64(count)
	}
	out.back = func() {
		if !logits.requires || count == 0 {
			return
		}
		ensureGrad(logits)
		g := out.Grad[0] / float64(count)
		for i := 0; i < logits.R; i++ {
			if targets[i] < 0 {
				continue
			}
			sm := soft[i*logits.C : (i+1)*logits.C]
			lg := logits.Grad[i*logits.C : (i+1)*logits.C]
			for j := range lg {
				lg[j] += g * sm[j]
			}
			lg[targets[i]] -= g
		}
	}
	return out
}

// GatherLogSoftmax returns the log-probability of ids[i] under the
// softmax of row i, as an [N,1] tensor (the per-token log-policy
// needed by PPO).
func GatherLogSoftmax(logits *Tensor, ids []int) *Tensor {
	if len(ids) != logits.R {
		panic("tensor: gather length")
	}
	out := child(logits.R, 1, logits)
	soft := make([]float64, len(logits.Data))
	for i := 0; i < logits.R; i++ {
		row := logits.Row(i)
		sm := soft[i*logits.C : (i+1)*logits.C]
		softmaxInto(sm, row)
		out.Data[i] = math.Log(math.Max(sm[ids[i]], 1e-300))
	}
	out.back = func() {
		if !logits.requires {
			return
		}
		ensureGrad(logits)
		for i := 0; i < logits.R; i++ {
			g := out.Grad[i]
			if g == 0 {
				continue
			}
			sm := soft[i*logits.C : (i+1)*logits.C]
			lg := logits.Grad[i*logits.C : (i+1)*logits.C]
			for j := range lg {
				lg[j] -= g * sm[j]
			}
			lg[ids[i]] += g
		}
	}
	return out
}

// softmaxInto writes softmax(src) into dst (no autograd).
func softmaxInto(dst, src []float64) {
	maxV := math.Inf(-1)
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	var z float64
	for i, v := range src {
		e := math.Exp(v - maxV)
		dst[i] = e
		z += e
	}
	for i := range dst {
		dst[i] /= z
	}
}

// Softmax returns softmax over a slice (no autograd; sampling helper).
func Softmax(src []float64) []float64 {
	out := make([]float64, len(src))
	softmaxInto(out, src)
	return out
}

// LogSoftmax returns log-softmax over a slice (no autograd).
func LogSoftmax(src []float64) []float64 {
	out := make([]float64, len(src))
	maxV := math.Inf(-1)
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	var z float64
	for _, v := range src {
		z += math.Exp(v - maxV)
	}
	lz := math.Log(z) + maxV
	for i, v := range src {
		out[i] = v - lz
	}
	return out
}
