// Package nn implements the GPT-2-style language model of ChatFuzz's
// LLM-based Input Generator, with a PPO value head, an Adam optimizer,
// and a KV-cached incremental sampler for fast generation inside the
// fuzzing loop.
//chatfuzz:deterministic package
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"chatfuzz/internal/ml/tensor"
)

// Config sizes the transformer.
type Config struct {
	Vocab  int // token vocabulary size
	Ctx    int // maximum sequence length
	Dim    int // embedding width
	Heads  int // attention heads
	Layers int // transformer blocks
}

// DefaultConfig is the laptop-scale model used by the fuzzing loop;
// the paper's GPT-2 is orders of magnitude larger, but the pipeline
// (tokenise → pretrain → PPO cleanup → PPO coverage) is identical.
func DefaultConfig(vocab int) Config {
	return Config{Vocab: vocab, Ctx: 96, Dim: 96, Heads: 4, Layers: 2}
}

// Block holds one transformer block's parameters.
type Block struct {
	LN1g, LN1b   *tensor.Tensor
	Wqkv, Bqkv   *tensor.Tensor // [D,3D], [1,3D]
	Wproj, Bproj *tensor.Tensor // [D,D], [1,D]
	LN2g, LN2b   *tensor.Tensor
	Wfc, Bfc     *tensor.Tensor // [D,4D], [1,4D]
	Wout, Bout   *tensor.Tensor // [4D,D], [1,D]
}

// GPT is the language model with an additional scalar value head used
// during PPO training.
type GPT struct {
	Cfg    Config
	TokEmb *tensor.Tensor // [V,D]
	PosEmb *tensor.Tensor // [Ctx,D]
	Blocks []*Block
	LNfg   *tensor.Tensor
	LNfb   *tensor.Tensor
	Head   *tensor.Tensor // [D,V]
	VHead  *tensor.Tensor // [D,1]
	VBias  *tensor.Tensor // [1,1]
}

func randInit(rng *rand.Rand, t *tensor.Tensor, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

func ones(t *tensor.Tensor) {
	for i := range t.Data {
		t.Data[i] = 1
	}
}

// NewGPT builds a randomly initialised model (N(0, 0.02) like GPT-2).
func NewGPT(cfg Config, rng *rand.Rand) *GPT {
	d := cfg.Dim
	m := &GPT{Cfg: cfg}
	m.TokEmb = tensor.Param(cfg.Vocab, d)
	randInit(rng, m.TokEmb, 0.02)
	m.PosEmb = tensor.Param(cfg.Ctx, d)
	randInit(rng, m.PosEmb, 0.02)
	for l := 0; l < cfg.Layers; l++ {
		b := &Block{
			LN1g: tensor.Param(1, d), LN1b: tensor.Param(1, d),
			Wqkv: tensor.Param(d, 3*d), Bqkv: tensor.Param(1, 3*d),
			Wproj: tensor.Param(d, d), Bproj: tensor.Param(1, d),
			LN2g: tensor.Param(1, d), LN2b: tensor.Param(1, d),
			Wfc: tensor.Param(d, 4*d), Bfc: tensor.Param(1, 4*d),
			Wout: tensor.Param(4*d, d), Bout: tensor.Param(1, d),
		}
		ones(b.LN1g)
		ones(b.LN2g)
		randInit(rng, b.Wqkv, 0.02)
		randInit(rng, b.Wproj, 0.02/math.Sqrt(float64(2*cfg.Layers)))
		randInit(rng, b.Wfc, 0.02)
		randInit(rng, b.Wout, 0.02/math.Sqrt(float64(2*cfg.Layers)))
		m.Blocks = append(m.Blocks, b)
	}
	m.LNfg = tensor.Param(1, d)
	ones(m.LNfg)
	m.LNfb = tensor.Param(1, d)
	m.Head = tensor.Param(d, cfg.Vocab)
	randInit(rng, m.Head, 0.02)
	m.VHead = tensor.Param(d, 1)
	randInit(rng, m.VHead, 0.02)
	m.VBias = tensor.Param(1, 1)
	return m
}

// Params returns every trainable tensor (value head included).
func (m *GPT) Params() []*tensor.Tensor {
	out := []*tensor.Tensor{m.TokEmb, m.PosEmb}
	for _, b := range m.Blocks {
		out = append(out, b.LN1g, b.LN1b, b.Wqkv, b.Bqkv, b.Wproj, b.Bproj,
			b.LN2g, b.LN2b, b.Wfc, b.Bfc, b.Wout, b.Bout)
	}
	out = append(out, m.LNfg, m.LNfb, m.Head, m.VHead, m.VBias)
	return out
}

// NumParams returns the total number of scalar parameters.
func (m *GPT) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// Clone returns a deep copy with detached parameters (used for the
// frozen PPO reference model).
func (m *GPT) Clone() *GPT {
	c := &GPT{Cfg: m.Cfg}
	c.TokEmb = m.TokEmb.Clone()
	c.PosEmb = m.PosEmb.Clone()
	for _, b := range m.Blocks {
		c.Blocks = append(c.Blocks, &Block{
			LN1g: b.LN1g.Clone(), LN1b: b.LN1b.Clone(),
			Wqkv: b.Wqkv.Clone(), Bqkv: b.Bqkv.Clone(),
			Wproj: b.Wproj.Clone(), Bproj: b.Bproj.Clone(),
			LN2g: b.LN2g.Clone(), LN2b: b.LN2b.Clone(),
			Wfc: b.Wfc.Clone(), Bfc: b.Bfc.Clone(),
			Wout: b.Wout.Clone(), Bout: b.Bout.Clone(),
		})
	}
	c.LNfg = m.LNfg.Clone()
	c.LNfb = m.LNfb.Clone()
	c.Head = m.Head.Clone()
	c.VHead = m.VHead.Clone()
	c.VBias = m.VBias.Clone()
	return c
}

// NumParamsOf is NumParams without building a model: the scalar
// parameter count a configuration implies (used to validate serialized
// weight vectors before assignment).
func NumParamsOf(cfg Config) int {
	d := cfg.Dim
	perBlock := 2*d + // LN1
		d*3*d + 3*d + // qkv
		d*d + d + // proj
		2*d + // LN2
		d*4*d + 4*d + // fc
		4*d*d + d // out
	return cfg.Vocab*d + cfg.Ctx*d + cfg.Layers*perBlock +
		2*d + // final LN
		d*cfg.Vocab + // head
		d + 1 // value head + bias
}

// FlattenParams appends every parameter scalar to dst (in Params()
// order) and returns the grown slice. The layout is stable for a given
// Config, which makes flattened vectors the currency of fleet weight
// averaging and of checkpoint serialization.
func (m *GPT) FlattenParams(dst []float64) []float64 {
	for _, p := range m.Params() {
		dst = append(dst, p.Data...)
	}
	return dst
}

// SetFlatParams assigns a flattened parameter vector (as produced by
// FlattenParams on a same-Config model) back into the model's tensors.
func (m *GPT) SetFlatParams(w []float64) error {
	if want := m.NumParams(); len(w) != want {
		return fmt.Errorf("nn: flat weight vector has %d scalars, model needs %d", len(w), want)
	}
	off := 0
	for _, p := range m.Params() {
		copy(p.Data, w[off:off+len(p.Data)])
		off += len(p.Data)
	}
	return nil
}

// hidden runs the transformer backbone over a padded batch. ids is
// row-major [B][T] flattened; returns hidden states [B*T, D].
func (m *GPT) hidden(idsFlat []int, batch, seqLen int) *tensor.Tensor {
	if seqLen > m.Cfg.Ctx {
		panic("nn: sequence longer than model context")
	}
	posIDs := make([]int, batch*seqLen)
	for s := 0; s < batch; s++ {
		for t := 0; t < seqLen; t++ {
			posIDs[s*seqLen+t] = t
		}
	}
	x := tensor.Add(tensor.Embedding(m.TokEmb, idsFlat), tensor.Embedding(m.PosEmb, posIDs))
	for _, b := range m.Blocks {
		h := tensor.LayerNorm(x, b.LN1g, b.LN1b)
		qkv := tensor.AddBias(tensor.MatMul(h, b.Wqkv), b.Bqkv)
		att := tensor.CausalSelfAttention(qkv, m.Cfg.Heads, seqLen)
		att = tensor.AddBias(tensor.MatMul(att, b.Wproj), b.Bproj)
		x = tensor.Add(x, att)
		h2 := tensor.LayerNorm(x, b.LN2g, b.LN2b)
		mlp := tensor.GELU(tensor.AddBias(tensor.MatMul(h2, b.Wfc), b.Bfc))
		mlp = tensor.AddBias(tensor.MatMul(mlp, b.Wout), b.Bout)
		x = tensor.Add(x, mlp)
	}
	return tensor.LayerNorm(x, m.LNfg, m.LNfb)
}

// pad flattens a batch of variable-length sequences into a padded
// [B, T] layout, returning the flat ids and T. padID fills the tail.
func pad(batchSeqs [][]int, padID int) (idsFlat []int, seqLen int) {
	for _, s := range batchSeqs {
		if len(s) > seqLen {
			seqLen = len(s)
		}
	}
	idsFlat = make([]int, len(batchSeqs)*seqLen)
	for i, s := range batchSeqs {
		for t := 0; t < seqLen; t++ {
			if t < len(s) {
				idsFlat[i*seqLen+t] = s[t]
			} else {
				idsFlat[i*seqLen+t] = padID
			}
		}
	}
	return idsFlat, seqLen
}

// Logits runs the model over a padded batch and returns logits
// [B*T, V] plus the padded sequence length.
func (m *GPT) Logits(batchSeqs [][]int, padID int) (*tensor.Tensor, int) {
	idsFlat, seqLen := pad(batchSeqs, padID)
	h := m.hidden(idsFlat, len(batchSeqs), seqLen)
	return tensor.MatMul(h, m.Head), seqLen
}

// LogitsAndValues additionally returns the value head's output
// [B*T, 1], sharing the backbone computation (PPO actor-critic).
func (m *GPT) LogitsAndValues(batchSeqs [][]int, padID int) (*tensor.Tensor, *tensor.Tensor, int) {
	idsFlat, seqLen := pad(batchSeqs, padID)
	h := m.hidden(idsFlat, len(batchSeqs), seqLen)
	logits := tensor.MatMul(h, m.Head)
	values := tensor.AddBias(tensor.MatMul(h, m.VHead), m.VBias)
	return logits, values, seqLen
}

// LMLoss computes the next-token cross-entropy over a batch
// (training step 1). Padding and positions beyond each sequence's end
// are ignored. Returns the loss node and its scalar value.
func (m *GPT) LMLoss(batchSeqs [][]int, padID int) (*tensor.Tensor, float64) {
	logits, seqLen := m.Logits(batchSeqs, padID)
	targets := make([]int, logits.R)
	for i := range targets {
		targets[i] = -1
	}
	for s, seq := range batchSeqs {
		for t := 0; t+1 < len(seq); t++ {
			targets[s*seqLen+t] = seq[t+1]
		}
	}
	loss := tensor.CrossEntropy(logits, targets)
	return loss, loss.Data[0]
}
