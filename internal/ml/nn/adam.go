package nn

import (
	"math"

	"chatfuzz/internal/ml/tensor"
)

// Adam is the Adam optimizer with optional decoupled weight decay and
// gradient-norm clipping.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*tensor.Tensor
	m, v   [][]float64
	t      int
}

// NewAdam returns an optimizer over params with standard defaults.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.Data)))
		a.v = append(a.v, make([]float64, len(p.Data)))
	}
	return a
}

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of all gradients.
func (a *Adam) GradNorm() float64 {
	var s float64
	for _, p := range a.params {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales gradients so the global norm does not exceed
// maxNorm; returns the pre-clip norm.
func (a *Adam) ClipGradNorm(maxNorm float64) float64 {
	norm := a.GradNorm()
	if norm > maxNorm && norm > 0 {
		k := maxNorm / norm
		for _, p := range a.params {
			for i := range p.Grad {
				p.Grad[i] *= k
			}
		}
	}
	return norm
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i, g := range p.Grad {
			if a.WeightDecay != 0 {
				p.Data[i] -= a.LR * a.WeightDecay * p.Data[i]
			}
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
