package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// modelFile is the on-disk representation of a GPT checkpoint.
type modelFile struct {
	Cfg    Config
	Params [][]float64
}

// Save writes the model parameters to w (gob encoding).
func (m *GPT) Save(w io.Writer) error {
	mf := modelFile{Cfg: m.Cfg}
	for _, p := range m.Params() {
		mf.Params = append(mf.Params, p.Data)
	}
	return gob.NewEncoder(w).Encode(&mf)
}

// SaveFile writes the model to a file.
func (m *GPT) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// Load reads a checkpoint produced by Save. The receiver must have
// been constructed with the same architecture; Load verifies shapes.
func (m *GPT) Load(r io.Reader) error {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return err
	}
	if mf.Cfg != m.Cfg {
		return fmt.Errorf("nn: checkpoint config %+v does not match model %+v", mf.Cfg, m.Cfg)
	}
	params := m.Params()
	if len(params) != len(mf.Params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(mf.Params), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(mf.Params[i]) {
			return fmt.Errorf("nn: tensor %d size %d vs %d", i, len(mf.Params[i]), len(p.Data))
		}
		copy(p.Data, mf.Params[i])
	}
	return nil
}

// LoadFile reads a checkpoint from a file.
func (m *GPT) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Load(f)
}
