package nn

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"chatfuzz/internal/atomicio"
)

// modelFile is the on-disk representation of a GPT checkpoint.
type modelFile struct {
	Cfg    Config
	Params [][]float64
}

// Save writes the model parameters to w (gob encoding).
func (m *GPT) Save(w io.Writer) error {
	mf := modelFile{Cfg: m.Cfg}
	for _, p := range m.Params() {
		mf.Params = append(mf.Params, p.Data)
	}
	return gob.NewEncoder(w).Encode(&mf)
}

// SaveFile writes the model to a file atomically (staged, fsynced and
// renamed via internal/atomicio), so a crash mid-save cannot tear an
// existing weights file.
func (m *GPT) SaveFile(path string) error {
	return atomicio.WriteFile(path, m.Save)
}

// Load reads a checkpoint produced by Save. The receiver must have
// been constructed with the same architecture; Load verifies shapes.
func (m *GPT) Load(r io.Reader) error {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return err
	}
	if mf.Cfg != m.Cfg {
		return fmt.Errorf("nn: checkpoint config %+v does not match model %+v", mf.Cfg, m.Cfg)
	}
	params := m.Params()
	if len(params) != len(mf.Params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(mf.Params), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(mf.Params[i]) {
			return fmt.Errorf("nn: tensor %d size %d vs %d", i, len(mf.Params[i]), len(p.Data))
		}
		copy(p.Data, mf.Params[i])
	}
	return nil
}

// EncodeWeights renders a flattened weight vector as base64 of the
// little-endian IEEE-754 bit patterns. Unlike a decimal rendering this
// is bit-exact by construction and byte-stable across runs, which is
// what lets campaign checkpoints carry model weights and still be
// compared with ==; unlike gob it embeds no type metadata, so the
// encoding of a given vector never varies with encoder state.
func EncodeWeights(w []float64) string {
	buf := make([]byte, 8*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeWeights reverses EncodeWeights.
func DecodeWeights(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("nn: decode weights: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("nn: encoded weights are %d bytes, not a multiple of 8", len(buf))
	}
	w := make([]float64, len(buf)/8)
	for i := range w {
		w[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return w, nil
}

// LoadFile reads a checkpoint from a file.
func (m *GPT) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Load(f)
}
