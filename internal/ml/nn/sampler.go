package nn

import (
	"math"
	"math/rand"
	"sort"

	"chatfuzz/internal/ml/tensor"
)

// Sampler runs the model incrementally with per-layer KV caches —
// generation is O(T²) total instead of O(T³), which keeps the fuzzing
// loop fast. It shares the model's weights and allocates no tape.
type Sampler struct {
	m   *GPT
	k   [][]float64 // [layer] -> appended rows of D keys
	v   [][]float64
	pos int
}

// NewSampler returns an empty sampler for m.
func NewSampler(m *GPT) *Sampler {
	s := &Sampler{m: m}
	s.k = make([][]float64, m.Cfg.Layers)
	s.v = make([][]float64, m.Cfg.Layers)
	return s
}

// Reset clears the cache for a new sequence.
func (s *Sampler) Reset() {
	for l := range s.k {
		s.k[l] = s.k[l][:0]
		s.v[l] = s.v[l][:0]
	}
	s.pos = 0
}

// Pos returns the number of tokens consumed.
func (s *Sampler) Pos() int { return s.pos }

func vecMatInto(dst, x []float64, w *tensor.Tensor) {
	out := w.C
	for j := range dst {
		dst[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := w.Data[i*out : (i+1)*out]
		for j, wv := range row {
			dst[j] += xv * wv
		}
	}
}

func layerNormVec(dst, x []float64, g, b *tensor.Tensor) {
	n := float64(len(x))
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= n
	variance := 0.0
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= n
	rs := 1 / math.Sqrt(variance+1e-5)
	for i, v := range x {
		dst[i] = g.Data[i]*(v-mean)*rs + b.Data[i]
	}
}

// Next consumes one token and returns (logits, value) for the
// position just consumed.
func (s *Sampler) Next(id int) (logits []float64, value float64) {
	m := s.m
	d := m.Cfg.Dim
	if s.pos >= m.Cfg.Ctx {
		panic("nn: sampler past model context")
	}

	x := make([]float64, d)
	te := m.TokEmb.Row(id)
	pe := m.PosEmb.Row(s.pos)
	for i := range x {
		x[i] = te[i] + pe[i]
	}

	h := make([]float64, d)
	qkv := make([]float64, 3*d)
	attn := make([]float64, d)
	proj := make([]float64, d)
	fc := make([]float64, 4*d)
	mlp := make([]float64, d)
	heads := m.Cfg.Heads
	dh := d / heads
	scale := 1 / math.Sqrt(float64(dh))

	for l, blk := range m.Blocks {
		layerNormVec(h, x, blk.LN1g, blk.LN1b)
		vecMatInto(qkv, h, blk.Wqkv)
		for i := range qkv {
			qkv[i] += blk.Bqkv.Data[i]
		}
		q := qkv[:d]
		s.k[l] = append(s.k[l], qkv[d:2*d]...)
		s.v[l] = append(s.v[l], qkv[2*d:]...)
		T := s.pos + 1

		for i := range attn {
			attn[i] = 0
		}
		for hd := 0; hd < heads; hd++ {
			qh := q[hd*dh : (hd+1)*dh]
			// Scores over all cached positions.
			maxScore := math.Inf(-1)
			scores := make([]float64, T)
			for u := 0; u < T; u++ {
				kr := s.k[l][u*d+hd*dh : u*d+hd*dh+dh]
				sum := 0.0
				for j := range qh {
					sum += qh[j] * kr[j]
				}
				scores[u] = sum * scale
				if scores[u] > maxScore {
					maxScore = scores[u]
				}
			}
			var z float64
			for u := range scores {
				scores[u] = math.Exp(scores[u] - maxScore)
				z += scores[u]
			}
			for u := 0; u < T; u++ {
				p := scores[u] / z
				vr := s.v[l][u*d+hd*dh : u*d+hd*dh+dh]
				for j := 0; j < dh; j++ {
					attn[hd*dh+j] += p * vr[j]
				}
			}
		}
		vecMatInto(proj, attn, blk.Wproj)
		for i := range x {
			x[i] += proj[i] + blk.Bproj.Data[i]
		}
		layerNormVec(h, x, blk.LN2g, blk.LN2b)
		vecMatInto(fc, h, blk.Wfc)
		for i := range fc {
			fc[i] = geluScalar(fc[i] + blk.Bfc.Data[i])
		}
		vecMatInto(mlp, fc, blk.Wout)
		for i := range x {
			x[i] += mlp[i] + blk.Bout.Data[i]
		}
	}

	layerNormVec(h, x, m.LNfg, m.LNfb)
	logits = make([]float64, m.Cfg.Vocab)
	vecMatInto(logits, h, m.Head)
	value = m.VBias.Data[0]
	for i, hv := range h {
		value += hv * m.VHead.Data[i]
	}
	s.pos++
	return logits, value
}

func geluScalar(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(0.7978845608028654*(x+0.044715*x*x*x)))
}

// SampleToken draws from logits with temperature and top-k filtering.
func SampleToken(rng *rand.Rand, logits []float64, temperature float64, topK int) int {
	if temperature <= 0 {
		return argmax(logits)
	}
	scaled := make([]float64, len(logits))
	for i, v := range logits {
		scaled[i] = v / temperature
	}
	if topK > 0 && topK < len(scaled) {
		idx := make([]int, len(scaled))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return scaled[idx[a]] > scaled[idx[b]] })
		cut := scaled[idx[topK-1]]
		for i := range scaled {
			if scaled[i] < cut {
				scaled[i] = math.Inf(-1)
			}
		}
	}
	probs := tensor.Softmax(scaled)
	r := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// GenerateResult is one sampled continuation with the statistics PPO
// needs from rollout time.
type GenerateResult struct {
	Tokens   []int     // full sequence: prompt + generated
	PromptN  int       // number of prompt tokens
	LogProbs []float64 // log π_old(token) for each generated token
	Values   []float64 // value head at each generated position
}

// Generate samples a continuation of prompt until maxNew tokens, the
// eos token, or the context limit. Temperature and topK control the
// distribution.
func (m *GPT) Generate(rng *rand.Rand, prompt []int, maxNew int, temperature float64, topK, eos int) GenerateResult {
	s := NewSampler(m)
	res := GenerateResult{PromptN: len(prompt)}
	res.Tokens = append(res.Tokens, prompt...)

	var logits []float64
	var value float64
	for _, id := range prompt {
		logits, value = s.Next(id)
	}
	for n := 0; n < maxNew && s.Pos() < m.Cfg.Ctx; n++ {
		id := SampleToken(rng, logits, temperature, topK)
		// Log-probabilities are always recorded under the untempered
		// policy: PPO's ratio compares the same measure at rollout and
		// optimisation time (temperature only shapes exploration).
		lp := tensor.LogSoftmax(logits)[id]
		res.Tokens = append(res.Tokens, id)
		res.LogProbs = append(res.LogProbs, lp)
		res.Values = append(res.Values, value)
		if id == eos {
			break
		}
		logits, value = s.Next(id)
	}
	return res
}
