package nn

import (
	"math"
	"math/rand"
	"testing"

	"chatfuzz/internal/ml/tensor"
)

func tinyConfig() Config {
	return Config{Vocab: 17, Ctx: 16, Dim: 16, Heads: 2, Layers: 2}
}

func TestModelShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGPT(tinyConfig(), rng)
	if got := m.NumParams(); got <= 0 {
		t.Fatal("no parameters")
	}
	logits, T := m.Logits([][]int{{1, 2, 3}, {4, 5}}, 0)
	if T != 3 {
		t.Errorf("padded length = %d, want 3", T)
	}
	if logits.R != 6 || logits.C != 17 {
		t.Errorf("logits shape %dx%d, want 6x17", logits.R, logits.C)
	}
	_, values, _ := m.LogitsAndValues([][]int{{1, 2, 3}}, 0)
	if values.R != 3 || values.C != 1 {
		t.Errorf("values shape %dx%d, want 3x1", values.R, values.C)
	}
}

// TestOverfitTinyCorpus is the fundamental LM sanity check: on a tiny
// repetitive dataset the loss must fall far below the uniform-random
// level, and sampling must reproduce the pattern.
func TestOverfitTinyCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := tinyConfig()
	m := NewGPT(cfg, rng)
	opt := NewAdam(m.Params(), 3e-3)

	// The "language": 4 5 6 7 4 5 6 7 ...
	seq := []int{4, 5, 6, 7, 4, 5, 6, 7, 4, 5, 6, 7}
	batch := [][]int{seq, seq, seq, seq}

	var first, last float64
	for step := 0; step < 150; step++ {
		opt.ZeroGrad()
		loss, val := m.LMLoss(batch, 0)
		if step == 0 {
			first = val
		}
		last = val
		tensor.Backward(loss)
		opt.ClipGradNorm(1)
		opt.Step()
	}
	uniform := math.Log(float64(cfg.Vocab))
	if first < uniform*0.5 {
		t.Errorf("initial loss %.3f suspiciously low (uniform=%.3f)", first, uniform)
	}
	if last > 0.2 {
		t.Errorf("failed to overfit: final loss %.3f", last)
	}

	// Greedy sampling continues the pattern.
	res := m.Generate(rng, []int{4, 5, 6}, 5, 0, 0, -1)
	want := []int{7, 4, 5, 6, 7}
	for i, id := range res.Tokens[3:] {
		if id != want[i] {
			t.Fatalf("generated %v, want continuation %v", res.Tokens[3:], want)
		}
	}
}

// TestSamplerMatchesBatchForward verifies the KV-cache incremental
// path computes exactly the same logits as the tape-based batch path.
func TestSamplerMatchesBatchForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewGPT(tinyConfig(), rng)
	seq := []int{3, 9, 1, 14, 7, 2}

	logits, T := m.Logits([][]int{seq}, 0)
	if T != len(seq) {
		t.Fatal("unexpected padding")
	}

	s := NewSampler(m)
	for pos, id := range seq {
		row, _ := s.Next(id)
		for j := range row {
			if math.Abs(row[j]-logits.At(pos, j)) > 1e-9 {
				t.Fatalf("pos %d logit %d: incremental %.12f vs batch %.12f",
					pos, j, row[j], logits.At(pos, j))
			}
		}
	}
}

func TestSamplerValueMatchesBatchForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewGPT(tinyConfig(), rng)
	seq := []int{5, 11, 2}
	_, values, _ := m.LogitsAndValues([][]int{seq}, 0)

	s := NewSampler(m)
	for pos, id := range seq {
		_, v := s.Next(id)
		if math.Abs(v-values.At(pos, 0)) > 1e-9 {
			t.Fatalf("pos %d value: incremental %.12f vs batch %.12f", pos, v, values.At(pos, 0))
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewGPT(tinyConfig(), rng)
	c := m.Clone()
	before := c.TokEmb.Data[0]
	m.TokEmb.Data[0] += 42
	if c.TokEmb.Data[0] != before {
		t.Error("clone shares storage with original")
	}
	// Both produce identical outputs until the original diverges.
	m.TokEmb.Data[0] -= 42
	a, _ := m.Logits([][]int{{1, 2}}, 0)
	b, _ := c.Logits([][]int{{1, 2}}, 0)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatal("clone diverges from original")
		}
	}
}

func TestGenerateRespectsEOSAndContext(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := tinyConfig()
	m := NewGPT(cfg, rng)
	res := m.Generate(rng, []int{1}, 100, 1.0, 0, -1)
	if len(res.Tokens) > cfg.Ctx {
		t.Errorf("generated past context: %d tokens", len(res.Tokens))
	}
	if len(res.LogProbs) != len(res.Tokens)-res.PromptN {
		t.Errorf("logprobs length %d vs generated %d", len(res.LogProbs), len(res.Tokens)-res.PromptN)
	}
	for _, lp := range res.LogProbs {
		if lp > 0 || math.IsNaN(lp) {
			t.Errorf("invalid log-prob %v", lp)
		}
	}
}

func TestSampleTokenTemperatureZeroIsArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := []float64{0.1, 2.5, -1, 2.4}
	for i := 0; i < 10; i++ {
		if id := SampleToken(rng, logits, 0, 0); id != 1 {
			t.Fatalf("argmax sampling returned %d", id)
		}
	}
}

func TestSampleTokenTopKRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := []float64{10, 9, -50, -50, -50}
	for i := 0; i < 100; i++ {
		id := SampleToken(rng, logits, 1.0, 2)
		if id != 0 && id != 1 {
			t.Fatalf("top-2 sampling escaped the top set: %d", id)
		}
	}
}

func TestAdamReducesLossOnQuadratic(t *testing.T) {
	p := tensor.Param(1, 4)
	copy(p.Data, []float64{5, -3, 2, 8})
	opt := NewAdam([]*tensor.Tensor{p}, 0.1)
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		loss := tensor.Mean(tensor.Square(p))
		tensor.Backward(loss)
		opt.Step()
	}
	for i, v := range p.Data {
		if math.Abs(v) > 0.05 {
			t.Errorf("param %d did not converge to 0: %v", i, v)
		}
	}
}

func TestGradNormClip(t *testing.T) {
	p := tensor.Param(1, 2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	opt := NewAdam([]*tensor.Tensor{p}, 0.1)
	pre := opt.ClipGradNorm(1)
	if math.Abs(pre-5) > 1e-9 {
		t.Errorf("pre-clip norm = %v, want 5", pre)
	}
	if n := opt.GradNorm(); math.Abs(n-1) > 1e-9 {
		t.Errorf("post-clip norm = %v, want 1", n)
	}
}

func TestFlattenSetFlatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewGPT(tinyConfig(), rng)
	flat := m.FlattenParams(nil)
	if len(flat) != m.NumParams() {
		t.Fatalf("flattened %d scalars, NumParams %d", len(flat), m.NumParams())
	}
	if got := NumParamsOf(m.Cfg); got != m.NumParams() {
		t.Fatalf("NumParamsOf = %d, model has %d", got, m.NumParams())
	}

	m2 := NewGPT(tinyConfig(), rand.New(rand.NewSource(10)))
	if err := m2.SetFlatParams(flat); err != nil {
		t.Fatalf("SetFlatParams: %v", err)
	}
	flat2 := m2.FlattenParams(nil)
	for i := range flat {
		if flat[i] != flat2[i] {
			t.Fatalf("scalar %d differs after round trip: %v vs %v", i, flat[i], flat2[i])
		}
	}
	if err := m2.SetFlatParams(flat[:len(flat)-1]); err == nil {
		t.Error("SetFlatParams accepted a short vector")
	}
}

func TestEncodeDecodeWeightsBitExact(t *testing.T) {
	w := []float64{0, 1, -1, math.Pi, 1e-300, -1e300, math.Inf(1), 0.1 + 0.2}
	s := EncodeWeights(w)
	if s2 := EncodeWeights(w); s2 != s {
		t.Fatal("encoding is not stable across calls")
	}
	got, err := DecodeWeights(s)
	if err != nil {
		t.Fatalf("DecodeWeights: %v", err)
	}
	if len(got) != len(w) {
		t.Fatalf("decoded %d scalars, want %d", len(got), len(w))
	}
	for i := range w {
		if math.Float64bits(got[i]) != math.Float64bits(w[i]) {
			t.Errorf("scalar %d not bit-exact: %x vs %x", i, math.Float64bits(got[i]), math.Float64bits(w[i]))
		}
	}
	if _, err := DecodeWeights("not base64!!"); err == nil {
		t.Error("DecodeWeights accepted invalid base64")
	}
	if _, err := DecodeWeights("AAAA"); err == nil {
		t.Error("DecodeWeights accepted a length not divisible by 8")
	}
}
