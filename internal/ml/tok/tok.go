// Package tok implements ChatFuzz's machine-language tokenizer. The
// paper tokenises raw machine code — its Fig. 1 shows the stream as
// 16-bit hex groups ("3a7f 0e19 5aa0 c401 …") — so a token here is one
// 16-bit parcel of an instruction word and every 32-bit instruction is
// a (low, high) parcel pair.
//
// This representation is what makes training step 2 meaningful: the
// model must learn to pair parcels into legal encodings, and the
// disassembler reward penalises illegal pairings.
//chatfuzz:deterministic package
package tok

import (
	"fmt"
	"sort"
)

// Special token ids.
const (
	BOS = 0 // beginning of function
	EOS = 1 // end of function
	PAD = 2 // batch padding
	UNK = 3 // out-of-vocabulary parcel
)

// NumSpecial is the number of reserved token ids.
const NumSpecial = 4

// Tokenizer maps 16-bit instruction parcels to token ids.
type Tokenizer struct {
	parcels []uint16       // token id - NumSpecial -> parcel
	index   map[uint16]int // parcel -> token id
}

// Train builds a vocabulary from the corpus, keeping the maxVocab most
// frequent parcels (0 keeps all).
func Train(functions [][]uint32, maxVocab int) *Tokenizer {
	freq := make(map[uint16]int)
	for _, fn := range functions {
		for _, w := range fn {
			freq[uint16(w)]++
			freq[uint16(w>>16)]++
		}
	}
	parcels := make([]uint16, 0, len(freq))
	for p := range freq {
		parcels = append(parcels, p)
	}
	sort.Slice(parcels, func(i, j int) bool {
		if freq[parcels[i]] != freq[parcels[j]] {
			return freq[parcels[i]] > freq[parcels[j]]
		}
		return parcels[i] < parcels[j]
	})
	if maxVocab > 0 && len(parcels) > maxVocab-NumSpecial {
		parcels = parcels[:maxVocab-NumSpecial]
	}
	t := &Tokenizer{parcels: parcels, index: make(map[uint16]int, len(parcels))}
	for i, p := range parcels {
		t.index[p] = NumSpecial + i
	}
	return t
}

// Vocab returns the total vocabulary size including special tokens.
func (t *Tokenizer) Vocab() int { return NumSpecial + len(t.parcels) }

// TokenOf returns the id of a parcel (UNK if out of vocabulary).
func (t *Tokenizer) TokenOf(parcel uint16) int {
	if id, ok := t.index[parcel]; ok {
		return id
	}
	return UNK
}

// ParcelOf returns the parcel of a token id; ok=false for special
// tokens.
func (t *Tokenizer) ParcelOf(id int) (uint16, bool) {
	if id < NumSpecial || id-NumSpecial >= len(t.parcels) {
		return 0, false
	}
	return t.parcels[id-NumSpecial], true
}

// Encode converts instruction words to a token sequence:
// BOS p0.lo p0.hi p1.lo p1.hi … EOS.
func (t *Tokenizer) Encode(words []uint32) []int {
	out := make([]int, 0, 2*len(words)+2)
	out = append(out, BOS)
	out = append(out, t.EncodeBody(words)...)
	out = append(out, EOS)
	return out
}

// EncodeBody converts instruction words to parcel tokens without
// BOS/EOS framing (prompt construction).
func (t *Tokenizer) EncodeBody(words []uint32) []int {
	out := make([]int, 0, 2*len(words))
	for _, w := range words {
		out = append(out, t.TokenOf(uint16(w)), t.TokenOf(uint16(w>>16)))
	}
	return out
}

// Decode reassembles instruction words from a token stream: special
// tokens are skipped, consecutive parcels are paired (low, high), and
// a trailing unpaired parcel is dropped. UNK decodes to parcel 0x0000,
// which yields an invalid instruction — exactly the penalty signal the
// disassembler reward needs.
func (t *Tokenizer) Decode(tokens []int) []uint32 {
	var parcels []uint16
	for _, id := range tokens {
		if id == UNK {
			parcels = append(parcels, 0)
			continue
		}
		if p, ok := t.ParcelOf(id); ok {
			parcels = append(parcels, p)
		}
	}
	words := make([]uint32, 0, len(parcels)/2)
	for i := 0; i+1 < len(parcels); i += 2 {
		words = append(words, uint32(parcels[i])|uint32(parcels[i+1])<<16)
	}
	return words
}

// String renders a token for debugging.
func (t *Tokenizer) String(id int) string {
	switch id {
	case BOS:
		return "<bos>"
	case EOS:
		return "<eos>"
	case PAD:
		return "<pad>"
	case UNK:
		return "<unk>"
	}
	if p, ok := t.ParcelOf(id); ok {
		return fmt.Sprintf("%04x", p)
	}
	return fmt.Sprintf("<bad:%d>", id)
}
