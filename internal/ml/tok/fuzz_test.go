package tok

import (
	"encoding/binary"
	"testing"
)

// wordsOf reassembles the fuzzer's byte stream into instruction words
// (the tokenizer's input granularity).
func wordsOf(data []byte) []uint32 {
	words := make([]uint32, 0, len(data)/4)
	for i := 0; i+3 < len(data); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(data[i:]))
	}
	return words
}

// FuzzCorpusTokenRoundTrip checks the tokenizer's core invariants on
// arbitrary corpora:
//
//  1. With an uncapped vocabulary trained on the words themselves,
//     Decode(Encode(words)) reproduces the words exactly — every
//     parcel is in vocabulary, so the parcel pairing must be lossless.
//  2. With a capped vocabulary (OOV parcels map to UNK, which decodes
//     as parcel 0x0000), the word count is still preserved: framing
//     tokens are skipped and parcels stay paired.
func FuzzCorpusTokenRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x13, 0x00, 0x00, 0x00})                         // NOP
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00}) // extremes
	f.Add([]byte{0xB3, 0x05, 0xC6, 0x00, 0x93, 0x85, 0x15, 0x00, 0x63, 0x08, 0xC6, 0x00})
	f.Add([]byte{1, 2, 3}) // sub-word tail is dropped
	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		if len(words) == 0 {
			return
		}

		full := Train([][]uint32{words}, 0)
		got := full.Decode(full.Encode(words))
		if len(got) != len(words) {
			t.Fatalf("full-vocab round trip changed length: %d -> %d", len(words), len(got))
		}
		for i := range words {
			if got[i] != words[i] {
				t.Fatalf("word %d: %#08x -> %#08x", i, words[i], got[i])
			}
		}

		small := Train([][]uint32{words}, NumSpecial+1)
		lossy := small.Decode(small.Encode(words))
		if len(lossy) != len(words) {
			t.Fatalf("capped-vocab round trip changed length: %d -> %d", len(words), len(lossy))
		}
		// Every token must render for debugging, including UNK paths.
		for _, id := range small.Encode(words) {
			if small.String(id) == "" {
				t.Fatalf("token %d renders as empty string", id)
			}
		}
	})
}
