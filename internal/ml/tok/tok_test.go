package tok

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/corpus"
	"chatfuzz/internal/isa"
)

func testCorpus() [][]uint32 {
	c := corpus.Generate(corpus.Config{Seed: 1, Functions: 300, MinLen: 12, MaxLen: 40})
	return c.Functions
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	fns := testCorpus()
	tk := Train(fns, 0)
	for i, fn := range fns[:50] {
		tokens := tk.Encode(fn)
		if tokens[0] != BOS || tokens[len(tokens)-1] != EOS {
			t.Fatalf("function %d: missing BOS/EOS framing", i)
		}
		words := tk.Decode(tokens)
		if len(words) != len(fn) {
			t.Fatalf("function %d: roundtrip length %d vs %d", i, len(words), len(fn))
		}
		for j := range words {
			if words[j] != fn[j] {
				t.Fatalf("function %d word %d: %#08x vs %#08x", i, j, words[j], fn[j])
			}
		}
	}
}

func TestVocabIsCompact(t *testing.T) {
	fns := testCorpus()
	tk := Train(fns, 0)
	if tk.Vocab() > 4096 {
		t.Errorf("vocabulary too large for the bounded corpus: %d", tk.Vocab())
	}
	if tk.Vocab() < 100 {
		t.Errorf("vocabulary suspiciously small: %d", tk.Vocab())
	}
}

func TestMaxVocabTruncation(t *testing.T) {
	fns := testCorpus()
	tk := Train(fns, 128)
	if tk.Vocab() != 128 {
		t.Errorf("Vocab = %d, want 128", tk.Vocab())
	}
	// Rare parcels now encode as UNK, and UNK decodes to an invalid
	// word (0x.... with a zero parcel), feeding the Eq.1 penalty.
	full := Train(fns, 0)
	unkSeen := false
	for _, fn := range fns {
		for _, id := range tk.EncodeBody(fn) {
			if id == UNK {
				unkSeen = true
			}
		}
	}
	if full.Vocab() > 128 && !unkSeen {
		t.Error("expected some UNK tokens after truncation")
	}
}

func TestDecodeSkipsSpecialsAndDropsTail(t *testing.T) {
	fns := testCorpus()
	tk := Train(fns, 0)
	w := fns[0][0]
	toks := []int{BOS, tk.TokenOf(uint16(w)), PAD, tk.TokenOf(uint16(w >> 16)), EOS,
		tk.TokenOf(uint16(w))} // trailing unpaired parcel
	words := tk.Decode(toks)
	if len(words) != 1 || words[0] != w {
		t.Fatalf("Decode = %#v, want [%#08x]", words, w)
	}
}

func TestUNKDecodesInvalid(t *testing.T) {
	fns := testCorpus()
	tk := Train(fns, 0)
	words := tk.Decode([]int{UNK, UNK})
	if len(words) != 1 {
		t.Fatalf("want 1 word, got %d", len(words))
	}
	if isa.Decode(words[0]).Valid() {
		t.Error("UNK pair should decode to an invalid instruction")
	}
}

func TestFrequencyRankedIDs(t *testing.T) {
	// The NOP parcels are extremely common in any corpus that contains
	// NOPs; its low parcel (0x0013) should get a small id.
	fns := testCorpus()
	tk := Train(fns, 0)
	id := tk.TokenOf(0x0013)
	if id == UNK {
		t.Skip("corpus variant without 0x0013 parcels")
	}
	if id > tk.Vocab()/2 {
		t.Errorf("common parcel got a high id (%d of %d): frequency ranking broken?", id, tk.Vocab())
	}
}

func TestTokenStrings(t *testing.T) {
	tk := Train(testCorpus(), 0)
	if tk.String(BOS) != "<bos>" || tk.String(UNK) != "<unk>" {
		t.Error("special token names wrong")
	}
	if s := tk.String(NumSpecial); len(s) != 4 {
		t.Errorf("parcel token renders as %q, want 4 hex digits", s)
	}
}

func TestEncodeBodyPairsPerWord(t *testing.T) {
	tk := Train(testCorpus(), 0)
	rng := rand.New(rand.NewSource(2))
	words := make([]uint32, 10)
	for i := range words {
		words[i] = uint32(rng.Int63())
	}
	if got := len(tk.EncodeBody(words)); got != 20 {
		t.Errorf("EncodeBody emitted %d tokens for 10 words, want 20", got)
	}
}
