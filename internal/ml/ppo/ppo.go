// Package ppo implements Proximal Policy Optimization for the
// language model, in the style of TRL's PPOTrainer, which the paper
// uses for training steps 2 and 3: clipped surrogate objective, a
// shared-backbone value head, GAE advantages, a per-token KL penalty
// against a frozen reference model, and KL/reward/loss monitoring
// ("we monitored the PPO algorithm's loss, the Kullback-Leibler
// divergence between optimization policies, and the mean rewards").
//chatfuzz:deterministic package
package ppo

import (
	"math"
	"math/rand"

	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/tensor"
)

// Config holds the PPO hyper-parameters.
type Config struct {
	LR           float64 // Adam learning rate
	ClipEps      float64 // PPO clip range ε
	KLCoef       float64 // per-token KL penalty coefficient β
	VFCoef       float64 // value-loss weight
	Gamma        float64 // discount
	Lambda       float64 // GAE λ
	Epochs       int     // optimisation epochs per rollout batch
	MaxNewTokens int     // generation budget per prompt
	Temperature  float64 // sampling temperature
	TopK         int     // top-k sampling filter (0 = off)
	GradClip     float64 // global gradient-norm clip
	EOS          int     // end-of-sequence token id
	PadID        int     // padding token id
}

// DefaultConfig returns TRL-like defaults.
func DefaultConfig(eos, pad int) Config {
	return Config{
		LR: 3e-4, ClipEps: 0.2, KLCoef: 0.1, VFCoef: 0.5,
		Gamma: 1.0, Lambda: 0.95, Epochs: 2, MaxNewTokens: 48,
		Temperature: 1.0, TopK: 0, GradClip: 1.0, EOS: eos, PadID: pad,
	}
}

// RewardFunc scores one sampled sequence; tokens is prompt+generation
// and promptN the prompt length. Higher is better.
type RewardFunc func(tokens []int, promptN int) float64

// Stats reports one PPO step's monitored quantities.
type Stats struct {
	MeanReward float64 // mean environment (task) reward
	MeanKL     float64 // mean per-token KL(π_old ‖ π_ref) estimate
	PolicyLoss float64
	ValueLoss  float64
	ClipFrac   float64 // fraction of tokens hitting the clip range
	MeanLen    float64 // mean generated length
}

// Trainer optimises a policy model against a reward function.
type Trainer struct {
	Policy *nn.GPT
	Ref    *nn.GPT // frozen reference for the KL penalty
	Opt    *nn.Adam
	Cfg    Config

	rng *rand.Rand
}

// NewTrainer clones the policy as the frozen reference and sets up the
// optimizer.
func NewTrainer(policy *nn.GPT, cfg Config, rng *rand.Rand) *Trainer {
	return NewTrainerWithRef(policy, policy.Clone(), cfg, rng)
}

// NewTrainerWithRef builds a trainer over an explicit policy/reference
// pair instead of cloning the policy. Fleet learning uses it to
// construct per-shard replicas: the policy is a shard's deep-copied
// model and ref a frozen copy of the offline-trained base, so every
// replica's KL penalty stays anchored to the same distribution no
// matter how the replicas drift between averaging barriers. rng may be
// nil when the caller only ever feeds externally collected rollouts
// through StepRollouts (Step is the only sampler of the rng).
func NewTrainerWithRef(policy, ref *nn.GPT, cfg Config, rng *rand.Rand) *Trainer {
	return &Trainer{
		Policy: policy,
		Ref:    ref,
		Opt:    nn.NewAdam(policy.Params(), cfg.LR),
		Cfg:    cfg,
		rng:    rng,
	}
}

// Rollout is one sampled trajectory plus its per-token quantities.
// The fuzzing loop builds these from its own generations (so the same
// simulation both fuzzes the DUT and rewards the model); Step builds
// them internally from prompts.
type Rollout struct {
	Tokens  []int     // prompt + generation
	PromptN int       // prompt length
	LogpOld []float64 // per generated token, from rollout time
	Values  []float64 // per generated token, from rollout time
	Score   float64   // sequence-level task reward

	rewards []float64 // per generated token (KL penalty + terminal score)
	adv     []float64
	returns []float64
}

// FromGeneration wraps a sampler result into a scored rollout.
func FromGeneration(res nn.GenerateResult, score float64) *Rollout {
	return &Rollout{
		Tokens:  res.Tokens,
		PromptN: res.PromptN,
		LogpOld: res.LogProbs,
		Values:  res.Values,
		Score:   score,
	}
}

// Step runs one PPO iteration: sample a continuation for every
// prompt, score them, compute GAE advantages, and optimise the
// clipped surrogate for Cfg.Epochs epochs.
func (t *Trainer) Step(prompts [][]int, reward RewardFunc) Stats {
	cfg := t.Cfg
	rolls := make([]*Rollout, 0, len(prompts))
	for _, p := range prompts {
		res := t.Policy.Generate(t.rng, p, cfg.MaxNewTokens, cfg.Temperature, cfg.TopK, cfg.EOS)
		if len(res.Tokens) == res.PromptN {
			continue // context exhausted; nothing generated
		}
		rolls = append(rolls, FromGeneration(res, reward(res.Tokens, res.PromptN)))
	}
	return t.StepRollouts(rolls)
}

// StepRollouts runs the PPO update on externally collected rollouts.
func (t *Trainer) StepRollouts(rolls []*Rollout) Stats {
	cfg := t.Cfg
	var stats Stats
	if len(rolls) == 0 {
		return stats
	}

	// --- Reference log-probs and per-token rewards ---
	seqs := make([][]int, len(rolls))
	for i, r := range rolls {
		seqs[i] = r.Tokens
	}
	refLogits, refT := t.Ref.Logits(seqs, cfg.PadID)
	var klSum float64
	var klCount int
	for i, r := range rolls {
		gen := len(r.LogpOld)
		r.rewards = make([]float64, gen)
		for g := 0; g < gen; g++ {
			pos := r.PromptN + g // index of the generated token
			row := refLogits.Row((i*refT + pos - 1))
			refLp := tensor.LogSoftmax(row)[r.Tokens[pos]]
			kl := r.LogpOld[g] - refLp
			klSum += kl
			klCount++
			r.rewards[g] = -cfg.KLCoef * kl
		}
		r.rewards[gen-1] += r.Score
		stats.MeanReward += r.Score
		stats.MeanLen += float64(gen)
	}
	stats.MeanReward /= float64(len(rolls))
	stats.MeanLen /= float64(len(rolls))
	if klCount > 0 {
		stats.MeanKL = klSum / float64(klCount)
	}

	// --- GAE ---
	var advMean, advVar float64
	var advN int
	for _, r := range rolls {
		gen := len(r.rewards)
		r.adv = make([]float64, gen)
		r.returns = make([]float64, gen)
		next := 0.0     // V(s_{T}) = 0 at episode end
		nextAdv := 0.0
		for g := gen - 1; g >= 0; g-- {
			delta := r.rewards[g] + cfg.Gamma*next - r.Values[g]
			nextAdv = delta + cfg.Gamma*cfg.Lambda*nextAdv
			r.adv[g] = nextAdv
			r.returns[g] = r.adv[g] + r.Values[g]
			next = r.Values[g]
		}
		for _, a := range r.adv {
			advMean += a
			advN++
		}
	}
	advMean /= float64(advN)
	for _, r := range rolls {
		for _, a := range r.adv {
			d := a - advMean
			advVar += d * d
		}
	}
	advStd := math.Sqrt(advVar/float64(advN)) + 1e-8
	for _, r := range rolls {
		for g := range r.adv {
			r.adv[g] = (r.adv[g] - advMean) / advStd
		}
	}

	// --- Optimisation phase ---
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		pLoss, vLoss, clipFrac := t.optimize(rolls)
		if epoch == cfg.Epochs-1 {
			stats.PolicyLoss, stats.ValueLoss, stats.ClipFrac = pLoss, vLoss, clipFrac
		}
	}
	return stats
}

// optimize runs one epoch of clipped-surrogate optimisation over the
// rollouts and returns (policyLoss, valueLoss, clipFraction).
func (t *Trainer) optimize(rolls []*Rollout) (float64, float64, float64) {
	cfg := t.Cfg
	seqs := make([][]int, len(rolls))
	for i, r := range rolls {
		seqs[i] = r.Tokens
	}
	logits, values, T := t.Policy.LogitsAndValues(seqs, cfg.PadID)
	rows := logits.R

	// Per-row target ids, old logps, advantages, returns, mask.
	ids := make([]int, rows)
	logpOld := tensor.New(rows, 1)
	adv := tensor.New(rows, 1)
	ret := tensor.New(rows, 1)
	mask := tensor.New(rows, 1)
	count := 0
	for i, r := range rolls {
		for g := range r.LogpOld {
			pos := r.PromptN + g
			row := i*T + pos - 1 // logits row that predicts tokens[pos]
			ids[row] = r.Tokens[pos]
			logpOld.Data[row] = r.LogpOld[g]
			adv.Data[row] = r.adv[g]
			ret.Data[row] = r.returns[g]
			mask.Data[row] = 1
			count++
		}
	}

	logpNew := tensor.GatherLogSoftmax(logits, ids)
	ratio := tensor.Exp(tensor.Sub(logpNew, logpOld))
	s1 := tensor.Mul(ratio, adv)
	s2 := tensor.Mul(tensor.Clamp(ratio, 1-cfg.ClipEps, 1+cfg.ClipEps), adv)
	policyLoss := tensor.Scale(tensor.Sum(tensor.Min(s1, s2)), -1/float64(count))

	vErr := tensor.Mul(tensor.Square(tensor.Sub(values, ret)), mask)
	valueLoss := tensor.Scale(tensor.Sum(vErr), 1/float64(count))

	loss := tensor.Add(policyLoss, tensor.Scale(valueLoss, cfg.VFCoef))

	t.Opt.ZeroGrad()
	tensor.Backward(loss)
	if cfg.GradClip > 0 {
		t.Opt.ClipGradNorm(cfg.GradClip)
	}
	t.Opt.Step()

	clipped := 0
	for i := 0; i < rows; i++ {
		if mask.Data[i] == 1 && math.Abs(ratio.Data[i]-1) > cfg.ClipEps {
			clipped++
		}
	}
	return policyLoss.Data[0], valueLoss.Data[0], float64(clipped) / float64(count)
}
