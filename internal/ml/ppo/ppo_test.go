package ppo

import (
	"math"
	"math/rand"
	"testing"

	"chatfuzz/internal/ml/nn"
)

func tinyModel(seed int64) (*nn.GPT, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	cfg := nn.Config{Vocab: 12, Ctx: 24, Dim: 24, Heads: 2, Layers: 2}
	return nn.NewGPT(cfg, rng), rng
}

// TestRewardIncreasesOnBandit trains the policy to emit a specific
// token: reward = count of token 7 in the generation. Mean reward must
// rise substantially — the canonical PPO smoke test.
func TestRewardIncreasesOnBandit(t *testing.T) {
	m, rng := tinyModel(1)
	cfg := DefaultConfig(1 /*eos*/, 2 /*pad*/)
	cfg.MaxNewTokens = 8
	cfg.KLCoef = 0.02
	cfg.LR = 1e-3
	tr := NewTrainer(m, cfg, rng)

	reward := func(tokens []int, promptN int) float64 {
		score := 0.0
		for _, id := range tokens[promptN:] {
			if id == 7 {
				score++
			}
		}
		return score
	}
	prompts := [][]int{{0, 5}, {0, 6}, {0, 8}, {0, 9}}

	var early, late float64
	const steps = 40
	for i := 0; i < steps; i++ {
		st := tr.Step(prompts, reward)
		if i < 5 {
			early += st.MeanReward / 5
		}
		if i >= steps-5 {
			late += st.MeanReward / 5
		}
	}
	if late <= early+0.5 {
		t.Errorf("PPO failed to improve reward: early %.2f late %.2f", early, late)
	}
}

func TestKLStaysFiniteAndMonitored(t *testing.T) {
	m, rng := tinyModel(2)
	cfg := DefaultConfig(1, 2)
	cfg.MaxNewTokens = 6
	tr := NewTrainer(m, cfg, rng)
	reward := func(tokens []int, promptN int) float64 { return 1 }
	for i := 0; i < 10; i++ {
		st := tr.Step([][]int{{0, 3}, {0, 4}}, reward)
		if math.IsNaN(st.MeanKL) || math.IsInf(st.MeanKL, 0) {
			t.Fatalf("step %d: KL = %v", i, st.MeanKL)
		}
		if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) {
			t.Fatalf("step %d: NaN loss", i)
		}
	}
}

func TestKLPenaltyRestrainsDrift(t *testing.T) {
	// With a huge KL coefficient and zero task reward, the policy
	// should stay close to the reference: KL remains small.
	m, rng := tinyModel(3)
	cfg := DefaultConfig(1, 2)
	cfg.MaxNewTokens = 6
	cfg.KLCoef = 5.0
	tr := NewTrainer(m, cfg, rng)
	reward := func(tokens []int, promptN int) float64 { return 0 }
	var klLast float64
	for i := 0; i < 15; i++ {
		st := tr.Step([][]int{{0, 3}, {0, 4}, {0, 5}}, reward)
		klLast = st.MeanKL
	}
	if math.Abs(klLast) > 0.5 {
		t.Errorf("KL drifted to %.3f despite strong penalty", klLast)
	}
}

func TestValueHeadLearnsConstantReward(t *testing.T) {
	// With constant terminal reward, the value loss should shrink as
	// the critic learns the return.
	m, rng := tinyModel(4)
	cfg := DefaultConfig(1, 2)
	cfg.MaxNewTokens = 5
	cfg.KLCoef = 0
	cfg.LR = 2e-3
	tr := NewTrainer(m, cfg, rng)
	reward := func(tokens []int, promptN int) float64 { return 3 }
	var first, last float64
	for i := 0; i < 30; i++ {
		st := tr.Step([][]int{{0, 3}, {0, 7}}, reward)
		if i == 0 {
			first = st.ValueLoss
		}
		last = st.ValueLoss
	}
	if last >= first {
		t.Errorf("value loss did not decrease: first %.3f last %.3f", first, last)
	}
}

func TestStatsShape(t *testing.T) {
	m, rng := tinyModel(5)
	cfg := DefaultConfig(1, 2)
	cfg.MaxNewTokens = 4
	tr := NewTrainer(m, cfg, rng)
	st := tr.Step([][]int{{0, 3}}, func(tokens []int, promptN int) float64 { return 1 })
	if st.MeanLen <= 0 || st.MeanLen > 4 {
		t.Errorf("MeanLen = %v", st.MeanLen)
	}
	if st.ClipFrac < 0 || st.ClipFrac > 1 {
		t.Errorf("ClipFrac = %v", st.ClipFrac)
	}
	if st.MeanReward != 1 {
		t.Errorf("MeanReward = %v, want 1", st.MeanReward)
	}
}

func TestReferenceModelFrozen(t *testing.T) {
	m, rng := tinyModel(6)
	cfg := DefaultConfig(1, 2)
	cfg.MaxNewTokens = 4
	tr := NewTrainer(m, cfg, rng)
	refBefore := append([]float64(nil), tr.Ref.TokEmb.Data...)
	for i := 0; i < 5; i++ {
		tr.Step([][]int{{0, 3}}, func(tokens []int, promptN int) float64 { return 1 })
	}
	for i, v := range tr.Ref.TokEmb.Data {
		if v != refBefore[i] {
			t.Fatal("reference model was mutated by training")
		}
	}
	// And the policy itself must have moved.
	moved := false
	for i, v := range tr.Policy.TokEmb.Data {
		if v != tr.Ref.TokEmb.Data[i] {
			moved = true
			break
		}
		_ = i
	}
	if !moved {
		t.Error("policy parameters did not change")
	}
}

// TestTrainerWithSharedRefUpdatesOnlyPolicy: a trainer built over an
// explicit (policy, ref) pair — the fleet-replica construction — must
// optimise the policy while leaving the reference bit-untouched, and
// StepRollouts must work with a nil rng (replicas never call Step).
func TestTrainerWithExplicitRef(t *testing.T) {
	base, rng := tinyModel(21)
	policy := base.Clone()
	ref := base.Clone()
	tr := NewTrainerWithRef(policy, ref, DefaultConfig(1, 2), nil)

	// Collect rollouts with a seeded rng, then feed them through the
	// rng-free update path.
	res := policy.Generate(rng, []int{0, 3}, 6, 1.0, 0, 1)
	if len(res.Tokens) == res.PromptN {
		t.Skip("nothing generated")
	}
	st := tr.StepRollouts([]*Rollout{FromGeneration(res, 1.0)})
	if st.MeanReward != 1.0 {
		t.Errorf("mean reward %v, want 1", st.MeanReward)
	}

	refFlat, baseFlat := ref.FlattenParams(nil), base.FlattenParams(nil)
	for i := range refFlat {
		if refFlat[i] != baseFlat[i] {
			t.Fatal("reference model drifted during the update")
		}
	}
	polFlat := policy.FlattenParams(nil)
	moved := false
	for i := range polFlat {
		if polFlat[i] != baseFlat[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("policy did not move after StepRollouts")
	}
}
