// Package mem provides the sparse physical memory shared by the
// golden-model ISS and the DUT core models, plus the loadable image
// format produced by the program builder.
//chatfuzz:deterministic package
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const pageBits = 12
const pageSize = 1 << pageBits

// Range describes one mapped physical region. Accesses outside every
// mapped range raise access faults in the simulators, which is the main
// organic source of load/store access-fault coverage during fuzzing.
type Range struct {
	Base uint64
	Size uint64
}

// Contains reports whether [addr, addr+size) lies inside the range.
func (r Range) Contains(addr uint64, size int) bool {
	return addr >= r.Base && addr+uint64(size) <= r.Base+r.Size && addr+uint64(size) >= addr
}

// Memory is a little-endian sparse physical memory. The zero value is
// unusable; construct with New.
//
// Reset is generation-tagged: each page carries the generation it was
// last written in, and Reset just bumps the memory's generation. A page
// left over from an earlier generation reads as zero and is cleared
// lazily on its next write, so Reset costs O(1) instead of scaling with
// every page the memory ever touched — which matters once one reusable
// execution context is shared by a whole fleet of campaign shards and
// its page set grows toward the union of all their tests.
type Memory struct {
	pages  map[uint64]*page
	ranges []Range
	gen    uint64
}

// page is one 4 KiB unit of backing store plus the generation tag that
// makes Reset constant-time.
type page struct {
	gen  uint64
	data []byte
}

// New returns a memory with the given mapped ranges.
func New(ranges ...Range) *Memory {
	rs := make([]Range, len(ranges))
	copy(rs, ranges)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Base < rs[j].Base })
	return &Memory{pages: make(map[uint64]*page), ranges: rs}
}

// Ranges returns the mapped ranges in ascending base order.
func (m *Memory) Ranges() []Range { return m.ranges }

// Mapped reports whether the whole access [addr, addr+size) targets
// mapped memory.
func (m *Memory) Mapped(addr uint64, size int) bool {
	for _, r := range m.ranges {
		if r.Contains(addr, size) {
			return true
		}
	}
	return false
}

// page returns the writable backing store of addr's page, allocating
// it on first use and lazily clearing a page left over from before the
// last Reset.
func (m *Memory) page(addr uint64) []byte {
	key := addr >> pageBits
	p, ok := m.pages[key]
	if !ok {
		p = &page{gen: m.gen, data: make([]byte, pageSize)}
		m.pages[key] = p
	} else if p.gen != m.gen {
		clear(p.data)
		p.gen = m.gen
	}
	return p.data
}

// LoadByte reads one byte without a mapping check (callers check first).
func (m *Memory) LoadByte(addr uint64) byte {
	if p, ok := m.pages[addr>>pageBits]; ok && p.gen == m.gen {
		return p.data[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte writes one byte without a mapping check.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr)[addr&(pageSize-1)] = v
}

// ReadUint reads a little-endian value of 1, 2, 4 or 8 bytes.
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// WriteUint writes a little-endian value of 1, 2, 4 or 8 bytes.
func (m *Memory) WriteUint(addr uint64, v uint64, size int) {
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadWord reads a 32-bit instruction word.
func (m *Memory) ReadWord(addr uint64) uint32 { return uint32(m.ReadUint(addr, 4)) }

// Reset restores the memory to its freshly-constructed state while
// keeping the already-allocated pages for reuse. A Reset memory is
// observationally identical to New with the same ranges (every load of
// an untouched byte returns 0), so a simulator worker can run one test
// per Reset+Load cycle without re-allocating its address space — the
// allocation-free steady state of the batch execution engine. Reset is
// O(1): it bumps the generation, and stale pages are cleared lazily on
// their next write.
func (m *Memory) Reset() {
	m.gen++
}

// Segment is one contiguous chunk of an Image.
type Segment struct {
	Base uint64
	Data []byte
}

// Image is a loadable program: segments plus the entry PC. It is the
// unit the fuzzers hand to both simulators.
type Image struct {
	Entry    uint64
	Segments []Segment
}

// AddWords appends a segment built from little-endian 32-bit words.
func (img *Image) AddWords(base uint64, words []uint32) {
	data := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(data[4*i:], w)
	}
	img.Segments = append(img.Segments, Segment{Base: base, Data: data})
}

// Load copies every segment of the image into memory. It panics if a
// segment falls outside the mapped ranges: images are produced by the
// program builder, so that is a programming error, not a fuzz finding.
// Segments are copied page-wise (one page lookup per page, memmove per
// span) — Load runs twice per fuzz test (DUT and golden model), so the
// naive byte-at-a-time copy was a measurable slice of the hot loop.
func (m *Memory) Load(img Image) {
	for _, seg := range img.Segments {
		if len(seg.Data) > 0 && !m.Mapped(seg.Base, len(seg.Data)) {
			panic(fmt.Sprintf("mem: segment [%#x, +%d) outside mapped ranges", seg.Base, len(seg.Data)))
		}
		addr, data := seg.Base, seg.Data
		for len(data) > 0 {
			p := m.page(addr)
			n := copy(p[addr&(pageSize-1):], data)
			data = data[n:]
			addr += uint64(n)
		}
	}
}

// Standard memory map of the simulated platform. Text and data are
// ordinary RAM (so self-modifying code is possible, which Bug1 needs);
// Tohost is the riscv-tests-style termination device: an 8-byte store
// of a non-zero value there ends the test on both simulators.
const (
	TextBase = 0x8000_0000
	TextSize = 0x0010_0000 // 1 MiB
	DataBase = 0x8010_0000
	DataSize = 0x0010_0000 // 1 MiB
	Tohost   = 0x8020_0000
)

// Platform returns a memory with the standard map.
func Platform() *Memory {
	return New(
		Range{Base: TextBase, Size: TextSize},
		Range{Base: DataBase, Size: DataSize},
		Range{Base: Tohost, Size: 8},
	)
}
