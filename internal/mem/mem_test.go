package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMappedRanges(t *testing.T) {
	m := Platform()
	cases := []struct {
		addr uint64
		size int
		want bool
	}{
		{TextBase, 4, true},
		{TextBase + TextSize - 4, 4, true},
		{TextBase + TextSize - 3, 4, false},
		{TextBase - 1, 1, false},
		{DataBase, 8, true},
		{Tohost, 8, true},
		{Tohost + 1, 8, false},
		{0, 1, false},
		{^uint64(0), 8, false}, // overflow must not wrap into a range
	}
	for _, c := range cases {
		if got := m.Mapped(c.addr, c.size); got != c.want {
			t.Errorf("Mapped(%#x, %d) = %v, want %v", c.addr, c.size, got, c.want)
		}
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	m := Platform()
	f := func(off uint32, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr := DataBase + uint64(off%(DataSize-8))
		m.WriteUint(addr, v, size)
		got := m.ReadUint(addr, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return got == v&mask
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := Platform()
	m.WriteUint(DataBase, 0x0102030405060708, 8)
	if b := m.LoadByte(DataBase); b != 0x08 {
		t.Errorf("little-endian low byte = %#x, want 0x08", b)
	}
	if w := m.ReadWord(DataBase + 4); w != 0x01020304 {
		t.Errorf("high word = %#x, want 0x01020304", w)
	}
}

func TestUnwrittenMemoryReadsZero(t *testing.T) {
	m := Platform()
	if v := m.ReadUint(DataBase+0x1234, 8); v != 0 {
		t.Errorf("fresh memory = %#x, want 0", v)
	}
}

func TestImageLoad(t *testing.T) {
	m := Platform()
	var img Image
	img.AddWords(TextBase, []uint32{0x11223344, 0xAABBCCDD})
	m.Load(img)
	if w := m.ReadWord(TextBase); w != 0x11223344 {
		t.Errorf("word 0 = %#x", w)
	}
	if w := m.ReadWord(TextBase + 4); w != 0xAABBCCDD {
		t.Errorf("word 1 = %#x", w)
	}
}

func TestImageLoadOutsideRangesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Load outside mapped ranges should panic")
		}
	}()
	m := Platform()
	var img Image
	img.AddWords(0x1000, []uint32{1})
	m.Load(img)
}

func TestPageBoundaryStraddle(t *testing.T) {
	m := Platform()
	addr := uint64(DataBase + pageSize - 3) // straddles a page boundary
	m.WriteUint(addr, 0xDEADBEEFCAFEF00D, 8)
	if got := m.ReadUint(addr, 8); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("straddling rw = %#x", got)
	}
}

// TestResetRestoresFreshState: after Reset, a memory must be
// observationally identical to a newly-constructed one — every byte
// reads zero, mappings unchanged — while reusing its pages.
func TestResetRestoresFreshState(t *testing.T) {
	m := Platform()
	addrs := []uint64{TextBase, TextBase + 0x801, DataBase + 0x1234, Tohost}
	for _, a := range addrs {
		m.StoreByte(a, 0xAB)
	}
	m.Reset()
	for _, a := range addrs {
		if got := m.LoadByte(a); got != 0 {
			t.Errorf("after Reset, byte at %#x = %#x, want 0", a, got)
		}
	}
	if !m.Mapped(TextBase, 4) || m.Mapped(0, 1) {
		t.Error("Reset changed the mapped ranges")
	}
	// Reset must also be safe on a memory that never allocated a page.
	New(Range{Base: 0x1000, Size: 0x1000}).Reset()
}

// TestGenerationalResetClearsLazily pins the O(1) Reset contract: a
// page written before a Reset reads as zero afterwards without being
// eagerly cleared, survives interleaved Reset/write/read cycles, and
// stays correct when the same page is rewritten across generations —
// the access pattern of a fleet-shared execution context whose page
// set grows toward the union of every shard's tests.
func TestGenerationalResetClearsLazily(t *testing.T) {
	m := Platform()
	const a = TextBase + 0x40
	for gen := 0; gen < 5; gen++ {
		if got := m.LoadByte(a); got != 0 {
			t.Fatalf("gen %d: stale byte %#x before write", gen, got)
		}
		m.WriteUint(a, uint64(0xA0+gen), 8)
		if got := m.ReadUint(a, 8); got != uint64(0xA0+gen) {
			t.Fatalf("gen %d: read back %#x", gen, got)
		}
		// A partial write after Reset must see a cleared page, not the
		// previous generation's neighbouring bytes.
		m.Reset()
		m.StoreByte(a+1, 0xFF)
		if got := m.ReadUint(a, 8); got != 0xFF00 {
			t.Fatalf("gen %d: partial write over stale page read %#x, want 0xff00", gen, got)
		}
		m.Reset()
	}
}
