// Package engine implements the persistent, pipelined batch execution
// engine behind the fuzzing loop: the component that turns a batch of
// generated programs into simulation outcomes as fast as the hardware
// allows, while keeping every observable result bit-identical to a
// strictly serial execution.
//
// The seed implementation of core.Fuzzer.RunBatch spawned and joined a
// fresh goroutine pool every round, allocated a new platform memory,
// ISS, coverage set and trace buffers for every golden-model run, and
// serialized all accounting behind the round barrier. The engine
// replaces that fork-join body with:
//
//   - a worker pool that lives for the whole campaign (workers are
//     spawned once and fed rounds over a channel, not re-created per
//     round);
//   - per-worker reusable scratch: a platform memory for the golden
//     model, and — when the DUT implements rtl.ReusableDUT — a
//     worker-private rtl.Runner whose caches, predictors and memory
//     are reset instead of re-allocated, plus pooled coverage sets and
//     trace buffers recycled at commit, so the steady-state loop is
//     allocation-free;
//   - in-order commit: Round.Each hands outcomes to the caller in
//     input order as soon as each becomes ready, so scoring, mismatch
//     detection and virtual-clock accounting overlap the simulation of
//     later entries instead of waiting for the whole round.
//
// Determinism: workers only compute; every stateful side effect
// (coverage merge, detector, clock, trajectory) happens in the
// caller's goroutine in input order, exactly as the serial loop
// performed it. A fixed-seed campaign therefore produces bit-identical
// trajectories, detector output and checkpoints on the engine and the
// serial path, regardless of worker count or scheduling.
//
// With a single worker (the default inside campaign shards, where the
// shards themselves are the parallelism) the engine short-circuits the
// channels entirely and executes jobs inline during Each, keeping the
// scratch-reuse benefits without any cross-goroutine traffic.
//
// Sharded fleets can go one step further and share a single
// fleet-level work-stealing pool across every shard engine
// (Config.Pool; see the FleetPool documentation in fleetpool.go for
// the affinity queues, steal policy, helping committers and the
// commit-order invariant that keeps stealing bit-identical).
//chatfuzz:deterministic package
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"chatfuzz/internal/cov"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/telemetry"
	"chatfuzz/internal/trace"
)

// Config parameterises an engine.
type Config struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	// Ignored when Pool is set: the fleet pool's workers execute
	// every round.
	Workers int
	// Inflight bounds concurrently in-flight rounds (<= 0 means 1, the
	// pre-pipelining behaviour: one round must be fully drained with
	// Each before the next Submit). With Inflight N, a caller may keep
	// up to N submitted-but-undrained rounds open, so round N+1
	// simulates while round N's in-order committer drains — the
	// sub-round pipeline. Rounds must still be drained in submission
	// order; each Round's Each commits in input order, so the observable
	// accounting stream is identical to Inflight 1.
	Inflight int
	// Detect additionally runs every test on the golden-model ISS.
	Detect bool
	// Pool, when non-nil, turns the engine into a lightweight
	// submitter into the shared fleet-level work-stealing pool: the
	// engine spawns no workers of its own, and Close releases only
	// the engine, never the pool (the pool is owned by whoever built
	// it). See the FleetPool documentation for the affinity, commit
	// order and determinism contract.
	Pool *FleetPool
	// Telemetry, when non-nil, records per-job build/sim/golden spans
	// on per-worker flight-recorder tracks. Execution-only: spans
	// observe the run and never reach scheduling or checkpointed
	// state; nil disables recording at the cost of one branch per
	// span. In fleet mode the pool's recorder is used when this one
	// is nil.
	Telemetry *telemetry.Recorder
}

// Outcome is the execution result of one program of a round.
type Outcome struct {
	// Res is the DUT simulation result. Zero when Err is set.
	Res rtl.Result
	// Golden is the golden-model commit trace (Detect only).
	Golden []trace.Entry
	// Err reports a program the harness refused to build; the program
	// executed nothing and must be scored as invalid.
	Err error

	pooledRes    bool // Res.Coverage/Res.Trace are engine-pooled scratch
	pooledGolden bool // Golden is engine-pooled scratch
}

// pool is a tiny free-list. The engine prefers it over sync.Pool: no
// per-Put boxing for slice types, and entries survive GC cycles, which
// matters for a steady-state loop whose whole point is not allocating.
type pool[T any] struct {
	mu    sync.Mutex
	items []T
}

func (p *pool[T]) get() (T, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var zero T
	n := len(p.items)
	if n == 0 {
		return zero, false
	}
	it := p.items[n-1]
	p.items[n-1] = zero
	p.items = p.items[:n-1]
	return it, true
}

func (p *pool[T]) put(it T) {
	p.mu.Lock()
	p.items = append(p.items, it)
	p.mu.Unlock()
}

// shared is the engine state workers reference. It deliberately
// excludes *Engine itself so that idle worker goroutines do not keep
// an abandoned engine reachable: once the engine (and its owner) are
// garbage, the Close finalizer fires, stops the workers, and the
// shared state is collected with them.
//
// The scratch pools (coverage sets, trace buffers) stay per engine
// even under a fleet pool: a cov.Set is bound to its shard's coverage
// Space (the calculator merges by Space identity), so sets must not
// wander between shards. The expensive design-level scratch — the
// rtl.Runner and the golden-model memory — lives on the workers
// instead, keyed by design name.
type shared struct {
	dut    rtl.DUT
	design string // dut.Name(), the fleet pool's affinity key
	detect bool
	rec    *telemetry.Recorder // nil = telemetry disabled
	pool   *poolState          // nil outside fleet mode
	helper *worker             // committer-side scratch (fleet mode; only the
	// engine's single committer goroutine touches it)

	sets    pool[*cov.Set]
	traces  pool[[]trace.Entry]
	goldens pool[[]trace.Entry]

	// Round window state. Submit and Each are only ever called from
	// the engine owner's single goroutine (the fuzzer/shard loop), so
	// the free list and live counter need no lock; they live here
	// rather than on Engine so Rounds never reference the Engine
	// itself (see the finalizer note above).
	freeRounds []*Round
	liveRounds int

	// Pipelining and golden snapshot-tree counters (see PipeStats).
	// Atomic: snapshot hits/misses are bumped by concurrent workers;
	// the depth counters only by the owner goroutine, but PipeStats
	// may be read from another goroutine (probes).
	pipelined  atomic.Int64
	maxDepth   atomic.Int64
	snapHits   atomic.Int64
	snapMisses atomic.Int64
}

// PipeStats is a snapshot of an engine's pipelining and golden
// snapshot-tree counters. All counters are cumulative over the
// engine's life; campaign probes report per-round deltas.
type PipeStats struct {
	// PipelinedRounds counts Submits that overlapped an undrained
	// earlier round — the sub-round pipeline actually engaging.
	PipelinedRounds int64
	// MaxInflight is the high-water mark of concurrently in-flight
	// rounds (1 when the window never overlapped).
	MaxInflight int64
	// SnapHits counts golden runs that replayed a snapshot-tree
	// prefix; SnapMisses counts tree-eligible golden runs that found
	// no usable node and executed the body from the prologue snapshot.
	SnapHits   int64
	SnapMisses int64
}

// worker is one simulation context: reusable scratch bound to one
// design at a time. The golden-model platform memory is design-
// independent and lives for the worker's whole life; runners are
// design-specific and cached per design on first build, so a
// migration back to a previously served design re-binds for free.
type worker struct {
	cur     string // claim-time design affinity (fleet pool scheduling)
	bound   string // design of the currently bound runner
	runner  rtl.Runner
	runners map[string]rtl.Runner // design → cached runner (nil entries
	// mark designs whose DUT is not reusable)
	gmem  *mem.Memory      // golden-model platform memory, lazily built
	track *telemetry.Track // per-worker span ring (nil = disabled)

	// Golden-run acceleration state (see golden.go): the decode cache
	// is design-independent (it serves the ISS, revalidated per fetch);
	// the snapshot trees are keyed per design so a shared pool worker
	// can never cross-replay between designs of a mixed fleet.
	dcache *iss.DecodeCache
	trees  map[string]*snapTree
}

func newWorker(sh *shared) *worker {
	w := &worker{track: sh.rec.NewTrack(sh.design + "/worker")}
	w.bind(sh)
	return w
}

// bind points the worker's scratch at sh's design, building the
// design's runner on first encounter. Only a change of design does
// any work — the migration the fleet pool's steal policy minimises.
func (w *worker) bind(sh *shared) {
	if w.bound == sh.design && w.runners != nil {
		return
	}
	if w.runners == nil {
		w.runners = make(map[string]rtl.Runner, 1)
	}
	r, ok := w.runners[sh.design]
	if !ok {
		if rd, reusable := sh.dut.(rtl.ReusableDUT); reusable {
			r = rd.NewRunner()
		}
		w.runners[sh.design] = r
	}
	w.bound, w.runner = sh.design, r
}

// exec runs one program end to end: build, DUT simulation, and (when
// detection is on) the golden-model reference run. All scratch that
// outlives exec (the coverage set and trace buffers referenced by the
// Outcome) comes from the submitting engine's pools; the worker-owned
// runner and golden memory are reset per run.
func (w *worker) exec(r *Round, i int) {
	sh := r.sh
	o := &r.outs[i]
	*o = Outcome{}
	p := r.progs[i]
	t := w.track.Start()
	img, _, err := prog.Build(p)
	w.track.Span(telemetry.SpanBuild, t)
	if err != nil {
		o.Err = err
		r.markReady(i)
		return
	}
	budget := prog.InstructionBudget(len(p.Body))
	if ck := scratchCheck.Load(); ck != nil {
		ck.useBegin(w, "worker")
		defer ck.useEnd(w)
	}
	t = w.track.Start()
	if w.runner != nil {
		set, ok := sh.sets.get()
		if ok {
			set.Reset()
			if ck := scratchCheck.Load(); ck != nil {
				ck.checkOut(set, "cov set")
			}
		} else {
			set = sh.dut.Space().NewSet()
		}
		tr, ok := sh.traces.get()
		if ok {
			if ck := scratchCheck.Load(); ck != nil {
				ck.checkOut(sliceKey(tr), "trace buffer")
			}
		}
		o.Res = w.runner.RunScratch(img, budget, set, tr)
		o.pooledRes = true
	} else {
		o.Res = sh.dut.Run(img, budget)
	}
	w.track.Span(telemetry.SpanSim, t)
	if sh.detect {
		t = w.track.Start()
		if w.gmem == nil {
			w.gmem = mem.Platform()
		}
		w.gmem.Reset()
		buf, ok := sh.goldens.get()
		if ok {
			if ck := scratchCheck.Load(); ck != nil {
				ck.checkOut(sliceKey(buf), "golden buffer")
			}
		}
		o.Golden = w.goldenRun(sh, img, p.Body, budget, buf)
		o.pooledGolden = true
		w.track.Span(telemetry.SpanGolden, t)
	}
	r.markReady(i)
}

// jobRef addresses one entry of an in-flight round.
type jobRef struct {
	r *Round
	i int
}

// Engine executes rounds of programs against one DUT. One engine
// serves one fuzzing campaign (a core.Fuzzer or a campaign shard) for
// its whole lifetime; its workers and scratch persist across rounds.
type Engine struct {
	sh       *shared
	workers  int
	inflight int // round window bound (>= 1)

	jobs chan jobRef
	stop chan struct{}
	once sync.Once

	inline *worker // Workers == 1: synchronous path, no goroutines
}

// New builds an engine over dut and starts its workers.
//
// Engines hold goroutines (when Workers > 1); release them with Close.
// A finalizer closes abandoned engines as a safety net, so a leaked
// engine degrades to garbage, not to a goroutine leak.
func New(dut rtl.DUT, cfg Config) *Engine {
	e := &Engine{
		sh:       &shared{dut: dut, design: dut.Name(), detect: cfg.Detect, rec: cfg.Telemetry},
		stop:     make(chan struct{}),
		inflight: cfg.Inflight,
	}
	if e.inflight < 1 {
		e.inflight = 1
	}
	if cfg.Pool != nil {
		// Fleet mode: the engine is a submitter; the shared pool's
		// workers (and this engine's helping committer) execute the
		// rounds. No goroutines are owned, so Close releases nothing
		// but the Submit guard.
		e.sh.pool = cfg.Pool.ps
		if e.sh.rec == nil {
			e.sh.rec = e.sh.pool.rec
		}
		// The helper's claim affinity starts at the engine's own
		// design so a committer's first help prefers its own round's
		// queue instead of stealing from the longest one.
		e.sh.helper = &worker{cur: e.sh.design,
			track: e.sh.rec.NewTrack(e.sh.design + "/committer")}
		e.workers = cfg.Pool.Workers()
		runtime.SetFinalizer(e, (*Engine).Close)
		return e
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.workers = workers
	if workers == 1 {
		e.inline = newWorker(e.sh)
	} else {
		e.jobs = make(chan jobRef)
		for i := 0; i < workers; i++ {
			go workerLoop(e.sh, e.jobs, e.stop)
		}
	}
	runtime.SetFinalizer(e, (*Engine).Close)
	return e
}

// Workers returns the worker count the engine resolved to.
func (e *Engine) Workers() int { return e.workers }

// Inflight returns the engine's round window bound.
func (e *Engine) Inflight() int { return e.inflight }

// PipeStats returns the engine's cumulative pipelining and golden
// snapshot-tree counters. Safe to call concurrently with execution.
func (e *Engine) PipeStats() PipeStats {
	return PipeStats{
		PipelinedRounds: e.sh.pipelined.Load(),
		MaxInflight:     e.sh.maxDepth.Load(),
		SnapHits:        e.sh.snapHits.Load(),
		SnapMisses:      e.sh.snapMisses.Load(),
	}
}

func workerLoop(sh *shared, jobs <-chan jobRef, stop <-chan struct{}) {
	w := newWorker(sh)
	for {
		select {
		case <-stop:
			return
		case j := <-jobs:
			w.exec(j.r, j.i)
		}
	}
}

// Close stops the workers. The engine must not be used afterwards.
// Close is idempotent and must not be called while a round is in
// flight (between Submit and the end of Each).
func (e *Engine) Close() {
	e.once.Do(func() {
		runtime.SetFinalizer(e, nil)
		close(e.stop)
	})
}

// Submit starts executing a round of programs and returns its handle.
// At most Config.Inflight rounds may be in flight per engine; past the
// window the oldest round must be drained with Each first. In-flight
// rounds must be drained in submission order (each Round's Each
// commits in input order), so pipelined execution stays observably
// identical to one-round-at-a-time execution. Submit and Each must be
// called from the same goroutine. The progs slice is read by workers
// until Each returns and must not be mutated in between — the caller
// is free to generate later rounds' programs concurrently, which is
// exactly how the fuzzer overlaps generation with simulation.
func (e *Engine) Submit(progs []prog.Program) *Round {
	select {
	case <-e.stop:
		panic("engine: Submit after Close")
	default:
	}
	if e.sh.liveRounds >= e.inflight {
		panic("engine: Submit past the in-flight round window (drain with Each)")
	}
	var r *Round
	if k := len(e.sh.freeRounds); k > 0 {
		r = e.sh.freeRounds[k-1]
		e.sh.freeRounds[k-1] = nil
		e.sh.freeRounds = e.sh.freeRounds[:k-1]
	} else {
		r = &Round{sh: e.sh, inline: e.inline}
		r.cond = sync.NewCond(&r.mu)
	}
	e.sh.liveRounds++
	if e.sh.liveRounds > 1 {
		e.sh.pipelined.Add(1)
	}
	if d := int64(e.sh.liveRounds); d > e.sh.maxDepth.Load() {
		e.sh.maxDepth.Store(d)
	}
	n := len(progs)
	r.progs = progs
	if cap(r.outs) < n {
		r.outs = make([]Outcome, n)
		r.ready = make([]bool, n)
	}
	r.outs = r.outs[:n]
	r.ready = r.ready[:n]
	for i := range r.ready {
		r.ready[i] = false
	}
	r.inFlight = true
	switch {
	case e.sh.pool != nil:
		// Fleet mode: enqueue the whole round on the design's queue in
		// one shot; Submit returns immediately and the caller is free
		// to generate the next round while workers drain this one.
		e.sh.pool.submit(r)
	case e.inline == nil:
		// Feed the pool without blocking Submit: the caller's goroutine
		// is the generator/committer and must stay available.
		go func() {
			for i := 0; i < n; i++ {
				select {
				case e.jobs <- jobRef{r, i}:
				case <-e.stop:
					return
				}
			}
		}()
	}
	return r
}

// Round is one in-flight batch of programs, recycled through the
// engine's free list across submissions. It references only the
// engine's shared state (not the Engine itself), so an abandoned
// engine stays collectible and its Close finalizer can fire.
type Round struct {
	sh     *shared
	inline *worker
	progs  []prog.Program
	outs   []Outcome

	mu    sync.Mutex
	cond  *sync.Cond
	ready []bool

	inFlight bool
}

func (r *Round) markReady(i int) {
	if r.inline != nil {
		return
	}
	r.mu.Lock()
	r.ready[i] = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Each hands every outcome to fn in input order, blocking per entry
// until it is ready. The Outcome (including Res.Coverage, Res.Trace
// and Golden) is only valid for the duration of the callback: the
// engine recycles the backing scratch as soon as fn returns, so fn
// must copy anything it keeps (the calculator merges and the detector
// copies entries by value, so the fuzzing loop needs no copies).
func (r *Round) Each(fn func(i int, o *Outcome)) {
	for i := range r.outs {
		switch {
		case r.inline != nil:
			r.inline.exec(r, i)
		case r.sh.pool != nil:
			// Fleet mode: help execute still-queued jobs (any shard,
			// own design first) instead of sleeping while entry i is
			// in flight.
			r.sh.pool.await(r, i)
		default:
			r.mu.Lock()
			for !r.ready[i] {
				r.cond.Wait()
			}
			r.mu.Unlock()
		}
		o := &r.outs[i]
		fn(i, o)
		r.sh.recycle(o)
	}
	r.progs = nil
	r.inFlight = false
	// Same-goroutine as Submit by contract, so the window bookkeeping
	// needs no lock. The Round goes back on the free list; the caller
	// must not retain it.
	r.sh.liveRounds--
	r.sh.freeRounds = append(r.sh.freeRounds, r)
}

// recycle returns an outcome's pooled scratch to the free lists.
func (sh *shared) recycle(o *Outcome) {
	ck := scratchCheck.Load()
	if o.pooledRes {
		if o.Res.Coverage != nil {
			if ck != nil {
				ck.checkIn(o.Res.Coverage, "cov set")
			}
			sh.sets.put(o.Res.Coverage)
		}
		if ck != nil {
			ck.checkIn(sliceKey(o.Res.Trace), "trace buffer")
		}
		sh.traces.put(o.Res.Trace[:0])
	}
	if o.pooledGolden {
		if ck != nil {
			ck.checkIn(sliceKey(o.Golden), "golden buffer")
		}
		sh.goldens.put(o.Golden[:0])
	}
	*o = Outcome{}
}
