// Package engine implements the persistent, pipelined batch execution
// engine behind the fuzzing loop: the component that turns a batch of
// generated programs into simulation outcomes as fast as the hardware
// allows, while keeping every observable result bit-identical to a
// strictly serial execution.
//
// The seed implementation of core.Fuzzer.RunBatch spawned and joined a
// fresh goroutine pool every round, allocated a new platform memory,
// ISS, coverage set and trace buffers for every golden-model run, and
// serialized all accounting behind the round barrier. The engine
// replaces that fork-join body with:
//
//   - a worker pool that lives for the whole campaign (workers are
//     spawned once and fed rounds over a channel, not re-created per
//     round);
//   - per-worker reusable scratch: a platform memory for the golden
//     model, and — when the DUT implements rtl.ReusableDUT — a
//     worker-private rtl.Runner whose caches, predictors and memory
//     are reset instead of re-allocated, plus pooled coverage sets and
//     trace buffers recycled at commit, so the steady-state loop is
//     allocation-free;
//   - in-order commit: Round.Each hands outcomes to the caller in
//     input order as soon as each becomes ready, so scoring, mismatch
//     detection and virtual-clock accounting overlap the simulation of
//     later entries instead of waiting for the whole round.
//
// Determinism: workers only compute; every stateful side effect
// (coverage merge, detector, clock, trajectory) happens in the
// caller's goroutine in input order, exactly as the serial loop
// performed it. A fixed-seed campaign therefore produces bit-identical
// trajectories, detector output and checkpoints on the engine and the
// serial path, regardless of worker count or scheduling.
//
// With a single worker (the default inside campaign shards, where the
// shards themselves are the parallelism) the engine short-circuits the
// channels entirely and executes jobs inline during Each, keeping the
// scratch-reuse benefits without any cross-goroutine traffic.
package engine

import (
	"runtime"
	"sync"

	"chatfuzz/internal/cov"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/trace"
)

// Config parameterises an engine.
type Config struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Detect additionally runs every test on the golden-model ISS.
	Detect bool
}

// Outcome is the execution result of one program of a round.
type Outcome struct {
	// Res is the DUT simulation result. Zero when Err is set.
	Res rtl.Result
	// Golden is the golden-model commit trace (Detect only).
	Golden []trace.Entry
	// Err reports a program the harness refused to build; the program
	// executed nothing and must be scored as invalid.
	Err error

	pooledRes    bool // Res.Coverage/Res.Trace are engine-pooled scratch
	pooledGolden bool // Golden is engine-pooled scratch
}

// pool is a tiny free-list. The engine prefers it over sync.Pool: no
// per-Put boxing for slice types, and entries survive GC cycles, which
// matters for a steady-state loop whose whole point is not allocating.
type pool[T any] struct {
	mu    sync.Mutex
	items []T
}

func (p *pool[T]) get() (T, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var zero T
	n := len(p.items)
	if n == 0 {
		return zero, false
	}
	it := p.items[n-1]
	p.items[n-1] = zero
	p.items = p.items[:n-1]
	return it, true
}

func (p *pool[T]) put(it T) {
	p.mu.Lock()
	p.items = append(p.items, it)
	p.mu.Unlock()
}

// shared is the engine state workers reference. It deliberately
// excludes *Engine itself so that idle worker goroutines do not keep
// an abandoned engine reachable: once the engine (and its owner) are
// garbage, the Close finalizer fires, stops the workers, and the
// shared state is collected with them.
type shared struct {
	dut    rtl.DUT
	detect bool

	sets    pool[*cov.Set]
	traces  pool[[]trace.Entry]
	goldens pool[[]trace.Entry]
}

// worker is one simulation context: the per-worker reusable scratch.
type worker struct {
	sh     *shared
	runner rtl.Runner  // non-nil when the DUT is reusable
	gmem   *mem.Memory // golden-model platform memory (Detect only)
}

func newWorker(sh *shared) *worker {
	w := &worker{sh: sh}
	if rd, ok := sh.dut.(rtl.ReusableDUT); ok {
		w.runner = rd.NewRunner()
	}
	if sh.detect {
		w.gmem = mem.Platform()
	}
	return w
}

// exec runs one program end to end: build, DUT simulation, and (when
// detection is on) the golden-model reference run.
func (w *worker) exec(r *Round, i int) {
	o := &r.outs[i]
	*o = Outcome{}
	p := r.progs[i]
	img, _, err := prog.Build(p)
	if err != nil {
		o.Err = err
		r.markReady(i)
		return
	}
	budget := prog.InstructionBudget(len(p.Body))
	if w.runner != nil {
		set, ok := w.sh.sets.get()
		if ok {
			set.Reset()
		} else {
			set = w.sh.dut.Space().NewSet()
		}
		tr, _ := w.sh.traces.get()
		o.Res = w.runner.RunScratch(img, budget, set, tr)
		o.pooledRes = true
	} else {
		o.Res = w.sh.dut.Run(img, budget)
	}
	if w.sh.detect {
		w.gmem.Reset()
		buf, _ := w.sh.goldens.get()
		o.Golden = GoldenRun(w.gmem, img, budget, buf)
		o.pooledGolden = true
	}
	r.markReady(i)
}

// jobRef addresses one entry of an in-flight round.
type jobRef struct {
	r *Round
	i int
}

// Engine executes rounds of programs against one DUT. One engine
// serves one fuzzing campaign (a core.Fuzzer or a campaign shard) for
// its whole lifetime; its workers and scratch persist across rounds.
type Engine struct {
	sh      *shared
	workers int

	jobs chan jobRef
	stop chan struct{}
	once sync.Once

	inline *worker // Workers == 1: synchronous path, no goroutines
	round  Round   // reused across rounds; at most one in flight
}

// New builds an engine over dut and starts its workers.
//
// Engines hold goroutines (when Workers > 1); release them with Close.
// A finalizer closes abandoned engines as a safety net, so a leaked
// engine degrades to garbage, not to a goroutine leak.
func New(dut rtl.DUT, cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		sh:      &shared{dut: dut, detect: cfg.Detect},
		workers: workers,
		stop:    make(chan struct{}),
	}
	e.round.cond = sync.NewCond(&e.round.mu)
	e.round.sh = e.sh
	if workers == 1 {
		e.inline = newWorker(e.sh)
		e.round.inline = e.inline
	} else {
		e.jobs = make(chan jobRef)
		for i := 0; i < workers; i++ {
			go workerLoop(e.sh, e.jobs, e.stop)
		}
	}
	runtime.SetFinalizer(e, (*Engine).Close)
	return e
}

// Workers returns the worker count the engine resolved to.
func (e *Engine) Workers() int { return e.workers }

func workerLoop(sh *shared, jobs <-chan jobRef, stop <-chan struct{}) {
	w := newWorker(sh)
	for {
		select {
		case <-stop:
			return
		case j := <-jobs:
			w.exec(j.r, j.i)
		}
	}
}

// Close stops the workers. The engine must not be used afterwards.
// Close is idempotent and must not be called while a round is in
// flight (between Submit and the end of Each).
func (e *Engine) Close() {
	e.once.Do(func() {
		runtime.SetFinalizer(e, nil)
		close(e.stop)
	})
}

// Submit starts executing a round of programs and returns its handle.
// At most one round may be in flight per engine; the previous round
// must have been fully drained with Each. The progs slice is read by
// workers until Each returns and must not be mutated in between — the
// caller is free to generate the next round's programs concurrently,
// which is exactly how the fuzzer overlaps generation with simulation.
func (e *Engine) Submit(progs []prog.Program) *Round {
	select {
	case <-e.stop:
		panic("engine: Submit after Close")
	default:
	}
	r := &e.round
	if r.inFlight {
		panic("engine: Submit before the previous round was drained")
	}
	n := len(progs)
	r.progs = progs
	if cap(r.outs) < n {
		r.outs = make([]Outcome, n)
		r.ready = make([]bool, n)
	}
	r.outs = r.outs[:n]
	r.ready = r.ready[:n]
	for i := range r.ready {
		r.ready[i] = false
	}
	r.inFlight = true
	if e.inline == nil {
		// Feed the pool without blocking Submit: the caller's goroutine
		// is the generator/committer and must stay available.
		go func() {
			for i := 0; i < n; i++ {
				select {
				case e.jobs <- jobRef{r, i}:
				case <-e.stop:
					return
				}
			}
		}()
	}
	return r
}

// Round is one in-flight batch of programs. It references only the
// engine's shared state (not the Engine itself), so an abandoned
// engine stays collectible and its Close finalizer can fire.
type Round struct {
	sh     *shared
	inline *worker
	progs  []prog.Program
	outs   []Outcome

	mu    sync.Mutex
	cond  *sync.Cond
	ready []bool

	inFlight bool
}

func (r *Round) markReady(i int) {
	if r.inline != nil {
		return
	}
	r.mu.Lock()
	r.ready[i] = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Each hands every outcome to fn in input order, blocking per entry
// until it is ready. The Outcome (including Res.Coverage, Res.Trace
// and Golden) is only valid for the duration of the callback: the
// engine recycles the backing scratch as soon as fn returns, so fn
// must copy anything it keeps (the calculator merges and the detector
// copies entries by value, so the fuzzing loop needs no copies).
func (r *Round) Each(fn func(i int, o *Outcome)) {
	for i := range r.outs {
		if r.inline != nil {
			r.inline.exec(r, i)
		} else {
			r.mu.Lock()
			for !r.ready[i] {
				r.cond.Wait()
			}
			r.mu.Unlock()
		}
		o := &r.outs[i]
		fn(i, o)
		r.sh.recycle(o)
	}
	r.progs = nil
	r.inFlight = false
}

// recycle returns an outcome's pooled scratch to the free lists.
func (sh *shared) recycle(o *Outcome) {
	if o.pooledRes {
		if o.Res.Coverage != nil {
			sh.sets.put(o.Res.Coverage)
		}
		sh.traces.put(o.Res.Trace[:0])
	}
	if o.pooledGolden {
		sh.goldens.put(o.Golden[:0])
	}
	*o = Outcome{}
}
