// Fleet-level work-stealing execution pool.
//
// A FleetPool replaces the per-shard worker pools of a sharded
// campaign with one shared scheduler: every shard engine becomes a
// lightweight submitter (Engine with Config.Pool set), and one fixed
// set of workers executes all shards' rounds. At high shard counts
// with skewed batch latencies — heterogeneous fleets, learning arms
// paying PPO updates on their shard's critical path — per-shard pools
// leave cores idle while other shards still queue work; the shared
// pool keeps every worker busy on whatever round still has entries.
//
// # Affinity and stealing
//
// Jobs queue per DUT design name, and each worker keeps its reusable
// scratch — the rtl.Runner with its platform memory, caches and
// predictors, plus the golden-model ISS memory — bound to the design
// it last served. A worker prefers its own design's queue; only when
// that queue is empty does it steal from the design with the most
// queued jobs, re-binding its scratch (a migration). Runners are
// cached per design on first build, so migrating back to a design the
// worker has served before costs nothing but cache warmth. Two DUTs
// submitted under the same design name must therefore be
// interchangeable (built by the same constructor): a runner built
// from one shard's DUT executes another shard's jobs, which is sound
// because runners reset all state per run and coverage bins are
// recorded by index, identically across structurally equal spaces.
//
// # Helping committers
//
// A shard's committer goroutine (the one inside Round.Each) does not
// sleep while its next entry is in flight: if any job is still
// queued, the committer claims and executes it with its own cached
// scratch — its own round's design first, then stealing like a
// worker. This keeps a fleet on few cores from paying cross-goroutine
// handoff for work the committer could have done itself, and on many
// cores it turns every blocked shard goroutine into an extra worker
// exactly when the fleet is skewed.
//
// # Commit order and determinism
//
// Stealing never reorders observable effects. Workers and helpers
// only compute and mark entries ready; every stateful side effect
// (coverage merge, detector, clock, trajectory) still happens in the
// owning shard's goroutine, in input order, inside Round.Each — the
// same in-order commit the per-shard engine performs. Which worker
// executes an entry, and on which design-bound scratch, is
// unobservable: a fixed-seed campaign produces bit-identical
// trajectories, detector output and checkpoints on the serial path,
// the per-shard pool path and the fleet pool, regardless of worker
// count, stealing or scheduling.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chatfuzz/internal/telemetry"
)

// FleetConfig parameterises a FleetPool.
type FleetConfig struct {
	// Workers bounds concurrent simulations across the whole fleet
	// (0 = GOMAXPROCS).
	Workers int
	// Telemetry, when non-nil, gives every pool worker a flight-
	// recorder track carrying its build/sim/golden spans and
	// steal/help/migrate instant events, and is inherited by
	// submitting engines' helping committers. Execution-only.
	Telemetry *telemetry.Recorder
}

// FleetStats is a snapshot of a pool's scheduling counters.
type FleetStats struct {
	// Workers is the pool's worker count.
	Workers int
	// Submitted counts jobs enqueued since the pool started.
	Submitted int
	// Executed counts jobs run by pool workers.
	Executed int
	// Helped counts jobs run by committer goroutines inside
	// Round.Each while they waited for an in-flight entry.
	Helped int
	// Stolen counts claims that crossed design queues: an already-
	// affine claimer's own queue was empty and it took a job from
	// another design (a fresh worker's first claim is not a steal).
	Stolen int
	// Migrations counts scratch re-binds: a steal by a claimer whose
	// scratch was bound to a different design (a claimer that never
	// bound scratch has nothing to migrate).
	Migrations int
	// MigrationsByDesign counts migrations per destination design.
	MigrationsByDesign map[string]int
	// WorkerBusy and HelperBusy accumulate execution time spent by
	// pool workers and helping committers; WorkerBusy over
	// (Workers × elapsed) is the pool's utilization.
	WorkerBusy time.Duration
	HelperBusy time.Duration
}

// designQueue is one design's FIFO of pending jobs. Popping advances
// a head index instead of re-slicing so the backing array is reused
// once the queue drains.
type designQueue struct {
	jobs []jobRef
	head int
}

func (q *designQueue) len() int { return len(q.jobs) - q.head }

func (q *designQueue) push(j jobRef) { q.jobs = append(q.jobs, j) }

func (q *designQueue) pop() jobRef {
	j := q.jobs[q.head]
	q.jobs[q.head] = jobRef{}
	q.head++
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j
}

// FleetPool is a shared work-stealing scheduler over the rounds of
// many engines. Construct with NewFleetPool, hand it to each shard
// engine via Config.Pool, and Close it after the engines: the pool is
// owned by whoever built it (the campaign orchestrator), never by an
// individual engine or fuzzer.
//
// FleetPool is only the owner's handle; the scheduler state workers
// reference lives in poolState. The split matters for the finalizer:
// worker goroutines must not keep the handle reachable, or an
// abandoned pool could never be collected and the safety net below
// would be dead code (the same trick Engine plays with shared).
type FleetPool struct {
	ps   *poolState
	once sync.Once
}

// poolState is the scheduler state shared by workers, submitting
// engines and helping committers.
type poolState struct {
	workers int
	rec     *telemetry.Recorder // nil = telemetry disabled

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*designQueue
	order  []string // design registration order, for the victim scan
	closed bool
	wg     sync.WaitGroup

	// Scheduling counters (guarded by mu), plus atomic busy clocks.
	submitted  int
	executed   int
	helped     int
	stolen     int
	migrations int
	perDesign  map[string]int
	workerBusy atomic.Int64
	helperBusy atomic.Int64
}

// NewFleetPool builds a pool and starts its workers.
//
// Pools hold goroutines; release them with Close once every engine
// submitting to the pool has been closed. A finalizer closes
// abandoned pools as a safety net, so a leaked pool degrades to
// garbage, not to a goroutine leak.
func NewFleetPool(cfg FleetConfig) *FleetPool {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ps := &poolState{
		workers:   workers,
		rec:       cfg.Telemetry,
		queues:    make(map[string]*designQueue),
		perDesign: make(map[string]int),
	}
	ps.cond = sync.NewCond(&ps.mu)
	ps.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go ps.workerLoop()
	}
	p := &FleetPool{ps: ps}
	runtime.SetFinalizer(p, (*FleetPool).Close)
	return p
}

// Workers returns the pool's worker count.
func (p *FleetPool) Workers() int { return p.ps.workers }

// Close stops the workers after the queues drain. No engine may have
// a round in flight, and no further Submits may race with Close.
// Close is idempotent.
func (p *FleetPool) Close() {
	p.once.Do(func() {
		runtime.SetFinalizer(p, nil)
		ps := p.ps
		ps.mu.Lock()
		ps.closed = true
		ps.mu.Unlock()
		ps.cond.Broadcast()
		ps.wg.Wait()
	})
}

// Stats returns a snapshot of the pool's scheduling counters.
func (p *FleetPool) Stats() FleetStats {
	ps := p.ps
	ps.mu.Lock()
	defer ps.mu.Unlock()
	by := make(map[string]int, len(ps.perDesign))
	// Verbatim map→map copy: iteration order cannot reach the result.
	//lint:allow mapiter order-insensitive map copy
	for k, v := range ps.perDesign {
		by[k] = v
	}
	return FleetStats{
		Workers:            ps.workers,
		Submitted:          ps.submitted,
		Executed:           ps.executed,
		Helped:             ps.helped,
		Stolen:             ps.stolen,
		Migrations:         ps.migrations,
		MigrationsByDesign: by,
		WorkerBusy:         time.Duration(ps.workerBusy.Load()),
		HelperBusy:         time.Duration(ps.helperBusy.Load()),
	}
}

// submit enqueues every entry of a round on its design's queue.
func (ps *poolState) submit(r *Round) {
	design := r.sh.design
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		panic("engine: Submit on a closed FleetPool")
	}
	q := ps.queues[design]
	if q == nil {
		q = &designQueue{}
		ps.queues[design] = q
		ps.order = append(ps.order, design)
	}
	n := len(r.outs)
	for i := 0; i < n; i++ {
		q.push(jobRef{r, i})
	}
	ps.submitted += n
	ps.mu.Unlock()
	ps.cond.Broadcast()
}

// claim pops the next job for w: its affinity queue first, then a
// steal from the design with the most queued jobs. A steal is a
// cross-design claim by an already-affine claimer (a fresh worker's
// first claim is not one), and a migration additionally requires
// scratch to have been bound to some other design — which is why the
// counters consult w.cur and w.bound separately. helper distinguishes
// committer claims from pool-worker claims in the stats. Must be
// called with ps.mu held; returns false when nothing is queued.
func (ps *poolState) claim(w *worker, helper bool) (jobRef, bool) {
	q := ps.queues[w.cur]
	if q == nil || q.len() == 0 {
		// Steal: scan for the longest queue, first registration wins
		// ties. The scan is O(designs), and fleets have few designs.
		best, victim := 0, ""
		for _, name := range ps.order {
			if n := ps.queues[name].len(); n > best {
				best, victim = n, name
			}
		}
		if best == 0 {
			return jobRef{}, false
		}
		q = ps.queues[victim]
		if w.cur != "" {
			ps.stolen++
			w.track.Instant(telemetry.EventSteal)
		}
		if w.bound != "" && w.bound != victim {
			ps.migrations++
			ps.perDesign[victim]++
			w.track.Instant(telemetry.EventMigrate)
		}
		w.cur = victim
	}
	if helper {
		ps.helped++
		w.track.Instant(telemetry.EventHelp)
	} else {
		ps.executed++
	}
	return q.pop(), true
}

func (ps *poolState) workerLoop() {
	defer ps.wg.Done()
	w := &worker{track: ps.rec.NewTrack("pool/worker")}
	for {
		ps.mu.Lock()
		j, ok := ps.claim(w, false)
		for !ok {
			if ps.closed {
				ps.mu.Unlock()
				return
			}
			ps.cond.Wait()
			j, ok = ps.claim(w, false)
		}
		ps.mu.Unlock()
		// Execution-only: busy-time counters feed FleetStats/probes,
		// which are never checkpointed and never influence scheduling.
		//lint:allow wallclock pool utilization timing is execution-only
		t0 := time.Now()
		w.bind(j.r.sh)
		w.exec(j.r, j.i)
		//lint:allow wallclock pool utilization timing is execution-only
		ps.workerBusy.Add(int64(time.Since(t0)))
	}
}

// await blocks until round r's entry i is ready, lending the calling
// committer goroutine to the pool while it waits: any still-queued
// job — r's own design first — is claimed and executed with the
// engine's helper scratch. Only when nothing is claimable (so entry i
// is already running on some worker) does the committer sleep on the
// round's condition variable.
func (ps *poolState) await(r *Round, i int) {
	h := r.sh.helper
	for {
		r.mu.Lock()
		ready := r.ready[i]
		r.mu.Unlock()
		if ready {
			return
		}
		ps.mu.Lock()
		j, ok := ps.claim(h, true)
		ps.mu.Unlock()
		if !ok {
			r.mu.Lock()
			for !r.ready[i] {
				r.cond.Wait()
			}
			r.mu.Unlock()
			return
		}
		//lint:allow wallclock pool utilization timing is execution-only
		t0 := time.Now()
		h.bind(j.r.sh)
		h.exec(j.r, j.i)
		//lint:allow wallclock pool utilization timing is execution-only
		ps.helperBusy.Add(int64(time.Since(t0)))
	}
}
