package engine_test

import (
	"reflect"
	"sync"
	"testing"

	"chatfuzz/internal/engine"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

// TestEnginePipelinedRoundsMatchDirectRun: with Inflight > 1 the
// engine holds several undrained rounds at once; draining them in
// submission order must reproduce the allocating reference exactly,
// on both the inline single-worker path and the pooled path.
func TestEnginePipelinedRoundsMatchDirectRun(t *testing.T) {
	for _, workers := range []int{1, 3} {
		dut := rocket.New()
		ref := rocket.New()
		e := engine.New(dut, engine.Config{Workers: workers, Detect: true, Inflight: 3})

		var rounds []*engine.Round
		var batches [][]prog.Program
		for round := 0; round < 3; round++ {
			progs := testProgs(int64(500+10*workers+round), 6, 16)
			batches = append(batches, progs)
			rounds = append(rounds, e.Submit(progs))
		}
		for ri, r := range rounds {
			r.Each(func(i int, o *engine.Outcome) {
				if o.Err != nil {
					t.Fatalf("workers=%d round %d test %d: %v", workers, ri, i, o.Err)
				}
				wantRes, wantGolden := reference(ref, batches[ri][i])
				if o.Res.Cycles != wantRes.Cycles || o.Res.Halted != wantRes.Halted ||
					o.Res.ExitCode != wantRes.ExitCode || o.Res.Regs != wantRes.Regs {
					t.Fatalf("workers=%d round %d test %d: result diverged", workers, ri, i)
				}
				if !reflect.DeepEqual(o.Golden, wantGolden) {
					t.Fatalf("workers=%d round %d test %d: golden trace diverged", workers, ri, i)
				}
			})
		}
		st := e.PipeStats()
		if st.PipelinedRounds == 0 || st.MaxInflight < 2 {
			t.Errorf("workers=%d: window never overlapped (pipelined=%d, depth=%d)",
				workers, st.PipelinedRounds, st.MaxInflight)
		}
		e.Close()
	}
}

// TestEngineSubmitPastWindowPanics: the round window is a hard
// contract — submitting past it without draining is caller error.
func TestEngineSubmitPastWindowPanics(t *testing.T) {
	e := engine.New(rocket.New(), engine.Config{Workers: 1, Inflight: 2})
	defer e.Close()
	r1 := e.Submit(testProgs(1, 2, 8))
	r2 := e.Submit(testProgs(2, 2, 8))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("third Submit into a window of 2 did not panic")
			}
		}()
		e.Submit(testProgs(3, 2, 8))
	}()
	// The window drains normally after the refused Submit.
	for _, r := range []*engine.Round{r1, r2} {
		n := 0
		r.Each(func(int, *engine.Outcome) { n++ })
		if n != 2 {
			t.Errorf("drained %d outcomes, want 2", n)
		}
	}
}

// TestEnginePipelinedSubmitCommitStress is the submit/commit overlap
// race test: many shards, each keeping a full in-flight window against
// a single shared pool worker (maximum steal/help pressure), with the
// scratch-ownership checker armed. Run under -race in CI.
func TestEnginePipelinedSubmitCommitStress(t *testing.T) {
	stop := engine.EnableScratchCheck()

	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 1})
	const shards, rounds, batch, window = 6, 6, 3, 3

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var dut rtl.DUT
			if s%2 == 0 {
				dut = rocket.New()
			} else {
				dut = boom.New()
			}
			e := engine.New(dut, engine.Config{Detect: true, Pool: pool, Inflight: window})
			defer e.Close()
			var live []*engine.Round
			drain := func() {
				r := live[0]
				live = live[:copy(live, live[1:])]
				got := 0
				r.Each(func(i int, o *engine.Outcome) {
					if o.Err == nil && o.Res.Cycles > 0 {
						got++
					}
				})
				if got != batch {
					t.Errorf("shard %d: %d/%d outcomes", s, got, batch)
				}
			}
			for round := 0; round < rounds; round++ {
				if len(live) == window {
					drain()
				}
				live = append(live, e.Submit(testProgs(int64(7000+100*s+round), batch, 10)))
			}
			for len(live) > 0 {
				drain()
			}
		}(s)
	}
	wg.Wait()

	st := pool.Stats()
	pool.Close()
	if st.Executed+st.Helped != st.Submitted {
		t.Errorf("executed %d + helped %d != submitted %d", st.Executed, st.Helped, st.Submitted)
	}
	for _, v := range stop() {
		t.Errorf("scratch ownership violated: %s", v)
	}
}
