package engine

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/baseline/randinst"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/trace"
)

// newTestWorker builds the minimal worker + shared pair goldenRun
// needs, mirroring what exec hands it (a reset platform memory and a
// bound design name).
func newTestWorker(design string) (*worker, *shared) {
	return &worker{gmem: mem.Platform(), bound: design}, &shared{}
}

// eligiblePrefix emits n trivially replay-safe body words (addi xk,
// x0, i): straight-line, store-free, load-free, so every capture depth
// up to n stays eligible and the snapshot tree is guaranteed to
// populate.
func eligiblePrefix(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		rd := uint32(i%31 + 1)
		out[i] = uint32(i)<<20 | rd<<7 | 0x13
	}
	return out
}

func checkGolden(t *testing.T, label string, got, want []trace.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: goldenRun trace has %d entries, reference %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d diverges:\n  got:  %v\n  want: %v", label, i, got[i], want[i])
		}
	}
}

// TestWorkerGoldenRunMatchesReference: the worker-side goldenRun
// (snapshot tree + decode cache) must stay bit-identical to a
// from-reset golden run for prefix-sharing families, raw trap-storm
// bodies and the empty body — on cold and warm (tree-hitting) passes
// alike.
func TestWorkerGoldenRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	w, sh := newTestWorker("rocket")

	prefix := eligiblePrefix(16)
	var bodies [][]uint32
	bodies = append(bodies, append(append([]uint32{}, prefix...), randinst.Program(rng, 24)...))
	for i := 0; i < 6; i++ {
		// Same eligible prefix, fresh suffix: the family the tree serves.
		bodies = append(bodies, append(append([]uint32{}, prefix...), randinst.Program(rng, 24)...))
	}
	for i := 0; i < 3; i++ {
		raw := make([]uint32, 16)
		for j := range raw {
			raw[j] = rng.Uint32()
		}
		bodies = append(bodies, raw)
	}
	bodies = append(bodies, nil)

	for pass := 0; pass < 2; pass++ {
		for bi, body := range bodies {
			img, _, err := prog.Build(prog.Program{Body: body})
			if err != nil {
				t.Fatalf("pass %d body %d: %v", pass, bi, err)
			}
			budget := prog.InstructionBudget(len(body))
			want := fullGoldenRun(img, budget)
			w.gmem.Reset()
			got := w.goldenRun(sh, img, body, budget, nil)
			checkGolden(t, "", got, want)
		}
	}
	if sh.snapHits.Load() == 0 {
		t.Error("snapshot tree never hit across a shared-prefix family")
	}
	if sh.snapMisses.Load() == 0 {
		t.Error("snapshot tree recorded no misses (counters unwired?)")
	}
}

// TestWorkerGoldenRunSmallBudget: budgets too small to clear the
// prologue must fall back to a truncated from-reset run, decode cache
// and all.
func TestWorkerGoldenRunSmallBudget(t *testing.T) {
	w, sh := newTestWorker("rocket")
	body := []uint32{0x00000013}
	img, _ := prog.MustBuild(prog.Program{Body: body})
	for _, budget := range []int{0, 1, 7, 50} {
		want := fullGoldenRun(img, budget)
		w.gmem.Reset()
		got := w.goldenRun(sh, img, body, budget, nil)
		checkGolden(t, "", got, want)
	}
}

// TestGoldenMixedFleetPrologue locks in the prologue-cache audit from
// golden.go: the prologue is keyed by entry PC and shared across
// designs (ISS semantics are design-independent), while the snapshot
// trees — which do cache per-program state — stay isolated per design.
// A worker alternating designs mid-stream, the fleet-pool migration
// shape, must produce from-reset-identical goldens for every design.
func TestGoldenMixedFleetPrologue(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w, sh := newTestWorker("rocket")
	prefix := eligiblePrefix(8)
	for i := 0; i < 8; i++ {
		design := "rocket"
		if i%2 == 1 {
			design = "boom"
		}
		w.bound = design
		body := append(append([]uint32{}, prefix...), randinst.Program(rng, 16)...)
		img, _, err := prog.Build(prog.Program{Body: body})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		budget := prog.InstructionBudget(len(body))
		want := fullGoldenRun(img, budget)
		w.gmem.Reset()
		got := w.goldenRun(sh, img, body, budget, nil)
		checkGolden(t, design, got, want)
	}
	if len(w.trees) != 2 {
		t.Fatalf("worker serving 2 designs holds %d snapshot trees, want one per design", len(w.trees))
	}
	if w.trees["rocket"] == w.trees["boom"] {
		t.Error("designs share one snapshot tree; cached state could cross designs")
	}
}

// TestSnapTreeLRUBounds: the tree must never exceed its capacity, must
// evict the least-recently-touched node, and a lookup must refresh its
// node's recency.
func TestSnapTreeLRUBounds(t *testing.T) {
	img, _ := prog.MustBuild(prog.Program{})
	pro := prologueFor(img.Entry)
	tr := newSnapTree(pro)
	rng := rand.New(rand.NewSource(5))

	const d = 4
	mk := func() ([]uint32, uint64) {
		body := make([]uint32, d)
		for j := range body {
			body[j] = rng.Uint32()
		}
		return body, prefixHash(fnvOffset, body, 0, d)
	}
	var bodies [][]uint32
	var hashes []uint64
	for i := 0; i < snapTreeCap; i++ {
		body, h := mk()
		bodies, hashes = append(bodies, body), append(hashes, h)
		tr.insert(body, d, h, iss.Snapshot{}, nil)
	}
	if len(tr.nodes) != snapTreeCap || len(tr.order) != snapTreeCap {
		t.Fatalf("tree holds %d/%d nodes after %d inserts, want %d", len(tr.nodes), len(tr.order), snapTreeCap, snapTreeCap)
	}

	// Touch the oldest node, then overflow: the second-oldest must be
	// the victim and the touched node must survive.
	var hs [len(snapCaptureDepths)]uint64
	hs[0] = hashes[0]
	if tr.lookup(bodies[0], &hs, d) == nil {
		t.Fatal("resident node not found by lookup")
	}
	body, h := mk()
	tr.insert(body, d, h, iss.Snapshot{}, nil)
	if len(tr.nodes) != snapTreeCap || len(tr.order) != snapTreeCap {
		t.Fatalf("tree grew past capacity: %d nodes", len(tr.nodes))
	}
	if _, ok := tr.nodes[hashes[0]]; !ok {
		t.Error("recently-touched node was evicted")
	}
	if _, ok := tr.nodes[hashes[1]]; ok {
		t.Error("least-recently-touched node survived the eviction")
	}
	if _, ok := tr.nodes[h]; !ok {
		t.Error("new node missing after eviction")
	}
}

// FuzzSnapshotTreePrefix hammers the tree's core safety property: a
// worker that has cached snapshots from one program must never replay
// state past the prefix it provably shares with the next — for any mix
// of valid, raw-illegal and shared-prefix bodies, the warm-tree golden
// trace must stay bit-identical to a from-reset run.
func FuzzSnapshotTreePrefix(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(8), uint8(12), uint8(10), false)
	f.Add(int64(3), int64(3), uint8(64), uint8(0), uint8(0), false)
	f.Add(int64(7), int64(9), uint8(4), uint8(40), uint8(2), true)
	f.Add(int64(11), int64(12), uint8(0), uint8(6), uint8(6), false)
	f.Fuzz(func(t *testing.T, seedA, seedB int64, preLen, sufA, sufB uint8, rawPrefix bool) {
		rngP := rand.New(rand.NewSource(seedA))
		pre := int(preLen) % 65
		var prefix []uint32
		if rawPrefix {
			prefix = make([]uint32, pre)
			for i := range prefix {
				prefix[i] = rngP.Uint32()
			}
		} else {
			prefix = randinst.Program(rngP, pre)
		}
		mk := func(seed int64, n uint8) []uint32 {
			rng := rand.New(rand.NewSource(seed))
			suffix := randinst.Program(rng, int(n)%65)
			for i := range suffix {
				if rng.Intn(4) == 0 {
					suffix[i] = rng.Uint32() // sprinkle illegal words
				}
			}
			return append(append([]uint32{}, prefix...), suffix...)
		}
		bodyA := mk(seedA+101, sufA)
		bodyB := mk(seedB+202, sufB)

		w, sh := newTestWorker("fuzz")
		// A populates the tree, B must not replay past the shared
		// prefix, A again exercises the fully warm hit path.
		for _, body := range [][]uint32{bodyA, bodyB, bodyA} {
			img, _, err := prog.Build(prog.Program{Body: body})
			if err != nil {
				t.Skip()
			}
			budget := prog.InstructionBudget(len(body))
			want := fullGoldenRun(img, budget)
			w.gmem.Reset()
			got := w.goldenRun(sh, img, body, budget, nil)
			if len(got) != len(want) {
				t.Fatalf("trace has %d entries, from-reset reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d diverges from the from-reset reference:\n  got:  %v\n  want: %v", i, got[i], want[i])
				}
			}
		}
	})
}
