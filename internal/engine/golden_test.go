package engine

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/baseline/randinst"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/trace"
)

// fullGoldenRun is the reference: execute from reset, prologue and all.
func fullGoldenRun(img mem.Image, budget int) []trace.Entry {
	m := mem.Platform()
	m.Load(img)
	return iss.New(m, img.Entry).Run(budget)
}

// TestGoldenRunMatchesFullRun: the prologue delta replay must be
// bit-identical to a from-reset golden run for every kind of body the
// fuzzers produce — valid instruction mixes, raw mostly-illegal words
// (trap storms through the handler), the empty body, and a body that
// halts via tohost mid-run.
func TestGoldenRunMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var bodies [][]uint32
	for i := 0; i < 8; i++ {
		bodies = append(bodies, randinst.Program(rng, 24))
	}
	for i := 0; i < 4; i++ {
		raw := make([]uint32, 16)
		for j := range raw {
			raw[j] = rng.Uint32()
		}
		bodies = append(bodies, raw)
	}
	bodies = append(bodies, nil) // empty body: epilogue only

	for bi, body := range bodies {
		img, _, err := prog.Build(prog.Program{Body: body})
		if err != nil {
			t.Fatalf("body %d: %v", bi, err)
		}
		budget := prog.InstructionBudget(len(body))
		want := fullGoldenRun(img, budget)
		got := GoldenRun(mem.Platform(), img, budget, nil)
		if len(got) != len(want) {
			t.Fatalf("body %d: delta replay trace has %d entries, full run %d", bi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("body %d entry %d differs:\n  delta: %v\n  full:  %v", bi, i, got[i], want[i])
			}
		}
	}
}

// TestGoldenRunSmallBudgetFallsBack: a budget too small to clear the
// prologue must truncate exactly like a from-reset run, not replay a
// longer cached prologue.
func TestGoldenRunSmallBudgetFallsBack(t *testing.T) {
	img, _ := prog.MustBuild(prog.Program{Body: []uint32{0x00000013}}) // addi x0,x0,0
	for _, budget := range []int{0, 1, 7, 50} {
		want := fullGoldenRun(img, budget)
		got := GoldenRun(mem.Platform(), img, budget, nil)
		if len(got) != len(want) {
			t.Fatalf("budget %d: %d entries, want %d", budget, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("budget %d entry %d differs", budget, i)
			}
		}
	}
}

// TestGoldenRunReusesBuffer: the returned slice must reuse the caller's
// buffer capacity (the engine workers pool these).
func TestGoldenRunReusesBuffer(t *testing.T) {
	img, _ := prog.MustBuild(prog.Program{})
	budget := prog.InstructionBudget(0)
	first := GoldenRun(mem.Platform(), img, budget, nil)
	buf := first[:0]
	second := GoldenRun(mem.Platform(), img, budget, buf)
	if &second[0] != &first[0] {
		t.Error("GoldenRun did not append into the provided buffer")
	}
}
