package engine_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"chatfuzz/internal/engine"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

// TestFleetPoolOutcomesMatchDirectRun drives a mixed-design fleet of
// submitter engines over one shared work-stealing pool and checks
// every outcome against the allocating reference execution — the
// fleet-mode analogue of TestEngineOutcomesMatchDirectRun, proving
// that stealing, design migration and helping committers leave every
// observable result bit-identical.
func TestFleetPoolOutcomesMatchDirectRun(t *testing.T) {
	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 3})
	defer pool.Close()

	duts := []rtl.DUT{rocket.New(), boom.New(), rocket.New(), boom.New()}
	refs := []rtl.DUT{rocket.New(), boom.New(), rocket.New(), boom.New()}
	engines := make([]*engine.Engine, len(duts))
	for i, d := range duts {
		engines[i] = engine.New(d, engine.Config{Detect: true, Pool: pool})
		defer engines[i].Close()
	}

	var wg sync.WaitGroup
	for s := range engines {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				progs := testProgs(int64(500+10*s+round), 6, 18)
				engines[s].Submit(progs).Each(func(i int, o *engine.Outcome) {
					if o.Err != nil {
						t.Errorf("shard %d round %d test %d: build error %v", s, round, i, o.Err)
						return
					}
					wantRes, wantGolden := reference(refs[s], progs[i])
					if o.Res.Cycles != wantRes.Cycles || o.Res.Halted != wantRes.Halted ||
						o.Res.ExitCode != wantRes.ExitCode || o.Res.Regs != wantRes.Regs {
						t.Errorf("shard %d round %d test %d: result diverged from reference", s, round, i)
					}
					if !reflect.DeepEqual(o.Res.Trace, wantRes.Trace) {
						t.Errorf("shard %d round %d test %d: DUT trace diverged", s, round, i)
					}
					if !reflect.DeepEqual(o.Res.Coverage.Snapshot(), wantRes.Coverage.Snapshot()) {
						t.Errorf("shard %d round %d test %d: coverage diverged", s, round, i)
					}
					if !reflect.DeepEqual(o.Golden, wantGolden) {
						t.Errorf("shard %d round %d test %d: golden trace diverged", s, round, i)
					}
				})
			}
		}(s)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Submitted != 4*3*6 {
		t.Errorf("pool saw %d submitted jobs, want %d", st.Submitted, 4*3*6)
	}
	if st.Executed+st.Helped != st.Submitted {
		t.Errorf("executed %d + helped %d != submitted %d", st.Executed, st.Helped, st.Submitted)
	}
}

// TestFleetPoolStealStress is the steal-path race test: many shards ×
// tiny batches × forced migrations (a single pool worker bouncing
// between designs, plus every committer helping), with the scratch-
// ownership checker armed, asserting no runner, golden memory,
// coverage set or trace buffer is ever observed by two execution
// contexts concurrently. Run under -race in CI.
func TestFleetPoolStealStress(t *testing.T) {
	stop := engine.EnableScratchCheck()
	violations := func() []string { return stop() }

	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 1})
	const shards, rounds, batch = 8, 6, 3

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Alternate designs shard-by-shard so the lone pool worker
			// (and every helping committer) migrates constantly.
			var dut rtl.DUT
			if s%2 == 0 {
				dut = rocket.New()
			} else {
				dut = boom.New()
			}
			e := engine.New(dut, engine.Config{Detect: true, Pool: pool})
			defer e.Close()
			for round := 0; round < rounds; round++ {
				progs := testProgs(int64(9000+100*s+round), batch, 10)
				got := 0
				e.Submit(progs).Each(func(i int, o *engine.Outcome) {
					if o.Err == nil && o.Res.Cycles > 0 {
						got++
					}
				})
				if got != batch {
					t.Errorf("shard %d round %d: %d/%d outcomes", s, round, got, batch)
				}
			}
		}(s)
	}
	wg.Wait()

	st := pool.Stats()
	pool.Close()
	if st.Executed+st.Helped != st.Submitted {
		t.Errorf("executed %d + helped %d != submitted %d", st.Executed, st.Helped, st.Submitted)
	}
	for _, v := range violations() {
		t.Errorf("scratch ownership violated: %s", v)
	}
}

// TestFleetPoolForcedMigrations starves the committers (they sleep
// between Submit and Each) so the single pool worker must execute
// alternating rocket and boom rounds itself, re-binding its scratch
// on every design flip; asserts migrations are counted per design and
// the scratch checker stays clean across the re-binds.
func TestFleetPoolForcedMigrations(t *testing.T) {
	stop := engine.EnableScratchCheck()
	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 1})

	engines := []*engine.Engine{
		engine.New(rocket.New(), engine.Config{Detect: true, Pool: pool}),
		engine.New(boom.New(), engine.Config{Detect: true, Pool: pool}),
	}
	for round := 0; round < 6; round++ {
		e := engines[round%2]
		r := e.Submit(testProgs(int64(3000+round), 3, 10))
		// Give the pool worker the whole round: with the committer
		// asleep, nothing helps, so the worker claims every job and
		// migrates at each design flip.
		time.Sleep(100 * time.Millisecond)
		got := 0
		r.Each(func(i int, o *engine.Outcome) {
			if o.Err == nil && o.Res.Cycles > 0 {
				got++
			}
		})
		if got != 3 {
			t.Fatalf("round %d: %d/3 outcomes", round, got)
		}
	}
	st := pool.Stats()
	for _, e := range engines {
		e.Close()
	}
	pool.Close()

	if st.Migrations == 0 {
		t.Error("alternating designs forced no migrations")
	}
	byDesign := 0
	for _, n := range st.MigrationsByDesign {
		byDesign += n
	}
	if byDesign != st.Migrations {
		t.Errorf("per-design migration counts sum to %d, total is %d", byDesign, st.Migrations)
	}
	for _, v := range stop() {
		t.Errorf("scratch ownership violated: %s", v)
	}
}

// TestFleetPoolMatchesPerShardEngines: the same fixed batches produce
// byte-identical coverage and traces whether each engine owns its
// workers or all engines share a fleet pool.
func TestFleetPoolMatchesPerShardEngines(t *testing.T) {
	type key struct{ shard, round, i int }
	run := func(pool *engine.FleetPool) map[key][]uint64 {
		out := make(map[key][]uint64)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for s := 0; s < 3; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				cfg := engine.Config{Workers: 2}
				if pool != nil {
					cfg = engine.Config{Pool: pool}
				}
				e := engine.New(rocket.New(), cfg)
				defer e.Close()
				for round := 0; round < 2; round++ {
					progs := testProgs(int64(40+10*s+round), 5, 14)
					e.Submit(progs).Each(func(i int, o *engine.Outcome) {
						mu.Lock()
						out[key{s, round, i}] = o.Res.Coverage.Snapshot()
						mu.Unlock()
					})
				}
			}(s)
		}
		wg.Wait()
		return out
	}

	perShard := run(nil)
	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 2})
	defer pool.Close()
	fleet := run(pool)

	if len(perShard) != len(fleet) {
		t.Fatalf("outcome counts differ: per-shard %d, fleet %d", len(perShard), len(fleet))
	}
	for k, want := range perShard {
		if !reflect.DeepEqual(fleet[k], want) {
			t.Errorf("coverage for %+v differs between per-shard and fleet pools", k)
		}
	}
}

// TestFleetPoolCloseSemantics: closing a submitter engine leaves the
// pool running for its siblings, and submitting into a closed pool
// panics loudly.
func TestFleetPoolCloseSemantics(t *testing.T) {
	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 1})
	a := engine.New(rocket.New(), engine.Config{Pool: pool})
	b := engine.New(rocket.New(), engine.Config{Pool: pool})

	a.Close()
	progs := testProgs(77, 3, 10)
	got := 0
	b.Submit(progs).Each(func(i int, o *engine.Outcome) {
		if o.Err == nil {
			got++
		}
	})
	if got != len(progs) {
		t.Fatalf("sibling engine ran %d/%d tests after another engine closed", got, len(progs))
	}
	b.Close()
	pool.Close()

	defer func() {
		if recover() == nil {
			t.Error("Submit on a closed FleetPool did not panic")
		}
	}()
	c := engine.New(rocket.New(), engine.Config{Pool: pool})
	c.Submit(progs)
}

// TestFleetPoolUtilizationStats: the busy clocks and worker count a
// benchmark needs for its utilization metric are populated.
func TestFleetPoolUtilizationStats(t *testing.T) {
	pool := engine.NewFleetPool(engine.FleetConfig{Workers: 2})
	defer pool.Close()
	if pool.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", pool.Workers())
	}
	e := engine.New(rocket.New(), engine.Config{Pool: pool})
	defer e.Close()
	for round := 0; round < 2; round++ {
		e.Submit(testProgs(int64(round), 8, 16)).Each(func(int, *engine.Outcome) {})
	}
	st := pool.Stats()
	if st.WorkerBusy+st.HelperBusy <= 0 {
		t.Error("no busy time accumulated")
	}
	if st.Workers != 2 {
		t.Errorf("stats report %d workers, want 2", st.Workers)
	}
	if s := fmt.Sprintf("%+v", st); s == "" {
		t.Error("stats did not format")
	}
}
