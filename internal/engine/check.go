package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chatfuzz/internal/trace"
)

// Scratch-ownership checker: a test hook that verifies no reusable
// scratch object is ever observed by two execution contexts at once.
// The engine's correctness under work stealing rests on two ownership
// rules — a pooled object (coverage set, trace buffer) has exactly
// one holder between get and put, and a worker's design-bound scratch
// (runner, golden memory) is entered by exactly one goroutine at a
// time. The checker turns a violation of either rule into a recorded
// report instead of silent state corruption, and is how the -race
// stress tests assert the steal path's isolation. Production builds
// pay a single atomic nil-load per event.

// scratchState is the pool-tracking state of one scratch object.
type scratchState int8

const (
	scratchFree scratchState = iota // in a free list
	scratchOut                      // checked out by a holder
)

type scratchChecker struct {
	mu         sync.Mutex
	pooled     map[any]scratchState
	inUse      map[any]string
	violations []string
}

// scratchCheck is nil in production; EnableScratchCheck installs a
// checker for the duration of a test.
var scratchCheck atomic.Pointer[scratchChecker]

// EnableScratchCheck arms the scratch-ownership checker and returns a
// stop function that disarms it and reports every violation observed.
// Tests must stop the checker before enabling a new one; engines and
// pools running concurrently all report into the same checker.
func EnableScratchCheck() (stop func() []string) {
	ck := &scratchChecker{
		pooled: make(map[any]scratchState),
		inUse:  make(map[any]string),
	}
	if !scratchCheck.CompareAndSwap(nil, ck) {
		panic("engine: scratch check already enabled")
	}
	return func() []string {
		scratchCheck.Store(nil)
		ck.mu.Lock()
		defer ck.mu.Unlock()
		return ck.violations
	}
}

// sliceKey derives a comparable identity for a pooled buffer: the
// address of its first backing element. Buffers are pooled at length
// zero but non-zero capacity; a zero-capacity slice has no identity
// and returns nil (the checker ignores nil keys).
func sliceKey(s []trace.Entry) any {
	if cap(s) == 0 {
		return nil
	}
	return &s[:1][0]
}

// checkOut records that a pooled object acquired from a free list is
// now held. Two holders without an intervening checkIn means the
// free list handed one object out twice.
func (ck *scratchChecker) checkOut(key any, what string) {
	if key == nil {
		return
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if st, known := ck.pooled[key]; known && st == scratchOut {
		ck.violations = append(ck.violations,
			fmt.Sprintf("%s %p checked out while already held", what, key))
	}
	ck.pooled[key] = scratchOut
}

// checkIn records that a pooled object returned to a free list. A
// double put is the classic path to two concurrent holders, so it is
// a violation in itself. Unknown keys are recorded without complaint:
// a buffer that grew during use returns under the identity of its new
// backing array.
func (ck *scratchChecker) checkIn(key any, what string) {
	if key == nil {
		return
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if st, known := ck.pooled[key]; known && st == scratchFree {
		ck.violations = append(ck.violations,
			fmt.Sprintf("%s %p returned to the pool twice", what, key))
	}
	ck.pooled[key] = scratchFree
}

// useBegin marks an execution context (a worker and its design-bound
// runner and golden memory) as entered; a second concurrent entry is
// the work-stealing bug this checker exists to catch.
func (ck *scratchChecker) useBegin(key any, what string) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if holder, busy := ck.inUse[key]; busy {
		ck.violations = append(ck.violations,
			fmt.Sprintf("%s %p entered concurrently (already in use by %s)", what, key, holder))
		return
	}
	ck.inUse[key] = what
}

func (ck *scratchChecker) useEnd(key any) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	delete(ck.inUse, key)
}
