package engine_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"chatfuzz/internal/baseline/randinst"
	"chatfuzz/internal/engine"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/rocket"
	"chatfuzz/internal/trace"
)

// testProgs generates a deterministic batch of valid random programs.
func testProgs(seed int64, n, body int) []prog.Program {
	rng := rand.New(rand.NewSource(seed))
	out := make([]prog.Program, n)
	for i := range out {
		out[i] = prog.Program{Body: randinst.Program(rng, body)}
	}
	return out
}

// reference runs one program the allocating way: fresh DUT.Run and a
// fresh golden-model simulation per call.
func reference(dut rtl.DUT, p prog.Program) (rtl.Result, []trace.Entry) {
	img, _, err := prog.Build(p)
	if err != nil {
		panic(err)
	}
	budget := prog.InstructionBudget(len(p.Body))
	res := dut.Run(img, budget)
	m := mem.Platform()
	m.Load(img)
	g := iss.New(m, img.Entry)
	return res, g.Run(budget)
}

// TestEngineOutcomesMatchDirectRun drives rounds through engines of
// several worker counts — including the inline single-worker path and
// the pooled multi-worker path — and checks every outcome against the
// allocating reference execution, across multiple rounds so the
// scratch (memories, caches, coverage sets, trace buffers) is actually
// reused and must prove it resets cleanly.
func TestEngineOutcomesMatchDirectRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		dut := rocket.New()
		ref := rocket.New()
		e := engine.New(dut, engine.Config{Workers: workers, Detect: true})
		defer e.Close()

		for round := 0; round < 3; round++ {
			progs := testProgs(int64(100*workers+round), 8, 20)
			r := e.Submit(progs)
			r.Each(func(i int, o *engine.Outcome) {
				if o.Err != nil {
					t.Fatalf("workers=%d round %d test %d: unexpected build error %v", workers, round, i, o.Err)
				}
				wantRes, wantGolden := reference(ref, progs[i])
				if o.Res.Cycles != wantRes.Cycles || o.Res.Halted != wantRes.Halted ||
					o.Res.ExitCode != wantRes.ExitCode || o.Res.Regs != wantRes.Regs {
					t.Fatalf("workers=%d round %d test %d: result diverged from reference", workers, round, i)
				}
				if !reflect.DeepEqual(o.Res.Trace, wantRes.Trace) {
					t.Fatalf("workers=%d round %d test %d: DUT trace diverged", workers, round, i)
				}
				if !reflect.DeepEqual(o.Res.Coverage.Snapshot(), wantRes.Coverage.Snapshot()) {
					t.Fatalf("workers=%d round %d test %d: coverage diverged", workers, round, i)
				}
				if !reflect.DeepEqual(o.Golden, wantGolden) {
					t.Fatalf("workers=%d round %d test %d: golden trace diverged", workers, round, i)
				}
			})
		}
	}
}

// TestEngineReportsBuildErrors: an oversized body must surface as
// Outcome.Err in its input slot, with the other entries unaffected.
func TestEngineReportsBuildErrors(t *testing.T) {
	dut := rocket.New()
	e := engine.New(dut, engine.Config{Workers: 2, Detect: true})
	defer e.Close()

	progs := testProgs(7, 4, 12)
	progs[2] = prog.Program{Body: make([]uint32, prog.MaxBodyInstructions+1)}
	r := e.Submit(progs)
	r.Each(func(i int, o *engine.Outcome) {
		if i == 2 {
			if o.Err == nil {
				t.Error("oversized program did not report a build error")
			}
			if o.Res.Coverage != nil || o.Golden != nil {
				t.Error("failed build still produced simulation results")
			}
			return
		}
		if o.Err != nil {
			t.Errorf("test %d: unexpected error %v", i, o.Err)
		}
		if o.Res.Cycles == 0 {
			t.Errorf("test %d: did not simulate", i)
		}
	})
}

// TestConcurrentEngines runs several engines at once (the campaign
// orchestrator's shape: one engine per shard) to exercise the pools
// and worker loops under the race detector.
func TestConcurrentEngines(t *testing.T) {
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			dut := rocket.New()
			e := engine.New(dut, engine.Config{Workers: 2, Detect: true})
			defer e.Close()
			for round := 0; round < 2; round++ {
				progs := testProgs(int64(1000+10*s+round), 6, 16)
				got := 0
				e.Submit(progs).Each(func(i int, o *engine.Outcome) {
					if o.Err == nil && o.Res.Cycles > 0 {
						got++
					}
				})
				if got != len(progs) {
					t.Errorf("shard %d round %d: %d/%d outcomes", s, round, got, len(progs))
				}
			}
		}(s)
	}
	wg.Wait()
}
