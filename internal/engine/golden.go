package engine

import (
	"sync"

	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/trace"
)

// Every image the fuzzers build shares one harness layout, and its
// init section (trap-vector setup plus the ~170-instruction register
// init) is program-independent: straight-line, store-free, identical
// PCs and values on every run. Re-executing it on the golden model for
// every test therefore buys nothing — the DUT models do need it (cache
// and predictor warmup is part of their coverage), the ISS does not.
// The state below is computed once: the architectural snapshot at the
// first body instruction, and the prologue's commit-trace entries,
// which every golden run replays by copy instead of by execution.
var (
	prologueOnce  sync.Once
	prologueOK    bool
	prologueSnap  iss.Snapshot
	prologueTrace []trace.Entry
	prologueEntry uint64
)

func prologueInit() {
	img, layout := prog.MustBuild(prog.Program{})
	m := mem.Platform()
	m.Load(img)
	s := iss.New(m, img.Entry)
	// The init section fits its 0x400-byte slot, so well under 1024
	// steps reach the body; bail out (and fall back to full golden
	// runs) if the prologue ever stops being straight-line.
	for i := 0; i < 1024 && s.PC != layout.BodyBase; i++ {
		e, ok := s.Step()
		if !ok || e.Trap || s.Halted {
			return
		}
		prologueTrace = append(prologueTrace, e)
	}
	if s.PC != layout.BodyBase {
		prologueTrace = nil
		return
	}
	prologueSnap = s.Snapshot()
	prologueEntry = img.Entry
	prologueOK = true
}

// GoldenRun loads img into m and executes the golden-model ISS for at
// most budget instructions, appending the commit trace to buf[:0]. For
// images built by the standard harness (every fuzzer-generated test)
// the prologue is delta-replayed: its cached trace entries are copied
// and execution starts from the post-prologue snapshot, which skips
// the register-init re-execution on every test. The result is
// bit-identical to a from-reset run — non-harness entry points and
// budgets too small to clear the prologue fall back to one.
func GoldenRun(m *mem.Memory, img mem.Image, budget int, buf []trace.Entry) []trace.Entry {
	prologueOnce.Do(prologueInit)
	m.Load(img)
	if !prologueOK || img.Entry != prologueEntry || budget <= len(prologueTrace) {
		return iss.New(m, img.Entry).RunAppend(buf, budget)
	}
	entries := append(buf[:0], prologueTrace...)
	s := iss.NewFromSnapshot(prologueSnap, m)
	for i := len(prologueTrace); i < budget; i++ {
		e, ok := s.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
		if s.Halted {
			break
		}
	}
	return entries
}
