package engine

import (
	"encoding/binary"
	"sync"

	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/trace"
)

// Every image the fuzzers build shares one harness layout, and its
// init section (trap-vector setup plus the ~170-instruction register
// init) is program-independent: straight-line, store-free, identical
// PCs and values on every run. Re-executing it on the golden model for
// every test therefore buys nothing — the DUT models do need it (cache
// and predictor warmup is part of their coverage), the ISS does not.
// The prologue state below is computed once per entry PC: the
// architectural snapshot at the first body instruction, and the
// prologue's commit-trace entries, which every golden run replays by
// copy instead of by execution.
//
// Keying: the cache is keyed by the image's entry PC, the only axis on
// which images can differ before the body. It is deliberately NOT
// keyed per design — the prologue is executed on the golden-model ISS,
// whose semantics are design-independent, so a mixed Rocket+BOOM fleet
// sharing one prologue is correct by construction (the audit that
// replaced the old process-global sync.Once found no wrong-prologue
// reuse: the entry guard already rejected foreign images, and no
// design-dependent state exists on the ISS side; the per-design
// isolation that does matter — the snapshot trees below, which cache
// per-program state on shared pool workers — is keyed by design in
// worker.tree). TestGoldenMixedFleetPrologue locks the invariant in.
type prologue struct {
	ok    bool
	snap  iss.Snapshot
	trace []trace.Entry
	body  uint64 // BodyBase: the PC the prologue stepped to
}

var (
	prologueMu sync.Mutex
	prologues  = make(map[uint64]*prologue)
)

// prologueFor returns the (possibly negative) cached prologue state
// for images entering at entry.
func prologueFor(entry uint64) *prologue {
	prologueMu.Lock()
	defer prologueMu.Unlock()
	if p, ok := prologues[entry]; ok {
		return p
	}
	p := buildPrologue(entry)
	prologues[entry] = p
	return p
}

func buildPrologue(entry uint64) *prologue {
	img, layout := prog.MustBuild(prog.Program{})
	p := &prologue{body: layout.BodyBase}
	if entry != img.Entry {
		// Not a standard-harness image: no prologue to skip. The
		// negative result is cached so foreign entry points stay a
		// single map hit.
		return p
	}
	m := mem.Platform()
	m.Load(img)
	s := iss.New(m, img.Entry)
	// The init section fits its 0x400-byte slot, so well under 1024
	// steps reach the body; bail out (and fall back to full golden
	// runs) if the prologue ever stops being straight-line.
	for i := 0; i < 1024 && s.PC != layout.BodyBase; i++ {
		e, ok := s.Step()
		if !ok || e.Trap || s.Halted {
			return p
		}
		p.trace = append(p.trace, e)
	}
	if s.PC != layout.BodyBase {
		p.trace = nil
		return p
	}
	p.snap = s.Snapshot()
	p.ok = true
	return p
}

// GoldenRun loads img into m and executes the golden-model ISS for at
// most budget instructions, appending the commit trace to buf[:0]. For
// images built by the standard harness (every fuzzer-generated test)
// the prologue is delta-replayed: its cached trace entries are copied
// and execution starts from the post-prologue snapshot, which skips
// the register-init re-execution on every test. The result is
// bit-identical to a from-reset run — non-harness entry points and
// budgets too small to clear the prologue fall back to one.
//
// GoldenRun is the reference implementation shared by the serial loop;
// engine workers run the further-optimised goldenRun below (snapshot
// tree + decode cache), which must stay bit-identical to this one.
func GoldenRun(m *mem.Memory, img mem.Image, budget int, buf []trace.Entry) []trace.Entry {
	pro := prologueFor(img.Entry)
	m.Load(img)
	if !pro.ok || budget <= len(pro.trace) {
		return iss.New(m, img.Entry).RunAppend(buf, budget)
	}
	entries := append(buf[:0], pro.trace...)
	s := iss.NewFromSnapshot(pro.snap, m)
	for i := len(pro.trace); i < budget; i++ {
		e, ok := s.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
		if s.Halted {
			break
		}
	}
	return entries
}

// ---- Golden snapshot tree ----
//
// The prologue skip above exploits that every image shares a common
// prefix of executed instructions. The snapshot tree generalises it to
// the bodies themselves: mutation-style generators (TheHuzz, the
// recorded-pool replays) produce families of programs sharing body
// prefixes, and a store-free, straight-line, trap-free prefix executes
// identically on every image that shares it — same pre-state (the
// post-prologue snapshot), same instruction words, and no reads from
// memory that may differ between the images. Workers therefore cache
// mid-body snapshots at a few fixed depths and replay the deepest
// matching prefix by trace copy, exactly like the prologue.
//
// Prefix-safety argument (the invariant FuzzSnapshotTreePrefix
// hammers): two standard-harness images that share the first d body
// words have identical memory everywhere except the half-open text
// interval [BodyBase+4d, TextBase+TextSize) — the harness sections and
// the data region are identical (prog.Build emits no data segment, so
// data reads as zeros), and the bodies agree below 4d. A body step i <
// d is replay-safe when it
//
//   - fetched from inside the shared prefix (PC == BodyBase+4i),
//   - did not trap, halt or write memory (memory stays image-fresh),
//   - fell through to BodyBase+4(i+1) (the next fetch stays in the
//     prefix), and
//   - loaded, if at all, only from outside [BodyBase, text end) — a
//     conservative 8-byte-wide window below BodyBase or anything at or
//     above the text region, both identical across the family.
//
// Eligibility is checked per step during normal execution, so
// capturing costs a handful of compares; snapshots are taken at the
// depths in snapCaptureDepths while the prefix stays eligible.
const (
	snapTreeCap = 64 // nodes per (worker, design) tree
)

// snapCaptureDepths are the body depths at which eligible runs leave
// snapshots behind. Powers of two: deep enough that a hit skips real
// work, few enough that a miss costs a handful of snapshot copies.
var snapCaptureDepths = [...]int{4, 8, 16, 32, 64}

// snapNode is one cached mid-body state: the architectural snapshot
// after depth eligible body instructions of the prefix in body, plus
// that prefix's trace entries. body and tr are owned by the node and
// recycled through evictions, so a warm tree inserts without heap
// growth.
type snapNode struct {
	depth int
	body  []uint32 // the prefix words (collision check for the hash key)
	snap  iss.Snapshot
	tr    []trace.Entry // body-trace entries [0, depth)
	tick  uint64        // logical LRU clock value of the last touch
}

// snapTree is a per-worker, per-design snapshot cache. Keys are FNV-1a
// hashes of the prefix words (verified against the stored prefix on
// every hit, so a collision degrades to a miss, never to a wrong
// replay). Eviction is least-recently-touched by logical tick — no
// wall clock, no map iteration.
type snapTree struct {
	pro   *prologue
	nodes map[uint64]*snapNode
	order []*snapNode // eviction scan set (unordered membership)
	tick  uint64
}

func newSnapTree(pro *prologue) *snapTree {
	return &snapTree{pro: pro, nodes: make(map[uint64]*snapNode, snapTreeCap)}
}

// prefixHash extends an FNV-1a hash with body words [from, to).
func prefixHash(h uint64, body []uint32, from, to int) uint64 {
	const fnvPrime = 1099511628211
	var b [4]byte
	for i := from; i < to; i++ {
		binary.LittleEndian.PutUint32(b[:], body[i])
		for _, c := range b {
			h ^= uint64(c)
			h *= fnvPrime
		}
	}
	return h
}

const fnvOffset = 14695981039346656037

func prefixEqual(a []uint32, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup returns the deepest node whose prefix matches body and whose
// replay fits the step budget, or nil. hashes[i] must hold the prefix
// hash up to snapCaptureDepths[i].
func (t *snapTree) lookup(body []uint32, hashes *[len(snapCaptureDepths)]uint64, maxDepth int) *snapNode {
	for i := len(snapCaptureDepths) - 1; i >= 0; i-- {
		d := snapCaptureDepths[i]
		if d > len(body) || d > maxDepth {
			continue
		}
		n, ok := t.nodes[hashes[i]]
		if !ok || n.depth != d || !prefixEqual(n.body, body[:d]) {
			continue
		}
		t.tick++
		n.tick = t.tick
		return n
	}
	return nil
}

// insert caches a snapshot at depth d for body's prefix, evicting the
// least-recently-touched node when the tree is full. tr is copied (or
// written into a recycled node's buffer); snap is stored by value.
func (t *snapTree) insert(body []uint32, d int, hash uint64, snap iss.Snapshot, tr []trace.Entry) {
	if n, ok := t.nodes[hash]; ok {
		if n.depth == d && prefixEqual(n.body, body[:d]) {
			t.tick++
			n.tick = t.tick // already cached: refresh, don't duplicate
			return
		}
		// Hash collision with a different prefix: keep the incumbent.
		return
	}
	var n *snapNode
	if len(t.order) >= snapTreeCap {
		// Evict the minimum-tick node and recycle its buffers. Ticks
		// are unique (every touch increments t.tick), so the victim is
		// unambiguous regardless of map or slice order.
		vi := 0
		for i, c := range t.order {
			if c.tick < t.order[vi].tick {
				vi = i
			}
		}
		n = t.order[vi]
		t.order[vi] = t.order[len(t.order)-1]
		t.order = t.order[:len(t.order)-1]
		delete(t.nodes, n.key())
	} else {
		n = &snapNode{}
	}
	n.depth = d
	n.body = append(n.body[:0], body[:d]...)
	n.snap = snap
	n.tr = append(n.tr[:0], tr...)
	t.tick++
	n.tick = t.tick
	t.nodes[hash] = n
	t.order = append(t.order, n)
}

// key recomputes a node's hash key (used only on eviction, so nodes
// don't store their own hash).
func (n *snapNode) key() uint64 {
	return prefixHash(fnvOffset, n.body, 0, n.depth)
}

// tree returns the worker's snapshot tree for the design it is bound
// to, keyed per design so a shared fleet-pool worker serving a mixed
// fleet can never replay one design's cached state for another, and
// invalidated if the prologue identity ever changes.
func (w *worker) tree(design string, pro *prologue) *snapTree {
	if w.trees == nil {
		w.trees = make(map[string]*snapTree, 2)
	}
	t, ok := w.trees[design]
	if !ok || t.pro != pro {
		t = newSnapTree(pro)
		w.trees[design] = t
	}
	return t
}

const dcacheWords = 0x4000 / 4 // decode-cache window: first 16 KiB of text

// goldenRun is the engine workers' golden-model run: GoldenRun plus
// the per-worker snapshot tree and decode cache. body must be the
// program's body words (the builder's input for img). The returned
// trace is bit-identical to GoldenRun's — the tree only ever replays
// prefixes proven eligible, and the decode cache re-validates the raw
// word on every fetch, so self-modifying code re-decodes.
func (w *worker) goldenRun(sh *shared, img mem.Image, body []uint32, budget int, buf []trace.Entry) []trace.Entry {
	pro := prologueFor(img.Entry)
	m := w.gmem
	m.Load(img)
	if w.dcache == nil {
		w.dcache = iss.NewDecodeCache(mem.TextBase, dcacheWords)
	}
	if !pro.ok || budget <= len(pro.trace) {
		s := iss.New(m, img.Entry)
		s.Cache = w.dcache
		return s.RunAppend(buf, budget)
	}
	t := w.tree(w.bound, pro)

	// Running prefix hashes up to each capture depth (FNV-1a is
	// prefix-incremental, so the whole set costs one pass).
	var hashes [len(snapCaptureDepths)]uint64
	h, from := uint64(fnvOffset), 0
	for i, d := range snapCaptureDepths {
		if d > len(body) {
			hashes[i] = 0
			continue
		}
		h = prefixHash(h, body, from, d)
		hashes[i], from = h, d
	}

	entries := append(buf[:0], pro.trace...)
	startBody := 0
	var s *iss.ISS
	if n := t.lookup(body, &hashes, budget-len(pro.trace)); n != nil {
		entries = append(entries, n.tr...)
		s = iss.NewFromSnapshot(n.snap, m)
		startBody = n.depth
		sh.snapHits.Add(1)
	} else {
		s = iss.NewFromSnapshot(pro.snap, m)
		sh.snapMisses.Add(1)
	}
	s.Cache = w.dcache

	// Execute the rest, tracking prefix eligibility to leave deeper
	// snapshots behind. A hit resumes with the prefix already proven
	// eligible (nodes are only ever captured from eligible runs).
	const textEnd = mem.TextBase + mem.TextSize
	eligible := true
	bi := startBody // body instructions executed eligibly so far
	nextCap := 0
	for nextCap < len(snapCaptureDepths) && snapCaptureDepths[nextCap] <= startBody {
		nextCap++
	}
	var capSnaps [len(snapCaptureDepths)]iss.Snapshot
	var capDepths [len(snapCaptureDepths)]int
	nCaps := 0
	for len(entries) < budget {
		prePC := s.PC
		e, ok := s.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
		if eligible {
			switch {
			case prePC != pro.body+uint64(4*bi),
				e.Trap, s.Halted, e.MemWrite,
				s.PC != pro.body+uint64(4*(bi+1)),
				e.MemValid && !(e.MemAddr+8 <= pro.body || e.MemAddr >= textEnd):
				eligible = false
			default:
				bi++
				if nextCap < len(snapCaptureDepths) && bi == snapCaptureDepths[nextCap] {
					if bi <= len(body) {
						capDepths[nCaps] = bi
						capSnaps[nCaps] = s.Snapshot()
						nCaps++
					}
					nextCap++
				}
			}
		}
		if s.Halted {
			break
		}
	}
	for k := 0; k < nCaps; k++ {
		d := capDepths[k]
		var hi int
		for hi = 0; snapCaptureDepths[hi] != d; hi++ {
		}
		t.insert(body, d, hashes[hi], capSnaps[k], entries[len(pro.trace):len(pro.trace)+d])
	}
	return entries
}
