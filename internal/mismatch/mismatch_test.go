package mismatch

import (
	"encoding/json"
	"strings"
	"testing"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl/rocket"
	"chatfuzz/internal/trace"
)

func entry(pc uint64, op isa.Op, raw uint32) trace.Entry {
	return trace.Entry{PC: pc, Op: op, Raw: raw, Priv: isa.PrivM}
}

func TestNoMismatchOnIdenticalTraces(t *testing.T) {
	d := NewDetector()
	tr := []trace.Entry{entry(0x100, isa.OpADDI, 0x13), entry(0x104, isa.OpADD, 0x33)}
	ms := d.Analyze(0, tr, tr)
	if len(ms) != 0 || d.RawCount != 0 {
		t.Errorf("identical traces produced %d mismatches", len(ms))
	}
}

func TestKindClassification(t *testing.T) {
	g := entry(0x100, isa.OpMUL, 0x02B50533)
	g.RdValid, g.Rd, g.RdVal = true, isa.A0, 42
	dut := entry(0x100, isa.OpMUL, 0x02B50533) // no rd write: Bug2

	d := NewDetector()
	ms := d.Analyze(0, []trace.Entry{dut}, []trace.Entry{g})
	if len(ms) != 1 {
		t.Fatalf("want 1 mismatch, got %d", len(ms))
	}
	if ms[0].Kind != KindRdWrite {
		t.Errorf("kind = %v, want rd-write-presence", ms[0].Kind)
	}
	if ms[0].Finding != FindingBug2 {
		t.Errorf("finding = %v, want Bug2", ms[0].Finding)
	}
}

func TestFinding1Classification(t *testing.T) {
	g := entry(0x100, isa.OpLW, 0)
	g.Trap, g.Cause = true, isa.ExcLoadAddrMisaligned
	dut := entry(0x100, isa.OpLW, 0)
	dut.Trap, dut.Cause = true, isa.ExcLoadAccessFault

	d := NewDetector()
	ms := d.Analyze(0, []trace.Entry{dut}, []trace.Entry{g})
	if ms[0].Kind != KindCause || ms[0].Finding != Finding1 {
		t.Errorf("got kind=%v finding=%v", ms[0].Kind, ms[0].Finding)
	}
}

func TestStaleFetchStopsComparison(t *testing.T) {
	g1 := entry(0x100, isa.OpADDI, 0x00100093)
	d1 := entry(0x100, isa.OpADDI, 0x00200093) // different word fetched
	g2 := entry(0x104, isa.OpADD, 0x33)
	d2 := entry(0x200, isa.OpSUB, 0x44) // nonsense afterwards

	d := NewDetector()
	ms := d.Analyze(0, []trace.Entry{d1, d2}, []trace.Entry{g1, g2})
	if len(ms) != 1 {
		t.Fatalf("comparison must stop after stale fetch; got %d mismatches", len(ms))
	}
	if ms[0].Kind != KindStaleFetch || ms[0].Finding != FindingBug1 {
		t.Errorf("got %v/%v, want stale-fetch/Bug1", ms[0].Kind, ms[0].Finding)
	}
}

func TestCycleCSRFilterAndTaint(t *testing.T) {
	raw := isa.EncCSR(isa.OpCSRRS, isa.A0, 0, isa.CSRMCycle)
	g1 := entry(0x100, isa.OpCSRRS, raw)
	g1.RdValid, g1.Rd, g1.RdVal = true, isa.A0, 10
	d1 := g1
	d1.RdVal = 99 // cycle counts differ: expected

	g2 := entry(0x104, isa.OpADDI, 0x13)
	g2.RdValid, g2.Rd, g2.RdVal = true, isa.A1, 11
	d2 := g2
	d2.RdVal = 100 // cascade of the filtered divergence

	d := NewDetector()
	ms := d.Analyze(0, []trace.Entry{d1, d2}, []trace.Entry{g1, g2})
	if len(ms) != 2 {
		t.Fatalf("want 2 raw mismatches, got %d", len(ms))
	}
	for i, m := range ms {
		if !m.Filtered || m.Finding != FindingFalsePositive {
			t.Errorf("mismatch %d should be filtered (taint), got %+v", i, m.Finding)
		}
	}
	if d.FilteredRaw != 2 {
		t.Errorf("FilteredRaw = %d, want 2", d.FilteredRaw)
	}
}

func TestUniqueClustering(t *testing.T) {
	d := NewDetector()
	// Ten instances of the same Bug2 signature across tests.
	for i := 0; i < 10; i++ {
		g := entry(uint64(0x100+4*i), isa.OpMUL, 0x02B50533)
		g.RdValid, g.Rd, g.RdVal = true, isa.A0, uint64(i)
		dut := g
		dut.RdValid, dut.Rd, dut.RdVal = false, 0, 0
		d.Analyze(i, []trace.Entry{dut}, []trace.Entry{g})
	}
	uniq := d.Unique()
	if len(uniq) != 1 {
		t.Fatalf("want 1 unique signature, got %d", len(uniq))
	}
	if uniq[0].Count != 10 {
		t.Errorf("count = %d, want 10", uniq[0].Count)
	}
	if d.RawCount != 10 {
		t.Errorf("raw = %d, want 10", d.RawCount)
	}
}

func TestTraceLengthMismatch(t *testing.T) {
	d := NewDetector()
	g := []trace.Entry{entry(0x100, isa.OpADDI, 0x13), entry(0x104, isa.OpADDI, 0x13)}
	ms := d.Analyze(0, g[:1], g)
	if len(ms) != 1 || ms[0].Kind != KindLength {
		t.Fatalf("want trace-length mismatch, got %+v", ms)
	}
}

// End-to-end: run the Rocket model and the golden ISS on bodies that
// trigger each finding, and verify the detector reports them all.
func TestEndToEndFindingDetection(t *testing.T) {
	d := NewDetector()
	r := rocket.New()

	bodies := map[string][]uint32{
		"bug2": {
			isa.Enc(isa.OpMUL, isa.A2, isa.A5, isa.A5, 0),
		},
		"finding1": {
			isa.Enc(isa.OpADDI, isa.TP, isa.TP, 0, 1),
			isa.Enc(isa.OpLW, isa.A0, isa.TP, 0, 0),
		},
		"finding2": {
			isa.EncAMO(isa.OpAMOORD, 0, isa.A0, isa.A5, false, false),
		},
		"finding3": {
			isa.Enc(isa.OpLD, 0, isa.A0, 0, 0),
		},
		"bug1": {
			// Execute victim, patch it in place, loop back over it.
			isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),
			isa.Enc(isa.OpADDI, isa.A2, 0, 0, 0),
			isa.Enc(isa.OpADDI, isa.A1, 0, 0, 1), // victim @ +8
			isa.Enc(isa.OpLW, isa.T1, isa.S0, 0, 0),
			isa.Enc(isa.OpSW, 0, isa.A0, isa.T1, 8),
			isa.Enc(isa.OpADDI, isa.A2, isa.A2, 0, 1),
			isa.Enc(isa.OpADDI, isa.T2, 0, 0, 2),
			isa.Enc(isa.OpBLT, 0, isa.A2, isa.T2, -20),
		},
	}

	testID := 0
	for name, body := range bodies {
		img, _ := prog.MustBuild(prog.Program{Body: body})
		if name == "bug1" {
			var seg mem.Image
			seg.AddWords(mem.DataBase+0x2000, []uint32{isa.Enc(isa.OpADDI, isa.A1, 0, 0, 2)})
			img.Segments = append(img.Segments, seg.Segments...)
		}
		budget := prog.InstructionBudget(len(body))
		res := r.Run(img, budget)
		m := mem.Platform()
		m.Load(img)
		g := iss.New(m, img.Entry)
		gt := g.Run(budget)
		d.Analyze(testID, res.Trace, gt)
		testID++
	}

	found := d.Findings()
	for _, f := range []Finding{FindingBug1, FindingBug2, Finding1, Finding2, Finding3} {
		if found[f] == 0 {
			t.Errorf("finding %v not detected end-to-end", f)
		}
	}
	rep := d.Report()
	for _, want := range []string{"Bug1", "Bug2", "Finding1", "Finding2", "Finding3"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %s:\n%s", want, rep)
		}
	}
}

// TestStateRoundTrip: a detector serialized through State/SetState
// (and through JSON, as campaign checkpoints do) must report
// identically to the original, and keep accumulating correctly.
func TestStateRoundTrip(t *testing.T) {
	d := NewDetector()
	g1 := entry(0x100, isa.OpMUL, 0x02B50533)
	g1.RdValid, g1.Rd, g1.RdVal = true, isa.A0, 42
	d1 := entry(0x100, isa.OpMUL, 0x02B50533)
	d.Analyze(1, []trace.Entry{d1}, []trace.Entry{g1})
	d.Analyze(2, []trace.Entry{d1}, []trace.Entry{g1})
	d.SkipTest()

	raw, err := json.Marshal(d.State())
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	d2 := NewDetector()
	d2.SetState(st)

	if d2.Tests != d.Tests || d2.RawCount != d.RawCount || d2.FilteredRaw != d.FilteredRaw {
		t.Errorf("counters differ after restore: %d/%d/%d vs %d/%d/%d",
			d2.Tests, d2.RawCount, d2.FilteredRaw, d.Tests, d.RawCount, d.FilteredRaw)
	}
	if d2.Report() != d.Report() {
		t.Errorf("report differs after restore:\n%s\nvs\n%s", d2.Report(), d.Report())
	}

	// The restored detector must keep clustering into the same records.
	d.Analyze(3, []trace.Entry{d1}, []trace.Entry{g1})
	d2.Analyze(3, []trace.Entry{d1}, []trace.Entry{g1})
	if d2.Report() != d.Report() {
		t.Errorf("report diverges after further analysis:\n%s\nvs\n%s", d2.Report(), d.Report())
	}
	u := d2.Unique()
	if len(u) != 1 || u[0].Count != 3 {
		t.Fatalf("restored detector records = %+v, want one record with count 3", u)
	}
}

func TestNovelSignaturesCountsClustersNotRepeats(t *testing.T) {
	d := NewDetector()
	if d.NovelSignatures() != 0 {
		t.Fatal("fresh detector reports novel signatures")
	}
	// Ten repeats of one divergence: one cluster, one novel signature.
	for i := 0; i < 10; i++ {
		g := entry(uint64(0x100+4*i), isa.OpMUL, 0x02B50533)
		g.RdValid, g.Rd, g.RdVal = true, isa.A0, uint64(i)
		dut := g
		dut.RdValid, dut.Rd, dut.RdVal = false, 0, 0
		d.Analyze(i, []trace.Entry{dut}, []trace.Entry{g})
	}
	if got := d.NovelSignatures(); got != 1 {
		t.Errorf("after 10 repeats, NovelSignatures = %d, want 1", got)
	}
	// A filtered divergence (cycle CSR read) must not count as novel.
	csr := uint32(0xC0002573) // rdcycle a0
	g := entry(0x200, isa.OpCSRRS, csr)
	g.RdValid, g.Rd, g.RdVal = true, isa.A0, 7
	dut := g
	dut.RdVal = 9
	d.Analyze(20, []trace.Entry{dut}, []trace.Entry{g})
	if got := d.NovelSignatures(); got != 1 {
		t.Errorf("filtered divergence changed NovelSignatures to %d, want 1", got)
	}
	// A genuinely different cluster counts again, and the counter
	// round-trips through checkpoint state.
	g2 := entry(0x300, isa.OpADD, 0x33)
	dut2 := g2
	dut2.Trap, dut2.Cause = true, 2
	d.Analyze(21, []trace.Entry{dut2}, []trace.Entry{g2})
	if got := d.NovelSignatures(); got != 2 {
		t.Errorf("new cluster: NovelSignatures = %d, want 2", got)
	}
	fresh := NewDetector()
	fresh.SetState(d.State())
	if got := fresh.NovelSignatures(); got != 2 {
		t.Errorf("restored detector: NovelSignatures = %d, want 2", got)
	}
}
