// Package mismatch implements the paper's Mismatch Detector (§IV-A):
// differential comparison of the DUT commit trace against the golden
// model's, filtration of known false positives (e.g. reads of the
// cycle/time CSRs, which legitimately differ between an ISS and RTL),
// automated clustering of raw mismatches into unique signatures, and
// classification of signatures into the known findings (Bug1, Bug2,
// Findings 1–3).
//chatfuzz:deterministic package
package mismatch

import (
	"fmt"
	"sort"
	"strings"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/trace"
)

// Kind is the category of a single trace divergence.
type Kind int

// Divergence kinds, ordered roughly by diagnostic precision.
const (
	KindNone        Kind = iota
	KindStaleFetch       // same PC, different instruction word (I$ incoherence)
	KindRdWrite          // one trace reports a register write, the other does not
	KindRdValue          // both report the write, values differ
	KindCause            // both trap, cause differs
	KindTrap             // one traps, the other does not
	KindMemEffect        // memory address/write flag differs
	KindControlFlow      // PC differs: alignment lost
	KindLength           // one trace ended early
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindStaleFetch:
		return "stale-fetch"
	case KindRdWrite:
		return "rd-write-presence"
	case KindRdValue:
		return "rd-value"
	case KindCause:
		return "trap-cause"
	case KindTrap:
		return "trap-presence"
	case KindMemEffect:
		return "mem-effect"
	case KindControlFlow:
		return "control-flow"
	case KindLength:
		return "trace-length"
	}
	return "none"
}

// Finding identifies a classified root cause.
type Finding int

// The paper's findings plus the unknown/false-positive buckets.
const (
	FindingUnknown Finding = iota
	FindingBug1            // FENCE.I / I-cache coherency (CWE-1202)
	FindingBug2            // tracer omits MUL/DIV writeback (CWE-440)
	Finding1               // exception priority inversion
	Finding2               // AMO with rd=x0 visible in trace
	Finding3               // load to x0 visible in trace
	FindingFalsePositive   // filtered (e.g. cycle CSR reads)
)

// String returns the paper's name for the finding.
func (f Finding) String() string {
	switch f {
	case FindingBug1:
		return "Bug1: FENCE.I cache coherency (CWE-1202)"
	case FindingBug2:
		return "Bug2: tracer omits MUL/DIV rd write (CWE-440)"
	case Finding1:
		return "Finding1: exception priority inversion"
	case Finding2:
		return "Finding2: AMO with rd=x0 in trace"
	case Finding3:
		return "Finding3: trace write to x0"
	case FindingFalsePositive:
		return "false positive (filtered)"
	}
	return "unknown"
}

// Mismatch is one raw divergence between aligned trace entries.
type Mismatch struct {
	Test      int // test index, assigned by the caller
	Index     int // entry index within the trace
	Kind      Kind
	DUT       trace.Entry
	Golden    trace.Entry
	Signature string
	Finding   Finding
	Filtered  bool
}

// Filter flags a divergence as a known false positive. Verification
// engineers add filters to suppress expected ISS-vs-RTL differences
// (paper §IV-A).
type Filter func(dut, golden trace.Entry) bool

// CycleCSRFilter suppresses rd-value differences on reads of the
// cycle, time and mcycle CSRs: the ISS counts instructions while the
// DUT counts real cycles, so these legitimately differ.
func CycleCSRFilter(dut, golden trace.Entry) bool {
	if !golden.Op.Is(isa.ClassCSR) {
		return false
	}
	inst := isa.Decode(golden.Raw)
	switch inst.CSR {
	case isa.CSRCycle, isa.CSRTime, isa.CSRMCycle:
		return true
	}
	return false
}

// Record aggregates all raw mismatches sharing one signature.
type Record struct {
	Signature string
	Kind      Kind
	Finding   Finding
	Count     int
	Filtered  bool
	Example   Mismatch
}

// Detector accumulates differential results across a fuzzing campaign.
type Detector struct {
	filters []Filter
	unique  map[string]*Record

	Tests        int
	RawCount     int
	FilteredRaw  int
}

// NewDetector returns a detector with the default filter set.
func NewDetector(filters ...Filter) *Detector {
	if len(filters) == 0 {
		filters = []Filter{CycleCSRFilter}
	}
	return &Detector{filters: filters, unique: make(map[string]*Record)}
}

// signature builds the clustering key: mismatches with the same kind,
// opcode, and cause/register fingerprint are instances of the same
// underlying issue.
func signature(k Kind, dut, golden trace.Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s", k, golden.Op)
	switch k {
	case KindCause:
		fmt.Fprintf(&b, "|%d-vs-%d", dut.Cause, golden.Cause)
	case KindRdWrite:
		fmt.Fprintf(&b, "|dut=%v,x%d", dut.RdValid, dut.Rd)
	case KindTrap:
		fmt.Fprintf(&b, "|dut=%v", dut.Trap)
	case KindStaleFetch, KindControlFlow, KindLength, KindRdValue, KindMemEffect:
		// opcode-level signature is enough
	}
	return b.String()
}

// classify maps a divergence onto the known findings.
func classify(k Kind, dut, golden trace.Entry) Finding {
	op := golden.Op
	switch k {
	case KindStaleFetch:
		return FindingBug1
	case KindRdWrite:
		switch {
		case golden.RdValid && !dut.RdValid && op.IsAny(isa.ClassMul|isa.ClassDiv):
			return FindingBug2
		case dut.RdValid && dut.Rd == 0 && op.Is(isa.ClassAMO):
			return Finding2
		case dut.RdValid && dut.Rd == 0 && op.Is(isa.ClassLoad):
			return Finding3
		}
	case KindCause:
		mis := func(c uint64) bool {
			return c == isa.ExcLoadAddrMisaligned || c == isa.ExcStoreAddrMisaligned
		}
		acc := func(c uint64) bool {
			return c == isa.ExcLoadAccessFault || c == isa.ExcStoreAccessFault
		}
		if acc(dut.Cause) && mis(golden.Cause) {
			return Finding1
		}
	}
	return FindingUnknown
}

// diffKind determines how two aligned entries diverge.
func diffKind(d, g trace.Entry) Kind {
	switch {
	case d == g:
		return KindNone
	case d.PC != g.PC:
		return KindControlFlow
	case d.Raw != g.Raw:
		return KindStaleFetch
	case d.Trap != g.Trap:
		return KindTrap
	case d.Trap && d.Cause != g.Cause:
		return KindCause
	case d.RdValid != g.RdValid:
		return KindRdWrite
	case d.RdValid && (d.Rd != g.Rd || d.RdVal != g.RdVal):
		return KindRdValue
	case d.MemValid != g.MemValid || d.MemAddr != g.MemAddr || d.MemWrite != g.MemWrite:
		return KindMemEffect
	default:
		return KindRdValue // tval/priv and other field drift
	}
}

// SkipTest accounts a test that produced no traces to compare (e.g. a
// program the harness refused to build). It keeps the detector's test
// count aligned with the campaign's test numbering, so a finding's
// Test field never exceeds the detector's own reported test total.
func (d *Detector) SkipTest() { d.Tests++ }

// Analyze compares one test's DUT and golden traces, records every raw
// divergence up to the point where instruction alignment is lost, and
// returns them. Once a filtered (false-positive) divergence occurs,
// the remainder of the test is tainted: downstream divergences are
// cascades of the filtered difference and are filtered too.
func (d *Detector) Analyze(test int, dut, golden []trace.Entry) []Mismatch {
	d.Tests++
	var out []Mismatch
	tainted := false

	n := len(dut)
	if len(golden) < n {
		n = len(golden)
	}
	for i := 0; i < n; i++ {
		k := diffKind(dut[i], golden[i])
		if k == KindNone {
			continue
		}
		filtered := tainted
		if !filtered {
			for _, f := range d.filters {
				if f(dut[i], golden[i]) {
					filtered = true
					tainted = true
					break
				}
			}
		}
		m := Mismatch{
			Test: test, Index: i, Kind: k,
			DUT: dut[i], Golden: golden[i],
			Filtered: filtered,
		}
		m.Signature = signature(k, dut[i], golden[i])
		if filtered {
			m.Finding = FindingFalsePositive
		} else {
			m.Finding = classify(k, dut[i], golden[i])
		}
		out = append(out, m)
		d.record(m)
		// Alignment is lost after control-flow or stale-fetch
		// divergence: stop comparing this test.
		if k == KindControlFlow || k == KindStaleFetch {
			break
		}
	}
	if len(out) == 0 && len(dut) != len(golden) {
		m := Mismatch{Test: test, Index: n, Kind: KindLength, Filtered: tainted}
		if n > 0 {
			m.DUT, m.Golden = dut[n-1], golden[n-1]
		}
		m.Signature = "trace-length"
		if tainted {
			m.Finding = FindingFalsePositive
		}
		out = append(out, m)
		d.record(m)
	}
	return out
}

func (d *Detector) record(m Mismatch) {
	d.RawCount++
	if m.Filtered {
		d.FilteredRaw++
	}
	r, ok := d.unique[m.Signature]
	if !ok {
		r = &Record{Signature: m.Signature, Kind: m.Kind, Finding: m.Finding,
			Filtered: m.Filtered, Example: m}
		d.unique[m.Signature] = r
	}
	r.Count++
	// A non-filtered instance upgrades a previously filtered record.
	if !m.Filtered && r.Filtered {
		r.Filtered = false
		r.Finding = m.Finding
		r.Example = m
	}
}

// State is the detector's serializable form: the counters plus the
// clustered records in Unique() order (deterministic, so identical
// detectors checkpoint to identical bytes). Every field of a Record —
// including the trace entries of its example — is plain data, so State
// marshals directly to JSON and round-trips exactly.
type State struct {
	Tests       int
	RawCount    int
	FilteredRaw int
	Records     []Record
}

// State captures the detector for a campaign checkpoint.
func (d *Detector) State() State {
	st := State{Tests: d.Tests, RawCount: d.RawCount, FilteredRaw: d.FilteredRaw}
	for _, r := range d.Unique() {
		st.Records = append(st.Records, *r)
	}
	return st
}

// SetState restores a checkpointed detector: counters and clustered
// records replace the current contents (filters are construction-time
// configuration and are kept). A resumed fleet therefore reports
// cumulative findings across the pause instead of restarting at zero.
func (d *Detector) SetState(st State) {
	d.Tests = st.Tests
	d.RawCount = st.RawCount
	d.FilteredRaw = st.FilteredRaw
	d.unique = make(map[string]*Record, len(st.Records))
	for i := range st.Records {
		r := st.Records[i]
		d.unique[r.Signature] = &r
	}
}

// NovelSignatures returns the number of unique non-filtered mismatch
// signatures observed so far — the detector's cluster count after
// filtration. Unlike RawCount it grows only when a *new* kind of
// divergence appears (or a previously filtered cluster is upgraded by
// a non-filtered instance), which makes it the right currency for
// novelty rewards: a noisy divergence repeating one signature moves
// RawCount every test but NovelSignatures only once. It never
// decreases, and it is derivable from State, so checkpoints need no
// extra field.
func (d *Detector) NovelSignatures() int {
	n := 0
	// Commutative count over the cluster set: order cannot reach n.
	//lint:allow mapiter order-insensitive count
	for _, r := range d.unique {
		if !r.Filtered {
			n++
		}
	}
	return n
}

// Unique returns the clustered mismatch records, most frequent first.
func (d *Detector) Unique() []*Record {
	out := make([]*Record, 0, len(d.unique))
	for _, r := range d.unique {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// Findings returns the set of classified findings that have at least
// one non-filtered record.
func (d *Detector) Findings() map[Finding]int {
	out := make(map[Finding]int)
	// Commutative integer sums bucketed by finding: iteration order
	// cannot reach the totals.
	//lint:allow mapiter order-insensitive commutative sum
	for _, r := range d.unique {
		if !r.Filtered && r.Finding != FindingUnknown {
			out[r.Finding] += r.Count
		}
	}
	return out
}

// Report renders the campaign summary in the shape of the paper's
// §V-B: raw disparities, unique mismatches after automated filtration,
// and the classified findings.
func (d *Detector) Report() string {
	var b strings.Builder
	uniq := d.Unique()
	nonFiltered := 0
	for _, r := range uniq {
		if !r.Filtered {
			nonFiltered++
		}
	}
	fmt.Fprintf(&b, "mismatch detection over %d tests\n", d.Tests)
	fmt.Fprintf(&b, "  raw mismatches:        %d (%d filtered as false positives)\n",
		d.RawCount, d.FilteredRaw)
	fmt.Fprintf(&b, "  unique signatures:     %d (%d after filtration)\n", len(uniq), nonFiltered)
	fmt.Fprintf(&b, "  classified findings:\n")
	for f := FindingBug1; f <= Finding3; f++ {
		n := 0
		for _, r := range uniq {
			if r.Finding == f && !r.Filtered {
				n += r.Count
			}
		}
		mark := " "
		if n > 0 {
			mark = "x"
		}
		fmt.Fprintf(&b, "    [%s] %-48s %6d instances\n", mark, f, n)
	}
	return b.String()
}
