package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return string(b)
}

// listTemps returns the leftover staging files for path, which must be
// none after any completed WriteFile — success or failure.
func listTemps(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".tmp*")
	if err != nil {
		t.Fatalf("Glob: %v", err)
	}
	return matches
}

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileBytes(path, []byte("gen-1")); err != nil {
		t.Fatalf("WriteFileBytes: %v", err)
	}
	if got := readFile(t, path); got != "gen-1" {
		t.Fatalf("content = %q, want gen-1", got)
	}
	if err := WriteFileBytes(path, []byte("gen-2")); err != nil {
		t.Fatalf("WriteFileBytes (replace): %v", err)
	}
	if got := readFile(t, path); got != "gen-2" {
		t.Fatalf("content after replace = %q, want gen-2", got)
	}
	if tmps := listTemps(t, path); len(tmps) != 0 {
		t.Fatalf("staging files left behind: %v", tmps)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", st.Mode().Perm())
	}
}

// TestWriteFileFailureLeavesTargetIntact is the torn-checkpoint
// regression: a writer that dies mid-stream (full disk, encoder
// error) must leave the previous generation byte-for-byte intact and
// clean up its staging file.
func TestWriteFileFailureLeavesTargetIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := WriteFileBytes(path, []byte("gen-1")); err != nil {
		t.Fatalf("WriteFileBytes: %v", err)
	}
	boom := errors.New("disk full")
	err := WriteFile(path, func(w io.Writer) error {
		// Partial write, then failure — the classic torn write.
		if _, werr := io.WriteString(w, "gen-2 half-writ"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteFile error = %v, want the writer's own", err)
	}
	if got := readFile(t, path); got != "gen-1" {
		t.Fatalf("failed write clobbered the target: %q", got)
	}
	if tmps := listTemps(t, path); len(tmps) != 0 {
		t.Fatalf("failed write left staging files: %v", tmps)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out")
	if err := WriteFileBytes(path, []byte("x")); err == nil {
		t.Fatal("WriteFileBytes into a missing directory succeeded")
	}
}

// TestWriteFileSurvivesStaleTemp: a crash between staging and rename
// leaves a *.tmp file behind; later writers must neither trip over it
// nor resurrect it.
func TestWriteFileSurvivesStaleTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out")
	stale := path + ".tmp-stale"
	if err := os.WriteFile(stale, []byte("torn half-checkpoint"), 0o600); err != nil {
		t.Fatalf("plant stale temp: %v", err)
	}
	if err := WriteFileBytes(path, []byte("fresh")); err != nil {
		t.Fatalf("WriteFileBytes with stale temp present: %v", err)
	}
	if got := readFile(t, path); got != "fresh" {
		t.Fatalf("content = %q, want fresh", got)
	}
}

func TestFsync(t *testing.T) {
	// Non-syncable writers are a no-op, not an error.
	var sb strings.Builder
	if err := Fsync(&sb); err != nil {
		t.Fatalf("Fsync(strings.Builder): %v", err)
	}
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := fmt.Fprint(f, "line\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := Fsync(f); err != nil {
		t.Fatalf("Fsync(os.File): %v", err)
	}
}
