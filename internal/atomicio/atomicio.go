// Package atomicio writes files crash-safely: content lands in a
// same-directory temporary file, is fsynced, and is renamed over the
// destination, after which the directory itself is fsynced. At every
// instant the destination path holds either the complete old contents
// or the complete new contents — a crash, kill -9 or full disk
// mid-write can delay an update but can never tear one. Close errors
// are propagated, never dropped: on many filesystems a write error
// only surfaces at Close or Sync, and a writer that ignores them
// reports durable success for data that never reached the disk.
//
// This is the write path under everything the repo promises to
// replay: campaign checkpoints, model weights, and the benchmark
// JSON the CI gates read back.
//
//chatfuzz:deterministic package
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes that write
// produces. The data is staged in a temporary file next to path
// (same directory, so the final rename cannot cross filesystems),
// fsynced, renamed over path, and the directory entry is fsynced too.
// If write or any durability step fails, the temporary file is
// removed and path is left exactly as it was.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	tmp := f.Name()
	// Any failure below abandons the staged file; the destination is
	// untouched until the rename.
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	// CreateTemp makes 0o600 files; the rename replaces the whole
	// directory entry, so the staged mode is the final mode.
	if err = f.Chmod(0o644); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", tmp, err)
	}
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	// Durability of the rename itself: fsync the directory so the new
	// entry survives a crash. Errors matter as much as the file's own
	// sync — a lost directory update resurrects the old file.
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// WriteFileBytes atomically replaces path with data.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("atomicio: close dir %s: %w", dir, err)
	}
	return nil
}

// Fsync flushes an *os.File-backed writer to stable storage; it is a
// no-op for writers that have no Sync (test buffers, pipes wrapped in
// interfaces). Sinks that append records incrementally (JSONL logs,
// the farm's queue log) use this to bound loss to the final record
// instead of the whole file.
func Fsync(w io.Writer) error {
	if s, ok := w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}
