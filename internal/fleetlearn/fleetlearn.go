// Package fleetlearn implements online fleet learning for sharded
// fuzzing campaigns: per-shard PPO model replicas with deterministic
// federated weight averaging at the orchestrator barrier.
//
// The paper's central claim is that the input model keeps learning
// from hardware feedback, but a sharded fleet cannot share one
// mutable model — concurrent shards would race on the weights and a
// resumed run could not replay the updates. Fleet learning resolves
// this the way federated averaging does (McMahan et al.: local steps
// on replicas, periodic parameter averaging), specialised to the
// orchestrator's determinism contract:
//
//   - Replica: each shard that schedules the LLM arm owns a deep copy
//     of the trained model plus a PPO trainer over it. During a round
//     the shard's goroutine is the only one touching its replica — the
//     rollouts its generated programs produced (scored by incremental
//     fleet coverage) update the replica locally, with the KL penalty
//     anchored to a frozen copy of the offline-trained base model.
//   - Fleet: at every orchestrator barrier — single-threaded, shards
//     visited in fixed index order — the replicas that stepped this
//     round are averaged parameter-wise (sums accumulated in replica
//     order, so float rounding is reproducible) and the merged vector
//     is redistributed to every replica. A replica that skipped the
//     round still receives the merged weights, so discoveries spread
//     through the whole fleet within one round.
//
// Determinism and checkpointing: averaging resets each replica's
// optimizer, so between rounds the entire learning state collapses to
// one flat weight vector — all replicas hold the merged weights and
// every trainer is freshly initialised. A campaign checkpoint
// therefore carries just that vector (bit-exact, via nn.EncodeWeights)
// and a resumed fleet replays the remaining rounds bit-identically: no
// wall-clock, no RNG outside the orchestrator's checkpointed streams,
// no optimizer moments to serialize.
package fleetlearn

import (
	"fmt"

	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
)

// Replica is one shard's private copy of the policy model plus the PPO
// trainer that updates it from fuzzing feedback. It implements
// core.RolloutSink, so it plugs directly into an LLM generator built
// with core.NewReplicaGenerator. A Replica is not goroutine-safe; the
// owning shard is the only writer between barriers.
type Replica struct {
	// Model is the replica's policy: sampled by the shard's generator,
	// stepped by the trainer, overwritten by barrier averaging.
	Model *nn.GPT

	ref   *nn.GPT // frozen KL reference (copy of the base model)
	cfg   ppo.Config
	tr    *ppo.Trainer
	dirty bool // stepped since the last averaging
}

// NewReplica deep-copies base into a fresh replica. The base model is
// never mutated: the policy and the frozen KL reference are both
// independent clones.
func NewReplica(base *nn.GPT, cfg ppo.Config) *Replica {
	r := &Replica{Model: base.Clone(), ref: base.Clone(), cfg: cfg}
	r.resetTrainer()
	return r
}

// resetTrainer rebuilds the PPO trainer (fresh Adam state) over the
// replica's current weights. Called after every weight assignment so
// that inter-round learning state is exactly (weights) — see the
// package comment's checkpointing argument.
func (r *Replica) resetTrainer() {
	r.tr = ppo.NewTrainerWithRef(r.Model, r.ref, r.cfg, nil)
}

// StepRollouts applies one PPO update from externally scored rollouts
// and marks the replica for the next barrier averaging. Implements
// core.RolloutSink.
func (r *Replica) StepRollouts(rolls []*ppo.Rollout) ppo.Stats {
	if len(rolls) == 0 {
		return ppo.Stats{}
	}
	r.dirty = true
	return r.tr.StepRollouts(rolls)
}

// Dirty reports whether the replica has stepped since the last
// averaging (or weight assignment).
func (r *Replica) Dirty() bool { return r.dirty }

// setFlat assigns a flattened weight vector and resets the trainer.
func (r *Replica) setFlat(w []float64) error {
	if err := r.Model.SetFlatParams(w); err != nil {
		return err
	}
	r.dirty = false
	r.resetTrainer()
	return nil
}

// Fleet aggregates the replicas of one learning arm across all shards
// and performs the barrier-time weight averaging. Replica order is
// fixed at construction (shard order); every reduction below iterates
// in that order, which makes the averaged bits a pure function of the
// replicas' weights.
type Fleet struct {
	replicas []*Replica
	sum      []float64 // reused accumulator
	flat     []float64 // reused per-replica flatten scratch
}

// NewFleet builds a fleet over replicas in shard order. All replicas
// must share one model configuration.
func NewFleet(replicas ...*Replica) (*Fleet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleetlearn: a fleet needs at least one replica")
	}
	cfg := replicas[0].Model.Cfg
	for i, r := range replicas[1:] {
		if r.Model.Cfg != cfg {
			return nil, fmt.Errorf("fleetlearn: replica %d config %+v differs from replica 0 %+v", i+1, r.Model.Cfg, cfg)
		}
	}
	n := nn.NumParamsOf(cfg)
	return &Fleet{replicas: replicas, sum: make([]float64, n), flat: make([]float64, 0, n)}, nil
}

// Replicas returns the fleet size.
func (f *Fleet) Replicas() int { return len(f.replicas) }

// Replica returns the i-th replica (shard order).
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// Average performs one federated-averaging step: the parameter vectors
// of every replica that stepped since the last barrier are summed in
// replica order, divided by the participant count, and the merged
// weights are redistributed to every replica (participant or not),
// resetting their trainers. Returns the number of participants; zero
// means no replica learned this round and nothing was touched.
//
// Determinism: the caller (the orchestrator barrier) is single-
// threaded, the iteration order is fixed, and float accumulation
// happens in that order — averaging the same replica states always
// produces the same bits.
func (f *Fleet) Average() int {
	participants := 0
	for i := range f.sum {
		f.sum[i] = 0
	}
	for _, r := range f.replicas {
		if !r.dirty {
			continue
		}
		f.flat = r.Model.FlattenParams(f.flat[:0])
		for i, v := range f.flat {
			f.sum[i] += v
		}
		participants++
	}
	if participants == 0 {
		return 0
	}
	inv := 1 / float64(participants)
	for i := range f.sum {
		f.sum[i] *= inv
	}
	for _, r := range f.replicas {
		if err := r.setFlat(f.sum); err != nil {
			// Config equality was validated at construction; a size
			// mismatch here is a programming error, not an input error.
			panic("fleetlearn: redistribute: " + err.Error())
		}
	}
	return participants
}

// Weights returns a copy of the fleet's current merged weight vector.
// Valid between rounds, where every replica holds identical weights
// (Average redistributes, and assignment covers non-participants).
func (f *Fleet) Weights() []float64 {
	return f.replicas[0].Model.FlattenParams(nil)
}

// SetWeights assigns an explicit weight vector to every replica —
// the resume path, restoring a checkpoint's merged weights.
func (f *Fleet) SetWeights(w []float64) error {
	for i, r := range f.replicas {
		if err := r.setFlat(w); err != nil {
			return fmt.Errorf("fleetlearn: replica %d: %w", i, err)
		}
	}
	return nil
}
