// Package fleetlearn implements online fleet learning for sharded
// fuzzing campaigns: per-shard PPO model replicas trained off the
// round-critical path, merged by a deterministic pairwise averaging
// schedule, and published one round late.
//
// The paper's central claim is that the input model keeps learning
// from hardware feedback, but a sharded fleet cannot share one
// mutable model — concurrent shards would race on the weights and a
// resumed run could not replay the updates. Fleet learning resolves
// this the way federated averaging does (McMahan et al.: local steps
// on replicas, periodic parameter averaging), specialised to the
// orchestrator's determinism contract and — since the PPO update is
// the one cost no execution scheduler can steal — restructured so the
// update never sits on a shard's critical path:
//
//   - Replica: each shard that schedules the LLM arm owns a sampling
//     copy of the trained model plus a private training clone. During
//     a round the shard samples programs from the sampling model and
//     buffers the scored rollouts; no optimisation happens inside the
//     round, so a shard-round costs generation + simulation only.
//   - Fleet barrier: at every orchestrator barrier — single-threaded,
//     replicas visited in fixed shard order — the fleet (1) joins the
//     training launched at the previous barrier, (2) publishes that
//     merge to every replica's sampling model, and (3) launches this
//     round's training: each participant trains its private clone,
//     starting from the weights its rollouts were sampled under, and
//     the results are reduced by a fixed-order pairwise (tournament /
//     hypercube) averaging schedule. Launched training may run on a
//     background goroutine, overlapped with the next round's
//     simulation, or inline — the bits are identical either way.
//
// The one-round-late publication invariant: weights trained on round
// N's rollouts are merged into the fleet at barrier N and published
// to the sampling models at barrier N+1, so round N+2 is the first
// round that samples them. Every quantity involved — the rollouts,
// the training start point, the pairwise reduction order — is a pure
// function of the campaign seeds and the shard order, which keeps
// trajectories bit-identical across the synchronous and off-barrier
// execution modes and across checkpoint/resume.
//
// Determinism and checkpointing: between rounds the entire learning
// state collapses to two flat vectors — the published weights every
// sampling model holds, and the staged (trained-but-unpublished)
// merge awaiting the next barrier. A campaign checkpoint carries both
// (bit-exact, via nn.EncodeWeights), so a fleet paused mid-lag —
// after a publication, with the next merge still in flight — resumes
// bit-identically: Sync joins any in-flight training first, and no
// wall-clock, RNG or optimizer state needs to survive the pause
// (training always starts from a fresh trainer over an explicit
// start vector).
//chatfuzz:deterministic package
package fleetlearn

import (
	"fmt"
	"sync"

	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
	"chatfuzz/internal/telemetry"
)

// Replica is one shard's view of the policy model: a sampling model
// the shard's generator reads, plus a private training clone its
// buffered rollouts are replayed into at the fleet barrier. It
// implements core.RolloutSink, so it plugs directly into an LLM
// generator built with core.NewReplicaGenerator. A Replica is not
// goroutine-safe; the owning shard is the only writer between
// barriers, and the training clone is touched only by the fleet's
// (possibly background) training task.
type Replica struct {
	// Model is the replica's sampling model: read by the shard's
	// generator during rounds, overwritten by barrier publication. It
	// is never trained in place — updates land on the private clone
	// and reach Model only through the published merge.
	Model *nn.GPT

	ref   *nn.GPT // frozen KL reference (copy of the base model)
	cfg   ppo.Config
	train *nn.GPT // private training clone (lazily built)

	// pending buffers the round's scored rollouts, one chunk per
	// Feedback call, preserving the per-batch update cadence when the
	// chunks are replayed at the barrier.
	pending [][]*ppo.Rollout
	dirty   bool // buffered rollouts since the last collection
}

// NewReplica deep-copies base into a fresh replica. The base model is
// never mutated: the sampling model and the frozen KL reference are
// both independent clones.
func NewReplica(base *nn.GPT, cfg ppo.Config) *Replica {
	return &Replica{Model: base.Clone(), ref: base.Clone(), cfg: cfg}
}

// StepRollouts buffers one batch's scored rollouts for the barrier
// training pass and marks the replica as a round participant. No
// optimisation happens here — that is the whole point of the
// off-barrier learning plane — so the returned stats are zero.
// Implements core.RolloutSink.
func (r *Replica) StepRollouts(rolls []*ppo.Rollout) ppo.Stats {
	if len(rolls) == 0 {
		return ppo.Stats{}
	}
	r.dirty = true
	r.pending = append(r.pending, rolls)
	return ppo.Stats{}
}

// Dirty reports whether the replica has buffered rollouts since the
// last collection.
func (r *Replica) Dirty() bool { return r.dirty }

// takePending returns and clears the buffered rollout chunks.
func (r *Replica) takePending() [][]*ppo.Rollout {
	out := r.pending
	r.pending = nil
	r.dirty = false
	return out
}

// trainOn replays the buffered chunks into the replica's private
// training clone, starting from the weights the rollouts were sampled
// under, and returns the resulting flat parameter vector. A fresh
// trainer (fresh Adam state) is built per call, so the result is a
// pure function of (start, chunks) — no optimizer moments survive
// between barriers, which is what lets checkpoints carry weights
// alone.
func (r *Replica) trainOn(start []float64, chunks [][]*ppo.Rollout) []float64 {
	if r.train == nil {
		r.train = r.Model.Clone()
	}
	if err := r.train.SetFlatParams(start); err != nil {
		// Sizes were validated at fleet construction; a mismatch here
		// is a programming error, not an input error.
		panic("fleetlearn: train start: " + err.Error())
	}
	tr := ppo.NewTrainerWithRef(r.train, r.ref, r.cfg, nil)
	for _, rolls := range chunks {
		tr.StepRollouts(rolls)
	}
	return r.train.FlattenParams(nil)
}

// setSampling assigns a flat weight vector to the sampling model.
func (r *Replica) setSampling(w []float64) error {
	return r.Model.SetFlatParams(w)
}

// Fleet aggregates the replicas of one learning arm across all shards
// and runs the staged barrier schedule: join the previous round's
// training, publish its merge, launch this round's training. Replica
// order is fixed at construction (shard order); collection, training
// fan-out and the pairwise reduction all iterate in that order, which
// makes the merged bits a pure function of the replicas' buffers and
// start weights.
type Fleet struct {
	replicas []*Replica
	n        int // parameter count, for resume-path validation

	// Track, when non-nil, records one "train" span per barrier
	// training pass — on the barrier or overlapped with the next
	// round, wherever the task actually ran. Set it before the first
	// Barrier (the orchestrator does, from its recorder). Execution-
	// only: spans never reach the staged weights or checkpoints.
	Track *telemetry.Track

	// staged is the joined-but-unpublished merge: trained on round
	// N's rollouts, published to the sampling models at barrier N+1.
	staged []float64
	// inflight carries an unjoined background training result
	// (buffered, so an abandoned task never leaks a goroutine).
	inflight chan []float64
}

// NewFleet builds a fleet over replicas in shard order. All replicas
// must share one model configuration.
func NewFleet(replicas ...*Replica) (*Fleet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleetlearn: a fleet needs at least one replica")
	}
	cfg := replicas[0].Model.Cfg
	for i, r := range replicas[1:] {
		if r.Model.Cfg != cfg {
			return nil, fmt.Errorf("fleetlearn: replica %d config %+v differs from replica 0 %+v", i+1, r.Model.Cfg, cfg)
		}
	}
	return &Fleet{replicas: replicas, n: nn.NumParamsOf(cfg)}, nil
}

// Replicas returns the fleet size.
func (f *Fleet) Replicas() int { return len(f.replicas) }

// Replica returns the i-th replica (shard order).
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// Barrier runs one staged learning step; the caller (the orchestrator
// barrier) is single-threaded and no shard may be mid-round.
//
//  1. The round's buffered rollouts are collected from every dirty
//     replica, and the current sampling weights — the ones those
//     rollouts were generated under — are snapshotted as the training
//     start point.
//  2. The training launched at the previous barrier is joined and its
//     merge published to every replica's sampling model (one round
//     late, per the package invariant).
//  3. Unless skip is set or no replica participated, this round's
//     training is launched: every participant replays its buffer from
//     the snapshot and the results reduce under pairwiseMean. With
//     async the task runs on a background goroutine, overlapped with
//     the next round's simulation; otherwise it runs inline. The
//     resulting bits are identical — only wall-clock placement
//     differs.
//
// skip implements adaptive update budgets: the round's buffers are
// discarded without training (the bandit's coverage rate has
// plateaued, so the virtual time a PPO step buys is better spent on
// simulation), while joining and publication still advance so earlier
// training is never lost. Returns the number of participating
// replicas whose buffers were collected.
func (f *Fleet) Barrier(async, skip bool) int {
	var parts []*Replica
	var bufs [][][]*ppo.Rollout
	for _, r := range f.replicas {
		if !r.dirty {
			continue
		}
		parts = append(parts, r)
		bufs = append(bufs, r.takePending())
	}
	var start []float64
	if len(parts) > 0 && !skip {
		start = f.replicas[0].Model.FlattenParams(nil)
	}

	f.join()
	if f.staged != nil {
		f.publish(f.staged)
		f.staged = nil
	}

	if skip || len(parts) == 0 {
		return len(parts)
	}
	task := func() []float64 {
		t := f.Track.Start()
		outs := make([][]float64, len(parts))
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i] = parts[i].trainOn(start, bufs[i])
			}(i)
		}
		wg.Wait()
		merged := pairwiseMean(outs)
		f.Track.Span(telemetry.SpanTrain, t)
		return merged
	}
	if async {
		f.inflight = make(chan []float64, 1)
		go func() { f.inflight <- task() }()
	} else {
		f.staged = task()
	}
	return len(parts)
}

// join blocks until any in-flight background training completes and
// stages its result.
func (f *Fleet) join() {
	if f.inflight != nil {
		f.staged = <-f.inflight
		f.inflight = nil
	}
}

// Sync joins any in-flight background training without publishing, so
// the fleet's state collapses to the two checkpointable vectors
// (published sampling weights + staged merge). Callers checkpoint or
// close between rounds, never mid-round.
func (f *Fleet) Sync() { f.join() }

// publish assigns the merged weights to every replica's sampling
// model.
func (f *Fleet) publish(w []float64) {
	for _, r := range f.replicas {
		if err := r.setSampling(w); err != nil {
			// Config equality was validated at construction; a size
			// mismatch here is a programming error, not an input error.
			panic("fleetlearn: publish: " + err.Error())
		}
	}
}

// Weights returns a copy of the fleet's current published weights.
// Valid between rounds, where every replica's sampling model holds
// the same published vector.
func (f *Fleet) Weights() []float64 {
	return f.replicas[0].Model.FlattenParams(nil)
}

// Staged returns a copy of the trained-but-unpublished merge, or nil
// when none is staged. Call Sync first so an in-flight background
// task is included.
func (f *Fleet) Staged() []float64 {
	if f.staged == nil {
		return nil
	}
	out := make([]float64, len(f.staged))
	copy(out, f.staged)
	return out
}

// SetWeights publishes an explicit weight vector to every replica and
// clears all staged and buffered state — the resume path, restoring a
// checkpoint's published weights.
func (f *Fleet) SetWeights(w []float64) error {
	if len(w) != f.n {
		return fmt.Errorf("fleetlearn: weight vector has %d scalars, want %d", len(w), f.n)
	}
	f.join()
	f.staged = nil
	for i, r := range f.replicas {
		r.pending = nil
		r.dirty = false
		if err := r.setSampling(w); err != nil {
			return fmt.Errorf("fleetlearn: replica %d: %w", i, err)
		}
	}
	return nil
}

// SetStaged restores a checkpoint's trained-but-unpublished merge; the
// next Barrier publishes it, exactly as the uninterrupted run would
// have.
func (f *Fleet) SetStaged(w []float64) error {
	if len(w) != f.n {
		return fmt.Errorf("fleetlearn: staged vector has %d scalars, want %d", len(w), f.n)
	}
	f.join()
	f.staged = make([]float64, len(w))
	copy(f.staged, w)
	return nil
}

// pairwiseMean reduces the participant weight vectors with a
// fixed-order pairwise (tournament / hypercube gossip) schedule:
// neighbours merge level by level, each merge weighted by how many
// originals it already aggregates, so the result equals the exact
// mean in real arithmetic while the float rounding is a pure function
// of the participant order. Compared with the sum-all-then-divide it
// replaces, every merge touches operands of similar magnitude — the
// accumulation pattern a distributed fleet would use to average
// without an all-to-one reduction. The input vectors are consumed as
// scratch.
func pairwiseMean(vecs [][]float64) []float64 {
	if len(vecs) == 1 {
		return vecs[0]
	}
	weights := make([]float64, len(vecs))
	for i := range weights {
		weights[i] = 1
	}
	for len(vecs) > 1 {
		half := (len(vecs) + 1) / 2
		for i := 0; i+1 < len(vecs); i += 2 {
			a, b := vecs[i], vecs[i+1]
			wa, wb := weights[i], weights[i+1]
			tw := wa + wb
			for j := range a {
				a[j] = (wa*a[j] + wb*b[j]) / tw
			}
			vecs[i/2], weights[i/2] = a, tw
		}
		if len(vecs)%2 == 1 {
			vecs[half-1], weights[half-1] = vecs[len(vecs)-1], weights[len(vecs)-1]
		}
		vecs, weights = vecs[:half], weights[:half]
	}
	return vecs[0]
}
