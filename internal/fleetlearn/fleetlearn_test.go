package fleetlearn

import (
	"math"
	"math/rand"
	"testing"

	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
)

func tinyBase(seed int64) *nn.GPT {
	cfg := nn.Config{Vocab: 12, Ctx: 16, Dim: 16, Heads: 2, Layers: 1}
	return nn.NewGPT(cfg, rand.New(rand.NewSource(seed)))
}

func tinyPPO() ppo.Config {
	cfg := ppo.DefaultConfig(1, 2)
	cfg.LR = 1e-3
	return cfg
}

// roll builds a deterministic hand-crafted rollout (token ids < vocab).
func roll(score float64) *ppo.Rollout {
	return &ppo.Rollout{
		Tokens:  []int{0, 3, 4, 5},
		PromptN: 1,
		LogpOld: []float64{-1.1, -0.9, -1.3},
		Values:  []float64{0.1, 0.0, -0.1},
		Score:   score,
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// constVecs builds n length-k vectors filled with the given constants.
func constVecs(k int, vals ...float64) [][]float64 {
	out := make([][]float64, len(vals))
	for i, v := range vals {
		out[i] = make([]float64, k)
		for j := range out[i] {
			out[i][j] = v
		}
	}
	return out
}

// TestPairwiseMeanIsMean: the tournament reduction equals the exact
// mean on constants (any participant count, including odd tails at
// every level) and stays within float tolerance of the naive mean on
// arbitrary vectors.
func TestPairwiseMeanIsMean(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"one", []float64{7}, 7},
		{"two", []float64{1, 3}, 2},
		{"three", []float64{1, 2, 3}, 2},
		{"four", []float64{1, 2, 3, 6}, 3},
		{"five (odd tail)", []float64{1, 2, 3, 4, 10}, 4},
		{"seven (odd at two levels)", []float64{1, 2, 3, 4, 5, 6, 7}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pairwiseMean(constVecs(4, tc.vals...))
			for i, v := range got {
				if math.Abs(v-tc.want) > 1e-12 {
					t.Fatalf("scalar %d = %v, want %v", i, v, tc.want)
				}
			}
		})
	}

	// Arbitrary vectors: agree with the naive mean to float tolerance,
	// and bit-identical across two runs over the same inputs.
	mk := func() [][]float64 {
		r := rand.New(rand.NewSource(9))
		vecs := make([][]float64, 5)
		for i := range vecs {
			vecs[i] = make([]float64, 32)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
			}
		}
		return vecs
	}
	in := mk()
	naive := make([]float64, 32)
	for _, v := range in {
		for j := range v {
			naive[j] += v[j] / float64(len(in))
		}
	}
	got1 := pairwiseMean(mk())
	got2 := pairwiseMean(mk())
	if !bitsEqual(got1, got2) {
		t.Fatal("pairwiseMean not bit-deterministic over identical inputs")
	}
	for j := range naive {
		if math.Abs(got1[j]-naive[j]) > 1e-12 {
			t.Fatalf("scalar %d: pairwise %v vs naive %v", j, got1[j], naive[j])
		}
	}
}

// TestStepRolloutsBuffers: stepping a replica buffers rollouts without
// touching any weights — the sampling model must stay bit-identical
// until a publication barrier, and the base model is never shared.
func TestStepRolloutsBuffers(t *testing.T) {
	base := tinyBase(5)
	baseFlat := base.FlattenParams(nil)
	a := NewReplica(base, tinyPPO())
	b := NewReplica(base, tinyPPO())

	a.StepRollouts([]*ppo.Rollout{roll(1.0)})
	a.StepRollouts([]*ppo.Rollout{roll(-0.5)})
	if !a.Dirty() {
		t.Fatal("stepped replica not marked dirty")
	}
	if b.Dirty() {
		t.Fatal("sibling replica marked dirty")
	}
	if got := len(a.pending); got != 2 {
		t.Fatalf("pending chunks = %d, want 2 (one per Feedback call)", got)
	}
	if !bitsEqual(a.Model.FlattenParams(nil), baseFlat) {
		t.Fatal("StepRollouts mutated the sampling model; updates must wait for the barrier")
	}
	if !bitsEqual(base.FlattenParams(nil), baseFlat) {
		t.Fatal("base model mutated by a replica step")
	}
	if a.StepRollouts(nil) != (ppo.Stats{}) {
		t.Fatal("empty step returned non-zero stats")
	}
}

// TestOneRoundLatePublication: weights trained at barrier N reach the
// sampling models at barrier N+1 — never earlier — and every replica
// receives the same published bits.
func TestOneRoundLatePublication(t *testing.T) {
	base := tinyBase(3)
	a, b := NewReplica(base, tinyPPO()), NewReplica(base, tinyPPO())
	f, err := NewFleet(a, b)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	start := f.Weights()

	a.StepRollouts([]*ppo.Rollout{roll(1.0)})
	b.StepRollouts([]*ppo.Rollout{roll(2.0)})
	if n := f.Barrier(false, false); n != 2 {
		t.Fatalf("barrier 1 participants = %d, want 2", n)
	}
	if !bitsEqual(f.Weights(), start) {
		t.Fatal("barrier 1 already changed the sampling weights; publication must be one round late")
	}
	staged := f.Staged()
	if staged == nil {
		t.Fatal("barrier 1 staged nothing")
	}
	if bitsEqual(staged, start) {
		t.Fatal("training produced no movement")
	}

	if n := f.Barrier(false, false); n != 0 {
		t.Fatalf("barrier 2 participants = %d, want 0", n)
	}
	if !bitsEqual(f.Weights(), staged) {
		t.Fatal("barrier 2 did not publish the staged merge")
	}
	if f.Staged() != nil {
		t.Fatal("staged merge not cleared after publication")
	}
	for i := 0; i < f.Replicas(); i++ {
		if !bitsEqual(f.Replica(i).Model.FlattenParams(nil), staged) {
			t.Fatalf("replica %d sampling model differs from the published merge", i)
		}
	}
}

// TestAsyncMatchesSync: the off-barrier (background goroutine) path
// must stage and publish bit-identical weights to the inline path —
// the invariant that lets Config.OffBarrier be a pure execution
// detail.
func TestAsyncMatchesSync(t *testing.T) {
	build := func(async bool) *Fleet {
		base := tinyBase(7)
		a, b, c := NewReplica(base, tinyPPO()), NewReplica(base, tinyPPO()), NewReplica(base, tinyPPO())
		a.StepRollouts([]*ppo.Rollout{roll(1.0)})
		c.StepRollouts([]*ppo.Rollout{roll(-0.5), roll(2.0)})
		f, err := NewFleet(a, b, c)
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		if n := f.Barrier(async, false); n != 2 {
			t.Fatalf("participants = %d, want 2", n)
		}
		// Second round of buffered work while the first may still be
		// training in the background.
		b.StepRollouts([]*ppo.Rollout{roll(0.25)})
		f.Barrier(async, false)
		f.Sync()
		return f
	}
	sync, async := build(false), build(true)
	if !bitsEqual(sync.Weights(), async.Weights()) {
		t.Fatal("published weights differ between sync and async barriers")
	}
	ss, as := sync.Staged(), async.Staged()
	if ss == nil || as == nil {
		t.Fatal("expected a staged merge on both paths")
	}
	if !bitsEqual(ss, as) {
		t.Fatal("staged weights differ between sync and async barriers")
	}
}

// TestSkipDiscardsBuffers: a budget-skipped barrier discards the
// round's rollouts without training, while still publishing any
// previously staged merge — earlier learning is never lost.
func TestSkipDiscardsBuffers(t *testing.T) {
	base := tinyBase(11)
	a, b := NewReplica(base, tinyPPO()), NewReplica(base, tinyPPO())
	f, _ := NewFleet(a, b)

	a.StepRollouts([]*ppo.Rollout{roll(1.0)})
	f.Barrier(false, false) // stages a merge
	staged := f.Staged()

	b.StepRollouts([]*ppo.Rollout{roll(2.0)})
	if n := f.Barrier(false, true); n != 1 {
		t.Fatalf("skipped barrier participants = %d, want 1", n)
	}
	if a.Dirty() || b.Dirty() || len(b.pending) != 0 {
		t.Fatal("skipped barrier left buffered rollouts behind")
	}
	if f.Staged() != nil {
		t.Fatal("skipped barrier trained anyway")
	}
	if !bitsEqual(f.Weights(), staged) {
		t.Fatal("skipped barrier failed to publish the previously staged merge")
	}
}

// TestSetWeightsRoundTrip: Weights/SetWeights and Staged/SetStaged must
// round-trip bit-exactly through the encoded form checkpoints use, and
// SetWeights must clear all in-progress learning state.
func TestSetWeightsRoundTrip(t *testing.T) {
	base := tinyBase(7)
	a := NewReplica(base, tinyPPO())
	a.StepRollouts([]*ppo.Rollout{roll(1.5)})
	f1, _ := NewFleet(a)
	f1.Barrier(false, false)
	wantStaged := f1.Staged()
	f1.Barrier(false, false)
	want := f1.Weights()

	dec := func(w []float64) []float64 {
		out, err := nn.DecodeWeights(nn.EncodeWeights(w))
		if err != nil {
			t.Fatalf("DecodeWeights: %v", err)
		}
		return out
	}
	f2, _ := NewFleet(NewReplica(tinyBase(7), tinyPPO()), NewReplica(tinyBase(7), tinyPPO()))
	f2.Replica(0).StepRollouts([]*ppo.Rollout{roll(9)}) // stale state SetWeights must clear
	if err := f2.SetWeights(dec(want)); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	if f2.Replica(0).Dirty() {
		t.Fatal("SetWeights kept buffered rollouts")
	}
	for i := 0; i < f2.Replicas(); i++ {
		if !bitsEqual(f2.Replica(i).Model.FlattenParams(nil), want) {
			t.Fatalf("replica %d not bit-exact after round trip", i)
		}
	}
	if err := f2.SetStaged(dec(wantStaged)); err != nil {
		t.Fatalf("SetStaged: %v", err)
	}
	if !bitsEqual(f2.Staged(), wantStaged) {
		t.Fatal("staged merge not bit-exact after round trip")
	}
	f2.Barrier(false, false)
	if !bitsEqual(f2.Weights(), wantStaged) {
		t.Fatal("restored staged merge was not published at the next barrier")
	}
	if err := f2.SetWeights(want[:10]); err == nil {
		t.Error("SetWeights accepted a short vector")
	}
	if err := f2.SetStaged(want[:10]); err == nil {
		t.Error("SetStaged accepted a short vector")
	}
}

// TestNewFleetValidates: empty fleets and mixed model shapes are
// construction errors, not latent averaging panics.
func TestNewFleetValidates(t *testing.T) {
	if _, err := NewFleet(); err == nil {
		t.Error("NewFleet accepted zero replicas")
	}
	small := NewReplica(tinyBase(1), tinyPPO())
	bigCfg := nn.Config{Vocab: 12, Ctx: 16, Dim: 32, Heads: 2, Layers: 1}
	big := NewReplica(nn.NewGPT(bigCfg, rand.New(rand.NewSource(1))), tinyPPO())
	if _, err := NewFleet(small, big); err == nil {
		t.Error("NewFleet accepted replicas with different model configs")
	}
}
