package fleetlearn

import (
	"math"
	"math/rand"
	"testing"

	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
)

func tinyBase(seed int64) *nn.GPT {
	cfg := nn.Config{Vocab: 12, Ctx: 16, Dim: 16, Heads: 2, Layers: 1}
	return nn.NewGPT(cfg, rand.New(rand.NewSource(seed)))
}

func tinyPPO() ppo.Config {
	cfg := ppo.DefaultConfig(1, 2)
	cfg.LR = 1e-3
	return cfg
}

// roll builds a deterministic hand-crafted rollout (token ids < vocab).
func roll(score float64) *ppo.Rollout {
	return &ppo.Rollout{
		Tokens:  []int{0, 3, 4, 5},
		PromptN: 1,
		LogpOld: []float64{-1.1, -0.9, -1.3},
		Values:  []float64{0.1, 0.0, -0.1},
		Score:   score,
	}
}

// constVec fills a replica with a constant parameter vector and marks
// it as a round participant, for table-driven averaging checks.
func constVec(r *Replica, v float64, dirty bool) {
	w := make([]float64, r.Model.NumParams())
	for i := range w {
		w[i] = v
	}
	if err := r.Model.SetFlatParams(w); err != nil {
		panic(err)
	}
	r.dirty = dirty
}

// TestAverageIsMeanOfParticipants: table-driven — the merged vector is
// the mean over exactly the dirty replicas, in every participation
// pattern, and is redistributed to every replica.
func TestAverageIsMeanOfParticipants(t *testing.T) {
	cases := []struct {
		name    string
		vals    []float64
		dirty   []bool
		want    float64 // expected merged scalar (all-constant replicas)
		wantN   int
		touched bool
	}{
		{"all participate", []float64{1, 2, 3}, []bool{true, true, true}, 2, 3, true},
		{"one participates", []float64{1, 2, 3}, []bool{false, true, false}, 2, 1, true},
		{"two participate", []float64{1, 2, 4}, []bool{true, false, true}, 2.5, 2, true},
		{"none participate", []float64{1, 2, 3}, []bool{false, false, false}, 0, 0, false},
		{"single replica", []float64{7}, []bool{true}, 7, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := tinyBase(1)
			var reps []*Replica
			for i := range tc.vals {
				r := NewReplica(base, tinyPPO())
				constVec(r, tc.vals[i], tc.dirty[i])
				reps = append(reps, r)
			}
			f, err := NewFleet(reps...)
			if err != nil {
				t.Fatalf("NewFleet: %v", err)
			}
			if got := f.Average(); got != tc.wantN {
				t.Fatalf("Average reported %d participants, want %d", got, tc.wantN)
			}
			for ri, r := range reps {
				flat := r.Model.FlattenParams(nil)
				want := tc.vals[ri] // untouched when no one participated
				if tc.touched {
					want = tc.want
				}
				for i, v := range flat {
					if v != want {
						t.Fatalf("replica %d scalar %d = %v, want %v", ri, i, v, want)
					}
				}
				if r.Dirty() && tc.touched {
					t.Errorf("replica %d still dirty after averaging", ri)
				}
			}
		})
	}
}

// TestAverageIsDeterministic: two fleets built identically and stepped
// with identical rollouts must produce bit-identical merged weights —
// the property the orchestrator's resume bit-identity rests on.
func TestAverageIsDeterministic(t *testing.T) {
	build := func() *Fleet {
		base := tinyBase(3)
		a, b, c := NewReplica(base, tinyPPO()), NewReplica(base, tinyPPO()), NewReplica(base, tinyPPO())
		a.StepRollouts([]*ppo.Rollout{roll(1.0)})
		c.StepRollouts([]*ppo.Rollout{roll(-0.5), roll(2.0)})
		f, err := NewFleet(a, b, c)
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		if n := f.Average(); n != 2 {
			t.Fatalf("participants = %d, want 2", n)
		}
		return f
	}
	w1, w2 := build().Weights(), build().Weights()
	for i := range w1 {
		if math.Float64bits(w1[i]) != math.Float64bits(w2[i]) {
			t.Fatalf("scalar %d differs across identical runs: %x vs %x",
				i, math.Float64bits(w1[i]), math.Float64bits(w2[i]))
		}
	}
}

// TestReplicaIsolation: stepping one replica must leave the base model
// and sibling replicas bit-untouched — replicas are deep copies, not
// views.
func TestReplicaIsolation(t *testing.T) {
	base := tinyBase(5)
	baseFlat := base.FlattenParams(nil)
	a := NewReplica(base, tinyPPO())
	b := NewReplica(base, tinyPPO())

	a.StepRollouts([]*ppo.Rollout{roll(1.0)})
	if !a.Dirty() {
		t.Fatal("stepped replica not marked dirty")
	}
	if b.Dirty() {
		t.Fatal("sibling replica marked dirty")
	}
	for i, v := range base.FlattenParams(nil) {
		if v != baseFlat[i] {
			t.Fatal("base model mutated by a replica step")
		}
	}
	bFlat := b.Model.FlattenParams(nil)
	for i := range bFlat {
		if bFlat[i] != baseFlat[i] {
			t.Fatal("sibling replica mutated by another replica's step")
		}
	}
	aFlat := a.Model.FlattenParams(nil)
	moved := false
	for i := range aFlat {
		if aFlat[i] != baseFlat[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("stepped replica did not move")
	}
}

// TestSetWeightsRoundTrip: Weights/SetWeights must round-trip
// bit-exactly through the encoded form checkpoints use.
func TestSetWeightsRoundTrip(t *testing.T) {
	base := tinyBase(7)
	a := NewReplica(base, tinyPPO())
	a.StepRollouts([]*ppo.Rollout{roll(1.5)})
	f1, _ := NewFleet(a)
	f1.Average()
	want := f1.Weights()

	enc := nn.EncodeWeights(want)
	dec, err := nn.DecodeWeights(enc)
	if err != nil {
		t.Fatalf("DecodeWeights: %v", err)
	}
	f2, _ := NewFleet(NewReplica(tinyBase(7), tinyPPO()), NewReplica(tinyBase(7), tinyPPO()))
	if err := f2.SetWeights(dec); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	for i := 0; i < f2.Replicas(); i++ {
		got := f2.Replica(i).Model.FlattenParams(nil)
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("replica %d scalar %d not bit-exact after round trip", i, j)
			}
		}
	}
	if err := f2.SetWeights(want[:10]); err == nil {
		t.Error("SetWeights accepted a short vector")
	}
}

// TestNewFleetValidates: empty fleets and mixed model shapes are
// construction errors, not latent averaging panics.
func TestNewFleetValidates(t *testing.T) {
	if _, err := NewFleet(); err == nil {
		t.Error("NewFleet accepted zero replicas")
	}
	small := NewReplica(tinyBase(1), tinyPPO())
	bigCfg := nn.Config{Vocab: 12, Ctx: 16, Dim: 32, Heads: 2, Layers: 1}
	big := NewReplica(nn.NewGPT(bigCfg, rand.New(rand.NewSource(1))), tinyPPO())
	if _, err := NewFleet(small, big); err == nil {
		t.Error("NewFleet accepted replicas with different model configs")
	}
}
