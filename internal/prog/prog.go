// Package prog builds runnable test images from raw instruction
// sequences. Every fuzz input (a list of 32-bit instruction words) is
// wrapped in the same harness the paper's Chipyard test arena provides:
// a reset stub that installs a trap handler and gives every register a
// deterministic, "interesting" value, the generated body, and an
// epilogue that ends the test via a tohost store.
//chatfuzz:deterministic package
package prog

import (
	"fmt"
	"sync"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
)

// Program is one fuzz input: the body instruction words placed between
// harness prologue and epilogue.
type Program struct {
	Body []uint32
}

// Layout records where the harness placed each piece.
type Layout struct {
	InitBase    uint64
	HandlerBase uint64
	BodyBase    uint64
	Epilogue    uint64
}

// Harness layout constants (byte offsets from mem.TextBase).
const (
	handlerOff = 0x400
	bodyOff    = 0x800
)

// emitLI materialises a 64-bit constant into rd using an
// ADDI/SLLI chain (the portable subset of the assembler's li
// expansion; correct for every uint64).
func emitLI(rd isa.Reg, v uint64) []uint32 {
	lo12 := int64(v<<52) >> 52 // sign-extended low 12 bits
	hi := (v - uint64(lo12)) >> 12
	if hi == 0 {
		return []uint32{isa.Enc(isa.OpADDI, rd, 0, 0, lo12)}
	}
	// hi is v>>12 with exact arithmetic; recurse on it shifted down.
	seq := emitLI(rd, hi)
	seq = append(seq, isa.Enc(isa.OpSLLI, rd, rd, 0, 12))
	if lo12 != 0 {
		seq = append(seq, isa.Enc(isa.OpADDI, rd, rd, 0, lo12))
	}
	return seq
}

// emitLA materialises an absolute address pc-relatively via
// AUIPC+ADDI (medany-style), valid for any target within ±2 GiB.
func emitLA(rd isa.Reg, pc, target uint64) []uint32 {
	off := int64(target - pc)
	hi := (off + 0x800) >> 12
	lo := off - hi<<12
	return []uint32{
		isa.Enc(isa.OpAUIPC, rd, 0, 0, hi<<12),
		isa.Enc(isa.OpADDI, rd, rd, 0, lo),
	}
}

// InitialRegs maps each register to its deterministic reset value.
// The mix is chosen to make short generated bodies interesting: valid
// data pointers, a misaligned pointer, an unmapped pointer, arithmetic
// corner values, and code pointers for wild control flow.
func InitialRegs(layout Layout) [32]uint64 {
	var v [32]uint64
	v[isa.RA] = layout.BodyBase        // jalr ra re-enters the body
	v[isa.SP] = mem.DataBase + 0x10000 // stack pointer
	v[isa.GP] = mem.DataBase + 0x800   // global pointer (±2 KiB stays mapped)
	v[isa.TP] = 0x0010_0000            // unmapped: loads via tp fault
	v[isa.T0] = 1
	v[isa.T1] = 2
	v[isa.T2] = 4
	v[isa.S0] = mem.DataBase + 0x2000
	v[isa.S1] = 0x7FFF_FFFF
	v[isa.A0] = mem.DataBase
	v[isa.A1] = mem.DataBase + 8
	v[isa.A2] = mem.DataBase + 0x100
	v[isa.A3] = ^uint64(0) // -1
	v[isa.A4] = 1 << 63    // INT64_MIN (div overflow corner)
	v[isa.A5] = 5
	v[isa.A6] = 0x55AA
	v[isa.A7] = mem.DataBase + 0x3000
	v[isa.S2] = mem.DataBase + 0x4000
	v[isa.S3] = 3
	v[isa.S4] = 0x100
	v[isa.S5] = mem.DataBase + 1 // misaligned pointer
	v[isa.S6] = mem.DataBase + 2
	v[isa.S7] = mem.DataBase + 4
	v[isa.S8] = mem.TextBase // stores via s8 self-modify code
	v[isa.S9] = layout.BodyBase
	v[isa.S10] = 0x1234_5678_9ABC_DEF0
	v[isa.S11] = mem.DataBase + 0x7F8
	v[isa.T3] = 8
	v[isa.T4] = 16
	v[isa.T5] = 0xFF
	v[isa.T6] = 0 // clobbered by the trap handler anyway
	return v
}

// Build assembles the program into a loadable image:
//
//	TextBase+0x000: init (mtvec setup, register init, jump to body)
//	TextBase+0x400: trap handler (skips the faulting instruction;
//	                fetch access faults bail out to the epilogue)
//	TextBase+0x800: body, immediately followed by the epilogue
//	                (store 1 to tohost; loop)
//
// Build fails when the body does not fit the harness text region
// (len(Body) > MaxBodyInstructions): loading such an image would place
// the epilogue outside mapped memory. Fuzzers must not discard the
// error — an unbuildable program has to be scored as invalid, not run
// as an empty image that pollutes coverage and reward.
func Build(p Program) (mem.Image, Layout, error) {
	if len(p.Body) > MaxBodyInstructions {
		return mem.Image{}, Layout{}, fmt.Errorf(
			"prog: body of %d instructions exceeds the %d-instruction harness limit",
			len(p.Body), MaxBodyInstructions)
	}
	img, layout := build(p)
	return img, layout, nil
}

// MustBuild is Build for programs known to fit the harness (tests,
// examples, corpus-derived bodies); it panics on a build error.
func MustBuild(p Program) (mem.Image, Layout) {
	img, layout, err := Build(p)
	if err != nil {
		panic(err)
	}
	return img, layout
}

// The init and handler sections depend only on the (fixed) harness
// layout, not on the fuzzed body, so they are assembled exactly once
// and shared read-only across every built image. Before this cache the
// per-register emitLI expansion dominated the fuzzing loop's
// allocation profile (>90 % of allocated objects): Build runs once per
// generated test, and only the body+epilogue section actually varies.
var (
	harnessOnce    sync.Once
	harnessInit    []uint32
	harnessHandler []uint32
)

func harnessSections() ([]uint32, []uint32) {
	harnessOnce.Do(func() {
		layout := Layout{
			InitBase:    mem.TextBase,
			HandlerBase: mem.TextBase + handlerOff,
			BodyBase:    mem.TextBase + bodyOff,
		}

		// --- Trap handler (riscv-tests style: any unexpected trap ends
		// the test, reporting ((cause+1)<<1)|1 through tohost; clobbers
		// t5/t6 only) ---
		// csrr t6, mcause; addi t6, t6, 1; slli t6, t6, 1; ori t6, t6, 1
		// la t5, tohost; sd t6, 0(t5); j .
		handler := []uint32{
			isa.EncCSR(isa.OpCSRRS, isa.T6, 0, isa.CSRMCause),
			isa.Enc(isa.OpADDI, isa.T6, isa.T6, 0, 1),
			isa.Enc(isa.OpSLLI, isa.T6, isa.T6, 0, 1),
			isa.Enc(isa.OpORI, isa.T6, isa.T6, 0, 1),
		}
		laPC := layout.HandlerBase + uint64(4*len(handler))
		handler = append(handler, emitLA(isa.T5, laPC, mem.Tohost)...)
		handler = append(handler,
			isa.Enc(isa.OpSD, 0, isa.T5, isa.T6, 0),
			isa.Enc(isa.OpJAL, 0, 0, 0, 0), // j . (in case tohost is ignored)
		)

		// --- Init ---
		var initCode []uint32
		emit := func(ws ...uint32) { initCode = append(initCode, ws...) }
		// mtvec <- handler
		emit(emitLA(isa.T0, layout.InitBase+uint64(4*len(initCode)), layout.HandlerBase)...)
		emit(isa.EncCSR(isa.OpCSRRW, 0, isa.T0, isa.CSRMTVec))
		// Register init, x1..x31 (t0 last since it was the scratch).
		vals := InitialRegs(layout)
		for r := isa.Reg(1); r < 32; r++ {
			if r == isa.T0 {
				continue
			}
			emit(emitLI(r, vals[r])...)
		}
		emit(emitLI(isa.T0, vals[isa.T0])...)
		// Jump to body.
		jalPC := layout.InitBase + uint64(4*len(initCode))
		emit(isa.Enc(isa.OpJAL, 0, 0, 0, int64(layout.BodyBase-jalPC)))

		if len(initCode)*4 > handlerOff {
			panic("prog: init code overflows its slot")
		}
		harnessInit, harnessHandler = initCode, handler
	})
	return harnessInit, harnessHandler
}

func build(p Program) (mem.Image, Layout) {
	layout := Layout{
		InitBase:    mem.TextBase,
		HandlerBase: mem.TextBase + handlerOff,
		BodyBase:    mem.TextBase + bodyOff,
	}
	layout.Epilogue = layout.BodyBase + uint64(4*len(p.Body))

	initCode, handler := harnessSections()

	// --- Body + epilogue (the only per-program section) ---
	text := make([]uint32, 0, len(p.Body)+8)
	text = append(text, p.Body...)
	epiPC := layout.Epilogue
	text = append(text, isa.Enc(isa.OpADDI, isa.T0, 0, 0, 1))
	text = append(text, emitLA(isa.T1, epiPC+4, mem.Tohost)...)
	text = append(text, isa.Enc(isa.OpSD, 0, isa.T1, isa.T0, 0))
	text = append(text, isa.Enc(isa.OpJAL, 0, 0, 0, 0)) // j . (safety net)

	var img mem.Image
	img.Entry = layout.InitBase
	img.AddWords(layout.InitBase, initCode)
	img.AddWords(layout.HandlerBase, handler)
	img.AddWords(layout.BodyBase, text)
	return img, layout
}

// MaxBodyInstructions bounds body length so the epilogue stays inside
// the text region.
const MaxBodyInstructions = (mem.TextSize - bodyOff - 64) / 4

// TrapExit decodes a tohost exit value: the trap handler reports
// ((cause+1)<<1)|1, while a normal run reports 1.
func TrapExit(code uint64) (cause uint64, isTrap bool) {
	if code&1 == 1 && code > 1 {
		return code>>1 - 1, true
	}
	return 0, false
}

// InstructionBudget returns a step budget for simulating a body of n
// instructions: generous enough for loops, bounded so trap storms and
// infinite loops terminate.
func InstructionBudget(n int) int { return 2000 + 40*n }
