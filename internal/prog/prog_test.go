package prog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
)

func TestBuildLayout(t *testing.T) {
	img, layout := MustBuild(Program{Body: []uint32{isa.NOP, isa.NOP}})
	if img.Entry != layout.InitBase || layout.InitBase != mem.TextBase {
		t.Errorf("entry %#x, init %#x", img.Entry, layout.InitBase)
	}
	if layout.HandlerBase <= layout.InitBase || layout.BodyBase <= layout.HandlerBase {
		t.Error("layout sections out of order")
	}
	if layout.Epilogue != layout.BodyBase+8 {
		t.Errorf("epilogue %#x, want body+8", layout.Epilogue)
	}
	if len(img.Segments) != 3 {
		t.Errorf("segments = %d, want 3", len(img.Segments))
	}
}

// TestHarnessInstructionsAllValid: every word the harness emits must
// decode (the init/handler/epilogue run on both simulators).
func TestHarnessInstructionsAllValid(t *testing.T) {
	img, _ := MustBuild(Program{Body: []uint32{isa.NOP}})
	for _, seg := range img.Segments {
		for i := 0; i+4 <= len(seg.Data); i += 4 {
			w := uint32(seg.Data[i]) | uint32(seg.Data[i+1])<<8 |
				uint32(seg.Data[i+2])<<16 | uint32(seg.Data[i+3])<<24
			if w == isa.NOP {
				continue
			}
			if !isa.Decode(w).Valid() {
				t.Fatalf("harness word %#08x at %#x is invalid",
					w, seg.Base+uint64(i))
			}
		}
	}
}

// TestEmitLIProperty: the li expansion must materialise any constant.
func TestEmitLIProperty(t *testing.T) {
	f := func(v uint64) bool {
		seq := emitLI(isa.A0, v)
		// Interpret the chain with simple ALU semantics.
		var reg uint64
		for _, w := range seq {
			inst := isa.Decode(w)
			switch inst.Op {
			case isa.OpADDI:
				base := uint64(0)
				if inst.Rs1 == isa.A0 {
					base = reg
				}
				reg = base + uint64(inst.Imm)
			case isa.OpSLLI:
				reg = reg << uint(inst.Imm)
			default:
				return false
			}
		}
		return reg == v
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInitialRegsRoles(t *testing.T) {
	_, layout := MustBuild(Program{})
	regs := InitialRegs(layout)
	if regs[0] != 0 {
		t.Error("x0 must be zero")
	}
	if regs[isa.SP]%8 != 0 || regs[isa.SP] < mem.DataBase {
		t.Error("sp must be an aligned data pointer")
	}
	if regs[isa.S5]%2 == 0 {
		t.Error("s5 must be a misaligned pointer")
	}
	m := mem.Platform()
	if m.Mapped(regs[isa.TP], 8) {
		t.Error("tp must be an unmapped pointer")
	}
	if regs[isa.RA] != layout.BodyBase {
		t.Error("ra must point at the body")
	}
}

func TestTrapExitEncoding(t *testing.T) {
	if _, isTrap := TrapExit(1); isTrap {
		t.Error("normal exit code 1 must not classify as trap")
	}
	cause, isTrap := TrapExit((uint64(5+1) << 1) | 1)
	if !isTrap || cause != 5 {
		t.Errorf("TrapExit = (%d, %v), want (5, true)", cause, isTrap)
	}
}

func TestInstructionBudgetScales(t *testing.T) {
	if InstructionBudget(10) >= InstructionBudget(1000) {
		t.Error("budget must grow with body size")
	}
	if InstructionBudget(0) < 1000 {
		t.Error("budget must cover the harness itself")
	}
}

func TestBuildRejectsNothing(t *testing.T) {
	// Bodies up to the documented max must build without panicking.
	body := make([]uint32, 1024)
	for i := range body {
		body[i] = isa.NOP
	}
	img, layout := MustBuild(Program{Body: body})
	if layout.Epilogue != layout.BodyBase+uint64(4*len(body)) {
		t.Error("epilogue misplaced")
	}
	m := mem.Platform()
	m.Load(img) // must not panic
}

// TestBuildRejectsOversizedBody: a body past the harness limit must
// fail to build (loading it would place the epilogue outside mapped
// text), never be truncated or run as an empty image.
func TestBuildRejectsOversizedBody(t *testing.T) {
	if _, _, err := Build(Program{Body: make([]uint32, MaxBodyInstructions)}); err != nil {
		t.Errorf("body at the limit failed to build: %v", err)
	}
	if _, _, err := Build(Program{Body: make([]uint32, MaxBodyInstructions+1)}); err == nil {
		t.Error("oversized body built without error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on an oversized body")
		}
	}()
	MustBuild(Program{Body: make([]uint32, MaxBodyInstructions+1)})
}
