package corpus

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
)

func TestEveryWordDecodesValid(t *testing.T) {
	c := Generate(Config{Seed: 5, Functions: 500, MinLen: 12, MaxLen: 48})
	for i, fn := range c.Functions {
		for j, w := range fn {
			if !isa.Decode(w).Valid() {
				t.Fatalf("function %d word %d (%#08x) is not a valid instruction", i, j, w)
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Generate(Config{Seed: 9, Functions: 50, MinLen: 12, MaxLen: 30})
	b := Generate(Config{Seed: 9, Functions: 50, MinLen: 12, MaxLen: 30})
	if len(a.Functions) != len(b.Functions) {
		t.Fatal("function counts differ")
	}
	for i := range a.Functions {
		if len(a.Functions[i]) != len(b.Functions[i]) {
			t.Fatalf("function %d length differs", i)
		}
		for j := range a.Functions[i] {
			if a.Functions[i][j] != b.Functions[i][j] {
				t.Fatalf("function %d word %d differs", i, j)
			}
		}
	}
}

func TestFunctionShape(t *testing.T) {
	c := Generate(Config{Seed: 3, Functions: 100, MinLen: 12, MaxLen: 48})
	for i, fn := range c.Functions {
		if len(fn) < 12 {
			t.Errorf("function %d too short: %d", i, len(fn))
		}
		// Prologue: stack adjustment first.
		first := isa.Decode(fn[0])
		if first.Op != isa.OpADDI || first.Rd != isa.SP || first.Imm >= 0 {
			t.Errorf("function %d does not start with a stack-frame prologue: %s",
				i, isa.Disassemble(fn[0]))
		}
		// Epilogue: ends with ret.
		last := isa.Decode(fn[len(fn)-1])
		if last.Op != isa.OpJALR || last.Rd != 0 || last.Rs1 != isa.RA {
			t.Errorf("function %d does not end with ret: %s", i, isa.Disassemble(fn[len(fn)-1]))
		}
	}
}

// TestInterdependence verifies the paper's core dataset property: a
// large fraction of instructions consume a register produced by a
// nearby earlier instruction.
func TestInterdependence(t *testing.T) {
	c := Generate(Config{Seed: 7, Functions: 200, MinLen: 16, MaxLen: 48})
	dependent, total := 0, 0
	for _, fn := range c.Functions {
		var lastWriter [32]int // instruction index that last wrote each reg
		for i := range lastWriter {
			lastWriter[i] = -1
		}
		for idx, w := range fn {
			inst := isa.Decode(w)
			total++
			const window = 6
			uses := func(r isa.Reg) bool {
				return r != 0 && lastWriter[r] >= 0 && idx-lastWriter[r] <= window
			}
			if uses(inst.Rs1) || uses(inst.Rs2) {
				dependent++
			}
			if inst.WritesRd() && inst.Rd != 0 {
				lastWriter[inst.Rd] = idx
			}
		}
	}
	frac := float64(dependent) / float64(total)
	if frac < 0.5 {
		t.Errorf("only %.1f%% of instructions are data-dependent within a 6-inst window; want >50%%", 100*frac)
	}
}

// TestCorpusRunsOnGoldenModel executes corpus functions as fuzz bodies:
// they must run to completion (the harness handles any traps) and
// execute a meaningful number of instructions.
func TestCorpusRunsOnGoldenModel(t *testing.T) {
	c := Generate(Config{Seed: 11, Functions: 30, MinLen: 12, MaxLen: 48})
	for i, fn := range c.Functions {
		img, _ := prog.MustBuild(prog.Program{Body: fn})
		m := mem.Platform()
		m.Load(img)
		s := iss.New(m, img.Entry)
		entries := s.Run(prog.InstructionBudget(len(fn)))
		if len(entries) == 0 {
			t.Fatalf("function %d executed nothing", i)
		}
	}
}

func TestInstructionsCount(t *testing.T) {
	c := Generate(Config{Seed: 2, Functions: 100, MinLen: 12, MaxLen: 48})
	n := c.Instructions()
	if n < 100*12 {
		t.Errorf("corpus too small: %d instructions", n)
	}
}

func TestSampleAndPrompt(t *testing.T) {
	c := Generate(Config{Seed: 4, Functions: 20, MinLen: 12, MaxLen: 24})
	rng := rand.New(rand.NewSource(1))
	fns := c.Sample(rng, 64)
	if len(fns) != 64 {
		t.Fatalf("Sample returned %d", len(fns))
	}
	for _, fn := range fns {
		p := Prompt(rng, fn)
		if len(p) < 2 || len(p) > 5 {
			t.Errorf("prompt length %d outside the paper's 2..5", len(p))
		}
	}
}

func TestOpcodeDiversity(t *testing.T) {
	c := Generate(Config{Seed: 6, Functions: 1000, MinLen: 12, MaxLen: 48})
	seen := map[isa.Op]bool{}
	for _, fn := range c.Functions {
		for _, w := range fn {
			seen[isa.Decode(w).Op] = true
		}
	}
	// The synthetic compiler must cover the behavioural families the
	// coverage model cares about.
	for _, op := range []isa.Op{
		isa.OpMUL, isa.OpDIV, isa.OpREMU, isa.OpLRD, isa.OpSCD, isa.OpAMOADDD,
		isa.OpCSRRS, isa.OpCSRRW, isa.OpFENCE, isa.OpFENCEI, isa.OpJAL, isa.OpJALR,
		isa.OpBNE, isa.OpLUI, isa.OpAUIPC, isa.OpECALL, isa.OpSD, isa.OpLBU,
	} {
		if !seen[op] {
			t.Errorf("corpus never emits %v", op)
		}
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct opcodes in corpus; want broad diversity", len(seen))
	}
}
