// Package corpus implements the paper's machine-language dataset
// (§III-A): the "static data collection" that extracts function-shaped
// machine code from compiled binaries (the authors compile the Linux
// kernel and obtain ~500 K test vectors).
//
// Since shipping kernel binaries is not possible here, the package is
// a synthetic compiler back-end: it emits RV64 functions built from
// the idioms real compilers produce — prologue/epilogue, dependent
// ALU chains, counted loops, stack spills, guarded blocks, local
// calls, atomics (LR/SC retry loops), CSR access — over deliberately
// bounded register and immediate pools.
//
// The two properties the paper needs from the dataset are preserved:
// instructions within one function are interdependent and data/control
// flow entangled, and operand diversity is bounded so the 16-bit
// parcel tokenizer's vocabulary stays compact.
//chatfuzz:deterministic package
package corpus

import (
	"math/rand"

	"chatfuzz/internal/isa"
)

// Config parameterises corpus generation.
type Config struct {
	Seed      int64
	Functions int
	MinLen    int // minimum instructions per function (pre-epilogue)
	MaxLen    int
}

// DefaultConfig returns a laptop-scale corpus configuration. The
// full-scale (paper) configuration raises Functions so the corpus
// reaches ~500 K instructions.
func DefaultConfig() Config {
	return Config{Seed: 1, Functions: 2000, MinLen: 12, MaxLen: 48}
}

// Corpus is the generated dataset.
type Corpus struct {
	Functions [][]uint32
}

// Instructions returns the total number of instruction words.
func (c *Corpus) Instructions() int {
	n := 0
	for _, f := range c.Functions {
		n += len(f)
	}
	return n
}

// regPool is the bounded register set the synthetic compiler
// allocates from (mirrors a compiler's preferred allocation order).
var regPool = []isa.Reg{
	isa.A0, isa.A1, isa.A2, isa.A3, isa.A4, isa.A5,
	isa.T0, isa.T1, isa.T2, isa.S1, isa.S3, isa.S4,
}

// basePool holds pointer registers the harness initialises to mapped
// data addresses.
var basePool = []isa.Reg{isa.SP, isa.GP, isa.S0, isa.S2, isa.A7}

// immPool is the bounded set of arithmetic immediates.
var immPool = []int64{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 255, 1024, 2047, -1, -2, -8, -16, -256, -2048}

type gen struct {
	rng  *rand.Rand
	code []uint32
}

func (g *gen) emit(ws ...uint32) { g.code = append(g.code, ws...) }

func (g *gen) reg() isa.Reg   { return regPool[g.rng.Intn(len(regPool))] }
func (g *gen) base() isa.Reg  { return basePool[g.rng.Intn(len(basePool))] }
func (g *gen) imm() int64     { return immPool[g.rng.Intn(len(immPool))] }
func (g *gen) memOff() int64  { return int64(g.rng.Intn(32)) * 8 }

// arithChain emits 3..8 dependent ALU operations through one register.
func (g *gen) arithChain() {
	ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
		isa.OpADDW, isa.OpSUBW, isa.OpSLLW, isa.OpSRLW, isa.OpSRAW,
		isa.OpMULHU, isa.OpMULHSU}
	acc := g.reg()
	n := 3 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		if g.rng.Intn(3) == 0 {
			immOps := []isa.Op{isa.OpADDI, isa.OpXORI, isa.OpORI, isa.OpANDI,
				isa.OpADDIW, isa.OpSLTI, isa.OpSLTIU, isa.OpSLLIW, isa.OpSRLIW, isa.OpSRAIW}
			op := immOps[g.rng.Intn(len(immOps))]
			imm := g.imm()
			if op.Format() == isa.FmtShiftW {
				imm = int64(g.rng.Intn(32))
			}
			g.emit(isa.Enc(op, acc, acc, 0, imm))
		} else {
			g.emit(isa.Enc(ops[g.rng.Intn(len(ops))], acc, acc, g.reg(), 0))
		}
	}
}

// shiftImm emits shift-immediate forms (distinct encodings from
// reg-reg shifts).
func (g *gen) shiftImm() {
	r := g.reg()
	g.emit(isa.Enc(isa.OpSLLI, r, r, 0, int64(g.rng.Intn(64))))
	if g.rng.Intn(2) == 0 {
		g.emit(isa.Enc(isa.OpSRLI, r, r, 0, int64(g.rng.Intn(64))))
	} else {
		g.emit(isa.Enc(isa.OpSRAI, r, r, 0, int64(g.rng.Intn(64))))
	}
}

// loadCompute emits load → compute → store through a mapped base.
func (g *gen) loadCompute() {
	b := g.base()
	off := g.memOff()
	r1, r2 := g.reg(), g.reg()
	loads := []isa.Op{isa.OpLD, isa.OpLW, isa.OpLWU, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU, isa.OpLD}
	g.emit(isa.Enc(loads[g.rng.Intn(len(loads))], r1, b, 0, off))
	g.emit(isa.Enc(isa.OpADD, r2, r1, r2, 0))
	stores := []isa.Op{isa.OpSD, isa.OpSW, isa.OpSH, isa.OpSB}
	g.emit(isa.Enc(stores[g.rng.Intn(len(stores))], 0, b, r2, g.memOff()))
}

// countedLoop emits li counter; body; addi -1; bne back — the core
// data/control-flow entanglement idiom.
func (g *gen) countedLoop() {
	cnt := g.reg()
	acc := g.reg()
	if acc == cnt {
		acc = isa.T2
	}
	trips := 2 + g.rng.Intn(6)
	g.emit(isa.Enc(isa.OpADDI, cnt, 0, 0, int64(trips)))
	bodyLen := 1 + g.rng.Intn(3)
	for i := 0; i < bodyLen; i++ {
		g.emit(isa.Enc(isa.OpADDW, acc, acc, cnt, 0))
	}
	g.emit(isa.Enc(isa.OpADDI, cnt, cnt, 0, -1))
	back := -int64(bodyLen+1) * 4
	g.emit(isa.Enc(isa.OpBNE, 0, cnt, 0, back))
}

// guardedBlock emits a compare + forward branch over a short block.
func (g *gen) guardedBlock() {
	br := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	blockLen := 1 + g.rng.Intn(3)
	g.emit(isa.Enc(br[g.rng.Intn(len(br))], 0, g.reg(), g.reg(), int64(blockLen+1)*4))
	for i := 0; i < blockLen; i++ {
		g.emit(isa.Enc(isa.OpADDI, g.reg(), g.reg(), 0, g.imm()))
	}
}

// mulDivBlock emits an M-extension cluster.
func (g *gen) mulDivBlock() {
	ops := []isa.Op{isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU, isa.OpDIV,
		isa.OpDIVU, isa.OpREM, isa.OpREMU, isa.OpMULW, isa.OpDIVW, isa.OpDIVUW,
		isa.OpREMW, isa.OpREMUW}
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		g.emit(isa.Enc(ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.reg(), 0))
	}
}

// atomicBlock emits either a plain AMO or an LR/SC retry loop (the
// canonical compiled atomic-compare idiom).
func (g *gen) atomicBlock() {
	b := g.base()
	if g.rng.Intn(2) == 0 {
		amos := []isa.Op{
			isa.OpAMOADDD, isa.OpAMOADDW, isa.OpAMOSWAPD, isa.OpAMOSWAPW,
			isa.OpAMOORD, isa.OpAMOORW, isa.OpAMOANDD, isa.OpAMOANDW,
			isa.OpAMOXORD, isa.OpAMOXORW, isa.OpAMOMIND, isa.OpAMOMINW,
			isa.OpAMOMAXD, isa.OpAMOMAXW, isa.OpAMOMINUD, isa.OpAMOMINUW,
			isa.OpAMOMAXUD, isa.OpAMOMAXUW,
		}
		g.emit(isa.EncAMO(amos[g.rng.Intn(len(amos))], g.reg(), b, g.reg(), g.rng.Intn(2) == 0, false))
		return
	}
	// LR/SC retry loop (word or double):
	//   lr t0, (b); add t1, t0, r; sc t2, t1, (b); bne t2, x0, -12
	lr, sc := isa.OpLRD, isa.OpSCD
	if g.rng.Intn(2) == 0 {
		lr, sc = isa.OpLRW, isa.OpSCW
	}
	g.emit(isa.EncAMO(lr, isa.T0, b, 0, false, false))
	g.emit(isa.Enc(isa.OpADD, isa.T1, isa.T0, g.reg(), 0))
	g.emit(isa.EncAMO(sc, isa.T2, b, isa.T1, false, true))
	g.emit(isa.Enc(isa.OpBNE, 0, isa.T2, 0, -12))
}

// csrBlock emits CSR access idioms (kernel code reads counters and
// scratch registers).
func (g *gen) csrBlock() {
	csr := isa.KnownCSRs[g.rng.Intn(len(isa.KnownCSRs))]
	writable := []uint16{isa.CSRMScratch, isa.CSRMEPC, isa.CSRMTVal, isa.CSRMCause}
	w := writable[g.rng.Intn(len(writable))]
	switch g.rng.Intn(6) {
	case 0:
		g.emit(isa.EncCSR(isa.OpCSRRS, g.reg(), 0, csr)) // csrr
	case 1:
		g.emit(isa.EncCSR(isa.OpCSRRW, 0, g.reg(), w))
	case 2:
		g.emit(isa.EncCSR(isa.OpCSRRSI, g.reg(), isa.Reg(g.rng.Intn(16)), w))
	case 3:
		g.emit(isa.EncCSR(isa.OpCSRRCI, g.reg(), isa.Reg(g.rng.Intn(16)), w))
	case 4:
		g.emit(isa.EncCSR(isa.OpCSRRC, g.reg(), g.reg(), w))
	default:
		g.emit(isa.EncCSR(isa.OpCSRRWI, 0, isa.Reg(g.rng.Intn(32)), w))
	}
}

// luiBlock emits address/constant materialisation.
func (g *gen) luiBlock() {
	r := g.reg()
	g.emit(isa.Enc(isa.OpLUI, r, 0, 0, int64(int32(uint32(g.rng.Intn(64))<<12))))
	g.emit(isa.Enc(isa.OpADDI, r, r, 0, g.imm()))
	if g.rng.Intn(2) == 0 {
		g.emit(isa.Enc(isa.OpAUIPC, g.reg(), 0, 0, 0))
	}
}

// localCall emits a call to a local leaf with a return — exercising
// the RAS and call/return entanglement.
//
//	[0] jal ra, +16   ; call leaf
//	[1] jal x0, +20   ; after return, jump past leaf
//	[2] nop [3] nop
//	[4] leaf: addi a0, a0, 1
//	[5] jalr x0, 0(ra)
//	[6] ...continue
func (g *gen) localCall() {
	g.emit(
		isa.Enc(isa.OpJAL, isa.RA, 0, 0, 16),
		isa.Enc(isa.OpJAL, 0, 0, 0, 20),
		isa.NOP,
		isa.NOP,
		isa.Enc(isa.OpADDI, isa.A0, isa.A0, 0, 1),
		isa.Enc(isa.OpJALR, 0, isa.RA, 0, 0),
	)
}

// fenceBlock emits memory-ordering instructions; rarely, the
// self-modify + FENCE.I idiom (JIT-style code patching).
func (g *gen) fenceBlock() {
	if g.rng.Intn(4) != 0 {
		g.emit(isa.Encode(isa.Inst{Op: isa.OpFENCE, Imm: 0xFF}))
		return
	}
	// JIT-style code patching: copy this block's own first word over a
	// NOP victim, then FENCE.I (usually; its occasional absence is what
	// exposes Bug1).
	withFenceI := g.rng.Intn(4) != 0
	victimOff := int64(12)
	if withFenceI {
		victimOff = 16
	}
	g.emit(isa.Enc(isa.OpAUIPC, isa.T0, 0, 0, 0)) // t0 = pc
	g.emit(isa.Enc(isa.OpLW, isa.T1, isa.T0, 0, 0))
	g.emit(isa.Enc(isa.OpSW, 0, isa.T0, isa.T1, victimOff))
	if withFenceI {
		g.emit(isa.Encode(isa.Inst{Op: isa.OpFENCEI}))
	}
	g.emit(isa.NOP) // patch victim
}

// privBlock emits the privilege-drop idiom (kernel return-to-user):
// point mepc past the mret, clear mstatus.MPP, and mret into U-mode,
// followed by user code that eventually traps back via ecall.
//
//	auipc t0, 0; addi t0, t0, 20; csrw mepc, t0
//	csrrwi x0, mstatus, 0; mret
//	(U-mode) addi a1, a1, 1 … [ecall]
func (g *gen) privBlock() {
	g.emit(
		isa.Enc(isa.OpAUIPC, isa.T0, 0, 0, 0),
		isa.Enc(isa.OpADDI, isa.T0, isa.T0, 0, 20),
		isa.EncCSR(isa.OpCSRRW, 0, isa.T0, isa.CSRMEPC),
		isa.EncCSR(isa.OpCSRRWI, 0, 0, isa.CSRMStatus),
		isa.Encode(isa.Inst{Op: isa.OpMRET}),
	)
	// Diverse user-mode code: U-mode behaviour coverage is exactly
	// what privilege-transition conditions measure.
	uOps := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpAND, isa.OpOR,
		isa.OpSLT, isa.OpSLL, isa.OpSRA, isa.OpADDW, isa.OpMUL, isa.OpDIV,
		isa.OpREM, isa.OpMULW, isa.OpSLTU, isa.OpSRL}
	n := 2 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(4) {
		case 0:
			g.emit(isa.Enc(isa.OpADDI, g.reg(), g.reg(), 0, g.imm()))
		case 1:
			g.emit(isa.Enc(isa.OpLD, g.reg(), g.base(), 0, g.memOff()))
		case 2:
			g.emit(isa.Enc(isa.OpSW, 0, g.base(), g.reg(), g.memOff()))
		default:
			g.emit(isa.Enc(uOps[g.rng.Intn(len(uOps))], g.reg(), g.reg(), g.reg(), 0))
		}
	}
	if g.rng.Intn(2) == 0 {
		g.emit(isa.Encode(isa.Inst{Op: isa.OpECALL}))
	}
}

// sysBlock emits environment interaction (rare in functions).
func (g *gen) sysBlock() {
	switch g.rng.Intn(3) {
	case 0:
		g.emit(isa.Encode(isa.Inst{Op: isa.OpECALL}))
	case 1:
		g.emit(isa.Encode(isa.Inst{Op: isa.OpWFI}))
	default:
		g.emit(isa.Encode(isa.Inst{Op: isa.OpEBREAK}))
	}
}

// function assembles one function: prologue, randomized body blocks,
// epilogue with return.
func (g *gen) function(minLen, maxLen int) []uint32 {
	g.code = g.code[:0]
	frame := int64(16 + 16*g.rng.Intn(4))

	// Prologue.
	g.emit(isa.Enc(isa.OpADDI, isa.SP, isa.SP, 0, -frame))
	g.emit(isa.Enc(isa.OpSD, 0, isa.SP, isa.RA, frame-8))
	g.emit(isa.Enc(isa.OpSD, 0, isa.SP, isa.S0, frame-16))

	target := minLen + g.rng.Intn(maxLen-minLen+1)
	for len(g.code) < target {
		switch g.rng.Intn(21) {
		case 0, 1, 2, 3, 4:
			g.arithChain()
		case 5, 6, 7:
			g.loadCompute()
		case 8, 9:
			g.countedLoop()
		case 10, 11:
			g.guardedBlock()
		case 12, 13:
			g.mulDivBlock()
		case 14:
			g.atomicBlock()
		case 15:
			g.csrBlock()
		case 16:
			g.luiBlock()
		case 17:
			g.localCall()
		case 18:
			g.fenceBlock()
		case 19:
			g.privBlock()
		default:
			if g.rng.Intn(4) == 0 {
				g.sysBlock()
			} else {
				g.shiftImm()
			}
		}
	}

	// Epilogue.
	g.emit(isa.Enc(isa.OpLD, isa.RA, isa.SP, 0, frame-8))
	g.emit(isa.Enc(isa.OpLD, isa.S0, isa.SP, 0, frame-16))
	g.emit(isa.Enc(isa.OpADDI, isa.SP, isa.SP, 0, frame))
	g.emit(isa.Enc(isa.OpJALR, 0, isa.RA, 0, 0)) // ret

	out := make([]uint32, len(g.code))
	copy(out, g.code)
	return out
}

// Generate produces the corpus.
func Generate(cfg Config) *Corpus {
	if cfg.Functions <= 0 {
		cfg = DefaultConfig()
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed))}
	c := &Corpus{Functions: make([][]uint32, 0, cfg.Functions)}
	for i := 0; i < cfg.Functions; i++ {
		c.Functions = append(c.Functions, g.function(cfg.MinLen, cfg.MaxLen))
	}
	return c
}

// Sample returns n functions drawn with replacement.
func (c *Corpus) Sample(rng *rand.Rand, n int) [][]uint32 {
	out := make([][]uint32, n)
	for i := range out {
		out[i] = c.Functions[rng.Intn(len(c.Functions))]
	}
	return out
}

// Prompt cuts the paper's PPO prompt from a function: its first 2–5
// instructions.
func Prompt(rng *rand.Rand, fn []uint32) []uint32 {
	n := 2 + rng.Intn(4)
	if n > len(fn) {
		n = len(fn)
	}
	return fn[:n]
}

// Window cuts a random 3–8 instruction window from anywhere in the
// function — the fuzz-time prompt distribution, which exposes the
// model to every idiom (atomics, CSR access, privilege drops), not
// just prologues.
func Window(rng *rand.Rand, fn []uint32) []uint32 {
	n := 3 + rng.Intn(6)
	if n >= len(fn) {
		return fn
	}
	start := rng.Intn(len(fn) - n)
	return fn[start : start+n]
}
