// Package hart holds the architectural machine-mode state shared by
// the golden-model ISS and the DUT core models: the CSR file, trap
// entry/return sequencing, and the CSR instruction read-modify-write
// rules.
//
// Sharing this logic guarantees that ISS-vs-DUT divergences can only
// come from the deliberately injected findings (cache staleness, trace
// bugs, exception-priority inversion), never from accidental CSR drift.
//chatfuzz:deterministic package
package hart

import "chatfuzz/internal/isa"

// CSRFile is the machine-mode CSR state of one hart.
type CSRFile struct {
	MIEBit bool // mstatus.MIE
	MPIE   bool // mstatus.MPIE
	MPP    isa.Priv

	MTVec    uint64
	MScratch uint64
	MEPC     uint64
	MCause   uint64
	MTVal    uint64
	MIEReg   uint64

	// Cycle counts core cycles (the ISS charges one per instruction;
	// the DUTs charge microarchitectural cost, so mcycle legitimately
	// diverges and the Mismatch Detector filters it). Instret counts
	// retired instructions and must match between simulators.
	Cycle   uint64
	Instret uint64
}

// MStatus composes the architectural mstatus value.
func (c *CSRFile) MStatus() uint64 {
	v := uint64(0)
	if c.MIEBit {
		v |= isa.MStatusMIE
	}
	if c.MPIE {
		v |= isa.MStatusMPIE
	}
	v |= uint64(c.MPP) << isa.MStatusMPPShift
	return v
}

// SetMStatus decomposes a written mstatus value (WARL: MPP is clamped
// to the implemented M/U set).
func (c *CSRFile) SetMStatus(v uint64) {
	c.MIEBit = v&isa.MStatusMIE != 0
	c.MPIE = v&isa.MStatusMPIE != 0
	mpp := isa.Priv(v >> isa.MStatusMPPShift & 3)
	if mpp != isa.PrivU {
		mpp = isa.PrivM
	}
	c.MPP = mpp
}

// MISAValue is the misa encoding: RV64 (MXL=2) with I, M, A and U.
const MISAValue = uint64(2)<<62 | 1<<('i'-'a') | 1<<('m'-'a') | 1<<('a'-'a') | 1<<('u'-'a')

// Read returns a CSR value; ok=false when the CSR does not exist or is
// not accessible at the given privilege level.
func (c *CSRFile) Read(addr uint16, priv isa.Priv) (uint64, bool) {
	if isa.Priv((addr>>8)&3) > priv {
		return 0, false
	}
	switch addr {
	case isa.CSRMStatus:
		return c.MStatus(), true
	case isa.CSRMISA:
		return MISAValue, true
	case isa.CSRMIE:
		return c.MIEReg, true
	case isa.CSRMIP:
		return 0, true
	case isa.CSRMTVec:
		return c.MTVec, true
	case isa.CSRMScratch:
		return c.MScratch, true
	case isa.CSRMEPC:
		return c.MEPC, true
	case isa.CSRMCause:
		return c.MCause, true
	case isa.CSRMTVal:
		return c.MTVal, true
	case isa.CSRMCycle, isa.CSRCycle, isa.CSRTime:
		return c.Cycle, true
	case isa.CSRMInstret, isa.CSRInstret:
		return c.Instret, true
	case isa.CSRMVendor, isa.CSRMArchID, isa.CSRMImpID, isa.CSRMHartID:
		return 0, true
	}
	return 0, false
}

// Write updates a CSR; ok=false when the CSR is read-only or does not
// exist. Privilege must have been checked via Read first (the CSR
// instructions always read).
func (c *CSRFile) Write(addr uint16, v uint64) bool {
	switch addr {
	case isa.CSRMStatus:
		c.SetMStatus(v)
	case isa.CSRMISA:
		// WARL; writes ignored.
	case isa.CSRMIE:
		c.MIEReg = v & 0xAAA
	case isa.CSRMIP:
		// Read-only bits on this platform; write is legal, ignored.
	case isa.CSRMTVec:
		c.MTVec = v &^ 3 // direct mode only
	case isa.CSRMScratch:
		c.MScratch = v
	case isa.CSRMEPC:
		c.MEPC = v &^ 3 // IALIGN=32 (no C extension): mepc[1:0]=0
	case isa.CSRMCause:
		c.MCause = v
	case isa.CSRMTVal:
		c.MTVal = v
	case isa.CSRMCycle:
		c.Cycle = v
	case isa.CSRMInstret:
		c.Instret = v
	default:
		return false
	}
	return true
}

// TakeTrap performs machine trap entry and returns the new PC and
// privilege level.
func (c *CSRFile) TakeTrap(pc, cause, tval uint64, priv isa.Priv) (uint64, isa.Priv) {
	c.MEPC = pc
	c.MCause = cause
	c.MTVal = tval
	c.MPIE = c.MIEBit
	c.MIEBit = false
	c.MPP = priv
	return c.MTVec, isa.PrivM
}

// MRet performs the mret state update and returns the new PC and
// privilege level. The caller must have verified that the current
// privilege is M.
func (c *CSRFile) MRet() (uint64, isa.Priv) {
	pc := c.MEPC
	priv := c.MPP
	c.MIEBit = c.MPIE
	c.MPIE = true
	c.MPP = isa.PrivU
	return pc, priv
}

// ExecCSR applies a Zicsr instruction's read-modify-write. rs1Val is
// the rs1 register value (ignored for immediate forms). It returns the
// old CSR value for rd; ok=false means the access is illegal (missing
// CSR, insufficient privilege, or write to a read-only CSR).
func (c *CSRFile) ExecCSR(inst isa.Inst, rs1Val uint64, priv isa.Priv) (old uint64, ok bool) {
	old, ok = c.Read(inst.CSR, priv)
	if !ok {
		return 0, false
	}
	src := rs1Val
	switch inst.Op {
	case isa.OpCSRRWI, isa.OpCSRRSI, isa.OpCSRRCI:
		src = uint64(inst.Imm)
	}
	var wval uint64
	var write bool
	switch inst.Op {
	case isa.OpCSRRW, isa.OpCSRRWI:
		wval, write = src, true
	case isa.OpCSRRS:
		wval, write = old|src, inst.Rs1 != 0
	case isa.OpCSRRSI:
		wval, write = old|src, src != 0
	case isa.OpCSRRC:
		wval, write = old&^src, inst.Rs1 != 0
	case isa.OpCSRRCI:
		wval, write = old&^src, src != 0
	}
	if write && !c.Write(inst.CSR, wval) {
		return 0, false
	}
	return old, true
}
