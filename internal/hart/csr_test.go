package hart

import (
	"testing"

	"chatfuzz/internal/isa"
)

func TestMStatusRoundtrip(t *testing.T) {
	var c CSRFile
	c.SetMStatus(isa.MStatusMIE | isa.MStatusMPIE | uint64(isa.PrivM)<<isa.MStatusMPPShift)
	if !c.MIEBit || !c.MPIE || c.MPP != isa.PrivM {
		t.Errorf("decomposed fields wrong: %+v", c)
	}
	v := c.MStatus()
	if v&isa.MStatusMIE == 0 || v&isa.MStatusMPIE == 0 {
		t.Errorf("composed mstatus %#x missing bits", v)
	}
}

func TestMPPIsWARL(t *testing.T) {
	var c CSRFile
	// Writing the unimplemented S-mode (01) must clamp to M.
	c.SetMStatus(1 << isa.MStatusMPPShift)
	if c.MPP != isa.PrivM {
		t.Errorf("MPP = %v, want clamp to M", c.MPP)
	}
	c.SetMStatus(0)
	if c.MPP != isa.PrivU {
		t.Errorf("MPP = %v, want U", c.MPP)
	}
}

func TestPrivilegeGating(t *testing.T) {
	var c CSRFile
	if _, ok := c.Read(isa.CSRMScratch, isa.PrivU); ok {
		t.Error("U-mode read of mscratch must fail")
	}
	if _, ok := c.Read(isa.CSRMScratch, isa.PrivM); !ok {
		t.Error("M-mode read of mscratch must succeed")
	}
	if _, ok := c.Read(isa.CSRCycle, isa.PrivU); !ok {
		t.Error("U-mode read of the user cycle counter must succeed")
	}
}

func TestMEPCAlignmentMask(t *testing.T) {
	var c CSRFile
	c.Write(isa.CSRMEPC, 0x80000007)
	if c.MEPC != 0x80000004 {
		t.Errorf("mepc = %#x, want IALIGN=32 masking to 0x80000004", c.MEPC)
	}
}

func TestTrapAndMRetSequence(t *testing.T) {
	var c CSRFile
	c.MTVec = 0x8000_0100
	c.MIEBit = true

	pc, priv := c.TakeTrap(0x8000_2000, isa.ExcIllegalInstruction, 0xBAD, isa.PrivU)
	if pc != 0x8000_0100 || priv != isa.PrivM {
		t.Fatalf("trap entry -> pc=%#x priv=%v", pc, priv)
	}
	if c.MEPC != 0x8000_2000 || c.MCause != isa.ExcIllegalInstruction || c.MTVal != 0xBAD {
		t.Errorf("trap CSRs wrong: %+v", c)
	}
	if c.MIEBit || !c.MPIE || c.MPP != isa.PrivU {
		t.Errorf("mstatus trap update wrong: %+v", c)
	}

	pc, priv = c.MRet()
	if pc != 0x8000_2000 || priv != isa.PrivU {
		t.Errorf("mret -> pc=%#x priv=%v, want return to U at mepc", pc, priv)
	}
	if !c.MIEBit || !c.MPIE || c.MPP != isa.PrivU {
		t.Errorf("mstatus mret update wrong: %+v", c)
	}
}

func TestReadOnlyCSRs(t *testing.T) {
	var c CSRFile
	if c.Write(isa.CSRMHartID, 5) {
		t.Error("mhartid write must be rejected")
	}
	if c.Write(isa.CSRCycle, 5) {
		t.Error("user cycle write must be rejected")
	}
	if !c.Write(isa.CSRMCycle, 5) {
		t.Error("mcycle write must be accepted")
	}
	if v, _ := c.Read(isa.CSRMCycle, isa.PrivM); v != 5 {
		t.Errorf("mcycle = %d after write", v)
	}
}

func TestExecCSRWriteSuppression(t *testing.T) {
	var c CSRFile
	c.MScratch = 0xFF
	// csrrs rd, mscratch, x0 is a pure read: no write, even to RO CSRs.
	inst := isa.Decode(isa.EncCSR(isa.OpCSRRS, isa.A0, 0, isa.CSRMHartID))
	if _, ok := c.ExecCSR(inst, 0, isa.PrivM); !ok {
		t.Error("csrrs x0 on read-only CSR must be legal")
	}
	// csrrw always writes: illegal on RO.
	inst = isa.Decode(isa.EncCSR(isa.OpCSRRW, isa.A0, isa.A1, isa.CSRMHartID))
	if _, ok := c.ExecCSR(inst, 1, isa.PrivM); ok {
		t.Error("csrrw on read-only CSR must be illegal")
	}
	// csrrci with zimm=0: no write.
	inst = isa.Decode(isa.EncCSR(isa.OpCSRRCI, isa.A0, 0, isa.CSRMHartID))
	if _, ok := c.ExecCSR(inst, 0, isa.PrivM); !ok {
		t.Error("csrrci zimm=0 on read-only CSR must be legal")
	}
	// Read-modify-write on mscratch.
	inst = isa.Decode(isa.EncCSR(isa.OpCSRRS, isa.A0, isa.A1, isa.CSRMScratch))
	old, ok := c.ExecCSR(inst, 0x0F, isa.PrivM)
	if !ok || old != 0xFF || c.MScratch != 0xFF {
		t.Errorf("csrrs rmw: old=%#x mscratch=%#x ok=%v", old, c.MScratch, ok)
	}
}

func TestMISAValue(t *testing.T) {
	v, ok := (&CSRFile{}).Read(isa.CSRMISA, isa.PrivM)
	if !ok {
		t.Fatal("misa unreadable")
	}
	if v>>62 != 2 {
		t.Error("MXL must be 2 (RV64)")
	}
	for _, ext := range []byte{'i', 'm', 'a', 'u'} {
		if v&(1<<(ext-'a')) == 0 {
			t.Errorf("misa missing extension %c", ext)
		}
	}
}
