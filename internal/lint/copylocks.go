package lint

import (
	"go/ast"
	"go/types"
)

// Copylocks is a native port of the stock `copylocks` vet pass (the
// x/tools original cannot be vendored in this offline build): it
// flags values of lock-containing types — anything carrying a
// sync.Mutex, WaitGroup, or other Lock/Unlock pair — copied by value
// through parameters, results, receivers, range variables, plain
// assignments, or call arguments. A copied lock splits one critical
// section into two that no longer exclude each other; in this fleet
// that is how a barrier stops being a barrier.
var Copylocks = &Analyzer{
	Name:   "copylocks",
	Doc:    "value copy of a lock-containing type (port of the stock copylocks vet pass)",
	Scoped: false,
	Run:    runCopylocks,
}

func runCopylocks(pass *Pass) {
	c := &copyChecker{pass: pass, cache: make(map[types.Type]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					c.checkFieldList(n.Recv, "receiver")
				}
				c.checkFuncType(n.Type)
			case *ast.FuncLit:
				c.checkFuncType(n.Type)
			case *ast.RangeStmt:
				c.checkExprCopy(n.Key, "range key")
				c.checkExprCopy(n.Value, "range value")
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) != len(n.Rhs) {
						break
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					c.checkRHSCopy(rhs)
				}
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion: reported at the target's declaration
				}
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsBuiltin() {
					return true // len, cap, new(T), ... don't copy values
				}
				for _, arg := range n.Args {
					c.checkRHSCopyAt(arg, arg, "call argument")
				}
			}
			return true
		})
	}
}

type copyChecker struct {
	pass  *Pass
	cache map[types.Type]bool
}

func (c *copyChecker) checkFuncType(ft *ast.FuncType) {
	c.checkFieldList(ft.Params, "parameter")
	if ft.Results != nil {
		c.checkFieldList(ft.Results, "result")
	}
}

func (c *copyChecker) checkFieldList(fl *ast.FieldList, what string) {
	for _, field := range fl.List {
		t := c.pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !c.containsLock(t) {
			continue
		}
		c.pass.Reportf(field.Type.Pos(), "%s passes lock by value: %s contains a lock", what, t.String())
	}
}

// checkExprCopy flags a range variable whose type copies a lock.
func (c *copyChecker) checkExprCopy(e ast.Expr, what string) {
	if e == nil {
		return
	}
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil || !c.containsLock(t) {
		return
	}
	c.pass.Reportf(e.Pos(), "%s copies lock value: %s contains a lock", what, t.String())
}

// checkRHSCopy flags an assignment RHS that copies an existing
// lock-containing value. Composite literals construct a fresh value
// and are fine; so is taking an address.
func (c *copyChecker) checkRHSCopy(rhs ast.Expr) {
	c.checkRHSCopyAt(rhs, rhs, "assignment")
}

func (c *copyChecker) checkRHSCopyAt(rhs ast.Expr, at ast.Expr, what string) {
	switch ast.Unparen(rhs).(type) {
	case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr, *ast.FuncLit:
		// Fresh values, addresses and call results: the copy (if any)
		// is reported where the value was produced or declared.
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[rhs]; ok && !tv.IsValue() {
		return // type operand of new(T), make(T, ...), conversions
	}
	t := c.pass.TypesInfo.TypeOf(rhs)
	if t == nil || !c.containsLock(t) {
		return
	}
	c.pass.Reportf(at.Pos(), "%s copies lock value: %s contains a lock", what, t.String())
}

// containsLock reports whether a value of type t embeds a lock by
// value: the type (or a struct field / array element, recursively)
// has Lock and Unlock methods in its pointer method set. This is the
// same test the stock pass uses, and it catches sync.Mutex, RWMutex,
// WaitGroup, Once, Cond, Pool, Map and the noCopy convention alike.
func (c *copyChecker) containsLock(t types.Type) bool {
	if v, ok := c.cache[t]; ok {
		return v
	}
	c.cache[t] = false // cut recursive types
	v := c.lockType(t)
	c.cache[t] = v
	return v
}

func (c *copyChecker) lockType(t types.Type) bool {
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	if lookupMethod(ms, "Lock") && lookupMethod(ms, "Unlock") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.containsLock(u.Elem())
	}
	return false
}

func lookupMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
