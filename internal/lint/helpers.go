package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is a package-level function (not a
// method) of one of the named packages.
func isPkgFunc(fn *types.Func, pkgPaths ...string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range pkgPaths {
		if fn.Pkg().Path() == p {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

// lastResultIsError reports whether fn's final result is the error
// interface.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return types.Identical(sig.Results().At(sig.Results().Len()-1).Type(), errorType)
}

// mapRange returns the ranged-over map type when rs iterates a map.
func mapRange(info *types.Info, rs *ast.RangeStmt) (*types.Map, bool) {
	t := info.TypeOf(rs.X)
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

// eachStmtList invokes fn on every statement list of the file (block
// bodies, switch cases, select clauses), so callers can inspect a
// statement together with the statements that follow it in the same
// list.
func eachStmtList(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// unlabel strips labels from a statement: `L: for ... {}` checks the
// same as the bare loop.
func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// isFloat reports whether t is (or aliases) a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
