package lint

import (
	"go/ast"
)

// errdropTargets names the module's determinism-critical calls whose
// error results must never be discarded. RunRound/RunRounds/RunTests
// surface barrier failures that poison the fleet (PR 6 converted
// these from panics — a dropped error now silently runs on
// inconsistent state), and MergeWords is the barrier merge itself,
// whose error means a shard's coverage space diverged from the fleet
// global. The check keys on method name + an error-typed final result
// + a module-local callee, so it follows the methods through wrappers
// without a hard dependency on the defining package.
var errdropTargets = map[string]bool{
	"RunRound":   true,
	"RunRounds":  true,
	"RunTests":   true,
	"MergeWords": true,
}

// Errdrop flags discarded errors from the fleet's round-execution and
// barrier-merge calls, in every package (not just annotated scope):
// an ignored barrier failure is wrong in a CLI or example exactly as
// it is in the orchestrator.
var Errdrop = &Analyzer{
	Name:   "errdrop",
	Doc:    "discarded error from RunRound/RunRounds/RunTests or a barrier-merge call",
	Scoped: false,
	Run:    runErrdrop,
}

func runErrdrop(pass *Pass) {
	target := func(call *ast.CallExpr) string {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !errdropTargets[fn.Name()] {
			return ""
		}
		if !pass.InModule(fn.Pkg()) || !lastResultIsError(fn) {
			return ""
		}
		return fn.Name()
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := target(call); name != "" {
						pass.Reportf(call.Pos(), "%s returns a fleet-poisoning error that is discarded; handle it", name)
					}
				}
			case *ast.GoStmt:
				if name := target(n.Call); name != "" {
					pass.Reportf(n.Call.Pos(), "%s error is unobservable from a go statement; call it where the error can be handled", name)
				}
			case *ast.DeferStmt:
				if name := target(n.Call); name != "" {
					pass.Reportf(n.Call.Pos(), "%s error is discarded by defer; handle it", name)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name := target(call)
				if name == "" {
					return true
				}
				last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident)
				if ok && last.Name == "_" {
					pass.Reportf(last.Pos(), "%s error assigned to _; handle it", name)
				}
			}
			return true
		})
	}
}
