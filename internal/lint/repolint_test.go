package lint_test

import (
	"testing"

	"chatfuzz/internal/lint"
)

// TestRepoIsClean is the meta-test behind the CI gate: the whole
// module must pass every determinism analyzer at HEAD, so a change
// that introduces a violation (or leaves a dead //lint:allow behind)
// fails `go test ./...` as well as `fuzzlint ./...`.
func TestRepoIsClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("load ./...: no packages")
	}
	for _, d := range lint.Run(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
