package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatorder flags floating-point accumulation whose iteration order
// is not fixed: `sum += x` (and friends) on a float accumulator that
// outlives the loop body, inside a `range` over a map. Float addition
// is not associative, so even an "order-insensitive" reduction
// diverges bitwise between runs when the map hands out its entries in
// a different order — exactly the failure mode the fixed pairwise
// tournament in fleetlearn's weight averaging exists to prevent.
// Integer accumulation in the same position is commutative and is
// left to mapiter's judgment.
var Floatorder = &Analyzer{
	Name:   "floatorder",
	Doc:    "floating-point accumulation over unordered map iteration (fix the iteration order; float addition is not associative)",
	Scoped: true,
	Run:    runFloatorder,
}

func runFloatorder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, ok := mapRange(pass.TypesInfo, rs); !ok {
				return true
			}
			checkFloatAccum(pass, rs)
			return true
		})
	}
}

func checkFloatAccum(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := as.Lhs[0]
			if accumulatesFloat(pass.TypesInfo, lhs, rs) {
				pass.Reportf(as.Pos(), "floating-point accumulation into %s depends on the unordered iteration order of map %s",
					types.ExprString(lhs), types.ExprString(rs.X))
			}
		case token.ASSIGN:
			// x = x + v (first operand spelled the same as the target).
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return true
			}
			lhs := as.Lhs[0]
			if types.ExprString(bin.X) != types.ExprString(lhs) {
				return true
			}
			if accumulatesFloat(pass.TypesInfo, lhs, rs) {
				pass.Reportf(as.Pos(), "floating-point accumulation into %s depends on the unordered iteration order of map %s",
					types.ExprString(lhs), types.ExprString(rs.X))
			}
		}
		return true
	})
}

// accumulatesFloat reports whether lhs is a float-typed accumulator
// that survives across iterations: a variable declared outside the
// loop body, or any field/element lvalue. A float local declared
// inside the body resets every iteration and cannot observe order.
func accumulatesFloat(info *types.Info, lhs ast.Expr, rs *ast.RangeStmt) bool {
	t := info.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return false
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := info.ObjectOf(id)
		if obj == nil {
			return false
		}
		// Declared inside the loop body → per-iteration, order-blind.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return false
		}
	}
	return true
}
