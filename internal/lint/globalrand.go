package lint

import (
	"go/ast"
)

// globalrandConstructors are the math/rand functions that build a new
// source or generator rather than drawing from the package-level one;
// they are the plumbing the rule demands, so they pass.
var globalrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Globalrand flags package-level math/rand (and math/rand/v2) calls
// in deterministic scope: the global source is seeded once per
// process and shared across goroutines, so values drawn from it can
// never replay. All campaign randomness must flow from checkpointed
// seeds through an explicitly plumbed *rand.Rand (the per-round
// armSeed streams); methods on such a generator pass, package-level
// draws do not.
var Globalrand = &Analyzer{
	Name:   "globalrand",
	Doc:    "package-level math/rand draws in deterministic scope (plumb a seeded *rand.Rand from a checkpointed seed)",
	Scoped: true,
	Run:    runGlobalrand,
}

func runGlobalrand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isPkgFunc(fn, "math/rand", "math/rand/v2") {
				return true
			}
			if globalrandConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "rand.%s draws from the process-global source in deterministic scope; plumb a *rand.Rand seeded from a checkpointed seed", fn.Name())
			return true
		})
	}
}
