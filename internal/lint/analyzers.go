package lint

// All returns every analyzer of the determinism suite, in report
// order: the five custom rules encoding the fleet's bit-exactness
// invariants, then the native ports of the stock concurrency vet
// passes. (The stock nilness pass needs golang.org/x/tools/go/ssa,
// which this offline build cannot vendor; it joins the suite when the
// dependency can land.)
func All() []*Analyzer {
	return []*Analyzer{
		Mapiter,
		Wallclock,
		Globalrand,
		Floatorder,
		Errdrop,
		Copylocks,
		Atomic,
	}
}

// ByName returns the named analyzers, or ok=false naming the first
// unknown one.
func ByName(names []string) ([]*Analyzer, string, bool) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n, false
		}
		out = append(out, a)
	}
	return out, "", true
}
