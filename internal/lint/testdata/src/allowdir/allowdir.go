// Fixture for the directive grammar itself: live allows suppress and
// stay silent, dead allows are reported, and malformed or unknown
// directives are findings of the unsuppressible "directive"
// pseudo-analyzer.
//
//chatfuzz:deterministic
package allowdir

import "time"

func suppressedTrailing() time.Time {
	return time.Now() //lint:allow wallclock execution-only fixture probe
}

func suppressedAbove() time.Time {
	//lint:allow wallclock execution-only fixture probe
	return time.Now()
}

func deadEscape() {
	/*lint:allow wallclock nothing here to suppress*/ // want "lint:allow wallclock suppresses nothing"
}

func unknownAnalyzer() {
	/*lint:allow nosuch because reasons*/ // want "unknown analyzer"
}

func missingReason() {
	/*lint:allow wallclock*/ // want "lint:allow wallclock needs a reason"
}

//chatfuzz:bogus knob // want "unknown chatfuzz directive"

//chatfuzz:deterministic everything // want "malformed deterministic directive"
