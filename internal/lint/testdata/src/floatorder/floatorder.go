// Fixture for the floatorder analyzer: float accumulators that
// outlive a map-range body are findings (compound and spelled-out
// forms, locals, fields and map entries); integer accumulation and
// per-iteration float locals pass.
//
//chatfuzz:deterministic
package floatorder

func compound(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum"
	}
	return sum
}

func spelledOut(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "floating-point accumulation into sum"
	}
	return sum
}

type stats struct{ total float64 }

func field(m map[string]float64, s *stats) {
	for _, v := range m {
		s.total += v // want "floating-point accumulation into s.total"
	}
}

func mapEntry(m map[string]float64, out map[string]float64) {
	//lint:allow mapiter the mapiter verdict is not under test here
	for k, v := range m {
		// Same-key collisions still accumulate in map order.
		out[k[:1]] += v // want "floating-point accumulation into out"
	}
}

func intSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // integers commute bit-exactly
	}
	return sum
}

func perIterationLocal(m map[string]float64) float64 {
	last := 0.0
	for _, v := range m {
		d := v
		d *= 2 // local to the body: resets every iteration
		last = d
	}
	return last
}

func sliceAccum(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v // slice order is fixed
	}
	return sum
}
