// Package pkgscope demonstrates the package form of the annotation:
// the directive below puts every file of the package in deterministic
// scope, including files that carry no annotation of their own.
//
//chatfuzz:deterministic package
package pkgscope
