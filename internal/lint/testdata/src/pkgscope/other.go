package pkgscope

import "time"

// now lives in a file with no annotation, but the package-form
// directive in doc.go pulls it into scope anyway.
func now() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
