// Fixture for the errdrop analyzer: discarded errors from the
// fleet's round-execution and barrier-merge method names are findings
// in any file (the analyzer is unscoped); handling the error, or
// calling a same-named method without an error result, passes.
package errdrop

type fleet struct{}

func (f *fleet) RunRound() error          { return nil }
func (f *fleet) RunRounds(n int) error    { return nil }
func (f *fleet) RunTests(n int) error     { return nil }

type set struct{}

func (s *set) MergeWords(words []uint64) (int, error) { return 0, nil }

// core mimics the per-shard fuzzer: RunTests without an error result
// is not a target.
type core struct{}

func (c *core) RunTests(n int) {}

func drops(f *fleet, s *set) {
	f.RunRound()       // want "RunRound returns a fleet-poisoning error that is discarded"
	_ = f.RunRounds(3) // want "RunRounds error assigned to _"
	added, _ := s.MergeWords(nil) // want "MergeWords error assigned to _"
	_ = added
}

func concurrencyDrops(f *fleet) {
	go f.RunRound()    // want "RunRound error is unobservable from a go statement"
	defer f.RunRound() // want "RunRound error is discarded by defer"
}

func handles(f *fleet, s *set) error {
	if err := f.RunRound(); err != nil {
		return err
	}
	if _, err := s.MergeWords(nil); err != nil {
		return err
	}
	return f.RunTests(5)
}

func notATarget(c *core) {
	c.RunTests(3) // no error result: not a barrier-poisoning call
}
