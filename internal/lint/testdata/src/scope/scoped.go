// scoped.go opts into the deterministic scope with the file form of
// the annotation; unscoped.go holds identical code without it and
// stays invisible to the scoped analyzers.
//
//chatfuzz:deterministic file
package scope

import "time"

func scopedNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
