package scope

import "time"

// unscopedNow is the same wall-clock read as scoped.go, but this file
// carries no deterministic annotation, so no finding lands here.
func unscopedNow() time.Time {
	return time.Now()
}
