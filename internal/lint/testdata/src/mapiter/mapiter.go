// Fixture for the mapiter analyzer: bare map ranges are findings,
// the collect-and-sort idiom passes, collecting without sorting gets
// its own message, and //lint:allow silences order-insensitive loops.
//
//chatfuzz:deterministic
package mapiter

import (
	"sort"
	"strings"
)

func bare(m map[string]int) int {
	t := 0
	for _, v := range m { // want "iteration over unordered map m"
		t += v
	}
	return t
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type rec struct {
	name  string
	count int
}

func sortedValues(m map[string]*rec) []*rec {
	out := make([]*rec, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].count > out[j].count })
	return out
}

func collectedNeverSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "collected into keys are never sorted"
		keys = append(keys, k)
	}
	return keys
}

func allowed(m map[string]int, other map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//lint:allow mapiter order-insensitive map-to-map diff
	for k, v := range m {
		out[k] = v - other[k]
	}
	return out
}

func labeled(m map[string]bool) string {
	var b strings.Builder
outer: // labels don't hide the loop from the check
	for k := range m { // want "iteration over unordered map m"
		if k == "stop" {
			break outer
		}
		b.WriteString(k)
	}
	return b.String()
}

func sliceRangeIsFine(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
