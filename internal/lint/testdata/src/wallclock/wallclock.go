// Fixture for the wallclock analyzer: wall-clock reads and timer
// construction are findings; annotated execution-only probes pass.
//
//chatfuzz:deterministic
package wallclock

import "time"

func reads() time.Duration {
	t0 := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func timers(d time.Duration) {
	<-time.After(d)      // want "time.After reads the wall clock"
	_ = time.NewTicker(d) // want "time.NewTicker reads the wall clock"
}

func allowedTrailing() time.Time {
	return time.Now() //lint:allow wallclock execution-only probe in a fixture
}

func allowedAbove() time.Time {
	//lint:allow wallclock execution-only probe in a fixture
	return time.Now()
}

func notTheClock(d time.Duration) time.Duration {
	// Pure duration arithmetic never reads the clock.
	return d.Round(time.Millisecond)
}
