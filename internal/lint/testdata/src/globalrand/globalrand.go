// Fixture for the globalrand analyzer: package-level math/rand draws
// are findings; explicitly plumbed *rand.Rand generators pass.
//
//chatfuzz:deterministic
package globalrand

import "math/rand"

func global() int {
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	return rand.Intn(10)               // want "rand.Intn draws from the process-global source"
}

func seedTheGlobal() {
	rand.Seed(42) // want "rand.Seed draws from the process-global source"
}

func plumbed(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func passedIn(rng *rand.Rand) float64 {
	return rng.Float64()
}
