// Fixture for the native copylocks port: by-value flow of a
// lock-containing type through parameters, results, receivers, range
// variables, assignments and call arguments is a finding; pointers,
// addresses and freshly constructed composite literals pass. The
// analyzer is unscoped, so no deterministic annotation is needed.
package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

var shared guarded

func byValueParam(g guarded) { // want "parameter passes lock by value"
	g.mu.Lock()
}

func byValueResult() (g guarded) { // want "result passes lock by value"
	return
}

func (g guarded) byValueReceiver() int { // want "receiver passes lock by value"
	return g.n
}

func rangeCopy(gs []guarded) int {
	t := 0
	for _, g := range gs { // want "range value copies lock value"
		t += g.n
	}
	return t
}

func assignCopy() {
	b := shared // want "assignment copies lock value"
	b.n++
}

func consume(g guarded) {} // want "parameter passes lock by value"

func callArg() {
	consume(shared) // want "call argument copies lock value"
}

func pointerFlow(g *guarded) *guarded {
	// Pointers and addresses never copy the lock.
	take(&shared)
	return g
}

func take(p *guarded) {}

func freshValue() {
	// A composite literal constructs a new value; no lock is copied.
	c := guarded{n: 1}
	c.n++
}
