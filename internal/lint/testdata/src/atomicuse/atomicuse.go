// Fixture for the native atomic port: storing an atomic.Add result
// back into its own operand with a plain assignment is a finding;
// dropping the result or binding it to a fresh variable passes. The
// analyzer is unscoped, so no deterministic annotation is needed.
package atomicuse

import "sync/atomic"

type counter struct{ n int64 }

func bad(c *counter) {
	c.n = atomic.AddInt64(&c.n, 1) // want "direct assignment of atomic.AddInt64 result back to c.n"
}

func badLocal() int64 {
	var x int64
	x = atomic.AddInt64(&x, 1) // want "direct assignment of atomic.AddInt64 result back to x"
	return x
}

func good(c *counter) int64 {
	atomic.AddInt64(&c.n, 1)
	v := atomic.AddInt64(&c.n, 1)
	return v
}
