package lint

import (
	"go/ast"
)

// wallclockFuncs are the time-package functions that read or arm the
// wall clock. Any of them in a deterministic path lets real time leak
// into replayable state; virtual time (internal/vtime) is the only
// clock deterministic code may consult.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock flags wall-clock reads (time.Now, time.Since, timer
// construction) in deterministic scope. Execution-only measurement —
// scheduler probes, benchmark timing — whose results provably never
// reach checkpointed or trajectory state is annotated at the call
// site with //lint:allow wallclock <reason>.
var Wallclock = &Analyzer{
	Name:   "wallclock",
	Doc:    "wall-clock reads in deterministic scope (use internal/vtime; //lint:allow wallclock <reason> for execution-only probes)",
	Scoped: true,
	Run:    runWallclock,
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isPkgFunc(fn, "time") || !wallclockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in deterministic scope; use virtual time, or //lint:allow wallclock <reason> for execution-only measurement", fn.Name())
			return true
		})
	}
}
