// Package linttest is the fixture harness for the determinism lint
// suite: an analysistest-style runner (the x/tools original cannot be
// vendored in this offline build) that applies analyzers to a golden
// package under testdata/src and checks the findings against `want`
// comments.
//
// A want comment annotates the source line a diagnostic must land on:
//
//	for _, v := range m { // want "iteration over unordered map"
//
// The quoted string is a regexp matched against the diagnostic
// message; several want comments may share a line. The block form
// /* want "..." */ works too. Every want must be hit by at least one
// diagnostic and every diagnostic must hit a want, so fixtures pin
// both the positives and the silence of the suppression paths.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"chatfuzz/internal/lint"
)

var wantRe = regexp.MustCompile(`(?://|/\*) want "((?:[^"\\]|\\.)*)"`)

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package at srcRoot/pkgPath, applies the
// analyzers, and reports any mismatch between findings and the
// package's want comments as test failures.
func Run(t *testing.T, srcRoot, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader, err := lint.NewLoader(srcRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", pkgPath, len(pkgs))
	}

	wants, err := parseWants(pkgs[0].Dir)
	if err != nil {
		t.Fatalf("parse want comments: %v", err)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// parseWants scans every fixture file for want comments.
func parseWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				out = append(out, &want{file: path, line: i + 1, re: re})
			}
		}
	}
	return out, nil
}
