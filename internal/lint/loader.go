package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// PkgPath is the import path ("chatfuzz/internal/campaign"), or
	// the bare directory name for fixture trees without a go.mod.
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info

	loader *Loader
}

// Loader parses and type-checks module packages without
// golang.org/x/tools: module-local imports are resolved recursively
// from source, everything else (the standard library) goes through
// the compiler's source importer, so loading works with no module
// proxy, no build cache and no export data.
type Loader struct {
	// RootDir is the module root (the directory holding go.mod), or
	// the src root of a fixture tree.
	RootDir string
	// ModulePath is the module's import-path prefix from go.mod.
	// Empty for fixture trees: then any import whose path names a
	// directory under RootDir resolves module-locally.
	ModulePath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	owned   map[*types.Package]bool
	loading map[string]bool // import-cycle guard
}

// NewLoader builds a loader rooted at root. If root/go.mod exists its
// module path scopes local import resolution; otherwise the loader is
// in fixture mode.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		RootDir: abs,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		owned:   make(map[*types.Package]bool),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		l.ModulePath = modulePath(string(data))
	}
	return l, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the patterns — "./...", "dir/...", or plain relative
// directories, all relative to RootDir — and returns the matched
// packages, loading them and their module-local imports as needed.
// Directories named testdata, vendor, or starting with "." or "_"
// are skipped by the recursive forms, matching the go tool.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walk(l.RootDir)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.RootDir, strings.TrimSuffix(pat, "/..."))
			walked, err := l.walk(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			add(filepath.Join(l.RootDir, pat))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walk collects the directories under base that contain buildable
// non-test Go files.
func (l *Loader) walk(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			out = append(out, path)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under RootDir to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if l.ModulePath == "" {
		return rel, nil
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + rel, nil
}

// dirFor maps a module-local import path back to its directory, or
// ok=false if the path is not module-local.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.RootDir, true
		}
		if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.RootDir, filepath.FromSlash(rel)), true
		}
		return "", false
	}
	// Fixture mode: a path is local when its directory exists.
	dir := filepath.Join(l.RootDir, filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir, true
	}
	return "", false
}

// owns reports whether the loader type-checked p (vs the stdlib
// importer).
func (l *Loader) owns(p *types.Package) bool { return l.owned[p] }

// loadDir parses and type-checks the package in dir (memoized).
// Returns (nil, nil) when dir holds no buildable non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	pkg := &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
		loader:  l,
	}
	l.pkgs[path] = pkg
	l.owned[tpkg] = true
	return pkg, nil
}

// loaderImporter adapts the loader into a types.ImporterFrom that
// resolves module-local paths itself and defers the rest to the
// source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if local, ok := l.dirFor(path); ok {
		pkg, err := l.loadDir(local)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", local)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
