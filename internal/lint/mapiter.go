package lint

import (
	"go/ast"
	"go/types"
)

// Mapiter flags `range` over a map in deterministic scope: map
// iteration order is randomized per run, so any map range whose body
// feeds ordered state — checkpoint encoding, coverage merge, weight
// averaging, report rows — breaks bit-exact replay.
//
// The one blessed shape is the sorted-keys idiom, which the analyzer
// recognizes and accepts without an annotation:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys { ... m[k] ... }
//
// (collecting the map's values instead of its keys and sorting those
// is accepted the same way). A map range that collects into a slice
// but never sorts it is reported with a dedicated message. Loops that
// are genuinely order-insensitive — commutative integer sums, map→map
// copies — take //lint:allow mapiter <reason>.
var Mapiter = &Analyzer{
	Name:   "mapiter",
	Doc:    "unordered map iteration in deterministic scope (use the collect-and-sort idiom, or //lint:allow mapiter <reason> when order-insensitive)",
	Scoped: true,
	Run:    runMapiter,
}

func runMapiter(pass *Pass) {
	for _, f := range pass.Files {
		eachStmtList(f, func(list []ast.Stmt) {
			for i, s := range list {
				rs, ok := unlabel(s).(*ast.RangeStmt)
				if !ok {
					continue
				}
				if _, ok := mapRange(pass.TypesInfo, rs); !ok {
					continue
				}
				switch dest := collectIdiom(pass.TypesInfo, rs); {
				case dest == nil:
					pass.Reportf(rs.For, "iteration over unordered map %s in deterministic scope; collect and sort keys first, or //lint:allow mapiter <reason> if order-insensitive",
						types.ExprString(rs.X))
				case !sortedLater(pass.TypesInfo, list[i+1:], dest):
					pass.Reportf(rs.For, "map entries collected into %s are never sorted in this block; sort before use or //lint:allow mapiter <reason>",
						dest.Name())
				}
			}
		})
	}
}

// collectIdiom reports whether the range body is exactly the
// collect-into-a-slice idiom — `dst = append(dst, k)` for the range's
// key or value variable — and returns the destination slice's object.
func collectIdiom(info *types.Info, rs *ast.RangeStmt) types.Object {
	if len(rs.Body.List) != 1 {
		return nil
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" ||
		info.Uses[fn] != types.Universe.Lookup("append") {
		return nil
	}
	if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || info.Uses[base] != info.ObjectOf(dst) {
		return nil
	}
	elem, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return nil
	}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" && info.ObjectOf(id) == info.Uses[elem] {
			return info.ObjectOf(dst)
		}
	}
	return nil
}

// sortedLater reports whether any statement after the collecting loop
// passes the destination slice to a sort/slices call.
func sortedLater(info *types.Info, tail []ast.Stmt, dest types.Object) bool {
	found := false
	for _, s := range tail {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(info, call)
			if !isPkgFunc(fn, "sort", "slices") {
				return true
			}
			for _, arg := range call.Args {
				argUses := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && info.Uses[id] == dest {
						argUses = true
					}
					return !argUses
				})
				if argUses {
					found = true
					break
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
