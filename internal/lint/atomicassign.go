package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomic is a native port of the stock `atomic` vet pass (the x/tools
// original cannot be vendored in this offline build): it flags
//
//	x = atomic.AddInt64(&x, 1)
//
// — assigning an atomic read-modify-write's result back to its own
// operand with a plain (non-atomic) store, which races with every
// concurrent atomic access to x and silently un-atomics the counter.
var Atomic = &Analyzer{
	Name:   "atomic",
	Doc:    "plain assignment of an atomic.Add result back to its operand (port of the stock atomic vet pass)",
	Scoped: false,
	Run:    runAtomic,
}

func runAtomic(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || !isPkgFunc(fn, "sync/atomic") || !strings.HasPrefix(fn.Name(), "Add") {
					continue
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					continue
				}
				if types.ExprString(addr.X) == types.ExprString(as.Lhs[i]) {
					pass.Reportf(as.Pos(), "direct assignment of atomic.%s result back to %s defeats the atomicity; drop the assignment",
						fn.Name(), types.ExprString(as.Lhs[i]))
				}
			}
			return true
		})
	}
}
