package lint_test

import (
	"testing"

	"chatfuzz/internal/lint"
	"chatfuzz/internal/lint/linttest"
)

// Each fixture package under testdata/src pins one analyzer's
// positives (want comments) and negatives (silence everywhere else);
// the harness fails on both missed wants and unexpected findings.

func TestMapiter(t *testing.T) {
	linttest.Run(t, "testdata/src", "mapiter", lint.Mapiter)
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata/src", "wallclock", lint.Wallclock)
}

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, "testdata/src", "globalrand", lint.Globalrand)
}

func TestFloatorder(t *testing.T) {
	linttest.Run(t, "testdata/src", "floatorder", lint.Floatorder)
}

func TestErrdrop(t *testing.T) {
	linttest.Run(t, "testdata/src", "errdrop", lint.Errdrop)
}

func TestCopylocks(t *testing.T) {
	linttest.Run(t, "testdata/src", "copylocks", lint.Copylocks)
}

func TestAtomic(t *testing.T) {
	linttest.Run(t, "testdata/src", "atomicuse", lint.Atomic)
}

// TestAllowDirectives exercises the annotation grammar: live allows
// suppress silently, dead allows and malformed directives are
// "directive" findings.
func TestAllowDirectives(t *testing.T) {
	linttest.Run(t, "testdata/src", "allowdir", lint.Wallclock)
}

// TestFileScope checks that the file form of the annotation scopes
// exactly one file: scoped.go is inspected, unscoped.go is not.
func TestFileScope(t *testing.T) {
	linttest.Run(t, "testdata/src", "scope", lint.Wallclock)
}

// TestPackageScope checks that the package form in a doc file pulls
// every file of the package into scope.
func TestPackageScope(t *testing.T) {
	linttest.Run(t, "testdata/src", "pkgscope", lint.Wallclock)
}
