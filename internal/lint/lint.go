// Package lint is the fleet's determinism lint framework: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, diagnostics) plus the annotation
// grammar that scopes the determinism rules to the code that stakes
// bit-exact replay on them.
//
// Everything added since PR 1 — checkpoint/resume, barrier weight
// averaging, the fleet pool, off-barrier learning — promises that two
// runs of the same seed produce bit-identical trajectories and
// checkpoint bytes. That invariant is asserted at runtime by table
// tests, but a runtime test cannot see a freshly introduced unordered
// map range or a stray wall-clock read until it flakes. The analyzers
// in this package (see mapiter.go, wallclock.go, globalrand.go,
// floatorder.go, errdrop.go, copylocks.go, atomicassign.go) move that
// enforcement to compile time; cmd/fuzzlint is the multichecker that
// runs them over the module.
//
// # Annotation grammar
//
// Scope — which files the deterministic-path analyzers inspect — is
// opt-in via directive comments:
//
//	//chatfuzz:deterministic package   → every file of the package
//	//chatfuzz:deterministic           → this file only
//	//chatfuzz:deterministic file      → this file only (explicit form)
//
// The package form conventionally sits directly above the package
// clause of the package's doc file. Unscoped analyzers (errdrop,
// copylocks, atomic) run over every file regardless of annotation.
//
// Individual findings are silenced with an explicit, reasoned escape:
//
//	//lint:allow <analyzer> <reason>
//
// which covers its own source line and the line directly below it
// (so it works both as a trailing comment and on its own line above
// the finding). The reason is mandatory, the analyzer name must be
// one the runner knows, and an allow that suppresses nothing is
// itself reported — escapes must stay live, or they rot into blanket
// waivers. Grammar violations are reported by the pseudo-analyzer
// "directive" and cannot be suppressed.
//
// The framework is stdlib-only on purpose: the build environment has
// no module proxy, so golang.org/x/tools (and with it the stock
// nilness pass, which needs its SSA package) cannot be vendored.
// copylocks and atomic are reimplemented natively below; nilness is
// deferred until x/tools can be pulled in.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named lint rule, mirroring the x/tools analysis
// shape so rules port over directly if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in reports and //lint:allow
	// comments.
	Name string
	// Doc is the one-paragraph rule description shown by
	// `fuzzlint -list`.
	Doc string
	// Scoped analyzers only inspect files inside the
	// //chatfuzz:deterministic annotation scope; unscoped analyzers
	// see every file of every package.
	Scoped bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the syntax trees in scope for this analyzer: the
	// package's deterministic-annotated files for scoped analyzers,
	// all files otherwise.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// InModule reports whether a types.Package was loaded from the
	// module under analysis (as opposed to the standard library);
	// analyzers use it to restrict themselves to repo-local callees.
	InModule func(*types.Package) bool

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// directiveName is the pseudo-analyzer that owns annotation-grammar
// findings (malformed directives, unknown analyzer names in allows,
// unused allows). It is not suppressible.
const directiveName = "directive"

const (
	detPrefix   = "chatfuzz:"
	allowPrefix = "lint:allow"
)

// directiveBody strips the comment markers: both //-form and
// /* */-form directives are honored (the block form lets a directive
// share a line with other trailing comments).
func directiveBody(text string) string {
	if rest, ok := strings.CutPrefix(text, "//"); ok {
		return rest
	}
	return strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
}

// allow is one parsed //lint:allow comment.
type allow struct {
	file     string
	line     int
	analyzer string
	pos      token.Pos
	used     bool
}

// directives is the parsed annotation state of one package.
type directives struct {
	pkgDet   bool               // any file carries the package form
	fileDet  map[*ast.File]bool // files carrying the file form
	allows   []*allow
	problems []Diagnostic // grammar findings, attributed to "directive"
}

// parseDirectives scans every comment of the package for the
// annotation grammar. known is the set of analyzer names valid in
// allow comments.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) *directives {
	d := &directives{fileDet: make(map[*ast.File]bool)}
	problem := func(pos token.Pos, format string, args ...any) {
		d.problems = append(d.problems, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: directiveName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := directiveBody(c.Text)
				switch {
				case strings.HasPrefix(text, detPrefix):
					rest := strings.TrimPrefix(text, detPrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 || fields[0] != "deterministic" {
						problem(c.Pos(), "unknown chatfuzz directive %q (want //chatfuzz:deterministic [package|file])", c.Text)
						continue
					}
					switch {
					case len(fields) == 1 || (len(fields) == 2 && fields[1] == "file"):
						d.fileDet[f] = true
					case len(fields) == 2 && fields[1] == "package":
						d.pkgDet = true
					default:
						problem(c.Pos(), "malformed deterministic directive %q (want //chatfuzz:deterministic [package|file])", c.Text)
					}
				case strings.HasPrefix(text, allowPrefix):
					rest := strings.TrimPrefix(text, allowPrefix)
					if rest != "" && !strings.HasPrefix(rest, " ") {
						// e.g. //lint:allowx — not ours.
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						problem(c.Pos(), "lint:allow needs an analyzer name and a reason")
						continue
					}
					name := fields[0]
					if !known[name] {
						problem(c.Pos(), "lint:allow names unknown analyzer %q", name)
						continue
					}
					if len(fields) < 2 {
						problem(c.Pos(), "lint:allow %s needs a reason", name)
						continue
					}
					pos := fset.Position(c.Pos())
					d.allows = append(d.allows, &allow{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: name,
						pos:      c.Pos(),
					})
				}
			}
		}
	}
	return d
}

// scopedFiles returns the files a scoped analyzer should see.
func (d *directives) scopedFiles(files []*ast.File) []*ast.File {
	if d.pkgDet {
		return files
	}
	var out []*ast.File
	for _, f := range files {
		if d.fileDet[f] {
			out = append(out, f)
		}
	}
	return out
}

// suppress marks the allow covering diag as used and reports whether
// one exists. An allow covers its own line and the next line, so it
// works both trailing the finding and on its own line above it.
func (d *directives) suppress(diag Diagnostic) bool {
	for _, a := range d.allows {
		if a.analyzer != diag.Analyzer || a.file != diag.Pos.Filename {
			continue
		}
		if a.line == diag.Pos.Line || a.line == diag.Pos.Line-1 {
			a.used = true
			return true
		}
	}
	return false
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics sorted by position. Directive-grammar findings and
// unused allows are included under the pseudo-analyzer "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		// Accept allows for any registered analyzer, but only judge an
		// allow unused when its analyzer actually ran: a partial
		// -analyzers invocation must not condemn the others' escapes.
		known[a.Name] = true
		ran[a.Name] = true
	}

	inModule := func(p *types.Package) bool { return false }
	if len(pkgs) > 0 && pkgs[0].loader != nil {
		l := pkgs[0].loader
		inModule = func(p *types.Package) bool { return l.owns(p) }
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg.Fset, pkg.Syntax, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			files := pkg.Syntax
			if a.Scoped {
				files = dirs.scopedFiles(files)
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				InModule:  inModule,
				diags:     &raw,
			}
			a.Run(pass)
		}
		for _, diag := range raw {
			if !dirs.suppress(diag) {
				out = append(out, diag)
			}
		}
		out = append(out, dirs.problems...)
		for _, a := range dirs.allows {
			if !a.used && ran[a.analyzer] {
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(a.pos),
					Analyzer: directiveName,
					Message:  fmt.Sprintf("lint:allow %s suppresses nothing; remove it", a.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
