package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"chatfuzz/internal/campaign"
	"chatfuzz/internal/telemetry"
)

// Config parameterises a farm server.
type Config struct {
	// Dir is the farm's data directory: the queue log lives at
	// Dir/queue.log, job checkpoints under Dir/jobs/<id>/. Created if
	// absent.
	Dir string
	// Addr, when non-empty, serves the HTTP API on this address
	// (":0" picks a free port; Server.Addr reports it). Empty runs
	// the farm as a library with no listener (tests, embedding).
	Addr string
	// Workers bounds concurrently running jobs (default 1). Execution
	// detail: it affects wall-clock only, never a job's bits.
	Workers int
	// Metrics, when non-nil, receives farm gauges (jobs by state,
	// rounds completed) and is mounted at /metrics, /debug/vars and
	// /debug/pprof on the API listener — the same telemetry endpoint
	// the campaign CLI serves.
	Metrics *telemetry.Registry
	// Log receives daemon progress lines (default: discarded).
	Log io.Writer
}

// walRecord is one queue-log entry. Op submit carries Spec; op done
// carries Summary; op fail carries Err.
type walRecord struct {
	Op      string      `json:"op"`
	ID      string      `json:"id"`
	Spec    *JobSpec    `json:"spec,omitempty"`
	Summary *JobSummary `json:"summary,omitempty"`
	Err     string      `json:"err,omitempty"`
}

// job is the in-memory job record.
type job struct {
	status JobStatus
	// rounds is the full per-round report history, rebuilt from the
	// checkpoint's merged trajectory when a job is recovered.
	rounds []RoundReport
}

// Server is the campaign farm: a durable job queue, a worker pool
// running jobs on campaign orchestrators, and the HTTP API.
type Server struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond // broadcast on queue pushes and job progress
	wal  *wal
	jobs map[string]*job
	// order is submission order (the queue log's replay order); queue
	// is the pending sub-sequence, popped FIFO.
	order  []string
	queue  []string
	nextID int
	// stopping stops workers at the next round barrier (graceful:
	// runners checkpoint before returning). killed additionally
	// abandons the terminal WAL record — the in-process crash
	// simulation used by recovery tests.
	stopping bool
	killed   bool

	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// Open replays the queue log in cfg.Dir, re-queues every job that has
// no terminal record (in submission order), starts the worker pool,
// and serves the API when cfg.Addr is set.
func Open(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("farm: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("farm: data dir: %w", err)
	}
	w, recs, err := openWAL(filepath.Join(cfg.Dir, "queue.log"))
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, wal: w, jobs: map[string]*job{}}
	s.cond = sync.NewCond(&s.mu)
	if err := s.replay(recs); err != nil {
		w.Close()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.Addr != "" {
		ln, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			s.shutdownWorkers()
			w.Close()
			return nil, fmt.Errorf("farm: listen %s: %w", cfg.Addr, err)
		}
		s.ln = ln
		s.srv = &http.Server{Handler: s.handler()}
		go func() {
			// ErrServerClosed on Stop; anything else means the listener
			// died underneath a healthy farm — jobs keep running.
			_ = s.srv.Serve(ln)
		}()
	}
	s.recordMetrics()
	return s, nil
}

// replay rebuilds the job table from queue-log records. Jobs replay
// in log order; a job is re-queued unless a later done/fail record
// closed it. Unknown ops or malformed payloads fail loudly — the log
// is fsynced and checksummed, so they mean a version skew, not a
// crash.
func (s *Server) replay(recs [][]byte) error {
	for i, raw := range recs {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("farm: queue-log record %d: %w", i, err)
		}
		switch r.Op {
		case "submit":
			if r.Spec == nil {
				return fmt.Errorf("farm: queue-log record %d: submit without a spec", i)
			}
			s.jobs[r.ID] = &job{status: JobStatus{ID: r.ID, State: JobQueued, Spec: *r.Spec}}
			s.order = append(s.order, r.ID)
			// IDs are sequential (job-1, job-2, ...); track the max so
			// new submissions continue the sequence.
			var n int
			if _, err := fmt.Sscanf(r.ID, "job-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
			}
		case "done", "fail":
			j, ok := s.jobs[r.ID]
			if !ok {
				return fmt.Errorf("farm: queue-log record %d closes unknown job %q", i, r.ID)
			}
			if r.Op == "done" {
				j.status.State = JobDone
				j.status.Summary = r.Summary
				if r.Summary != nil {
					j.status.Round = r.Summary.Rounds
					j.status.Tests = r.Summary.Tests
					j.status.Coverage = r.Summary.Coverage
				}
			} else {
				j.status.State = JobFailed
				j.status.Error = r.Err
			}
		default:
			return fmt.Errorf("farm: queue-log record %d has unknown op %q", i, r.Op)
		}
	}
	// Re-queue survivors in submission order; note recovered progress
	// so status reads sensibly before a worker picks the job up.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.status.State != JobQueued {
			continue
		}
		if info, err := campaign.ReadCheckpointInfo(s.checkpointPath(id)); err == nil {
			j.status.Round = info.Round
			j.status.Tests = info.Tests
			j.status.Resumes++
		}
		s.queue = append(s.queue, id)
		fmt.Fprintf(s.cfg.Log, "farm: re-queued %s (round %d, %d tests)\n", id, j.status.Round, j.status.Tests)
	}
	return nil
}

func (s *Server) jobDir(id string) string         { return filepath.Join(s.cfg.Dir, "jobs", id) }
func (s *Server) checkpointPath(id string) string { return filepath.Join(s.jobDir(id), "ckpt.json") }

// shutdownWorkers stops the worker pool without touching the WAL
// (Open's error path, before anything ran).
func (s *Server) shutdownWorkers() {
	s.mu.Lock()
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Addr returns the API listener's bound address ("" in library mode).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Submit validates, defaults, durably logs and enqueues a job. The
// returned status is the job's initial queued state; the job is
// recoverable the moment Submit returns.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return JobStatus{}, fmt.Errorf("farm: server is shutting down")
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	raw, err := json.Marshal(walRecord{Op: "submit", ID: id, Spec: &spec})
	if err != nil {
		return JobStatus{}, err
	}
	// Durability before acknowledgement: the WAL append fsyncs.
	if err := s.wal.Append(raw); err != nil {
		return JobStatus{}, err
	}
	j := &job{status: JobStatus{ID: id, State: JobQueued, Spec: spec}}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.recordMetricsLocked()
	s.cond.Broadcast()
	fmt.Fprintf(s.cfg.Log, "farm: queued %s (%d tests, %d shards)\n", id, spec.Tests, spec.Shards)
	return j.status, nil
}

// Job returns a job's status snapshot.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status, true
}

// Jobs returns every job's status, in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	return out
}

// Rounds returns the round reports of a job from index `from` on
// (0-based into the report history). ok is false for unknown jobs.
func (s *Server) Rounds(id string, from int) (reps []RoundReport, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, okj := s.jobs[id]
	if !okj {
		return nil, false
	}
	if from < 0 {
		from = 0
	}
	if from > len(j.rounds) {
		from = len(j.rounds)
	}
	return append([]RoundReport(nil), j.rounds[from:]...), true
}

// popJob blocks until a job is available or the server stops,
// claiming the oldest queued job.
func (s *Server) popJob() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.stopping {
		s.cond.Wait()
	}
	if s.stopping {
		return "", false
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	j := s.jobs[id]
	j.status.State = JobRunning
	s.recordMetricsLocked()
	s.cond.Broadcast()
	return id, true
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		id, ok := s.popJob()
		if !ok {
			return
		}
		s.runJob(id)
	}
}

// stopRequested reports whether runners should park their jobs at the
// next round barrier.
func (s *Server) stopRequested() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping
}

// isKilled reports crash-simulation mode (see Kill).
func (s *Server) isKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// finishJob durably closes a job (done or fail) and broadcasts. In
// killed mode the terminal record is deliberately dropped — the
// simulated crash — so a reopened farm re-queues the job.
func (s *Server) finishJob(id string, summary *JobSummary, runErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if s.killed {
		return
	}
	rec := walRecord{ID: id}
	if runErr != nil {
		rec.Op, rec.Err = "fail", runErr.Error()
	} else {
		rec.Op, rec.Summary = "done", summary
	}
	raw, err := json.Marshal(rec)
	if err == nil {
		err = s.wal.Append(raw)
	}
	if err != nil {
		// The job finished but its terminal record did not land: keep
		// it non-terminal so a restart re-runs (resume makes that
		// harmless) rather than losing the failure.
		fmt.Fprintf(s.cfg.Log, "farm: %s: queue log: %v\n", id, err)
		j.status.State = JobQueued
		s.queue = append(s.queue, id)
		s.recordMetricsLocked()
		s.cond.Broadcast()
		return
	}
	if runErr != nil {
		j.status.State = JobFailed
		j.status.Error = runErr.Error()
		fmt.Fprintf(s.cfg.Log, "farm: %s failed: %v\n", id, runErr)
	} else {
		j.status.State = JobDone
		j.status.Summary = summary
		fmt.Fprintf(s.cfg.Log, "farm: %s done: %d rounds, %d tests, %.2f%% coverage\n",
			id, summary.Rounds, summary.Tests, summary.Coverage)
	}
	s.recordMetricsLocked()
	s.cond.Broadcast()
}

// parkJob returns a stopping job to the queue (graceful shutdown: its
// checkpoint is durable, the restart will resume it).
func (s *Server) parkJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	j.status.State = JobQueued
	s.recordMetricsLocked()
	s.cond.Broadcast()
	fmt.Fprintf(s.cfg.Log, "farm: parked %s at round %d\n", id, j.status.Round)
}

// Stop shuts the farm down gracefully: the listener closes, runners
// finish their current round, checkpoint, and park; the queue log
// closes last. Jobs still queued or parked resume on the next Open.
func (s *Server) Stop() error {
	s.mu.Lock()
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.srv != nil {
		_ = s.srv.Close()
	}
	s.wg.Wait()
	return s.wal.Close()
}

// Kill is the crash lever for recovery tests: it behaves like Stop
// except that runners abandon their jobs without a final checkpoint
// or terminal record — exactly the on-disk state a kill -9 between
// durable writes leaves behind. (A real kill -9 is exercised by the
// cmd/campd end-to-end test; Kill covers the in-process suite.)
func (s *Server) Kill() {
	s.mu.Lock()
	s.stopping = true
	s.killed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.srv != nil {
		_ = s.srv.Close()
	}
	s.wg.Wait()
	// Deliberately skip the WAL close-path flushes a graceful Stop
	// performs; appends were individually fsynced, so the log is
	// already exactly what a crash would leave.
	_ = s.wal.f.Close()
}

// recordMetrics publishes farm gauges into cfg.Metrics.
func (s *Server) recordMetrics() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recordMetricsLocked()
}

func (s *Server) recordMetricsLocked() {
	g := s.cfg.Metrics
	if g == nil {
		return
	}
	counts := map[JobState]int{}
	for _, id := range s.order {
		counts[s.jobs[id].status.State]++
	}
	g.Gauge("farm/jobs_queued").Set(float64(counts[JobQueued]))
	g.Gauge("farm/jobs_running").Set(float64(counts[JobRunning]))
	g.Gauge("farm/jobs_done").Set(float64(counts[JobDone]))
	g.Gauge("farm/jobs_failed").Set(float64(counts[JobFailed]))
}
