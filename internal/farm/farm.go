// Package farm is the distributed campaign service: a long-lived
// daemon (cmd/campd) that accepts fuzzing-campaign submissions over
// an HTTP/JSON API, persists each job in an on-disk write-ahead queue
// log (append, fsync, checksum — replayed on startup), runs jobs on
// the campaign orchestrator with a durable atomic checkpoint after
// every CheckpointEvery rounds, and streams round reports to
// watching clients.
//
// Crash safety is the design center, and it rests on two invariants
// the rest of the repo already enforces:
//
//  1. Checkpoints are atomic and durable (internal/atomicio): at any
//     instant a job's checkpoint file holds a complete generation,
//     never a torn one, no matter when the process died.
//  2. Resume is bit-exact (internal/campaign): a fleet rebuilt from a
//     checkpoint replays the remaining rounds bit-identically to the
//     uninterrupted run — trajectories and subsequent checkpoint
//     bytes included.
//
// Together they make the daemon's recovery story trivial to state: on
// restart, every job whose submit record has no terminal (done/fail)
// record is re-queued in submission order; a job with a checkpoint
// resumes from it, a job without one starts over from its seed; and
// in both cases the completed job is indistinguishable — bit for bit
// — from one whose daemon never died. Losing a kill -9 costs at most
// the rounds since the last durable checkpoint, re-simulated, never
// diverged.
//
// Scheduling state (everything in the checkpoint) is durable;
// execution details (worker counts, pools) are the daemon's own
// business and per-restart. The same split the campaign CLI
// documents.
//
//chatfuzz:deterministic package
package farm

import (
	"fmt"
	"strings"

	"chatfuzz/internal/campaign"
	"chatfuzz/internal/core"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

// JobState is a job's position in its lifecycle. Queued and Running
// are volatile (recomputed on restart from the queue log: submitted
// but not terminal means queued); Done and Failed are durable
// terminal records in the log.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobSpec is a campaign submission: exactly the scheduling-state
// surface of campaign.Config plus the arm and design lists — the
// checkpointed parameters, nothing execution-only. A JobSpec is
// serialized verbatim into the queue log, so it must stay
// JSON-stable.
type JobSpec struct {
	// Name is an optional human label; it has no semantics.
	Name string `json:",omitempty"`
	// DUTs lists the designs under test (rocket, boom); shards
	// alternate designs round-robin as in `fuzz-bench campaign -dut`.
	// Default: rocket.
	DUTs []string `json:",omitempty"`
	// Arms lists the generator arms to schedule: thehuzz, randinst,
	// randfuzz, chatfuzz, chatfuzz-learn. The LLM arms train the tiny
	// deterministic test-scale pipeline at job start (and again at
	// resume — training is a pure function of its seed, so the rebuilt
	// weights are identical). Default: thehuzz,randinst,randfuzz.
	Arms []string `json:",omitempty"`
	// Tests is the fleet's total test budget (default 2000).
	Tests int
	// Shards, BatchSize, RoundBatches, Seed, Body mirror the campaign
	// flags of the same names.
	Shards       int   `json:",omitempty"`
	BatchSize    int   `json:",omitempty"`
	RoundBatches int   `json:",omitempty"`
	Seed         int64 `json:",omitempty"`
	Body         int   `json:",omitempty"`
	// Detect, MismatchWeight, UpdateBudget mirror campaign.Config.
	Detect         bool    `json:",omitempty"`
	MismatchWeight float64 `json:",omitempty"`
	UpdateBudget   int     `json:",omitempty"`
	// CheckpointEvery is the durable-checkpoint cadence in rounds
	// (default 1: every round barrier writes one). A crash loses at
	// most this many rounds of wall-clock work and zero bits of
	// correctness.
	CheckpointEvery int `json:",omitempty"`
}

// withDefaults fills the zero-value knobs; it is applied at submit
// time so the logged spec is explicit about what will run.
func (s JobSpec) withDefaults() JobSpec {
	if len(s.DUTs) == 0 {
		s.DUTs = []string{"rocket"}
	}
	if len(s.Arms) == 0 {
		s.Arms = []string{"thehuzz", "randinst", "randfuzz"}
	}
	if s.Tests <= 0 {
		s.Tests = 2000
	}
	if s.Shards <= 0 {
		s.Shards = 4
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 16
	}
	if s.Body <= 0 {
		s.Body = 24
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 1
	}
	return s
}

// Validate rejects specs the farm cannot run, before anything is
// logged: unknown designs or arms, duplicate arms.
func (s JobSpec) Validate() error {
	for _, d := range s.DUTs {
		if _, err := dutConstructor(d); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, a := range s.Arms {
		if !validArm(a) {
			return fmt.Errorf("farm: unknown arm %q (have thehuzz, randinst, randfuzz, chatfuzz, chatfuzz-learn)", a)
		}
		if seen[a] {
			return fmt.Errorf("farm: duplicate arm %q", a)
		}
		seen[a] = true
	}
	return nil
}

func validArm(name string) bool {
	switch name {
	case "thehuzz", "randinst", "randfuzz", "chatfuzz", "chatfuzz-learn":
		return true
	}
	return false
}

// needsPipeline reports whether any arm samples the LLM (and so needs
// a trained pipeline before the fleet can be built).
func (s JobSpec) needsPipeline() bool {
	for _, a := range s.Arms {
		if a == "chatfuzz" || a == "chatfuzz-learn" {
			return true
		}
	}
	return false
}

func dutConstructor(name string) (func() rtl.DUT, error) {
	switch strings.TrimSpace(name) {
	case "rocket":
		return func() rtl.DUT { return rocket.New() }, nil
	case "boom":
		return func() rtl.DUT { return boom.New() }, nil
	}
	return nil, fmt.Errorf("farm: unknown design %q (have rocket, boom)", name)
}

// fleetArgs turns a spec into the orchestrator's construction inputs:
// the campaign config (scheduling state only — execution details are
// the server's), the DUT constructors and the arm specs. The same
// arm specs are required for resume, which validates them against the
// checkpoint's signatures.
func (s JobSpec) fleetArgs(p *core.Pipeline) (campaign.Config, []func() rtl.DUT, []campaign.ArmSpec, error) {
	cfg := campaign.Config{
		Shards:         s.Shards,
		BatchSize:      s.BatchSize,
		RoundBatches:   s.RoundBatches,
		Seed:           s.Seed,
		Detect:         s.Detect,
		MismatchWeight: s.MismatchWeight,
		UpdateBudget:   s.UpdateBudget,
	}
	var duts []func() rtl.DUT
	for _, d := range s.DUTs {
		c, err := dutConstructor(d)
		if err != nil {
			return campaign.Config{}, nil, nil, err
		}
		duts = append(duts, c)
	}
	var arms []campaign.ArmSpec
	for _, a := range s.Arms {
		switch a {
		case "thehuzz":
			arms = append(arms, campaign.TheHuzzArm(s.Body))
		case "randinst":
			arms = append(arms, campaign.RandInstArm(s.Body))
		case "randfuzz":
			arms = append(arms, campaign.RandFuzzArm(s.Body))
		case "chatfuzz":
			if p == nil {
				return campaign.Config{}, nil, nil, fmt.Errorf("farm: arm %q needs a trained pipeline", a)
			}
			arms = append(arms, campaign.LLMArm(p))
		case "chatfuzz-learn":
			if p == nil {
				return campaign.Config{}, nil, nil, fmt.Errorf("farm: arm %q needs a trained pipeline", a)
			}
			arms = append(arms, campaign.LearningLLMArm(p))
		default:
			return campaign.Config{}, nil, nil, fmt.Errorf("farm: unknown arm %q", a)
		}
	}
	return cfg, duts, arms, nil
}

// RoundReport is one barrier's fleet state, streamed to watchers and
// rebuilt from the checkpointed trajectory on recovery. Round is
// 1-based (round N is the state after N completed rounds).
type RoundReport struct {
	Round    int
	Tests    int
	Hours    float64
	Coverage float64
}

// JobSummary is a finished job's headline numbers, recorded durably
// in the queue log's done record.
type JobSummary struct {
	Rounds   int
	Tests    int
	Hours    float64
	Coverage float64
}

// JobStatus is the API's job view.
type JobStatus struct {
	ID    string
	State JobState
	Spec  JobSpec
	// Resumes counts how many times the job was recovered from a
	// durable checkpoint after a daemon restart (0 for a job that ran
	// uninterrupted — the trajectories are bit-identical either way;
	// this is bookkeeping, not a semantic difference).
	Resumes int
	// Round/Tests/Coverage are the latest barrier's numbers while the
	// job runs (and the final ones once it is terminal).
	Round    int
	Tests    int
	Coverage float64
	// Error is set for failed jobs.
	Error string `json:",omitempty"`
	// Summary is set for done jobs.
	Summary *JobSummary `json:",omitempty"`
}
