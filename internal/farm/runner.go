package farm

import (
	"fmt"
	"os"

	"chatfuzz/internal/campaign"
	"chatfuzz/internal/core"
)

// runJob executes one job to completion (or until the server stops):
// build or resume the fleet, run rounds with a durable atomic
// checkpoint every CheckpointEvery barriers, publish each barrier's
// numbers to watchers, and close the job durably in the queue log.
//
// Determinism contract: everything here that shapes the trajectory is
// either in the job spec (logged) or in the checkpoint (durable), so
// a job's completed run is bit-identical no matter how many times the
// daemon died and resumed it in between.
func (s *Server) runJob(id string) {
	st, _ := s.Job(id)
	spec := st.Spec

	var p *core.Pipeline
	if spec.needsPipeline() {
		dutOf, err := dutConstructor(spec.DUTs[0])
		if err != nil {
			s.finishJob(id, nil, err)
			return
		}
		// The tiny test-scale pipeline: training is a pure function of
		// its config seed, so a resume that retrains gets bit-identical
		// weights (the same requirement `fuzz-bench campaign -resume
		// -llm` already carries). The default paper-scale pipeline
		// trains for minutes and has no place inside a daemon worker.
		p = core.NewPipeline(core.TestPipelineConfig())
		p.Run(dutOf())
	}
	cfg, duts, arms, err := spec.fleetArgs(p)
	if err != nil {
		s.finishJob(id, nil, err)
		return
	}

	ckpt := s.checkpointPath(id)
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		s.finishJob(id, nil, fmt.Errorf("farm: job dir: %w", err))
		return
	}

	var o *campaign.Orchestrator
	if _, statErr := os.Stat(ckpt); statErr == nil {
		// Recovery: the checkpoint is atomic, so if the file exists it
		// is a complete generation. ResumeMixedFile validates the spec
		// against it (arm signatures, designs, coverage spaces).
		o, err = campaign.ResumeMixedFile(ckpt, duts, arms...)
		if err != nil {
			s.finishJob(id, nil, fmt.Errorf("farm: resume %s: %w", id, err))
			return
		}
		s.publishRecovered(id, o.Trajectory())
	} else {
		o, err = campaign.NewMixed(cfg, duts, arms...)
		if err != nil {
			s.finishJob(id, nil, err)
			return
		}
	}
	defer o.Close()

	for o.Tests() < spec.Tests {
		if s.stopRequested() {
			if s.isKilled() {
				// Crash simulation: abandon mid-flight. The last durable
				// checkpoint and the WAL are exactly what a kill -9
				// leaves; recovery must work from those alone.
				return
			}
			// Graceful park: make the current barrier durable and hand
			// the job back to the queue for the next daemon.
			if err := o.CheckpointFile(ckpt); err != nil {
				s.finishJob(id, nil, fmt.Errorf("farm: park checkpoint: %w", err))
				return
			}
			s.parkJob(id)
			return
		}
		if err := o.RunRound(); err != nil {
			s.finishJob(id, nil, err)
			return
		}
		s.publishRound(id, o)
		if o.Rounds()%spec.CheckpointEvery == 0 {
			if err := o.CheckpointFile(ckpt); err != nil {
				s.finishJob(id, nil, fmt.Errorf("farm: checkpoint: %w", err))
				return
			}
		}
	}
	// The final checkpoint is the job's durable artifact (the
	// trajectory endpoint reads it after restarts, and the e2e test
	// byte-compares it against an uninterrupted run's).
	if err := o.CheckpointFile(ckpt); err != nil {
		s.finishJob(id, nil, fmt.Errorf("farm: final checkpoint: %w", err))
		return
	}
	s.finishJob(id, &JobSummary{
		Rounds:   o.Rounds(),
		Tests:    o.Tests(),
		Hours:    o.Hours(),
		Coverage: o.Coverage(),
	}, nil)
}

// publishRound appends the just-committed barrier's report and wakes
// watchers.
func (s *Server) publishRound(id string, o *campaign.Orchestrator) {
	rep := RoundReport{Round: o.Rounds(), Tests: o.Tests(), Hours: o.Hours(), Coverage: o.Coverage()}
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	j.rounds = append(j.rounds, rep)
	j.status.Round = rep.Round
	j.status.Tests = rep.Tests
	j.status.Coverage = rep.Coverage
	if g := s.cfg.Metrics; g != nil {
		g.Counter("farm/rounds").Add(1)
	}
	s.cond.Broadcast()
}

// publishRecovered rebuilds the report history of a resumed job from
// its checkpointed merged trajectory, so a watcher reconnecting after
// a daemon restart replays the full history — the stream is
// continuous across crashes because the trajectory is.
func (s *Server) publishRecovered(id string, traj []core.ProgressPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	j.rounds = j.rounds[:0]
	for i, pt := range traj {
		j.rounds = append(j.rounds, RoundReport{Round: i + 1, Tests: pt.Tests, Hours: pt.Hours, Coverage: pt.Coverage})
	}
	if n := len(j.rounds); n > 0 {
		j.status.Round = n
		j.status.Tests = j.rounds[n-1].Tests
		j.status.Coverage = j.rounds[n-1].Coverage
	}
	s.cond.Broadcast()
}
