package farm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a farm daemon's HTTP API.
type Client struct {
	// Base is the daemon's base URL (http://host:port).
	Base string
	// HTTP is the transport (default http.DefaultClient). Watch
	// streams long-lived responses, so any custom client must not set
	// an overall request timeout.
	HTTP *http.Client
}

// NewClient builds a client for addr, which may be a bare host:port
// or a full http:// URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (unless
// out is nil). Non-2xx responses surface the server's error text.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("farm: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a job spec; the returned status carries the assigned
// ID. The job is durably queued when Submit returns.
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do("POST", "/api/v1/jobs", spec, &st)
	return st, err
}

// Jobs lists every job, in submission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.do("GET", "/api/v1/jobs", nil, &out)
	return out, err
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do("GET", "/api/v1/jobs/"+id, nil, &st)
	return st, err
}

// Trajectory fetches a job's full round-report history (served from
// memory while the daemon runs, from the durable checkpoint after a
// restart).
func (c *Client) Trajectory(id string) ([]RoundReport, error) {
	var out []RoundReport
	err := c.do("GET", "/api/v1/jobs/"+id+"/trajectory", nil, &out)
	return out, err
}

// Checkpoint fetches a job's durable checkpoint bytes.
func (c *Client) Checkpoint(id string) ([]byte, error) {
	resp, err := c.http().Get(c.Base + "/api/v1/jobs/" + id + "/checkpoint")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("farm: checkpoint %s: %s: %s", id, resp.Status, strings.TrimSpace(string(msg)))
	}
	return io.ReadAll(resp.Body)
}

// Watch streams a job's round reports from index `from` (0 replays
// the whole history), invoking fn per report, until the job reaches a
// terminal state; it then returns the final status. fn returning an
// error aborts the watch with that error.
func (c *Client) Watch(id string, from int, fn func(RoundReport) error) (JobStatus, error) {
	resp, err := c.http().Get(fmt.Sprintf("%s/api/v1/jobs/%s/rounds?from=%d", c.Base, id, from))
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return JobStatus{}, fmt.Errorf("farm: watch %s: %s: %s", id, resp.Status, strings.TrimSpace(string(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rep RoundReport
		if err := json.Unmarshal(line, &rep); err != nil {
			return JobStatus{}, fmt.Errorf("farm: watch %s: bad report line: %w", id, err)
		}
		if fn != nil {
			if err := fn(rep); err != nil {
				return JobStatus{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, err
	}
	return c.Job(id)
}
