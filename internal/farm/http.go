package farm

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	"chatfuzz/internal/telemetry"
)

// The HTTP/JSON API, one resource: jobs.
//
//	POST /api/v1/jobs                   submit a JobSpec  -> JobStatus
//	GET  /api/v1/jobs                   list              -> []JobStatus
//	GET  /api/v1/jobs/{id}              status            -> JobStatus
//	GET  /api/v1/jobs/{id}/rounds?from=N  stream RoundReports as JSONL
//	                                    until the job is terminal
//	GET  /api/v1/jobs/{id}/trajectory   full history      -> []RoundReport
//	GET  /api/v1/jobs/{id}/checkpoint   the durable checkpoint bytes
//	GET  /healthz                       liveness
//
// With Config.Metrics set, the telemetry endpoint of the campaign CLI
// is mounted too: /metrics (JSON snapshot), /debug/vars, /debug/pprof.

func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/rounds", s.handleRounds)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trajectory", s.handleTrajectory)
	mux.HandleFunc("GET /api/v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Metrics != nil {
		t := telemetry.Handler(s.cfg.Metrics)
		mux.Handle("/metrics", t)
		mux.Handle("/debug/", t)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Best-effort: an encode error here is the client connection's.
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// handleRounds streams round reports as JSON Lines from index `from`
// (default 0), flushing each line, until the job reaches a terminal
// state — the watch feed. A client reconnecting after a daemon
// restart passes the index it last saw; history before it was rebuilt
// from the checkpoint, so the stream is continuous across crashes.
func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &from); err != nil || from < 0 {
			http.Error(w, "bad from index", http.StatusBadRequest)
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Wake the cond-waiters below when the client goes away, so the
	// handler can notice ctx.Done and return instead of blocking on a
	// quiet job forever.
	stopWake := context.AfterFunc(r.Context(), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stopWake()

	for {
		reps, terminal, ok := s.waitRounds(r.Context(), id, from)
		if !ok {
			return
		}
		for _, rep := range reps {
			if err := enc.Encode(rep); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		from += len(reps)
		if terminal {
			return
		}
	}
}

// waitRounds blocks until the job has reports past `from`, is
// terminal, the server stops, or the client disconnects. ok is false
// when the caller should give up (disconnect or server stop).
func (s *Server) waitRounds(ctx context.Context, id string, from int) (reps []RoundReport, terminal, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		j, okj := s.jobs[id]
		if !okj {
			return nil, false, false
		}
		if from > len(j.rounds) {
			from = len(j.rounds)
		}
		terminal = j.status.State == JobDone || j.status.State == JobFailed
		if len(j.rounds) > from || terminal {
			return append([]RoundReport(nil), j.rounds[from:]...), terminal, true
		}
		if s.stopping || ctx.Err() != nil {
			return nil, false, false
		}
		s.cond.Wait()
	}
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	reps, ok := s.Rounds(id, 0)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	// After a restart a terminal job's in-memory history is empty; the
	// durable checkpoint carries the full merged trajectory, so serve
	// from there.
	if len(reps) == 0 {
		if info, err := s.trajectoryFromCheckpoint(id); err == nil {
			reps = info
		}
	}
	if reps == nil {
		reps = []RoundReport{}
	}
	writeJSON(w, reps)
}

// trajectoryFromCheckpoint decodes a job's durable checkpoint into
// round reports (the checkpoint's Merged trajectory is the same
// series publishRound streams).
func (s *Server) trajectoryFromCheckpoint(id string) ([]RoundReport, error) {
	f, err := os.Open(s.checkpointPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cf struct {
		Merged []RoundReport
	}
	if err := json.NewDecoder(f).Decode(&cf); err != nil {
		return nil, err
	}
	for i := range cf.Merged {
		cf.Merged[i].Round = i + 1
	}
	return cf.Merged, nil
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	b, err := os.ReadFile(s.checkpointPath(id))
	if err != nil {
		http.Error(w, "no checkpoint yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}
