package farm

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"chatfuzz/internal/campaign"
	"chatfuzz/internal/core"
)

// testSpec is small enough for CI but long enough (15 rounds at the
// default CheckpointEvery=1) that a kill reliably lands mid-campaign.
func testSpec(tests int) JobSpec {
	return JobSpec{
		Name:      "t",
		Tests:     tests,
		Shards:    2,
		BatchSize: 8,
		Seed:      11,
		Body:      8,
	}
}

func waitUntil(t *testing.T, desc string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	waitUntil(t, id+" terminal", func() bool {
		st, ok := s.Job(id)
		return ok && (st.State == JobDone || st.State == JobFailed)
	})
	st, _ := s.Job(id)
	if st.State != JobDone {
		t.Fatalf("%s finished %s: %s", id, st.State, st.Error)
	}
	return st
}

// directRun executes a spec straight on the orchestrator — no farm —
// and returns the trajectory (as round reports) plus the final
// checkpoint bytes. This is the reference every farm path must match
// bit for bit.
func directRun(t *testing.T, spec JobSpec) ([]RoundReport, []byte) {
	t.Helper()
	spec = spec.withDefaults()
	var p *core.Pipeline
	if spec.needsPipeline() {
		dutOf, err := dutConstructor(spec.DUTs[0])
		if err != nil {
			t.Fatalf("dutConstructor: %v", err)
		}
		p = core.NewPipeline(core.TestPipelineConfig())
		p.Run(dutOf())
	}
	cfg, duts, arms, err := spec.fleetArgs(p)
	if err != nil {
		t.Fatalf("fleetArgs: %v", err)
	}
	o, err := campaign.NewMixed(cfg, duts, arms...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	defer o.Close()
	for o.Tests() < spec.Tests {
		if err := o.RunRound(); err != nil {
			t.Fatalf("RunRound: %v", err)
		}
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := o.CheckpointFile(path); err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var reps []RoundReport
	for i, pt := range o.Trajectory() {
		reps = append(reps, RoundReport{Round: i + 1, Tests: pt.Tests, Hours: pt.Hours, Coverage: pt.Coverage})
	}
	return reps, b
}

func readCheckpoint(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(s.checkpointPath(id))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	return b
}

// TestFarmJobMatchesDirectRun: a job run by the daemon produces the
// same trajectory and checkpoint bytes as the same spec run directly
// on the orchestrator — the farm adds durability, not divergence.
func TestFarmJobMatchesDirectRun(t *testing.T) {
	spec := testSpec(96)
	wantReps, wantCkpt := directRun(t, spec)

	s, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Stop()
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitDone(t, s, st.ID)

	gotReps, _ := s.Rounds(st.ID, 0)
	if !reflect.DeepEqual(gotReps, wantReps) {
		t.Errorf("farm trajectory diverged from direct run:\n got %+v\nwant %+v", gotReps, wantReps)
	}
	if got := readCheckpoint(t, s, st.ID); !bytes.Equal(got, wantCkpt) {
		t.Errorf("farm checkpoint bytes differ from direct run (%d vs %d bytes)", len(got), len(wantCkpt))
	}
	if final.Summary == nil || final.Summary.Tests != wantReps[len(wantReps)-1].Tests {
		t.Errorf("summary %+v does not match trajectory tail %+v", final.Summary, wantReps[len(wantReps)-1])
	}
	if final.Resumes != 0 {
		t.Errorf("uninterrupted job reports %d resumes", final.Resumes)
	}
}

// killAndReopen crashes the farm once the job has passed at least two
// round barriers, verifies the on-disk state a crash leaves (readable
// checkpoint, replayable queue log), reopens the same data dir and
// returns the new server.
func killAndReopen(t *testing.T, s *Server, cfg Config, id string) *Server {
	t.Helper()
	waitUntil(t, id+" past round 2", func() bool {
		reps, _ := s.Rounds(id, 0)
		return len(reps) >= 2
	})
	s.Kill()

	// No crash sequence may leave an unreadable checkpoint: whatever
	// instant the kill hit, the file must hold a complete generation.
	info, err := campaign.ReadCheckpointInfo(s.checkpointPath(id))
	if err != nil {
		t.Fatalf("checkpoint unreadable after kill: %v", err)
	}
	if info.Round < 1 {
		t.Fatalf("checkpoint after kill has round %d", info.Round)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("re-Open after kill: %v", err)
	}
	st, ok := s2.Job(id)
	if !ok {
		t.Fatalf("job %s lost across the crash", id)
	}
	if st.State == JobDone || st.State == JobFailed {
		t.Fatalf("killed job replayed as terminal: %s", st.State)
	}
	if st.Resumes != 1 {
		t.Errorf("recovered job reports %d resumes, want 1", st.Resumes)
	}
	return s2
}

// TestFarmKillRecoverBitIdentical is the headline recovery property:
// kill the daemon mid-campaign, reopen the data dir, and the resumed
// job completes with a trajectory and final checkpoint bit-identical
// to a farm that never died.
func TestFarmKillRecoverBitIdentical(t *testing.T) {
	spec := testSpec(240)
	wantReps, wantCkpt := directRun(t, spec)

	cfg := Config{Dir: t.TempDir()}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s2 := killAndReopen(t, s, cfg, st.ID)
	defer s2.Stop()
	waitDone(t, s2, st.ID)

	gotReps, _ := s2.Rounds(st.ID, 0)
	if !reflect.DeepEqual(gotReps, wantReps) {
		t.Errorf("recovered trajectory diverged:\n got %+v\nwant %+v", gotReps, wantReps)
	}
	if got := readCheckpoint(t, s2, st.ID); !bytes.Equal(got, wantCkpt) {
		t.Errorf("recovered checkpoint bytes differ from uninterrupted run")
	}
}

// TestFarmKillRecoverLLMJob runs the same crash drill with a learning
// LLM arm: resume retrains the deterministic test pipeline and carries
// the checkpoint's published+staged learner weights, so even the
// feedback loop replays bit-identically.
func TestFarmKillRecoverLLMJob(t *testing.T) {
	spec := testSpec(160)
	spec.Arms = []string{"thehuzz", "chatfuzz-learn"}
	wantReps, wantCkpt := directRun(t, spec)

	cfg := Config{Dir: t.TempDir()}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s2 := killAndReopen(t, s, cfg, st.ID)
	defer s2.Stop()
	waitDone(t, s2, st.ID)

	gotReps, _ := s2.Rounds(st.ID, 0)
	if !reflect.DeepEqual(gotReps, wantReps) {
		t.Errorf("LLM job recovered trajectory diverged:\n got %+v\nwant %+v", gotReps, wantReps)
	}
	if got := readCheckpoint(t, s2, st.ID); !bytes.Equal(got, wantCkpt) {
		t.Errorf("LLM job recovered checkpoint bytes differ from uninterrupted run")
	}
}

// TestFarmGracefulStopParksAndResumes: Stop() checkpoints and parks
// running jobs; a reopened farm finishes them bit-identically.
func TestFarmGracefulStopParksAndResumes(t *testing.T) {
	spec := testSpec(240)
	wantReps, wantCkpt := directRun(t, spec)

	cfg := Config{Dir: t.TempDir()}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitUntil(t, "first round", func() bool {
		reps, _ := s.Rounds(st.ID, 0)
		return len(reps) >= 1
	})
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	defer s2.Stop()
	waitDone(t, s2, st.ID)
	gotReps, _ := s2.Rounds(st.ID, 0)
	if !reflect.DeepEqual(gotReps, wantReps) {
		t.Errorf("parked+resumed trajectory diverged:\n got %+v\nwant %+v", gotReps, wantReps)
	}
	if got := readCheckpoint(t, s2, st.ID); !bytes.Equal(got, wantCkpt) {
		t.Errorf("parked+resumed checkpoint bytes differ from uninterrupted run")
	}
}

func TestFarmSubmitValidation(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Stop()
	for _, spec := range []JobSpec{
		{Arms: []string{"nonsense"}},
		{Arms: []string{"thehuzz", "thehuzz"}},
		{DUTs: []string{"cray-1"}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit accepted invalid spec %+v", spec)
		}
	}
	if got := len(s.Jobs()); got != 0 {
		t.Fatalf("invalid submissions left %d jobs behind", got)
	}
}

// TestFarmHTTPRoundTrip drives the whole client surface against a real
// listener: submit, watch the round stream to completion, then check
// status, list, trajectory and checkpoint agree with each other.
func TestFarmHTTPRoundTrip(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Stop()
	c := NewClient(s.Addr())

	if _, err := c.Submit(JobSpec{Arms: []string{"nonsense"}}); err == nil {
		t.Fatal("server accepted an invalid spec")
	}

	spec := testSpec(48)
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.State != JobQueued {
		t.Fatalf("submit returned %+v", st)
	}

	var seen []RoundReport
	final, err := c.Watch(st.ID, 0, func(rep RoundReport) error {
		seen = append(seen, rep)
		return nil
	})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if final.State != JobDone {
		t.Fatalf("watched job ended %s: %s", final.State, final.Error)
	}
	if len(seen) == 0 || seen[len(seen)-1].Tests < spec.Tests {
		t.Fatalf("watch stream incomplete: %+v", seen)
	}
	for i, rep := range seen {
		if rep.Round != i+1 {
			t.Fatalf("watch stream out of order at %d: %+v", i, rep)
		}
	}

	traj, err := c.Trajectory(st.ID)
	if err != nil {
		t.Fatalf("Trajectory: %v", err)
	}
	if !reflect.DeepEqual(traj, seen) {
		t.Errorf("trajectory %+v != watched stream %+v", traj, seen)
	}

	jobs, err := c.Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("Jobs = %+v", jobs)
	}

	ckpt, err := c.Checkpoint(st.ID)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if !bytes.Equal(ckpt, readCheckpoint(t, s, st.ID)) {
		t.Error("served checkpoint differs from the on-disk file")
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(ckpt, &decoded); err != nil {
		t.Fatalf("served checkpoint is not JSON: %v", err)
	}

	if _, err := c.Job("job-999"); err == nil {
		t.Error("status of unknown job succeeded")
	}
}

// TestFarmTrajectoryServedFromCheckpointAfterRestart: a restarted
// daemon has no in-memory history for already-finished jobs; the
// trajectory endpoint falls back to the durable checkpoint.
func TestFarmTrajectoryServedFromCheckpointAfterRestart(t *testing.T) {
	cfg := Config{Dir: t.TempDir()}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := s.Submit(testSpec(48))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, s, st.ID)
	want, _ := s.Rounds(st.ID, 0)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	cfg.Addr = "127.0.0.1:0"
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	defer s2.Stop()
	st2, ok := s2.Job(st.ID)
	if !ok || st2.State != JobDone {
		t.Fatalf("done job replayed as %+v", st2)
	}
	traj, err := NewClient(s2.Addr()).Trajectory(st.ID)
	if err != nil {
		t.Fatalf("Trajectory: %v", err)
	}
	if !reflect.DeepEqual(traj, want) {
		t.Errorf("checkpoint-served trajectory %+v != live history %+v", traj, want)
	}
}
