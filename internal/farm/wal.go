package farm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The queue log is the farm's write-ahead journal: every job
// lifecycle event (submit, done, fail) is framed, appended and
// fsynced before the server acknowledges it, and startup replays the
// log to rebuild the job table — the goPhat queuedisk recipe. Frame
// layout, little-endian:
//
//	[4B payload length][4B CRC-32 (IEEE) of payload][payload JSON]
//
// Because records are fsynced append-only, corruption can only live
// at the tail (a record torn by a crash mid-append). Replay therefore
// stops at the first frame that fails its length or checksum, and
// truncates the file back to the last good frame so the next append
// starts on a clean boundary. Everything before the torn tail is
// acknowledged state and is never dropped.

// walRecordMax bounds a single frame's payload. Real records are a
// few hundred bytes of job-spec JSON; the cap keeps a corrupt length
// field from asking replay to allocate gigabytes.
const walRecordMax = 16 << 20

// wal is an append-only fsynced record log.
type wal struct {
	f    *os.File
	path string
}

// openWAL opens (creating if absent) the log at path, replays every
// intact record, truncates any torn tail, and returns the log
// positioned for appending.
func openWAL(path string) (*wal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("farm: open queue log: %w", err)
	}
	recs, good, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A torn tail is expected after a crash; cut back to the last
	// acknowledged frame so appends resume on a clean boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("farm: truncate torn queue-log tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("farm: seek queue log: %w", err)
	}
	return &wal{f: f, path: path}, recs, nil
}

// replayWAL scans frames from the start of f, returning the intact
// payloads and the offset just past the last good frame. Torn or
// corrupt tails end the scan without error; only I/O failures on the
// underlying file are fatal.
func replayWAL(f *os.File) (recs [][]byte, good int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("farm: seek queue log: %w", err)
	}
	r := struct{ io.Reader }{f} // hide ReadByte etc.; plain stream reads
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF or a header torn mid-write: the tail.
			return recs, good, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > walRecordMax {
			// A corrupt length field; treat as torn tail.
			return recs, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, good, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil
		}
		recs = append(recs, payload)
		good += int64(8 + int64(n))
	}
}

// Append frames payload, writes it and fsyncs. The record is durable
// when Append returns; on error the caller must treat the record as
// unacknowledged (replay will discard any torn bytes).
func (w *wal) Append(payload []byte) error {
	if len(payload) > walRecordMax {
		return fmt.Errorf("farm: queue-log record of %d bytes exceeds the %d cap", len(payload), walRecordMax)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("farm: append queue log: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("farm: sync queue log: %w", err)
	}
	return nil
}

// Close releases the log file, propagating the close error (a delayed
// write failure surfaces here on some filesystems).
func (w *wal) Close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("farm: close queue log: %w", err)
	}
	return nil
}
