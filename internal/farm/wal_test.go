package farm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openForTest(t *testing.T, path string) (*wal, [][]byte) {
	t.Helper()
	w, recs, err := openWAL(path)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	return w, recs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.log")
	w, recs := openForTest(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []string{"one", "two", `{"op":"submit","id":"job-1"}`}
	for _, r := range want {
		if err := w.Append([]byte(r)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2, recs := openForTest(t, path)
	defer w2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if string(r) != want[i] {
			t.Errorf("record %d = %q, want %q", i, r, want[i])
		}
	}
}

// TestWALTornTailTruncated: a crash mid-append leaves a torn final
// frame; replay must recover every acknowledged record, drop the torn
// tail, and leave the log appendable.
func TestWALTornTailTruncated(t *testing.T) {
	for _, cut := range []struct {
		name  string
		bytes int // bytes to keep of the final frame (8 hdr + 5 payload)
	}{
		{"mid-header", 3},
		{"header-only", 8},
		{"mid-payload", 10},
	} {
		t.Run(cut.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "queue.log")
			w, _ := openForTest(t, path)
			if err := w.Append([]byte("good1")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := w.Append([]byte("good2")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := w.Append([]byte("torn!")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatalf("Stat: %v", err)
			}
			if err := os.Truncate(path, st.Size()-13+int64(cut.bytes)); err != nil {
				t.Fatalf("Truncate: %v", err)
			}

			w2, recs := openForTest(t, path)
			if len(recs) != 2 || string(recs[0]) != "good1" || string(recs[1]) != "good2" {
				t.Fatalf("replay after torn tail = %q, want [good1 good2]", recs)
			}
			// The log must be clean for appending again.
			if err := w2.Append([]byte("after-recovery")); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if err := w2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			w3, recs := openForTest(t, path)
			defer w3.Close()
			if len(recs) != 3 || string(recs[2]) != "after-recovery" {
				t.Fatalf("replay after re-append = %q", recs)
			}
		})
	}
}

// TestWALCorruptChecksumEndsReplay: a flipped payload bit fails the
// CRC and ends replay at the previous record.
func TestWALCorruptChecksumEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.log")
	w, _ := openForTest(t, path)
	if err := w.Append([]byte("good")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append([]byte("rotten")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	w2, recs := openForTest(t, path)
	defer w2.Close()
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("replay past a corrupt record: %q", recs)
	}
}

// TestWALInsaneLengthEndsReplay: a corrupt length field must not make
// replay allocate gigabytes; it ends the scan like any torn tail.
func TestWALInsaneLengthEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.log")
	w, _ := openForTest(t, path)
	if err := w.Append([]byte("good")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatalf("write corrupt header: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	w2, recs := openForTest(t, path)
	defer w2.Close()
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("replay with insane length = %q", recs)
	}
}

func TestWALRejectsOversizeAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.log")
	w, _ := openForTest(t, path)
	defer w.Close()
	if err := w.Append(make([]byte, walRecordMax+1)); err == nil {
		t.Fatal("Append accepted a record over the frame cap")
	}
}

func TestWALManyRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.log")
	w, _ := openForTest(t, path)
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2, recs := openForTest(t, path)
	defer w2.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("record-%03d", i); string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}
