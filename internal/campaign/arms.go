package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/baseline/randinst"
	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/core"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/fleetlearn"
	"chatfuzz/internal/prog"
)

// arm is one schedulable generator: a core.Generator the orchestrator
// reseeds deterministically before every round. Because the seed is a
// pure function of (campaign seed, shard, round), no rng state has to
// survive a checkpoint for resumed runs to replay exactly.
type arm interface {
	core.Generator
	Reseed(seed int64)
}

// statefulArm additionally carries checkpoint state beyond the rng
// (e.g. TheHuzz's seed pool).
type statefulArm interface {
	arm
	armState() (json.RawMessage, error)
	armRestore(json.RawMessage) error
}

// ArmSpec names a generator arm and builds per-shard instances of it.
// Every shard gets its own instance (generators are stateful and not
// goroutine-safe); the bandit's statistics for the arm are global.
type ArmSpec struct {
	// Name identifies the arm in reports.
	Name string

	// sig fingerprints the arm's parameters (body length, model
	// shape). Checkpoints record it, and Resume refuses specs whose
	// signature differs — a resumed fleet with, say, a different body
	// length would silently diverge from the uninterrupted run.
	sig string

	build func(binsTotal int) arm

	// newLearner, when non-nil, replaces build: the arm learns online,
	// backed by a per-shard fleetlearn.Replica. The orchestrator wires
	// every shard's replica into one fleetlearn.Fleet whose weights are
	// averaged and redistributed at each round barrier, and checkpoints
	// the merged weights (checkpoint v3).
	newLearner func(binsTotal int) (arm, *fleetlearn.Replica)
}

// TheHuzzArm schedules the TheHuzz mutation baseline as an arm. Its
// seed pool is per shard and survives checkpoints.
func TheHuzzArm(bodyInstrs int) ArmSpec {
	return ArmSpec{
		Name:  "thehuzz",
		sig:   fmt.Sprintf("thehuzz/body=%d", bodyInstrs),
		build: func(int) arm { return &huzzArm{thehuzz.New(0, bodyInstrs)} },
	}
}

// RandInstArm schedules the ISA-aware random-instruction generator
// (the seed generator both baselines share) as a stateless arm.
func RandInstArm(bodyInstrs int) ArmSpec {
	return ArmSpec{
		Name: "randinst",
		sig:  fmt.Sprintf("randinst/body=%d", bodyInstrs),
		build: func(int) arm {
			return &randInstArm{body: bodyInstrs, rng: rand.New(rand.NewSource(0))}
		},
	}
}

// RandFuzzArm schedules the raw random-word generator (the ablation
// floor: mostly-illegal words that stress the trap paths).
func RandFuzzArm(bodyInstrs int) ArmSpec {
	return ArmSpec{
		Name: "randfuzz",
		sig:  fmt.Sprintf("randfuzz/body=%d", bodyInstrs),
		build: func(int) arm {
			a := &randFuzzArm{body: bodyInstrs}
			a.Reseed(0)
			return a
		},
	}
}

// LLMArm schedules the trained ChatFuzz model as a *frozen* arm: the
// pipeline's model is shared read-only across every shard — generation
// allocates its own sampler per call — and no PPO updates run during
// the campaign. For the paper's full feedback loop under sharding, use
// LearningLLMArm, which gives each shard a model replica and keeps
// learning through deterministic barrier averaging; the frozen arm
// remains the cheaper choice (and the baseline the learning arm is
// measured against in BenchmarkOnlineLearning).
func LLMArm(p *core.Pipeline) ArmSpec {
	m := p.Model.Cfg
	return ArmSpec{
		Name: "chatfuzz",
		sig: fmt.Sprintf("chatfuzz/ctx=%d,dim=%d,heads=%d,layers=%d,vocab=%d,body=%d",
			m.Ctx, m.Dim, m.Heads, m.Layers, m.Vocab, p.Cfg.BodyInstrs),
		build: func(binsTotal int) arm {
			a := &llmArm{p: p, bins: binsTotal}
			a.Reseed(0)
			return a
		},
	}
}

// LearningLLMArm schedules the ChatFuzz model as an online-learning
// arm — the paper's "model keeps learning from hardware feedback"
// under sharding. Each shard owns a deep-copied replica of the trained
// model; the rollouts behind its generated programs are rewarded with
// the shard's incremental (fleet-new, when sync is on) coverage and
// stepped into the replica by PPO, and at every round barrier the
// orchestrator averages the stepped replicas' weights deterministically
// and redistributes the merge to the whole fleet (internal/fleetlearn).
//
// Checkpoints (v3) carry the merged weights, so resumed campaigns
// replay bit-identically; the KL reference model is not checkpointed —
// Resume must be given the same trained pipeline the original run used
// (the same requirement LLMArm already has for its sampling weights).
func LearningLLMArm(p *core.Pipeline) ArmSpec {
	m := p.Model.Cfg
	return ArmSpec{
		Name: "chatfuzz-learn",
		sig: fmt.Sprintf("chatfuzz-learn/ctx=%d,dim=%d,heads=%d,layers=%d,vocab=%d,body=%d",
			m.Ctx, m.Dim, m.Heads, m.Layers, m.Vocab, p.Cfg.BodyInstrs),
		newLearner: func(binsTotal int) (arm, *fleetlearn.Replica) {
			rep := fleetlearn.NewReplica(p.Model, p.OnlinePPOConfig())
			a := &learnArm{p: p, rep: rep, bins: binsTotal}
			a.Reseed(0)
			return a, rep
		},
	}
}

// recorded wraps a shard's arm to capture, per round, the programs
// that achieved incremental coverage (fleet-new coverage when global
// sync is on). The orchestrator drains them into the shared mutation
// pool at the barrier — EnFuzz-style seed synchronization, so an LLM
// or random discovery becomes mutation fodder for every shard's
// TheHuzz arm. capture stays false when no arm consumes the pool
// (no TheHuzz arm, or sync disabled) and for the TheHuzz arm itself,
// which admits its own discoveries; otherwise found would grow
// unboundedly with nothing ever draining it.
//
// Generated batches queue in a FIFO until their scores arrive: under
// the sub-round pipeline (core.Options.Inflight > 1) generation runs
// ahead of commit, so pairing Feedback with "the most recent batch"
// would attribute scores to the wrong programs. Feedback always
// consumes the oldest pending batch — the order commits drain in.
type recorded struct {
	arm
	capture bool
	pending [][]prog.Program
	found   []thehuzz.PoolEntry
}

func (r *recorded) GenerateBatch(n int) []prog.Program {
	batch := r.arm.GenerateBatch(n)
	r.pending = append(r.pending, batch)
	return batch
}

// FeedbackFree forwards the wrapped arm's pipelining capability: the
// capture path only records scored programs for the barrier drain, it
// never steers generation mid-round, so the wrapper is exactly as
// feedback-free as the arm it wraps.
func (r *recorded) FeedbackFree() bool {
	ff, ok := r.arm.(core.FeedbackFree)
	return ok && ff.FeedbackFree()
}

func (r *recorded) Feedback(scores []cov.Scores) {
	var batch []prog.Program
	if len(r.pending) > 0 {
		batch = r.pending[0]
		copy(r.pending, r.pending[1:])
		r.pending[len(r.pending)-1] = nil
		r.pending = r.pending[:len(r.pending)-1]
	}
	if r.capture {
		for i, sc := range scores {
			if sc.Incremental > 0 && i < len(batch) {
				body := make([]uint32, len(batch[i].Body))
				copy(body, batch[i].Body)
				r.found = append(r.found, thehuzz.PoolEntry{Body: body, Score: sc.Incremental})
			}
		}
	}
	r.arm.Feedback(scores)
}

// drain returns and clears the round's coverage-advancing programs.
func (r *recorded) drain() []thehuzz.PoolEntry {
	out := r.found
	r.found = nil
	return out
}

// huzzArm adapts thehuzz.Gen, adding checkpoint marshalling.
type huzzArm struct{ *thehuzz.Gen }

func (a *huzzArm) armState() (json.RawMessage, error) {
	return json.Marshal(a.Gen.State())
}

func (a *huzzArm) armRestore(raw json.RawMessage) error {
	var st thehuzz.State
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	a.Gen.SetState(st)
	return nil
}

// randInstArm generates batches of valid random instructions with no
// feedback loop.
type randInstArm struct {
	body int
	rng  *rand.Rand
}

func (a *randInstArm) Name() string { return "randinst" }

func (a *randInstArm) GenerateBatch(n int) []prog.Program {
	out := make([]prog.Program, n)
	for i := range out {
		out[i] = prog.Program{Body: randinst.Program(a.rng, a.body)}
	}
	return out
}

func (a *randInstArm) Feedback([]cov.Scores) {}

// FeedbackFree marks the arm safe for the sub-round pipeline: its
// Feedback is a no-op, so generation never depends on scores.
func (a *randInstArm) FeedbackFree() bool { return true }

func (a *randInstArm) Reseed(seed int64) { a.rng = rand.New(rand.NewSource(seed)) }

// randFuzzArm wraps randfuzz in raw mode; reseeding rebuilds the
// stateless generator.
type randFuzzArm struct {
	body int
	gen  *randfuzz.Gen
}

func (a *randFuzzArm) Name() string { return "randfuzz" }

func (a *randFuzzArm) GenerateBatch(n int) []prog.Program { return a.gen.GenerateBatch(n) }

func (a *randFuzzArm) Feedback(s []cov.Scores) { a.gen.Feedback(s) }

// FeedbackFree delegates to the current generator (rebuilt on Reseed).
func (a *randFuzzArm) FeedbackFree() bool { return a.gen.FeedbackFree() }

func (a *randFuzzArm) Reseed(seed int64) {
	g := randfuzz.New(seed, a.body)
	g.Raw = true
	a.gen = g
}

// llmArm samples from the shared trained model; reseeding rebuilds the
// lightweight generator wrapper around the (static) weights.
type llmArm struct {
	p    *core.Pipeline
	bins int
	gen  *core.LLMGenerator
}

func (a *llmArm) Name() string { return "chatfuzz" }

func (a *llmArm) GenerateBatch(n int) []prog.Program { return a.gen.GenerateBatch(n) }

func (a *llmArm) Feedback(s []cov.Scores) { a.gen.Feedback(s) }

// FeedbackFree delegates to the current generator wrapper: the frozen
// arm has no online trainer or sink, so this reports true.
func (a *llmArm) FeedbackFree() bool { return a.gen.FeedbackFree() }

func (a *llmArm) Reseed(seed int64) {
	a.gen = core.NewLLMGenerator(a.p, a.bins, false, seed)
}

// learnArm samples from the shard's replica model and routes scored
// rollouts back into the replica's PPO trainer; reseeding rebuilds the
// generator wrapper around the (replica-owned, barrier-averaged)
// weights. The replica's weights are not part of the arm's checkpoint
// state — they live in the checkpoint's fleet-level Learn section,
// since between rounds every shard's replica holds the same merge.
type learnArm struct {
	p    *core.Pipeline
	rep  *fleetlearn.Replica
	bins int
	gen  *core.LLMGenerator
}

func (a *learnArm) Name() string { return "chatfuzz-learn" }

func (a *learnArm) GenerateBatch(n int) []prog.Program { return a.gen.GenerateBatch(n) }

func (a *learnArm) Feedback(s []cov.Scores) { a.gen.Feedback(s) }

// FeedbackFree delegates to the replica generator, which reports
// false: PPO rewards feed the next batch, so the learning arm must
// run feedback-coupled (the pipeline stays disengaged for it).
func (a *learnArm) FeedbackFree() bool { return a.gen.FeedbackFree() }

func (a *learnArm) Reseed(seed int64) {
	a.gen = core.NewReplicaGenerator(a.p, a.rep.Model, a.rep, a.bins, seed)
}
