package campaign

import "math"

// UCB1 is the orchestrator's arm scheduler (Auer et al., 2002, as
// applied to fuzzing-strategy selection by MABFuzz): each generator is
// one arm, pulls are fuzzing rounds, and the reward is normalized
// incremental coverage per virtual hour. UCB1 plays the arm maximising
// mean reward plus an exploration bonus that shrinks as an arm
// accumulates pulls, so cold generators keep getting probed while hot
// ones dominate the schedule.
//
// The scheduler is fully deterministic: ties break toward the lowest
// arm index, and the orchestrator only calls it from the single-threaded
// barrier phase of each round.
type UCB1 struct {
	// C scales the exploration bonus (the classic value is √2).
	C float64
	// Pulls counts raw selections per arm; exposed in the campaign
	// report. Scheduling itself uses the discounted masses below.
	Pulls []int
	// W is the discounted pull mass per arm.
	W []float64
	// Sums is the discounted reward mass per arm.
	Sums []float64
	// T is the discounted total pull mass.
	T float64
}

// NewUCB1 returns a bandit over n arms.
func NewUCB1(n int, c float64) *UCB1 {
	if c <= 0 {
		c = math.Sqrt2
	}
	return &UCB1{C: c, Pulls: make([]int, n), W: make([]float64, n), Sums: make([]float64, n)}
}

// minMass is the discounted pull mass below which an arm counts as
// untried again (its statistics have decayed to irrelevance).
const minMass = 1e-6

// Select picks the next arm and counts the pull immediately, so that
// several shards scheduled within one round spread across arms instead
// of piling onto the current leader before any reward lands.
func (b *UCB1) Select() int {
	best, bestV := 0, math.Inf(-1)
	for i := range b.Pulls {
		var v float64
		if b.W[i] < minMass {
			// Every arm is tried before any is repeated.
			v = math.Inf(1)
		} else {
			mean := b.Sums[i] / b.W[i]
			v = mean + b.C*math.Sqrt(math.Log(b.T+1)/b.W[i])
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	b.Pulls[best]++
	b.W[best]++
	b.T++
	return best
}

// Reward credits an earlier Select of arm i. Rewards are expected in
// [0, 1]; the orchestrator squashes coverage rates into that range.
func (b *UCB1) Reward(i int, r float64) { b.Sums[i] += r }

// Discount multiplies all masses by g in (0, 1] — discounted UCB1
// (Garivier & Moulines, 2008). Fuzzing rewards are non-stationary
// (random breadth pays early, mutation depth pays late); discounting
// lets the schedule track the current best arm instead of the
// historical average.
func (b *UCB1) Discount(g float64) {
	if g >= 1 {
		return
	}
	for i := range b.W {
		b.W[i] *= g
		b.Sums[i] *= g
	}
	b.T *= g
}

// Mean returns the (discounted) empirical mean reward of arm i.
func (b *UCB1) Mean(i int) float64 {
	if b.W[i] < minMass {
		return 0
	}
	return b.Sums[i] / b.W[i]
}
