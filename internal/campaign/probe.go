package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"chatfuzz/internal/engine"
)

// RoundProbe is one round's scheduler measurement (Config.Probe): how
// long shards idled at the aggregation barrier and how much the fleet
// pool stole, helped and migrated to keep them from idling. Probes
// are wall-clock observations only — they never influence scheduling,
// so probed and unprobed runs produce identical trajectories.
type RoundProbe struct {
	Round int
	// BarrierWait is the summed time shards spent finished-but-waiting
	// at the barrier: Σ over shards of (last finish − shard finish).
	// It is the round's wasted rig time; the fleet pool exists to
	// shrink it on skewed fleets.
	BarrierWait time.Duration
	// Spread is last finish − first finish: the skew of the round.
	Spread time.Duration
	// Steals, Helped and Migrations are the fleet pool's per-round
	// scheduling deltas (zero on the per-shard and serial paths).
	Steals     int
	Helped     int
	Migrations int
	// MigrationsByDesign counts this round's scratch migrations per
	// destination design.
	MigrationsByDesign map[string]int
}

// Probes returns the per-round scheduler measurements recorded so far
// (Config.Probe only).
func (o *Orchestrator) Probes() []RoundProbe {
	out := make([]RoundProbe, len(o.probes))
	copy(out, o.probes)
	return out
}

// PoolStats returns the fleet pool's cumulative scheduling counters,
// or false when the fleet runs on per-shard engines.
func (o *Orchestrator) PoolStats() (engine.FleetStats, bool) {
	if o.pool == nil {
		return engine.FleetStats{}, false
	}
	return o.pool.Stats(), true
}

// ProbeSummary aggregates the recorded probes.
type ProbeSummary struct {
	Rounds      int
	BarrierWait time.Duration // summed over rounds
	Spread      time.Duration // summed over rounds
	Steals      int
	Helped      int
	Migrations  int
	// MigrationsByDesign sums per-design migrations over all rounds.
	MigrationsByDesign map[string]int
}

// ProbeSummary sums the per-round probes into one report.
func (o *Orchestrator) ProbeSummary() ProbeSummary {
	s := ProbeSummary{Rounds: len(o.probes), MigrationsByDesign: make(map[string]int)}
	for _, p := range o.probes {
		s.BarrierWait += p.BarrierWait
		s.Spread += p.Spread
		s.Steals += p.Steals
		s.Helped += p.Helped
		s.Migrations += p.Migrations
		for name, n := range p.MigrationsByDesign {
			s.MigrationsByDesign[name] += n
		}
	}
	return s
}

// String renders the summary as a short report.
func (s ProbeSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "probe: %d rounds, barrier wait %v (spread %v), %d steals, %d helped, %d migrations",
		s.Rounds, s.BarrierWait.Round(time.Microsecond), s.Spread.Round(time.Microsecond),
		s.Steals, s.Helped, s.Migrations)
	if len(s.MigrationsByDesign) > 0 {
		names := make([]string, 0, len(s.MigrationsByDesign))
		for n := range s.MigrationsByDesign {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "\n  migrations to %-8s %d", n, s.MigrationsByDesign[n])
		}
	}
	return b.String()
}
