package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"chatfuzz/internal/engine"
)

// RoundProbe is one round's scheduler measurement (Config.Probe): how
// long shards idled at the aggregation barrier and how much the fleet
// pool stole, helped and migrated to keep them from idling. Probes
// are wall-clock observations only — they never influence scheduling,
// so probed and unprobed runs produce identical trajectories.
type RoundProbe struct {
	Round int
	// SimWait is the summed time shards spent finished-but-waiting for
	// the slowest shard's generation + simulation: Σ over shards of
	// (last finish − shard finish). It is the round's wasted rig time
	// — the idle skew a work-stealing pool can actually reclaim.
	SimWait time.Duration
	// LearnWait is the single-threaded time the orchestrator barrier
	// spent in the learning step (joining the previous round's
	// training and, on the synchronous path, training this round's).
	// With OffBarrier the training overlaps the next round's
	// simulation and LearnWait collapses toward the join cost. No pool
	// can steal it; it must be moved, which is what the off-barrier
	// plane does.
	LearnWait time.Duration
	// BarrierWait is SimWait + LearnWait, the round's total barrier
	// cost. Earlier probes reported only this sum, which conflated the
	// stealable sim skew with the unstealable learning pole — exactly
	// how a work-stealing pool could look like it grew the barrier.
	BarrierWait time.Duration
	// Spread is last finish − first finish: the skew of the round.
	Spread time.Duration
	// Steals, Helped and Migrations are the fleet pool's per-round
	// scheduling deltas (zero on the per-shard and serial paths).
	Steals     int
	Helped     int
	Migrations int
	// MigrationsByDesign counts this round's scratch migrations per
	// destination design. Every design the pool has ever migrated to
	// keeps its key — zero-delta rounds report an explicit 0 — so
	// consumers diffing consecutive probes see a stable key set.
	MigrationsByDesign map[string]int
	// InflightDepth is the deepest in-flight batch window any shard's
	// engine has reached so far (a cumulative high-water mark, not a
	// per-round delta; 1 means the sub-round pipeline never engaged).
	InflightDepth int
	// PipelinedBatches counts this round's batch submissions that
	// overlapped an undrained earlier batch (Config.Inflight > 1 with
	// a feedback-free arm).
	PipelinedBatches int
	// SnapHits and SnapMisses count this round's golden-model snapshot
	// -tree lookups that restored a common program prefix vs. replays
	// from the post-prologue snapshot (Detect only; zero otherwise).
	SnapHits   int
	SnapMisses int
}

// migrationDelta diffs two cumulative per-design migration counters
// into one round's delta. Every key of the current counter is kept,
// including zero deltas: cumulative counters never lose keys, so
// dropping a design on its quiet rounds (the old `d > 0` filter) made
// ProbeSummary key sets flicker between rounds.
func migrationDelta(cur, prev map[string]int) map[string]int {
	out := make(map[string]int, len(cur))
	// Map→map diff keyed identically on both sides: each entry is
	// computed independently, so iteration order cannot reach the
	// result. Consumers render via the sorted-name idiom (String) or
	// JSON (which sorts map keys).
	//lint:allow mapiter order-insensitive map-to-map diff
	for name, m := range cur {
		out[name] = m - prev[name]
	}
	return out
}

// Probes returns the per-round scheduler measurements recorded so far
// (Config.Probe only). The probes are fully independent copies: the
// MigrationsByDesign maps are cloned per round, not aliased, so a
// caller mutating a returned probe (or holding it across later rounds)
// cannot corrupt the orchestrator's record — a plain copy() would
// share the map headers.
func (o *Orchestrator) Probes() []RoundProbe {
	out := make([]RoundProbe, len(o.probes))
	copy(out, o.probes)
	for i := range out {
		if m := out[i].MigrationsByDesign; m != nil {
			c := make(map[string]int, len(m))
			// Verbatim map→map copy: iteration order cannot reach the
			// result.
			//lint:allow mapiter order-insensitive map copy
			for k, v := range m {
				c[k] = v
			}
			out[i].MigrationsByDesign = c
		}
	}
	return out
}

// PoolStats returns the fleet pool's cumulative scheduling counters,
// or false when the fleet runs on per-shard engines.
func (o *Orchestrator) PoolStats() (engine.FleetStats, bool) {
	if o.pool == nil {
		return engine.FleetStats{}, false
	}
	return o.pool.Stats(), true
}

// ProbeSummary aggregates the recorded probes.
type ProbeSummary struct {
	Rounds      int
	SimWait     time.Duration // summed over rounds
	LearnWait   time.Duration // summed over rounds
	BarrierWait time.Duration // SimWait + LearnWait, summed over rounds
	Spread      time.Duration // summed over rounds
	Steals      int
	Helped      int
	Migrations  int
	// MigrationsByDesign sums per-design migrations over all rounds.
	MigrationsByDesign map[string]int
	// InflightDepth is the deepest in-flight batch window reached over
	// the whole run (max over rounds, not a sum).
	InflightDepth int
	// PipelinedBatches, SnapHits and SnapMisses sum over rounds.
	PipelinedBatches int
	SnapHits         int
	SnapMisses       int
}

// ProbeSummary sums the per-round probes into one report.
func (o *Orchestrator) ProbeSummary() ProbeSummary {
	s := ProbeSummary{Rounds: len(o.probes), MigrationsByDesign: make(map[string]int)}
	for _, p := range o.probes {
		s.SimWait += p.SimWait
		s.LearnWait += p.LearnWait
		s.BarrierWait += p.BarrierWait
		s.Spread += p.Spread
		s.Steals += p.Steals
		s.Helped += p.Helped
		s.Migrations += p.Migrations
		if p.InflightDepth > s.InflightDepth {
			s.InflightDepth = p.InflightDepth
		}
		s.PipelinedBatches += p.PipelinedBatches
		s.SnapHits += p.SnapHits
		s.SnapMisses += p.SnapMisses
		// Commutative integer sums into a map keyed the same way:
		// iteration order cannot reach the totals.
		//lint:allow mapiter order-insensitive commutative sum
		for name, n := range p.MigrationsByDesign {
			s.MigrationsByDesign[name] += n
		}
	}
	return s
}

// String renders the summary as a short report.
func (s ProbeSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "probe: %d rounds, barrier wait %v (sim %v + learn %v, spread %v), %d steals, %d helped, %d migrations",
		s.Rounds, s.BarrierWait.Round(time.Microsecond),
		s.SimWait.Round(time.Microsecond), s.LearnWait.Round(time.Microsecond),
		s.Spread.Round(time.Microsecond), s.Steals, s.Helped, s.Migrations)
	fmt.Fprintf(&b, "\n  pipeline: depth %d, %d pipelined batches, snapshot tree %d hits / %d misses",
		s.InflightDepth, s.PipelinedBatches, s.SnapHits, s.SnapMisses)
	if len(s.MigrationsByDesign) > 0 {
		names := make([]string, 0, len(s.MigrationsByDesign))
		for n := range s.MigrationsByDesign {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "\n  migrations to %-8s %d", n, s.MigrationsByDesign[n])
		}
	}
	return b.String()
}
