package campaign

// Tests for the observability plane: the flight-recorder trace an
// instrumented fleet emits, the metrics registry the barrier updates,
// and the independence of returned probes from orchestrator state.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"chatfuzz/internal/rtl"
	"chatfuzz/internal/telemetry"
)

// traceNames decodes a completed Chrome trace and returns the set of
// event names it contains.
func traceNames(t *testing.T, b []byte) map[string]bool {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	names := make(map[string]bool, len(events))
	for _, e := range events {
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	return names
}

// TestTelemetryTraceCoversEveryLayer: a learning fleet on the shared
// pool with off-barrier training must leave spans from every
// instrumented layer in its trace — generation and commit from the
// shard fuzzers, build/sim/golden from the engine workers, round and
// barrier from the orchestrator, train from the off-barrier learner.
func TestTelemetryTraceCoversEveryLayer(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Shards: 4, BatchSize: 4, Seed: 41, Detect: true,
		FleetPool: true, PoolWorkers: 3, OffBarrier: true,
		Telemetry: telemetry.NewRecorder(&buf),
	}
	o, err := NewMixed(cfg, []func() rtl.DUT{newRocket, newBoom}, learnArms(learnPipeline())...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	if err := o.RunRounds(3); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	o.Close() // joins off-barrier training, so its train span is recorded
	if err := cfg.Telemetry.Close(); err != nil {
		t.Fatalf("recorder Close: %v", err)
	}

	names := traceNames(t, buf.Bytes())
	for _, want := range []string{
		telemetry.SpanGenerate, telemetry.SpanBuild, telemetry.SpanSim,
		telemetry.SpanGolden, telemetry.SpanCommit,
		telemetry.SpanRound, telemetry.SpanBarrier, telemetry.SpanTrain,
	} {
		if !names[want] {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
}

// TestMetricsMatchOrchestratorState: the registry's post-run gauges
// must agree with the orchestrator's own accessors — the metrics plane
// observes, it does not recompute.
func TestMetricsMatchOrchestratorState(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{
		Shards: 4, BatchSize: 4, Seed: 43, Detect: true,
		FleetPool: true, PoolWorkers: 3, Probe: true,
		Metrics: reg,
	}
	o, err := NewMixed(cfg, []func() rtl.DUT{newRocket, newBoom}, testArms()...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	defer o.Close()
	if err := o.RunRounds(3); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}

	s := reg.Snapshot()
	check := func(name string, want float64) {
		t.Helper()
		if got := s.Gauges[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("fleet/rounds", float64(o.Rounds()))
	check("fleet/tests", float64(o.Tests()))
	check("fleet/coverage_pct", o.Coverage())
	for _, d := range o.Designs() {
		check("coverage/"+d+"_pct", o.DesignCoverage(d))
	}
	rep := o.Report()
	for _, a := range rep.Arms {
		check("arm/"+a.Name+"/pulls", float64(a.Pulls))
		check("arm/"+a.Name+"/mean_reward", a.MeanReward)
	}
	st, ok := o.PoolStats()
	if !ok {
		t.Fatal("no pool stats on a FleetPool fleet")
	}
	check("pool/submitted", float64(st.Submitted))
	check("pool/steals", float64(st.Stolen))
	// Probe was on, so the wait histograms must have one sample per round.
	for _, h := range []string{"probe/sim_wait_ms", "probe/learn_wait_ms", "probe/barrier_wait_ms", "probe/spread_ms"} {
		if got := s.Histograms[h].Count; got != int64(o.Rounds()) {
			t.Errorf("%s has %d samples, want %d", h, got, o.Rounds())
		}
	}
	if s.Counters["coverage/new_bins"] <= 0 {
		t.Error("coverage/new_bins counter never advanced")
	}
}

// TestProbesAreDeepCopies: mutating a probe returned by Probes() —
// including its MigrationsByDesign map — must not reach the
// orchestrator's own record. A shallow slice copy aliased the maps.
func TestProbesAreDeepCopies(t *testing.T) {
	o, err := NewMixed(Config{Shards: 4, BatchSize: 4, Seed: 45, FleetPool: true, PoolWorkers: 2, Probe: true},
		[]func() rtl.DUT{newRocket, newBoom}, testArms()...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	defer o.Close()
	if err := o.RunRounds(2); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}

	got := o.Probes()
	if len(got) != 2 {
		t.Fatalf("recorded %d probes, want 2", len(got))
	}
	if got[0].MigrationsByDesign == nil {
		t.Fatal("fleet-pool probe has no MigrationsByDesign map")
	}
	before := o.Probes()
	got[0].MigrationsByDesign["poisoned"] = 999
	got[0].Steals = -1
	after := o.Probes()
	if !reflect.DeepEqual(before, after) {
		t.Errorf("mutating a returned probe changed the orchestrator's record:\nbefore %+v\nafter  %+v", before, after)
	}
	if _, leaked := after[0].MigrationsByDesign["poisoned"]; leaked {
		t.Error("returned probe aliases the orchestrator's MigrationsByDesign map")
	}
}

// TestProbeSummaryZeroRounds: a probed fleet that never ran a round
// must summarise (and render) cleanly, not panic on empty state.
func TestProbeSummaryZeroRounds(t *testing.T) {
	o := mustNew(t, Config{Shards: 2, BatchSize: 4, Probe: true})
	defer o.Close()
	s := o.ProbeSummary()
	if s.Rounds != 0 || s.Steals != 0 || s.BarrierWait != 0 {
		t.Errorf("zero-round summary is not zero: %+v", s)
	}
	if str := s.String(); str == "" {
		t.Error("zero-round summary renders empty")
	}
	if probes := o.Probes(); len(probes) != 0 {
		t.Errorf("zero rounds recorded %d probes", len(probes))
	}
}
