package campaign

// Tests for the fleet-level work-stealing execution pool: the
// three-way execution-path determinism tables, the scale/skew probe,
// and the mismatch-novelty reward.

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"chatfuzz/internal/core"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/telemetry"
	"chatfuzz/internal/trace"
)

// execPath names one of the three execution paths a fleet can run on.
type execPath struct {
	name string
	set  func(*Config)
}

var execPaths = []execPath{
	{"serial", func(c *Config) { c.Serial = true }},
	{"per-shard-pool", func(c *Config) {}},
	{"fleet-pool", func(c *Config) { c.FleetPool = true; c.PoolWorkers = 3 }},
	// Off-barrier learning on top of the fleet pool: PPO training runs
	// on a background goroutine overlapped with the next round, yet
	// trajectories and checkpoint bytes must match the serial loop.
	{"off-barrier", func(c *Config) { c.FleetPool = true; c.PoolWorkers = 3; c.OffBarrier = true }},
	// The sub-round pipeline on top of the off-barrier fleet pool:
	// feedback-free arms overlap batch generation with earlier batches'
	// simulation inside each round (the window stays closed for
	// learning arms), yet every trajectory bit and checkpoint byte must
	// match the strictly alternating serial loop.
	{"pipelined", func(c *Config) {
		c.FleetPool = true
		c.PoolWorkers = 3
		c.OffBarrier = true
		c.Inflight = 3
	}},
	// Full observability on top of everything: flight recorder, metrics
	// registry and probes all armed. Telemetry is execution-only, so the
	// trajectory AND the checkpoint bytes must still match the serial
	// loop bit for bit — the acceptance property of the telemetry plane.
	{"telemetry", func(c *Config) {
		c.FleetPool = true
		c.PoolWorkers = 3
		c.OffBarrier = true
		c.Probe = true
		c.Telemetry = telemetry.NewRecorder(io.Discard)
		c.Metrics = telemetry.NewRegistry()
	}},
}

// TestFleetPoolDeterminismTable is the acceptance property of the
// fleet pool: across shard counts, homogeneous and mixed fleets, and
// frozen and learning arms, the serial loop, the per-shard pools and
// the fleet-level work-stealing pool produce bit-identical merged
// trajectories and byte-identical checkpoints.
func TestFleetPoolDeterminismTable(t *testing.T) {
	duts := map[string][]func() rtl.DUT{
		"homogeneous": {newRocket},
		"mixed":       {newRocket, newBoom},
	}
	for _, shards := range []int{1, 4, 16} {
		for fleetName, newDUTs := range duts {
			for _, learn := range []bool{false, true} {
				name := fmt.Sprintf("shards=%d/%s/learn=%v", shards, fleetName, learn)
				t.Run(name, func(t *testing.T) {
					rounds := 3
					if shards == 16 {
						rounds = 2 // keep the big fleets cheap
					}
					run := func(p execPath) ([]core.ProgressPoint, []byte, int64) {
						// RoundBatches 2 gives the pipelined path real overlap
						// to exercise: with one batch per round the in-flight
						// window never holds more than one batch.
						cfg := Config{Shards: shards, BatchSize: 4, RoundBatches: 2, Seed: 33, Detect: true}
						p.set(&cfg)
						var arms []ArmSpec
						if learn {
							arms = learnArms(learnPipeline())
						} else {
							arms = testArms()
						}
						o, err := NewMixed(cfg, newDUTs, arms...)
						if err != nil {
							t.Fatalf("%s: NewMixed: %v", p.name, err)
						}
						defer o.Close()
						o.RunRounds(rounds)
						var buf bytes.Buffer
						if err := o.Checkpoint(&buf); err != nil {
							t.Fatalf("%s: Checkpoint: %v", p.name, err)
						}
						pipelined := int64(0)
						for s := 0; s < shards; s++ {
							if st, ok := o.Shard(s).EngineStats(); ok {
								pipelined += st.PipelinedRounds
							}
						}
						return o.Trajectory(), buf.Bytes(), pipelined
					}
					wantTraj, wantCkpt, _ := run(execPaths[0])
					for _, p := range execPaths[1:] {
						traj, ckpt, pipelined := run(p)
						// Guard the pipelined axis against silently
						// degenerating: the free arms (randinst, randfuzz)
						// must have overlapped batches at least once.
						if p.name == "pipelined" && !learn && pipelined == 0 {
							t.Errorf("%s ran but the sub-round pipeline never engaged", p.name)
						}
						if len(traj) != len(wantTraj) {
							t.Fatalf("%s trajectory has %d points, serial has %d", p.name, len(traj), len(wantTraj))
						}
						for i := range wantTraj {
							if traj[i] != wantTraj[i] {
								t.Fatalf("%s trajectory diverges from serial at round %d: %+v vs %+v",
									p.name, i, traj[i], wantTraj[i])
							}
						}
						if !bytes.Equal(ckpt, wantCkpt) {
							t.Errorf("%s checkpoint differs from the serial checkpoint", p.name)
						}
					}
				})
			}
		}
	}
}

// slowDUT wraps a DUT under a distinct design name and sleeps before
// every run, modelling a rig whose simulator is slower than its
// siblings'. It deliberately does not implement rtl.ReusableDUT, so
// the engine falls back to DUT.Run — the conservative path.
type slowDUT struct {
	rtl.DUT
	delay time.Duration
}

func (s *slowDUT) Name() string { return s.DUT.Name() + "-slow" }

func (s *slowDUT) Run(img mem.Image, maxInsts int) rtl.Result {
	time.Sleep(s.delay)
	return s.DUT.Run(img, maxInsts)
}

// TestFleetPoolShrinksBarrierWait is the skew probe: on a fleet whose
// shards alternate a fast and a deliberately slow design, the shared
// work-stealing pool must cut the time shards idle at the aggregation
// barrier versus per-shard pools, because idle shards' committers and
// the pool's workers execute the slow design's queue concurrently.
// The test observes wall-clock, but the sleep-based skew (2ms per
// slow test, 8 tests per shard-round) keeps scheduling noise far
// below the signal, and sleeps overlap even on a single-core runner.
func TestFleetPoolShrinksBarrierWait(t *testing.T) {
	newSlow := func() rtl.DUT { return &slowDUT{DUT: newRocket(), delay: 2 * time.Millisecond} }
	run := func(fleet bool) (ProbeSummary, []core.ProgressPoint) {
		cfg := Config{Shards: 4, BatchSize: 8, Seed: 35, Probe: true}
		if fleet {
			cfg.FleetPool = true
			cfg.PoolWorkers = 4
		}
		o, err := NewMixed(cfg, []func() rtl.DUT{newRocket, newSlow}, testArms()...)
		if err != nil {
			t.Fatalf("NewMixed: %v", err)
		}
		defer o.Close()
		o.RunRounds(3)
		return o.ProbeSummary(), o.Trajectory()
	}

	perShard, shardTraj := run(false)
	fleet, fleetTraj := run(true)
	t.Logf("per-shard pools: %v", perShard)
	t.Logf("fleet pool:      %v", fleet)

	// The skew is real in both runs; the pool must absorb it. The
	// typical shrink is ~2x; asserting only a 25% cut keeps scheduler
	// noise on loaded CI runners out of the verdict. SimWait is the
	// pool's own metric — the stealable sim-finish skew — though with
	// frozen arms LearnWait is zero and BarrierWait would read the same.
	if fleet.SimWait >= perShard.SimWait*3/4 {
		t.Errorf("fleet pool sim wait %v did not shrink vs per-shard %v (want < 3/4)",
			fleet.SimWait, perShard.SimWait)
	}
	if fleet.Steals+fleet.Helped == 0 {
		t.Error("fleet run recorded no steals or helps; the pool was idle")
	}
	if perShard.Steals != 0 || perShard.Helped != 0 {
		t.Error("per-shard run recorded pool activity")
	}
	// Probing and pooling must not perturb the trajectory.
	if len(shardTraj) != len(fleetTraj) {
		t.Fatalf("trajectories have %d vs %d points", len(shardTraj), len(fleetTraj))
	}
	for i := range shardTraj {
		if shardTraj[i] != fleetTraj[i] {
			t.Errorf("trajectory diverges at round %d under the fleet pool", i)
		}
	}
}

// TestFleetPoolConfigValidation: the fleet pool is an engine-path
// feature and must refuse the serial loop rather than silently
// ignoring one of the two flags.
func TestFleetPoolConfigValidation(t *testing.T) {
	_, err := New(Config{Serial: true, FleetPool: true}, newRocket, testArms()...)
	if err == nil {
		t.Fatal("New accepted Serial together with FleetPool")
	}
}

// TestPoolStatsAccessor: PoolStats reports only when a fleet pool is
// actually running.
func TestPoolStatsAccessor(t *testing.T) {
	o, err := New(Config{Shards: 2, BatchSize: 4, Seed: 37, FleetPool: true}, newRocket, testArms()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	o.RunRounds(2)
	st, ok := o.PoolStats()
	if !ok {
		t.Fatal("PoolStats reported no pool on a FleetPool fleet")
	}
	if st.Submitted != 2*2*4 {
		t.Errorf("pool saw %d jobs, want %d", st.Submitted, 2*2*4)
	}
	o.Close()

	o2 := mustNew(t, Config{Shards: 2, BatchSize: 4, Seed: 37})
	defer o2.Close()
	if _, ok := o2.PoolStats(); ok {
		t.Error("PoolStats reported a pool on a per-shard fleet")
	}
}

// TestMismatchNoveltyReward is the reward-table test for the
// signature-novelty blend: a noisy divergence that keeps repeating
// one signature earns the mismatch term exactly once, while each
// genuinely new cluster earns again — the raw-count scheme this
// replaces paid out on every repeat.
func TestMismatchNoveltyReward(t *testing.T) {
	// Two divergence flavours with stable, distinct signatures: an
	// rd-value mismatch on an ADD, and a trap-presence mismatch. The
	// detector clusters by (kind, opcode, fingerprint), so repeats of
	// the first are one cluster regardless of how often they fire.
	golden := trace.Entry{PC: 0x8000_0000, Raw: 0x33, Op: isa.OpADD,
		RdValid: true, Rd: 5, RdVal: 1}
	noisy := golden
	noisy.RdVal = 2 // same signature every time: rd-value|add
	trapGolden := trace.Entry{PC: 0x8000_0004, Raw: 0x33, Op: isa.OpADD}
	trapDUT := trapGolden
	trapDUT.Trap = true
	trapDUT.Cause = 2

	cfg := Config{Detect: true, MismatchWeight: 1}.withDefaults()
	d := mismatch.NewDetector()

	type round struct {
		name string
		feed func(test int)
		// wantReward is whether the round's novelty delta must earn a
		// non-zero mismatch reward; wantRaw asserts the raw counter
		// kept moving (what the old scheme paid on).
		wantReward bool
		wantRawNew int
	}
	rounds := []round{
		{"first noisy divergence", func(n int) {
			d.Analyze(n, []trace.Entry{noisy}, []trace.Entry{golden})
		}, true, 1},
		{"same divergence repeated 10x", func(n int) {
			for k := 0; k < 10; k++ {
				d.Analyze(n+k, []trace.Entry{noisy}, []trace.Entry{golden})
			}
		}, false, 10},
		{"new trap cluster", func(n int) {
			d.Analyze(n, []trace.Entry{trapDUT}, []trace.Entry{trapGolden})
		}, true, 1},
		{"both repeated again", func(n int) {
			d.Analyze(n, []trace.Entry{noisy}, []trace.Entry{golden})
			d.Analyze(n+1, []trace.Entry{trapDUT}, []trace.Entry{trapGolden})
		}, false, 2},
	}

	test := 1
	for _, rd := range rounds {
		t.Run(rd.name, func(t *testing.T) {
			m0 := d.NovelSignatures()
			raw0 := d.RawCount - d.FilteredRaw
			rd.feed(test)
			test += 16
			novel := d.NovelSignatures() - m0
			rawNew := d.RawCount - d.FilteredRaw - raw0
			if rawNew != rd.wantRawNew {
				t.Fatalf("raw non-filtered mismatches grew by %d, want %d", rawNew, rd.wantRawNew)
			}
			// One virtual hour per round keeps rates equal to counts.
			reward := cfg.reward(0, float64(novel)/1.0)
			if rd.wantReward && reward <= 0 {
				t.Errorf("novel cluster earned reward %v, want > 0", reward)
			}
			if !rd.wantReward {
				if reward != 0 {
					t.Errorf("repeat-only round earned reward %v, want 0 (raw scheme would have paid on %d repeats)",
						reward, rawNew)
				}
			}
		})
	}
}
