package campaign

import (
	"math"
	"testing"
)

func TestUCB1TriesEveryArmFirst(t *testing.T) {
	b := NewUCB1(4, math.Sqrt2)
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		arm := b.Select()
		if seen[arm] {
			t.Fatalf("arm %d selected twice before all arms were tried", arm)
		}
		seen[arm] = true
		b.Reward(arm, 0.5)
	}
	if b.T != 4 {
		t.Errorf("T = %v, want 4", b.T)
	}
}

func TestUCB1ConcentratesOnBestArm(t *testing.T) {
	b := NewUCB1(3, math.Sqrt2)
	rewards := []float64{0.1, 0.9, 0.2}
	for i := 0; i < 300; i++ {
		arm := b.Select()
		b.Reward(arm, rewards[arm])
	}
	if b.Pulls[1] <= b.Pulls[0] || b.Pulls[1] <= b.Pulls[2] {
		t.Errorf("best arm pulled %d times vs %d/%d: UCB1 failed to concentrate",
			b.Pulls[1], b.Pulls[0], b.Pulls[2])
	}
	// Exploration never fully starves an arm.
	for i, n := range b.Pulls {
		if n == 0 {
			t.Errorf("arm %d starved", i)
		}
	}
}

func TestUCB1SpreadsWithinARound(t *testing.T) {
	// Selections before any reward lands (the within-round case) must
	// spread over arms, not pile onto one: pulls count at Select time.
	b := NewUCB1(2, math.Sqrt2)
	first, second := b.Select(), b.Select()
	if first == second {
		t.Errorf("two rewardless selections both chose arm %d", first)
	}
}

func TestUCB1DiscountTracksNonStationaryRewards(t *testing.T) {
	// Arm 0 pays early then dies; arm 1 starts paying later. With
	// discounting the schedule must migrate to arm 1.
	b := NewUCB1(2, math.Sqrt2)
	for round := 0; round < 200; round++ {
		b.Discount(0.9)
		arm := b.Select()
		var r float64
		if round < 50 {
			if arm == 0 {
				r = 0.9
			}
		} else if arm == 1 {
			r = 0.9
		}
		b.Reward(arm, r)
	}
	if b.Mean(1) <= b.Mean(0) {
		t.Errorf("discounted mean did not track the regime switch: arm0 %.3f, arm1 %.3f",
			b.Mean(0), b.Mean(1))
	}
	before := b.T
	b.Discount(1)
	if b.T != before {
		t.Error("Discount(1) must be a no-op")
	}
}

func TestUCB1Mean(t *testing.T) {
	b := NewUCB1(2, 1)
	if b.Mean(0) != 0 {
		t.Errorf("mean of unpulled arm = %v, want 0", b.Mean(0))
	}
	arm := b.Select()
	b.Reward(arm, 0.8)
	if got := b.Mean(arm); got != 0.8 {
		t.Errorf("mean = %v, want 0.8", got)
	}
}
