// Package campaign implements a sharded multi-campaign fuzzing
// orchestrator on top of the paper's single fuzzing loop (Fig. 1a).
//
// N shards each run an independent core.Fuzzer — own DUT instance, own
// virtual clock, own generator instances — and a global UCB1 bandit
// allocates each round's batches among the generator arms (the trained
// LLM, TheHuzz, ISA-aware random, raw random), rewarded by the
// incremental merged coverage each batch buys per virtual hour, the
// multi-armed-bandit strategy scheduling MABFuzz showed beats any
// fixed strategy.
//
// A round is: select one arm per shard (sequentially, in shard order) →
// all shards fuzz concurrently → barrier → merge each shard's coverage
// bitmap into the fleet-global set, credit the bandit, and append one
// merged ProgressPoint. Every scheduling and accounting decision
// happens at the barrier in shard order, and every generator is
// reseeded per round from a pure function of (campaign seed, shard,
// round) — so the merged trajectory is bit-identical across runs and
// across checkpoint/resume, regardless of goroutine interleaving.
//
// Fleet virtual time is the maximum over shard clocks: shards model
// independent simulator rigs running in parallel, so Fig. 2-style
// curves from Trajectory() reflect fleet wall-clock, not the sum of
// per-rig time.
//
// Each shard executes its batches on a persistent pipelined engine
// (internal/engine) with Config.Parallel workers and reusable scratch;
// Config.Serial falls back to the fork-join reference loop, with
// bit-identical results either way. Config.FleetPool goes the other
// direction: every shard submits into one fleet-level work-stealing
// pool whose workers keep design-affine scratch and steal across
// shards and designs, raising utilization on skewed fleets — still
// bit-identical, because in-order commit per shard is preserved and
// all randomness stays in the per-shard armSeed streams. Fleets may
// be heterogeneous: NewMixed assigns designs to shards round-robin
// (e.g. Rocket+BOOM), each design keeping its own fleet-merged
// coverage bitmap while the bandit, virtual clock and TheHuzz pool
// sync span the whole fleet. Call Close when done to release the
// shard engines (and the fleet pool, which the orchestrator owns).
//
// Learning arms ride an off-barrier learning plane (internal/
// fleetlearn): shards buffer their PPO rollouts during the round, the
// barrier launches training over the buffers and publishes the
// previous barrier's merge one round late — so PPO never sits on a
// shard's critical path, and Config.OffBarrier can overlap the
// training with the next round's simulation without changing a single
// trajectory bit. Config.UpdateBudget adaptively skips updates while
// merged coverage is plateaued. Checkpoints (v4) carry the published
// and staged weight vectors, making resume bit-exact even mid-lag.
//chatfuzz:deterministic package
package campaign

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/core"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/engine"
	"chatfuzz/internal/fleetlearn"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/telemetry"
)

// Config parameterises an orchestrated fleet.
type Config struct {
	// Shards is the number of concurrent campaigns (default 4).
	Shards int
	// BatchSize is tests per fuzzing round per shard (default 16).
	BatchSize int
	// RoundBatches is how many batches a shard runs between
	// aggregation barriers (default 1). Larger values amortise the
	// barrier at the cost of coarser bandit feedback.
	RoundBatches int
	// Seed derives every per-round generator seed.
	Seed int64
	// ExploreC is the UCB1 exploration constant (default √2).
	ExploreC float64
	// RewardHalf is the coverage rate, in new bins per virtual hour,
	// at which the bandit reward reaches 0.5 (default 60). It only
	// sets the scale on which arms are compared.
	RewardHalf float64
	// BanditDecay is the per-round discount applied to the bandit's
	// statistics (default 0.9; 1 disables discounting). Fuzzing
	// rewards are non-stationary, so recent rounds should outweigh
	// the campaign's history.
	BanditDecay float64
	// NoSync disables pushing the merged global bitmap back into each
	// shard at the barrier. With sync on (the default), a shard's
	// incremental-coverage scores — and therefore TheHuzz pool
	// admission and LLM rewards — measure fleet-new coverage, so
	// shards complement instead of re-discovering each other's bins
	// (the distributed-fuzzing corpus-sync idea, on bitmaps).
	NoSync bool
	// Detect enables differential testing in every shard. Detector
	// state is checkpointed (v3), so resumed fleets report cumulative
	// findings across the pause.
	Detect bool
	// MismatchWeight blends a mismatch-novelty term into the bandit
	// reward: 0 (default) rewards coverage rate only, 1 rewards new
	// detector signatures per virtual hour only, values between
	// interpolate. Novelty is measured as growth of the detector's
	// non-filtered signature clusters, not raw mismatch count, so a
	// noisy divergence that keeps firing the same signature is paid
	// once and cannot farm reward. Detection campaigns set this to
	// steer scheduling toward trap-heavy generators; it has no effect
	// without Detect.
	MismatchWeight float64
	// MismatchHalf is the novelty rate, in new non-filtered mismatch
	// signatures per virtual hour, at which the mismatch reward term
	// reaches 0.5 (default 3; signatures are far rarer than the raw
	// mismatches they cluster). Like RewardHalf it only sets the
	// comparison scale.
	MismatchHalf float64
	// UpdateBudget adaptively skips learning-arm PPO updates while the
	// fleet's coverage rate is plateaued: after UpdateBudget
	// consecutive rounds in which the barrier merged zero new coverage
	// bins, the learning barrier discards its buffered rollouts
	// instead of training, until coverage moves again (0, the default,
	// never skips). On a plateau the virtual time a PPO step buys is
	// better spent simulating — the MABFuzz argument, applied to the
	// update schedule rather than arm selection. The plateau counter
	// is a pure function of the merged trajectory, so it survives
	// checkpoint/resume without being stored. Scheduling semantics,
	// not an execution detail: checkpointed.
	UpdateBudget int
	// Parallel bounds simulation workers inside each shard (default
	// 1: the shards themselves are the parallelism). Ignored with
	// FleetPool.
	Parallel int
	// Inflight bounds each shard's in-flight batch window (default 1:
	// strictly alternating generate/commit). With Inflight > 1,
	// RoundBatches > 1 and a feedback-free arm, a shard generates and
	// submits its next batch while earlier batches still simulate and
	// drain in order — the sub-round pipeline. Commit order, scoring
	// and every trajectory bit are unchanged (the pipeline disengages
	// for feedback-coupled arms like chatfuzz-learn), so like Serial
	// and FleetPool it is an execution detail excluded from
	// checkpoints; pass it again when resuming.
	Inflight int `json:"-"`
	// OffBarrier moves learning-arm PPO training onto a background
	// goroutine: each round's buffered rollouts train while the next
	// round simulates, and the merged weights are published at the
	// following barrier. Publication is one round late either way —
	// that staging is the fleet-learning semantics, not a toggle — so
	// trajectories, learned weights and checkpoints are bit-identical
	// with OffBarrier on or off; only wall-clock placement of the
	// training work changes. Like Serial and FleetPool it is an
	// execution detail excluded from checkpoints; pass it again when
	// resuming to keep training off the barrier.
	OffBarrier bool `json:"-"`
	// FleetPool replaces the per-shard execution pools with one
	// fleet-level work-stealing pool shared by every shard: shards
	// submit their rounds into per-design queues and the pool's
	// workers — keyed by DUT design so reusable scratch keeps
	// affinity — execute whatever still queues, stealing across
	// designs when their own runs dry. Scheduling, commit order and
	// every trajectory stay bit-identical to the per-shard and serial
	// paths; only wall-clock utilization changes. Like Serial it is
	// an execution detail excluded from checkpoints; resumed fleets
	// run per-shard engines.
	FleetPool bool `json:"-"`
	// PoolWorkers bounds the fleet pool's workers (0 = GOMAXPROCS).
	// Only meaningful with FleetPool.
	PoolWorkers int `json:"-"`
	// Probe records per-round scheduler statistics — barrier wait,
	// finish-time spread, steal/help/migration counts — retrievable
	// via Probes(). Measurement only; trajectories are unaffected.
	Probe bool `json:"-"`
	// Serial disables the persistent batch execution engine inside
	// every shard and runs the original fork-join loop instead. Both
	// paths are bit-identical; Serial exists for determinism tests and
	// benchmarks. It is an execution detail, not a scheduling
	// parameter, so it is excluded from checkpoints (an engine run's
	// checkpoint is byte-identical to a serial run's); resumed fleets
	// therefore always run on the engine path.
	Serial bool `json:"-"`
	// Telemetry, when non-nil, wires a span flight recorder through
	// every layer of the fleet: per-worker build/sim/golden spans and
	// steal/help/migrate events in the engines and the fleet pool,
	// generate/commit spans per shard, round/barrier spans on the
	// orchestrator's track and train spans on each learning arm's.
	// The rings drain (Flush) at every round barrier. Telemetry
	// observes and never steers: trajectories, weights and checkpoint
	// bytes are bit-identical with it on or off, which is why — like
	// Serial and FleetPool — it is an execution detail excluded from
	// checkpoints.
	Telemetry *telemetry.Recorder `json:"-"`
	// Metrics, when non-nil, receives a fleet-state metrics update at
	// every round barrier (coverage, tests, virtual hours, per-design
	// coverage, per-arm bandit pulls and rewards, mismatch cluster
	// counts, pool scheduling counters, probe wait histograms; see
	// README.md's Observability section for the series names).
	// Execution-only, like Telemetry. Implies nothing about Probe —
	// but probe-derived series are only recorded when Probe is set.
	Metrics *telemetry.Registry `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.RoundBatches <= 0 {
		c.RoundBatches = 1
	}
	if c.RewardHalf <= 0 {
		c.RewardHalf = 60
	}
	if c.BanditDecay <= 0 {
		c.BanditDecay = 0.9
	}
	if c.MismatchHalf <= 0 {
		c.MismatchHalf = 3
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	return c
}

// shard is one independent campaign.
type shard struct {
	fuz  *core.Fuzzer
	arms []arm
	// rec[i] wraps arms[i] to capture coverage-advancing programs for
	// cross-shard pool seeding; it is what the fuzzer actually drives.
	rec []*recorded
}

// Orchestrator runs N sharded campaigns under bandit scheduling.
type Orchestrator struct {
	Cfg Config

	specs   []ArmSpec
	bandit  *UCB1
	shards  []*shard
	designs []string            // per-shard DUT name, in shard order
	names   []string            // sorted unique design names
	globals map[string]*cov.Set // fleet-merged coverage, per design
	// fleets[i] aggregates spec i's per-shard model replicas for
	// barrier weight averaging; nil for non-learning arms.
	fleets []*fleetlearn.Fleet
	// pool is the fleet-level work-stealing execution pool
	// (Config.FleetPool); the orchestrator owns it and closes it
	// after the shard engines.
	pool *engine.FleetPool
	// track carries the orchestrator's round/barrier spans (nil when
	// telemetry is off).
	track  *telemetry.Track
	probes []RoundProbe
	// prevPipe holds each shard engine's cumulative pipeline counters
	// as of the previous probed round, so RoundProbe can report
	// per-round deltas (Config.Probe; nil until the first probed round).
	prevPipe []engine.PipeStats
	merged []core.ProgressPoint
	round  int
	tests  int
	// plateau counts consecutive rounds whose barrier merged zero new
	// coverage bins (drives Config.UpdateBudget). Derivable from the
	// merged trajectory, so resume recomputes it instead of storing it.
	plateau int
	// err poisons the fleet after a barrier failure: every subsequent
	// Run* call returns it instead of running on inconsistent state.
	err error
}

// New builds a homogeneous fleet: one DUT per shard via newDUT, one
// instance of every arm per shard, and a shared bandit over the arms.
func New(cfg Config, newDUT func() rtl.DUT, specs ...ArmSpec) (*Orchestrator, error) {
	return NewMixed(cfg, []func() rtl.DUT{newDUT}, specs...)
}

// NewMixed builds a heterogeneous fleet: shard s simulates the design
// built by newDUTs[s % len(newDUTs)], so a two-constructor fleet of
// four shards alternates Rocket and BOOM rigs. Each design keeps its
// own fleet-merged coverage bitmap (coverage spaces differ between
// designs and cannot be merged); the bandit still compares every arm
// across the whole fleet on the shared bins-per-virtual-hour scale,
// and cross-shard mutation-pool sync spans designs, since test
// programs are design-independent.
func NewMixed(cfg Config, newDUTs []func() rtl.DUT, specs ...ArmSpec) (*Orchestrator, error) {
	cfg = cfg.withDefaults()
	if len(newDUTs) == 0 {
		return nil, fmt.Errorf("campaign: at least one DUT constructor is required")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("campaign: at least one generator arm is required")
	}
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if seen[sp.Name] {
			return nil, fmt.Errorf("campaign: duplicate arm %q", sp.Name)
		}
		seen[sp.Name] = true
	}
	if cfg.FleetPool && cfg.Serial {
		return nil, fmt.Errorf("campaign: FleetPool requires the engine path (drop Serial)")
	}
	o := &Orchestrator{
		Cfg:     cfg,
		specs:   specs,
		bandit:  NewUCB1(len(specs), cfg.ExploreC),
		globals: make(map[string]*cov.Set),
		track:   cfg.Telemetry.NewTrack("orchestrator"),
	}
	if cfg.FleetPool {
		o.pool = engine.NewFleetPool(engine.FleetConfig{Workers: cfg.PoolWorkers, Telemetry: cfg.Telemetry})
	}
	replicas := make([][]*fleetlearn.Replica, len(specs))
	for s := 0; s < cfg.Shards; s++ {
		dut := newDUTs[s%len(newDUTs)]()
		arms := make([]arm, len(specs))
		rec := make([]*recorded, len(specs))
		for i, sp := range specs {
			if sp.newLearner != nil {
				a, rep := sp.newLearner(dut.Space().NumBins())
				arms[i] = a
				replicas[i] = append(replicas[i], rep)
			} else {
				arms[i] = sp.build(dut.Space().NumBins())
			}
			rec[i] = &recorded{arm: arms[i]}
		}
		if !cfg.NoSync {
			hasHuzz := false
			for _, a := range arms {
				if _, ok := a.(*huzzArm); ok {
					hasHuzz = true
					break
				}
			}
			for i, a := range arms {
				if _, ok := a.(*huzzArm); !ok {
					rec[i].capture = hasHuzz
				}
			}
		}
		fuz := core.NewFuzzer(rec[0], dut, core.Options{
			BatchSize:      cfg.BatchSize,
			Detect:         cfg.Detect,
			Parallel:       cfg.Parallel,
			Inflight:       cfg.Inflight,
			Serial:         cfg.Serial,
			Pool:           o.pool,
			Telemetry:      cfg.Telemetry,
			TelemetryLabel: fmt.Sprintf("shard%d/%s", s, dut.Name()),
		})
		name := dut.Name()
		if g, ok := o.globals[name]; ok {
			if g.Space().NumBins() != dut.Space().NumBins() {
				// Release this shard's just-built engine, the earlier
				// shards' engines and the fleet pool before failing.
				fuz.Close()
				o.Close()
				return nil, fmt.Errorf("campaign: DUTs named %q disagree on coverage bins (%d vs %d)",
					name, g.Space().NumBins(), dut.Space().NumBins())
			}
		} else {
			o.globals[name] = dut.Space().NewSet()
			o.names = append(o.names, name)
		}
		o.designs = append(o.designs, name)
		o.shards = append(o.shards, &shard{fuz: fuz, arms: arms, rec: rec})
	}
	sort.Strings(o.names)
	o.fleets = make([]*fleetlearn.Fleet, len(specs))
	for i, reps := range replicas {
		if len(reps) == 0 {
			continue
		}
		fl, err := fleetlearn.NewFleet(reps...)
		if err != nil {
			o.Close()
			return nil, fmt.Errorf("campaign: learning arm %q: %w", specs[i].Name, err)
		}
		fl.Track = cfg.Telemetry.NewTrack("learn/" + specs[i].Name)
		o.fleets[i] = fl
	}
	return o, nil
}

// Close joins any in-flight off-barrier training, releases every
// shard's execution engine, then the fleet pool when one is shared
// (the orchestrator owns the pool, the shards only submit into it).
// The orchestrator's reports and trajectory stay readable; no further
// rounds may run.
func (o *Orchestrator) Close() {
	for _, fl := range o.fleets {
		if fl != nil {
			fl.Sync()
		}
	}
	for _, s := range o.shards {
		s.fuz.Close()
	}
	if o.pool != nil {
		o.pool.Close()
	}
}

// armSeed derives the per-(shard, round) generator seed as a pure
// function of the campaign seed (splitmix64 finalizer), so a resumed
// run replays the exact stream without checkpointing rng state.
func armSeed(campaign int64, shard, round int) int64 {
	z := uint64(campaign) + 0x9E3779B97F4A7C15*uint64(shard+1) + 0xBF58476D1CE4E5B9*uint64(round+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunRound executes one scheduling round: arm selection per shard,
// concurrent fuzzing, then deterministic barrier accounting. A
// barrier failure (a shard's coverage space diverging from the fleet
// global — corrupted state, never a healthy run) is returned to the
// caller rather than panicking a long-lived fleet, and poisons the
// orchestrator: every later Run* call returns the same error.
func (o *Orchestrator) RunRound() error {
	if o.err != nil {
		return o.err
	}
	roundT := o.track.Start()
	n := len(o.shards)
	o.bandit.Discount(o.Cfg.BanditDecay)
	picks := make([]int, n)
	for i := range picks {
		picks[i] = o.bandit.Select()
	}

	type delta struct {
		tests int
		hours float64
		mis   int // new non-filtered mismatch signatures (Detect only)
	}
	deltas := make([]delta, n)
	var probe *RoundProbe
	var finished []time.Time
	var stats0 engine.FleetStats
	if o.Cfg.Probe {
		probe = &RoundProbe{Round: o.round}
		finished = make([]time.Time, n)
		if o.pool != nil {
			stats0 = o.pool.Stats()
		}
	}
	var wg sync.WaitGroup
	for i, s := range o.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			s.arms[picks[i]].Reseed(armSeed(o.Cfg.Seed, i, o.round))
			s.fuz.Gen = s.rec[picks[i]]
			t0, h0 := s.fuz.Tests, s.fuz.Clk.Hours()
			m0 := 0
			if d := s.fuz.Det; d != nil {
				// Novelty, not volume: reward only cluster growth, so a
				// noisy divergence repeating one signature pays once.
				m0 = d.NovelSignatures()
			}
			// RunBatches engages the sub-round pipeline (Cfg.Inflight > 1,
			// feedback-free arm) or degenerates to RoundBatches serial
			// RunBatch calls — bit-identical accounting either way.
			s.fuz.RunBatches(o.Cfg.RoundBatches)
			deltas[i] = delta{tests: s.fuz.Tests - t0, hours: s.fuz.Clk.Hours() - h0}
			if d := s.fuz.Det; d != nil {
				deltas[i].mis = d.NovelSignatures() - m0
			}
			if finished != nil {
				// Execution-only: the timestamps become RoundProbe wait
				// durations (Config.Probe), which are never checkpointed
				// and never feed scheduling or trajectory state.
				//lint:allow wallclock probe timing is execution-only measurement
				finished[i] = time.Now()
			}
		}(i, s)
	}
	wg.Wait()
	if probe != nil {
		first, last := finished[0], finished[0]
		for _, ts := range finished[1:] {
			if ts.Before(first) {
				first = ts
			}
			if ts.After(last) {
				last = ts
			}
		}
		// SimWait only: with learning buffered off the round path, a
		// shard's finish timestamp marks the end of generation +
		// simulation, so this is the idle skew an execution pool can
		// actually steal. The learning pole lands in LearnWait below.
		for _, ts := range finished {
			probe.SimWait += last.Sub(ts)
		}
		probe.Spread = last.Sub(first)
		if o.pool != nil {
			st := o.pool.Stats()
			probe.Steals = st.Stolen - stats0.Stolen
			probe.Helped = st.Helped - stats0.Helped
			probe.Migrations = st.Migrations - stats0.Migrations
			probe.MigrationsByDesign = migrationDelta(st.MigrationsByDesign, stats0.MigrationsByDesign)
		}
		// Pipeline signals, per-round deltas against the engines'
		// cumulative counters (shard order; execution-only reads).
		if o.prevPipe == nil {
			o.prevPipe = make([]engine.PipeStats, n)
		}
		for i, s := range o.shards {
			st, ok := s.fuz.EngineStats()
			if !ok {
				continue
			}
			prev := o.prevPipe[i]
			probe.PipelinedBatches += int(st.PipelinedRounds - prev.PipelinedRounds)
			probe.SnapHits += int(st.SnapHits - prev.SnapHits)
			probe.SnapMisses += int(st.SnapMisses - prev.SnapMisses)
			// MaxInflight is a high-water mark, not a counter: report
			// the deepest overlap any shard has reached.
			if d := int(st.MaxInflight); d > probe.InflightDepth {
				probe.InflightDepth = d
			}
			o.prevPipe[i] = st
		}
	}

	// Barrier: merge bitmaps and credit the bandit in shard order.
	barrierT := o.track.Start()
	roundAdded := 0
	for i, s := range o.shards {
		added, err := o.globals[o.designs[i]].MergeWords(s.fuz.Calc.Total().Snapshot())
		if err != nil {
			o.err = fmt.Errorf("campaign: shard %d (%s) coverage space diverged: %w", i, o.designs[i], err)
			return o.err
		}
		roundAdded += added
		covRate, misRate := 0.0, 0.0
		if deltas[i].hours > 0 {
			covRate = float64(added) / deltas[i].hours
			misRate = float64(deltas[i].mis) / deltas[i].hours
		}
		o.bandit.Reward(picks[i], o.Cfg.reward(covRate, misRate))
		o.tests += deltas[i].tests
	}
	if !o.Cfg.NoSync {
		snaps := make(map[string][]uint64, len(o.names))
		for _, n := range o.names {
			snaps[n] = o.globals[n].Snapshot()
		}
		for i, s := range o.shards {
			if _, err := s.fuz.Calc.Total().MergeWords(snaps[o.designs[i]]); err != nil {
				o.err = fmt.Errorf("campaign: global sync to shard %d (%s): %w", i, o.designs[i], err)
				return o.err
			}
		}
		o.syncPools()
	}
	// Fleet learning step: join the training launched last barrier,
	// publish its merge (one round late, see fleetlearn), and launch
	// this round's training — on a background goroutine overlapped
	// with the next round's simulation when Cfg.OffBarrier is set,
	// inline otherwise; the bits are identical either way. Replicas
	// are visited in shard order and reduce under a fixed pairwise
	// schedule, so the merged weights are reproducible and a
	// checkpoint needs only the published/staged vector pair per arm.
	if roundAdded == 0 {
		o.plateau++
	} else {
		o.plateau = 0
	}
	skip := o.Cfg.UpdateBudget > 0 && o.plateau >= o.Cfg.UpdateBudget
	var learn0 time.Time
	if probe != nil {
		//lint:allow wallclock probe timing is execution-only measurement
		learn0 = time.Now()
	}
	for _, fl := range o.fleets {
		if fl != nil {
			fl.Barrier(o.Cfg.OffBarrier, skip)
		}
	}
	if probe != nil {
		//lint:allow wallclock probe timing is execution-only measurement
		probe.LearnWait = time.Since(learn0)
		probe.BarrierWait = probe.SimWait + probe.LearnWait
		o.probes = append(o.probes, *probe)
	}
	o.track.Span(telemetry.SpanBarrier, barrierT)
	o.round++
	o.merged = append(o.merged, core.ProgressPoint{
		Tests:    o.tests,
		Hours:    o.Hours(),
		Coverage: o.Coverage(),
	})
	o.track.Span(telemetry.SpanRound, roundT)
	// Round commit is the flight recorder's drain point: rings fill
	// during the round, stream out here, off every shard's hot path.
	o.recordMetrics(roundAdded, probe)
	o.Cfg.Telemetry.Flush()
	return nil
}

// probeWaitBounds buckets the probe wait histograms, in milliseconds.
var probeWaitBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// recordMetrics publishes the fleet's post-barrier state into
// Cfg.Metrics. Pure observation: every value is read from state the
// barrier already computed, and nothing here is ever read back.
func (o *Orchestrator) recordMetrics(roundAdded int, probe *RoundProbe) {
	g := o.Cfg.Metrics
	if g == nil {
		return
	}
	g.Gauge("fleet/rounds").Set(float64(o.round))
	g.Gauge("fleet/tests").Set(float64(o.tests))
	g.Gauge("fleet/virtual_hours").Set(o.Hours())
	g.Gauge("fleet/coverage_pct").Set(o.Coverage())
	g.Counter("coverage/new_bins").Add(int64(roundAdded))
	for _, n := range o.names {
		g.Gauge("coverage/"+n+"_pct").Set(o.globals[n].Percent())
	}
	for i, sp := range o.specs {
		g.Gauge("arm/"+sp.Name+"/pulls").Set(float64(o.bandit.Pulls[i]))
		g.Gauge("arm/"+sp.Name+"/mean_reward").Set(o.bandit.Mean(i))
	}
	if o.Cfg.Detect {
		novel, raw, filtered := 0, 0, 0
		for _, s := range o.shards {
			if d := s.fuz.Det; d != nil {
				novel += d.NovelSignatures()
				raw += d.RawCount
				filtered += d.FilteredRaw
			}
		}
		g.Gauge("mismatch/novel_signatures").Set(float64(novel))
		g.Gauge("mismatch/raw").Set(float64(raw))
		g.Gauge("mismatch/raw_filtered").Set(float64(filtered))
	}
	var pipe engine.PipeStats
	havePipe := false
	for _, s := range o.shards {
		st, ok := s.fuz.EngineStats()
		if !ok {
			continue
		}
		havePipe = true
		pipe.PipelinedRounds += st.PipelinedRounds
		pipe.SnapHits += st.SnapHits
		pipe.SnapMisses += st.SnapMisses
		if st.MaxInflight > pipe.MaxInflight {
			pipe.MaxInflight = st.MaxInflight
		}
	}
	if havePipe {
		g.Gauge("engine/inflight_depth").Set(float64(pipe.MaxInflight))
		g.Gauge("engine/pipelined_batches").Set(float64(pipe.PipelinedRounds))
		g.Gauge("engine/snap_hits").Set(float64(pipe.SnapHits))
		g.Gauge("engine/snap_misses").Set(float64(pipe.SnapMisses))
	}
	if o.pool != nil {
		st := o.pool.Stats()
		g.Gauge("pool/workers").Set(float64(st.Workers))
		g.Gauge("pool/submitted").Set(float64(st.Submitted))
		g.Gauge("pool/executed").Set(float64(st.Executed))
		g.Gauge("pool/helped").Set(float64(st.Helped))
		g.Gauge("pool/steals").Set(float64(st.Stolen))
		g.Gauge("pool/migrations").Set(float64(st.Migrations))
		g.Gauge("pool/worker_busy_ms").Set(float64(st.WorkerBusy) / float64(time.Millisecond))
		g.Gauge("pool/helper_busy_ms").Set(float64(st.HelperBusy) / float64(time.Millisecond))
	}
	if probe != nil {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		g.Histogram("probe/sim_wait_ms", probeWaitBounds...).Observe(ms(probe.SimWait))
		g.Histogram("probe/learn_wait_ms", probeWaitBounds...).Observe(ms(probe.LearnWait))
		g.Histogram("probe/barrier_wait_ms", probeWaitBounds...).Observe(ms(probe.BarrierWait))
		g.Histogram("probe/spread_ms", probeWaitBounds...).Observe(ms(probe.Spread))
	}
}

// plateauOf recomputes the zero-new-coverage plateau counter from a
// merged trajectory: merged coverage is strictly monotone in hit
// bins, so a round added nothing exactly when its coverage equals the
// previous round's (round 0 compares against zero). Resume uses this
// so Config.UpdateBudget decisions replay bit-identically without
// checkpointing the counter.
func plateauOf(merged []core.ProgressPoint) int {
	p := 0
	for i := len(merged) - 1; i >= 0; i-- {
		prev := 0.0
		if i > 0 {
			prev = merged[i-1].Coverage
		}
		if merged[i].Coverage != prev {
			break
		}
		p++
	}
	return p
}

// reward squashes a shard-round's coverage rate (new merged bins per
// virtual hour) — and, when MismatchWeight is set, its mismatch
// novelty rate (new non-filtered detector signatures per virtual
// hour) — into the bandit's [0, 1) reward. RewardHalf and
// MismatchHalf are the half-saturation points of the two terms.
func (c Config) reward(covRate, misRate float64) float64 {
	r := covRate / (covRate + c.RewardHalf)
	// Without detection misRate is identically zero; skipping the blend
	// (rather than scaling the coverage term by 1-w against a constant
	// zero) keeps MismatchWeight a true no-op then, as documented.
	if w := c.MismatchWeight; w > 0 && c.Detect {
		if w > 1 {
			w = 1
		}
		r = (1-w)*r + w*misRate/(misRate+c.MismatchHalf)
	}
	return r
}

// syncPools builds the fleet-wide mutation pool and hands it back to
// every shard's TheHuzz arm — the distributed-fuzzing corpus sync,
// plus EnFuzz-style cross-generator seeding: the pool merges (a) every
// shard's existing TheHuzz pool and (b) every program any arm produced
// this round that bought fleet-new coverage (drained from the
// recorders). A lone shard only deepens its pool on the rounds the
// bandit assigns it TheHuzz; after syncing, every shard mutates from a
// pool fed by the full fleet throughput and by every generator's
// discoveries. Deterministic: shards are visited in order and the
// merge reuses TheHuzz's own (score, age) ordering.
func (o *Orchestrator) syncPools() {
	var gens []*huzzArm
	var all []thehuzz.PoolEntry
	// Post-sync pools are identical across shards, so collecting them
	// all would add Shards-1 duplicate copies of every entry and — once
	// truncated to PoolCap — collapse pool diversity by the shard
	// count. Dedupe by body while gathering.
	seen := make(map[string]bool)
	add := func(e thehuzz.PoolEntry) {
		k := bodyKey(e.Body)
		if !seen[k] {
			seen[k] = true
			all = append(all, e)
		}
	}
	for _, s := range o.shards {
		for _, a := range s.arms {
			if ha, ok := a.(*huzzArm); ok {
				gens = append(gens, ha)
				for _, e := range ha.Gen.State().Pool {
					add(e)
				}
			}
		}
	}
	if len(gens) == 0 {
		return
	}
	for _, s := range o.shards {
		for _, r := range s.rec {
			for _, e := range r.drain() {
				e.Age = o.round + 1
				add(e)
			}
		}
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		return all[a].Age > all[b].Age
	})
	if cap := gens[0].Gen.PoolCap; len(all) > cap {
		all = all[:cap]
	}
	for _, g := range gens {
		g.Gen.SetState(thehuzz.State{Round: o.round + 1, Pool: all})
	}
}

// bodyKey renders a program body as a map key for pool deduplication.
func bodyKey(body []uint32) string {
	buf := make([]byte, 4*len(body))
	for i, w := range body {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	return string(buf)
}

// RunRounds executes n scheduling rounds, stopping at the first
// barrier failure.
func (o *Orchestrator) RunRounds(n int) error {
	for i := 0; i < n; i++ {
		if err := o.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

// RunTests runs rounds until the fleet has executed at least n tests,
// stopping at the first barrier failure.
func (o *Orchestrator) RunTests(n int) error {
	for o.tests < n {
		if err := o.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

// Coverage returns the fleet's merged condition-coverage percentage.
// In a mixed fleet this aggregates across designs: hit bins over total
// bins, summed over every design's merged bitmap.
func (o *Orchestrator) Coverage() float64 {
	hit, total := 0, 0
	for _, n := range o.names {
		g := o.globals[n]
		hit += g.Count()
		total += g.Space().NumBins()
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(total)
}

// DesignCoverage returns one design's merged coverage percentage, or
// -1 if no shard simulates that design.
func (o *Orchestrator) DesignCoverage(name string) float64 {
	g, ok := o.globals[name]
	if !ok {
		return -1
	}
	return g.Percent()
}

// Designs returns the sorted design names the fleet simulates.
func (o *Orchestrator) Designs() []string {
	out := make([]string, len(o.names))
	copy(out, o.names)
	return out
}

// CoverageAt returns the fleet's merged coverage at a virtual time
// (the last round barrier at or before hours), for equal-virtual-time
// comparisons between fleets whose clocks advance at different rates.
func (o *Orchestrator) CoverageAt(hours float64) float64 {
	last := 0.0
	for _, pt := range o.merged {
		if pt.Hours > hours {
			break
		}
		last = pt.Coverage
	}
	return last
}

// LearnedWeights returns a copy of a learning arm's current published
// model weights — the vector every replica's sampling model holds, one
// round behind training per the fleetlearn staging invariant — or nil
// if no arm of that name learns. Valid between rounds.
func (o *Orchestrator) LearnedWeights(name string) []float64 {
	for i, sp := range o.specs {
		if sp.Name == name && o.fleets[i] != nil {
			return o.fleets[i].Weights()
		}
	}
	return nil
}

// Tests returns the total tests executed across all shards.
func (o *Orchestrator) Tests() int { return o.tests }

// Rounds returns the number of completed scheduling rounds.
func (o *Orchestrator) Rounds() int { return o.round }

// Hours returns fleet virtual time: the maximum over shard clocks.
func (o *Orchestrator) Hours() float64 {
	h := 0.0
	for _, s := range o.shards {
		if sh := s.fuz.Clk.Hours(); sh > h {
			h = sh
		}
	}
	return h
}

// Trajectory returns the merged coverage trajectory, one point per
// round (the fleet-level series behind Fig. 2-style curves).
func (o *Orchestrator) Trajectory() []core.ProgressPoint {
	out := make([]core.ProgressPoint, len(o.merged))
	copy(out, o.merged)
	return out
}

// Shard returns shard i's fuzzer, for inspection (mismatch reports,
// per-shard coverage). Mutating it mid-campaign voids determinism.
func (o *Orchestrator) Shard(i int) *core.Fuzzer { return o.shards[i].fuz }

// ArmReport is one arm's scheduling statistics.
type ArmReport struct {
	Name string
	// Pulls is how many shard-rounds the bandit allocated to the arm.
	Pulls int
	// MeanReward is the arm's empirical mean normalized reward.
	MeanReward float64
}

// DesignReport is one design's merged coverage in a (possibly mixed)
// fleet.
type DesignReport struct {
	Name string
	// Shards is how many shards simulate this design.
	Shards int
	// Coverage is the design's fleet-merged condition coverage %.
	Coverage float64
}

// Report summarises the fleet run.
type Report struct {
	Shards   int
	Rounds   int
	Tests    int
	Hours    float64
	Coverage float64
	// Designs lists per-design merged coverage, sorted by name.
	Designs []DesignReport
	Arms    []ArmReport
}

// Report returns the fleet summary, including per-arm pull counts.
func (o *Orchestrator) Report() Report {
	r := Report{
		Shards:   len(o.shards),
		Rounds:   o.round,
		Tests:    o.tests,
		Hours:    o.Hours(),
		Coverage: o.Coverage(),
	}
	for _, n := range o.names {
		nShards := 0
		for _, d := range o.designs {
			if d == n {
				nShards++
			}
		}
		r.Designs = append(r.Designs, DesignReport{
			Name:     n,
			Shards:   nShards,
			Coverage: o.globals[n].Percent(),
		})
	}
	for i, sp := range o.specs {
		r.Arms = append(r.Arms, ArmReport{
			Name:       sp.Name,
			Pulls:      o.bandit.Pulls[i],
			MeanReward: o.bandit.Mean(i),
		})
	}
	return r
}

// String renders the report as a small table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d shards, %d rounds, %d tests, %.2f virtual h, merged coverage %.2f%%\n",
		r.Shards, r.Rounds, r.Tests, r.Hours, r.Coverage)
	if len(r.Designs) > 1 {
		for _, d := range r.Designs {
			fmt.Fprintf(&b, "  %-8s %d shards, merged coverage %.2f%%\n", d.Name, d.Shards, d.Coverage)
		}
	}
	fmt.Fprintf(&b, "%-14s %6s %12s\n", "arm", "pulls", "mean reward")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-14s %6d %12.3f\n", a.Name, a.Pulls, a.MeanReward)
	}
	return b.String()
}
