package campaign

// Fleet-level tests for the batch execution engine and heterogeneous
// (mixed-design) campaigns.

import (
	"bytes"
	"strings"
	"testing"

	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
)

func newBoom() rtl.DUT { return boom.New() }

// TestEngineFleetCheckpointMatchesSerial is the acceptance property of
// the execution engine at fleet scope: a fixed-seed run produces a
// byte-identical checkpoint (trajectory, bandit state, per-shard
// clocks and bitmaps) whether shards execute on the engine or on the
// reference fork-join loop.
func TestEngineFleetCheckpointMatchesSerial(t *testing.T) {
	checkpoint := func(serial bool) []byte {
		o, err := New(Config{Shards: 3, BatchSize: 8, Seed: 21, Detect: true, Serial: serial},
			newRocket, testArms()...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer o.Close()
		o.RunRounds(4)
		var buf bytes.Buffer
		if err := o.Checkpoint(&buf); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		return buf.Bytes()
	}
	eng := checkpoint(false)
	ser := checkpoint(true)
	if !bytes.Equal(eng, ser) {
		t.Errorf("engine checkpoint differs from serial checkpoint:\nengine: %s\nserial: %s", eng, ser)
	}
}

// TestShardEnginesUnderConcurrency runs a fleet whose shards each own
// a multi-worker engine with detection on — the maximum-concurrency
// shape — mainly for the -race CI job.
func TestShardEnginesUnderConcurrency(t *testing.T) {
	o, err := New(Config{Shards: 3, BatchSize: 8, Seed: 23, Detect: true, Parallel: 2},
		newRocket, testArms()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer o.Close()
	o.RunRounds(3)
	if o.Tests() != 3*3*8 {
		t.Errorf("fleet ran %d tests, want %d", o.Tests(), 3*3*8)
	}
	if o.Coverage() <= 0 {
		t.Error("no coverage accumulated")
	}
}

// TestMixedFleetTracksPerDesignCoverage: a Rocket+BOOM fleet keeps one
// merged bitmap per design, aggregates fleet coverage across both, and
// reports both designs.
func TestMixedFleetTracksPerDesignCoverage(t *testing.T) {
	o, err := NewMixed(Config{Shards: 4, BatchSize: 8, Seed: 25},
		[]func() rtl.DUT{newRocket, newBoom}, testArms()...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	defer o.Close()
	o.RunRounds(4)

	if got := o.Designs(); len(got) != 2 || got[0] != "boom" || got[1] != "rocket" {
		t.Fatalf("Designs() = %v, want [boom rocket]", got)
	}
	cr, cb := o.DesignCoverage("rocket"), o.DesignCoverage("boom")
	if cr <= 0 || cb <= 0 {
		t.Errorf("per-design coverage rocket=%.2f boom=%.2f, want both > 0", cr, cb)
	}
	if o.DesignCoverage("nonesuch") != -1 {
		t.Error("unknown design did not report -1")
	}
	if c := o.Coverage(); c <= 0 || c >= 100 {
		t.Errorf("aggregate coverage %.2f out of range", c)
	}
	rep := o.Report()
	if len(rep.Designs) != 2 || rep.Designs[0].Shards != 2 || rep.Designs[1].Shards != 2 {
		t.Errorf("report designs = %+v, want two designs with two shards each", rep.Designs)
	}
}

// TestMixedFleetCheckpointResume: pausing and resuming a heterogeneous
// fleet reproduces the uninterrupted trajectory bit-for-bit, and
// resuming with the wrong shard-to-design mapping fails loudly.
func TestMixedFleetCheckpointResume(t *testing.T) {
	duts := []func() rtl.DUT{newRocket, newBoom}
	cfg := Config{Shards: 4, BatchSize: 8, Seed: 27}

	full, err := NewMixed(cfg, duts, testArms()...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	defer full.Close()
	full.RunRounds(6)
	want := full.Trajectory()

	half, err := NewMixed(cfg, duts, testArms()...)
	if err != nil {
		t.Fatalf("NewMixed: %v", err)
	}
	defer half.Close()
	half.RunRounds(3)
	var buf bytes.Buffer
	if err := half.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ckpt := buf.Bytes()

	resumed, err := ResumeMixed(bytes.NewReader(ckpt), duts, testArms()...)
	if err != nil {
		t.Fatalf("ResumeMixed: %v", err)
	}
	defer resumed.Close()
	resumed.RunRounds(3)
	got := resumed.Trajectory()
	if len(got) != len(want) {
		t.Fatalf("trajectory has %d points after resume, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d differs after resume: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// Wrong design order must be rejected before any state is restored.
	if _, err := ResumeMixed(bytes.NewReader(ckpt), []func() rtl.DUT{newBoom, newRocket}, testArms()...); err == nil {
		t.Error("ResumeMixed accepted a swapped shard-to-design mapping")
	}
	// A homogeneous resume of a mixed checkpoint must fail too.
	if _, err := ResumeMixed(bytes.NewReader(ckpt), []func() rtl.DUT{newRocket}, testArms()...); err == nil {
		t.Error("ResumeMixed accepted a homogeneous fleet for a mixed checkpoint")
	}
}

// TestResumeReportsVersionMismatchCleanly: a v1-era checkpoint (whose
// Bins field was an int, not a map) must fail with the version message,
// not a raw JSON type error from the layout difference.
func TestResumeReportsVersionMismatchCleanly(t *testing.T) {
	v1 := []byte(`{"Version":1,"Config":{},"Round":3,"Tests":24,"Bins":1234,"Arms":[],"Global":[0]}`)
	_, err := Resume(bytes.NewReader(v1), newRocket, testArms()...)
	if err == nil || !strings.Contains(err.Error(), "version 1, want 4") {
		t.Errorf("v1 checkpoint: err = %v, want a version-mismatch message", err)
	}
}
