package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"chatfuzz/internal/atomicio"
	"chatfuzz/internal/core"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/rtl"
)

// checkpointVersion guards the JSON layout. Version 2 introduced
// heterogeneous fleets: per-design merged bitmaps (Globals keyed by
// design name) and the per-shard design list replace the single
// Global bitmap and Bins fingerprint of version 1. Version 3 added
// online fleet learning and cumulative detection: the barrier-averaged
// model weights of every learning arm (Learn) and each shard's
// clustered mismatch-detector state (shardState.Det). Version 4 moves
// learning off the barrier: Learn becomes a published/staged weight
// pair per arm — the sampling weights every replica holds plus the
// trained-but-unpublished merge in the one-round publication lag — so
// a fleet paused mid-lag resumes bit-exactly.
const checkpointVersion = 4

// checkpointFile is the serialized form of a paused fleet. Arms holds
// the arm signatures (name + parameters), which Resume validates so a
// mis-parameterised resume fails loudly instead of silently diverging.
// Generator rng state is deliberately absent: per-round seeds are a
// pure function of (Config.Seed, shard, round), so Round is enough to
// replay the remaining stream exactly. Execution details (the
// engine/serial switch) are likewise absent: the checkpoint captures
// scheduling state only, so it is byte-identical across execution
// paths.
type checkpointFile struct {
	Version int
	Config  Config
	Round   int
	Tests   int
	// Designs records each shard's DUT name, in shard order; Resume
	// validates it against the rebuilt fleet so a shard cannot silently
	// change design.
	Designs []string
	// Bins fingerprints each design's coverage space: the bitmap word
	// count alone cannot distinguish spaces whose bin counts round to
	// the same number of 64-bit words.
	Bins   map[string]int
	Arms   []string
	Bandit banditState
	// Globals holds the fleet-merged coverage bitmap of every design.
	Globals map[string][]uint64
	// Learn holds each learning arm's weight state, keyed by arm name.
	// Between rounds an arm's entire learning state collapses to the
	// learnState vector pair: training always restarts from a fresh
	// trainer over explicit weights, so no optimizer moments are
	// needed. Any in-flight off-barrier training is joined before
	// encoding, which is why checkpoints stay byte-identical across
	// the synchronous and off-barrier execution paths.
	Learn  map[string]learnState `json:",omitempty"`
	Merged []core.ProgressPoint
	Shards []shardState
}

// learnState is one learning arm's checkpointed weights
// (nn.EncodeWeights: base64 of the exact IEEE-754 bits, so resumed
// replicas start bit-identical).
type learnState struct {
	// Pub is the published sampling weights every replica holds.
	Pub string
	// Staged is the trained-but-unpublished pairwise merge awaiting
	// the next barrier — the fresh half of the one-round publication
	// lag. Empty when nothing is staged (no replica has trained since
	// the last publication).
	Staged string `json:",omitempty"`
}

type banditState struct {
	Pulls []int
	W     []float64
	Sums  []float64
	T     float64
}

type shardState struct {
	Tests   int
	Seconds float64
	Cov     []uint64
	// Arms holds per-arm checkpoint state, indexed like the specs;
	// nil for stateless arms.
	Arms []json.RawMessage
	// Det is the shard's mismatch-detector state (Detect fleets only),
	// so resumed fleets report cumulative findings.
	Det *mismatch.State `json:",omitempty"`
}

// Checkpoint serializes the fleet between rounds. The caller provides
// the writer; JSON is used so checkpoints stay diffable and float64
// fields round-trip exactly (Go marshals the shortest representation
// that parses back to the same value).
func (o *Orchestrator) Checkpoint(w io.Writer) error {
	cf := checkpointFile{
		Version: checkpointVersion,
		Config:  o.Cfg,
		Round:   o.round,
		Tests:   o.tests,
		Designs: o.designs,
		Bins:    make(map[string]int, len(o.names)),
		Bandit:  banditState{Pulls: o.bandit.Pulls, W: o.bandit.W, Sums: o.bandit.Sums, T: o.bandit.T},
		Globals: make(map[string][]uint64, len(o.names)),
		Merged:  o.merged,
	}
	for _, n := range o.names {
		cf.Bins[n] = o.globals[n].Space().NumBins()
		cf.Globals[n] = o.globals[n].Snapshot()
	}
	for i, sp := range o.specs {
		cf.Arms = append(cf.Arms, sp.sig)
		if fl := o.fleets[i]; fl != nil {
			if cf.Learn == nil {
				cf.Learn = make(map[string]learnState)
			}
			// Join any in-flight off-barrier training first, so the
			// staged half is final and the encoded bytes match what the
			// synchronous path would have written.
			fl.Sync()
			st := learnState{Pub: nn.EncodeWeights(fl.Weights())}
			if staged := fl.Staged(); staged != nil {
				st.Staged = nn.EncodeWeights(staged)
			}
			cf.Learn[sp.Name] = st
		}
	}
	for _, s := range o.shards {
		st := shardState{
			Tests:   s.fuz.Tests,
			Seconds: s.fuz.Clk.Seconds(),
			Cov:     s.fuz.Calc.Total().Snapshot(),
			Arms:    make([]json.RawMessage, len(s.arms)),
		}
		if s.fuz.Det != nil {
			det := s.fuz.Det.State()
			st.Det = &det
		}
		for i, a := range s.arms {
			if sa, ok := a.(statefulArm); ok {
				raw, err := sa.armState()
				if err != nil {
					return fmt.Errorf("campaign: checkpoint arm %q: %w", o.specs[i].Name, err)
				}
				st.Arms[i] = raw
			}
		}
		cf.Shards = append(cf.Shards, st)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cf)
}

// decodeCheckpoint reads a checkpoint, probing the version before the
// full strict decode: field layouts differ across versions (v1's Bins
// was an int, v2's is a map), so decoding the v2 struct directly
// against an old file would fail with a raw JSON type error and the
// helpful version-mismatch message would be unreachable.
func decodeCheckpoint(r io.Reader) (checkpointFile, error) {
	var cf checkpointFile
	raw, err := io.ReadAll(r)
	if err != nil {
		return cf, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var probe struct{ Version int }
	if err := json.Unmarshal(raw, &probe); err != nil {
		return cf, fmt.Errorf("campaign: decode checkpoint: %w", err)
	}
	if probe.Version != checkpointVersion {
		return cf, fmt.Errorf("campaign: checkpoint version %d, want %d", probe.Version, checkpointVersion)
	}
	if err := json.Unmarshal(raw, &cf); err != nil {
		return cf, fmt.Errorf("campaign: decode checkpoint: %w", err)
	}
	return cf, nil
}

// CheckpointFile writes a checkpoint to path, atomically and durably:
// the bytes are staged in a same-directory temp file, fsynced, renamed
// over path, and the directory entry is fsynced (internal/atomicio).
// A crash, kill -9 or full disk mid-write therefore leaves the
// previous checkpoint generation intact — path never holds a torn
// checkpoint — which is what lets the farm daemon resume any job from
// its last durable checkpoint no matter when the process died.
func (o *Orchestrator) CheckpointFile(path string) error {
	return atomicio.WriteFile(path, o.Checkpoint)
}

// Resume rebuilds a homogeneous fleet from a checkpoint. The caller
// supplies the same DUT constructor and arm specs as the original run
// (functions cannot be serialized); Resume validates the arm names
// against the checkpoint and restores bandit state, per-shard
// coverage, clocks and arm state, so the continued run's merged
// trajectory is bit-identical to an uninterrupted one.
func Resume(r io.Reader, newDUT func() rtl.DUT, specs ...ArmSpec) (*Orchestrator, error) {
	return ResumeMixed(r, []func() rtl.DUT{newDUT}, specs...)
}

// ResumeMixed rebuilds a (possibly heterogeneous) fleet from a
// checkpoint; newDUTs must reproduce the original shard-to-design
// mapping (shard s gets newDUTs[s % len(newDUTs)]), which is validated
// against the checkpoint's per-shard design names.
func ResumeMixed(r io.Reader, newDUTs []func() rtl.DUT, specs ...ArmSpec) (*Orchestrator, error) {
	cf, err := decodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if len(cf.Arms) != len(specs) {
		return nil, fmt.Errorf("campaign: checkpoint has %d arms, got %d specs", len(cf.Arms), len(specs))
	}
	for i, sig := range cf.Arms {
		if specs[i].sig != sig {
			return nil, fmt.Errorf("campaign: arm %d is %q in checkpoint, %q in specs", i, sig, specs[i].sig)
		}
	}
	o, err := NewMixed(cf.Config, newDUTs, specs...)
	if err != nil {
		return nil, err
	}
	// The fleet's shard engines are already running; release them if
	// any of the validations below rejects the checkpoint.
	restored := false
	defer func() {
		if !restored {
			o.Close()
		}
	}()
	if len(cf.Designs) != len(o.designs) {
		return nil, fmt.Errorf("campaign: checkpoint has %d shard designs, config builds %d", len(cf.Designs), len(o.designs))
	}
	for i, want := range cf.Designs {
		if o.designs[i] != want {
			return nil, fmt.Errorf("campaign: shard %d is design %q in checkpoint but %q here — resume with the original DUT constructors", i, want, o.designs[i])
		}
	}
	for _, n := range o.names {
		if bins := o.globals[n].Space().NumBins(); bins != cf.Bins[n] {
			return nil, fmt.Errorf("campaign: checkpoint was taken against a %q DUT with %d coverage bins, this one has %d — resume with the original DUT constructor", n, cf.Bins[n], bins)
		}
	}
	if len(cf.Shards) != len(o.shards) {
		return nil, fmt.Errorf("campaign: checkpoint has %d shards, config builds %d", len(cf.Shards), len(o.shards))
	}
	if len(cf.Bandit.Pulls) != len(specs) || len(cf.Bandit.W) != len(specs) || len(cf.Bandit.Sums) != len(specs) {
		return nil, fmt.Errorf("campaign: bandit state sized for %d/%d/%d arms, want %d",
			len(cf.Bandit.Pulls), len(cf.Bandit.W), len(cf.Bandit.Sums), len(specs))
	}
	o.round = cf.Round
	o.tests = cf.Tests
	o.merged = cf.Merged
	o.bandit.Pulls = cf.Bandit.Pulls
	o.bandit.W = cf.Bandit.W
	o.bandit.Sums = cf.Bandit.Sums
	o.bandit.T = cf.Bandit.T
	for _, n := range o.names {
		if err := o.globals[n].LoadSnapshot(cf.Globals[n]); err != nil {
			return nil, fmt.Errorf("campaign: global coverage for %q: %w", n, err)
		}
	}
	for si, st := range cf.Shards {
		s := o.shards[si]
		s.fuz.Tests = st.Tests
		s.fuz.Clk.SetSeconds(st.Seconds)
		if err := s.fuz.Calc.RestoreTotal(st.Cov); err != nil {
			return nil, fmt.Errorf("campaign: shard %d coverage: %w", si, err)
		}
		if len(st.Arms) != len(s.arms) {
			return nil, fmt.Errorf("campaign: shard %d has %d arm states, want %d", si, len(st.Arms), len(s.arms))
		}
		for ai, raw := range st.Arms {
			// Stateless arms checkpoint as JSON null.
			if len(raw) == 0 || string(raw) == "null" {
				continue
			}
			sa, ok := s.arms[ai].(statefulArm)
			if !ok {
				return nil, fmt.Errorf("campaign: arm %q carries state but is stateless", specs[ai].Name)
			}
			if err := sa.armRestore(raw); err != nil {
				return nil, fmt.Errorf("campaign: restore arm %q: %w", specs[ai].Name, err)
			}
		}
		if st.Det != nil {
			if s.fuz.Det == nil {
				return nil, fmt.Errorf("campaign: shard %d checkpointed detector state but detection is off", si)
			}
			s.fuz.Det.SetState(*st.Det)
		}
	}
	for i, sp := range o.specs {
		if o.fleets[i] == nil {
			continue
		}
		st, ok := cf.Learn[sp.Name]
		if !ok {
			// Arm signatures matched, so this can only be a hand-edited
			// or corrupted file; fail instead of silently restarting the
			// arm from the pipeline's offline weights.
			return nil, fmt.Errorf("campaign: checkpoint carries no weights for learning arm %q", sp.Name)
		}
		w, err := nn.DecodeWeights(st.Pub)
		if err != nil {
			return nil, fmt.Errorf("campaign: weights for learning arm %q: %w", sp.Name, err)
		}
		if err := o.fleets[i].SetWeights(w); err != nil {
			return nil, fmt.Errorf("campaign: restore learning arm %q: %w", sp.Name, err)
		}
		if st.Staged != "" {
			sw, err := nn.DecodeWeights(st.Staged)
			if err != nil {
				return nil, fmt.Errorf("campaign: staged weights for learning arm %q: %w", sp.Name, err)
			}
			if err := o.fleets[i].SetStaged(sw); err != nil {
				return nil, fmt.Errorf("campaign: restore staged weights for arm %q: %w", sp.Name, err)
			}
		}
	}
	// Replay the update-budget plateau counter from the restored
	// trajectory, so Config.UpdateBudget skip decisions continue
	// bit-identically to the uninterrupted run.
	o.plateau = plateauOf(o.merged)
	restored = true
	return o, nil
}

// CheckpointInfo summarises a checkpoint's envelope.
type CheckpointInfo struct {
	Config Config
	Round  int
	Tests  int
	// Designs records each shard's DUT name, in shard order.
	Designs []string
	// Bins fingerprints each design's coverage space.
	Bins map[string]int
	// Arms holds the arm signatures (name + parameters).
	Arms []string
}

// ReadCheckpointInfo decodes a checkpoint's envelope without
// rebuilding the fleet, so callers can fail fast on a bad file before
// doing expensive work (such as training an LLM arm's pipeline).
func ReadCheckpointInfo(path string) (CheckpointInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return CheckpointInfo{}, err
	}
	defer f.Close()
	cf, err := decodeCheckpoint(f)
	if err != nil {
		return CheckpointInfo{}, err
	}
	return CheckpointInfo{Config: cf.Config, Round: cf.Round, Tests: cf.Tests, Designs: cf.Designs, Bins: cf.Bins, Arms: cf.Arms}, nil
}

// ResumeFile reads a checkpoint from path.
func ResumeFile(path string, newDUT func() rtl.DUT, specs ...ArmSpec) (*Orchestrator, error) {
	return ResumeMixedFile(path, []func() rtl.DUT{newDUT}, specs...)
}

// ResumeMixedFile reads a heterogeneous-fleet checkpoint from path.
func ResumeMixedFile(path string, newDUTs []func() rtl.DUT, specs ...ArmSpec) (*Orchestrator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ResumeMixed(f, newDUTs, specs...)
}
