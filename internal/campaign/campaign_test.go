package campaign

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/core"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

const testBody = 16

func testArms() []ArmSpec {
	return []ArmSpec{TheHuzzArm(testBody), RandInstArm(testBody), RandFuzzArm(testBody)}
}

func newRocket() rtl.DUT { return rocket.New() }

func mustNew(t *testing.T, cfg Config) *Orchestrator {
	t.Helper()
	o, err := New(cfg, newRocket, testArms()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o
}

// TestFourShardsBeatSingleCampaignAtEqualBudget is the headline
// property: a 4-shard fleet spending the same total test budget as one
// TheHuzz campaign reaches at least the single campaign's merged
// coverage. Single-campaign coverage has high seed variance (~65-72%
// at this budget), so the fleet is compared against the median over
// five single-campaign seeds rather than one lucky or unlucky draw;
// everything here is deterministic, the median just removes the
// arbitrariness of picking one comparison seed.
func TestFourShardsBeatSingleCampaignAtEqualBudget(t *testing.T) {
	const budget = 640
	o, err := New(Config{Shards: 4, BatchSize: 16, Seed: 1}, newRocket,
		TheHuzzArm(testBody), RandInstArm(testBody))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	o.RunTests(budget)
	if o.Tests() < budget {
		t.Fatalf("fleet ran %d tests, want >= %d", o.Tests(), budget)
	}

	var singles []float64
	for seed := int64(1); seed <= 5; seed++ {
		single := core.NewFuzzer(thehuzz.New(seed, testBody), rocket.New(), core.Options{BatchSize: 16})
		single.RunTests(budget)
		singles = append(singles, single.Coverage())
	}
	sort.Float64s(singles)
	median := singles[len(singles)/2]

	if o.Coverage() < median {
		t.Errorf("merged fleet coverage %.2f%% < median single-campaign %.2f%% at equal budget %d (singles: %v)",
			o.Coverage(), median, budget, singles)
	}
}

func TestReportExposesBanditPulls(t *testing.T) {
	const shards, rounds = 4, 6
	o := mustNew(t, Config{Shards: shards, BatchSize: 8, Seed: 2})
	o.RunRounds(rounds)

	rep := o.Report()
	if len(rep.Arms) != 3 {
		t.Fatalf("report has %d arms, want 3", len(rep.Arms))
	}
	total := 0
	for _, a := range rep.Arms {
		if a.Pulls == 0 {
			t.Errorf("arm %q was never pulled: UCB1 must try every arm", a.Name)
		}
		if a.MeanReward < 0 || a.MeanReward > 1 {
			t.Errorf("arm %q mean reward %.3f outside [0,1]", a.Name, a.MeanReward)
		}
		total += a.Pulls
	}
	if total != shards*rounds {
		t.Errorf("pulls sum to %d, want shards*rounds = %d", total, shards*rounds)
	}
	s := rep.String()
	for _, name := range []string{"thehuzz", "randinst", "randfuzz"} {
		if !strings.Contains(s, name) {
			t.Errorf("report string missing arm %q:\n%s", name, s)
		}
	}
}

func TestTrajectoryIsMonotone(t *testing.T) {
	o := mustNew(t, Config{Shards: 2, BatchSize: 8, Seed: 3})
	o.RunRounds(5)
	traj := o.Trajectory()
	if len(traj) != 5 {
		t.Fatalf("trajectory has %d points, want 5", len(traj))
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].Coverage < traj[i-1].Coverage {
			t.Errorf("coverage decreased at round %d: %.4f -> %.4f", i, traj[i-1].Coverage, traj[i].Coverage)
		}
		if traj[i].Tests <= traj[i-1].Tests {
			t.Errorf("tests not increasing at round %d", i)
		}
		if traj[i].Hours <= traj[i-1].Hours {
			t.Errorf("fleet hours not increasing at round %d", i)
		}
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	a := mustNew(t, Config{Shards: 3, BatchSize: 8, Seed: 7})
	b := mustNew(t, Config{Shards: 3, BatchSize: 8, Seed: 7})
	a.RunRounds(6)
	b.RunRounds(6)
	ta, tb := a.Trajectory(), b.Trajectory()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("round %d differs across identical runs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

// TestCheckpointResumeReproducesTrajectory: pausing after 5 rounds and
// resuming must yield a merged trajectory bit-identical to the
// uninterrupted 10-round run, including bandit state.
func TestCheckpointResumeReproducesTrajectory(t *testing.T) {
	cfg := Config{Shards: 4, BatchSize: 8, Seed: 11}

	full := mustNew(t, cfg)
	full.RunRounds(10)
	want := full.Trajectory()

	half := mustNew(t, cfg)
	half.RunRounds(5)
	var buf bytes.Buffer
	if err := half.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	resumed, err := Resume(&buf, newRocket, testArms()...)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	resumed.RunRounds(5)
	got := resumed.Trajectory()

	if len(got) != len(want) {
		t.Fatalf("trajectory has %d points after resume, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d differs after resume: got %+v, want %+v", i, got[i], want[i])
		}
	}

	fr, rr := full.Report(), resumed.Report()
	for i := range fr.Arms {
		if fr.Arms[i].Pulls != rr.Arms[i].Pulls {
			t.Errorf("arm %q pulls %d after resume, want %d",
				fr.Arms[i].Name, rr.Arms[i].Pulls, fr.Arms[i].Pulls)
		}
		if fr.Arms[i].MeanReward != rr.Arms[i].MeanReward {
			t.Errorf("arm %q mean reward %v after resume, want %v",
				fr.Arms[i].Name, rr.Arms[i].MeanReward, fr.Arms[i].MeanReward)
		}
	}
	if full.Coverage() != resumed.Coverage() {
		t.Errorf("coverage %.4f after resume, want %.4f", resumed.Coverage(), full.Coverage())
	}
}

func TestResumeValidatesArmSpecs(t *testing.T) {
	o := mustNew(t, Config{Shards: 2, BatchSize: 8, Seed: 5})
	o.RunRounds(2)
	var buf bytes.Buffer
	if err := o.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := Resume(bytes.NewReader(buf.Bytes()), newRocket, RandInstArm(testBody)); err == nil {
		t.Error("Resume accepted a mismatched arm count")
	}
	if _, err := Resume(bytes.NewReader(buf.Bytes()), newRocket,
		RandInstArm(testBody), TheHuzzArm(testBody), RandFuzzArm(testBody)); err == nil {
		t.Error("Resume accepted reordered arm names")
	}
	if _, err := Resume(bytes.NewReader(buf.Bytes()), newRocket,
		TheHuzzArm(testBody+1), RandInstArm(testBody), RandFuzzArm(testBody)); err == nil {
		t.Error("Resume accepted an arm with a different body length: the resumed trajectory would silently diverge")
	}
}

func TestResumeRejectsDifferentDUT(t *testing.T) {
	o := mustNew(t, Config{Shards: 2, BatchSize: 8, Seed: 5})
	o.RunRounds(1)
	var buf bytes.Buffer
	if err := o.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	_, err := Resume(&buf, func() rtl.DUT { return boom.New() }, testArms()...)
	if err == nil || !strings.Contains(err.Error(), "design") {
		t.Errorf("Resume against a different DUT: err = %v, want per-shard design mismatch", err)
	}
}

func TestReadCheckpointInfo(t *testing.T) {
	o := mustNew(t, Config{Shards: 2, BatchSize: 8, Seed: 5})
	o.RunRounds(3)
	path := t.TempDir() + "/fleet.json"
	if err := o.CheckpointFile(path); err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	info, err := ReadCheckpointInfo(path)
	if err != nil {
		t.Fatalf("ReadCheckpointInfo: %v", err)
	}
	if info.Round != 3 || info.Tests != o.Tests() || len(info.Arms) != 3 {
		t.Errorf("info = %+v, want round 3, %d tests, 3 arms", info, o.Tests())
	}
	if _, err := ReadCheckpointInfo(path + ".missing"); err == nil {
		t.Error("ReadCheckpointInfo accepted a missing file")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}, newRocket); err == nil {
		t.Error("New accepted zero arms")
	}
	if _, err := New(Config{}, newRocket, RandInstArm(8), RandInstArm(8)); err == nil {
		t.Error("New accepted duplicate arm names")
	}
}

// TestLLMArmSchedules wires an (untrained, tiny) pipeline in as an arm
// to exercise the model-backed generation path and its checkpoint
// round trip; model quality is irrelevant to the mechanics.
func TestLLMArmSchedules(t *testing.T) {
	cfg := core.TestPipelineConfig()
	p := core.NewPipeline(cfg)
	arms := []ArmSpec{LLMArm(p), RandInstArm(cfg.BodyInstrs)}

	o, err := New(Config{Shards: 2, BatchSize: 4, Seed: 13}, newRocket, arms...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	o.RunRounds(2)
	rep := o.Report()
	if rep.Arms[0].Name != "chatfuzz" || rep.Arms[0].Pulls == 0 {
		t.Errorf("LLM arm not scheduled: %+v", rep.Arms)
	}

	var buf bytes.Buffer
	if err := o.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	resumed, err := Resume(&buf, newRocket, arms...)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	resumed.RunRounds(1)
	if resumed.Rounds() != 3 {
		t.Errorf("resumed fleet at round %d, want 3", resumed.Rounds())
	}
}
