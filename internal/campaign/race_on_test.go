//go:build race

package campaign

// raceEnabled lets wall-clock-heavy determinism tables trim their
// largest shard counts under the race detector, which slows the tiny
// LLM arm's generation by an order of magnitude. The full tables
// always run in the regular suite.
const raceEnabled = true
