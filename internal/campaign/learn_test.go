package campaign

import (
	"bytes"
	"math"
	"testing"

	"chatfuzz/internal/core"
)

// learnPipeline builds the tiny untrained pipeline the learning-arm
// tests share (model quality is irrelevant to the mechanics; weight
// initialisation is seeded, so two builds are bit-identical).
func learnPipeline() *core.Pipeline {
	return core.NewPipeline(core.TestPipelineConfig())
}

func learnArms(p *core.Pipeline) []ArmSpec {
	return []ArmSpec{LearningLLMArm(p), RandInstArm(p.Cfg.BodyInstrs)}
}

// TestBarrierAveragingSynchronizesReplicas: after any round, every
// shard's replica must hold the same merged weights (the barrier
// redistributes to participants and bystanders alike), and the
// pipeline's own model must stay bit-untouched — replicas are copies,
// not views.
func TestBarrierAveragingSynchronizesReplicas(t *testing.T) {
	p := learnPipeline()
	before := p.Model.FlattenParams(nil)

	o, err := New(Config{Shards: 3, BatchSize: 4, Seed: 17}, newRocket, learnArms(p)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer o.Close()
	o.RunRounds(3)

	if o.Report().Arms[0].Pulls == 0 {
		t.Fatal("learning arm was never scheduled")
	}
	fl := o.fleets[0]
	if fl == nil {
		t.Fatal("learning arm has no fleet")
	}
	w0 := fl.Replica(0).Model.FlattenParams(nil)
	for ri := 1; ri < fl.Replicas(); ri++ {
		w := fl.Replica(ri).Model.FlattenParams(nil)
		for i := range w0 {
			if math.Float64bits(w[i]) != math.Float64bits(w0[i]) {
				t.Fatalf("replica %d scalar %d differs from replica 0 between rounds", ri, i)
			}
		}
	}
	moved := false
	for i, v := range w0 {
		if v != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("replicas never moved: online learning did not step")
	}
	for i, v := range p.Model.FlattenParams(nil) {
		if v != before[i] {
			t.Fatal("pipeline base model mutated by fleet learning")
		}
	}
	if got := o.LearnedWeights("chatfuzz-learn"); len(got) != len(w0) {
		t.Errorf("LearnedWeights returned %d scalars, want %d", len(got), len(w0))
	}
	if o.LearnedWeights("randinst") != nil {
		t.Error("LearnedWeights returned weights for a non-learning arm")
	}
}

// TestLearningResumeBitIdentity is the acceptance property: pausing a
// learning+detecting fleet mid-campaign and resuming — with a freshly
// rebuilt pipeline, as a new process would — must reproduce the
// uninterrupted run's trajectory, detector reports, and merged model
// weights bit-for-bit.
func TestLearningResumeBitIdentity(t *testing.T) {
	cfg := Config{Shards: 2, BatchSize: 4, Seed: 19, Detect: true}

	pFull := learnPipeline()
	full, err := New(cfg, newRocket, learnArms(pFull)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer full.Close()
	full.RunRounds(6)

	pHalf := learnPipeline()
	half, err := New(cfg, newRocket, learnArms(pHalf)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	half.RunRounds(3)
	var buf bytes.Buffer
	if err := half.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	half.Close()

	pRes := learnPipeline() // a new process: same training, new memory
	resumed, err := Resume(&buf, newRocket, learnArms(pRes)...)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer resumed.Close()
	resumed.RunRounds(3)

	want, got := full.Trajectory(), resumed.Trajectory()
	if len(got) != len(want) {
		t.Fatalf("trajectory has %d points after resume, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d differs after resume: got %+v, want %+v", i, got[i], want[i])
		}
	}

	ww, gw := full.LearnedWeights("chatfuzz-learn"), resumed.LearnedWeights("chatfuzz-learn")
	if len(ww) != len(gw) {
		t.Fatalf("weights have %d scalars after resume, want %d", len(gw), len(ww))
	}
	for i := range ww {
		if math.Float64bits(ww[i]) != math.Float64bits(gw[i]) {
			t.Fatalf("weight scalar %d not bit-identical after resume: %x vs %x",
				i, math.Float64bits(gw[i]), math.Float64bits(ww[i]))
		}
	}

	for s := 0; s < cfg.Shards; s++ {
		fr, rr := full.Shard(s).Det.Report(), resumed.Shard(s).Det.Report()
		if fr != rr {
			t.Errorf("shard %d detector report differs after resume:\n%s\nvs\n%s", s, rr, fr)
		}
		if resumed.Shard(s).Det.Tests != full.Shard(s).Det.Tests {
			t.Errorf("shard %d detector saw %d tests after resume, want %d (cumulative across the pause)",
				s, resumed.Shard(s).Det.Tests, full.Shard(s).Det.Tests)
		}
	}
}

// TestResumeRejectsCheckpointWithoutLearnWeights: arm signatures can
// match while the Learn section is missing only on a corrupted or
// hand-edited file — that must fail loudly, not silently restart the
// arm from offline weights.
func TestResumeRejectsCheckpointWithoutLearnWeights(t *testing.T) {
	p := learnPipeline()
	o, err := New(Config{Shards: 2, BatchSize: 4, Seed: 23}, newRocket, learnArms(p)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	o.RunRounds(1)
	var buf bytes.Buffer
	if err := o.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	o.Close()

	mangled := bytes.Replace(buf.Bytes(), []byte(`"Learn"`), []byte(`"Lrn__"`), 1)
	if bytes.Equal(mangled, buf.Bytes()) {
		t.Fatal("checkpoint has no Learn section to mangle")
	}
	if _, err := Resume(bytes.NewReader(mangled), newRocket, learnArms(learnPipeline())...); err == nil {
		t.Error("Resume accepted a learning-arm checkpoint without weights")
	}
}

// TestRewardMixesMismatchRate: table-driven check of the bandit reward
// blend behind Config.MismatchWeight.
func TestRewardMixesMismatchRate(t *testing.T) {
	base := Config{RewardHalf: 60, MismatchHalf: 30, Detect: true}
	cases := []struct {
		name    string
		weight  float64
		covRate float64
		misRate float64
		detect  bool
		want    float64
	}{
		{"coverage only by default", 0, 60, 1e9, true, 0.5},
		{"pure mismatch at weight 1", 1, 1e9, 30, true, 0.5},
		{"even blend", 0.5, 60, 30, true, 0.5},
		{"zero rates", 0.5, 0, 0, true, 0},
		{"weight clamped to 1", 5, 0, 30, true, 0.5},
		{"no-op without detection", 0.5, 60, 30, false, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.MismatchWeight = tc.weight
			cfg.Detect = tc.detect
			if got := cfg.reward(tc.covRate, tc.misRate); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("reward(%v, %v) = %v, want %v", tc.covRate, tc.misRate, got, tc.want)
			}
		})
	}
}
