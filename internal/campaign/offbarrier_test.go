package campaign

// Tests for the off-barrier learning plane: barrier error propagation,
// the SimWait/LearnWait probe split's migration-delta helper, the
// plateau counter behind Config.UpdateBudget, and checkpoint-v4 resume
// taken mid-lag (between a weight publication and the in-flight
// training it overlaps).

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"chatfuzz/internal/core"
	"chatfuzz/internal/cov"
)

// TestBarrierMergeErrorPropagates: a shard whose coverage space has
// diverged from the fleet global (corrupted state — never a healthy
// run) must surface as an error from RunRound, not a panic that kills
// a long-lived fleet process, and must poison subsequent Run* calls.
func TestBarrierMergeErrorPropagates(t *testing.T) {
	o := mustNew(t, Config{Shards: 2, BatchSize: 4, Seed: 41})
	defer o.Close()
	if err := o.RunRound(); err != nil {
		t.Fatalf("healthy round: %v", err)
	}

	// Swap the fleet-global set for one from a deliberately mismatched
	// space: 33 extra points = 66 extra bins, guaranteeing a different
	// snapshot word count whatever the real design's bin count is.
	bad := cov.NewSpace()
	for i := 0; i < o.globals[o.designs[0]].Space().NumPoints()+33; i++ {
		bad.Define(fmt.Sprintf("p%d", i))
	}
	o.globals[o.designs[0]] = bad.NewSet()

	err := o.RunRound()
	if err == nil {
		t.Fatal("RunRound accepted a diverged coverage space")
	}
	if !strings.Contains(err.Error(), "coverage space diverged") {
		t.Errorf("err = %v, want a coverage-space message", err)
	}
	if err2 := o.RunRound(); err2 != err {
		t.Errorf("poisoned RunRound returned %v, want the original %v", err2, err)
	}
	if err2 := o.RunRounds(3); err2 != err {
		t.Errorf("poisoned RunRounds returned %v, want the original %v", err2, err)
	}
	if err2 := o.RunTests(1 << 20); err2 != err {
		t.Errorf("poisoned RunTests returned %v, want the original %v", err2, err)
	}
}

// TestMigrationDeltaKeepsStableKeys: the per-round migration delta
// must keep every design key of the cumulative counter — including
// zero-delta rounds — so summary key sets cannot flicker between
// rounds (the old `d > 0` filter dropped quiet designs).
func TestMigrationDeltaKeepsStableKeys(t *testing.T) {
	cases := []struct {
		name      string
		cur, prev map[string]int
		want      map[string]int
	}{
		{"zero delta keeps the key",
			map[string]int{"rocket": 5, "boom": 2},
			map[string]int{"rocket": 5, "boom": 1},
			map[string]int{"rocket": 0, "boom": 1}},
		{"first round, nil prev",
			map[string]int{"rocket": 3}, nil,
			map[string]int{"rocket": 3}},
		{"design appears mid-run",
			map[string]int{"rocket": 4, "boom": 1},
			map[string]int{"rocket": 4},
			map[string]int{"rocket": 0, "boom": 1}},
		{"no migrations ever",
			map[string]int{}, map[string]int{},
			map[string]int{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := migrationDelta(tc.cur, tc.prev); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("migrationDelta(%v, %v) = %v, want %v", tc.cur, tc.prev, got, tc.want)
			}
		})
	}
}

// TestPlateauOf: the update-budget plateau counter is recomputed from
// the merged trajectory on resume; merged coverage is strictly
// monotone in hit bins, so consecutive equal points mark zero-added
// rounds exactly (round 0 compares against zero coverage).
func TestPlateauOf(t *testing.T) {
	pts := func(cov ...float64) []core.ProgressPoint {
		out := make([]core.ProgressPoint, len(cov))
		for i, c := range cov {
			out[i] = core.ProgressPoint{Coverage: c}
		}
		return out
	}
	cases := []struct {
		name string
		in   []core.ProgressPoint
		want int
	}{
		{"no rounds", nil, 0},
		{"first round added nothing", pts(0), 1},
		{"first round added", pts(1.5), 0},
		{"tail plateau", pts(1, 2, 2, 2), 2},
		{"growing", pts(1, 2, 3), 0},
		{"all flat from zero", pts(0, 0, 0), 3},
		{"plateau broken then resumed", pts(1, 1, 2, 2), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := plateauOf(tc.in); got != tc.want {
				t.Errorf("plateauOf = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestOffBarrierResumeUnderLag is the checkpoint-v4 acceptance
// property: a learning fleet running off-barrier is checkpointed
// mid-lag — after a barrier published one merge while the next
// round's training was still conceptually in flight — and the resumed
// run must reproduce the uninterrupted synchronous run's trajectory,
// published weights and final checkpoint bytes, across shard counts
// and with and without the fleet pool. A single-arm spec keeps every
// shard on the learning arm every round, so the lag is always
// populated and the checkpoint must carry both halves of the
// stale/fresh weight pair.
func TestOffBarrierResumeUnderLag(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, fleetPool := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d/fleetpool=%v", shards, fleetPool)
			t.Run(name, func(t *testing.T) {
				if raceEnabled && shards == 16 {
					// The race detector makes the 16-shard learning fleet
					// minutes-slow; the async/sync race surface is already
					// covered at 16 shards by TestFleetPoolDeterminismTable's
					// off-barrier path, and this test's full table runs in
					// the regular suite.
					t.Skip("16-shard resume table skipped under -race")
				}
				half := 3
				if shards == 16 {
					half = 1 // keep the big fleets cheap; the lag is populated from round 0
				}
				cfg := Config{Shards: shards, BatchSize: 4, Seed: 47}
				arms := func() []ArmSpec { return []ArmSpec{LearningLLMArm(learnPipeline())} }

				// Reference: uninterrupted synchronous run.
				full, err := New(cfg, newRocket, arms()...)
				if err != nil {
					t.Fatalf("New full: %v", err)
				}
				defer full.Close()
				if err := full.RunRounds(2 * half); err != nil {
					t.Fatalf("full run: %v", err)
				}
				var fullCkpt bytes.Buffer
				if err := full.Checkpoint(&fullCkpt); err != nil {
					t.Fatalf("full checkpoint: %v", err)
				}

				// Paused off-barrier run, checkpointed mid-lag.
				hcfg := cfg
				hcfg.OffBarrier = true
				if fleetPool {
					hcfg.FleetPool = true
					hcfg.PoolWorkers = 3
				}
				paused, err := New(hcfg, newRocket, arms()...)
				if err != nil {
					t.Fatalf("New paused: %v", err)
				}
				if err := paused.RunRounds(half); err != nil {
					t.Fatalf("paused run: %v", err)
				}
				var ckpt bytes.Buffer
				if err := paused.Checkpoint(&ckpt); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}
				paused.Close()
				if !bytes.Contains(ckpt.Bytes(), []byte(`"Staged"`)) {
					t.Fatal("mid-lag checkpoint carries no staged weights; the lag was empty")
				}

				resumed, err := Resume(bytes.NewReader(ckpt.Bytes()), newRocket, arms()...)
				if err != nil {
					t.Fatalf("Resume: %v", err)
				}
				defer resumed.Close()
				resumed.Cfg.OffBarrier = true // stays a pure execution detail after resume too
				if err := resumed.RunRounds(half); err != nil {
					t.Fatalf("resumed run: %v", err)
				}

				want, got := full.Trajectory(), resumed.Trajectory()
				if len(got) != len(want) {
					t.Fatalf("trajectory has %d points after resume, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("point %d differs after mid-lag resume: got %+v, want %+v", i, got[i], want[i])
					}
				}
				ww, gw := full.LearnedWeights("chatfuzz-learn"), resumed.LearnedWeights("chatfuzz-learn")
				if len(ww) == 0 || len(ww) != len(gw) {
					t.Fatalf("weights have %d scalars after resume, want %d", len(gw), len(ww))
				}
				for i := range ww {
					if math.Float64bits(ww[i]) != math.Float64bits(gw[i]) {
						t.Fatalf("weight scalar %d not bit-identical after mid-lag resume", i)
					}
				}
				var resCkpt bytes.Buffer
				if err := resumed.Checkpoint(&resCkpt); err != nil {
					t.Fatalf("resumed checkpoint: %v", err)
				}
				if !bytes.Equal(resCkpt.Bytes(), fullCkpt.Bytes()) {
					t.Error("resumed off-barrier checkpoint differs from the uninterrupted synchronous one")
				}
			})
		}
	}
}

// TestUpdateBudgetResumeBitIdentity: Config.UpdateBudget is scheduling
// semantics — checkpointed via Config, with the plateau counter
// replayed from the merged trajectory — so a budgeted fleet must
// resume bit-identically, and the budget must survive in the
// checkpoint bytes.
func TestUpdateBudgetResumeBitIdentity(t *testing.T) {
	cfg := Config{Shards: 2, BatchSize: 4, Seed: 43, UpdateBudget: 1}

	full, err := New(cfg, newRocket, learnArms(learnPipeline())...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer full.Close()
	if err := full.RunRounds(6); err != nil {
		t.Fatalf("full run: %v", err)
	}

	half, err := New(cfg, newRocket, learnArms(learnPipeline())...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := half.RunRounds(3); err != nil {
		t.Fatalf("half run: %v", err)
	}
	var buf bytes.Buffer
	if err := half.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	half.Close()
	if !bytes.Contains(buf.Bytes(), []byte(`"UpdateBudget":1`)) {
		t.Error("checkpoint does not carry UpdateBudget")
	}

	resumed, err := Resume(bytes.NewReader(buf.Bytes()), newRocket, learnArms(learnPipeline())...)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer resumed.Close()
	if resumed.Cfg.UpdateBudget != 1 {
		t.Fatalf("resumed UpdateBudget = %d, want 1", resumed.Cfg.UpdateBudget)
	}
	if err := resumed.RunRounds(3); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	want, got := full.Trajectory(), resumed.Trajectory()
	if len(got) != len(want) {
		t.Fatalf("trajectory has %d points after resume, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs after budgeted resume: got %+v, want %+v", i, got[i], want[i])
		}
	}
	ww, gw := full.LearnedWeights("chatfuzz-learn"), resumed.LearnedWeights("chatfuzz-learn")
	for i := range ww {
		if math.Float64bits(ww[i]) != math.Float64bits(gw[i]) {
			t.Fatalf("weight scalar %d not bit-identical after budgeted resume", i)
		}
	}
}
