package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkpointBytes runs a small fleet and returns its checkpoint.
func checkpointBytes(t *testing.T) []byte {
	t.Helper()
	o := mustNew(t, Config{Shards: 2, BatchSize: 8, Seed: 5})
	defer o.Close()
	if err := o.RunRounds(3); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	var buf bytes.Buffer
	if err := o.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestDecodeCheckpointCorruptInputs: every way a checkpoint file can
// be broken — empty, truncated, garbage, wrong version, right version
// with a mangled body — must produce a clear error, never a panic and
// never a silently wrong fleet.
func TestDecodeCheckpointCorruptInputs(t *testing.T) {
	good := checkpointBytes(t)
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "decode checkpoint"},
		{"garbage", []byte("not json at all\x00\xff"), "decode checkpoint"},
		{"truncated-early", good[:10], "decode checkpoint"},
		{"truncated-half", good[:len(good)/2], "decode checkpoint"},
		{"truncated-last-byte", good[:len(good)-2], "decode checkpoint"},
		{"old-version", []byte(`{"Version":1,"Round":3}`), "checkpoint version 1"},
		{"future-version", []byte(`{"Version":99}`), "checkpoint version 99"},
		{"no-version", []byte(`{"Round":3}`), "checkpoint version 0"},
		{"mangled-body", []byte(`{"Version":4,"Bandit":"nope"}`), "decode checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeCheckpoint(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("decodeCheckpoint accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestResumeFileCorruptVariants exercises the same corruptions through
// the public file-based entry points, the path the farm daemon and
// `fuzz-bench campaign -resume` actually take.
func TestResumeFileCorruptVariants(t *testing.T) {
	good := checkpointBytes(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated", good[:len(good)/3]},
		{"garbage", []byte("\x89PNG not a checkpoint")},
		{"empty", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			if _, err := ResumeFile(path, newRocket, testArms()...); err == nil {
				t.Error("ResumeFile accepted a corrupt checkpoint")
			}
			if _, err := ReadCheckpointInfo(path); err == nil {
				t.Error("ReadCheckpointInfo accepted a corrupt checkpoint")
			}
		})
	}
	if _, err := ResumeFile(filepath.Join(dir, "missing.json"), newRocket, testArms()...); err == nil {
		t.Error("ResumeFile invented a checkpoint from a missing file")
	}
}

// TestCheckpointFileSurvivesKillDuringWrite simulates dying mid-
// checkpoint: generation 1 is on disk, and the process was killed
// while staging generation 2 — leaving a partial .tmp next to the
// target, the exact state a kill -9 inside atomicio.WriteFile
// produces. The target must still hold the complete generation 1, it
// must resume, and the next checkpoint must succeed over the debris.
func TestCheckpointFileSurvivesKillDuringWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")

	o := mustNew(t, Config{Shards: 2, BatchSize: 8, Seed: 5})
	defer o.Close()
	if err := o.RunRounds(2); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if err := o.CheckpointFile(path); err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	gen1, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// The kill: half of generation 2, never renamed.
	if err := os.WriteFile(path+".tmp123456", gen1[:len(gen1)/2], 0o600); err != nil {
		t.Fatalf("plant torn temp: %v", err)
	}

	if got, _ := os.ReadFile(path); !bytes.Equal(got, gen1) {
		t.Fatal("target no longer holds generation 1")
	}
	info, err := ReadCheckpointInfo(path)
	if err != nil {
		t.Fatalf("generation 1 unreadable beside torn temp: %v", err)
	}
	if info.Round != 2 {
		t.Fatalf("generation 1 decodes to round %d, want 2", info.Round)
	}
	resumed, err := ResumeFile(path, newRocket, testArms()...)
	if err != nil {
		t.Fatalf("resume from generation 1: %v", err)
	}
	defer resumed.Close()
	if err := resumed.RunRounds(1); err != nil {
		t.Fatalf("RunRounds after resume: %v", err)
	}
	// Generation 3 writes cleanly over the debris.
	if err := resumed.CheckpointFile(path); err != nil {
		t.Fatalf("checkpoint over torn temp: %v", err)
	}
	info, err = ReadCheckpointInfo(path)
	if err != nil {
		t.Fatalf("generation 3 unreadable: %v", err)
	}
	if info.Round != 3 {
		t.Fatalf("generation 3 decodes to round %d, want 3", info.Round)
	}
}

// FuzzDecodeCheckpoint: no input, however mangled, may panic the
// decoder — a daemon replaying a crashed disk must always get an
// error value it can report.
func FuzzDecodeCheckpoint(f *testing.F) {
	o, err := New(Config{Shards: 1, BatchSize: 8, Seed: 5}, newRocket, testArms()...)
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	if err := o.RunRounds(1); err != nil {
		f.Fatalf("RunRounds: %v", err)
	}
	var buf bytes.Buffer
	if err := o.Checkpoint(&buf); err != nil {
		f.Fatalf("Checkpoint: %v", err)
	}
	o.Close()
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{"Version":4}`))
	f.Add([]byte(`{"Version":4,"Shards":[{}],"Globals":{"rocket":[1]}}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must return; errors are the expected outcome for
		// almost every input.
		_, _ = decodeCheckpoint(bytes.NewReader(data))
	})
}
