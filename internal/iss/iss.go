// Package iss implements the golden-model RISC-V instruction-set
// simulator (the paper's Spike substitute): an architecturally exact
// RV64IMA+Zicsr+Zifencei executor with M/U privilege modes, trap and
// CSR semantics per the unprivileged and privileged specifications.
//
// The ISS produces one trace.Entry per retired instruction; the
// Mismatch Detector compares this golden trace against the DUT trace.
//chatfuzz:deterministic package
package iss

import (
	"chatfuzz/internal/hart"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/trace"
)

// ISS is the golden-model simulator state.
type ISS struct {
	PC   uint64
	X    [32]uint64
	Mem  *mem.Memory
	Priv isa.Priv
	CSR  hart.CSRFile

	// LR/SC reservation (8-byte granule; identical rule in the DUTs).
	ResValid bool
	ResAddr  uint64

	// Halted is set when the program stores a non-zero value to the
	// tohost address (riscv-tests convention).
	Halted   bool
	ExitCode uint64

	amoRd uint64 // rd result of the in-flight AMO (loaded value or SC status)

	// Cache, when non-nil, memoises isa.Decode results per fetch
	// address. Purely an execution detail: every hit is revalidated
	// against the freshly fetched raw word, so results are bit-exact
	// even under self-modifying code. The execution engine installs a
	// per-worker cache; the serial reference path leaves it nil.
	Cache *DecodeCache
}

// DecodeCache memoises instruction decode for a fixed text window,
// turning the interpreter's per-instruction decode dispatch into a
// batched table walk over straight-line runs: the first pass through a
// run decodes and fills the table, every later pass (loop iterations,
// prefix replays, the shared harness epilogue) re-executes from the
// pre-decoded entries. An entry is tagged with the raw word it decoded,
// and a hit requires the tag to match the word just fetched — stores
// into the window (self-modifying code is a first-class workload here)
// change the fetched word, miss the tag, and simply re-decode. No
// invalidation hooks, no coupling to the memory system, and identical
// results by construction: isa.Decode is a pure function of the word.
type DecodeCache struct {
	base uint64
	raw  []uint32
	inst []isa.Inst
	ok   []bool
}

// NewDecodeCache returns a cache covering words instruction slots
// starting at base. Fetches outside the window decode uncached.
func NewDecodeCache(base uint64, words int) *DecodeCache {
	return &DecodeCache{
		base: base,
		raw:  make([]uint32, words),
		inst: make([]isa.Inst, words),
		ok:   make([]bool, words),
	}
}

// decode returns the decode of raw fetched at addr, memoised when addr
// falls inside the cache window.
func (c *DecodeCache) decode(addr uint64, raw uint32) isa.Inst {
	off := addr - c.base
	i := off / 4
	if off%4 != 0 || i >= uint64(len(c.raw)) {
		return isa.Decode(raw)
	}
	if c.ok[i] && c.raw[i] == raw {
		return c.inst[i]
	}
	inst := isa.Decode(raw)
	c.raw[i], c.inst[i], c.ok[i] = raw, inst, true
	return inst
}

// New returns an ISS starting at entry with all registers zero and
// machine privilege.
func New(m *mem.Memory, entry uint64) *ISS {
	return &ISS{PC: entry, Mem: m, Priv: isa.PrivM, CSR: hart.CSRFile{MPP: isa.PrivU}}
}

// Snapshot is the architectural state of a paused simulator —
// everything except memory contents. The execution engine snapshots
// the state once after the (program-independent) harness prologue and
// starts every golden run from it, instead of re-executing the ~170
// register-init instructions per test. Memory is deliberately absent:
// the prologue performs no stores, so a freshly loaded image is
// already the correct post-prologue memory.
type Snapshot struct {
	PC       uint64
	X        [32]uint64
	Priv     isa.Priv
	CSR      hart.CSRFile
	ResValid bool
	ResAddr  uint64
}

// Snapshot captures the simulator's current architectural state.
func (s *ISS) Snapshot() Snapshot {
	return Snapshot{PC: s.PC, X: s.X, Priv: s.Priv, CSR: s.CSR,
		ResValid: s.ResValid, ResAddr: s.ResAddr}
}

// NewFromSnapshot returns a simulator resumed from a snapshot over the
// given (already loaded) memory.
func NewFromSnapshot(snap Snapshot, m *mem.Memory) *ISS {
	return &ISS{PC: snap.PC, X: snap.X, Mem: m, Priv: snap.Priv, CSR: snap.CSR,
		ResValid: snap.ResValid, ResAddr: snap.ResAddr}
}

// resGranule returns the reservation granule of an address.
func resGranule(addr uint64) uint64 { return addr &^ 7 }

// trap redirects control to the machine trap vector.
func (s *ISS) trap(cause, tval uint64) {
	s.PC, s.Priv = s.CSR.TakeTrap(s.PC, cause, tval, s.Priv)
	s.ResValid = false
}

func (s *ISS) setReg(r isa.Reg, v uint64) {
	if r != 0 {
		s.X[r] = v
	}
}

// Step executes one instruction and returns its trace entry. It
// returns ok=false (and no entry) once the simulator has halted.
func (s *ISS) Step() (trace.Entry, bool) {
	if s.Halted {
		return trace.Entry{}, false
	}
	s.CSR.Cycle++

	e := trace.Entry{PC: s.PC, Priv: s.Priv}

	// Fetch.
	if !s.Mem.Mapped(s.PC, 4) {
		e.Trap, e.Cause, e.TVal = true, isa.ExcInstAccessFault, s.PC
		s.trap(isa.ExcInstAccessFault, s.PC)
		return e, true
	}
	raw := s.Mem.ReadWord(s.PC)
	e.Raw = raw

	var inst isa.Inst
	if s.Cache != nil {
		inst = s.Cache.decode(s.PC, raw)
	} else {
		inst = isa.Decode(raw)
	}
	e.Op = inst.Op
	if !inst.Valid() {
		e.Trap, e.Cause, e.TVal = true, isa.ExcIllegalInstruction, uint64(raw)
		s.trap(isa.ExcIllegalInstruction, uint64(raw))
		return e, true
	}

	nextPC := s.PC + 4
	rdWrite := false
	var rdVal uint64

	doTrap := func(cause, tval uint64) (trace.Entry, bool) {
		e.Trap, e.Cause, e.TVal = true, cause, tval
		s.trap(cause, tval)
		return e, true
	}

	op := inst.Op
	a, b := s.X[inst.Rs1], s.X[inst.Rs2]

	switch {
	case op == isa.OpLUI:
		rdWrite, rdVal = true, uint64(inst.Imm)
	case op == isa.OpAUIPC:
		rdWrite, rdVal = true, s.PC+uint64(inst.Imm)
	case op == isa.OpJAL:
		target := s.PC + uint64(inst.Imm)
		if target%4 != 0 {
			return doTrap(isa.ExcInstAddrMisaligned, target)
		}
		rdWrite, rdVal = true, s.PC+4
		nextPC = target
	case op == isa.OpJALR:
		target := (a + uint64(inst.Imm)) &^ 1
		if target%4 != 0 {
			return doTrap(isa.ExcInstAddrMisaligned, target)
		}
		rdWrite, rdVal = true, s.PC+4
		nextPC = target
	case op.Is(isa.ClassBranch):
		if isa.BranchTaken(op, a, b) {
			target := s.PC + uint64(inst.Imm)
			if target%4 != 0 {
				return doTrap(isa.ExcInstAddrMisaligned, target)
			}
			nextPC = target
		}
	case op.Is(isa.ClassLoad) && !op.Is(isa.ClassAMO):
		addr := a + uint64(inst.Imm)
		width, signed := isa.MemWidth(op)
		// Golden model: spec priority puts misaligned above access fault.
		if addr%uint64(width) != 0 {
			return doTrap(isa.ExcLoadAddrMisaligned, addr)
		}
		if !s.Mem.Mapped(addr, width) {
			return doTrap(isa.ExcLoadAccessFault, addr)
		}
		v := s.Mem.ReadUint(addr, width)
		if signed {
			shift := uint(64 - 8*width)
			v = uint64(int64(v<<shift) >> shift)
		}
		rdWrite, rdVal = true, v
		e.MemValid, e.MemAddr = true, addr
	case op.Is(isa.ClassStore) && !op.Is(isa.ClassAMO):
		addr := a + uint64(inst.Imm)
		width, _ := isa.MemWidth(op)
		if addr%uint64(width) != 0 {
			return doTrap(isa.ExcStoreAddrMisaligned, addr)
		}
		if !s.Mem.Mapped(addr, width) {
			return doTrap(isa.ExcStoreAccessFault, addr)
		}
		s.Mem.WriteUint(addr, b, width)
		if s.ResValid && resGranule(addr) == s.ResAddr {
			s.ResValid = false
		}
		e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
		if addr == mem.Tohost && width == 8 && b != 0 {
			s.Halted, s.ExitCode = true, b
		}
	case op.Is(isa.ClassAMO):
		ent, ok2 := s.execAMO(inst, &e)
		if !ok2 {
			return ent, true
		}
		rdWrite, rdVal = true, s.amoRd
	case op.Is(isa.ClassALU) || op.IsAny(isa.ClassMul|isa.ClassDiv):
		src := b
		switch op.Format() {
		case isa.FmtI, isa.FmtShift, isa.FmtShiftW:
			src = uint64(inst.Imm)
		}
		rdWrite, rdVal = true, isa.ALU(op, a, src)
	case op.Is(isa.ClassCSR):
		old, ok2 := s.CSR.ExecCSR(inst, a, s.Priv)
		if !ok2 {
			return doTrap(isa.ExcIllegalInstruction, uint64(raw))
		}
		rdWrite, rdVal = true, old
	case op == isa.OpFENCE || op == isa.OpFENCEI:
		// Architectural no-ops in the golden model.
	case op == isa.OpECALL:
		if s.Priv == isa.PrivM {
			return doTrap(isa.ExcECallFromM, 0)
		}
		return doTrap(isa.ExcECallFromU, 0)
	case op == isa.OpEBREAK:
		return doTrap(isa.ExcBreakpoint, s.PC)
	case op == isa.OpMRET:
		if s.Priv != isa.PrivM {
			return doTrap(isa.ExcIllegalInstruction, uint64(raw))
		}
		nextPC, s.Priv = s.CSR.MRet()
	case op == isa.OpWFI:
		// Treated as a no-op (legal in U-mode with TW=0).
	default:
		return doTrap(isa.ExcIllegalInstruction, uint64(raw))
	}

	if rdWrite {
		s.setReg(inst.Rd, rdVal)
		if inst.Rd != 0 {
			e.RdValid, e.Rd, e.RdVal = true, inst.Rd, rdVal
		}
	}
	s.PC = nextPC
	s.CSR.Instret++
	return e, true
}

func (s *ISS) execAMO(inst isa.Inst, e *trace.Entry) (trace.Entry, bool) {
	op := inst.Op
	addr := s.X[inst.Rs1]
	width, signed := isa.MemWidth(op)

	misCause, accCause := isa.ExcStoreAddrMisaligned, isa.ExcStoreAccessFault
	if op == isa.OpLRW || op == isa.OpLRD {
		misCause, accCause = isa.ExcLoadAddrMisaligned, isa.ExcLoadAccessFault
	}
	if addr%uint64(width) != 0 {
		e.Trap, e.Cause, e.TVal = true, misCause, addr
		s.trap(misCause, addr)
		return *e, false
	}
	if !s.Mem.Mapped(addr, width) {
		e.Trap, e.Cause, e.TVal = true, accCause, addr
		s.trap(accCause, addr)
		return *e, false
	}

	sext := func(v uint64) uint64 {
		if signed && width == 4 {
			return uint64(int64(int32(uint32(v))))
		}
		return v
	}

	switch op {
	case isa.OpLRW, isa.OpLRD:
		v := s.Mem.ReadUint(addr, width)
		s.ResValid, s.ResAddr = true, resGranule(addr)
		s.amoRd = sext(v)
		e.MemValid, e.MemAddr = true, addr
	case isa.OpSCW, isa.OpSCD:
		if s.ResValid && resGranule(addr) == s.ResAddr {
			s.Mem.WriteUint(addr, s.X[inst.Rs2], width)
			s.amoRd = 0
			e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
		} else {
			s.amoRd = 1
		}
		s.ResValid = false
	default:
		old := s.Mem.ReadUint(addr, width)
		newVal := isa.AMOApply(op, old, s.X[inst.Rs2])
		s.Mem.WriteUint(addr, newVal, width)
		s.amoRd = sext(old)
		e.MemValid, e.MemAddr, e.MemWrite = true, addr, true
	}
	return *e, true
}

// Run executes until the program halts (tohost store) or maxSteps
// instructions have been attempted, returning the commit trace.
func (s *ISS) Run(maxSteps int) []trace.Entry {
	return s.RunAppend(make([]trace.Entry, 0, 256), maxSteps)
}

// RunAppend is Run with a caller-provided buffer: entries are appended
// to buf[:0] and the (possibly re-grown) slice is returned. Execution
// workers that run one golden-model simulation per test reuse the same
// buffer across tests, keeping the hot loop allocation-free.
func (s *ISS) RunAppend(buf []trace.Entry, maxSteps int) []trace.Entry {
	entries := buf[:0]
	for i := 0; i < maxSteps; i++ {
		e, ok := s.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
		if s.Halted {
			break
		}
	}
	return entries
}
