package iss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chatfuzz/internal/isa"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/trace"
)

// runBody builds the standard harness around body, runs it to
// completion and returns the ISS and its trace.
func runBody(t *testing.T, body []uint32) (*ISS, []trace.Entry) {
	t.Helper()
	img, _ := prog.MustBuild(prog.Program{Body: body})
	m := mem.Platform()
	m.Load(img)
	s := New(m, img.Entry)
	entries := s.Run(prog.InstructionBudget(len(body)))
	return s, entries
}

// bodyTrace filters a full-run trace down to entries whose PC lies in
// the body region.
func bodyTrace(entries []trace.Entry, layout prog.Layout, bodyLen int) []trace.Entry {
	var out []trace.Entry
	end := layout.BodyBase + uint64(4*bodyLen)
	for _, e := range entries {
		if e.PC >= layout.BodyBase && e.PC < end {
			out = append(out, e)
		}
	}
	return out
}

func TestHarnessRunsToCompletion(t *testing.T) {
	s, entries := runBody(t, nil)
	if !s.Halted {
		t.Fatal("empty body should halt via tohost")
	}
	if s.ExitCode != 1 {
		t.Errorf("exit code = %d, want 1", s.ExitCode)
	}
	if len(entries) == 0 {
		t.Fatal("no trace entries")
	}
}

func TestHarnessRegisterInit(t *testing.T) {
	img, layout := prog.MustBuild(prog.Program{Body: []uint32{isa.NOP}})
	m := mem.Platform()
	m.Load(img)
	s := New(m, img.Entry)
	for i := 0; i < 4096 && s.PC != layout.BodyBase; i++ {
		if _, ok := s.Step(); !ok {
			t.Fatal("halted before reaching body")
		}
	}
	if s.PC != layout.BodyBase {
		t.Fatal("never reached body")
	}
	want := prog.InitialRegs(layout)
	for r := 1; r < 32; r++ {
		if s.X[r] != want[r] {
			t.Errorf("x%d = %#x, want %#x", r, s.X[r], want[r])
		}
	}
}

func TestArithmeticProgram(t *testing.T) {
	// a0=7, a1=6, a2=a0*a1, store to 0(s0), load back into a3.
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.A0, 0, 0, 7),
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 6),
		isa.Enc(isa.OpMUL, isa.A2, isa.A0, isa.A1, 0),
		isa.Enc(isa.OpSD, 0, isa.S0, isa.A2, 0),
		isa.Enc(isa.OpLD, isa.A3, isa.S0, 0, 0),
	}
	s, _ := runBody(t, body)
	if s.X[isa.A2] != 42 || s.X[isa.A3] != 42 {
		t.Errorf("a2=%d a3=%d, want 42 42", s.X[isa.A2], s.X[isa.A3])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpADDI, 0, 0, 0, 123),       // addi zero, zero, 123
		isa.Enc(isa.OpLUI, 0, 0, 0, 0x7000_0000), // lui zero, ...
		isa.Enc(isa.OpADD, isa.A0, 0, 0, 0),      // a0 = zero + zero
	}
	s, entries := runBody(t, body)
	if s.X[0] != 0 {
		t.Fatalf("x0 = %#x", s.X[0])
	}
	if s.X[isa.A0] != 0 {
		t.Errorf("a0 = %#x, want 0", s.X[isa.A0])
	}
	// The golden model must not report rd writes to x0.
	for _, e := range entries {
		if e.RdValid && e.Rd == 0 {
			t.Errorf("golden trace reports write to x0: %s", e)
		}
	}
}

func TestBranchAndLoop(t *testing.T) {
	// a0=0; a1=5; loop: addi a0,a0,1 ; addi a1,a1,-1 ; bne a1,zero,-8
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.A0, 0, 0, 0),
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 5),
		isa.Enc(isa.OpADDI, isa.A0, isa.A0, 0, 1),
		isa.Enc(isa.OpADDI, isa.A1, isa.A1, 0, -1),
		isa.Enc(isa.OpBNE, 0, isa.A1, 0, -8),
	}
	s, _ := runBody(t, body)
	if s.X[isa.A0] != 5 {
		t.Errorf("loop count a0 = %d, want 5", s.X[isa.A0])
	}
}

// expectTrapExit asserts that the run halted through the trap handler
// with the given cause.
func expectTrapExit(t *testing.T, s *ISS, wantCause uint64) {
	t.Helper()
	if !s.Halted {
		t.Fatal("run did not halt")
	}
	cause, isTrap := prog.TrapExit(s.ExitCode)
	if !isTrap {
		t.Fatalf("exit code %#x is not a trap exit", s.ExitCode)
	}
	if cause != wantCause {
		t.Errorf("trap exit cause = %d (%s), want %d (%s)",
			cause, isa.ExcName(cause), wantCause, isa.ExcName(wantCause))
	}
}

func TestLoadMisalignedTrapEndsTest(t *testing.T) {
	// s5 holds DataBase+1 (misaligned); lw a0, 0(s5) must trap with
	// cause 4 and the harness ends the test (riscv-tests semantics).
	body := []uint32{
		isa.Enc(isa.OpLW, isa.A0, isa.S5, 0, 0),
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 99), // unreachable
	}
	s, entries := runBody(t, body)
	expectTrapExit(t, s, isa.ExcLoadAddrMisaligned)
	for _, e := range entries {
		if e.Trap && e.Cause == isa.ExcLoadAddrMisaligned && e.TVal != mem.DataBase+1 {
			t.Errorf("tval = %#x, want %#x", e.TVal, mem.DataBase+1)
		}
	}
	if s.X[isa.A1] == 99 {
		t.Error("execution continued past a trapping instruction")
	}
}

func TestLoadAccessFaultTrapEndsTest(t *testing.T) {
	body := []uint32{isa.Enc(isa.OpLD, isa.A0, isa.TP, 0, 0)} // tp unmapped
	s, _ := runBody(t, body)
	expectTrapExit(t, s, isa.ExcLoadAccessFault)
}

func TestMisalignedBeatsAccessFault(t *testing.T) {
	// An address that is both unmapped AND misaligned must raise the
	// misaligned exception in the golden model (spec priority). This is
	// the behaviour Finding1 diverges from in the Rocket model.
	load := []uint32{
		isa.Enc(isa.OpADDI, isa.TP, isa.TP, 0, 1), // tp = unmapped+1
		isa.Enc(isa.OpLW, isa.A0, isa.TP, 0, 0),
	}
	s, _ := runBody(t, load)
	expectTrapExit(t, s, isa.ExcLoadAddrMisaligned)

	store := []uint32{
		isa.Enc(isa.OpADDI, isa.TP, isa.TP, 0, 1),
		isa.Enc(isa.OpSW, 0, isa.TP, isa.A0, 0),
	}
	s, _ = runBody(t, store)
	expectTrapExit(t, s, isa.ExcStoreAddrMisaligned)
}

func TestIllegalInstructionTrap(t *testing.T) {
	body := []uint32{0x00000000} // illegal (compressed space)
	s, entries := runBody(t, body)
	expectTrapExit(t, s, isa.ExcIllegalInstruction)
	found := false
	for _, e := range entries {
		if e.Trap && e.Cause == isa.ExcIllegalInstruction && e.TVal == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no illegal-instruction trap entry recorded")
	}
}

func TestECallFromM(t *testing.T) {
	s, _ := runBody(t, []uint32{isa.Encode(isa.Inst{Op: isa.OpECALL})})
	expectTrapExit(t, s, isa.ExcECallFromM)
}

func TestBreakpoint(t *testing.T) {
	s, _ := runBody(t, []uint32{isa.Encode(isa.Inst{Op: isa.OpEBREAK})})
	expectTrapExit(t, s, isa.ExcBreakpoint)
}

func TestPrivilegeTransitionUModeECall(t *testing.T) {
	// Drop to U-mode via MRET, then ecall from U (cause 8) returns to M.
	// mepc <- target (pc-relative via auipc), clear MPP, mret.
	body := []uint32{
		isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),             // a0 = pc
		isa.Enc(isa.OpADDI, isa.A0, isa.A0, 0, 20),        // a0 = pc+20 (u_code)
		isa.EncCSR(isa.OpCSRRW, 0, isa.A0, isa.CSRMEPC),   // mepc = u_code
		isa.EncCSR(isa.OpCSRRWI, 0, 0, isa.CSRMStatus),    // MPP=U, MIE=0
		isa.Encode(isa.Inst{Op: isa.OpMRET}),              // enter U-mode
		isa.Enc(isa.OpADDI, isa.A2, 0, 0, 55),             // u_code: runs in U
		isa.Encode(isa.Inst{Op: isa.OpECALL}),             // cause 8, ends test
	}
	s, entries := runBody(t, body)
	var uEntries, ecallU int
	for _, e := range entries {
		if e.Priv == isa.PrivU && !e.Trap {
			uEntries++
		}
		if e.Trap && e.Cause == isa.ExcECallFromU {
			ecallU++
		}
	}
	if uEntries == 0 {
		t.Error("no U-mode instructions executed")
	}
	if ecallU != 1 {
		t.Errorf("ecall-from-U traps = %d, want 1", ecallU)
	}
	if s.X[isa.A2] != 55 {
		t.Errorf("a2=%d, want 55", s.X[isa.A2])
	}
	expectTrapExit(t, s, isa.ExcECallFromU)
}

func TestUModeCSRAccessIsIllegal(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),
		isa.Enc(isa.OpADDI, isa.A0, isa.A0, 0, 20),
		isa.EncCSR(isa.OpCSRRW, 0, isa.A0, isa.CSRMEPC),
		isa.EncCSR(isa.OpCSRRWI, 0, 0, isa.CSRMStatus),
		isa.Encode(isa.Inst{Op: isa.OpMRET}),
		isa.EncCSR(isa.OpCSRRS, isa.A1, 0, isa.CSRMScratch), // U-mode read of M CSR
	}
	s, entries := runBody(t, body)
	found := false
	for _, e := range entries {
		if e.Trap && e.Cause == isa.ExcIllegalInstruction && e.Priv == isa.PrivU {
			found = true
		}
	}
	if !found {
		t.Error("U-mode CSR access did not trap as illegal")
	}
	expectTrapExit(t, s, isa.ExcIllegalInstruction)
}

func TestCSRReadWrite(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.A0, 0, 0, 0x55),
		isa.EncCSR(isa.OpCSRRW, isa.A1, isa.A0, isa.CSRMScratch), // old -> a1, 0x55 in
		isa.EncCSR(isa.OpCSRRSI, isa.A2, 0x0A, isa.CSRMScratch),  // set bits, old -> a2
		isa.EncCSR(isa.OpCSRRCI, isa.A3, 0x05, isa.CSRMScratch),  // clear bits, old -> a3
		isa.EncCSR(isa.OpCSRRS, isa.A4, 0, isa.CSRMScratch),      // pure read
	}
	s, _ := runBody(t, body)
	if s.X[isa.A2] != 0x55 {
		t.Errorf("a2 = %#x, want 0x55", s.X[isa.A2])
	}
	if s.X[isa.A3] != 0x5F {
		t.Errorf("a3 = %#x, want 0x5F", s.X[isa.A3])
	}
	if s.X[isa.A4] != 0x5A {
		t.Errorf("a4 = %#x, want 0x5A", s.X[isa.A4])
	}
}

func TestReadOnlyCSRWriteTraps(t *testing.T) {
	s, _ := runBody(t, []uint32{
		isa.EncCSR(isa.OpCSRRW, isa.A0, isa.A0, isa.CSRMHartID), // write to RO CSR
	})
	expectTrapExit(t, s, isa.ExcIllegalInstruction)

	// A pure read of the same read-only CSR is legal.
	s, _ = runBody(t, []uint32{
		isa.EncCSR(isa.OpCSRRS, isa.A1, 0, isa.CSRMHartID),
		isa.Enc(isa.OpADDI, isa.A2, 0, 0, 2),
	})
	if !s.Halted || s.ExitCode != 1 {
		t.Fatal("read-only read should not trap")
	}
	if s.X[isa.A2] != 2 {
		t.Error("program did not complete")
	}
}

func TestLRSCSuccessAndFailure(t *testing.T) {
	body := []uint32{
		isa.EncAMO(isa.OpLRD, isa.A1, isa.A0, 0, false, false),       // reserve
		isa.EncAMO(isa.OpSCD, isa.A2, isa.A0, isa.A5, false, false),  // success -> 0
		isa.EncAMO(isa.OpSCD, isa.A3, isa.A0, isa.A5, false, false),  // no res -> 1
		isa.Enc(isa.OpLD, isa.A4, isa.A0, 0, 0),
	}
	s, _ := runBody(t, body)
	if s.X[isa.A2] != 0 {
		t.Errorf("first sc rd = %d, want 0 (success)", s.X[isa.A2])
	}
	if s.X[isa.A3] != 1 {
		t.Errorf("second sc rd = %d, want 1 (failure)", s.X[isa.A3])
	}
	if s.X[isa.A4] != 5 {
		t.Errorf("stored value = %d, want 5", s.X[isa.A4])
	}
}

func TestStoreBreaksReservation(t *testing.T) {
	body := []uint32{
		isa.EncAMO(isa.OpLRD, isa.A1, isa.A0, 0, false, false),
		isa.Enc(isa.OpSD, 0, isa.A0, isa.A5, 0),                     // store to granule
		isa.EncAMO(isa.OpSCD, isa.A2, isa.A0, isa.A6, false, false), // must fail
	}
	s, _ := runBody(t, body)
	if s.X[isa.A2] != 1 {
		t.Errorf("sc after store rd = %d, want 1 (failure)", s.X[isa.A2])
	}
}

func TestAMOOperations(t *testing.T) {
	// mem[a0]=10 then amoadd.d a1, a5(=5), (a0): a1=10, mem=15.
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.T1, 0, 0, 10),
		isa.Enc(isa.OpSD, 0, isa.A0, isa.T1, 0),
		isa.EncAMO(isa.OpAMOADDD, isa.A1, isa.A0, isa.A5, false, false),
		isa.Enc(isa.OpLD, isa.A2, isa.A0, 0, 0),
	}
	s, _ := runBody(t, body)
	if s.X[isa.A1] != 10 {
		t.Errorf("amo old value = %d, want 10", s.X[isa.A1])
	}
	if s.X[isa.A2] != 15 {
		t.Errorf("amo result in memory = %d, want 15", s.X[isa.A2])
	}
}

func TestAMOWSignExtension(t *testing.T) {
	// Store 0xFFFFFFFF at (a0), amoadd.w rd gets sign-extended old.
	body := []uint32{
		isa.Enc(isa.OpADDI, isa.T1, 0, 0, -1),
		isa.Enc(isa.OpSW, 0, isa.A0, isa.T1, 0),
		isa.EncAMO(isa.OpAMOADDW, isa.A1, isa.A0, isa.T0, false, false), // +1
		isa.Enc(isa.OpLWU, isa.A2, isa.A0, 0, 0),
	}
	s, _ := runBody(t, body)
	if s.X[isa.A1] != ^uint64(0) {
		t.Errorf("amo.w old = %#x, want sign-extended -1", s.X[isa.A1])
	}
	if s.X[isa.A2] != 0 {
		t.Errorf("amo.w new memory = %#x, want 0 (wrap)", s.X[isa.A2])
	}
}

func TestJALRClearsLowBitAndMisalignedTarget(t *testing.T) {
	// jalr to an address with bit0 set is fine (bit cleared); bit1 set
	// traps with instruction-address-misaligned attributed to the jump.
	body := []uint32{
		isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),        // a0 = pc
		isa.Enc(isa.OpADDI, isa.A0, isa.A0, 0, 13),   // target pc+13 -> bit0 set, cleared -> pc+12
		isa.Enc(isa.OpJALR, isa.RA, isa.A0, 0, 0),    // lands on next inst
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 21),        // pc+12: executed
		isa.Enc(isa.OpADDI, isa.A0, isa.A0, 0, 2),    // a0 = pc+14 (bit1 set)
		isa.Enc(isa.OpJALR, isa.RA, isa.A0, 0, 0),    // traps, cause 0
	}
	s, entries := runBody(t, body)
	if s.X[isa.A1] != 21 {
		t.Error("jalr with bit0 target did not land correctly")
	}
	found := false
	for _, e := range entries {
		if e.Trap && e.Cause == isa.ExcInstAddrMisaligned {
			found = true
		}
	}
	if !found {
		t.Error("misaligned jalr target did not trap")
	}
	expectTrapExit(t, s, isa.ExcInstAddrMisaligned)
}

func TestSelfModifyingCodeGoldenModel(t *testing.T) {
	// The golden model has no caches: a store to the next instruction
	// takes effect immediately even without FENCE.I.
	// Overwrite the upcoming "addi a1,zero,1" with "addi a1,zero,2".
	patch := isa.Enc(isa.OpADDI, isa.A1, 0, 0, 2)
	body := []uint32{
		isa.Enc(isa.OpAUIPC, isa.A0, 0, 0, 0),      // a0 = pc
		isa.Enc(isa.OpLW, isa.T1, isa.S0, 0, 0),    // t1 = patch word (pre-placed)
		isa.Enc(isa.OpSW, 0, isa.A0, isa.T1, 12),   // overwrite pc+12
		isa.Enc(isa.OpADDI, isa.A1, 0, 0, 1),       // will be patched to 2
	}
	img, _ := prog.MustBuild(prog.Program{Body: body})
	m := mem.Platform()
	m.Load(img)
	m.WriteUint(mem.DataBase+0x2000, uint64(patch), 4) // s0 points here
	s := New(m, img.Entry)
	s.Run(prog.InstructionBudget(len(body)))
	if s.X[isa.A1] != 2 {
		t.Errorf("a1 = %d, want 2 (patched instruction must execute)", s.X[isa.A1])
	}
}

func TestTraceDeterminism(t *testing.T) {
	body := []uint32{
		isa.Enc(isa.OpMUL, isa.A2, isa.A6, isa.S10, 0),
		isa.Enc(isa.OpDIV, isa.A3, isa.A4, isa.A3, 0),
		isa.Enc(isa.OpSD, 0, isa.S0, isa.A2, 8),
		isa.Enc(isa.OpLD, isa.A5, isa.S0, 0, 8),
	}
	_, t1 := runBody(t, body)
	_, t2 := runBody(t, body)
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if !trace.Equal(t1[i], t2[i]) {
			t.Fatalf("entry %d differs:\n%s\n%s", i, t1[i], t2[i])
		}
	}
}

// TestRandomALUMatchesSemantics cross-checks the ISS execution of R-type
// ALU ops against isa.ALU directly (property-based).
func TestRandomALUMatchesSemantics(t *testing.T) {
	ops := []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpSLL, isa.OpSLT, isa.OpSLTU, isa.OpXOR,
		isa.OpSRL, isa.OpSRA, isa.OpOR, isa.OpAND, isa.OpADDW, isa.OpSUBW,
		isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU,
		isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU,
		isa.OpDIVW, isa.OpREMW, isa.OpDIVUW, isa.OpREMUW, isa.OpMULW,
	}
	f := func(aRaw, bRaw uint64, opSel uint8) bool {
		op := ops[int(opSel)%len(ops)]
		// Set a0=aRaw, a1=bRaw via memory (too wide for immediates):
		// the harness gives s0 a data pointer.
		body := []uint32{
			isa.Enc(isa.OpLD, isa.A0, isa.S0, 0, 0),
			isa.Enc(isa.OpLD, isa.A1, isa.S0, 0, 8),
			isa.Enc(op, isa.A2, isa.A0, isa.A1, 0),
		}
		img, layout := prog.MustBuild(prog.Program{Body: body})
		m := mem.Platform()
		m.Load(img)
		m.WriteUint(mem.DataBase+0x2000, aRaw, 8)
		m.WriteUint(mem.DataBase+0x2000+8, bRaw, 8)
		s := New(m, img.Entry)
		s.Run(prog.InstructionBudget(len(body)))
		_ = layout
		return s.X[isa.A2] == isa.ALU(op, aRaw, bRaw)
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRunBudgetTerminatesWildPrograms(t *testing.T) {
	// An infinite loop must stop at the step budget.
	body := []uint32{isa.Enc(isa.OpJAL, 0, 0, 0, 0)}
	img, _ := prog.MustBuild(prog.Program{Body: body})
	m := mem.Platform()
	m.Load(img)
	s := New(m, img.Entry)
	entries := s.Run(500)
	if s.Halted {
		t.Error("wild program should not halt")
	}
	if len(entries) != 500 {
		t.Errorf("steps = %d, want 500", len(entries))
	}
}

func TestWildJumpBailsToEpilogue(t *testing.T) {
	// Jump through a3 (=-1, unmapped): fetch access fault; the handler
	// sends execution to the epilogue, so the run halts cleanly.
	body := []uint32{
		isa.Enc(isa.OpJALR, 0, isa.A3, 0, 0),
	}
	s, _ := runBody(t, body)
	if !s.Halted {
		t.Error("wild jump should bail to epilogue and halt")
	}
}

func TestMcycleMinstretProgress(t *testing.T) {
	body := []uint32{
		isa.EncCSR(isa.OpCSRRS, isa.A0, 0, isa.CSRMInstret),
		isa.NOP, isa.NOP, isa.NOP,
		isa.EncCSR(isa.OpCSRRS, isa.A1, 0, isa.CSRMInstret),
	}
	s, _ := runBody(t, body)
	if got := s.X[isa.A1] - s.X[isa.A0]; got != 4 {
		t.Errorf("minstret delta = %d, want 4", got)
	}
}
