package thehuzz

import (
	"testing"

	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
)

func TestSeedsBeforeFeedback(t *testing.T) {
	g := New(1, 24)
	progs := g.GenerateBatch(8)
	if len(progs) != 8 {
		t.Fatalf("batch = %d", len(progs))
	}
	for i, p := range progs {
		if len(p.Body) != 24 {
			t.Errorf("program %d length %d, want 24", i, len(p.Body))
		}
		for _, w := range p.Body {
			if !isa.Decode(w).Valid() {
				t.Errorf("fresh seed contains invalid word %#08x", w)
			}
		}
	}
}

func TestFeedbackGrowsPool(t *testing.T) {
	g := New(2, 16)
	g.GenerateBatch(4)
	scores := []cov.Scores{
		{Incremental: 3}, {Incremental: 0}, {Incremental: 7}, {Incremental: 0},
	}
	g.Feedback(scores)
	if g.PoolSize() != 2 {
		t.Errorf("pool = %d, want 2 (only improving inputs)", g.PoolSize())
	}
}

func TestPoolBounded(t *testing.T) {
	g := New(3, 8)
	g.PoolCap = 10
	for round := 0; round < 30; round++ {
		g.GenerateBatch(4)
		g.Feedback([]cov.Scores{{Incremental: 1}, {Incremental: 2}, {Incremental: 3}, {Incremental: 4}})
	}
	if g.PoolSize() > 10 {
		t.Errorf("pool %d exceeds cap", g.PoolSize())
	}
}

func TestMutantsDeriveFromPool(t *testing.T) {
	g := New(4, 16)
	g.SeedFrac = 0 // force mutants once the pool is non-empty
	g.GenerateBatch(2)
	g.Feedback([]cov.Scores{{Incremental: 5}, {Incremental: 5}})
	progs := g.GenerateBatch(16)
	for _, p := range progs {
		if len(p.Body) == 0 {
			t.Error("mutant has empty body")
		}
	}
}

func TestFeedbackLengthMismatchIgnored(t *testing.T) {
	g := New(5, 8)
	g.GenerateBatch(4)
	g.Feedback([]cov.Scores{{Incremental: 1}}) // wrong length: ignored
	if g.PoolSize() != 0 {
		t.Error("mismatched feedback must be ignored")
	}
}

func TestStateRoundTripPreservesPool(t *testing.T) {
	g := New(1, 12)
	progs := g.GenerateBatch(8)
	scores := make([]cov.Scores, len(progs))
	for i := range scores {
		scores[i] = cov.Scores{Incremental: i} // entries 1..7 join the pool
	}
	g.Feedback(scores)
	if g.PoolSize() == 0 {
		t.Fatal("pool empty after positive feedback")
	}

	st := g.State()
	g2 := New(99, 12)
	g2.SetState(st)
	if g2.PoolSize() != g.PoolSize() {
		t.Fatalf("restored pool size %d, want %d", g2.PoolSize(), g.PoolSize())
	}

	// The snapshot must be a deep copy: mutating the restored pool's
	// bodies through further fuzzing must not corrupt the original.
	st.Pool[0].Body[0] = 0xDEADBEEF
	if g.State().Pool[0].Body[0] == 0xDEADBEEF {
		t.Error("State shares body storage with the live pool")
	}

	// Reseeded generators with identical state produce identical batches.
	g.Reseed(7)
	g2.Reseed(7)
	a := g.GenerateBatch(6)
	b := g2.GenerateBatch(6)
	for i := range a {
		if len(a[i].Body) != len(b[i].Body) {
			t.Fatalf("batch %d length mismatch", i)
		}
		for j := range a[i].Body {
			if a[i].Body[j] != b[i].Body[j] {
				t.Fatalf("batch %d word %d differs after identical reseed", i, j)
			}
		}
	}
}
