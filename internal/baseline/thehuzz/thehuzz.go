// Package thehuzz reimplements the TheHuzz baseline (Kande et al.,
// USENIX Security 2022) at the level the ChatFuzz paper compares
// against: an ISA-aware seed generator plus a mutation engine
// (bit/byte flipping, swapping, deleting, cloning, operand and opcode
// mutation) guided by coverage feedback — inputs that achieve new
// coverage points enter the seed pool and are mutated further.
//chatfuzz:deterministic package
package thehuzz

import (
	"math/rand"
	"sort"

	"chatfuzz/internal/baseline/randinst"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/prog"
)

// poolEntry is a saved interesting input.
type poolEntry struct {
	body  []uint32
	score int // incremental coverage when first run
	age   int
}

// Gen is the TheHuzz-style generator.
type Gen struct {
	// BodyInstrs is the instruction count per test (matched to
	// ChatFuzz for the paper's "same number of instructions" setup).
	BodyInstrs int
	// SeedFrac is the fraction of each batch drawn as fresh seeds once
	// the pool is non-empty.
	SeedFrac float64
	// PoolCap bounds the seed pool.
	PoolCap int
	// MutationsPerInput is the number of mutation operators applied to
	// each pool entry when deriving a new input.
	MutationsPerInput int

	rng   *rand.Rand
	pool  []poolEntry
	last  []prog.Program
	round int
}

// New returns a generator with the configuration used in the
// evaluation.
func New(seed int64, bodyInstrs int) *Gen {
	return &Gen{
		BodyInstrs:        bodyInstrs,
		SeedFrac:          0.5,
		PoolCap:           128,
		MutationsPerInput: 3,
		rng:               rand.New(rand.NewSource(seed)),
	}
}

// Name implements the fuzzing loop's Generator interface.
func (g *Gen) Name() string { return "thehuzz" }

// GenerateBatch implements Generator.
func (g *Gen) GenerateBatch(n int) []prog.Program {
	out := make([]prog.Program, n)
	for i := range out {
		if len(g.pool) == 0 || g.rng.Float64() < g.SeedFrac {
			out[i] = prog.Program{Body: randinst.Program(g.rng, g.BodyInstrs)}
			continue
		}
		// Prefer higher-scoring pool entries (rank selection over the
		// sorted pool's top half).
		idx := g.rng.Intn((len(g.pool) + 1) / 2)
		out[i] = prog.Program{Body: g.mutate(g.pool[idx].body)}
	}
	g.last = out
	return out
}

// Feedback implements Generator: inputs that hit new coverage points
// join the pool.
func (g *Gen) Feedback(scores []cov.Scores) {
	g.round++
	if len(scores) != len(g.last) {
		return
	}
	for i, sc := range scores {
		if sc.Incremental > 0 {
			body := make([]uint32, len(g.last[i].Body))
			copy(body, g.last[i].Body)
			g.pool = append(g.pool, poolEntry{body: body, score: sc.Incremental, age: g.round})
		}
	}
	sort.SliceStable(g.pool, func(a, b int) bool {
		if g.pool[a].score != g.pool[b].score {
			return g.pool[a].score > g.pool[b].score
		}
		return g.pool[a].age > g.pool[b].age // prefer recent on ties
	})
	if len(g.pool) > g.PoolCap {
		g.pool = g.pool[:g.PoolCap]
	}
}

// PoolSize reports the current seed-pool occupancy.
func (g *Gen) PoolSize() int { return len(g.pool) }

// Reseed replaces the generator's random stream. The campaign
// orchestrator reseeds arms deterministically before every scheduling
// round, which is what makes checkpoint→resume replay exact: the seed
// is a pure function of (campaign seed, shard, round), so no rng state
// needs to survive a checkpoint.
func (g *Gen) Reseed(seed int64) { g.rng = rand.New(rand.NewSource(seed)) }

// PoolEntry is the serializable form of one seed-pool entry.
type PoolEntry struct {
	Body  []uint32
	Score int
	Age   int
}

// State is the generator's checkpointable state: everything except the
// rng (see Reseed) and the transient last-batch buffer, which is only
// meaningful between a GenerateBatch and its Feedback.
type State struct {
	Round int
	Pool  []PoolEntry
}

// State snapshots the seed pool for checkpointing.
func (g *Gen) State() State {
	st := State{Round: g.round, Pool: make([]PoolEntry, len(g.pool))}
	for i, e := range g.pool {
		body := make([]uint32, len(e.body))
		copy(body, e.body)
		st.Pool[i] = PoolEntry{Body: body, Score: e.score, Age: e.age}
	}
	return st
}

// SetState restores a snapshot taken with State.
func (g *Gen) SetState(st State) {
	g.round = st.Round
	g.pool = make([]poolEntry, len(st.Pool))
	for i, e := range st.Pool {
		body := make([]uint32, len(e.Body))
		copy(body, e.Body)
		g.pool[i] = poolEntry{body: body, score: e.Score, age: e.Age}
	}
	g.last = nil
}

// mutate derives a new body by applying MutationsPerInput random
// mutation operators to a copy. The operator mix is validity-biased,
// as in TheHuzz: most mutations stay at instruction granularity
// (operand/opcode rewrites, swaps, clones, splices), with occasional
// raw bit/byte flips.
func (g *Gen) mutate(body []uint32) []uint32 {
	out := make([]uint32, len(body))
	copy(out, body)
	for k := 0; k < g.MutationsPerInput; k++ {
		if len(out) == 0 {
			out = append(out, randinst.Random(g.rng))
			continue
		}
		switch g.rng.Intn(10) {
		case 0: // bit or byte flip (raw)
			i := g.rng.Intn(len(out))
			if g.rng.Intn(2) == 0 {
				out[i] ^= 1 << uint(g.rng.Intn(32))
			} else {
				out[i] ^= 0xFF << uint(8*g.rng.Intn(4))
			}
		case 1: // operand mutation (keep the opcode)
			i := g.rng.Intn(len(out))
			if inst := isa.Decode(out[i]); inst.Valid() {
				out[i] = randinst.RandomWithOp(g.rng, inst.Op)
			} else {
				out[i] = randinst.Random(g.rng)
			}
		case 2: // swap two instructions
			i, j := g.rng.Intn(len(out)), g.rng.Intn(len(out))
			out[i], out[j] = out[j], out[i]
		case 3: // delete one instruction
			if len(out) > 1 {
				i := g.rng.Intn(len(out))
				out = append(out[:i], out[i+1:]...)
			}
		case 4: // clone one instruction to another position
			i, j := g.rng.Intn(len(out)), g.rng.Intn(len(out))
			out[j] = out[i]
		case 5, 6: // operand mutation (keep the opcode)
			i := g.rng.Intn(len(out))
			if inst := isa.Decode(out[i]); inst.Valid() {
				out[i] = randinst.RandomWithOp(g.rng, inst.Op)
			} else {
				out[i] = randinst.Random(g.rng)
			}
		case 7, 8: // opcode mutation (fresh valid instruction)
			i := g.rng.Intn(len(out))
			out[i] = randinst.Random(g.rng)
		case 9: // splice: crossover with another pool entry
			if len(g.pool) > 0 {
				other := g.pool[g.rng.Intn(len(g.pool))].body
				if len(other) > 0 {
					cut := g.rng.Intn(len(out))
					keep := out[:cut]
					tail := other[g.rng.Intn(len(other)):]
					merged := append(append([]uint32{}, keep...), tail...)
					if len(merged) > g.BodyInstrs*2 {
						merged = merged[:g.BodyInstrs*2]
					}
					if len(merged) > 0 {
						out = merged
					}
				}
			}
		}
	}
	return out
}
