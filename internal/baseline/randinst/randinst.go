// Package randinst generates ISA-aware random instructions — the seed
// generator both baselines share. Like TheHuzz's generator, it knows
// the valid encodings of every instruction but has no notion of
// meaningful sequencing (the gap ChatFuzz's LLM fills).
//chatfuzz:deterministic package
package randinst

import (
	"math/rand"

	"chatfuzz/internal/isa"
)

// allOps enumerates every encodable opcode once.
var allOps []isa.Op

func init() {
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		allOps = append(allOps, op)
	}
}

// Random returns one random valid instruction word.
func Random(rng *rand.Rand) uint32 {
	op := allOps[rng.Intn(len(allOps))]
	return RandomWithOp(rng, op)
}

// RandomWithOp returns a random valid encoding of the given opcode.
func RandomWithOp(rng *rand.Rand, op isa.Op) uint32 {
	i := isa.Inst{Op: op}
	reg := func() isa.Reg { return isa.Reg(rng.Intn(32)) }
	switch op.Format() {
	case isa.FmtR:
		i.Rd, i.Rs1, i.Rs2 = reg(), reg(), reg()
	case isa.FmtI:
		i.Rd, i.Rs1 = reg(), reg()
		i.Imm = int64(rng.Intn(1<<12)) - (1 << 11)
	case isa.FmtShift:
		i.Rd, i.Rs1 = reg(), reg()
		i.Imm = int64(rng.Intn(64))
	case isa.FmtShiftW:
		i.Rd, i.Rs1 = reg(), reg()
		i.Imm = int64(rng.Intn(32))
	case isa.FmtS:
		i.Rs1, i.Rs2 = reg(), reg()
		i.Imm = int64(rng.Intn(1<<12)) - (1 << 11)
	case isa.FmtB:
		i.Rs1, i.Rs2 = reg(), reg()
		i.Imm = int64(rng.Intn(1<<12)-1<<11) * 2
	case isa.FmtU:
		i.Rd = reg()
		i.Imm = int64(int32(uint32(rng.Intn(1<<20)) << 12))
	case isa.FmtJ:
		i.Rd = reg()
		i.Imm = int64(rng.Intn(1<<20)-1<<19) * 2
	case isa.FmtCSR:
		i.Rd, i.Rs1 = reg(), reg()
		i.CSR = randomCSR(rng)
	case isa.FmtCSRI:
		i.Rd = reg()
		i.Imm = int64(rng.Intn(32))
		i.CSR = randomCSR(rng)
	case isa.FmtAMO:
		i.Rd, i.Rs1, i.Rs2 = reg(), reg(), reg()
		if op == isa.OpLRW || op == isa.OpLRD {
			i.Rs2 = 0
		}
		i.Aq, i.Rl = rng.Intn(2) == 1, rng.Intn(2) == 1
	case isa.FmtFence:
		if op == isa.OpFENCE {
			i.Imm = int64(rng.Intn(256))
		}
	case isa.FmtSys:
		// no fields
	}
	return isa.Encode(i)
}

// randomCSR mostly picks implemented CSRs, occasionally an arbitrary
// address (which raises illegal-instruction traps, as real fuzzers do).
func randomCSR(rng *rand.Rand) uint16 {
	if rng.Intn(8) == 0 {
		return uint16(rng.Intn(1 << 12))
	}
	return isa.KnownCSRs[rng.Intn(len(isa.KnownCSRs))]
}

// Program returns n random valid instructions.
func Program(rng *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = Random(rng)
	}
	return out
}
