package randinst

import (
	"math/rand"
	"testing"

	"chatfuzz/internal/isa"
)

// TestRandomAlwaysValid: the ISA-aware generator must only emit
// decodable instructions (that is its defining property vs raw words).
func TestRandomAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		w := Random(rng)
		if !isa.Decode(w).Valid() {
			t.Fatalf("random instruction %#08x is invalid", w)
		}
	}
}

func TestRandomWithOpPreservesOpcode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := []isa.Op{isa.OpADD, isa.OpLW, isa.OpSD, isa.OpBEQ, isa.OpJAL,
		isa.OpCSRRW, isa.OpAMOADDD, isa.OpLRW, isa.OpSLLI, isa.OpLUI, isa.OpMRET}
	for _, op := range ops {
		for i := 0; i < 200; i++ {
			w := RandomWithOp(rng, op)
			if got := isa.Decode(w).Op; got != op {
				t.Fatalf("RandomWithOp(%v) decoded as %v (%#08x)", op, got, w)
			}
		}
	}
}

func TestProgramLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := len(Program(rng, 24)); got != 24 {
		t.Errorf("Program length = %d", got)
	}
}

func TestOpcodeCoverageOfGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seen := map[isa.Op]bool{}
	for i := 0; i < 20000; i++ {
		seen[isa.Decode(Random(rng)).Op] = true
	}
	if len(seen) < isa.NumOps*3/4 {
		t.Errorf("generator reached only %d/%d opcodes", len(seen), isa.NumOps)
	}
}
