// Package randfuzz is the random-regression baseline: valid random
// instructions with no feedback loop at all (or, in Raw mode, fully
// random 32-bit words, which mostly decode as illegal — the weakest
// possible generator and a useful ablation floor).
//chatfuzz:deterministic package
package randfuzz

import (
	"math/rand"

	"chatfuzz/internal/baseline/randinst"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/prog"
)

// Gen is the random-regression generator.
type Gen struct {
	BodyInstrs int
	// Raw switches to uniformly random 32-bit words instead of
	// ISA-aware random instructions.
	Raw bool

	rng *rand.Rand
}

// New returns a random-regression generator.
func New(seed int64, bodyInstrs int) *Gen {
	return &Gen{BodyInstrs: bodyInstrs, rng: rand.New(rand.NewSource(seed))}
}

// Name implements the Generator interface.
func (g *Gen) Name() string {
	if g.Raw {
		return "random-raw"
	}
	return "random-regression"
}

// GenerateBatch implements Generator.
func (g *Gen) GenerateBatch(n int) []prog.Program {
	out := make([]prog.Program, n)
	for i := range out {
		if g.Raw {
			body := make([]uint32, g.BodyInstrs)
			for j := range body {
				body[j] = g.rng.Uint32()
			}
			out[i] = prog.Program{Body: body}
		} else {
			out[i] = prog.Program{Body: randinst.Program(g.rng, g.BodyInstrs)}
		}
	}
	return out
}

// Feedback implements Generator (random regression ignores feedback).
func (g *Gen) Feedback([]cov.Scores) {}

// FeedbackFree marks the generator safe for the execution engine's
// generation/simulation double buffering: Feedback is a no-op, so
// generating round N+1 before round N's scores commit cannot perturb
// the stream.
func (g *Gen) FeedbackFree() bool { return true }
