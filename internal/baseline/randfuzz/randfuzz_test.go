package randfuzz

import (
	"testing"

	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
)

func TestValidModeEmitsDecodableWords(t *testing.T) {
	g := New(1, 24)
	for _, p := range g.GenerateBatch(16) {
		if len(p.Body) != 24 {
			t.Fatalf("body length %d", len(p.Body))
		}
		for _, w := range p.Body {
			if !isa.Decode(w).Valid() {
				t.Fatalf("valid-mode generator emitted invalid %#08x", w)
			}
		}
	}
}

func TestRawModeEmitsMostlyInvalidWords(t *testing.T) {
	g := New(2, 64)
	g.Raw = true
	invalid, total := 0, 0
	for _, p := range g.GenerateBatch(16) {
		invalid += isa.CountInvalid(p.Body)
		total += len(p.Body)
	}
	if frac := float64(invalid) / float64(total); frac < 0.5 {
		t.Errorf("raw mode only %.0f%% invalid; expected the vast majority", 100*frac)
	}
}

func TestNames(t *testing.T) {
	g := New(3, 8)
	if g.Name() != "random-regression" {
		t.Errorf("name = %q", g.Name())
	}
	g.Raw = true
	if g.Name() != "random-raw" {
		t.Errorf("raw name = %q", g.Name())
	}
}

func TestFeedbackIsIgnored(t *testing.T) {
	g := New(4, 8)
	a := g.GenerateBatch(4)
	g.Feedback([]cov.Scores{{Incremental: 100}})
	b := g.GenerateBatch(4)
	// Deterministic stream continues regardless of feedback.
	if len(a) != 4 || len(b) != 4 {
		t.Fatal("batch sizes wrong")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := New(7, 16).GenerateBatch(4)
	b := New(7, 16).GenerateBatch(4)
	for i := range a {
		for j := range a[i].Body {
			if a[i].Body[j] != b[i].Body[j] {
				t.Fatal("same seed produced different programs")
			}
		}
	}
}
