package core

import (
	"math/rand"
	"sync"
	"testing"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/ml/tok"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl/rocket"
)

func TestEq1Reward(t *testing.T) {
	p := NewPipeline(TestPipelineConfig())
	reward := Eq1Reward(p.Tok, 1.0)
	// A prompt of 0 tokens + 3 valid instructions -> N=3, invalid=0.
	valid := []uint32{isa.NOP, isa.Enc(isa.OpADD, 1, 2, 3, 0), isa.Enc(isa.OpSD, 0, 8, 9, 16)}
	toks := p.Tok.EncodeBody(valid)
	if got := reward(toks, 0); got != 3 {
		t.Errorf("reward = %v, want 3", got)
	}
	// Two UNK parcels decode to one invalid word: N=1, invalid=1 -> -4.
	if got := reward([]int{tok.UNK, tok.UNK}, 0); got != -4 {
		t.Errorf("reward = %v, want -4", got)
	}
}

func TestCoverageRewardShape(t *testing.T) {
	w := DefaultRewardWeights()
	improving := CoverageReward(cov.Scores{Standalone: 50, Incremental: 10}, 1000, w)
	stagnant := CoverageReward(cov.Scores{Standalone: 50, Incremental: 0}, 1000, w)
	if improving <= stagnant {
		t.Errorf("improving %.3f must beat stagnant %.3f", improving, stagnant)
	}
	if stagnant >= 0.1 {
		t.Errorf("stagnant inputs should be penalised, got %.3f", stagnant)
	}
}

// trainedPipe is a shared pretrained pipeline for functional tests
// that need a working (not necessarily well-trained) model. Tests that
// mutate the model build their own.
var (
	trainedPipeOnce sync.Once
	trainedPipe     *Pipeline
)

func pretrainedPipeline() *Pipeline {
	trainedPipeOnce.Do(func() {
		trainedPipe = NewPipeline(TestPipelineConfig())
		trainedPipe.Pretrain()
	})
	return trainedPipe
}

// quickPipeline builds a minimally trained pipeline for tests that
// only need decodable generations (and may mutate the model).
func quickPipeline(seed int64) *Pipeline {
	cfg := TestPipelineConfig()
	cfg.Seed = seed
	cfg.PretrainSteps = 20
	p := NewPipeline(cfg)
	p.Pretrain()
	return p
}

func TestPipelineStep1ReducesLoss(t *testing.T) {
	p := pretrainedPipeline()
	losses := p.Hist.PretrainLoss
	first := avg(losses[:10])
	last := avg(losses[len(losses)-10:])
	t.Logf("pretrain loss: first %.3f last %.3f", first, last)
	if last >= first*0.9 {
		t.Errorf("pretraining barely learned: first %.3f last %.3f", first, last)
	}
}

func TestPipelineStep2ReducesInvalidRate(t *testing.T) {
	cfg := TestPipelineConfig()
	p := NewPipeline(cfg)
	p.Pretrain()
	before := p.InvalidRate(30)
	p.Cleanup()
	after := p.InvalidRate(30)
	t.Logf("invalid rate: before %.3f after %.3f", before, after)
	// Eq.1 training must not make generations less legal; at this tiny
	// scale we assert non-regression (the full-scale trend is
	// reproduced by experiment E7 and verified in EXPERIMENTS.md).
	if after > before+0.05 {
		t.Errorf("cleanup increased invalid rate: before %.3f after %.3f", before, after)
	}
	if len(p.Hist.Cleanup) != cfg.CleanupSteps {
		t.Fatalf("cleanup stats = %d, want %d", len(p.Hist.Cleanup), cfg.CleanupSteps)
	}
}

func TestPipelineStep3RunsAgainstDUT(t *testing.T) {
	p := quickPipeline(2)
	stats := p.CoverageTune(rocket.New())
	if len(stats) != p.Cfg.CoverageSteps {
		t.Fatalf("coverage stats = %d, want %d", len(stats), p.Cfg.CoverageSteps)
	}
	for i, st := range stats {
		if st.MeanLen <= 0 {
			t.Errorf("step %d generated nothing", i)
		}
	}
}

func TestFuzzerAccumulatesCoverageMonotonically(t *testing.T) {
	g := randfuzz.New(1, 20)
	f := NewFuzzer(g, rocket.New(), Options{BatchSize: 8})
	f.RunTests(64)
	if f.Tests != 64 {
		t.Errorf("Tests = %d, want 64", f.Tests)
	}
	prev := 0.0
	for i, pt := range f.Progress {
		if pt.Coverage < prev {
			t.Fatalf("coverage decreased at point %d: %.3f -> %.3f", i, prev, pt.Coverage)
		}
		prev = pt.Coverage
		if i > 0 && pt.Hours <= f.Progress[i-1].Hours {
			t.Fatal("virtual clock did not advance")
		}
	}
	if f.Coverage() <= 0 {
		t.Error("no coverage accumulated")
	}
}

func TestFuzzerDetectsFindingsWithLLM(t *testing.T) {
	// A short campaign with the trained model over a corpus that
	// includes self-modifying code, MUL/DIV, AMOs: the detector should
	// fire on at least Bug2 (any mul/div in a passing trace mismatches).
	p := pretrainedPipeline()
	g := NewLLMGenerator(p, rocket.New().Space().NumBins(), false, 7)
	f := NewFuzzer(g, rocket.New(), Options{BatchSize: 8, Detect: true})
	f.RunTests(80)
	if f.Det.RawCount == 0 {
		t.Error("no mismatches found by differential testing")
	}
	found := f.Det.Findings()
	if len(found) == 0 {
		t.Error("no classified findings")
	}
}

func TestFuzzerDeterminism(t *testing.T) {
	run := func() (float64, int) {
		g := randfuzz.New(3, 16)
		f := NewFuzzer(g, rocket.New(), Options{BatchSize: 8, Parallel: 4})
		f.RunTests(48)
		return f.Coverage(), f.Tests
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("campaign not deterministic: (%.4f,%d) vs (%.4f,%d)", c1, n1, c2, n2)
	}
}

func TestTheHuzzPoolGrowsAndMutates(t *testing.T) {
	g := thehuzz.New(1, 20)
	f := NewFuzzer(g, rocket.New(), Options{BatchSize: 16})
	f.RunTests(160)
	if g.PoolSize() == 0 {
		t.Error("TheHuzz pool never accumulated interesting inputs")
	}
}

func TestCoverageGuidanceBeatsNoFeedback(t *testing.T) {
	// TheHuzz (coverage feedback) vs raw-random (no feedback, mostly
	// illegal words) on an equal budget: feedback must win clearly.
	budget := 320
	th := thehuzz.New(5, 20)
	fTH := NewFuzzer(th, rocket.New(), Options{BatchSize: 16})
	fTH.RunTests(budget)

	raw := randfuzz.New(5, 20)
	raw.Raw = true
	fRaw := NewFuzzer(raw, rocket.New(), Options{BatchSize: 16})
	fRaw.RunTests(budget)

	t.Logf("thehuzz %.2f%%  raw-random %.2f%%", fTH.Coverage(), fRaw.Coverage())
	if fTH.Coverage() <= fRaw.Coverage() {
		t.Errorf("coverage feedback (%.2f%%) should beat raw random (%.2f%%)",
			fTH.Coverage(), fRaw.Coverage())
	}
}

func TestLLMGeneratorProducesRunnablePrograms(t *testing.T) {
	p := pretrainedPipeline()
	g := NewLLMGenerator(p, rocket.New().Space().NumBins(), false, 11)
	progs := g.GenerateBatch(16)
	if len(progs) != 16 {
		t.Fatalf("batch = %d", len(progs))
	}
	nonEmpty := 0
	for _, pr := range progs {
		if len(pr.Body) > 0 {
			nonEmpty++
		}
		if len(pr.Body) > prog.MaxBodyInstructions {
			t.Error("body exceeds harness limit")
		}
	}
	if nonEmpty < 12 {
		t.Errorf("only %d/16 non-empty generations", nonEmpty)
	}
}

func TestOnlineFeedbackUpdatesModel(t *testing.T) {
	p := quickPipeline(13)
	r := rocket.New()
	g := NewLLMGenerator(p, r.Space().NumBins(), true, 13)
	before := append([]float64(nil), p.Model.TokEmb.Data...)
	f := NewFuzzer(g, r, Options{BatchSize: 8})
	f.RunBatch()
	changed := false
	for i, v := range p.Model.TokEmb.Data {
		if v != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("online feedback did not update the model")
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// rng helper referenced in docs examples.
var _ = rand.New
