// Package core implements ChatFuzz itself: the three-step training
// pipeline (unsupervised pre-training, PPO language cleanup against
// the disassembler, PPO coverage optimisation against the DUT), the
// LLM-based input generator, and the coverage-guided fuzzing loop with
// differential mismatch detection — the paper's primary contribution.
//chatfuzz:deterministic package
package core

import (
	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/ml/ppo"
	"chatfuzz/internal/ml/tok"
)

// Eq1Reward is the paper's Eq. 1 — f(GenText_i) = N_i − 5·Invalid_i —
// computed by decoding the generated tokens into instruction words and
// running them through the deterministic disassembler. scale maps the
// raw score into a PPO-friendly range.
func Eq1Reward(t *tok.Tokenizer, scale float64) ppo.RewardFunc {
	return func(tokens []int, promptN int) float64 {
		words := t.Decode(tokens[promptN:])
		n := len(words)
		invalid := isa.CountInvalid(words)
		return scale * float64(n-5*invalid)
	}
}

// RewardWeights parameterises the step-3 coverage reward (paper
// §III-B3: bonus for coverage improvement, negative reward otherwise,
// plus the stand-alone coverage term). The ablation experiment A2
// varies these.
type RewardWeights struct {
	// IncrementalScale multiplies the fraction of newly covered bins.
	IncrementalScale float64
	// ImproveBonus is added when the input covers anything new.
	ImproveBonus float64
	// NoImprovePenalty is added (negative) when it does not.
	NoImprovePenalty float64
	// StandaloneScale multiplies the input's own coverage fraction.
	StandaloneScale float64
}

// DefaultRewardWeights mirrors the paper's description.
func DefaultRewardWeights() RewardWeights {
	return RewardWeights{
		IncrementalScale: 20,
		ImproveBonus:     1,
		NoImprovePenalty: -0.5,
		StandaloneScale:  1,
	}
}

// IncrementalOnlyWeights is the A2 ablation variant: reward only
// incremental coverage, with no stand-alone shaping.
func IncrementalOnlyWeights() RewardWeights {
	return RewardWeights{IncrementalScale: 20, ImproveBonus: 1, NoImprovePenalty: -0.5}
}

// CoverageReward maps a Coverage Calculator score onto a scalar PPO
// reward.
func CoverageReward(sc cov.Scores, totalBins int, w RewardWeights) float64 {
	if totalBins == 0 {
		return 0
	}
	r := w.StandaloneScale * float64(sc.Standalone) / float64(totalBins)
	if sc.Incremental > 0 {
		r += w.ImproveBonus + w.IncrementalScale*float64(sc.Incremental)/float64(totalBins)
	} else {
		r += w.NoImprovePenalty
	}
	return r
}
