package core

// Regression tests for the hot-loop fixes that rode along with the
// batch execution engine: silently ignored build errors, the
// off-by-one detector test index, and RunTests overshooting its
// budget — plus the engine/serial bit-identity guarantees.

import (
	"reflect"
	"testing"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl/rocket"
)

// fixedGen replays a fixed program list, cycling as needed.
type fixedGen struct {
	progs []prog.Program
}

func (g *fixedGen) Name() string { return "fixed" }

func (g *fixedGen) GenerateBatch(n int) []prog.Program {
	out := make([]prog.Program, n)
	for i := range out {
		out[i] = g.progs[i%len(g.progs)]
	}
	return out
}

func (g *fixedGen) Feedback([]cov.Scores) {}

func nopBody(n int) []uint32 {
	body := make([]uint32, n)
	for i := range body {
		body[i] = isa.NOP
	}
	return body
}

// TestRunTestsClampsFinalBatch: RunTests(n) must execute exactly n
// tests — the seed loop ran a full final batch past n (512 tests for
// RunTests(500) at BatchSize 16), so campaigns with different batch
// sizes executed different budgets.
func TestRunTestsClampsFinalBatch(t *testing.T) {
	for _, serial := range []bool{false, true} {
		f := NewFuzzer(randfuzz.New(1, 12), rocket.New(), Options{BatchSize: 16, Serial: serial})
		f.RunTests(20)
		f.Close()
		if f.Tests != 20 {
			t.Errorf("serial=%v: RunTests(20) at BatchSize 16 ran %d tests, want exactly 20", serial, f.Tests)
		}
		if got := len(f.Progress); got != 20 {
			t.Errorf("serial=%v: %d trajectory points, want 20", serial, got)
		}
	}
}

// TestBuildErrorScoredInvalid: a program the harness cannot build must
// be scored as invalid (zero standalone/incremental coverage, total
// unchanged) instead of running an all-zero image — and must not
// panic, on either execution path.
func TestBuildErrorScoredInvalid(t *testing.T) {
	for _, serial := range []bool{false, true} {
		gen := &fixedGen{progs: []prog.Program{
			{Body: nopBody(8)},
			{Body: make([]uint32, prog.MaxBodyInstructions+1)}, // unbuildable
			{Body: nopBody(8)},
		}}
		f := NewFuzzer(gen, rocket.New(), Options{BatchSize: 3, Detect: true, Serial: serial})
		scores := f.RunBatch()
		f.Close()

		if f.Tests != 3 {
			t.Fatalf("serial=%v: %d tests accounted, want 3", serial, f.Tests)
		}
		if f.Det.Tests != 3 {
			t.Errorf("serial=%v: detector counted %d tests, want 3 (invalid tests consume a test number)", serial, f.Det.Tests)
		}
		bad := scores[1]
		if bad.Standalone != 0 || bad.Incremental != 0 {
			t.Errorf("serial=%v: invalid program scored %+v, want zero standalone/incremental", serial, bad)
		}
		if bad.TotalBins != scores[0].TotalBins {
			t.Errorf("serial=%v: invalid program changed cumulative coverage: %d -> %d",
				serial, scores[0].TotalBins, bad.TotalBins)
		}
		// The invalid test still appears in the trajectory (it consumed
		// a test slot and per-test overhead), with coverage flat.
		if f.Progress[1].Coverage != f.Progress[0].Coverage {
			t.Errorf("serial=%v: invalid test moved the coverage trajectory", serial)
		}
		if f.Progress[1].Hours <= f.Progress[0].Hours {
			t.Errorf("serial=%v: invalid test charged no overhead", serial)
		}
	}
}

// TestDetectorTestIndexMatchesTrajectory: the detector used to be
// handed the pre-increment test counter while ProgressPoint.Tests
// recorded the post-increment value, so findings pointed one test
// before the input that produced them. A MUL body deterministically
// fires Bug2 (the Rocket tracer omits MUL/DIV writeback); placed as
// the second of three tests, its findings must carry Test == 2, and
// that number must exist in the trajectory.
func TestDetectorTestIndexMatchesTrajectory(t *testing.T) {
	mulBody := []uint32{isa.Enc(isa.OpMUL, 5, 6, 7, 0)}
	for _, serial := range []bool{false, true} {
		gen := &fixedGen{progs: []prog.Program{
			{Body: nopBody(4)},
			{Body: mulBody},
			{Body: nopBody(4)},
		}}
		f := NewFuzzer(gen, rocket.New(), Options{BatchSize: 3, Detect: true, Serial: serial})
		f.RunBatch()
		f.Close()

		var bug2Test int
		for _, r := range f.Det.Unique() {
			if r.Finding == mismatch.FindingBug2 {
				bug2Test = r.Example.Test
			}
		}
		if bug2Test == 0 {
			t.Fatalf("serial=%v: MUL body did not fire Bug2", serial)
		}
		if bug2Test != 2 {
			t.Errorf("serial=%v: Bug2 recorded at test %d, want 2 (the input that produced it)", serial, bug2Test)
		}
		// Invariant: every finding's Test is a valid post-increment
		// test number present in the trajectory.
		if f.Progress[bug2Test-1].Tests != bug2Test {
			t.Errorf("serial=%v: trajectory point %d has Tests=%d, finding claims %d",
				serial, bug2Test-1, f.Progress[bug2Test-1].Tests, bug2Test)
		}
	}
}

// TestEngineMatchesSerialPath is the engine's determinism contract: a
// fixed-seed campaign produces a bit-identical coverage trajectory and
// detector state on the engine and the serial fork-join loop, for both
// a feedback-free generator (which exercises the generation/simulation
// double buffer) and a feedback-consuming one (TheHuzz, whose pool
// admission depends on scores).
func TestEngineMatchesSerialPath(t *testing.T) {
	type maker func() Generator
	cases := []struct {
		name string
		gen  maker
	}{
		{"feedback-free", func() Generator { return randfuzz.New(5, 16) }},
		{"thehuzz", func() Generator { return thehuzz.New(5, 16) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := func(serial bool, parallel int) *Fuzzer {
				f := NewFuzzer(c.gen(), rocket.New(), Options{
					BatchSize: 8, Detect: true, Serial: serial, Parallel: parallel,
				})
				f.RunTests(52) // deliberately not a multiple of the batch size
				f.Close()
				return f
			}
			want := run(true, 1)
			for _, parallel := range []int{1, 4} {
				got := run(false, parallel)
				if !reflect.DeepEqual(got.Progress, want.Progress) {
					t.Errorf("parallel=%d: engine trajectory diverged from serial path", parallel)
				}
				if got.Coverage() != want.Coverage() {
					t.Errorf("parallel=%d: coverage %.6f vs serial %.6f", parallel, got.Coverage(), want.Coverage())
				}
				if got.Det.RawCount != want.Det.RawCount || got.Det.FilteredRaw != want.Det.FilteredRaw {
					t.Errorf("parallel=%d: detector counts (%d,%d) vs serial (%d,%d)",
						parallel, got.Det.RawCount, got.Det.FilteredRaw, want.Det.RawCount, want.Det.FilteredRaw)
				}
			}
		})
	}
}

// TestRunBatchAfterClosePanics: Close promises no further batches may
// run; the failure must be loud on both paths, never a silent
// fallback to the serial loop.
func TestRunBatchAfterClosePanics(t *testing.T) {
	for _, serial := range []bool{false, true} {
		f := NewFuzzer(randfuzz.New(1, 8), rocket.New(), Options{BatchSize: 4, Serial: serial})
		f.RunBatch()
		f.Close()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("serial=%v: RunBatch after Close did not panic", serial)
				}
			}()
			f.RunBatch()
		}()
	}
}
