package core

import "testing"

// trajFuzzer builds a Fuzzer with a synthetic coverage trajectory; the
// trajectory helpers only read Progress.
func trajFuzzer(pts []ProgressPoint) *Fuzzer {
	return &Fuzzer{Progress: pts}
}

var trajectory = []ProgressPoint{
	{Tests: 16, Hours: 0.5, Coverage: 10},
	{Tests: 32, Hours: 1.0, Coverage: 25},
	{Tests: 48, Hours: 2.0, Coverage: 25}, // plateau round
	{Tests: 64, Hours: 4.0, Coverage: 60},
}

func TestCoverageAt(t *testing.T) {
	f := trajFuzzer(trajectory)
	cases := []struct {
		name  string
		hours float64
		want  float64
	}{
		{"before first sample", 0, 0},
		{"just before first sample", 0.49, 0},
		{"exactly on first sample", 0.5, 10},
		{"between samples holds previous", 0.75, 10},
		{"exactly on later sample", 1.0, 25},
		{"inside plateau", 1.5, 25},
		{"exactly on last sample", 4.0, 60},
		{"beyond last sample holds final", 100, 60},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := f.CoverageAt(c.hours); got != c.want {
				t.Errorf("CoverageAt(%v) = %v, want %v", c.hours, got, c.want)
			}
		})
	}

	if got := trajFuzzer(nil).CoverageAt(1); got != 0 {
		t.Errorf("CoverageAt on empty trajectory = %v, want 0", got)
	}
}

func TestTimeToCoverage(t *testing.T) {
	f := trajFuzzer(trajectory)
	cases := []struct {
		name string
		pct  float64
		want float64
	}{
		{"below first sample crosses immediately", 5, 0.5},
		{"exactly first sample", 10, 0.5},
		{"between samples takes next", 11, 1.0},
		{"plateau value reached at its first round", 25, 1.0},
		{"final value", 60, 4.0},
		{"never reached", 60.01, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := f.TimeToCoverage(c.pct); got != c.want {
				t.Errorf("TimeToCoverage(%v) = %v, want %v", c.pct, got, c.want)
			}
		})
	}

	if got := trajFuzzer(nil).TimeToCoverage(1); got != -1 {
		t.Errorf("TimeToCoverage on empty trajectory = %v, want -1", got)
	}
}

func TestTestsToCoverage(t *testing.T) {
	f := trajFuzzer(trajectory)
	cases := []struct {
		name string
		pct  float64
		want int
	}{
		{"below first sample", 1, 16},
		{"exactly first sample", 10, 16},
		{"between samples takes next", 10.5, 32},
		{"plateau value reached at its first round", 25, 32},
		{"final value", 60, 64},
		{"never reached", 99, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := f.TestsToCoverage(c.pct); got != c.want {
				t.Errorf("TestsToCoverage(%v) = %v, want %v", c.pct, got, c.want)
			}
		})
	}

	if got := trajFuzzer(nil).TestsToCoverage(1); got != -1 {
		t.Errorf("TestsToCoverage on empty trajectory = %v, want -1", got)
	}
}
