package core

import (
	"testing"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl/rocket"
)

// TestSteadyStateCommitAllocFree pins the commit path's allocation
// budget at zero: once the trajectory slice has capacity, committing a
// test — coverage scoring (batch snapshot reuse via Set.CopyFrom),
// mismatch analysis on a clean trace, clock charge, progress append —
// must not grow the heap. This is the regression guard for the
// pipelined engine's alloc-free commit claim; a Clone or per-commit
// buffer sneaking back into cov or mismatch fails it.
func TestSteadyStateCommitAllocFree(t *testing.T) {
	dut := rocket.New()
	f := NewFuzzer(randfuzz.New(3, 16), dut, Options{BatchSize: 4, Detect: true, Parallel: 1})
	defer f.Close()

	// Straight-line addi body: DUT and golden model agree, so the
	// detector exercises its steady-state no-mismatch path.
	body := make([]uint32, 16)
	for i := range body {
		body[i] = uint32(i)<<20 | uint32(i%31+1)<<7 | 0x13
	}
	res, golden, err := f.runOne(prog.Program{Body: body})
	if err != nil {
		t.Fatal(err)
	}

	// One warm commit builds any lazily-grown detector/calculator state.
	f.Calc.BeginBatch()
	f.commitOne(nil, res, golden)

	const runs = 200
	grown := make([]ProgressPoint, len(f.Progress), len(f.Progress)+2*runs+8)
	copy(grown, f.Progress)
	f.Progress = grown

	avg := testing.AllocsPerRun(runs, func() {
		f.Calc.BeginBatch()
		f.commitOne(nil, res, golden)
	})
	if avg != 0 {
		t.Errorf("steady-state commit allocates %.1f objects/run, want 0", avg)
	}
	if f.Det.RawCount != 0 {
		t.Fatalf("benign trace produced %d raw mismatches; the measurement exercised the wrong path", f.Det.RawCount)
	}
}
