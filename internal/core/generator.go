package core

import (
	"math/rand"

	"chatfuzz/internal/corpus"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
	"chatfuzz/internal/ml/tok"
	"chatfuzz/internal/prog"
)

func validWord(w uint32) bool { return isa.Decode(w).Valid() }

// Generator produces batches of test programs for the fuzzing loop and
// receives per-input coverage scores as feedback. Feedback always
// refers to the most recent GenerateBatch call, in order.
type Generator interface {
	Name() string
	GenerateBatch(n int) []prog.Program
	Feedback(scores []cov.Scores)
}

// LLMGenerator is ChatFuzz's LLM-based Input Generator in the fuzzing
// loop: it samples test vectors from the trained model and — when
// Online is set — keeps improving the model from the Coverage
// Calculator's scores, exactly as Fig. 1a's feedback arrow describes.
type LLMGenerator struct {
	Model  *nn.GPT
	Tok    *tok.Tokenizer
	Corpus *corpus.Corpus

	// Online, when non-nil, applies PPO updates from fuzzing feedback.
	Online *ppo.Trainer
	// Weights shape the coverage reward for online updates.
	Weights RewardWeights
	// BodyInstrs bounds generation length (instructions).
	BodyInstrs int
	// Temperature/TopK shape exploration.
	Temperature float64
	TopK        int

	rng       *rand.Rand
	lastRolls []*ppo.Rollout
	rollTest  []int // test index of each rollout chunk
	binsTotal int
}

// NewLLMGenerator wires a trained pipeline into a fuzzing generator.
// online enables continued PPO updates during fuzzing.
func NewLLMGenerator(p *Pipeline, binsTotal int, online bool, seed int64) *LLMGenerator {
	g := &LLMGenerator{
		Model:       p.Model,
		Tok:         p.Tok,
		Corpus:      p.Corpus,
		Weights:     p.Cfg.Weights,
		BodyInstrs:  p.Cfg.BodyInstrs,
		Temperature: 1.0,
		TopK:        16, // cut the low-probability tail: fewer illegal parcel pairings
		rng:         rand.New(rand.NewSource(seed)),
		binsTotal:   binsTotal,
	}
	if online {
		cfg := p.ppoConfig()
		cfg.LR = 1e-4 // gentler than offline training: avoid drift over long campaigns
		g.Online = ppo.NewTrainer(p.Model, cfg, g.rng)
	}
	return g
}

// Name implements Generator.
func (g *LLMGenerator) Name() string { return "chatfuzz" }

// FeedbackFree implements the optional engine capability: with online
// PPO off, Feedback is a no-op and the execution engine may generate
// the next batch while the current one simulates.
func (g *LLMGenerator) FeedbackFree() bool { return g.Online == nil }

// GenerateBatch implements Generator. Each test vector is assembled
// from one or more model generations: a corpus prompt is completed by
// the model until EOS (one function-sized chunk), and chunks are
// concatenated until the per-test instruction budget is reached — so
// every generator in the evaluation spends the same number of
// instructions per test, as the paper's comparison requires.
func (g *LLMGenerator) GenerateBatch(n int) []prog.Program {
	progs := make([]prog.Program, n)
	g.lastRolls = g.lastRolls[:0]
	g.rollTest = g.rollTest[:0]
	for i := 0; i < n; i++ {
		var body []uint32
		for len(body) < g.BodyInstrs {
			fn := g.Corpus.Functions[g.rng.Intn(len(g.Corpus.Functions))]
			promptWords := corpus.Window(g.rng, fn)
			promptToks := append([]int{tok.BOS}, g.Tok.EncodeBody(promptWords)...)
			budget := 2 * (g.BodyInstrs - len(body))
			res := g.Model.Generate(g.rng, promptToks, budget, g.Temperature, g.TopK, tok.EOS)
			words := g.Tok.Decode(res.Tokens)
			if len(words) == 0 {
				break
			}
			if len(words) > g.BodyInstrs-len(body) {
				words = words[:g.BodyInstrs-len(body)]
			}
			body = append(body, words...)
			if len(res.LogProbs) > 0 {
				g.lastRolls = append(g.lastRolls, ppo.FromGeneration(res, 0))
				g.rollTest = append(g.rollTest, i)
			}
		}
		progs[i] = prog.Program{Body: body}
	}
	return progs
}

// Feedback implements Generator: scores become PPO rewards when online
// learning is enabled. Every generation chunk of a test inherits the
// test's coverage reward.
func (g *LLMGenerator) Feedback(scores []cov.Scores) {
	if g.Online == nil {
		return
	}
	rolls := make([]*ppo.Rollout, 0, len(g.lastRolls))
	for k, r := range g.lastRolls {
		ti := g.rollTest[k]
		if ti >= len(scores) {
			continue
		}
		r.Score = CoverageReward(scores[ti], g.binsTotal, g.Weights)
		rolls = append(rolls, r)
	}
	g.Online.StepRollouts(rolls)
}
