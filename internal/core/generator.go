package core

import (
	"math/rand"

	"chatfuzz/internal/corpus"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/isa"
	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
	"chatfuzz/internal/ml/tok"
	"chatfuzz/internal/prog"
)

func validWord(w uint32) bool { return isa.Decode(w).Valid() }

// Generator produces batches of test programs for the fuzzing loop and
// receives per-input coverage scores as feedback. Feedback always
// refers to the most recent GenerateBatch call, in order.
type Generator interface {
	Name() string
	GenerateBatch(n int) []prog.Program
	Feedback(scores []cov.Scores)
}

// RolloutSink consumes the scored PPO rollouts a fuzzing round
// produced. It is the pipeline hook that exposes per-program
// generation results to external learners: the fleet-learning
// subsystem implements it with a per-shard model replica's trainer, so
// the same simulation that fuzzes the DUT also rewards the replica —
// without the generator knowing anything about fleets or averaging.
type RolloutSink interface {
	StepRollouts(rolls []*ppo.Rollout) ppo.Stats
}

// LLMGenerator is ChatFuzz's LLM-based Input Generator in the fuzzing
// loop: it samples test vectors from the trained model and — when
// Online or Sink is set — keeps improving the model from the Coverage
// Calculator's scores, exactly as Fig. 1a's feedback arrow describes.
type LLMGenerator struct {
	Model  *nn.GPT
	Tok    *tok.Tokenizer
	Corpus *corpus.Corpus

	// Online, when non-nil, applies PPO updates from fuzzing feedback.
	Online *ppo.Trainer
	// Sink, when non-nil, receives the scored rollouts instead of
	// Online: the generator samples from Model (a replica) and the sink
	// decides how (and on which trainer) to learn from them.
	Sink RolloutSink
	// Weights shape the coverage reward for online updates.
	Weights RewardWeights
	// BodyInstrs bounds generation length (instructions).
	BodyInstrs int
	// Temperature/TopK shape exploration.
	Temperature float64
	TopK        int

	rng       *rand.Rand
	lastRolls []*ppo.Rollout
	rollTest  []int // test index of each rollout chunk
	binsTotal int
}

// NewLLMGenerator wires a trained pipeline into a fuzzing generator.
// online enables continued PPO updates during fuzzing.
func NewLLMGenerator(p *Pipeline, binsTotal int, online bool, seed int64) *LLMGenerator {
	g := &LLMGenerator{
		Model:       p.Model,
		Tok:         p.Tok,
		Corpus:      p.Corpus,
		Weights:     p.Cfg.Weights,
		BodyInstrs:  p.Cfg.BodyInstrs,
		Temperature: 1.0,
		TopK:        16, // cut the low-probability tail: fewer illegal parcel pairings
		rng:         rand.New(rand.NewSource(seed)),
		binsTotal:   binsTotal,
	}
	if online {
		g.Online = ppo.NewTrainer(p.Model, p.OnlinePPOConfig(), g.rng)
	}
	return g
}

// NewReplicaGenerator wires a model replica into the fuzzing loop: the
// generator samples from model (not the pipeline's shared weights) and
// forwards every round's scored rollouts to sink. This is the per-shard
// generation side of fleet learning — tokenizer, corpus, reward shaping
// and body budget still come from the trained pipeline, but the weights
// being sampled (and updated, via the sink) are the replica's own.
func NewReplicaGenerator(p *Pipeline, model *nn.GPT, sink RolloutSink, binsTotal int, seed int64) *LLMGenerator {
	g := &LLMGenerator{
		Model:       model,
		Tok:         p.Tok,
		Corpus:      p.Corpus,
		Sink:        sink,
		Weights:     p.Cfg.Weights,
		BodyInstrs:  p.Cfg.BodyInstrs,
		Temperature: 1.0,
		TopK:        16,
		rng:         rand.New(rand.NewSource(seed)),
		binsTotal:   binsTotal,
	}
	return g
}

// Name implements Generator.
func (g *LLMGenerator) Name() string { return "chatfuzz" }

// FeedbackFree implements the optional engine capability: with online
// PPO off and no rollout sink, Feedback is a no-op and the execution
// engine may generate the next batch while the current one simulates.
// A learning generator must return false here — the next batch has to
// be sampled from the post-update weights, exactly as the serial loop
// would — which is how per-input scores reach feedback-driven
// generators without perturbing the double-buffered engine path for
// everyone else.
func (g *LLMGenerator) FeedbackFree() bool { return g.Online == nil && g.Sink == nil }

// GenerateBatch implements Generator. Each test vector is assembled
// from one or more model generations: a corpus prompt is completed by
// the model until EOS (one function-sized chunk), and chunks are
// concatenated until the per-test instruction budget is reached — so
// every generator in the evaluation spends the same number of
// instructions per test, as the paper's comparison requires.
func (g *LLMGenerator) GenerateBatch(n int) []prog.Program {
	progs := make([]prog.Program, n)
	g.lastRolls = g.lastRolls[:0]
	g.rollTest = g.rollTest[:0]
	for i := 0; i < n; i++ {
		var body []uint32
		for len(body) < g.BodyInstrs {
			fn := g.Corpus.Functions[g.rng.Intn(len(g.Corpus.Functions))]
			promptWords := corpus.Window(g.rng, fn)
			promptToks := append([]int{tok.BOS}, g.Tok.EncodeBody(promptWords)...)
			budget := 2 * (g.BodyInstrs - len(body))
			res := g.Model.Generate(g.rng, promptToks, budget, g.Temperature, g.TopK, tok.EOS)
			words := g.Tok.Decode(res.Tokens)
			if len(words) == 0 {
				break
			}
			if len(words) > g.BodyInstrs-len(body) {
				words = words[:g.BodyInstrs-len(body)]
			}
			body = append(body, words...)
			if len(res.LogProbs) > 0 {
				g.lastRolls = append(g.lastRolls, ppo.FromGeneration(res, 0))
				g.rollTest = append(g.rollTest, i)
			}
		}
		progs[i] = prog.Program{Body: body}
	}
	return progs
}

// Feedback implements Generator: scores become PPO rewards when online
// learning is enabled (via the built-in trainer or an external sink).
// Every generation chunk of a test inherits the test's coverage reward.
func (g *LLMGenerator) Feedback(scores []cov.Scores) {
	if g.Online == nil && g.Sink == nil {
		return
	}
	rolls := make([]*ppo.Rollout, 0, len(g.lastRolls))
	for k, r := range g.lastRolls {
		ti := g.rollTest[k]
		if ti >= len(scores) {
			continue
		}
		r.Score = CoverageReward(scores[ti], g.binsTotal, g.Weights)
		rolls = append(rolls, r)
	}
	if g.Sink != nil {
		g.Sink.StepRollouts(rolls)
		return
	}
	g.Online.StepRollouts(rolls)
}
