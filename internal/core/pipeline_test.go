package core

import (
	"reflect"
	"testing"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/rtl/rocket"
)

// TestPipelinedRunMatchesUnpipelined: RunBatches and RunTests with an
// in-flight window must commit the exact accounting stream of the
// strictly alternating loop — same trajectory points, same test
// counts, same detector totals — for a feedback-free generator fed the
// same seed. Uses a test budget that does not divide the batch size,
// so the windowed path's final-batch clamping is exercised too.
func TestPipelinedRunMatchesUnpipelined(t *testing.T) {
	type result struct {
		progress []ProgressPoint
		tests    int
		raw      int
		pipes    int64
	}
	run := func(inflight int, tests int) result {
		f := NewFuzzer(randfuzz.New(7, 12), rocket.New(), Options{
			BatchSize: 5, Detect: true, Parallel: 1, Inflight: inflight,
		})
		defer f.Close()
		if tests > 0 {
			f.RunTests(tests)
		} else {
			f.RunBatches(4)
		}
		st, _ := f.EngineStats()
		return result{f.Progress, f.Tests, f.Det.RawCount, st.PipelinedRounds}
	}
	for _, tests := range []int{0, 23} {
		want := run(1, tests)
		got := run(3, tests)
		if got.tests != want.tests {
			t.Fatalf("tests=%d: pipelined ran %d tests, serial %d", tests, got.tests, want.tests)
		}
		if !reflect.DeepEqual(got.progress, want.progress) {
			t.Fatalf("tests=%d: pipelined trajectory diverged from the serial loop", tests)
		}
		if got.raw != want.raw {
			t.Fatalf("tests=%d: detector saw %d raw mismatches pipelined, %d serial", tests, got.raw, want.raw)
		}
		if got.pipes == 0 {
			t.Errorf("tests=%d: Inflight 3 never overlapped rounds", tests)
		}
		if want.pipes != 0 {
			t.Errorf("tests=%d: Inflight 1 reported %d pipelined rounds", tests, want.pipes)
		}
	}
}
