package core

import (
	"runtime"
	"sync"

	"chatfuzz/internal/cov"
	"chatfuzz/internal/iss"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/trace"
	"chatfuzz/internal/vtime"
)

// ProgressPoint is one sample of the campaign's coverage trajectory
// (the series behind Fig. 2).
type ProgressPoint struct {
	Tests    int
	Hours    float64 // virtual wall-clock hours
	Coverage float64 // cumulative condition coverage %
}

// Options configures a fuzzing campaign.
type Options struct {
	// BatchSize is the number of test inputs per fuzzing round (one
	// "batch" in the paper's Coverage Calculator semantics).
	BatchSize int
	// Detect enables differential testing against the golden model.
	Detect bool
	// Clock, when nil, defaults to the calibrated VCS clock.
	Clock *vtime.Clock
	// Parallel bounds simulation workers (0 = GOMAXPROCS).
	Parallel int
}

// Fuzzer drives the paper's fuzzing loop (Fig. 1a): the generator
// produces a batch, each entry runs on the DUT (coverage + trace) and
// the golden model (trace), the Coverage Calculator scores entries,
// the Mismatch Detector compares traces, and scores feed back to the
// generator.
type Fuzzer struct {
	Gen  Generator
	DUT  rtl.DUT
	Calc *cov.Calculator
	Det  *mismatch.Detector
	Clk  *vtime.Clock

	BatchSize int
	Tests     int
	Progress  []ProgressPoint

	parallel int
}

// NewFuzzer assembles a campaign.
func NewFuzzer(gen Generator, dut rtl.DUT, opts Options) *Fuzzer {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	clk := opts.Clock
	if clk == nil {
		clk = vtime.NewVCS()
	}
	f := &Fuzzer{
		Gen:       gen,
		DUT:       dut,
		Calc:      cov.NewCalculator(dut.Space()),
		Clk:       clk,
		BatchSize: opts.BatchSize,
		parallel:  opts.Parallel,
	}
	if opts.Detect {
		f.Det = mismatch.NewDetector()
	}
	return f
}

// Coverage returns the cumulative condition-coverage percentage.
func (f *Fuzzer) Coverage() float64 { return f.Calc.Total().Percent() }

// runOne simulates one program on the DUT (and the golden model when
// detection is on).
func (f *Fuzzer) runOne(p prog.Program) (rtl.Result, []trace.Entry) {
	img, _ := prog.Build(p)
	budget := prog.InstructionBudget(len(p.Body))
	res := f.DUT.Run(img, budget)
	var golden []trace.Entry
	if f.Det != nil {
		m := mem.Platform()
		m.Load(img)
		g := iss.New(m, img.Entry)
		golden = g.Run(budget)
	}
	return res, golden
}

// RunBatch executes one fuzzing round and returns the per-entry
// scores.
func (f *Fuzzer) RunBatch() []cov.Scores {
	progs := f.Gen.GenerateBatch(f.BatchSize)

	type outcome struct {
		res    rtl.Result
		golden []trace.Entry
	}
	outs := make([]outcome, len(progs))

	workers := f.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(progs) {
		workers = len(progs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, golden := f.runOne(progs[i])
				outs[i] = outcome{res, golden}
			}
		}()
	}
	for i := range progs {
		next <- i
	}
	close(next)
	wg.Wait()

	// Deterministic, in-order accounting.
	f.Calc.BeginBatch()
	scores := make([]cov.Scores, len(progs))
	for i, o := range outs {
		scores[i] = f.Calc.Score(o.res.Coverage)
		if f.Det != nil {
			f.Det.Analyze(f.Tests, o.res.Trace, o.golden)
		}
		f.Clk.ChargeTest(o.res.Cycles)
		f.Tests++
		f.Progress = append(f.Progress, ProgressPoint{
			Tests:    f.Tests,
			Hours:    f.Clk.Hours(),
			Coverage: scores[i].TotalPercent,
		})
	}
	f.Gen.Feedback(scores)
	return scores
}

// RunTests runs batches until n tests have executed.
func (f *Fuzzer) RunTests(n int) {
	for f.Tests < n {
		f.RunBatch()
	}
}

// RunVirtualHours runs until the virtual clock passes h hours or
// maxTests tests have executed (a safety cap; 0 means no cap).
func (f *Fuzzer) RunVirtualHours(h float64, maxTests int) {
	for f.Clk.Hours() < h {
		if maxTests > 0 && f.Tests >= maxTests {
			return
		}
		f.RunBatch()
	}
}

// CoverageAt interpolates the campaign's coverage at a virtual time,
// for time-series reporting.
func (f *Fuzzer) CoverageAt(hours float64) float64 {
	last := 0.0
	for _, pt := range f.Progress {
		if pt.Hours > hours {
			break
		}
		last = pt.Coverage
	}
	return last
}

// TimeToCoverage returns the virtual hours at which cumulative
// coverage first reached pct, or -1 if never.
func (f *Fuzzer) TimeToCoverage(pct float64) float64 {
	for _, pt := range f.Progress {
		if pt.Coverage >= pct {
			return pt.Hours
		}
	}
	return -1
}

// TestsToCoverage returns the test count at which coverage first
// reached pct, or -1.
func (f *Fuzzer) TestsToCoverage(pct float64) int {
	for _, pt := range f.Progress {
		if pt.Coverage >= pct {
			return pt.Tests
		}
	}
	return -1
}
