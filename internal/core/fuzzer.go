package core

import (
	"runtime"
	"sync"

	"chatfuzz/internal/cov"
	"chatfuzz/internal/engine"
	"chatfuzz/internal/mem"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/telemetry"
	"chatfuzz/internal/trace"
	"chatfuzz/internal/vtime"
)

// ProgressPoint is one sample of the campaign's coverage trajectory
// (the series behind Fig. 2).
type ProgressPoint struct {
	Tests    int
	Hours    float64 // virtual wall-clock hours
	Coverage float64 // cumulative condition coverage %
}

// Options configures a fuzzing campaign.
type Options struct {
	// BatchSize is the number of test inputs per fuzzing round (one
	// "batch" in the paper's Coverage Calculator semantics).
	BatchSize int
	// Detect enables differential testing against the golden model.
	Detect bool
	// Clock, when nil, defaults to the calibrated VCS clock.
	Clock *vtime.Clock
	// Parallel bounds simulation workers (0 = GOMAXPROCS). Ignored
	// when Pool is set.
	Parallel int
	// Inflight bounds submitted-but-uncommitted rounds per shard
	// (<= 0 means 1, no sub-round pipelining). With Inflight N and a
	// FeedbackFree generator, RunBatches/RunTests keep up to N rounds
	// in flight: round N+1 generates and simulates while round N's
	// in-order committer drains. Execution-only — the committed
	// accounting stream is bit-identical to Inflight 1 — and inert on
	// the Serial path.
	Inflight int
	// Pool, when non-nil, makes the fuzzer's engine a lightweight
	// submitter into a shared fleet-level work-stealing pool instead
	// of owning workers. Ownership does not transfer: Close releases
	// the fuzzer's engine but never the pool, which belongs to
	// whoever built it (typically the campaign orchestrator, which
	// closes it after every shard). Ignored with Serial.
	Pool *engine.FleetPool
	// Serial disables the persistent batch execution engine and runs
	// the original fork-join loop: a goroutine pool spawned per round,
	// per-test scratch allocation, and generation strictly serialized
	// against simulation. The two paths produce bit-identical
	// trajectories, detector output and checkpoints; Serial exists as
	// the reference implementation for determinism tests and as the
	// baseline for the engine benchmarks.
	Serial bool
	// Telemetry, when non-nil, records the fuzzer's generate and
	// commit spans on its own flight-recorder track (and is handed to
	// the engine for per-worker build/sim/golden spans). Execution-
	// only: never checkpointed, never read back.
	Telemetry *telemetry.Recorder
	// TelemetryLabel names the fuzzer's track in the trace (default
	// the DUT name; a sharded fleet passes "shard<N>/<design>").
	TelemetryLabel string
}

// FeedbackFree is an optional Generator capability: a generator whose
// Feedback is a no-op (random baselines, an LLM generator with online
// learning off) returns true, telling the fuzzer that batch N+1 may be
// generated before batch N's scores are committed. That is what lets
// RunTests double-buffer — generation of the next round overlapping
// DUT/ISS simulation of the current one — without perturbing the
// generator's stream relative to the serial loop.
type FeedbackFree interface {
	FeedbackFree() bool
}

// Fuzzer drives the paper's fuzzing loop (Fig. 1a): the generator
// produces a batch, each entry runs on the DUT (coverage + trace) and
// the golden model (trace), the Coverage Calculator scores entries,
// the Mismatch Detector compares traces, and scores feed back to the
// generator.
//
// Unless Options.Serial is set, batch execution is delegated to the
// persistent pipelined engine (internal/engine): a worker pool that
// lives across rounds with reusable per-worker scratch, committing
// results in deterministic input order.
type Fuzzer struct {
	Gen  Generator
	DUT  rtl.DUT
	Calc *cov.Calculator
	Det  *mismatch.Detector
	Clk  *vtime.Clock

	BatchSize int
	Tests     int
	Progress  []ProgressPoint

	parallel int
	inflight int
	eng      *engine.Engine
	track    *telemetry.Track // generate/commit spans (nil = disabled)
	closed   bool

	// Windowed-pipeline scratch, reused across RunBatches/RunTests
	// calls so steady-state rounds commit without heap growth.
	pend      []pipeSlot
	scoreFree [][]cov.Scores
}

// pipeSlot is one submitted-but-uncommitted round of the window.
type pipeSlot struct {
	round  *engine.Round
	scores []cov.Scores
}

// NewFuzzer assembles a campaign.
func NewFuzzer(gen Generator, dut rtl.DUT, opts Options) *Fuzzer {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	clk := opts.Clock
	if clk == nil {
		clk = vtime.NewVCS()
	}
	f := &Fuzzer{
		Gen:       gen,
		DUT:       dut,
		Calc:      cov.NewCalculator(dut.Space()),
		Clk:       clk,
		BatchSize: opts.BatchSize,
		parallel:  opts.Parallel,
		inflight:  opts.Inflight,
	}
	if f.inflight < 1 {
		f.inflight = 1
	}
	if opts.Detect {
		f.Det = mismatch.NewDetector()
	}
	label := opts.TelemetryLabel
	if label == "" {
		label = dut.Name()
	}
	f.track = opts.Telemetry.NewTrack(label)
	if !opts.Serial {
		f.eng = engine.New(dut, engine.Config{
			Workers:   opts.Parallel,
			Inflight:  f.inflight,
			Detect:    opts.Detect,
			Pool:      opts.Pool,
			Telemetry: opts.Telemetry,
		})
	}
	return f
}

// Close releases the execution engine's worker pool. The fuzzer's
// results (Progress, Det, Calc) stay readable, but no further batches
// may run. Close is optional — an abandoned engine is reclaimed by a
// finalizer — but deterministic release is cheaper than waiting on
// the garbage collector.
func (f *Fuzzer) Close() {
	f.closed = true
	if f.eng != nil {
		f.eng.Close()
		f.eng = nil
	}
}

// Coverage returns the cumulative condition-coverage percentage.
func (f *Fuzzer) Coverage() float64 { return f.Calc.Total().Percent() }

// feedbackFree reports whether the generator declared its Feedback a
// no-op, making cross-round generation prefetch safe.
func (f *Fuzzer) feedbackFree() bool {
	ff, ok := f.Gen.(FeedbackFree)
	return ok && ff.FeedbackFree()
}

// commitOne performs the deterministic, in-order accounting of one
// test: coverage scoring, differential analysis, virtual-clock charge
// and the trajectory sample. buildErr marks a program the harness
// refused to build — it is scored as invalid (zero standalone and
// incremental coverage) and charged only the per-test overhead, never
// run as an empty image that would pollute coverage and reward.
func (f *Fuzzer) commitOne(buildErr error, res rtl.Result, golden []trace.Entry) cov.Scores {
	var sc cov.Scores
	if buildErr != nil {
		sc = f.Calc.ScoreInvalid()
		f.Clk.ChargeTest(0)
		f.Tests++
		if f.Det != nil {
			// No traces to compare, but the test number was consumed:
			// keep the detector's test count aligned with f.Tests.
			f.Det.SkipTest()
		}
	} else {
		sc = f.Calc.Score(res.Coverage)
		f.Clk.ChargeTest(res.Cycles)
		f.Tests++
		if f.Det != nil {
			// The detector is handed the post-increment test number so
			// that a finding's Test field matches ProgressPoint.Tests
			// for the test that produced it (they were off by one).
			f.Det.Analyze(f.Tests, res.Trace, golden)
		}
	}
	f.Progress = append(f.Progress, ProgressPoint{
		Tests:    f.Tests,
		Hours:    f.Clk.Hours(),
		Coverage: sc.TotalPercent,
	})
	return sc
}

// runOne simulates one program on the DUT (and the golden model when
// detection is on) — the serial path's per-test body.
func (f *Fuzzer) runOne(p prog.Program) (rtl.Result, []trace.Entry, error) {
	img, _, err := prog.Build(p)
	if err != nil {
		return rtl.Result{}, nil, err
	}
	budget := prog.InstructionBudget(len(p.Body))
	res := f.DUT.Run(img, budget)
	var golden []trace.Entry
	if f.Det != nil {
		// Same prologue delta replay as the engine workers, so the two
		// execution paths stay bit-identical.
		golden = engine.GoldenRun(mem.Platform(), img, budget, nil)
	}
	return res, golden, nil
}

// runBatch executes one fuzzing round of k tests. pre, when non-nil,
// is a batch of exactly k programs generated ahead of time; nextK > 0
// asks for the following round's batch to be generated — overlapping
// this round's simulation when the generator is feedback-free — and
// returned for the next call.
func (f *Fuzzer) runBatch(k int, pre []prog.Program, nextK int) ([]cov.Scores, []prog.Program) {
	if f.closed {
		// Fail loudly on both execution paths: without this, a closed
		// engine fuzzer would silently fall back to the serial loop.
		panic("core: RunBatch after Close")
	}
	progs := pre
	if progs == nil {
		t := f.track.Start()
		progs = f.Gen.GenerateBatch(k)
		f.track.Span(telemetry.SpanGenerate, t)
	}
	scores := make([]cov.Scores, len(progs))
	var next []prog.Program

	if f.eng != nil {
		round := f.eng.Submit(progs)
		if nextK > 0 && f.feedbackFree() {
			// Double buffer: round N+1's generation overlaps round N's
			// DUT/ISS simulation. Safe only when Feedback is a no-op,
			// so the generator stream is identical to the serial order.
			t := f.track.Start()
			next = f.Gen.GenerateBatch(nextK)
			f.track.Span(telemetry.SpanGenerate, t)
		}
		f.Calc.BeginBatch()
		t := f.track.Start()
		round.Each(func(i int, o *engine.Outcome) {
			scores[i] = f.commitOne(o.Err, o.Res, o.Golden)
		})
		f.track.Span(telemetry.SpanCommit, t)
	} else {
		type outcome struct {
			res    rtl.Result
			golden []trace.Entry
			err    error
		}
		outs := make([]outcome, len(progs))

		workers := f.parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(progs) {
			workers = len(progs)
		}
		var wg sync.WaitGroup
		nextIdx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range nextIdx {
					res, golden, err := f.runOne(progs[i])
					outs[i] = outcome{res, golden, err}
				}
			}()
		}
		for i := range progs {
			nextIdx <- i
		}
		close(nextIdx)
		wg.Wait()

		// Deterministic, in-order accounting.
		f.Calc.BeginBatch()
		t := f.track.Start()
		for i, o := range outs {
			scores[i] = f.commitOne(o.err, o.res, o.golden)
		}
		f.track.Span(telemetry.SpanCommit, t)
	}

	f.Gen.Feedback(scores)
	if nextK > 0 && next == nil {
		t := f.track.Start()
		next = f.Gen.GenerateBatch(nextK)
		f.track.Span(telemetry.SpanGenerate, t)
	}
	return scores, next
}

// RunBatch executes one fuzzing round and returns the per-entry
// scores.
func (f *Fuzzer) RunBatch() []cov.Scores {
	scores, _ := f.runBatch(f.BatchSize, nil, 0)
	return scores
}

// window returns the effective in-flight round window: pipelining
// engages only on the engine path and only when the current generator
// declares its Feedback a no-op, so the generation stream — which runs
// ahead of commit by up to window-1 rounds — is identical to the
// serial order.
func (f *Fuzzer) window() int {
	if f.eng == nil || f.inflight <= 1 || !f.feedbackFree() {
		return 1
	}
	return f.inflight
}

// EngineStats returns the execution engine's cumulative pipelining and
// snapshot-tree counters; ok is false on the serial path.
func (f *Fuzzer) EngineStats() (engine.PipeStats, bool) {
	if f.eng == nil {
		return engine.PipeStats{}, false
	}
	return f.eng.PipeStats(), true
}

// runWindow is the pipelined round loop: it keeps up to window rounds
// submitted-but-uncommitted, generating and simulating ahead while the
// oldest round drains through the in-order committer. nextK returns
// the size of the next round to submit (0 = no more rounds); it is
// called in submission order, which runs ahead of f.Tests by the
// rounds still in flight.
//
// Determinism: the generator stream is feedback-independent (window()
// gates on FeedbackFree), rounds drain in submission order, each
// round commits in input order, and BeginBatch/commit/Feedback happen
// in exactly the serial loop's sequence — so the committed accounting
// stream is bit-identical to the unpipelined path. The score buffers
// are recycled after Feedback returns: safe because a FeedbackFree
// generator does not retain them.
func (f *Fuzzer) runWindow(window int, nextK func() int) {
	if f.closed {
		panic("core: RunBatch after Close")
	}
	done := false
	submit := func() bool {
		if done {
			return false
		}
		k := nextK()
		if k <= 0 {
			done = true
			return false
		}
		t := f.track.Start()
		progs := f.Gen.GenerateBatch(k)
		f.track.Span(telemetry.SpanGenerate, t)
		var scores []cov.Scores
		if n := len(f.scoreFree); n > 0 {
			scores = f.scoreFree[n-1][:0]
			f.scoreFree = f.scoreFree[:n-1]
		}
		for len(scores) < len(progs) {
			scores = append(scores, cov.Scores{})
		}
		if len(f.pend) > 0 {
			// The submission overlaps an undrained round: the pipeline
			// is live. Recorded per shard-round on the fuzzer's track.
			f.track.Instant(telemetry.EventPipeline)
		}
		f.pend = append(f.pend, pipeSlot{round: f.eng.Submit(progs), scores: scores[:len(progs)]})
		return true
	}
	for submit() {
		if len(f.pend) < window && !done {
			continue
		}
		f.drainOldest()
	}
	for len(f.pend) > 0 {
		f.drainOldest()
	}
}

// drainOldest commits the window's oldest in-flight round.
func (f *Fuzzer) drainOldest() {
	s := f.pend[0]
	copy(f.pend, f.pend[1:])
	f.pend[len(f.pend)-1] = pipeSlot{}
	f.pend = f.pend[:len(f.pend)-1]

	f.Calc.BeginBatch()
	t := f.track.Start()
	s.round.Each(func(i int, o *engine.Outcome) {
		s.scores[i] = f.commitOne(o.Err, o.Res, o.Golden)
	})
	f.track.Span(telemetry.SpanCommit, t)
	f.Gen.Feedback(s.scores)
	f.scoreFree = append(f.scoreFree, s.scores)
}

// RunBatches executes n fuzzing rounds of BatchSize tests. With
// Options.Inflight > 1 and a FeedbackFree generator the rounds are
// pipelined through the engine's in-flight window; otherwise this is
// exactly n RunBatch calls.
func (f *Fuzzer) RunBatches(n int) {
	if w := f.window(); w > 1 && n > 1 {
		left := n
		f.runWindow(w, func() int {
			if left == 0 {
				return 0
			}
			left--
			return f.BatchSize
		})
		return
	}
	for i := 0; i < n; i++ {
		f.RunBatch()
	}
}

// RunTests runs batches until exactly n tests have executed: the final
// batch is clamped so campaigns with different batch sizes execute
// identical test counts (RunTests(500) at BatchSize 16 used to run 512
// tests, skewing equal-budget comparisons and checkpoints).
//
// On the engine path the loop is double-buffered: while round N
// simulates, round N+1's programs are generated, provided the
// generator declares itself FeedbackFree — and with Options.Inflight
// > 1 whole rounds are pipelined through the engine's window, round
// N+1 simulating while round N commits.
func (f *Fuzzer) RunTests(n int) {
	if w := f.window(); w > 1 {
		// Batch sizes depend only on the planned (submitted) test
		// count, the same clamped sequence the serial loop derives
		// from the committed count.
		planned := f.Tests
		f.runWindow(w, func() int {
			k := n - planned
			if k <= 0 {
				return 0
			}
			if k > f.BatchSize {
				k = f.BatchSize
			}
			planned += k
			return k
		})
		return
	}
	var pre []prog.Program
	for f.Tests < n {
		k := n - f.Tests
		if k > f.BatchSize {
			k = f.BatchSize
		}
		nextK := n - f.Tests - k
		if nextK > f.BatchSize {
			nextK = f.BatchSize
		}
		_, pre = f.runBatch(k, pre, nextK)
	}
}

// RunVirtualHours runs until the virtual clock passes h hours or
// maxTests tests have executed (a safety cap; 0 means no cap).
// Whether another round runs depends on the committed clock, so this
// loop cannot prefetch generation; rounds still execute on the engine.
func (f *Fuzzer) RunVirtualHours(h float64, maxTests int) {
	for f.Clk.Hours() < h {
		if maxTests > 0 && f.Tests >= maxTests {
			return
		}
		f.RunBatch()
	}
}

// CoverageAt interpolates the campaign's coverage at a virtual time,
// for time-series reporting.
func (f *Fuzzer) CoverageAt(hours float64) float64 {
	last := 0.0
	for _, pt := range f.Progress {
		if pt.Hours > hours {
			break
		}
		last = pt.Coverage
	}
	return last
}

// TimeToCoverage returns the virtual hours at which cumulative
// coverage first reached pct, or -1 if never.
func (f *Fuzzer) TimeToCoverage(pct float64) float64 {
	for _, pt := range f.Progress {
		if pt.Coverage >= pct {
			return pt.Hours
		}
	}
	return -1
}

// TestsToCoverage returns the test count at which coverage first
// reached pct, or -1.
func (f *Fuzzer) TestsToCoverage(pct float64) int {
	for _, pt := range f.Progress {
		if pt.Coverage >= pct {
			return pt.Tests
		}
	}
	return -1
}
