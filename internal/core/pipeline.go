package core

import (
	"fmt"
	"io"
	"math/rand"

	"chatfuzz/internal/corpus"
	"chatfuzz/internal/cov"
	"chatfuzz/internal/ml/nn"
	"chatfuzz/internal/ml/ppo"
	"chatfuzz/internal/ml/tensor"
	"chatfuzz/internal/ml/tok"
	"chatfuzz/internal/prog"
	"chatfuzz/internal/rtl"
)

// PipelineConfig parameterises the three-step training pipeline. The
// defaults are laptop-scale; Scale multiplies the step counts for
// paper-scale runs.
type PipelineConfig struct {
	Seed   int64
	Corpus corpus.Config
	// Model sizing; Vocab is always overwritten from the tokenizer.
	Model    nn.Config
	MaxVocab int

	// Step 1: unsupervised next-token training.
	PretrainSteps int
	PretrainBatch int
	PretrainLR    float64

	// Step 2: PPO language cleanup (reward Eq. 1). The paper trains 30
	// epochs over a 51.2 K-sample subset; steps scale that down.
	CleanupSteps int
	CleanupBatch int
	Eq1Scale     float64

	// Step 3: PPO coverage optimisation (≤15 epochs in the paper).
	CoverageSteps int
	CoverageBatch int
	Weights       RewardWeights

	// BodyInstrs bounds generated test-vector length in instructions
	// (two parcel tokens each).
	BodyInstrs int

	// KLCoef for both PPO stages.
	KLCoef float64
	// PPOLr is the PPO learning rate.
	PPOLr float64

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultPipelineConfig returns the scaled-down default configuration
// (sized for a single-core machine; cmd/train-lm exposes every knob
// for larger runs).
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Seed:          1,
		Corpus:        corpus.Config{Seed: 1, Functions: 1200, MinLen: 12, MaxLen: 40},
		Model:         nn.Config{Ctx: 80, Dim: 64, Heads: 4, Layers: 2},
		MaxVocab:      1536,
		PretrainSteps: 320,
		PretrainBatch: 12,
		PretrainLR:    1.5e-3,
		CleanupSteps:  40,
		CleanupBatch:  12,
		Eq1Scale:      0.3,
		CoverageSteps: 15,
		CoverageBatch: 10,
		Weights:       DefaultRewardWeights(),
		BodyInstrs:    24,
		KLCoef:        0.05,
		PPOLr:         3e-4,
	}
}

// TestPipelineConfig returns a tiny configuration for unit tests.
func TestPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.Corpus = corpus.Config{Seed: 1, Functions: 150, MinLen: 8, MaxLen: 18}
	cfg.Model = nn.Config{Ctx: 48, Dim: 32, Heads: 2, Layers: 1}
	cfg.MaxVocab = 512
	cfg.PretrainSteps = 120
	cfg.PretrainBatch = 8
	cfg.PretrainLR = 2e-3
	cfg.CleanupSteps = 10
	cfg.CleanupBatch = 8
	cfg.CoverageSteps = 4
	cfg.CoverageBatch = 6
	cfg.BodyInstrs = 12
	return cfg
}

// PPOStats re-exports the PPO monitoring statistics for consumers of
// the training history.
type PPOStats = ppo.Stats

// History records the monitored training metrics of each step.
type History struct {
	PretrainLoss []float64
	Cleanup      []ppo.Stats
	Coverage     []ppo.Stats
}

// Pipeline is ChatFuzz's LLM-based Input Generator under training.
type Pipeline struct {
	Cfg    PipelineConfig
	Corpus *corpus.Corpus
	Tok    *tok.Tokenizer
	Model  *nn.GPT
	Hist   History

	rng *rand.Rand
}

// NewPipeline generates the corpus, trains the tokenizer on it, and
// initialises the model.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := corpus.Generate(cfg.Corpus)
	t := tok.Train(c.Functions, cfg.MaxVocab)
	mcfg := cfg.Model
	mcfg.Vocab = t.Vocab()
	return &Pipeline{
		Cfg:    cfg,
		Corpus: c,
		Tok:    t,
		Model:  nn.NewGPT(mcfg, rng),
		rng:    rng,
	}
}

func (p *Pipeline) logf(format string, args ...any) {
	if p.Cfg.Log != nil {
		fmt.Fprintf(p.Cfg.Log, format+"\n", args...)
	}
}

// Pretrain is training step 1: the model learns the machine language
// by next-token prediction over tokenised corpus functions.
func (p *Pipeline) Pretrain() []float64 {
	opt := nn.NewAdam(p.Model.Params(), p.Cfg.PretrainLR)
	losses := make([]float64, 0, p.Cfg.PretrainSteps)
	for step := 0; step < p.Cfg.PretrainSteps; step++ {
		fns := p.Corpus.Sample(p.rng, p.Cfg.PretrainBatch)
		batch := make([][]int, len(fns))
		for i, fn := range fns {
			seq := p.Tok.Encode(fn)
			if len(seq) > p.Model.Cfg.Ctx {
				seq = seq[:p.Model.Cfg.Ctx]
			}
			batch[i] = seq
		}
		opt.ZeroGrad()
		loss, val := p.Model.LMLoss(batch, tok.PAD)
		tensor.Backward(loss)
		opt.ClipGradNorm(1)
		opt.Step()
		losses = append(losses, val)
		if step%50 == 0 {
			p.logf("step1 pretrain %4d/%d  loss %.4f", step, p.Cfg.PretrainSteps, val)
		}
	}
	p.Hist.PretrainLoss = losses
	return losses
}

// prompts draws a batch of tokenised prompts (BOS + the first 2–5
// instructions of corpus functions), as in §IV-C.2.
func (p *Pipeline) prompts(n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		fn := p.Corpus.Functions[p.rng.Intn(len(p.Corpus.Functions))]
		pr := corpus.Prompt(p.rng, fn)
		out[i] = append([]int{tok.BOS}, p.Tok.EncodeBody(pr)...)
	}
	return out
}

func (p *Pipeline) ppoConfig() ppo.Config {
	cfg := ppo.DefaultConfig(tok.EOS, tok.PAD)
	cfg.MaxNewTokens = 2 * p.Cfg.BodyInstrs
	cfg.KLCoef = p.Cfg.KLCoef
	cfg.LR = p.Cfg.PPOLr
	return cfg
}

// OnlinePPOConfig is the PPO configuration for learning *during*
// fuzzing (the online LLM generator and fleet-learning replicas): the
// offline training config with a gentler learning rate, so long
// campaigns refine the policy instead of drifting it away from the
// trained distribution.
func (p *Pipeline) OnlinePPOConfig() ppo.Config {
	cfg := p.ppoConfig()
	cfg.LR = 1e-4
	return cfg
}

// Cleanup is training step 2: PPO against the disassembler reward
// (Eq. 1), teaching the model to pair parcels into legal instructions
// and avoid illegal combinations.
func (p *Pipeline) Cleanup() []ppo.Stats {
	tr := ppo.NewTrainer(p.Model, p.ppoConfig(), p.rng)
	reward := Eq1Reward(p.Tok, p.Cfg.Eq1Scale)
	stats := make([]ppo.Stats, 0, p.Cfg.CleanupSteps)
	for step := 0; step < p.Cfg.CleanupSteps; step++ {
		st := tr.Step(p.prompts(p.Cfg.CleanupBatch), reward)
		stats = append(stats, st)
		if step%10 == 0 {
			p.logf("step2 cleanup %3d/%d  reward %.3f  kl %.4f  ploss %.4f",
				step, p.Cfg.CleanupSteps, st.MeanReward, st.MeanKL, st.PolicyLoss)
		}
	}
	p.Hist.Cleanup = stats
	return stats
}

// CoverageTune is training step 3: PPO where the reward embeds the
// Coverage Calculator's scores from simulating each generation on the
// DUT.
func (p *Pipeline) CoverageTune(dut rtl.DUT) []ppo.Stats {
	tr := ppo.NewTrainer(p.Model, p.ppoConfig(), p.rng)
	calc := cov.NewCalculator(dut.Space())
	bins := dut.Space().NumBins()
	reward := func(tokens []int, promptN int) float64 {
		words := p.Tok.Decode(tokens)
		if len(words) == 0 {
			return p.Cfg.Weights.NoImprovePenalty
		}
		img, _, err := prog.Build(prog.Program{Body: words})
		if err != nil {
			// An unbuildable generation must read as a penalty, not as
			// an all-zero image whose empty run would still be scored.
			return p.Cfg.Weights.NoImprovePenalty
		}
		res := dut.Run(img, prog.InstructionBudget(len(words)))
		return CoverageReward(calc.Score(res.Coverage), bins, p.Cfg.Weights)
	}
	stats := make([]ppo.Stats, 0, p.Cfg.CoverageSteps)
	for step := 0; step < p.Cfg.CoverageSteps; step++ {
		calc.BeginBatch()
		st := tr.Step(p.prompts(p.Cfg.CoverageBatch), reward)
		stats = append(stats, st)
		if step%5 == 0 {
			p.logf("step3 coverage %3d/%d  reward %.3f  total %.2f%%  kl %.4f",
				step, p.Cfg.CoverageSteps, st.MeanReward, calc.Total().Percent(), st.MeanKL)
		}
	}
	p.Hist.Coverage = stats
	return stats
}

// Run executes all three training steps against the given DUT.
func (p *Pipeline) Run(dut rtl.DUT) {
	p.logf("corpus: %d functions, %d instructions; vocab %d; model %d params",
		len(p.Corpus.Functions), p.Corpus.Instructions(), p.Tok.Vocab(), p.Model.NumParams())
	p.Pretrain()
	p.Cleanup()
	p.CoverageTune(dut)
}

// InvalidRate measures the model's current rate of invalid
// instructions over n sampled generations — the quantity step 2
// minimises.
func (p *Pipeline) InvalidRate(n int) float64 {
	words, invalid := 0, 0
	for i := 0; i < n; i++ {
		pr := p.prompts(1)[0]
		res := p.Model.Generate(p.rng, pr, 2*p.Cfg.BodyInstrs, 1.0, 0, tok.EOS)
		ws := p.Tok.Decode(res.Tokens[res.PromptN:])
		for _, w := range ws {
			words++
			if !validWord(w) {
				invalid++
			}
		}
	}
	if words == 0 {
		return 1
	}
	return float64(invalid) / float64(words)
}
