package trace

import (
	"strings"
	"testing"

	"chatfuzz/internal/isa"
)

func TestEntryString(t *testing.T) {
	e := Entry{
		PC: 0x80000000, Raw: isa.NOP, Op: isa.OpADDI,
		RdValid: true, Rd: isa.A0, RdVal: 42, Priv: isa.PrivM,
	}
	s := e.String()
	for _, want := range []string{"80000000", "addi", "a0", "[M]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestTrapEntryString(t *testing.T) {
	e := Entry{PC: 0x100, Trap: true, Cause: isa.ExcLoadAccessFault, TVal: 0xDEAD, Priv: isa.PrivU}
	s := e.String()
	if !strings.Contains(s, "TRAP") || !strings.Contains(s, "load access fault") {
		t.Errorf("trap string = %q", s)
	}
	if !strings.Contains(s, "[U]") {
		t.Errorf("privilege missing: %q", s)
	}
}

func TestDiffIdentifiesFirstField(t *testing.T) {
	base := Entry{PC: 0x100, Raw: 0x13, RdValid: true, Rd: 1, RdVal: 5}
	if Diff(base, base) != "" {
		t.Error("identical entries must have empty diff")
	}

	b := base
	b.PC = 0x104
	if d := Diff(base, b); !strings.Contains(d, "pc") {
		t.Errorf("diff = %q, want pc", d)
	}

	b = base
	b.RdVal = 6
	if d := Diff(base, b); !strings.Contains(d, "rdval") {
		t.Errorf("diff = %q, want rdval", d)
	}

	b = base
	b.RdValid = false
	if d := Diff(base, b); !strings.Contains(d, "rd-write") {
		t.Errorf("diff = %q, want rd-write", d)
	}

	a := Entry{PC: 0x100, Trap: true, Cause: 4}
	b = Entry{PC: 0x100, Trap: true, Cause: 5}
	if d := Diff(a, b); !strings.Contains(d, "cause") {
		t.Errorf("diff = %q, want cause", d)
	}
}

func TestMemEffectString(t *testing.T) {
	e := Entry{PC: 0x100, MemValid: true, MemAddr: 0x80100000, MemWrite: true}
	if !strings.Contains(e.String(), "mem[") || !strings.Contains(e.String(), "]W") {
		t.Errorf("mem effect missing: %q", e.String())
	}
}
