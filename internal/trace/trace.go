// Package trace defines the commit-trace format produced by both the
// golden-model ISS and the DUT core models, and compared by the
// Mismatch Detector. One Entry is emitted per retired (or trapping)
// instruction, mirroring Spike's commit log and RocketCore's tracer
// port.
//chatfuzz:deterministic package
package trace

import (
	"fmt"
	"strings"

	"chatfuzz/internal/isa"
)

// Entry records the architecturally visible effect of one instruction.
type Entry struct {
	PC  uint64
	Raw uint32
	Op  isa.Op

	// Destination-register writeback, as reported by the tracer.
	// The golden model never reports writes to x0; RocketCore's tracer
	// bugs (Bug2, Finding2, Finding3) manifest here.
	RdValid bool
	Rd      isa.Reg
	RdVal   uint64

	// Memory effect.
	MemValid bool
	MemAddr  uint64
	MemWrite bool

	// Trap outcome. A trapping instruction retires as an Entry with
	// Trap set and no Rd/Mem effects.
	Trap  bool
	Cause uint64
	TVal  uint64

	// Privilege level the instruction executed at.
	Priv isa.Priv
}

// String renders the entry in a Spike-commit-log-like form.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] pc=%016x (%08x) %s", e.Priv, e.PC, e.Raw, isa.Disassemble(e.Raw))
	if e.Trap {
		fmt.Fprintf(&b, " TRAP cause=%d (%s) tval=%#x", e.Cause, isa.ExcName(e.Cause), e.TVal)
		return b.String()
	}
	if e.RdValid {
		fmt.Fprintf(&b, " %s<-%016x", e.Rd, e.RdVal)
	}
	if e.MemValid {
		rw := "R"
		if e.MemWrite {
			rw = "W"
		}
		fmt.Fprintf(&b, " mem[%016x]%s", e.MemAddr, rw)
	}
	return b.String()
}

// Equal reports whether two entries describe the identical
// architectural event.
func Equal(a, b Entry) bool { return a == b }

// Diff returns a human-readable description of the first field in
// which the entries differ, or "" if they are equal.
func Diff(a, b Entry) string {
	switch {
	case a == b:
		return ""
	case a.PC != b.PC:
		return fmt.Sprintf("pc %016x vs %016x", a.PC, b.PC)
	case a.Raw != b.Raw:
		return fmt.Sprintf("inst %08x vs %08x", a.Raw, b.Raw)
	case a.Trap != b.Trap:
		return fmt.Sprintf("trap %v vs %v", a.Trap, b.Trap)
	case a.Trap && a.Cause != b.Cause:
		return fmt.Sprintf("cause %s vs %s", isa.ExcName(a.Cause), isa.ExcName(b.Cause))
	case a.Trap && a.TVal != b.TVal:
		return fmt.Sprintf("tval %#x vs %#x", a.TVal, b.TVal)
	case a.RdValid != b.RdValid:
		return fmt.Sprintf("rd-write %v vs %v", a.RdValid, b.RdValid)
	case a.RdValid && a.Rd != b.Rd:
		return fmt.Sprintf("rd %s vs %s", a.Rd, b.Rd)
	case a.RdValid && a.RdVal != b.RdVal:
		return fmt.Sprintf("rdval %016x vs %016x", a.RdVal, b.RdVal)
	case a.MemValid != b.MemValid || a.MemAddr != b.MemAddr || a.MemWrite != b.MemWrite:
		return "memory effect differs"
	case a.Priv != b.Priv:
		return fmt.Sprintf("priv %s vs %s", a.Priv, b.Priv)
	}
	return "entries differ"
}
