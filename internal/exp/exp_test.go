package exp

import (
	"bytes"
	"strings"
	"testing"

	"chatfuzz/internal/core"
	"chatfuzz/internal/ml/nn"
)

// tinyScale returns a configuration small enough for unit tests while
// exercising the whole suite plumbing.
func tinyScale() Scale {
	cfg := core.DefaultPipelineConfig()
	cfg.Corpus.Functions = 200
	cfg.Model = nn.Config{Ctx: 48, Dim: 32, Heads: 2, Layers: 1}
	cfg.MaxVocab = 512
	cfg.PretrainSteps = 40
	cfg.CleanupSteps = 4
	cfg.CoverageSteps = 2
	cfg.CoverageBatch = 4
	return Scale{
		Name:       "tiny",
		Train:      cfg,
		BatchSize:  8,
		TestsEqual: 64,
		TestsLarge: 128,
		BoomTests:  64,
		Online:     false,
	}
}

func TestSuiteEndToEnd(t *testing.T) {
	var log bytes.Buffer
	s := NewSuite(tinyScale(), &log)
	s.RunRocketCampaigns()

	if s.ChatFuzz.Tests < 128 || s.TheHuzz.Tests < 128 {
		t.Fatalf("campaigns too short: %d / %d", s.ChatFuzz.Tests, s.TheHuzz.Tests)
	}
	if s.ChatFuzz.Final <= 0 || s.TheHuzz.Final <= 0 {
		t.Fatal("campaigns recorded no coverage")
	}

	var out bytes.Buffer
	s.Fig2(&out)
	if !strings.Contains(out.String(), "Figure 2") {
		t.Error("Fig2 output missing header")
	}

	out.Reset()
	chatEq, huzzEq, chatLg, huzzLg := s.EqualBudget(&out)
	if chatEq <= 0 || huzzEq <= 0 || chatLg < chatEq || huzzLg < huzzEq {
		t.Errorf("budget table inconsistent: %v %v %v %v", chatEq, huzzEq, chatLg, huzzLg)
	}

	out.Reset()
	s.Speedup(&out)
	if !strings.Contains(out.String(), "speedup") {
		t.Errorf("speedup output: %q", out.String())
	}

	out.Reset()
	s.FindingsReport(&out)
	if !strings.Contains(out.String(), "mismatch detection") {
		t.Error("findings report missing")
	}

	out.Reset()
	s.TrainingCurves(&out)
	if !strings.Contains(out.String(), "Eq. 1") {
		t.Error("training curves missing")
	}
}

func TestCampaignQueries(t *testing.T) {
	c := Campaign{Progress: []core.ProgressPoint{
		{Tests: 10, Hours: 0.1, Coverage: 30},
		{Tests: 20, Hours: 0.2, Coverage: 50},
		{Tests: 30, Hours: 0.3, Coverage: 60},
	}}
	if got := c.At(25); got != 50 {
		t.Errorf("At(25) = %v, want 50", got)
	}
	if got := c.HoursTo(55); got != 0.3 {
		t.Errorf("HoursTo(55) = %v, want 0.3", got)
	}
	if got := c.HoursTo(99); got != -1 {
		t.Errorf("HoursTo(99) = %v, want -1", got)
	}
}

func TestScalesDiffer(t *testing.T) {
	q, p := Quick(), Paper()
	if p.TestsLarge <= q.TestsLarge || p.Train.Corpus.Functions <= q.Train.Corpus.Functions {
		t.Error("paper scale must exceed quick scale")
	}
	if q.TestsEqual <= 0 || q.BoomTests <= 0 {
		t.Error("quick scale has zero budgets")
	}
}

func TestCoverageAtHours(t *testing.T) {
	c := Campaign{Progress: []core.ProgressPoint{
		{Hours: 0.1, Coverage: 10},
		{Hours: 0.5, Coverage: 40},
	}}
	if got := coverageAtHours(c, 0.3); got != 10 {
		t.Errorf("coverageAtHours(0.3) = %v", got)
	}
	if got := coverageAtHours(c, 1.0); got != 40 {
		t.Errorf("coverageAtHours(1.0) = %v", got)
	}
}
