// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§V) on the simulated platform,
// at a configurable scale. DESIGN.md §5 maps experiment ids (E1–E8,
// A1–A3) to the functions here; EXPERIMENTS.md records paper-vs-
// measured values.
//chatfuzz:deterministic package
package exp

import (
	"fmt"
	"io"
	"os"

	"chatfuzz/internal/baseline/randfuzz"
	"chatfuzz/internal/baseline/thehuzz"
	"chatfuzz/internal/core"
	"chatfuzz/internal/mismatch"
	"chatfuzz/internal/rtl"
	"chatfuzz/internal/rtl/boom"
	"chatfuzz/internal/rtl/rocket"
)

// Scale sizes a reproduction run. The paper's full scale (199 K tests,
// 24-hour campaigns, 500 K-instruction corpus) is reachable with
// Paper(); Quick() keeps the whole suite laptop-sized while preserving
// every trend.
type Scale struct {
	Name string

	Train core.PipelineConfig

	BatchSize int
	// E2: coverage at an equal, small test budget (paper: 1 800).
	TestsEqual int
	// E3: coverage at a large test budget (paper: 199 000).
	TestsLarge int
	// E5: BOOM campaign test budget (paper: ~49 virtual minutes).
	BoomTests int
	// Online enables continued PPO updates during fuzzing.
	Online bool
}

// Quick returns the laptop-scale configuration.
func Quick() Scale {
	cfg := core.DefaultPipelineConfig()
	return Scale{
		Name:       "quick",
		Train:      cfg,
		BatchSize:  16,
		TestsEqual: 1200,
		TestsLarge: 6000,
		BoomTests:  1200,
		Online:     true,
	}
}

// Paper returns the full-scale configuration (hours of runtime on one
// core; intended for cmd/fuzz-bench -scale=paper).
func Paper() Scale {
	cfg := core.DefaultPipelineConfig()
	cfg.Corpus.Functions = 18000 // ~500 K instructions
	cfg.PretrainSteps = 2000
	cfg.CleanupSteps = 300
	cfg.CoverageSteps = 100
	return Scale{
		Name:       "paper",
		Train:      cfg,
		BatchSize:  16,
		TestsEqual: 1800,
		TestsLarge: 199000,
		BoomTests:  1800,
		Online:     true,
	}
}

// Campaign is one fuzzing run's full trajectory.
type Campaign struct {
	Name     string
	Progress []core.ProgressPoint
	Final    float64
	Tests    int
	Hours    float64
	Findings map[mismatch.Finding]int
	Detector *mismatch.Detector
}

// runCampaign executes gen on dut for the given number of tests.
func runCampaign(name string, gen core.Generator, dut rtl.DUT, tests, batch int, detect bool) Campaign {
	f := core.NewFuzzer(gen, dut, core.Options{BatchSize: batch, Detect: detect})
	defer f.Close()
	f.RunTests(tests)
	c := Campaign{
		Name:     name,
		Progress: f.Progress,
		Final:    f.Coverage(),
		Tests:    f.Tests,
		Hours:    f.Clk.Hours(),
	}
	if detect {
		c.Findings = f.Det.Findings()
		c.Detector = f.Det
	}
	return c
}

// At returns the campaign coverage after n tests.
func (c Campaign) At(n int) float64 {
	last := 0.0
	for _, pt := range c.Progress {
		if pt.Tests > n {
			break
		}
		last = pt.Coverage
	}
	return last
}

// HoursTo returns the virtual hours at which coverage first reached
// pct (-1 if never).
func (c Campaign) HoursTo(pct float64) float64 {
	for _, pt := range c.Progress {
		if pt.Coverage >= pct {
			return pt.Hours
		}
	}
	return -1
}

// Suite runs the complete reproduction and holds every result.
type Suite struct {
	Scale Scale
	Log   io.Writer

	Pipeline *core.Pipeline
	ChatFuzz Campaign // Rocket campaign (drives E1–E4, E6)
	TheHuzz  Campaign
	Boom     Campaign // E5
	Random   Campaign // A3
}

// NewSuite prepares a suite (no work done yet).
func NewSuite(sc Scale, log io.Writer) *Suite {
	if log == nil {
		log = os.Stdout
	}
	return &Suite{Scale: sc, Log: log}
}

func (s *Suite) logf(format string, args ...any) { fmt.Fprintf(s.Log, format+"\n", args...) }

// TrainedPipeline trains (or returns the cached) three-step pipeline.
// The checkpoint avoids retraining across experiments in one process.
func (s *Suite) TrainedPipeline() *core.Pipeline {
	if s.Pipeline != nil {
		return s.Pipeline
	}
	cfg := s.Scale.Train
	cfg.Log = s.Log
	s.logf("== training pipeline (%s scale) ==", s.Scale.Name)
	p := core.NewPipeline(cfg)
	p.Pretrain()
	s.logf("  invalid rate after step 1: %.1f%%", 100*p.InvalidRate(20))
	p.Cleanup()
	s.logf("  invalid rate after step 2: %.1f%%", 100*p.InvalidRate(20))
	p.CoverageTune(rocket.New())
	s.Pipeline = p
	return p
}

// RunRocketCampaigns executes the ChatFuzz and TheHuzz Rocket
// campaigns that experiments E1–E4 and E6 are derived from.
func (s *Suite) RunRocketCampaigns() {
	p := s.TrainedPipeline()
	dut := rocket.New()

	s.logf("== ChatFuzz campaign on Rocket (%d tests) ==", s.Scale.TestsLarge)
	gen := core.NewLLMGenerator(p, dut.Space().NumBins(), s.Scale.Online, 101)
	s.ChatFuzz = runCampaign("chatfuzz", gen, dut, s.Scale.TestsLarge, s.Scale.BatchSize, true)
	s.logf("  final %.2f%% after %d tests (%.2f virtual hours)",
		s.ChatFuzz.Final, s.ChatFuzz.Tests, s.ChatFuzz.Hours)

	s.logf("== TheHuzz campaign on Rocket (%d tests) ==", s.Scale.TestsLarge)
	th := thehuzz.New(102, s.Pipeline.Cfg.BodyInstrs)
	s.TheHuzz = runCampaign("thehuzz", th, rocket.New(), s.Scale.TestsLarge, s.Scale.BatchSize, false)
	s.logf("  final %.2f%% after %d tests (%.2f virtual hours)",
		s.TheHuzz.Final, s.TheHuzz.Tests, s.TheHuzz.Hours)
}

// Fig2 renders the coverage-over-time series (experiment E1).
func (s *Suite) Fig2(w io.Writer) {
	fmt.Fprintf(w, "\n-- Figure 2: condition coverage over time, RocketCore --\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "hours", "TheHuzz %", "ChatFuzz %")
	maxH := s.ChatFuzz.Hours
	if s.TheHuzz.Hours > maxH {
		maxH = s.TheHuzz.Hours
	}
	steps := 16
	for i := 0; i <= steps; i++ {
		h := maxH * float64(i) / float64(steps)
		fmt.Fprintf(w, "%-10.2f %12.2f %12.2f\n", h, coverageAtHours(s.TheHuzz, h), coverageAtHours(s.ChatFuzz, h))
	}
}

func coverageAtHours(c Campaign, h float64) float64 {
	last := 0.0
	for _, pt := range c.Progress {
		if pt.Hours > h {
			break
		}
		last = pt.Coverage
	}
	return last
}

// EqualBudget renders experiment E2 (coverage at the equal small
// budget) and E3 (coverage at the large budget).
func (s *Suite) EqualBudget(w io.Writer) (chatEq, huzzEq, chatLg, huzzLg float64) {
	chatEq, huzzEq = s.ChatFuzz.At(s.Scale.TestsEqual), s.TheHuzz.At(s.Scale.TestsEqual)
	chatLg, huzzLg = s.ChatFuzz.Final, s.TheHuzz.Final
	fmt.Fprintf(w, "\n-- Coverage at equal test budgets (paper §V-A) --\n")
	fmt.Fprintf(w, "%-24s %10s %10s\n", "budget", "ChatFuzz", "TheHuzz")
	fmt.Fprintf(w, "%-24s %9.2f%% %9.2f%%   (paper: 74.96%% vs 67.4%% @1.8K)\n",
		fmt.Sprintf("%d tests", s.Scale.TestsEqual), chatEq, huzzEq)
	fmt.Fprintf(w, "%-24s %9.2f%% %9.2f%%   (paper: 79.14%% vs 76.7%% @199K)\n",
		fmt.Sprintf("%d tests", s.ChatFuzz.Tests), chatLg, huzzLg)
	return
}

// Speedup renders experiment E4: the time for TheHuzz to reach
// ChatFuzz's equal-budget coverage level, and the resulting factor
// (paper: 52 min vs ~30 h, 34.6×).
func (s *Suite) Speedup(w io.Writer) (factor float64) {
	target := s.ChatFuzz.At(s.Scale.TestsEqual)
	tChat := s.ChatFuzz.HoursTo(target)
	tHuzz := s.TheHuzz.HoursTo(target)
	fmt.Fprintf(w, "\n-- Time to reach %.2f%% condition coverage (paper E4) --\n", target)
	if tChat > 0 {
		fmt.Fprintf(w, "ChatFuzz: %6.2f h (%.0f min)\n", tChat, tChat*60)
	}
	if tHuzz > 0 {
		fmt.Fprintf(w, "TheHuzz:  %6.2f h (%.0f min)\n", tHuzz, tHuzz*60)
		factor = tHuzz / tChat
		fmt.Fprintf(w, "speedup:  %.1fx   (paper: 34.6x)\n", factor)
	} else {
		fmt.Fprintf(w, "TheHuzz:  never within its %d-test budget (> %.2f h) -> speedup > %.1fx (paper: 34.6x)\n",
			s.TheHuzz.Tests, s.TheHuzz.Hours, s.TheHuzz.Hours/tChat)
		factor = s.TheHuzz.Hours / tChat
	}
	return factor
}

// RunBoom executes experiment E5 (BOOM coverage).
func (s *Suite) RunBoom(w io.Writer) {
	p := s.TrainedPipeline()
	dut := boom.New()
	s.logf("== ChatFuzz campaign on BOOM (%d tests) ==", s.Scale.BoomTests)
	gen := core.NewLLMGenerator(p, dut.Space().NumBins(), s.Scale.Online, 103)
	s.Boom = runCampaign("chatfuzz-boom", gen, dut, s.Scale.BoomTests, s.Scale.BatchSize, false)
	fmt.Fprintf(w, "\n-- BOOM condition coverage (paper E5) --\n")
	fmt.Fprintf(w, "ChatFuzz on BOOM: %.2f%% after %d tests, %.0f virtual minutes (paper: 97.02%% in 49 min)\n",
		s.Boom.Final, s.Boom.Tests, s.Boom.Hours*60)
}

// Findings renders experiment E6 from the ChatFuzz campaign's
// detector.
func (s *Suite) FindingsReport(w io.Writer) {
	fmt.Fprintf(w, "\n-- Findings (paper §V-B) --\n")
	if s.ChatFuzz.Detector == nil {
		fmt.Fprintf(w, "campaign was run without detection\n")
		return
	}
	fmt.Fprint(w, s.ChatFuzz.Detector.Report())
}

// TrainingCurves renders experiments E7/E8 from the pipeline history.
func (s *Suite) TrainingCurves(w io.Writer) {
	p := s.TrainedPipeline()
	fmt.Fprintf(w, "\n-- Training step 2: PPO vs disassembler reward, Eq. 1 (E7) --\n")
	printStats(w, p.Hist.Cleanup)
	fmt.Fprintf(w, "\n-- Training step 3: PPO vs coverage reward (E8) --\n")
	printStats(w, p.Hist.Coverage)
}

func printStats(w io.Writer, st []core.PPOStats) {
	fmt.Fprintf(w, "%6s %12s %10s %12s %12s\n", "step", "mean reward", "KL", "policy loss", "value loss")
	for i, s := range st {
		if len(st) > 12 && i%(len(st)/12+1) != 0 && i != len(st)-1 {
			continue
		}
		fmt.Fprintf(w, "%6d %12.3f %10.4f %12.4f %12.4f\n", i, s.MeanReward, s.MeanKL, s.PolicyLoss, s.ValueLoss)
	}
}

// AblationNoCleanup executes ablation A1: a pipeline trained without
// step 2 generates more illegal instructions and fuzzes worse (the
// paper's motivation for the cleanup stage: "avoid unnecessary CPU
// simulation of bad/malformed data").
func (s *Suite) AblationNoCleanup(w io.Writer, tests int) {
	full := s.TrainedPipeline()

	cfg := s.Scale.Train
	cfg.CleanupSteps = 0
	cfg.Log = nil
	s.logf("== ablation A1: training without step 2 ==")
	noClean := core.NewPipeline(cfg)
	noClean.Pretrain()

	invFull, invNo := full.InvalidRate(30), noClean.InvalidRate(30)

	dut := rocket.New()
	gFull := core.NewLLMGenerator(full, dut.Space().NumBins(), false, 106)
	cFull := runCampaign("with-cleanup", gFull, dut, tests, s.Scale.BatchSize, false)
	gNo := core.NewLLMGenerator(noClean, dut.Space().NumBins(), false, 106)
	cNo := runCampaign("no-cleanup", gNo, rocket.New(), tests, s.Scale.BatchSize, false)

	fmt.Fprintf(w, "\n-- Ablation A1: dropping training step 2 (cleanup) --\n")
	fmt.Fprintf(w, "%-18s %14s %16s\n", "variant", "invalid rate", "coverage@"+fmt.Sprint(tests))
	fmt.Fprintf(w, "%-18s %13.1f%% %15.2f%%\n", "full pipeline", 100*invFull, cFull.Final)
	fmt.Fprintf(w, "%-18s %13.1f%% %15.2f%%\n", "no cleanup", 100*invNo, cNo.Final)
}

// AblationReward executes ablation A2: the paper's three-term coverage
// reward versus an incremental-only variant.
func (s *Suite) AblationReward(w io.Writer, tests int) {
	p := s.TrainedPipeline()
	dut := rocket.New()

	gDefault := core.NewLLMGenerator(p, dut.Space().NumBins(), true, 107)
	cDefault := runCampaign("reward-default", gDefault, dut, tests, s.Scale.BatchSize, false)

	gInc := core.NewLLMGenerator(p, dut.Space().NumBins(), true, 107)
	gInc.Weights = core.IncrementalOnlyWeights()
	cInc := runCampaign("reward-incremental", gInc, rocket.New(), tests, s.Scale.BatchSize, false)

	fmt.Fprintf(w, "\n-- Ablation A2: coverage-reward shaping --\n")
	fmt.Fprintf(w, "%-28s %8.2f%%\n", "paper reward (3 terms)", cDefault.Final)
	fmt.Fprintf(w, "%-28s %8.2f%%\n", "incremental-only reward", cInc.Final)
}

// RunBaselines executes ablation A3: TheHuzz vs random regression vs
// raw random at the equal budget.
func (s *Suite) RunBaselines(w io.Writer) {
	n := s.Scale.TestsEqual
	rv := runCampaign("random-valid", randfuzz.New(104, s.Scale.Train.BodyInstrs), rocket.New(), n, s.Scale.BatchSize, false)
	raw := randfuzz.New(105, s.Scale.Train.BodyInstrs)
	raw.Raw = true
	rr := runCampaign("random-raw", raw, rocket.New(), n, s.Scale.BatchSize, false)
	s.Random = rv
	fmt.Fprintf(w, "\n-- Ablation A3: baseline generators at %d tests --\n", n)
	fmt.Fprintf(w, "%-22s %8.2f%%\n", "ChatFuzz", s.ChatFuzz.At(n))
	fmt.Fprintf(w, "%-22s %8.2f%%\n", "TheHuzz", s.TheHuzz.At(n))
	fmt.Fprintf(w, "%-22s %8.2f%%\n", "random regression", rv.Final)
	fmt.Fprintf(w, "%-22s %8.2f%%\n", "random raw words", rr.Final)
}
