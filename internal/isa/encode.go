package isa

import "fmt"

// base opcode / funct fields per Op, used by Encode. Each entry packs
// opcode (bits 6:0), funct3 (bits 14:12 position), and funct7 or other
// high bits as needed by the format.
type encMeta struct {
	opcode uint32
	f3     uint32
	f7     uint32 // funct7 for R, funct5<<2 for AMO, imm12 for Sys
}

var encTable = map[Op]encMeta{
	OpLUI:    {0x37, 0, 0},
	OpAUIPC:  {0x17, 0, 0},
	OpJAL:    {0x6F, 0, 0},
	OpJALR:   {0x67, 0, 0},
	OpBEQ:    {0x63, 0, 0},
	OpBNE:    {0x63, 1, 0},
	OpBLT:    {0x63, 4, 0},
	OpBGE:    {0x63, 5, 0},
	OpBLTU:   {0x63, 6, 0},
	OpBGEU:   {0x63, 7, 0},
	OpLB:     {0x03, 0, 0},
	OpLH:     {0x03, 1, 0},
	OpLW:     {0x03, 2, 0},
	OpLD:     {0x03, 3, 0},
	OpLBU:    {0x03, 4, 0},
	OpLHU:    {0x03, 5, 0},
	OpLWU:    {0x03, 6, 0},
	OpSB:     {0x23, 0, 0},
	OpSH:     {0x23, 1, 0},
	OpSW:     {0x23, 2, 0},
	OpSD:     {0x23, 3, 0},
	OpADDI:   {0x13, 0, 0},
	OpSLTI:   {0x13, 2, 0},
	OpSLTIU:  {0x13, 3, 0},
	OpXORI:   {0x13, 4, 0},
	OpORI:    {0x13, 6, 0},
	OpANDI:   {0x13, 7, 0},
	OpSLLI:   {0x13, 1, 0x00},
	OpSRLI:   {0x13, 5, 0x00},
	OpSRAI:   {0x13, 5, 0x20},
	OpADD:    {0x33, 0, 0x00},
	OpSUB:    {0x33, 0, 0x20},
	OpSLL:    {0x33, 1, 0x00},
	OpSLT:    {0x33, 2, 0x00},
	OpSLTU:   {0x33, 3, 0x00},
	OpXOR:    {0x33, 4, 0x00},
	OpSRL:    {0x33, 5, 0x00},
	OpSRA:    {0x33, 5, 0x20},
	OpOR:     {0x33, 6, 0x00},
	OpAND:    {0x33, 7, 0x00},
	OpADDIW:  {0x1B, 0, 0},
	OpSLLIW:  {0x1B, 1, 0x00},
	OpSRLIW:  {0x1B, 5, 0x00},
	OpSRAIW:  {0x1B, 5, 0x20},
	OpADDW:   {0x3B, 0, 0x00},
	OpSUBW:   {0x3B, 0, 0x20},
	OpSLLW:   {0x3B, 1, 0x00},
	OpSRLW:   {0x3B, 5, 0x00},
	OpSRAW:   {0x3B, 5, 0x20},
	OpFENCE:  {0x0F, 0, 0},
	OpFENCEI: {0x0F, 1, 0},
	OpECALL:  {0x73, 0, 0x000},
	OpEBREAK: {0x73, 0, 0x001},
	OpMRET:   {0x73, 0, 0x302},
	OpWFI:    {0x73, 0, 0x105},

	OpMUL:    {0x33, 0, 0x01},
	OpMULH:   {0x33, 1, 0x01},
	OpMULHSU: {0x33, 2, 0x01},
	OpMULHU:  {0x33, 3, 0x01},
	OpDIV:    {0x33, 4, 0x01},
	OpDIVU:   {0x33, 5, 0x01},
	OpREM:    {0x33, 6, 0x01},
	OpREMU:   {0x33, 7, 0x01},
	OpMULW:   {0x3B, 0, 0x01},
	OpDIVW:   {0x3B, 4, 0x01},
	OpDIVUW:  {0x3B, 5, 0x01},
	OpREMW:   {0x3B, 6, 0x01},
	OpREMUW:  {0x3B, 7, 0x01},

	OpLRW:      {0x2F, 2, 0x02},
	OpSCW:      {0x2F, 2, 0x03},
	OpAMOSWAPW: {0x2F, 2, 0x01},
	OpAMOADDW:  {0x2F, 2, 0x00},
	OpAMOXORW:  {0x2F, 2, 0x04},
	OpAMOANDW:  {0x2F, 2, 0x0C},
	OpAMOORW:   {0x2F, 2, 0x08},
	OpAMOMINW:  {0x2F, 2, 0x10},
	OpAMOMAXW:  {0x2F, 2, 0x14},
	OpAMOMINUW: {0x2F, 2, 0x18},
	OpAMOMAXUW: {0x2F, 2, 0x1C},
	OpLRD:      {0x2F, 3, 0x02},
	OpSCD:      {0x2F, 3, 0x03},
	OpAMOSWAPD: {0x2F, 3, 0x01},
	OpAMOADDD:  {0x2F, 3, 0x00},
	OpAMOXORD:  {0x2F, 3, 0x04},
	OpAMOANDD:  {0x2F, 3, 0x0C},
	OpAMOORD:   {0x2F, 3, 0x08},
	OpAMOMIND:  {0x2F, 3, 0x10},
	OpAMOMAXD:  {0x2F, 3, 0x14},
	OpAMOMINUD: {0x2F, 3, 0x18},
	OpAMOMAXUD: {0x2F, 3, 0x1C},

	OpCSRRW:  {0x73, 1, 0},
	OpCSRRS:  {0x73, 2, 0},
	OpCSRRC:  {0x73, 3, 0},
	OpCSRRWI: {0x73, 5, 0},
	OpCSRRSI: {0x73, 6, 0},
	OpCSRRCI: {0x73, 7, 0},
}

// Encode assembles an instruction into its 32-bit encoding. It is the
// inverse of Decode for every valid instruction. Encode panics on
// OpIllegal or out-of-range fields; it is a programming-error API used
// by the corpus generator and tests, not a fuzz-input path.
func Encode(i Inst) uint32 {
	em, ok := encTable[i.Op]
	if !ok {
		panic(fmt.Sprintf("isa: cannot encode op %v", i.Op))
	}
	rd := uint32(i.Rd) & 31
	rs1 := uint32(i.Rs1) & 31
	rs2 := uint32(i.Rs2) & 31
	base := em.opcode | em.f3<<12

	switch i.Op.Format() {
	case FmtR:
		return base | rd<<7 | rs1<<15 | rs2<<20 | em.f7<<25
	case FmtI:
		return base | rd<<7 | rs1<<15 | uint32(i.Imm&0xFFF)<<20
	case FmtShift:
		return base | rd<<7 | rs1<<15 | uint32(i.Imm&0x3F)<<20 | em.f7<<25
	case FmtShiftW:
		return base | rd<<7 | rs1<<15 | uint32(i.Imm&0x1F)<<20 | em.f7<<25
	case FmtS:
		imm := uint32(i.Imm) & 0xFFF
		return base | (imm&0x1F)<<7 | rs1<<15 | rs2<<20 | (imm>>5)<<25
	case FmtB:
		imm := uint32(i.Imm) & 0x1FFF
		return base | (imm>>11&1)<<7 | (imm>>1&0xF)<<8 | rs1<<15 | rs2<<20 |
			(imm>>5&0x3F)<<25 | (imm>>12&1)<<31
	case FmtU:
		return base | rd<<7 | uint32(i.Imm)&0xFFFFF000
	case FmtJ:
		imm := uint32(i.Imm) & 0x1FFFFF
		return base | rd<<7 | (imm>>12&0xFF)<<12 | (imm>>11&1)<<20 |
			(imm>>1&0x3FF)<<21 | (imm>>20&1)<<31
	case FmtCSR:
		return base | rd<<7 | rs1<<15 | uint32(i.CSR)<<20
	case FmtCSRI:
		return base | rd<<7 | uint32(i.Imm&0x1F)<<15 | uint32(i.CSR)<<20
	case FmtAMO:
		var aq, rl uint32
		if i.Aq {
			aq = 1
		}
		if i.Rl {
			rl = 1
		}
		return base | rd<<7 | rs1<<15 | rs2<<20 | rl<<25 | aq<<26 | em.f7<<27
	case FmtFence:
		if i.Op == OpFENCE {
			return base | uint32(i.Imm&0xFFF)<<20
		}
		return base
	case FmtSys:
		return base | em.f7<<20
	}
	panic(fmt.Sprintf("isa: unhandled format for op %v", i.Op))
}

// Enc is shorthand for Encode with positional fields; it covers every
// non-CSR, non-AMO opcode.
func Enc(op Op, rd, rs1, rs2 Reg, imm int64) uint32 {
	return Encode(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// EncCSR encodes a Zicsr instruction. For the immediate forms rs1
// carries the 5-bit zimm.
func EncCSR(op Op, rd Reg, rs1 Reg, csr uint16) uint32 {
	i := Inst{Op: op, Rd: rd, CSR: csr}
	switch op {
	case OpCSRRWI, OpCSRRSI, OpCSRRCI:
		i.Imm = int64(rs1)
	default:
		i.Rs1 = rs1
	}
	return Encode(i)
}

// EncAMO encodes an A-extension instruction with aq/rl bits.
func EncAMO(op Op, rd, rs1, rs2 Reg, aq, rl bool) uint32 {
	return Encode(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Aq: aq, Rl: rl})
}

// NOP is the canonical no-operation encoding (addi x0, x0, 0).
const NOP uint32 = 0x00000013
