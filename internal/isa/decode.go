package isa

// Field extraction helpers. The RISC-V immediate encodings scatter bits
// across the word; each helper reassembles and sign-extends one format.

func field(raw uint32, hi, lo uint) uint32 { return (raw >> lo) & (1<<(hi-lo+1) - 1) }

func signExtend(v uint64, bit uint) int64 {
	shift := 63 - bit
	return int64(v<<shift) >> shift
}

func immI(raw uint32) int64 { return signExtend(uint64(field(raw, 31, 20)), 11) }

func immS(raw uint32) int64 {
	v := field(raw, 31, 25)<<5 | field(raw, 11, 7)
	return signExtend(uint64(v), 11)
}

func immB(raw uint32) int64 {
	v := field(raw, 31, 31)<<12 | field(raw, 7, 7)<<11 | field(raw, 30, 25)<<5 | field(raw, 11, 8)<<1
	return signExtend(uint64(v), 12)
}

func immU(raw uint32) int64 { return int64(int32(raw & 0xFFFFF000)) }

func immJ(raw uint32) int64 {
	v := field(raw, 31, 31)<<20 | field(raw, 19, 12)<<12 | field(raw, 20, 20)<<11 | field(raw, 30, 21)<<1
	return signExtend(uint64(v), 20)
}

func rdOf(raw uint32) Reg  { return Reg(field(raw, 11, 7)) }
func rs1Of(raw uint32) Reg { return Reg(field(raw, 19, 15)) }
func rs2Of(raw uint32) Reg { return Reg(field(raw, 24, 20)) }

// Decode decodes a 32-bit instruction word. Encodings outside the
// implemented RV64IMA+Zicsr+Zifencei subset (including the compressed
// 16-bit space) decode to an Inst with Op == OpIllegal.
func Decode(raw uint32) Inst {
	inst := Inst{Raw: raw}
	if raw&0x3 != 0x3 {
		return inst // compressed or reserved encoding space
	}
	opcode := raw & 0x7F
	f3 := field(raw, 14, 12)
	f7 := field(raw, 31, 25)

	switch opcode {
	case 0x37: // LUI
		inst.Op, inst.Rd, inst.Imm = OpLUI, rdOf(raw), immU(raw)
	case 0x17: // AUIPC
		inst.Op, inst.Rd, inst.Imm = OpAUIPC, rdOf(raw), immU(raw)
	case 0x6F: // JAL
		inst.Op, inst.Rd, inst.Imm = OpJAL, rdOf(raw), immJ(raw)
	case 0x67: // JALR
		if f3 != 0 {
			return inst
		}
		inst.Op, inst.Rd, inst.Rs1, inst.Imm = OpJALR, rdOf(raw), rs1Of(raw), immI(raw)
	case 0x63: // branches
		var op Op
		switch f3 {
		case 0:
			op = OpBEQ
		case 1:
			op = OpBNE
		case 4:
			op = OpBLT
		case 5:
			op = OpBGE
		case 6:
			op = OpBLTU
		case 7:
			op = OpBGEU
		default:
			return inst
		}
		inst.Op, inst.Rs1, inst.Rs2, inst.Imm = op, rs1Of(raw), rs2Of(raw), immB(raw)
	case 0x03: // loads
		var op Op
		switch f3 {
		case 0:
			op = OpLB
		case 1:
			op = OpLH
		case 2:
			op = OpLW
		case 3:
			op = OpLD
		case 4:
			op = OpLBU
		case 5:
			op = OpLHU
		case 6:
			op = OpLWU
		default:
			return inst
		}
		inst.Op, inst.Rd, inst.Rs1, inst.Imm = op, rdOf(raw), rs1Of(raw), immI(raw)
	case 0x23: // stores
		var op Op
		switch f3 {
		case 0:
			op = OpSB
		case 1:
			op = OpSH
		case 2:
			op = OpSW
		case 3:
			op = OpSD
		default:
			return inst
		}
		inst.Op, inst.Rs1, inst.Rs2, inst.Imm = op, rs1Of(raw), rs2Of(raw), immS(raw)
	case 0x13: // OP-IMM
		inst.Rd, inst.Rs1 = rdOf(raw), rs1Of(raw)
		switch f3 {
		case 0:
			inst.Op, inst.Imm = OpADDI, immI(raw)
		case 2:
			inst.Op, inst.Imm = OpSLTI, immI(raw)
		case 3:
			inst.Op, inst.Imm = OpSLTIU, immI(raw)
		case 4:
			inst.Op, inst.Imm = OpXORI, immI(raw)
		case 6:
			inst.Op, inst.Imm = OpORI, immI(raw)
		case 7:
			inst.Op, inst.Imm = OpANDI, immI(raw)
		case 1: // SLLI, 6-bit shamt on RV64
			if f7>>1 != 0 {
				return Inst{Raw: raw}
			}
			inst.Op, inst.Imm = OpSLLI, int64(field(raw, 25, 20))
		case 5: // SRLI / SRAI
			switch f7 >> 1 {
			case 0x00:
				inst.Op, inst.Imm = OpSRLI, int64(field(raw, 25, 20))
			case 0x10:
				inst.Op, inst.Imm = OpSRAI, int64(field(raw, 25, 20))
			default:
				return Inst{Raw: raw}
			}
		}
	case 0x1B: // OP-IMM-32
		inst.Rd, inst.Rs1 = rdOf(raw), rs1Of(raw)
		switch f3 {
		case 0:
			inst.Op, inst.Imm = OpADDIW, immI(raw)
		case 1:
			if f7 != 0 {
				return Inst{Raw: raw}
			}
			inst.Op, inst.Imm = OpSLLIW, int64(field(raw, 24, 20))
		case 5:
			switch f7 {
			case 0x00:
				inst.Op, inst.Imm = OpSRLIW, int64(field(raw, 24, 20))
			case 0x20:
				inst.Op, inst.Imm = OpSRAIW, int64(field(raw, 24, 20))
			default:
				return Inst{Raw: raw}
			}
		default:
			return inst
		}
	case 0x33: // OP
		inst.Rd, inst.Rs1, inst.Rs2 = rdOf(raw), rs1Of(raw), rs2Of(raw)
		var op Op
		switch f7 {
		case 0x00:
			op = [8]Op{OpADD, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpOR, OpAND}[f3]
		case 0x20:
			switch f3 {
			case 0:
				op = OpSUB
			case 5:
				op = OpSRA
			default:
				return Inst{Raw: raw}
			}
		case 0x01:
			op = [8]Op{OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}[f3]
		default:
			return Inst{Raw: raw}
		}
		inst.Op = op
	case 0x3B: // OP-32
		inst.Rd, inst.Rs1, inst.Rs2 = rdOf(raw), rs1Of(raw), rs2Of(raw)
		switch f7 {
		case 0x00:
			switch f3 {
			case 0:
				inst.Op = OpADDW
			case 1:
				inst.Op = OpSLLW
			case 5:
				inst.Op = OpSRLW
			default:
				return Inst{Raw: raw}
			}
		case 0x20:
			switch f3 {
			case 0:
				inst.Op = OpSUBW
			case 5:
				inst.Op = OpSRAW
			default:
				return Inst{Raw: raw}
			}
		case 0x01:
			switch f3 {
			case 0:
				inst.Op = OpMULW
			case 4:
				inst.Op = OpDIVW
			case 5:
				inst.Op = OpDIVUW
			case 6:
				inst.Op = OpREMW
			case 7:
				inst.Op = OpREMUW
			default:
				return Inst{Raw: raw}
			}
		default:
			return Inst{Raw: raw}
		}
	case 0x0F: // MISC-MEM
		switch f3 {
		case 0:
			inst.Op = OpFENCE
			inst.Imm = int64(field(raw, 31, 20)) // pred/succ/fm kept as raw imm
		case 1:
			if field(raw, 31, 20) != 0 || rdOf(raw) != 0 || rs1Of(raw) != 0 {
				return inst
			}
			inst.Op = OpFENCEI
		default:
			return inst
		}
	case 0x73: // SYSTEM
		switch f3 {
		case 0:
			if rdOf(raw) != 0 || rs1Of(raw) != 0 {
				return inst
			}
			switch field(raw, 31, 20) {
			case 0x000:
				inst.Op = OpECALL
			case 0x001:
				inst.Op = OpEBREAK
			case 0x302:
				inst.Op = OpMRET
			case 0x105:
				inst.Op = OpWFI
			default:
				return inst
			}
		case 1, 2, 3:
			inst.Op = [4]Op{0, OpCSRRW, OpCSRRS, OpCSRRC}[f3]
			inst.Rd, inst.Rs1, inst.CSR = rdOf(raw), rs1Of(raw), uint16(field(raw, 31, 20))
		case 5, 6, 7:
			inst.Op = [8]Op{0, 0, 0, 0, 0, OpCSRRWI, OpCSRRSI, OpCSRRCI}[f3]
			inst.Rd, inst.CSR = rdOf(raw), uint16(field(raw, 31, 20))
			inst.Imm = int64(field(raw, 19, 15)) // zimm
		default:
			return inst
		}
	case 0x2F: // AMO
		if f3 != 2 && f3 != 3 {
			return inst
		}
		word := f3 == 2
		f5 := field(raw, 31, 27)
		var opW, opD Op
		switch f5 {
		case 0x02:
			if rs2Of(raw) != 0 {
				return inst
			}
			opW, opD = OpLRW, OpLRD
		case 0x03:
			opW, opD = OpSCW, OpSCD
		case 0x01:
			opW, opD = OpAMOSWAPW, OpAMOSWAPD
		case 0x00:
			opW, opD = OpAMOADDW, OpAMOADDD
		case 0x04:
			opW, opD = OpAMOXORW, OpAMOXORD
		case 0x0C:
			opW, opD = OpAMOANDW, OpAMOANDD
		case 0x08:
			opW, opD = OpAMOORW, OpAMOORD
		case 0x10:
			opW, opD = OpAMOMINW, OpAMOMIND
		case 0x14:
			opW, opD = OpAMOMAXW, OpAMOMAXD
		case 0x18:
			opW, opD = OpAMOMINUW, OpAMOMINUD
		case 0x1C:
			opW, opD = OpAMOMAXUW, OpAMOMAXUD
		default:
			return inst
		}
		if word {
			inst.Op = opW
		} else {
			inst.Op = opD
		}
		inst.Rd, inst.Rs1, inst.Rs2 = rdOf(raw), rs1Of(raw), rs2Of(raw)
		inst.Aq = field(raw, 26, 26) == 1
		inst.Rl = field(raw, 25, 25) == 1
	}
	return inst
}
