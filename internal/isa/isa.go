// Package isa implements the RISC-V RV64IMA + Zicsr + Zifencei
// instruction set: encoding, decoding, disassembly, and the pure
// datapath semantics shared by the golden-model ISS and the DUT core
// models.
//
// The package is deliberately self-contained: it is the "ISA
// disassembler" reward agent of ChatFuzz's training step 2, the decoder
// of both simulated cores, and the assembler used by the synthetic
// corpus generator.
//chatfuzz:deterministic package
package isa

import "fmt"

// Reg identifies one of the 32 integer registers x0..x31.
type Reg uint8

// NumRegs is the size of the integer register file.
const NumRegs = 32

// Commonly used ABI register names.
const (
	Zero Reg = 0  // hardwired zero
	RA   Reg = 1  // return address
	SP   Reg = 2  // stack pointer
	GP   Reg = 3  // global pointer
	TP   Reg = 4  // thread pointer
	T0   Reg = 5  // temporaries
	T1   Reg = 6
	T2   Reg = 7
	S0   Reg = 8 // saved / frame pointer
	S1   Reg = 9
	A0   Reg = 10 // arguments / return values
	A1   Reg = 11
	A2   Reg = 12
	A3   Reg = 13
	A4   Reg = 14
	A5   Reg = 15
	A6   Reg = 16
	A7   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	S8   Reg = 24
	S9   Reg = 25
	S10  Reg = 26
	S11  Reg = 27
	T3   Reg = 28
	T4   Reg = 29
	T5   Reg = 30
	T6   Reg = 31
)

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register (e.g. "a0" for x10).
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d?", uint8(r))
}

// Op enumerates every instruction of the implemented ISA. OpIllegal is
// the zero value and stands for any encoding the decoder rejects.
type Op uint16

// Instruction opcodes, grouped by extension.
const (
	OpIllegal Op = iota

	// RV32I / RV64I base.
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU
	OpSB
	OpSH
	OpSW
	OpSD
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW
	OpFENCE
	OpFENCEI
	OpECALL
	OpEBREAK

	// M extension.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW

	// A extension.
	OpLRW
	OpSCW
	OpAMOSWAPW
	OpAMOADDW
	OpAMOXORW
	OpAMOANDW
	OpAMOORW
	OpAMOMINW
	OpAMOMAXW
	OpAMOMINUW
	OpAMOMAXUW
	OpLRD
	OpSCD
	OpAMOSWAPD
	OpAMOADDD
	OpAMOXORD
	OpAMOANDD
	OpAMOORD
	OpAMOMIND
	OpAMOMAXD
	OpAMOMINUD
	OpAMOMAXUD

	// Zicsr.
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI

	// Privileged.
	OpMRET
	OpWFI

	numOps
)

// NumOps is the number of defined opcodes including OpIllegal.
const NumOps = int(numOps)

// Format describes the encoding layout of an instruction.
type Format uint8

// Instruction formats. FmtShift, FmtCSR, FmtCSRI, FmtAMO and FmtSys are
// specialisations of the base formats with their own field rules.
const (
	FmtR Format = iota
	FmtI
	FmtS
	FmtB
	FmtU
	FmtJ
	FmtShift  // I-format with 6-bit (or 5-bit for *W) shamt
	FmtShiftW // I-format with 5-bit shamt, W variant
	FmtCSR    // CSR with register source
	FmtCSRI   // CSR with 5-bit zimm source
	FmtAMO    // R-format with aq/rl bits
	FmtFence  // FENCE / FENCE.I
	FmtSys    // ECALL / EBREAK / MRET / WFI
)

// Class is a bitmask of behavioural categories used by the simulators,
// the mutation engine, and the mismatch classifier.
type Class uint32

// Behavioural classes.
const (
	ClassALU Class = 1 << iota
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassMul
	ClassDiv
	ClassAMO
	ClassCSR
	ClassSystem
	ClassFence
	ClassW // operates on 32-bit words, sign-extends result
)

type opMeta struct {
	name  string
	fmt   Format
	class Class
}

var opTable = [numOps]opMeta{
	OpIllegal: {"illegal", FmtSys, 0},

	OpLUI:    {"lui", FmtU, ClassALU},
	OpAUIPC:  {"auipc", FmtU, ClassALU},
	OpJAL:    {"jal", FmtJ, ClassJump},
	OpJALR:   {"jalr", FmtI, ClassJump},
	OpBEQ:    {"beq", FmtB, ClassBranch},
	OpBNE:    {"bne", FmtB, ClassBranch},
	OpBLT:    {"blt", FmtB, ClassBranch},
	OpBGE:    {"bge", FmtB, ClassBranch},
	OpBLTU:   {"bltu", FmtB, ClassBranch},
	OpBGEU:   {"bgeu", FmtB, ClassBranch},
	OpLB:     {"lb", FmtI, ClassLoad},
	OpLH:     {"lh", FmtI, ClassLoad},
	OpLW:     {"lw", FmtI, ClassLoad},
	OpLD:     {"ld", FmtI, ClassLoad},
	OpLBU:    {"lbu", FmtI, ClassLoad},
	OpLHU:    {"lhu", FmtI, ClassLoad},
	OpLWU:    {"lwu", FmtI, ClassLoad},
	OpSB:     {"sb", FmtS, ClassStore},
	OpSH:     {"sh", FmtS, ClassStore},
	OpSW:     {"sw", FmtS, ClassStore},
	OpSD:     {"sd", FmtS, ClassStore},
	OpADDI:   {"addi", FmtI, ClassALU},
	OpSLTI:   {"slti", FmtI, ClassALU},
	OpSLTIU:  {"sltiu", FmtI, ClassALU},
	OpXORI:   {"xori", FmtI, ClassALU},
	OpORI:    {"ori", FmtI, ClassALU},
	OpANDI:   {"andi", FmtI, ClassALU},
	OpSLLI:   {"slli", FmtShift, ClassALU},
	OpSRLI:   {"srli", FmtShift, ClassALU},
	OpSRAI:   {"srai", FmtShift, ClassALU},
	OpADD:    {"add", FmtR, ClassALU},
	OpSUB:    {"sub", FmtR, ClassALU},
	OpSLL:    {"sll", FmtR, ClassALU},
	OpSLT:    {"slt", FmtR, ClassALU},
	OpSLTU:   {"sltu", FmtR, ClassALU},
	OpXOR:    {"xor", FmtR, ClassALU},
	OpSRL:    {"srl", FmtR, ClassALU},
	OpSRA:    {"sra", FmtR, ClassALU},
	OpOR:     {"or", FmtR, ClassALU},
	OpAND:    {"and", FmtR, ClassALU},
	OpADDIW:  {"addiw", FmtI, ClassALU | ClassW},
	OpSLLIW:  {"slliw", FmtShiftW, ClassALU | ClassW},
	OpSRLIW:  {"srliw", FmtShiftW, ClassALU | ClassW},
	OpSRAIW:  {"sraiw", FmtShiftW, ClassALU | ClassW},
	OpADDW:   {"addw", FmtR, ClassALU | ClassW},
	OpSUBW:   {"subw", FmtR, ClassALU | ClassW},
	OpSLLW:   {"sllw", FmtR, ClassALU | ClassW},
	OpSRLW:   {"srlw", FmtR, ClassALU | ClassW},
	OpSRAW:   {"sraw", FmtR, ClassALU | ClassW},
	OpFENCE:  {"fence", FmtFence, ClassFence},
	OpFENCEI: {"fence.i", FmtFence, ClassFence},
	OpECALL:  {"ecall", FmtSys, ClassSystem},
	OpEBREAK: {"ebreak", FmtSys, ClassSystem},

	OpMUL:    {"mul", FmtR, ClassMul},
	OpMULH:   {"mulh", FmtR, ClassMul},
	OpMULHSU: {"mulhsu", FmtR, ClassMul},
	OpMULHU:  {"mulhu", FmtR, ClassMul},
	OpDIV:    {"div", FmtR, ClassDiv},
	OpDIVU:   {"divu", FmtR, ClassDiv},
	OpREM:    {"rem", FmtR, ClassDiv},
	OpREMU:   {"remu", FmtR, ClassDiv},
	OpMULW:   {"mulw", FmtR, ClassMul | ClassW},
	OpDIVW:   {"divw", FmtR, ClassDiv | ClassW},
	OpDIVUW:  {"divuw", FmtR, ClassDiv | ClassW},
	OpREMW:   {"remw", FmtR, ClassDiv | ClassW},
	OpREMUW:  {"remuw", FmtR, ClassDiv | ClassW},

	OpLRW:      {"lr.w", FmtAMO, ClassAMO | ClassLoad | ClassW},
	OpSCW:      {"sc.w", FmtAMO, ClassAMO | ClassStore | ClassW},
	OpAMOSWAPW: {"amoswap.w", FmtAMO, ClassAMO | ClassW},
	OpAMOADDW:  {"amoadd.w", FmtAMO, ClassAMO | ClassW},
	OpAMOXORW:  {"amoxor.w", FmtAMO, ClassAMO | ClassW},
	OpAMOANDW:  {"amoand.w", FmtAMO, ClassAMO | ClassW},
	OpAMOORW:   {"amoor.w", FmtAMO, ClassAMO | ClassW},
	OpAMOMINW:  {"amomin.w", FmtAMO, ClassAMO | ClassW},
	OpAMOMAXW:  {"amomax.w", FmtAMO, ClassAMO | ClassW},
	OpAMOMINUW: {"amominu.w", FmtAMO, ClassAMO | ClassW},
	OpAMOMAXUW: {"amomaxu.w", FmtAMO, ClassAMO | ClassW},
	OpLRD:      {"lr.d", FmtAMO, ClassAMO | ClassLoad},
	OpSCD:      {"sc.d", FmtAMO, ClassAMO | ClassStore},
	OpAMOSWAPD: {"amoswap.d", FmtAMO, ClassAMO},
	OpAMOADDD:  {"amoadd.d", FmtAMO, ClassAMO},
	OpAMOXORD:  {"amoxor.d", FmtAMO, ClassAMO},
	OpAMOANDD:  {"amoand.d", FmtAMO, ClassAMO},
	OpAMOORD:   {"amoor.d", FmtAMO, ClassAMO},
	OpAMOMIND:  {"amomin.d", FmtAMO, ClassAMO},
	OpAMOMAXD:  {"amomax.d", FmtAMO, ClassAMO},
	OpAMOMINUD: {"amominu.d", FmtAMO, ClassAMO},
	OpAMOMAXUD: {"amomaxu.d", FmtAMO, ClassAMO},

	OpCSRRW:  {"csrrw", FmtCSR, ClassCSR},
	OpCSRRS:  {"csrrs", FmtCSR, ClassCSR},
	OpCSRRC:  {"csrrc", FmtCSR, ClassCSR},
	OpCSRRWI: {"csrrwi", FmtCSRI, ClassCSR},
	OpCSRRSI: {"csrrsi", FmtCSRI, ClassCSR},
	OpCSRRCI: {"csrrci", FmtCSRI, ClassCSR},

	OpMRET: {"mret", FmtSys, ClassSystem},
	OpWFI:  {"wfi", FmtSys, ClassSystem},
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opTable) {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d?", uint16(o))
}

// Format returns the encoding format of the opcode.
func (o Op) Format() Format { return opTable[o].fmt }

// Class returns the behavioural class bitmask of the opcode.
func (o Op) Class() Class { return opTable[o].class }

// Is reports whether the opcode belongs to every class in mask.
func (o Op) Is(mask Class) bool { return opTable[o].class&mask == mask }

// IsAny reports whether the opcode belongs to at least one class in mask.
func (o Op) IsAny(mask Class) bool { return opTable[o].class&mask != 0 }

// Inst is a decoded instruction. Raw preserves the original encoding.
type Inst struct {
	Raw uint32
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	// Imm is the sign-extended immediate for I/S/B/U/J formats, the
	// shift amount for FmtShift/FmtShiftW, and the 5-bit zimm for
	// FmtCSRI.
	Imm int64
	// CSR is the CSR address for Zicsr instructions.
	CSR uint16
	// Aq and Rl are the acquire/release bits of A-extension
	// instructions.
	Aq, Rl bool
}

// Valid reports whether the instruction decoded successfully.
func (i Inst) Valid() bool { return i.Op != OpIllegal }

// WritesRd reports whether the instruction architecturally writes a
// destination register (even if Rd is x0, in which case the write is
// discarded).
func (i Inst) WritesRd() bool {
	switch i.Op.Format() {
	case FmtS, FmtB, FmtFence, FmtSys:
		return false
	}
	return true
}
