package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{0: "zero", 1: "ra", 2: "sp", 10: "a0", 31: "t6"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpMetadataComplete(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		if opTable[op].name == "" {
			t.Errorf("op %d has no table entry", op)
		}
		if _, ok := encTable[op]; !ok {
			t.Errorf("op %v has no encoder entry", op)
		}
	}
}

func TestDecodeKnownWords(t *testing.T) {
	// Hand-assembled words cross-checked against the RISC-V spec tables.
	cases := []struct {
		raw  uint32
		want string
	}{
		{0x00000013, "addi zero, zero, 0"},      // canonical NOP
		{0x00A28293, "addi t0, t0, 10"},         // addi x5, x5, 10
		{0x00B50633, "add a2, a0, a1"},          // add x12, x10, x11
		{0x40B50633, "sub a2, a0, a1"},          // sub
		{0x02B50633, "mul a2, a0, a1"},          // mul
		{0x0000006F, "jal zero, 0"},             // jal .
		{0xFE0008E3, "beq zero, zero, -16"},     // beq backwards
		{0x00052503, "lw a0, 0(a0)"},            // lw x10, 0(x10)
		{0x00A53023, "sd a0, 0(a0)"},            // sd x10, 0(x10)
		{0x000280E7, "jalr ra, 0(t0)"},          // jalr x1, 0(x5)
		{0x12345037, "lui zero, 0x12345"},       // lui
		{0x00000073, "ecall"},                   //
		{0x00100073, "ebreak"},                  //
		{0x30200073, "mret"},                    //
		{0x10500073, "wfi"},                     //
		{0x0000100F, "fence.i"},                 //
		{0x30529073, "csrrw zero, mtvec, t0"},   // csrrw x0, mtvec, x5
		{0x342025F3, "csrrs a1, mcause, zero"},  // csrr a1, mcause
		{0x4105B52F, "amoor.d a0, a6, (a1)"},    // amoor.d x10, x16, (x11)
		{0x1005252F, "lr.w a0, (a0)"},           //
		{0x0020D093, "srli ra, ra, 2"},          //
		{0x4020D093, "srai ra, ra, 2"},          //
		{0x02B55533, "divu a0, a0, a1"},         //
	}
	for _, c := range cases {
		got := Disassemble(c.raw)
		if got != c.want {
			t.Errorf("Disassemble(%#08x) = %q, want %q", c.raw, got, c.want)
		}
	}
}

func TestDecodeRejectsCompressedSpace(t *testing.T) {
	for _, raw := range []uint32{0x00000000, 0x00000001, 0x00000002, 0xFFFF4142} {
		if Decode(raw).Valid() {
			t.Errorf("Decode(%#08x) should be illegal", raw)
		}
	}
}

func TestDecodeRejectsReservedEncodings(t *testing.T) {
	cases := []uint32{
		0x00002063, // branch funct3=2 (reserved)
		0x00007003, // load funct3=7 (reserved)
		0x0000400F, // misc-mem funct3=4
		0x00004073, // system funct3=4
		0x0000002F, // AMO funct3=0
		0x30200173, // mret with rd!=0
		0xC0000033, // OP with funct7=0x60
	}
	for _, raw := range cases {
		if inst := Decode(raw); inst.Valid() {
			t.Errorf("Decode(%#08x) = %v, want illegal", raw, inst.Op)
		}
	}
}

// randInst builds a random valid instruction for roundtrip testing.
func randInst(rng *rand.Rand) Inst {
	for {
		op := Op(1 + rng.Intn(NumOps-1))
		i := Inst{Op: op}
		switch op.Format() {
		case FmtR:
			i.Rd, i.Rs1, i.Rs2 = Reg(rng.Intn(32)), Reg(rng.Intn(32)), Reg(rng.Intn(32))
		case FmtI:
			i.Rd, i.Rs1 = Reg(rng.Intn(32)), Reg(rng.Intn(32))
			i.Imm = int64(rng.Intn(1<<12)) - (1 << 11)
		case FmtShift:
			i.Rd, i.Rs1 = Reg(rng.Intn(32)), Reg(rng.Intn(32))
			i.Imm = int64(rng.Intn(64))
		case FmtShiftW:
			i.Rd, i.Rs1 = Reg(rng.Intn(32)), Reg(rng.Intn(32))
			i.Imm = int64(rng.Intn(32))
		case FmtS, FmtB:
			i.Rs1, i.Rs2 = Reg(rng.Intn(32)), Reg(rng.Intn(32))
			if op.Format() == FmtB {
				i.Imm = int64(rng.Intn(1<<12)-1<<11) * 2
			} else {
				i.Imm = int64(rng.Intn(1<<12)) - (1 << 11)
			}
		case FmtU:
			i.Rd = Reg(rng.Intn(32))
			i.Imm = int64(int32(uint32(rng.Intn(1<<20)) << 12))
		case FmtJ:
			i.Rd = Reg(rng.Intn(32))
			i.Imm = int64(rng.Intn(1<<20)-1<<19) * 2
		case FmtCSR:
			i.Rd, i.Rs1 = Reg(rng.Intn(32)), Reg(rng.Intn(32))
			i.CSR = KnownCSRs[rng.Intn(len(KnownCSRs))]
		case FmtCSRI:
			i.Rd = Reg(rng.Intn(32))
			i.Imm = int64(rng.Intn(32))
			i.CSR = KnownCSRs[rng.Intn(len(KnownCSRs))]
		case FmtAMO:
			i.Rd, i.Rs1, i.Rs2 = Reg(rng.Intn(32)), Reg(rng.Intn(32)), Reg(rng.Intn(32))
			if op == OpLRW || op == OpLRD {
				i.Rs2 = 0
			}
			i.Aq, i.Rl = rng.Intn(2) == 1, rng.Intn(2) == 1
		case FmtFence:
			if op == OpFENCE {
				i.Imm = 0xFF // pred|succ = iorw,iorw
			}
		case FmtSys:
			// no fields
		}
		return i
	}
}

// TestEncodeDecodeRoundtrip is the core property: decode(encode(i))
// reproduces every architectural field for any valid instruction.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		want := randInst(rng)
		raw := Encode(want)
		got := Decode(raw)
		if got.Op != want.Op || got.Rd != want.Rd || got.Rs1 != want.Rs1 ||
			got.Rs2 != want.Rs2 || got.Imm != want.Imm || got.CSR != want.CSR ||
			got.Aq != want.Aq || got.Rl != want.Rl {
			t.Fatalf("roundtrip failed:\nwant %+v\nraw  %#08x\ngot  %+v", want, raw, got)
		}
	}
}

// TestDecodeEncodeRoundtrip is the dual property: any word that decodes
// as valid re-encodes to the identical word.
func TestDecodeEncodeRoundtrip(t *testing.T) {
	f := func(raw uint32) bool {
		inst := Decode(raw)
		if !inst.Valid() {
			return true
		}
		if inst.Op == OpFENCE {
			// FENCE keeps only pred/succ/fm in Imm; rd/rs1 are
			// ignored-but-legal fields the re-encoder zeroes.
			return true
		}
		return Encode(inst) == raw
	}
	cfg := &quick.Config{MaxCount: 50000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDisassembleNeverPanics fuzzes the disassembler with arbitrary
// words; it must render something for every input.
func TestDisassembleNeverPanics(t *testing.T) {
	f := func(raw uint32) bool { return Disassemble(raw) != "" }
	cfg := &quick.Config{MaxCount: 50000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCountInvalid(t *testing.T) {
	words := []uint32{NOP, 0x00000000, Enc(OpADD, 1, 2, 3, 0), 0xFFFFFFFF}
	if got := CountInvalid(words); got != 2 {
		t.Errorf("CountInvalid = %d, want 2", got)
	}
}

func TestWritesRd(t *testing.T) {
	cases := []struct {
		op   Op
		want bool
	}{
		{OpADD, true}, {OpLW, true}, {OpJAL, true}, {OpJALR, true},
		{OpCSRRW, true}, {OpAMOADDD, true}, {OpLUI, true},
		{OpSW, false}, {OpBEQ, false}, {OpFENCE, false}, {OpECALL, false},
		{OpMRET, false},
	}
	for _, c := range cases {
		if got := (Inst{Op: c.op}).WritesRd(); got != c.want {
			t.Errorf("WritesRd(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestALUBasics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b    uint64
		want    uint64
	}{
		{OpADD, 2, 3, 5},
		{OpSUB, 2, 3, ^uint64(0)},
		{OpSLL, 1, 63, 1 << 63},
		{OpSLT, ^uint64(0), 0, 1},       // -1 < 0 signed
		{OpSLTU, ^uint64(0), 0, 0},      // max > 0 unsigned
		{OpXOR, 0xF0, 0x0F, 0xFF},
		{OpSRL, 1 << 63, 63, 1},
		{OpSRA, 1 << 63, 63, ^uint64(0)},
		{OpOR, 0xF0, 0x0F, 0xFF},
		{OpAND, 0xF0, 0x0F, 0},
		{OpADDW, 0x7FFFFFFF, 1, 0xFFFFFFFF80000000},
		{OpSUBW, 0, 1, ^uint64(0)},
		{OpSLLW, 1, 31, 0xFFFFFFFF80000000},
		{OpSRLW, 0x80000000, 31, 1},
		{OpSRAW, 0x80000000, 31, ^uint64(0)},
	}
	for _, c := range cases {
		if got := ALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("ALU(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestMulSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpMUL, 7, 6, 42},
		{OpMULH, ^uint64(0), ^uint64(0), 0},                  // -1 * -1 = 1, high = 0
		{OpMULH, 1 << 63, 2, ^uint64(0)},                     // min * 2 high = -1
		{OpMULHU, ^uint64(0), ^uint64(0), ^uint64(0) - 1},    // (2^64-1)^2 >> 64
		{OpMULHSU, ^uint64(0), ^uint64(0), ^uint64(0)},       // -1 * max unsigned, high = -1
		{OpMULW, 0x100000000 | 3, 5, 15},                     // truncates to 32 bits first
	}
	for _, c := range cases {
		if got := ALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("ALU(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestDivSemanticsSpecCorners(t *testing.T) {
	minI64 := uint64(1) << 63
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		// Division by zero per spec.
		{OpDIV, 42, 0, ^uint64(0)},
		{OpDIVU, 42, 0, ^uint64(0)},
		{OpREM, 42, 0, 42},
		{OpREMU, 42, 0, 42},
		// Signed overflow per spec.
		{OpDIV, minI64, ^uint64(0), minI64},
		{OpREM, minI64, ^uint64(0), 0},
		// Normal cases.
		{OpDIV, ^uint64(0) - 6, 2, uint64(^uint64(0)-2)}, // -7/2 = -3
		{OpREM, ^uint64(0) - 6, 2, ^uint64(0)},           // -7%2 = -1
		// 32-bit corners.
		{OpDIVW, 0x80000000, ^uint64(0), 0xFFFFFFFF80000000},
		{OpREMW, 0x80000000, ^uint64(0), 0},
		{OpDIVW, 7, 0, ^uint64(0)},
		{OpDIVUW, 7, 0, ^uint64(0)},
		{OpREMW, 7, 0, 7},
		{OpREMUW, 0xFFFFFFFF, 0, 0xFFFFFFFFFFFFFFFF}, // sext32(0xFFFFFFFF)
	}
	for _, c := range cases {
		if got := ALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("ALU(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBEQ, 5, 5, true}, {OpBEQ, 5, 6, false},
		{OpBNE, 5, 6, true}, {OpBNE, 5, 5, false},
		{OpBLT, ^uint64(0), 0, true}, {OpBLT, 0, ^uint64(0), false},
		{OpBGE, 0, ^uint64(0), true}, {OpBGE, ^uint64(0), 0, false},
		{OpBLTU, 0, ^uint64(0), true}, {OpBLTU, ^uint64(0), 0, false},
		{OpBGEU, ^uint64(0), 0, true}, {OpBGEU, 0, ^uint64(0), false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %#x, %#x) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestAMOApply(t *testing.T) {
	cases := []struct {
		op        Op
		old, src  uint64
		want      uint64
	}{
		{OpAMOSWAPD, 1, 2, 2},
		{OpAMOADDD, 1, 2, 3},
		{OpAMOXORD, 0xFF, 0x0F, 0xF0},
		{OpAMOANDD, 0xFF, 0x0F, 0x0F},
		{OpAMOORD, 0xF0, 0x0F, 0xFF},
		{OpAMOMIND, ^uint64(0), 1, ^uint64(0)}, // -1 < 1 signed
		{OpAMOMAXD, ^uint64(0), 1, 1},
		{OpAMOMINUD, ^uint64(0), 1, 1},
		{OpAMOMAXUD, ^uint64(0), 1, ^uint64(0)},
		{OpAMOADDW, 0xFFFFFFFF, 1, 0},           // 32-bit wraparound
		{OpAMOMINW, 0x80000000, 0, 0x80000000},  // INT32_MIN < 0
		{OpAMOMAXUW, 0x80000000, 0, 0x80000000}, // unsigned max
	}
	for _, c := range cases {
		if got := AMOApply(c.op, c.old, c.src); got != c.want {
			t.Errorf("AMOApply(%v, %#x, %#x) = %#x, want %#x", c.op, c.old, c.src, got, c.want)
		}
	}
}

func TestMemWidth(t *testing.T) {
	cases := []struct {
		op     Op
		bytes  int
		signed bool
	}{
		{OpLB, 1, true}, {OpLBU, 1, false}, {OpLH, 2, true}, {OpLHU, 2, false},
		{OpLW, 4, true}, {OpLWU, 4, false}, {OpLD, 8, true},
		{OpSB, 1, false}, {OpSH, 2, false}, {OpSW, 4, false}, {OpSD, 8, true},
		{OpAMOADDW, 4, true}, {OpAMOADDD, 8, true}, {OpLRW, 4, true}, {OpSCD, 8, true},
	}
	for _, c := range cases {
		b, s := MemWidth(c.op)
		if b != c.bytes || s != c.signed {
			t.Errorf("MemWidth(%v) = (%d, %v), want (%d, %v)", c.op, b, s, c.bytes, c.signed)
		}
	}
}

func TestDisassembleProgram(t *testing.T) {
	words := []uint32{NOP, Enc(OpADD, 10, 11, 12, 0)}
	out := DisassembleProgram(words, 0x80000000)
	if !strings.Contains(out, "80000000") || !strings.Contains(out, "add") {
		t.Errorf("unexpected listing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("want 2 lines, got %d", lines)
	}
}

func TestExcNames(t *testing.T) {
	for cause := uint64(0); cause < 12; cause++ {
		if ExcName(cause) == "" {
			t.Errorf("ExcName(%d) empty", cause)
		}
	}
	if ExcName(ExcLoadAddrMisaligned) != "load address misaligned" {
		t.Error("wrong name for load misaligned")
	}
}

func TestClassQueries(t *testing.T) {
	if !OpMUL.Is(ClassMul) || OpMUL.Is(ClassDiv) {
		t.Error("OpMUL class wrong")
	}
	if !OpAMOADDW.Is(ClassAMO | ClassW) {
		t.Error("OpAMOADDW should be AMO|W")
	}
	if !OpLRD.IsAny(ClassLoad) || OpLRD.Is(ClassW) {
		t.Error("OpLRD class wrong")
	}
	if !OpDIVW.Is(ClassDiv|ClassW) || OpDIVW.IsAny(ClassMul) {
		t.Error("OpDIVW class wrong")
	}
}
