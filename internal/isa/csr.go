package isa

import "fmt"

// Machine-mode CSR addresses implemented by the simulators (a practical
// subset of the privileged spec: trap handling, counters, identity).
const (
	CSRMStatus  uint16 = 0x300
	CSRMISA     uint16 = 0x301
	CSRMIE      uint16 = 0x304
	CSRMTVec    uint16 = 0x305
	CSRMScratch uint16 = 0x340
	CSRMEPC     uint16 = 0x341
	CSRMCause   uint16 = 0x342
	CSRMTVal    uint16 = 0x343
	CSRMIP      uint16 = 0x344
	CSRMCycle   uint16 = 0xB00
	CSRMInstret uint16 = 0xB02
	CSRMVendor  uint16 = 0xF11
	CSRMArchID  uint16 = 0xF12
	CSRMImpID   uint16 = 0xF13
	CSRMHartID  uint16 = 0xF14
	CSRCycle    uint16 = 0xC00
	CSRTime     uint16 = 0xC01
	CSRInstret  uint16 = 0xC02
)

var csrNames = map[uint16]string{
	CSRMStatus:  "mstatus",
	CSRMISA:     "misa",
	CSRMIE:      "mie",
	CSRMTVec:    "mtvec",
	CSRMScratch: "mscratch",
	CSRMEPC:     "mepc",
	CSRMCause:   "mcause",
	CSRMTVal:    "mtval",
	CSRMIP:      "mip",
	CSRMCycle:   "mcycle",
	CSRMInstret: "minstret",
	CSRMVendor:  "mvendorid",
	CSRMArchID:  "marchid",
	CSRMImpID:   "mimpid",
	CSRMHartID:  "mhartid",
	CSRCycle:    "cycle",
	CSRTime:     "time",
	CSRInstret:  "instret",
}

// CSRName returns the architectural name of a CSR address, or a hex
// literal for unimplemented addresses.
func CSRName(addr uint16) string {
	if n, ok := csrNames[addr]; ok {
		return n
	}
	return fmt.Sprintf("0x%03x", addr)
}

// KnownCSRs lists the implemented CSR addresses in a stable order, used
// by the corpus generator and the fuzzers' instruction pools.
var KnownCSRs = []uint16{
	CSRMStatus, CSRMISA, CSRMIE, CSRMTVec, CSRMScratch,
	CSRMEPC, CSRMCause, CSRMTVal, CSRMIP,
	CSRMCycle, CSRMInstret, CSRMHartID,
}

// Exception cause codes (mcause values for synchronous traps), per the
// privileged spec.
const (
	ExcInstAddrMisaligned  uint64 = 0
	ExcInstAccessFault     uint64 = 1
	ExcIllegalInstruction  uint64 = 2
	ExcBreakpoint          uint64 = 3
	ExcLoadAddrMisaligned  uint64 = 4
	ExcLoadAccessFault     uint64 = 5
	ExcStoreAddrMisaligned uint64 = 6
	ExcStoreAccessFault    uint64 = 7
	ExcECallFromU          uint64 = 8
	ExcECallFromM          uint64 = 11
)

// ExcName returns a human-readable name for an exception cause code.
func ExcName(cause uint64) string {
	switch cause {
	case ExcInstAddrMisaligned:
		return "instruction address misaligned"
	case ExcInstAccessFault:
		return "instruction access fault"
	case ExcIllegalInstruction:
		return "illegal instruction"
	case ExcBreakpoint:
		return "breakpoint"
	case ExcLoadAddrMisaligned:
		return "load address misaligned"
	case ExcLoadAccessFault:
		return "load access fault"
	case ExcStoreAddrMisaligned:
		return "store/AMO address misaligned"
	case ExcStoreAccessFault:
		return "store/AMO access fault"
	case ExcECallFromU:
		return "environment call from U-mode"
	case ExcECallFromM:
		return "environment call from M-mode"
	}
	return fmt.Sprintf("cause %d", cause)
}

// Priv is a privilege level.
type Priv uint8

// Privilege levels implemented by the cores (M and U; no S-mode).
const (
	PrivU Priv = 0
	PrivM Priv = 3
)

// String returns "U" or "M".
func (p Priv) String() string {
	if p == PrivM {
		return "M"
	}
	return "U"
}

// mstatus bit positions used by the simulators.
const (
	MStatusMIE  uint64 = 1 << 3
	MStatusMPIE uint64 = 1 << 7
	MStatusMPPShift     = 11
	MStatusMPPMask  uint64 = 3 << MStatusMPPShift
)
