package isa

import "math/bits"

// Pure datapath semantics shared by the golden-model ISS and the DUT
// core models. Keeping these in one place guarantees that the only
// architectural divergences between ISS and DUT are the deliberately
// injected findings, never accidental datapath drift.

func sext32(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }

// ALU computes the result of any ClassALU or ClassMul/ClassDiv opcode
// given its two source operands (for immediate forms, pass the
// immediate as b). Opcodes that do not produce a pure function of two
// operands (loads, branches, CSR, AMO, LUI/AUIPC/JAL/JALR) are not
// handled here.
func ALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpADD, OpADDI:
		return a + b
	case OpSUB:
		return a - b
	case OpSLL, OpSLLI:
		return a << (b & 63)
	case OpSLT, OpSLTI:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSLTU, OpSLTIU:
		if a < b {
			return 1
		}
		return 0
	case OpXOR, OpXORI:
		return a ^ b
	case OpSRL, OpSRLI:
		return a >> (b & 63)
	case OpSRA, OpSRAI:
		return uint64(int64(a) >> (b & 63))
	case OpOR, OpORI:
		return a | b
	case OpAND, OpANDI:
		return a & b
	case OpADDW, OpADDIW:
		return sext32(a + b)
	case OpSUBW:
		return sext32(a - b)
	case OpSLLW, OpSLLIW:
		return sext32(a << (b & 31))
	case OpSRLW, OpSRLIW:
		return sext32(uint64(uint32(a) >> (b & 31)))
	case OpSRAW, OpSRAIW:
		return sext32(uint64(int32(uint32(a)) >> (b & 31)))

	case OpMUL:
		return a * b
	case OpMULH:
		hi, _ := bits.Mul64(a, b)
		if int64(a) < 0 {
			hi -= b
		}
		if int64(b) < 0 {
			hi -= a
		}
		return hi
	case OpMULHSU:
		hi, _ := bits.Mul64(a, b)
		if int64(a) < 0 {
			hi -= b
		}
		return hi
	case OpMULHU:
		hi, _ := bits.Mul64(a, b)
		return hi
	case OpMULW:
		return sext32(uint64(uint32(a) * uint32(b)))
	case OpDIV:
		return uint64(divSigned(int64(a), int64(b)))
	case OpDIVU:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case OpREM:
		return uint64(remSigned(int64(a), int64(b)))
	case OpREMU:
		if b == 0 {
			return a
		}
		return a % b
	case OpDIVW:
		return uint64(int64(int32(divSigned32(int32(uint32(a)), int32(uint32(b))))))
	case OpDIVUW:
		if uint32(b) == 0 {
			return ^uint64(0)
		}
		return sext32(uint64(uint32(a) / uint32(b)))
	case OpREMW:
		return uint64(int64(int32(remSigned32(int32(uint32(a)), int32(uint32(b))))))
	case OpREMUW:
		if uint32(b) == 0 {
			return sext32(a)
		}
		return sext32(uint64(uint32(a) % uint32(b)))
	}
	panic("isa: ALU called with non-ALU op " + op.String())
}

const minInt64 = -1 << 63

func divSigned(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == minInt64 && b == -1:
		return minInt64 // overflow per spec
	default:
		return a / b
	}
}

func remSigned(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == minInt64 && b == -1:
		return 0
	default:
		return a % b
	}
}

const minInt32 = -1 << 31

func divSigned32(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == minInt32 && b == -1:
		return minInt32
	default:
		return a / b
	}
}

func remSigned32(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == minInt32 && b == -1:
		return 0
	default:
		return a % b
	}
}

// BranchTaken evaluates the condition of a ClassBranch opcode.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case OpBEQ:
		return a == b
	case OpBNE:
		return a != b
	case OpBLT:
		return int64(a) < int64(b)
	case OpBGE:
		return int64(a) >= int64(b)
	case OpBLTU:
		return a < b
	case OpBGEU:
		return a >= b
	}
	panic("isa: BranchTaken called with non-branch op " + op.String())
}

// AMOApply computes the new memory value for an AMO opcode given the
// old memory value and the rs2 operand. For .W variants both operands
// are interpreted as 32-bit values and the result is a 32-bit value
// (zero-extended here; the memory write is 32 bits wide).
func AMOApply(op Op, old, src uint64) uint64 {
	switch op {
	case OpAMOSWAPD:
		return src
	case OpAMOADDD:
		return old + src
	case OpAMOXORD:
		return old ^ src
	case OpAMOANDD:
		return old & src
	case OpAMOORD:
		return old | src
	case OpAMOMIND:
		if int64(old) < int64(src) {
			return old
		}
		return src
	case OpAMOMAXD:
		if int64(old) > int64(src) {
			return old
		}
		return src
	case OpAMOMINUD:
		if old < src {
			return old
		}
		return src
	case OpAMOMAXUD:
		if old > src {
			return old
		}
		return src

	case OpAMOSWAPW:
		return uint64(uint32(src))
	case OpAMOADDW:
		return uint64(uint32(old) + uint32(src))
	case OpAMOXORW:
		return uint64(uint32(old) ^ uint32(src))
	case OpAMOANDW:
		return uint64(uint32(old) & uint32(src))
	case OpAMOORW:
		return uint64(uint32(old) | uint32(src))
	case OpAMOMINW:
		if int32(uint32(old)) < int32(uint32(src)) {
			return uint64(uint32(old))
		}
		return uint64(uint32(src))
	case OpAMOMAXW:
		if int32(uint32(old)) > int32(uint32(src)) {
			return uint64(uint32(old))
		}
		return uint64(uint32(src))
	case OpAMOMINUW:
		if uint32(old) < uint32(src) {
			return uint64(uint32(old))
		}
		return uint64(uint32(src))
	case OpAMOMAXUW:
		if uint32(old) > uint32(src) {
			return uint64(uint32(old))
		}
		return uint64(uint32(src))
	}
	panic("isa: AMOApply called with non-AMO op " + op.String())
}

// MemWidth returns the access width in bytes of a load, store, or AMO
// opcode, and whether a load result is sign-extended.
func MemWidth(op Op) (bytes int, signed bool) {
	switch op {
	case OpLB:
		return 1, true
	case OpLBU, OpSB:
		return 1, false
	case OpLH:
		return 2, true
	case OpLHU, OpSH:
		return 2, false
	case OpLW:
		return 4, true
	case OpLWU, OpSW:
		return 4, false
	case OpLD, OpSD:
		return 8, true
	}
	if op.Is(ClassAMO) {
		if op.Is(ClassW) {
			return 4, true
		}
		return 8, true
	}
	panic("isa: MemWidth called with non-memory op " + op.String())
}
