package isa

import "testing"

// FuzzDecodeEncodeRoundTrip is the native-fuzzing form of the
// decode→encode→decode stability property: for an arbitrary 32-bit
// word, Decode must never panic; if the word decodes as valid, Encode
// must accept the decoded instruction without panicking and re-decode
// to the identical architectural fields. (Encode(Decode(w)) == w
// additionally holds for every format except FENCE, whose
// ignored-but-legal rd/rs1 fields the re-encoder zeroes — covered by
// TestDecodeEncodeRoundtrip; the field-level property here holds for
// all formats.)
func FuzzDecodeEncodeRoundTrip(f *testing.F) {
	// Seed corpus: one representative of every format plus the edge
	// encodings (all-zeros, all-ones, compressed space, NOP).
	seeds := []uint32{
		0x00000000,
		0xFFFFFFFF,
		0x00000001, // compressed/reserved space
		NOP,
		Enc(OpADD, 1, 2, 3, 0),
		Enc(OpADDI, 5, 6, 0, -2048),
		Enc(OpSLLI, 7, 8, 0, 63),
		Enc(OpSRAIW, 9, 10, 0, 31),
		Enc(OpSD, 0, 11, 12, 2047),
		Enc(OpBEQ, 0, 1, 2, -4096),
		Enc(OpLUI, 3, 0, 0, -1 << 31),
		Enc(OpJAL, 1, 0, 0, 1<<19-2),
		EncCSR(OpCSRRW, 1, 2, 0x300),
		EncCSR(OpCSRRSI, 4, 31, 0xC00),
		EncAMO(OpLRW, 1, 2, 0, true, false),
		EncAMO(OpAMOMAXUD, 3, 4, 5, true, true),
		Enc(OpFENCE, 0, 0, 0, 0xFF),
		Enc(OpECALL, 0, 0, 0, 0),
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, raw uint32) {
		d1 := Decode(raw) // must never panic on any word
		if s := Disassemble(raw); s == "" {
			t.Errorf("Disassemble(%#08x) returned empty string", raw)
		}
		if !d1.Valid() {
			return
		}
		w2 := Encode(d1) // must never panic on a decoded instruction
		d2 := Decode(w2)
		d1.Raw, d2.Raw = 0, 0
		if d1 != d2 {
			t.Errorf("decode(%#08x)→encode→decode unstable:\nfirst  %+v\nsecond %+v", raw, d1, d2)
		}
	})
}
