package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a 32-bit instruction word as assembler text. It
// never panics; illegal encodings render as ".word 0x…". This is the
// deterministic reward agent of ChatFuzz training step 2.
func Disassemble(raw uint32) string {
	return DisassembleInst(Decode(raw))
}

// DisassembleInst renders a decoded instruction as assembler text.
func DisassembleInst(i Inst) string {
	if !i.Valid() {
		return fmt.Sprintf(".word 0x%08x", i.Raw)
	}
	name := i.Op.String()
	switch i.Op.Format() {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", name, i.Rd, i.Rs1, i.Rs2)
	case FmtI:
		if i.Op.Is(ClassLoad) {
			return fmt.Sprintf("%s %s, %d(%s)", name, i.Rd, i.Imm, i.Rs1)
		}
		if i.Op == OpJALR {
			return fmt.Sprintf("%s %s, %d(%s)", name, i.Rd, i.Imm, i.Rs1)
		}
		return fmt.Sprintf("%s %s, %s, %d", name, i.Rd, i.Rs1, i.Imm)
	case FmtShift, FmtShiftW:
		return fmt.Sprintf("%s %s, %s, %d", name, i.Rd, i.Rs1, i.Imm)
	case FmtS:
		return fmt.Sprintf("%s %s, %d(%s)", name, i.Rs2, i.Imm, i.Rs1)
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", name, i.Rs1, i.Rs2, i.Imm)
	case FmtU:
		return fmt.Sprintf("%s %s, 0x%x", name, i.Rd, uint32(i.Imm)>>12)
	case FmtJ:
		return fmt.Sprintf("%s %s, %d", name, i.Rd, i.Imm)
	case FmtCSR:
		return fmt.Sprintf("%s %s, %s, %s", name, i.Rd, CSRName(i.CSR), i.Rs1)
	case FmtCSRI:
		return fmt.Sprintf("%s %s, %s, %d", name, i.Rd, CSRName(i.CSR), i.Imm)
	case FmtAMO:
		suffix := ""
		if i.Aq {
			suffix += ".aq"
		}
		if i.Rl {
			suffix += ".rl"
		}
		if i.Op == OpLRW || i.Op == OpLRD {
			return fmt.Sprintf("%s%s %s, (%s)", name, suffix, i.Rd, i.Rs1)
		}
		return fmt.Sprintf("%s%s %s, %s, (%s)", name, suffix, i.Rd, i.Rs2, i.Rs1)
	case FmtFence, FmtSys:
		return name
	}
	return fmt.Sprintf(".word 0x%08x", i.Raw)
}

// DisassembleProgram renders a sequence of instruction words, one per
// line, with pc-relative addresses starting at base.
func DisassembleProgram(words []uint32, base uint64) string {
	var b strings.Builder
	for idx, w := range words {
		fmt.Fprintf(&b, "%08x:  %08x  %s\n", base+uint64(idx)*4, w, Disassemble(w))
	}
	return b.String()
}

// CountInvalid reports how many of the given instruction words fail to
// decode. It is the Invalid_i term of the paper's Eq. 1 reward.
func CountInvalid(words []uint32) int {
	n := 0
	for _, w := range words {
		if !Decode(w).Valid() {
			n++
		}
	}
	return n
}
